#!/usr/bin/env python3
"""Serving-tier simulation: from per-caller requests to saturating batches.

The serving layer (repro.serve) turns sporadic beamforming requests into
merged tensor-core launches. This script walks the full tier on simulated
A100s:

1. builds the two application request classes via their adapters'
   ``service_workload()`` entry points — each returns a *single-stage
   pipeline*; ``.kernel`` unwraps the bare workload wherever a plan or a
   hand-built request needs one;
2. replays the same Poisson overload through naive per-request execution
   and through dynamic micro-batching, printing both service reports;
3. streams a bursty multi-tenant trace (both workloads interleaved) over a
   two-device fleet with admission control, showing SLO tracking, plan
   caching, and least-loaded routing;
4. runs a small *functional* fleet end-to-end and checks the returned beams
   against a NumPy reference — batching must not change the numbers;
5. overloads one device with two pulsar campaigns (priority 1) under a
   live ultrasound view (priority 0): the scheduler preempts queued batch
   work non-destructively and admission sheds the batch class only. (The
   3:1 tenant weights shape *dispatch order* here; admission shedding is
   tenant-blind, so completed-request counts stay near 1:1 — the
   "serve-priority" bench experiment measures the 3:1 service ratio
   properly, with shedding disabled.)
6. serves the observatory's full three-stage DAG (channelize → beamform →
   dedisperse) with stage-locality placement on a heterogeneous fleet and
   prints one request's gating chain — per-stage batching with an
   end-to-end latency account.

Run:  python examples/serve_simulation.py
"""

import numpy as np

from repro.apps.radioastronomy.beamformer import pipeline_workload as lofar_pipeline
from repro.apps.radioastronomy.beamformer import service_workload as lofar_workload
from repro.apps.ultrasound.imaging import service_workload as ultrasound_workload
from repro.gpusim.device import Device, ExecutionMode
from repro.serve import (
    SLO,
    AdmissionController,
    BatchingPolicy,
    BeamformingService,
    Placer,
    Request,
    bursty_arrivals,
    merge_arrivals,
    poisson_arrivals,
)

SEED = 42
SLO_5MS = SLO(p99_latency_s=5e-3)


def fleet(n: int, mode=ExecutionMode.DRY_RUN) -> list[Device]:
    return [Device("A100", mode) for _ in range(n)]


# --- 1+2. naive vs micro-batched under one Poisson overload -------------------
# service_workload() returns a single-stage pipeline; .kernel is the bare
# workload a plan (or a hand-built Request) operates on.
beam_block = lofar_workload().kernel  # one GPU-resident LOFAR beam block per request
t_request = beam_block.make_plan(fleet(1)[0], 1).predict_block_cost().time_s
rate_hz = 5.0 / t_request  # 5x what naive per-request execution can drain
arrivals = poisson_arrivals(beam_block, rate_hz, horizon_s=0.02, seed=SEED)
print(f"Poisson load: {len(arrivals)} beam-block requests at {rate_hz / 1e3:.0f}k req/s\n")

for label, max_batch in (("naive per-request", 1), ("micro-batched", 32)):
    service = BeamformingService(
        fleet(1),
        policy=BatchingPolicy(max_batch=max_batch, max_wait_s=200e-6),
        slo=SLO_5MS,
    )
    report = service.run(arrivals)
    print(f"--- {label} (max_batch={max_batch}) ---")
    print(report.summary())
    print()

# --- 3. multi-tenant bursty traffic over a two-device fleet -------------------
frames = ultrasound_workload(n_voxels=4096, k=1024, n_frames=64).kernel
trace = merge_arrivals(
    bursty_arrivals(
        beam_block, rate_on_hz=rate_hz, rate_off_hz=rate_hz / 20,
        mean_on_s=4e-3, mean_off_s=4e-3, horizon_s=0.02, seed=SEED,
    ),
    poisson_arrivals(frames, rate_hz / 8, horizon_s=0.02, seed=SEED + 1),
)
service = BeamformingService(
    fleet(2),
    policy=BatchingPolicy(max_batch=32, max_wait_s=200e-6),
    slo=SLO_5MS,
    admission=AdmissionController(SLO_5MS, max_queue_depth=4096),
)
report = service.run(trace)
print("--- multi-tenant bursty trace, 2-device fleet ---")
print(report.summary())
print()

# --- 4. functional fleet: batching must not change the beams ------------------
rng = np.random.default_rng(SEED)
b, m, k, n = 2, 8, 16, 12
weights = (rng.normal(size=(b, m, k)) + 1j * rng.normal(size=(b, m, k))).astype(np.complex64)
functional_workload = lofar_workload(
    n_beams=m, n_stations=k, n_samples=n, n_channels=b, weights=weights
).kernel
requests = [
    Request(
        rid=i,
        workload=functional_workload,
        arrival_s=i * 1e-5,
        data=(rng.normal(size=(b, k, n)) + 1j * rng.normal(size=(b, k, n))).astype(
            np.complex64
        ),
    )
    for i in range(6)
]
service = BeamformingService(
    fleet(1, ExecutionMode.FUNCTIONAL),
    policy=BatchingPolicy(max_batch=3, max_wait_s=1e-4),
    slo=SLO(p99_latency_s=1.0),
)
report = service.run(requests)
worst = 0.0
for outcome in report.outcomes:
    reference = weights @ outcome.request.data
    worst = max(worst, float(np.abs(outcome.output - reference).max() / np.abs(reference).max()))
print("--- functional fleet ---")
print(
    f"{report.n_completed} requests beamformed in {report.n_batches} merged "
    f"launches; max relative error vs NumPy reference: {worst:.2e}"
)

# --- 5. priority classes: live view vs two weighted reprocessing campaigns ---
live_view = ultrasound_workload(n_voxels=4096, k=1024, n_frames=64).kernel  # priority 0
campaign_a = lofar_workload(n_samples=2048, tenant="pulsar-a").kernel       # priority 1
campaign_b = lofar_workload(n_samples=2048, tenant="pulsar-b").kernel
capacity_hz = 32 / campaign_a.make_plan(fleet(1)[0], 32).predict_gemm_cost().time_s
service = BeamformingService(
    fleet(1),
    policy=BatchingPolicy(max_batch=32, max_wait_s=1e-3),                 # batch class
    class_policies={0: BatchingPolicy(max_batch=4, max_wait_s=50e-6)},    # live view
    slo=SLO_5MS,
    tenant_weights={"pulsar-a": 3.0, "pulsar-b": 1.0},
)
report = service.run(
    merge_arrivals(
        poisson_arrivals(live_view, 24_000.0, 0.01, seed=SEED),
        poisson_arrivals(campaign_a, 2.5 * capacity_hz, 0.01, seed=SEED + 1),
        poisson_arrivals(campaign_b, 2.5 * capacity_hz, 0.01, seed=SEED + 2),
    )
)
print("--- priority classes under 5x batch-class overload ---")
print(report.summary())
interactive = report.by_priority()[0]
print(
    f"live view p99 {interactive.p99_latency_s * 1e3:.2f} ms "
    f"(SLO {SLO_5MS.p99_latency_s * 1e3:.0f} ms), "
    f"{report.shed_share(1):.0%} of shedding absorbed by the batch class"
)
print()

# --- 6. the full observatory DAG with stage-locality placement ----------------
# pipeline_workload() is the multi-stage form: channelize → beamform →
# dedisperse, one Request per end-to-end observation. Stage completions
# release successors inside the service loop; the locality-aware placer
# keeps each stage on the worker already holding its input buffer unless
# shipping the buffer across the interconnect is predicted cheaper.
survey = lofar_pipeline()
service = BeamformingService(
    [Device("GH200", ExecutionMode.DRY_RUN), Device("A100", ExecutionMode.DRY_RUN)],
    policy=BatchingPolicy(max_batch=8, max_wait_s=100e-6),
    slo=SLO(p99_latency_s=10e-3),
    placer=Placer(stage_locality=True),
)
report = service.run(poisson_arrivals(survey, 20_000.0, horizon_s=0.01, seed=SEED))
print("--- three-stage DAG, locality-aware placement, GH200 + A100 ---")
print(report.summary())
counters = report.metrics.snapshot()["counters"]
local = counters.get("dispatch.stage_local", 0)
remote = counters.get("dispatch.stage_remote", 0)
chain = next(o.stage_chain for o in report.outcomes if o.completion_s is not None)
print(
    f"{local / (local + remote):.0%} of stage dispatches stayed on the "
    f"buffer-resident worker; one request's gating chain: "
    + " → ".join(
        f"{link.stage} {1e3 * (link.completion_s - link.arrival_s):.3f} ms"
        for link in chain
    )
)
