#!/usr/bin/env python3
"""Quickstart: plan and run a complex GEMM on a simulated tensor-core GPU.

The TCBF core (ccglib) hides tensor-core details behind a plan/run API:
pick a device, state the shapes and precision, run. This script:

1. multiplies complex matrices in float16 mode and checks them against a
   NumPy reference;
2. repeats in 1-bit mode with ±1 data (exact integer arithmetic);
3. prints the predicted kernel time/energy on several catalog GPUs, both
   at paper scale (dry-run) and at the small functional scale;
4. states the same problem at the domain level through the TCBF
   BeamformerPlan, which adds the streaming stages (transpose, packing,
   RMS scaling) and end-to-end cost accounting on top of the raw GEMM.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import BeamformerPlan, Device, ExecutionMode, Gemm, Precision, gemm_once
from repro.util.units import format_ops_per_joule, format_ops_rate, format_seconds

rng = np.random.default_rng(2025)

# --- 1. float16 complex GEMM ------------------------------------------------
batch, m, n, k = 4, 64, 32, 96
a = (rng.normal(size=(batch, m, k)) + 1j * rng.normal(size=(batch, m, k))).astype(np.complex64)
b = (rng.normal(size=(batch, k, n)) + 1j * rng.normal(size=(batch, k, n))).astype(np.complex64)

device = Device("A100")
result = gemm_once(device, Precision.FLOAT16, a, b)
reference = a.astype(np.complex128) @ b.astype(np.complex128)
rel_err = np.abs(result.output - reference).max() / np.abs(reference).max()
print(f"float16 GEMM on {device.name}: batch={batch}, {m}x{n}x{k}")
print(f"  max relative error vs complex128 reference: {rel_err:.2e} (fp16 inputs)")
print(f"  modelled kernel time: {format_seconds(result.cost.time_s)}, "
      f"bound: {result.cost.bound.value}")

# --- 2. 1-bit complex GEMM ---------------------------------------------------
a1 = (
    rng.choice([-1.0, 1.0], (1, 24, 200)) + 1j * rng.choice([-1.0, 1.0], (1, 24, 200))
).astype(np.complex64)
b1 = (
    rng.choice([-1.0, 1.0], (1, 200, 16)) + 1j * rng.choice([-1.0, 1.0], (1, 200, 16))
).astype(np.complex64)
r1 = gemm_once(device, Precision.INT1, a1, b1)
exact = np.array_equal(
    r1.output,
    (a1.astype(np.complex128) @ b1.astype(np.complex128)).astype(np.complex64),
)
print(f"\nint1 GEMM on {device.name} (XOR + popcount, Eq. 5 of the paper)")
print(f"  exact integer result: {exact}")

gh200 = Device("GH200")
r1h = gemm_once(gh200, Precision.INT1, a1, b1)
print(f"int1 GEMM on {gh200.name} auto-switches to the AND path: {r1h.cost.name}")
print(f"  results identical across devices: {np.array_equal(r1.output, r1h.output)}")

# --- 3. paper-scale predictions (dry-run) -------------------------------------
print("\nPaper-scale predictions (M=N=K=8192 float16; Table III sizes):")
for gpu in ("AD4000", "A100", "GH200", "MI300X"):
    dev = Device(gpu, ExecutionMode.DRY_RUN)
    plan = Gemm(dev, Precision.FLOAT16, batch=1, m=8192, n=8192, k=8192)
    cost = plan.run().cost
    print(f"  {gpu:8s} {format_ops_rate(cost.ops_per_second):>14s}  "
          f"{format_ops_per_joule(cost.ops_per_joule):>12s}  "
          f"({format_seconds(cost.time_s)}, {cost.power_w:.0f} W)")

# --- 4. the domain-level BeamformerPlan ---------------------------------------
# The TCBF layer states the *beamforming* problem — beams x receivers x
# samples — and composes the streaming stages underneath. Functional run:
plan = BeamformerPlan(
    device, n_beams=m, n_receivers=k, n_samples=n, batch=batch,
    include_transpose=False, restore_output_scale=True,
)
bf = plan.execute(a, b)  # weights @ data, RMS-normalized internally
print(f"\nBeamformerPlan on {device.name}: {plan.shape} "
      f"-> beams {bf.beams.shape}, {bf.tflops:.2f} TFLOPs/s, {bf.fps:.0f} fps")
plan_vs_gemm = np.abs(bf.beams - result.output).max() / np.abs(result.output).max()
print(f"  max relative deviation from the raw GEMM result: {plan_vs_gemm:.2e} "
      f"(fp16 quantization at a different operand scale)")

# Paper-scale end-to-end accounting (dry-run): unlike the raw GEMM, the
# block budget includes the per-block measurement transpose and packing
# (the Fig 5 accounting), plus the one-time weight preparation.
stream_plan = BeamformerPlan(
    Device("A100", ExecutionMode.DRY_RUN),
    n_beams=49152, n_receivers=32768, n_samples=1024, precision=Precision.INT1,
)
prep = stream_plan.prepare_weights()
block = stream_plan.predict_block_cost()
gemm_only = stream_plan.predict_gemm_cost()
print(f"int1 block at paper scale: {format_seconds(block.time_s)} end-to-end "
      f"vs {format_seconds(gemm_only.time_s)} GEMM-only "
      f"(+{format_seconds(prep.time_s)} once for weight prep)")

print("\nDone. See examples/ultrasound_imaging.py and "
      "examples/lofar_pulsar_search.py for the domain pipelines, and "
      "examples/serve_simulation.py for the serving tier on top.")
