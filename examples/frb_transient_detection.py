#!/usr/bin/env python3
"""Incoherent-mode transient (FRB) detection — paper §V-B's other mode.

"Incoherent beamforming discards phase information and instead combines the
power from each station, creating a broader beam with a wider field of view
but lower resolution. This method is computationally less demanding and is
well-suited for all-sky surveys and transient detection."

This script simulates a one-off dispersed burst (an FRB) arriving from a
direction *outside* the tied-array beam grid, shows that:

* the coherent tied beams miss it (narrow field of view — the paper's
  stated trade-off);
* the incoherent beam catches it after dedispersion at the right DM;
* the incoherent reduction costs a small fraction of the coherent GEMM.

Run:  python examples/frb_transient_detection.py
"""

import numpy as np

from repro import Device, ExecutionMode
from repro.apps.radioastronomy import (
    LOFARBeamformer,
    Observation,
    PointSource,
    Pulsar,
    beam_grid,
    dedisperse,
    generate_station_data,
    incoherent_beam,
    lofar_like_layout,
    steering_weights,
)
from repro.util.units import tera

rng = np.random.default_rng(42)

# --- simulate: a single dispersed burst far off the tied-beam grid -----------
layout = lofar_like_layout(24)
obs = Observation(layout=layout, n_channels=16, n_samples=1024, seed=42)
# Model the burst as one "pulse" of a very-long-period pulsar: exactly one
# pulse falls inside the observation window.
burst = Pulsar(
    l=0.15, m=-0.12,          # far outside the 0.02-radius tied-beam grid
    flux=25.0,
    period_s=obs.n_samples * obs.sample_time_s * 2,  # one pulse per window
    duty_cycle=0.004,
    dm_pc_cm3=60.0,
)
steady = PointSource(l=0.001, m=0.001, flux=1.0)
data = generate_station_data(obs, [burst, steady])
print(f"simulated {obs.n_channels} channels x {layout.n_stations} stations x "
      f"{obs.n_samples} samples; burst at (l,m)=({burst.l}, {burst.m}), "
      f"DM={burst.dm_pc_cm3}")

# --- coherent tied-array beams: narrow FoV misses the burst -------------------
device = Device("A100")
dirs = beam_grid(16, fov_radius=0.02)
weights = steering_weights(layout, obs.channel_frequencies(), dirs)
bf = LOFARBeamformer(device, 16, layout.n_stations, obs.n_samples, obs.n_channels)
coherent = bf.form_beams(weights, data)
coh_power = np.abs(coherent.beams) ** 2  # (C, B, T)


def burst_snr(dynspec: np.ndarray) -> float:
    """Dedisperse at the burst DM, collapse frequency, peak significance."""
    fixed = dedisperse(dynspec, burst.dm_pc_cm3, obs.channel_frequencies(), obs.sample_time_s)
    series = fixed.sum(axis=0)
    baseline = np.median(series)
    mad = np.median(np.abs(series - baseline)) * 1.4826 + 1e-12
    return float((series.max() - baseline) / mad)


coh_snrs = np.array([burst_snr(coh_power[:, b, :]) for b in range(16)])
# The burst leaks into every tied beam through sidelobes at roughly equal
# strength: it is *detected* but cannot be *localized* — the paper's
# "restricted field of view unless multiple beams are synthesized" and
# "complex instantaneous sidelobe pattern" trade-offs.
spread = coh_snrs.max() / np.median(coh_snrs)
print(f"\ncoherent tied beams (FoV radius 0.02): burst S/N "
      f"{coh_snrs.min():.0f}..{coh_snrs.max():.0f} across all 16 beams "
      f"(max/median = {spread:.2f} — sidelobe pickup, no localization)")

# Contrast: an in-field source is sharply localized by the same beam grid.
infield = PointSource(l=float(dirs[5][0]), m=float(dirs[5][1]), flux=2.0)
data_in = generate_station_data(obs, [infield])
beams_in = bf.form_beams(weights, data_in)
p_in = (np.abs(beams_in.beams) ** 2).mean(axis=(0, 2))
print(f"for comparison, an in-field steady source: beam {int(p_in.argmax())} "
      f"holds {p_in.max() / np.median(p_in):.1f}x the median beam power "
      "(sharp localization inside the tied-beam grid)")

# --- incoherent beam: wide FoV catches it --------------------------------------
incoh, incoh_cost = incoherent_beam(
    device, data, obs.n_channels, layout.n_stations, obs.n_samples
)
incoh_snr = burst_snr(incoh)
print(f"incoherent station-power beam: burst S/N = {incoh_snr:.1f} "
      f"after dedispersion at DM {burst.dm_pc_cm3}")

# Without dedispersion the sweep smears the burst across the window.
series_raw = incoh.sum(axis=0)
baseline = np.median(series_raw)
mad = np.median(np.abs(series_raw - baseline)) * 1.4826 + 1e-12
print(f"undedispersed incoherent S/N = {(series_raw.max() - baseline) / mad:.1f} "
      "(dispersion smears the burst)")

# --- cost comparison -------------------------------------------------------------
dry = Device("A100", ExecutionMode.DRY_RUN)
coh_cost = LOFARBeamformer(dry, 1024, layout.n_stations, obs.n_samples,
                           obs.n_channels).predict_cost()
_, inc_cost = incoherent_beam(dry, None, obs.n_channels, layout.n_stations, obs.n_samples)
print(f"\nmodelled cost: coherent (1024 beams) {coh_cost.time_s * 1e6:.0f} us "
      f"vs incoherent {inc_cost.time_s * 1e6:.1f} us "
      f"({coh_cost.time_s / inc_cost.time_s:.0f}x — 'computationally less "
      "demanding', paper §V-B)")
