#!/usr/bin/env python3
"""Quantization study: why 1-bit beamforming works — paper §III.

"While lower precision introduces quantization noise, beamforming remains
robust since many values are accumulated." This script quantifies that:
for a simple plane-wave beamforming scenario it measures the output SNR of
float16 and 1-bit beamforming as a function of the number of receivers K,
showing the 1-bit penalty is a roughly constant factor (~2/pi in amplitude,
the classical hard-limiter loss) rather than a cliff, and that beam
pointing is preserved.

Run:  python examples/onebit_quantization_study.py
"""

import numpy as np

from repro import Device, Precision, gemm_once
from repro.util.formatting import render_table

rng = np.random.default_rng(7)
device = Device("A100")

N_SAMPLES = 256
INPUT_SNR = 0.5  # per-receiver voltage SNR (power -3 dB): a weak source


def beamform_snr(k: int, precision: Precision, n_trials: int = 3) -> float:
    """Output power SNR of an on-source beam over K receivers."""
    snrs = []
    for trial in range(n_trials):
        trial_rng = np.random.default_rng(rng.integers(2**31) + trial)
        signal = trial_rng.normal(size=N_SAMPLES) + 1j * trial_rng.normal(size=N_SAMPLES)
        signal *= INPUT_SNR / np.sqrt(2)
        phases = np.exp(2j * np.pi * trial_rng.random(k))  # arrival phases
        noise = (trial_rng.normal(size=(k, N_SAMPLES)) +
                 1j * trial_rng.normal(size=(k, N_SAMPLES))) / np.sqrt(2)
        data = phases[:, None] * signal[None, :] + noise
        weights = np.conj(phases)[None, :] / k  # one aligned beam
        on = gemm_once(
            device, precision,
            weights[None, ...].astype(np.complex64),
            data[None, ...].astype(np.complex64),
        ).output[0, 0]
        # off-source beam: random weights -> noise reference
        w_off = np.exp(2j * np.pi * trial_rng.random(k))[None, :] / k
        off = gemm_once(
            device, precision,
            w_off[None, ...].astype(np.complex64),
            data[None, ...].astype(np.complex64),
        ).output[0, 0]
        p_on = float((np.abs(on) ** 2).mean())
        p_off = float((np.abs(off) ** 2).mean())
        snrs.append(p_on / max(p_off, 1e-12) - 1.0)
    return float(np.mean(snrs))


rows = []
for k in (8, 16, 32, 64, 128, 256):
    snr16 = beamform_snr(k, Precision.FLOAT16)
    snr1 = beamform_snr(k, Precision.INT1)
    rows.append([
        k,
        round(10 * np.log10(max(snr16, 1e-6)), 1),
        round(10 * np.log10(max(snr1, 1e-6)), 1),
        round(snr1 / max(snr16, 1e-12), 2),
    ])
print(render_table(
    ["receivers K", "float16 beam SNR (dB)", "int1 beam SNR (dB)", "int1/float16"],
    rows,
    title=f"Beamforming output SNR vs array size (input SNR {INPUT_SNR**2:.2f})",
))
ratios = [r[3] for r in rows if r[3] > 0]
print(f"\n1-bit retains a roughly K-independent fraction of the float16 SNR "
      f"(mean {np.mean(ratios):.2f}; the hard-limiter loss is 2/pi ~ 0.64 in "
      "amplitude for Gaussian signals).")
print("Beamforming gain keeps growing with K in both precisions — the "
      "accumulation robustness the paper relies on for 1-bit imaging.")
