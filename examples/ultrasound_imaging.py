#!/usr/bin/env python3
"""Computational ultrasound imaging (cUSi) end to end — paper §V-A.

Builds a coded-aperture imaging model, simulates an ensemble of frames of a
vascular phantom (flowing blood inside dominant stationary tissue), runs
the Doppler clutter filter, sign-quantizes, reconstructs with the 1-bit
tensor-core beamformer, and displays maximum-intensity projections — the
Fig 6 pipeline at functional scale. It then prints the Fig 5 real-time
analysis for the NVIDIA GPUs at paper scale.

Run:  python examples/ultrasound_imaging.py
"""

import numpy as np

from repro import Device, Precision
from repro.apps.ultrasound import (
    ClutterFilter,
    EnsembleConfig,
    ImagingConfig,
    TransducerArray,
    UltrasoundBeamformer,
    VoxelGrid,
    apply_clutter_filter,
    build_model_matrix,
    contrast_db,
    frames_per_second,
    make_phantom,
    max_intensity_projections,
    max_realtime_voxels,
    power_doppler,
    render_ascii,
    simulate_frames,
    FULL_VOLUME_VOXELS,
    REQUIRED_FPS,
    THREE_PLANES_VOXELS,
)
from repro.gpusim.specs import INT1_GPUS, get_spec

# --- build the imaging setup (reduced scale: runs in seconds on a laptop) ----
config = ImagingConfig(
    array=TransducerArray(n_x=4, n_y=4),
    grid=VoxelGrid(shape=(12, 12, 10)),
    n_frequencies=16,
    n_transmissions=8,
)
print(f"model matrix: K={config.n_rows} rows x {config.n_voxels} voxels")
model = build_model_matrix(config)
phantom = make_phantom(config.grid, n_generations=3)
print(f"phantom: {phantom.n_blood_voxels} blood voxels "
      f"({phantom.graph.number_of_edges()} vessel segments)")

# --- acquire and clutter-filter the ensemble ----------------------------------
ensemble = EnsembleConfig(n_frames=64)
frames = simulate_frames(model, phantom, ensemble)
filtered = apply_clutter_filter(frames, ClutterFilter.SVD, n_components=2)
print(f"acquired {ensemble.n_frames} frames; SVD clutter filter applied "
      "(before sign extraction — the paper's required ordering)")

# --- 1-bit reconstruction ------------------------------------------------------
device = Device("GH200")
beamformer = UltrasoundBeamformer(device, model, n_frames=ensemble.n_frames,
                                  precision=Precision.INT1)
beamformer.prepare_model()
result = beamformer.reconstruct(filtered)
image = power_doppler(result.frames)
volume = config.grid.to_volume(image)
mips = max_intensity_projections(volume)
mask = phantom.blood_mask_volume()
axis_of = {"axial": 0, "coronal": 1, "sagittal": 2}
print("\nMaximum-intensity projections (1-bit pipeline):")
for name in ("sagittal", "coronal", "axial"):
    c = contrast_db(mips[name], mask.max(axis=axis_of[name]))
    print(f"\n{name} (vessel contrast {c:.1f} dB):")
    print(render_ascii(mips[name], width=48), end="")

print(f"\nmodelled reconstruction cost: "
      f"{result.time_s * 1e3:.3f} ms for {ensemble.n_frames} frames "
      f"(kernels: {', '.join(c.name for c in result.costs)})")

# --- Fig 5: real-time analysis at paper scale ----------------------------------
print(f"\nReal-time analysis (K = 128 freqs x 64 elements x 32 tx, "
      f"{REQUIRED_FPS:.0f} fps required):")
for gpu in INT1_GPUS:
    spec = get_spec(gpu)
    planes = frames_per_second(spec, THREE_PLANES_VOXELS)
    full = frames_per_second(spec, FULL_VOLUME_VOXELS)
    frac = max_realtime_voxels(spec) / FULL_VOLUME_VOXELS
    print(f"  {gpu:8s} three planes: {planes.fps:8.0f} fps | "
          f"full 128^3: {full.fps:6.0f} fps | real-time volume fraction: {frac:4.0%}")
print("\n(paper: all GPUs sustain three planes; none the full volume; " "GH200 reaches ~85% of it)")
