#!/usr/bin/env python3
"""LOFAR-style pulsar observation end to end — paper §V-B.

Simulates a 24-station array observing a dispersed pulsar plus a steady
confusion source, beamforms a grid of 25 tied-array beams with the 16-bit
tensor-core beamformer, dedisperses and folds every beam, and reports which
beam detects the pulsar. It then compares TCBF against the float32
reference beamformer across receiver counts (the Fig 7 story).

Run:  python examples/lofar_pulsar_search.py
"""

import numpy as np

from repro import Device, ExecutionMode
from repro.apps.radioastronomy import (
    LOFARBeamformer,
    PointSource,
    Pulsar,
    ReferenceBeamformer,
    beam_grid,
    run_observation,
)
from repro.util.units import tera

# --- the observation -----------------------------------------------------------
directions = beam_grid(25, fov_radius=0.02)
target = directions[7]
pulsar = Pulsar(
    l=float(target[0]), m=float(target[1]),
    flux=4.0, period_s=6.4e-4, duty_cycle=0.15, dm_pc_cm3=5.0,
)
confusion = PointSource(l=float(directions[20][0]), m=float(directions[20][1]), flux=2.0)
print(f"observing: pulsar P={pulsar.period_s * 1e3:.2f} ms, DM={pulsar.dm_pc_cm3} "
      f"pc/cm^3 at beam 7; steady confusion source at beam 20")

device = Device("A100")
result = run_observation(
    device, [pulsar, confusion],
    n_stations=24, n_beams=25, n_channels=8, n_samples=512,
)
print(f"beamformed {result.beams.shape[1]} beams x {result.beams.shape[0]} channels "
      f"x {result.beams.shape[2]} samples "
      f"(modelled GEMM: {result.cost.ops_per_second / tera:.2f} TFLOPs/s)")

# --- pulsar search --------------------------------------------------------------
snrs = np.array([d.snr for d in result.detections])
best = int(snrs.argmax())
print("\nfolded-profile S/N per beam (5x5 grid):")
for row in range(5):
    print("  " + "  ".join(f"{snrs[row * 5 + col]:7.1f}" for col in range(5)))
print(f"\npulsar recovered in beam {best} "
      f"(true beam 7, detected: {result.detections[best].detected}); "
      f"on/off-beam S/N contrast: "
      f"{snrs[7] / np.delete(snrs, 7).max():.1f}x")
profile = result.detections[7].profile
bar = "".join("#" if v > profile.mean() else "." for v in profile)
print(f"beam-7 pulse profile: [{bar}]")

# --- Fig 7: TCBF vs the reference float32 beamformer -----------------------------
print("\nTCBF vs reference beamformer (A100, 1024 beams, 1024 samples, batch 256):")
print(f"  {'receivers':>9s} {'TCBF TFLOPs/s':>14s} {'ref TFLOPs/s':>13s} "
      f"{'speedup':>8s} {'energy adv.':>11s}")
dry = Device("A100", ExecutionMode.DRY_RUN)
for k in (8, 16, 48, 128, 256, 512):
    tcbf = LOFARBeamformer(dry, 1024, k, 1024, 256).predict_cost()
    ref = ReferenceBeamformer(dry, 1024, k, 1024, 256).predict_cost()
    print(f"  {k:9d} {tcbf.ops_per_second / tera:14.1f} "
          f"{ref.ops_per_second / tera:13.1f} "
          f"{tcbf.ops_per_second / ref.ops_per_second:7.1f}x "
          f"{tcbf.ops_per_joule / ref.ops_per_joule:10.1f}x")
print("\n(paper: 'the TCBF is up to 20 times faster and 10 times more energy "
      "efficient than the reference beamformer'; crossover at very few receivers)")
