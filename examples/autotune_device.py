#!/usr/bin/env python3
"""Auto-tune the GEMM kernel for a device — the paper's §IV-A workflow.

Runs the Kernel-Tuner-style search (time + PMT power observers) over the
tuning space on a chosen GPU, prints the performance/energy Pareto front,
and compares the tuned configuration against the shipped defaults and the
paper's published optimum.

Run:  python examples/autotune_device.py [GPU] [float16|int1]
"""

import sys

from repro.ccglib import Precision, model_gemm, published_tuning
from repro.gpusim import get_spec
from repro.kerneltuner import BruteForce, GreedyILS, tune_gemm
from repro.kerneltuner.tuner import PAPER_TUNING_PROBLEMS
from repro.util.formatting import ascii_scatter, render_table

gpu = sys.argv[1] if len(sys.argv) > 1 else "GH200"
precision = Precision(sys.argv[2]) if len(sys.argv) > 2 else Precision.FLOAT16
spec = get_spec(gpu)
problem = PAPER_TUNING_PROBLEMS[precision]
print(f"tuning {precision.value} GEMM on {spec.name} at "
      f"M={problem.m}, N={problem.n}, K={problem.k} (the paper's tuning size)\n")

# Exhaustive search (the model makes this cheap; on real hardware you would
# use GreedyILS with a budget).
result = tune_gemm(spec, precision, strategy=BruteForce())
print(f"evaluated {result.evaluations} configurations "
      f"({result.invalid_configs} invalid: shared memory / registers / AMD buffers)")

# Scatter of the whole space: the Fig 2 panel for this device.
xs = [r.metrics["tops_per_joule"] for r in result.records]
ys = [r.metrics["tops"] for r in result.records]
print(ascii_scatter(xs, ys, width=60, height=14, xlabel="TOPs/J", ylabel="TOPs/s",
                    title=f"{spec.name} {precision.value}: tuning space"))

# Pareto front.
front = sorted(result.pareto_front(), key=lambda r: -r.metrics["tops"])
print(render_table(
    ["config", "TOPs/s", "TOPs/J", "power W"],
    [[str(r.params), round(r.metrics["tops"], 1), round(r.metrics["tops_per_joule"], 2),
      round(r.metrics["power_w"], 0)] for r in front[:8]],
    title="Performance/energy Pareto front (top 8)",
))

# Compare: tuned vs published vs a local search with a small budget.
rows = [["tuned (brute force)", str(result.best_params),
         round(result.best.metrics["tops"], 1)]]
published = published_tuning(spec.name, precision)
if published is not None:
    at_pub = model_gemm(spec, precision, problem, published.params)
    rows.append(["paper Table III", str(published.params), round(at_pub.ops_per_second / 1e12, 1)])
ils = tune_gemm(spec, precision, strategy=GreedyILS(budget=80, seed=0))
rows.append([f"greedy ILS (80 evals)", str(ils.best_params), round(ils.best.metrics["tops"], 1)])
print(render_table(["method", "parameters", "TOPs/s"], rows, title="Comparison"))
print("\nthe published configuration sits on the same optimum plateau; "
      "'while a default set of parameters is shipped with ccglib, a "
      "GPU-specific optimization is best' (paper §IV-A)")
