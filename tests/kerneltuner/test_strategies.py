"""Tuning strategies: brute force reference, sampling, local search."""

from __future__ import annotations

import pytest

from repro.ccglib.precision import Precision
from repro.errors import TunerError
from repro.gpusim.specs import get_spec
from repro.kerneltuner.space import SearchSpace, gemm_search_space
from repro.kerneltuner.strategies import BruteForce, GreedyILS, RandomSample


def quadratic_objective(config):
    # Smooth objective with optimum at a=8, b=4.
    return -((config["a"] - 8) ** 2) - (config["b"] - 4) ** 2


SPACE = SearchSpace(parameters={"a": list(range(0, 17)), "b": list(range(0, 9))})


class TestBruteForce:
    def test_finds_global_optimum(self):
        result = BruteForce().run(SPACE, quadratic_objective)
        assert result.best_config == {"a": 8, "b": 4}
        assert result.best_objective == 0
        assert result.evaluations == 17 * 9

    def test_invalid_points_skipped(self):
        def evaluate(config):
            return None if config["a"] % 2 else quadratic_objective(config)

        result = BruteForce().run(SPACE, evaluate)
        assert result.best_config["a"] % 2 == 0
        assert len(result.history) == 9 * 9  # nine even 'a' values x nine 'b'

    def test_all_invalid_raises(self):
        with pytest.raises(TunerError):
            BruteForce().run(SPACE, lambda c: None)


class TestRandomSample:
    def test_budget_respected(self):
        result = RandomSample(budget=20, seed=1).run(SPACE, quadratic_objective)
        assert result.evaluations == 20

    def test_deterministic(self):
        r1 = RandomSample(budget=15, seed=4).run(SPACE, quadratic_objective)
        r2 = RandomSample(budget=15, seed=4).run(SPACE, quadratic_objective)
        assert r1.best_config == r2.best_config


class TestGreedyILS:
    def test_reaches_optimum_on_smooth_landscape(self):
        result = GreedyILS(budget=120, seed=0).run(SPACE, quadratic_objective)
        assert result.best_objective == 0

    def test_budget_bound(self):
        result = GreedyILS(budget=30, seed=0).run(SPACE, quadratic_objective)
        assert result.evaluations <= 30


class TestOnRealGemmSpace:
    """Strategies against the actual kernel model landscape."""

    def _evaluate_factory(self):
        from repro.ccglib.perfmodel import GemmProblem, model_gemm
        from repro.errors import KernelConfigError
        from repro.kerneltuner.space import config_to_params

        spec = get_spec("A100")
        problem = GemmProblem(1, 4096, 4096, 4096)

        def evaluate(config):
            try:
                cost = model_gemm(spec, Precision.FLOAT16, problem, config_to_params(config))
            except KernelConfigError:
                return None
            return cost.ops_per_second

        return evaluate

    def test_ils_close_to_brute_force(self):
        space = gemm_search_space(get_spec("A100"), Precision.FLOAT16)
        evaluate = self._evaluate_factory()
        best = BruteForce().run(space, evaluate).best_objective
        ils = GreedyILS(budget=150, seed=2).run(space, evaluate).best_objective
        assert ils >= 0.95 * best

    def test_random_sampling_reasonable(self):
        space = gemm_search_space(get_spec("A100"), Precision.FLOAT16)
        evaluate = self._evaluate_factory()
        best = BruteForce().run(space, evaluate).best_objective
        rnd = RandomSample(budget=80, seed=2).run(space, evaluate).best_objective
        assert rnd >= 0.75 * best
