"""Auto-tuner orchestration."""

from __future__ import annotations

import pytest

from repro.ccglib.perfmodel import GemmProblem, model_gemm
from repro.ccglib.precision import Precision
from repro.ccglib.tuning import published_tuning
from repro.errors import TunerError, UnsupportedPrecisionError
from repro.gpusim.specs import get_spec
from repro.kerneltuner.cache import TuningCache
from repro.kerneltuner.strategies import GreedyILS
from repro.kerneltuner.tuner import PAPER_TUNING_PROBLEMS, tune_gemm
from repro.util.units import tera


class TestTuneGemm:
    def test_best_at_least_published_config(self):
        # The tuner must never do worse than the Table III parameters.
        for gpu, precision in [("A100", Precision.FLOAT16), ("GH200", Precision.INT1)]:
            spec = get_spec(gpu)
            result = tune_gemm(spec, precision)
            published = published_tuning(gpu, precision)
            at_published = model_gemm(
                spec, precision, PAPER_TUNING_PROBLEMS[precision], published.params
            )
            assert result.best.metrics["tops"] >= at_published.ops_per_second / tera - 1e-6

    def test_published_config_near_optimal(self):
        # ... and the published config sits on the optimum plateau (<=7%).
        for row_gpu in ("A100", "MI300X"):
            spec = get_spec(row_gpu)
            result = tune_gemm(spec, Precision.FLOAT16)
            published = published_tuning(row_gpu, Precision.FLOAT16)
            at_published = model_gemm(
                spec, Precision.FLOAT16, PAPER_TUNING_PROBLEMS[Precision.FLOAT16],
                published.params,
            )
            assert at_published.ops_per_second / tera >= 0.93 * result.best.metrics["tops"]

    def test_int1_on_amd_rejected(self):
        with pytest.raises(UnsupportedPrecisionError):
            tune_gemm(get_spec("MI210"), Precision.INT1)

    def test_invalid_configs_counted(self):
        result = tune_gemm(get_spec("A100"), Precision.FLOAT16)
        assert result.invalid_configs > 0
        assert result.evaluations == len(result.records) + result.invalid_configs

    def test_unknown_objective(self):
        with pytest.raises(TunerError):
            tune_gemm(get_spec("A100"), Precision.FLOAT16, objective="flops_per_dollar")

    def test_energy_objective(self):
        by_perf = tune_gemm(get_spec("GH200"), Precision.FLOAT16, objective="tops")
        by_eff = tune_gemm(get_spec("GH200"), Precision.FLOAT16, objective="tops_per_joule")
        assert (
            by_eff.best.metrics["tops_per_joule"]
            >= by_perf.best.metrics["tops_per_joule"] - 1e-9
        )

    def test_pareto_front_contains_best_points(self):
        result = tune_gemm(get_spec("A100"), Precision.FLOAT16)
        front = result.pareto_front()
        best_perf = max(r.metrics["tops"] for r in result.records)
        best_eff = max(r.metrics["tops_per_joule"] for r in result.records)
        # Ties are broken arbitrarily, so check by value: the front must
        # contain a record achieving each axis optimum.
        assert any(r.metrics["tops"] == best_perf for r in front)
        assert any(r.metrics["tops_per_joule"] == best_eff for r in front)

    def test_paper_observation_fastest_is_efficient(self):
        # "Typically, the most performant combination of parameters is also
        # the most energy efficient solution" (paper §IV-A).
        result = tune_gemm(get_spec("A100"), Precision.FLOAT16)
        best_perf = result.best.metrics
        best_eff = max(r.metrics["tops_per_joule"] for r in result.records)
        assert best_perf["tops_per_joule"] >= 0.9 * best_eff

    def test_custom_strategy(self):
        result = tune_gemm(
            get_spec("A100"),
            Precision.FLOAT16,
            strategy=GreedyILS(budget=60, seed=5),
        )
        assert result.evaluations <= 60


class TestCacheIntegration:
    def test_cache_reused(self, tmp_path):
        cache = TuningCache(path=tmp_path / "cache.json")
        spec = get_spec("A100")
        problem = GemmProblem(1, 2048, 2048, 2048)
        r1 = tune_gemm(spec, Precision.FLOAT16, problem=problem, cache=cache)
        size_after_first = len(cache)
        r2 = tune_gemm(spec, Precision.FLOAT16, problem=problem, cache=cache)
        assert len(cache) == size_after_first
        assert r1.best_params == r2.best_params
        cache.flush()
        reloaded = TuningCache(path=tmp_path / "cache.json")
        assert len(reloaded) == size_after_first
