"""Search space with restrictions."""

from __future__ import annotations

import pytest

from repro.ccglib.precision import Precision
from repro.errors import TunerError
from repro.kerneltuner.space import (
    SearchSpace,
    config_to_params,
    gemm_search_space,
    params_to_config,
)
from repro.gpusim.specs import get_spec


class TestSearchSpace:
    def test_restrictions_filter(self):
        space = SearchSpace(
            parameters={"a": [1, 2, 3], "b": [1, 2]},
            restrictions=[lambda c: c["a"] != 2],
        )
        configs = list(space)
        assert all(c["a"] != 2 for c in configs)
        assert len(configs) == 4

    def test_cardinality_unrestricted(self):
        space = SearchSpace(parameters={"a": [1, 2], "b": [1, 2, 3]})
        assert space.cardinality_unrestricted() == 6

    def test_sample_deterministic_and_valid(self):
        space = gemm_search_space(get_spec("A100"), Precision.FLOAT16)
        s1 = space.sample(10, seed=3)
        s2 = space.sample(10, seed=3)
        assert s1 == s2
        assert all(space.is_valid(c) for c in s1)

    def test_sample_caps_at_space_size(self):
        space = SearchSpace(parameters={"a": [1, 2]})
        assert len(space.sample(100)) == 2

    def test_sample_empty_space_raises(self):
        space = SearchSpace(parameters={"a": [1]}, restrictions=[lambda c: False])
        with pytest.raises(TunerError):
            space.sample(1)

    def test_neighbours_are_valid_hamming_one(self):
        space = gemm_search_space(get_spec("A100"), Precision.FLOAT16)
        config = space.enumerate_valid()[0]
        for nb in space.neighbours(config):
            assert space.is_valid(nb)
            diffs = sum(1 for k in config if nb[k] != config[k])
            assert diffs == 1


class TestGemmSpace:
    def test_amd_single_buffer(self):
        space = gemm_search_space(get_spec("MI300X"), Precision.FLOAT16)
        assert all(c["num_buffers"] == 1 for c in space)

    def test_divisibility_enforced(self):
        space = gemm_search_space(get_spec("A100"), Precision.FLOAT16)
        for config in space:
            assert config["block_m"] % config["warp_m"] == 0
            assert config["block_n"] % config["warp_n"] == 0

    def test_warp_count_bounds(self):
        space = gemm_search_space(get_spec("GH200"), Precision.INT1)
        for config in space:
            warps = (config["block_m"] // config["warp_m"]) * (
                config["block_n"] // config["warp_n"]
            )
            assert 1 <= warps <= 16


class TestConversions:
    def test_roundtrip(self):
        space = gemm_search_space(get_spec("A100"), Precision.FLOAT16)
        config = space.enumerate_valid()[5]
        assert params_to_config(config_to_params(config)) == config
