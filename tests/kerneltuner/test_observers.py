"""Observers and result cache."""

from __future__ import annotations

from repro.gpusim.timing import Bound, KernelCost
from repro.kerneltuner.cache import TuningCache
from repro.kerneltuner.observers import (
    ObserverChain,
    PerformanceObserver,
    PowerObserver,
    TimeObserver,
    default_observers,
)


def _cost() -> KernelCost:
    return KernelCost(
        name="k", time_s=1e-3, useful_ops=2e12, issued_ops=2e12, dram_bytes=1e9,
        smem_bytes=0.0, bound=Bound.COMPUTE, power_w=200.0, energy_j=0.2,
    )


class TestObservers:
    def test_time(self):
        assert TimeObserver().observe(_cost()) == {"time_s": 1e-3}

    def test_performance_in_tops(self):
        assert PerformanceObserver().observe(_cost())["tops"] == 2000.0

    def test_power(self):
        metrics = PowerObserver().observe(_cost())
        assert metrics["power_w"] == 200.0
        assert metrics["energy_j"] == 0.2
        assert metrics["tops_per_joule"] == 10.0

    def test_chain_merges(self):
        metrics = ObserverChain([TimeObserver(), PowerObserver()]).collect(_cost())
        assert set(metrics) == {"time_s", "power_w", "energy_j", "tops_per_joule"}

    def test_default_chain_complete(self):
        metrics = default_observers().collect(_cost())
        assert {"time_s", "tops", "power_w", "energy_j", "tops_per_joule"} <= set(metrics)


class TestCache:
    def test_put_get(self):
        cache = TuningCache()
        cache.put("A100", "float16", "p1", {"block_m": 128}, {"tops": 1.0})
        assert cache.get("A100", "float16", "p1", {"block_m": 128}) == {"tops": 1.0}

    def test_miss_returns_none(self):
        cache = TuningCache()
        assert cache.get("A100", "float16", "p1", {"block_m": 64}) is None

    def test_key_includes_problem(self):
        cache = TuningCache()
        cache.put("A100", "float16", "p1", {"block_m": 128}, {"tops": 1.0})
        assert cache.get("A100", "float16", "p2", {"block_m": 128}) is None

    def test_persistence(self, tmp_path):
        path = tmp_path / "sub" / "cache.json"
        cache = TuningCache(path=path)
        cache.put("GH200", "int1", "p", {"x": 1}, {"tops": 9.0})
        cache.flush()
        assert TuningCache(path=path).get("GH200", "int1", "p", {"x": 1}) == {"tops": 9.0}

    def test_flush_without_path_is_noop(self):
        TuningCache().flush()
