"""Argument validation helpers."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import DeviceError, ShapeError
from repro.util.validation import (
    ceil_div,
    require,
    require_multiple,
    require_positive_int,
    require_power_of_two,
    round_up,
)


class TestRequire:
    def test_passes(self):
        require(True, "never raised")

    def test_raises_default(self):
        with pytest.raises(ShapeError, match="broken"):
            require(False, "broken")

    def test_raises_custom_exception(self):
        with pytest.raises(DeviceError):
            require(False, "nope", exc=DeviceError)


class TestPositiveInt:
    def test_accepts(self):
        assert require_positive_int(3, "x") == 3

    @pytest.mark.parametrize("bad", [0, -1, 1.5, True, "3"])
    def test_rejects(self, bad):
        with pytest.raises(ShapeError):
            require_positive_int(bad, "x")


class TestMultiple:
    def test_accepts(self):
        assert require_multiple(64, 16, "x") == 64

    def test_rejects_nonmultiple(self):
        with pytest.raises(ShapeError):
            require_multiple(65, 16, "x")


class TestPowerOfTwo:
    @pytest.mark.parametrize("good", [1, 2, 4, 1024])
    def test_accepts(self, good):
        assert require_power_of_two(good, "x") == good

    @pytest.mark.parametrize("bad", [3, 6, 0, -4])
    def test_rejects(self, bad):
        with pytest.raises(ShapeError):
            require_power_of_two(bad, "x")


class TestIntegerRounding:
    @given(st.integers(1, 10**6), st.integers(1, 10**4))
    def test_ceil_div_definition(self, a, b):
        q = ceil_div(a, b)
        assert (q - 1) * b < a <= q * b

    @given(st.integers(1, 10**6), st.integers(1, 10**4))
    def test_round_up_properties(self, a, b):
        r = round_up(a, b)
        assert r >= a
        assert r % b == 0
        assert r - a < b
