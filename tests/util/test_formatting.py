"""ASCII table / plot rendering."""

from __future__ import annotations

import pytest

from repro.util.formatting import ascii_scatter, ascii_series, render_csv, render_table


class TestRenderTable:
    def test_alignment_and_header_rule(self):
        out = render_table(["a", "long_header"], [[1, 2], [333, 4]])
        lines = out.splitlines()
        assert lines[0].startswith("a")
        assert set(lines[1]) <= {"-", "+"}
        # all rows equal width
        assert len({len(l) for l in lines if l}) <= 2

    def test_title(self):
        out = render_table(["x"], [[1]], title="T")
        assert out.splitlines()[0] == "T"

    def test_float_formatting(self):
        out = render_table(["x"], [[1.23456789]])
        assert "1.23" in out and "1.23456789" not in out


class TestRenderCsv:
    def test_header_and_rows(self):
        out = render_csv(["a", "b"], [[1, 2.5], ["x", 3]])
        lines = out.strip().splitlines()
        assert lines[0] == "a,b"
        assert lines[1] == "1,2.5"
        assert lines[2] == "x,3"


class TestAsciiScatter:
    def test_empty(self):
        assert "(no data)" in ascii_scatter([], [])

    def test_marker_present(self):
        out = ascii_scatter([1, 2, 3], [1, 4, 9], width=20, height=5)
        assert "o" in out

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            ascii_scatter([1], [1, 2])

    def test_log_axes_filter_nonpositive(self):
        out = ascii_scatter([0, 1, 10], [1, 1, 2], logx=True, width=20, height=5)
        assert "o" in out  # zero point silently dropped

    def test_single_point(self):
        out = ascii_scatter([5.0], [7.0], width=10, height=4)
        assert out.count("o") == 1


class TestAsciiSeries:
    def test_legend_and_markers(self):
        out = ascii_series(
            {"alpha": ([1, 2], [1, 2]), "beta": ([1, 2], [2, 1])},
            width=20,
            height=6,
        )
        assert "o=alpha" in out and "x=beta" in out

    def test_empty_series(self):
        assert "(no data)" in ascii_series({"a": ([], [])})
