"""Unit formatting helpers."""

from __future__ import annotations

from repro.util.units import (
    format_bytes,
    format_ops_per_joule,
    format_ops_rate,
    format_seconds,
    format_si,
    tera,
)


class TestFormatSi:
    def test_peta(self):
        assert format_si(3.08e15, "Ops/s") == "3.08 POps/s"

    def test_tera(self):
        assert format_si(1.5e12, "Ops/s") == "1.5 TOps/s"

    def test_unit_range(self):
        assert format_si(5.0, "B") == "5 B"

    def test_zero(self):
        assert format_si(0, "X") == "0 X"

    def test_sub_unit(self):
        assert "0.5" in format_si(0.5, "J")


class TestPaperStyle:
    def test_ops_rate_matches_paper_vocabulary(self):
        assert format_ops_rate(173 * tera) == "173.0 TOPs/s"

    def test_ops_per_joule(self):
        assert format_ops_per_joule(0.8 * tera) == "0.80 TOPs/J"


class TestBytesAndSeconds:
    def test_bytes_prefixes(self):
        assert format_bytes(2048) == "2.00 KiB"
        assert format_bytes(3 * 2**30) == "3.00 GiB"
        assert format_bytes(10) == "10 B"

    def test_seconds_scales(self):
        assert format_seconds(90) == "1.50 min"
        assert format_seconds(1.5) == "1.500 s"
        assert format_seconds(2e-3) == "2.000 ms"
        assert format_seconds(3e-6) == "3.000 us"
        assert format_seconds(5e-9) == "5.0 ns"
