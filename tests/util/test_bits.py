"""Bit-manipulation helpers: packing round-trips, popcount, sign encoding."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ShapeError
from repro.util.bits import (
    PACK_WORD_BITS,
    bits_to_sign,
    pack_bits,
    packed_length,
    pad_to_words,
    popcount,
    sign_to_bits,
    unpack_bits,
)


class TestPopcount:
    def test_known_values(self):
        words = np.array([0, 1, 0xFFFFFFFF, 0x80000001, 0xAAAAAAAA], dtype=np.uint32)
        assert popcount(words).tolist() == [0, 1, 32, 2, 16]

    def test_dtype_is_int64(self):
        assert popcount(np.array([7], dtype=np.uint32)).dtype == np.int64

    def test_rejects_signed(self):
        with pytest.raises(ShapeError):
            popcount(np.array([1, 2], dtype=np.int32))

    @given(st.lists(st.integers(0, 2**32 - 1), min_size=1, max_size=64))
    def test_matches_python_bin(self, values):
        words = np.array(values, dtype=np.uint32)
        expected = [bin(v).count("1") for v in values]
        assert popcount(words).tolist() == expected

    def test_uint64_words(self):
        words = np.array([2**63 | 1], dtype=np.uint64)
        assert popcount(words).tolist() == [2]


class TestSignEncoding:
    def test_positive_is_one(self):
        # Paper Fig 1: binary 1 represents +1.
        assert sign_to_bits(np.array([1.5])).tolist() == [1]
        assert sign_to_bits(np.array([-0.25])).tolist() == [0]

    def test_zero_maps_to_plus_one(self):
        # Zero is not representable; the packing convention maps x >= 0 to 1.
        assert sign_to_bits(np.array([0.0])).tolist() == [1]

    def test_roundtrip_sign(self):
        values = np.array([-3.0, 2.0, -0.1, 7.0])
        recovered = bits_to_sign(sign_to_bits(values))
        assert recovered.tolist() == [-1, 1, -1, 1]

    @given(st.lists(st.floats(allow_nan=False, allow_infinity=False, width=32),
                    min_size=1, max_size=50))
    def test_bits_are_binary(self, values):
        bits = sign_to_bits(np.array(values, dtype=np.float32))
        assert set(np.unique(bits)).issubset({0, 1})


class TestPackUnpack:
    def test_single_word_msb_first(self):
        bits = np.zeros(32, dtype=np.uint8)
        bits[0] = 1  # first sample -> most significant bit
        packed = pack_bits(bits)
        assert packed.tolist() == [0x80000000]

    def test_last_bit_is_lsb(self):
        bits = np.zeros(32, dtype=np.uint8)
        bits[31] = 1
        assert pack_bits(bits).tolist() == [1]

    def test_requires_multiple_of_32(self):
        with pytest.raises(ShapeError):
            pack_bits(np.zeros(33, dtype=np.uint8))

    def test_unpack_requires_uint32(self):
        with pytest.raises(ShapeError):
            unpack_bits(np.zeros(2, dtype=np.uint64))

    def test_unpack_count_trims(self):
        bits = np.ones(32, dtype=np.uint8)
        assert unpack_bits(pack_bits(bits), count=7).shape == (7,)

    def test_unpack_count_too_large(self):
        with pytest.raises(ShapeError):
            unpack_bits(pack_bits(np.ones(32, dtype=np.uint8)), count=33)

    @given(
        st.integers(1, 4).flatmap(
            lambda words: st.lists(
                st.integers(0, 1), min_size=32 * words, max_size=32 * words
            )
        )
    )
    def test_roundtrip_1d(self, bit_list):
        bits = np.array(bit_list, dtype=np.uint8)
        assert np.array_equal(unpack_bits(pack_bits(bits)), bits)

    @given(st.integers(1, 5), st.integers(1, 3), st.integers(0, 2))
    def test_roundtrip_multi_axis(self, rows, words, axis_seed):
        rng = np.random.default_rng(axis_seed)
        bits = rng.integers(0, 2, size=(rows, 2, words * 32)).astype(np.uint8)
        for axis in (-1, 2):
            packed = pack_bits(bits, axis=axis)
            assert packed.shape == (rows, 2, words)
            assert np.array_equal(unpack_bits(packed, axis=axis), bits)

    def test_pack_axis_zero(self):
        rng = np.random.default_rng(0)
        bits = rng.integers(0, 2, size=(64, 3)).astype(np.uint8)
        packed = pack_bits(bits, axis=0)
        assert packed.shape == (2, 3)
        assert np.array_equal(unpack_bits(packed, axis=0), bits)


class TestPadding:
    def test_packed_length(self):
        assert packed_length(1) == 1
        assert packed_length(32) == 1
        assert packed_length(33) == 2

    def test_pad_to_words_default_bit(self):
        bits = np.ones(5, dtype=np.uint8)
        padded = pad_to_words(bits)
        assert padded.shape == (32,)
        # Padding bit 0 encodes decimal -1 (paper §III-D).
        assert padded[5:].sum() == 0

    def test_pad_noop_when_aligned(self):
        bits = np.ones(64, dtype=np.uint8)
        assert pad_to_words(bits) is bits

    def test_pad_custom_bit(self):
        padded = pad_to_words(np.zeros(1, dtype=np.uint8), pad_bit=1)
        assert padded[1:].sum() == PACK_WORD_BITS - 1
