"""Deterministic RNG utilities."""

from __future__ import annotations

import numpy as np

from repro.util.rng import derive_seed, make_rng


class TestMakeRng:
    def test_deterministic(self):
        a = make_rng(42).random(8)
        b = make_rng(42).random(8)
        assert np.array_equal(a, b)

    def test_passthrough_generator(self):
        gen = np.random.default_rng(0)
        assert make_rng(gen) is gen

    def test_none_gets_default(self):
        assert np.array_equal(make_rng(None).random(4), make_rng(None).random(4))


class TestDeriveSeed:
    def test_stable(self):
        assert derive_seed(1, "a", "b") == derive_seed(1, "a", "b")

    def test_label_sensitive(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_base_sensitive(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_path_not_concatenation_ambiguous(self):
        # ("ab",) and ("a", "b") must differ thanks to the separator.
        assert derive_seed(1, "ab") != derive_seed(1, "a", "b")

    def test_output_is_64bit(self):
        s = derive_seed(123, "x")
        assert 0 <= s < 2**64
