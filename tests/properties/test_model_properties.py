"""Property-based invariants of the performance and energy models."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ccglib.perfmodel import GemmProblem, model_gemm
from repro.ccglib.precision import Precision, complex_ops
from repro.ccglib.tuning import default_params
from repro.errors import KernelConfigError
from repro.gpusim.specs import GPU_CATALOG, get_spec

GPUS = list(GPU_CATALOG)


@st.composite
def gemm_case(draw, precision=Precision.FLOAT16):
    gpu = draw(st.sampled_from(GPUS))
    if precision is Precision.INT1:
        gpu = draw(st.sampled_from(["AD4000", "A100", "GH200"]))
    batch = draw(st.integers(1, 8))
    m = draw(st.integers(1, 4096))
    n = draw(st.integers(1, 4096))
    k = draw(st.integers(1, 8192))
    return gpu, GemmProblem(batch=batch, m=m, n=n, k=k)


class TestUniversalInvariants:
    @given(gemm_case())
    def test_time_positive_and_energy_above_idle(self, case):
        gpu, problem = case
        spec = get_spec(gpu)
        cost = model_gemm(spec, Precision.FLOAT16, problem, default_params(spec, Precision.FLOAT16))
        assert cost.time_s > 0
        assert cost.energy_j >= spec.power.idle_w * cost.time_s * 0.999
        assert cost.power_w <= spec.tdp_w + 1e-9

    @given(gemm_case())
    def test_useful_ops_conserved(self, case):
        gpu, problem = case
        spec = get_spec(gpu)
        cost = model_gemm(spec, Precision.FLOAT16, problem, default_params(spec, Precision.FLOAT16))
        assert cost.useful_ops == pytest.approx(
            complex_ops(problem.batch, problem.m, problem.n, problem.k)
        )
        assert cost.issued_ops >= cost.useful_ops

    @given(gemm_case())
    def test_never_beats_sustained_peak(self, case):
        gpu, problem = case
        spec = get_spec(gpu)
        cost = model_gemm(spec, Precision.FLOAT16, problem, default_params(spec, Precision.FLOAT16))
        assert cost.ops_per_second <= spec.sustained_peak_ops("float16") * 1.001

    @given(gemm_case(precision=Precision.INT1))
    def test_int1_invariants(self, case):
        gpu, problem = case
        spec = get_spec(gpu)
        cost = model_gemm(spec, Precision.INT1, problem, default_params(spec, Precision.INT1))
        assert cost.ops_per_second <= spec.sustained_peak_ops("int1") * 1.001
        assert cost.time_s > 0

    @given(gemm_case())
    def test_monotone_in_batch(self, case):
        gpu, problem = case
        spec = get_spec(gpu)
        params = default_params(spec, Precision.FLOAT16)
        single = model_gemm(spec, Precision.FLOAT16, problem, params)
        double = model_gemm(
            spec,
            Precision.FLOAT16,
            GemmProblem(problem.batch * 2, problem.m, problem.n, problem.k),
            params,
        )
        assert double.time_s > single.time_s * 0.99

    @given(gemm_case())
    def test_padding_never_helps(self, case):
        # Growing K to the next padded boundary must not increase time.
        gpu, problem = case
        spec = get_spec(gpu)
        params = default_params(spec, Precision.FLOAT16)
        cost = model_gemm(spec, Precision.FLOAT16, problem, params)
        kp = int(cost.detail["padded_k"])
        padded_cost = model_gemm(
            spec, Precision.FLOAT16,
            GemmProblem(problem.batch, problem.m, problem.n, kp), params,
        )
        assert padded_cost.time_s == pytest.approx(cost.time_s, rel=1e-6)


class TestTunerProperties:
    @given(st.sampled_from(GPUS), st.integers(0, 10))
    @settings(max_examples=10)
    def test_tuned_at_least_default(self, gpu, seed):
        from repro.kerneltuner.strategies import RandomSample
        from repro.kerneltuner.tuner import tune_gemm

        spec = get_spec(gpu)
        problem = GemmProblem(1, 2048, 2048, 2048)
        result = tune_gemm(
            spec, Precision.FLOAT16, problem=problem,
            strategy=RandomSample(budget=40, seed=seed),
        )
        try:
            base = model_gemm(spec, Precision.FLOAT16, problem,
                              default_params(spec, Precision.FLOAT16))
            # random sampling may miss the default config; allow 25% slack
            assert result.best.metrics["tops"] >= 0.75 * base.ops_per_second / 1e12
        except KernelConfigError:  # pragma: no cover
            pass
