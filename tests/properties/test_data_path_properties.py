"""Property-based invariants of the functional data path.

These are the invariants a downstream user relies on: quantization +
packing + transpose + GEMM compose losslessly for representable inputs, at
every shape including awkward padding cases.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ccglib.gemm import gemm_once
from repro.ccglib.layouts import to_interleaved, to_planar
from repro.ccglib.packing import pack_sign_planar, unpack_sign_planar
from repro.ccglib.precision import Precision
from repro.ccglib.transpose import planar_to_kmajor, tile_planar, untile_planar
from repro.gpusim.device import Device
from repro.util.validation import round_up


@st.composite
def pm1_gemm(draw):
    m = draw(st.integers(1, 8))
    n = draw(st.integers(1, 8))
    k = draw(st.integers(1, 300))
    seed = draw(st.integers(0, 2**31))
    rng = np.random.default_rng(seed)
    a = rng.choice([-1.0, 1.0], (m, k)) + 1j * rng.choice([-1.0, 1.0], (m, k))
    b = rng.choice([-1.0, 1.0], (k, n)) + 1j * rng.choice([-1.0, 1.0], (k, n))
    return a.astype(np.complex64), b.astype(np.complex64)


class TestEndToEndInt1:
    @given(pm1_gemm())
    def test_int1_gemm_exact_for_representable_inputs(self, ab):
        """The headline invariant: 1-bit beamforming of ±1 data is exact,
        for every K (including heavy fragment padding)."""
        a, b = ab
        dev = Device("A100")
        got = gemm_once(dev, Precision.INT1, a, b).output[0]
        ref = a.astype(np.complex128) @ b.astype(np.complex128)
        assert np.array_equal(got, ref.astype(np.complex64))

    @given(pm1_gemm())
    def test_int1_scale_invariance(self, ab):
        """Sign quantization: positive scaling never changes the result."""
        a, b = ab
        dev = Device("A100")
        base = gemm_once(dev, Precision.INT1, a, b).output
        scaled = gemm_once(dev, Precision.INT1, 3.7 * a, 0.25 * b).output
        assert np.array_equal(base, scaled)


class TestPackingProperties:
    @given(st.integers(1, 5), st.integers(1, 200), st.integers(0, 2**31))
    def test_pack_unpack_identity(self, rows, k, seed):
        rng = np.random.default_rng(seed)
        values = rng.normal(size=(rows, k)).astype(np.float32)
        values[values == 0] = 1.0
        k_pad = round_up(k, 256)
        packed = pack_sign_planar(values, k_pad_to=k_pad)
        assert packed.shape[-1] == k_pad // 32
        signs = unpack_sign_planar(packed, k)
        assert np.array_equal(signs, np.where(values >= 0, 1, -1).astype(np.int8))

    @given(st.integers(1, 5), st.integers(1, 100), st.integers(0, 2**31))
    def test_padding_region_all_minus_one(self, rows, k, seed):
        rng = np.random.default_rng(seed)
        values = rng.normal(size=(rows, k)).astype(np.float32)
        packed = pack_sign_planar(values, k_pad_to=round_up(k, 256))
        full = unpack_sign_planar(packed, round_up(k, 256))
        assert np.all(full[..., k:] == -1)


class TestLayoutProperties:
    @given(
        st.integers(1, 20), st.integers(1, 20),
        st.sampled_from([(16, 16), (8, 4)]), st.integers(0, 2**31),
    )
    def test_tile_untile_kmajor_composition(self, r, c, tile, seed):
        rng = np.random.default_rng(seed)
        z = (rng.normal(size=(r, c)) + 1j * rng.normal(size=(r, c))).astype(np.complex64)
        planar = to_planar(z)
        km = planar_to_kmajor(planar)  # (2, c, r)
        tiled = tile_planar(km, *tile)
        back = untile_planar(tiled)
        assert np.array_equal(back, km)
        assert np.array_equal(to_interleaved(planar), z)

    @given(st.integers(1, 30), st.integers(1, 30), st.integers(0, 2**31))
    def test_float16_gemm_tolerance_scales(self, m, n, seed):
        rng = np.random.default_rng(seed)
        k = 16
        a = (rng.normal(size=(m, k)) + 1j * rng.normal(size=(m, k))).astype(np.complex64)
        b = (rng.normal(size=(k, n)) + 1j * rng.normal(size=(k, n))).astype(np.complex64)
        got = gemm_once(Device("MI210"), Precision.FLOAT16, a, b).output[0]
        ref = a.astype(np.complex128) @ b.astype(np.complex128)
        denom = max(np.abs(ref).max(), 1e-3)
        assert np.abs(got - ref).max() / denom < 2e-2
