"""Property-based invariants of the serving tier's micro-batcher.

The discrete-event simulator's value rests on conservation: whatever
stream of requests arrives, in whatever interleaving of ``offer`` / ``due``
observations, every request comes back out exactly once, batches never mix
batching identities or priority classes, and time never runs backwards.
Seeded random request streams (mixed workload shapes, priorities, tenants,
bursty arrival gaps) drive those invariants through hypothesis.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.serve import BatchingPolicy, MicroBatcher, Request, Workload

#: small palette of batchable identities the random streams draw from.
SHAPES = [(8, 16, 8), (8, 16, 16), (4, 32, 8)]
PRIORITIES = [0, 1, 2]
TENANTS = ["a", "b", "c"]


@st.composite
def request_stream(draw):
    """A seeded random arrival stream over mixed workloads, plus knobs."""
    seed = draw(st.integers(0, 2**31))
    n_requests = draw(st.integers(1, 120))
    max_batch = draw(st.integers(1, 9))
    max_wait_us = draw(st.integers(0, 500))
    rng = np.random.default_rng(seed)
    requests = []
    t = 0.0
    for rid in range(n_requests):
        m, k, n = SHAPES[int(rng.integers(len(SHAPES)))]
        workload = Workload(
            name="prop",
            n_beams=m,
            n_receivers=k,
            n_samples=n,
            priority=PRIORITIES[int(rng.integers(len(PRIORITIES)))],
            tenant=TENANTS[int(rng.integers(len(TENANTS)))],
        )
        t += float(rng.exponential(100e-6))
        requests.append(Request(rid=rid, workload=workload, arrival_s=t))
    #: whether the replay observes `due` between arrivals (lazy vs eager).
    observe_due = draw(st.booleans())
    return requests, BatchingPolicy(max_batch=max_batch, max_wait_s=max_wait_us * 1e-6), observe_due


def replay(requests, policy, observe_due):
    """Push a stream through a MicroBatcher; returns every emitted batch."""
    interactive_override = BatchingPolicy(
        max_batch=max(1, policy.max_batch // 2),
        max_wait_s=policy.max_wait_s / 2,
    )
    batcher = MicroBatcher(policy, class_policies={0: interactive_override})
    batches = []
    for request in requests:
        now = request.arrival_s
        if observe_due:
            batches.extend(batcher.due(now))
        full = batcher.offer(request, now)
        if full is not None:
            batches.append(full)
    batches.extend(batcher.flush_all())
    return batcher, batches


class TestConservation:
    @given(request_stream())
    def test_no_request_lost_or_duplicated(self, stream):
        """Conservation: offer/due/flush_all emit each request exactly once."""
        requests, policy, observe_due = stream
        batcher, batches = replay(requests, policy, observe_due)
        emitted = [r.rid for b in batches for r in b.requests]
        assert sorted(emitted) == [r.rid for r in requests]
        assert len(set(emitted)) == len(emitted)
        assert batcher.depth() == 0  # nothing left behind

    @given(request_stream())
    def test_counters_match_emissions(self, stream):
        requests, policy, observe_due = stream
        batcher, batches = replay(requests, policy, observe_due)
        assert batcher.n_offered == len(requests)
        assert batcher.n_flushed_full + batcher.n_flushed_timer == len(batches)


class TestBatchIdentity:
    @given(request_stream())
    def test_batches_never_mix_compat_keys(self, stream):
        requests, policy, observe_due = stream
        _, batches = replay(requests, policy, observe_due)
        for batch in batches:
            keys = {r.workload.compat_key() for r in batch.requests}
            assert len(keys) == 1

    @given(request_stream())
    def test_batches_never_mix_priorities_or_tenants(self, stream):
        requests, policy, observe_due = stream
        _, batches = replay(requests, policy, observe_due)
        for batch in batches:
            assert len({r.workload.priority for r in batch.requests}) == 1
            assert len({r.workload.tenant for r in batch.requests}) == 1
            assert batch.priority == batch.requests[0].workload.priority
            assert batch.tenant == batch.requests[0].workload.tenant

    @given(request_stream())
    def test_class_policy_bounds_batch_size(self, stream):
        requests, policy, observe_due = stream
        batcher, batches = replay(requests, policy, observe_due)
        for batch in batches:
            assert batch.n_requests <= batcher.policy_for(batch.priority).max_batch


class TestTimeSanity:
    @given(request_stream())
    def test_batching_delay_never_negative(self, stream):
        requests, policy, observe_due = stream
        _, batches = replay(requests, policy, observe_due)
        for batch in batches:
            assert batch.batching_delay_s >= 0.0
            assert batch.formed_s >= batch.oldest_arrival_s

    @given(request_stream())
    def test_members_arrive_before_batch_forms(self, stream):
        """Under the documented contract (due groups drained before each
        offer, as the service event loop guarantees), no batch forms
        before one of its members arrived."""
        requests, policy, _ = stream
        _, batches = replay(requests, policy, observe_due=True)
        for batch in batches:
            for request in batch.requests:
                assert request.arrival_s <= batch.formed_s + 1e-12
