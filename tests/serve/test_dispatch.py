"""Fleet dispatch: least-loaded routing, engine overlap, functional merge."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import DeviceError, ShapeError
from repro.gpusim.device import Device, ExecutionMode
from repro.serve import Batch, FleetDispatcher, PlanCache, Request, Workload
from tests.conftest import random_complex


def workload(name="wl", **overrides) -> Workload:
    kwargs = dict(
        name=name, n_beams=64, n_receivers=32, n_samples=64,
        include_transpose=True,
    )
    kwargs.update(overrides)
    return Workload(**kwargs)


def make_batch(bid: int, wl: Workload, n: int, formed_s: float, data=None) -> Batch:
    requests = [
        Request(rid=bid * 100 + i, workload=wl, arrival_s=formed_s, data=data)
        for i in range(n)
    ]
    return Batch(bid=bid, workload=wl, requests=requests, formed_s=formed_s)


def dry_fleet(n: int) -> FleetDispatcher:
    return FleetDispatcher([Device("A100", ExecutionMode.DRY_RUN) for _ in range(n)])


class TestRouting:
    def test_least_loaded_spreads_batches(self):
        fleet = dry_fleet(2)
        wl = workload()
        e0 = fleet.dispatch(make_batch(0, wl, 2, 0.0))
        e1 = fleet.dispatch(make_batch(1, wl, 2, 0.0))
        # Worker 0 is busy after the first batch; the second goes to 1.
        assert e0.worker_index == 0
        assert e1.worker_index == 1

    def test_tie_breaks_on_lowest_index(self):
        fleet = dry_fleet(3)
        assert fleet.least_loaded(0.0).index == 0

    def test_mixed_mode_fleet_rejected(self):
        with pytest.raises(DeviceError):
            FleetDispatcher([Device("A100"), Device("A100", ExecutionMode.DRY_RUN)])
        with pytest.raises(ShapeError):
            FleetDispatcher([])

    def test_two_devices_halve_the_drain_time(self):
        # Pre-warm every device's plan so the comparison measures routing,
        # not the one-time per-device builds.
        wl = workload()
        cache = PlanCache()
        devices = [Device("A100", ExecutionMode.DRY_RUN) for _ in range(2)]
        for device in devices:
            cache.get(device, wl, 1)
        one = FleetDispatcher(devices[:1], cache=cache)
        two = FleetDispatcher(devices, cache=cache)
        for i in range(8):
            one.dispatch(make_batch(i, wl, 1, 0.0))
            two.dispatch(make_batch(i, wl, 1, 0.0))
        assert two.makespan_s() < one.makespan_s() * 0.62


class TestEngineOverlap:
    def test_stage_in_overlaps_previous_compute(self):
        # Consecutive batches on one worker: batch 1's transpose must hide
        # behind batch 0's GEMM, exactly like the BlockExecutor pipeline.
        fleet = dry_fleet(1)
        wl = workload()
        e0 = fleet.dispatch(make_batch(0, wl, 4, 0.0))
        e1 = fleet.dispatch(make_batch(1, wl, 4, 0.0))
        assert e1.start_s == pytest.approx(e0.start_s + e0.build_s + e0.stage_in_s)
        assert e1.start_s < e0.completion_s  # copy ran under compute
        assert e1.compute_start_s >= e0.completion_s  # GEMMs serialize

    def test_build_serializes_before_stage_in(self):
        fleet = dry_fleet(1)
        e = fleet.dispatch(make_batch(0, workload(), 2, 1.0))
        assert e.build_s > 0.0  # cold cache
        assert e.compute_start_s >= e.start_s + e.build_s + e.stage_in_s
        assert e.completion_s == pytest.approx(e.compute_start_s + e.gemm_s)

    def test_warm_cache_has_no_build_charge(self):
        fleet = dry_fleet(1)
        wl = workload()
        fleet.dispatch(make_batch(0, wl, 2, 0.0))
        e = fleet.dispatch(make_batch(1, wl, 2, 0.0))
        assert e.build_s == 0.0

    def test_idle_worker_starts_at_ready_time(self):
        fleet = dry_fleet(1)
        e = fleet.dispatch(make_batch(0, workload(), 1, 5.0))
        assert e.ready_s == 5.0
        assert e.start_s == 5.0
        assert e.queue_delay_s == 0.0

    def test_utilization_accounting(self):
        fleet = dry_fleet(2)
        wl = workload()
        fleet.dispatch(make_batch(0, wl, 2, 0.0))
        utils = fleet.utilizations()
        assert utils[0] > 0.0
        assert utils[1] == 0.0


class TestFunctionalMerge:
    def test_outputs_scatter_back_per_request(self, rng):
        wl = workload(
            n_beams=8, n_receivers=16, n_samples=8,
            include_transpose=False, restore_output_scale=True,
            weights=random_complex(rng, (1, 8, 16)),
        )
        fleet = FleetDispatcher([Device("A100")])
        data = [random_complex(rng, (1, 16, 8)) for _ in range(3)]
        batch = Batch(
            bid=0,
            workload=wl,
            requests=[
                Request(rid=i, workload=wl, arrival_s=0.0, data=d)
                for i, d in enumerate(data)
            ],
            formed_s=0.0,
        )
        execution = fleet.dispatch(batch)
        assert execution.outputs is not None and len(execution.outputs) == 3
        for d, out in zip(data, execution.outputs):
            assert np.allclose(out, wl.weights @ d, atol=0.05)

    def test_functional_requires_weights_and_data(self, rng):
        bare = workload(n_beams=8, n_receivers=16, n_samples=8)
        fleet = FleetDispatcher([Device("A100")])
        with pytest.raises(ShapeError, match="weight set"):
            fleet.dispatch(make_batch(0, bare, 1, 0.0, data=random_complex(rng, (1, 16, 8))))
        armed = workload(
            name="armed", n_beams=8, n_receivers=16, n_samples=8,
            weights=random_complex(rng, (1, 8, 16)),
        )
        with pytest.raises(ShapeError, match="data block"):
            fleet.dispatch(make_batch(1, armed, 1, 0.0))


class TestTieBreaking:
    """least_loaded must be index-stable, not list-order-lucky.

    The regression: picking ``min`` over float backlogs alone leaves the
    winner among equal backlogs to incidental list order. The routing key
    is pinned to (backlog, index) so equal-backlog ties always resolve to
    the lowest worker index — and replay determinism never depends on how
    the worker list happened to be built.
    """

    def test_idle_fleet_ties_resolve_to_lowest_index(self):
        fleet = dry_fleet(4)
        assert fleet.least_loaded(0.0).index == 0

    def test_equal_nonzero_backlogs_tie_on_index(self):
        fleet = dry_fleet(3)
        wl = workload()
        # Identical batches give workers 0..2 byte-identical float backlogs.
        for i in range(3):
            fleet.dispatch(make_batch(i, wl, 2, 0.0))
        backlogs = [w.backlog_s(0.0) for w in fleet.workers]
        assert backlogs[0] == backlogs[1] == backlogs[2] > 0.0
        assert fleet.least_loaded(0.0).index == 0

    def test_routing_key_orders_backlog_before_index(self):
        fleet = dry_fleet(2)
        wl = workload()
        fleet.dispatch(make_batch(0, wl, 4, 0.0))  # load worker 0
        assert fleet.least_loaded(0.0).index == 1

    def test_reversed_worker_list_same_winner(self):
        # The pin itself: even if the internal worker list is reordered,
        # the tie goes to the lowest *index*, not the first list element.
        fleet = dry_fleet(3)
        fleet.workers.reverse()
        assert [w.index for w in fleet.workers] == [2, 1, 0]
        assert fleet.least_loaded(0.0).index == 0

    def test_drain_path_uses_same_tie_break(self):
        from repro.serve import PriorityScheduler

        fleet = FleetDispatcher(
            [Device("A100", ExecutionMode.DRY_RUN) for _ in range(2)],
            scheduler=PriorityScheduler(),
        )
        wl = workload()
        fleet.submit(make_batch(0, wl, 1, 0.0))
        fleet.submit(make_batch(1, wl, 1, 0.0))
        placed = fleet.drain(0.0)
        assert [e.worker_index for e in placed] == [0, 1]


class TestSharedCache:
    def test_each_device_pays_its_own_build(self):
        # Plans hold device-resident state (prepared weights, timeline), so
        # even same-model GPUs fault in their own entry; repeats hit.
        cache = PlanCache()
        fleet = FleetDispatcher(
            [Device("A100", ExecutionMode.DRY_RUN) for _ in range(2)], cache=cache
        )
        wl = workload()
        e0 = fleet.dispatch(make_batch(0, wl, 2, 0.0))  # worker 0, miss
        e1 = fleet.dispatch(make_batch(1, wl, 2, 0.0))  # worker 1, its own miss
        assert (e0.worker_index, e1.worker_index) == (0, 1)
        assert e0.build_s > 0.0 and e1.build_s > 0.0
        assert cache.misses == 2
        e2 = fleet.dispatch(make_batch(2, wl, 2, 1.0))  # warm now
        assert e2.build_s == 0.0
        assert cache.hits == 1

    def test_functional_kernels_land_on_the_executing_device(self, rng):
        # The regression behind the per-device cache key: worker 1's
        # batches must be recorded on worker 1's timeline.
        wl = workload(
            n_beams=8, n_receivers=16, n_samples=8, include_transpose=False,
            weights=random_complex(rng, (1, 8, 16)),
        )
        devices = [Device("A100") for _ in range(2)]
        fleet = FleetDispatcher(devices)
        for i in range(4):
            fleet.dispatch(make_batch(i, wl, 1, 0.0, data=random_complex(rng, (1, 16, 8))))
        assert {e.worker_index for e in fleet.executions} == {0, 1}
        assert len(devices[0].timeline) > 0
        assert len(devices[1].timeline) > 0


class TestDrainFallbackOnlyCapableWorker:
    """A draining worker that is the sole capable one must still serve.

    Direct unit coverage of the ``_candidates`` fallback behind
    ``refresh_candidates``/``begin_drain``: a batch admitted before the
    drain began, whose every capable worker is now draining, re-stamps
    onto the draining pool instead of stranding with zero candidates.
    """

    def _mixed_fleet(self):
        # Worker 0 (A100) is the only one capable of int1; worker 1
        # (MI300X) lacks the precision entirely.
        return FleetDispatcher(
            [Device("A100", ExecutionMode.DRY_RUN),
             Device("MI300X", ExecutionMode.DRY_RUN)]
        )

    def _int1(self):
        from repro.ccglib.precision import Precision

        return workload(name="bits", precision=Precision.INT1)

    def test_refresh_candidates_falls_back_to_draining_worker(self):
        fleet = self._mixed_fleet()
        batch = make_batch(0, self._int1(), 2, 0.0)
        fleet.submit(batch)
        assert batch.candidate_indices == (0,)
        fleet.begin_drain(0, now=0.0)
        # refresh_candidates ran inside begin_drain: the draining worker
        # stays stamped because nothing accepting is capable.
        assert batch.candidate_indices == (0,)

    def test_held_batch_keeps_draining_worker_after_refresh(self):
        fleet = self._mixed_fleet()
        wl = self._int1()
        first = make_batch(0, wl, 2, 0.0)
        second = make_batch(1, wl, 2, 0.0)
        fleet.submit(first)
        fleet.submit(second)
        placed = fleet.drain(0.0)
        assert [e.batch.bid for e in placed] == [0]
        assert fleet._held and fleet._held[0].bid == 1  # worker 0 busy
        fleet.begin_drain(0, now=0.0)
        assert second.candidate_indices == (0,)

    def test_committed_batch_dispatches_on_the_draining_worker(self):
        fleet = self._mixed_fleet()
        batch = make_batch(0, self._int1(), 2, 0.0)
        fleet.submit(batch)
        fleet.begin_drain(0, now=0.0)
        [execution] = fleet.drain(0.0)
        assert execution.worker_index == 0
        assert execution.completion_s > 0.0

    def test_draining_worker_not_reaped_while_referenced(self):
        fleet = self._mixed_fleet()
        batch = make_batch(0, self._int1(), 2, 0.0)
        fleet.submit(batch)
        fleet.begin_drain(0, now=0.0)
        # Still referenced by the queued batch: retirement must wait.
        assert fleet.next_retire_s() is None
        assert fleet.reap(10.0) == []
        [execution] = fleet.drain(0.0)
        retired = fleet.reap(execution.completion_s)
        assert [w.index for w in retired] == [0]
