"""Elastic fleets: autoscaling policies, drain semantics, fleet timelines."""

from __future__ import annotations

import pytest

from repro.errors import DeviceError, ShapeError
from repro.gpusim.device import Device, ExecutionMode
from repro.serve import (
    SLO,
    Autoscaler,
    BatchingPolicy,
    BeamformingService,
    FleetDispatcher,
    FleetSignals,
    PredictiveAutoscaler,
    QueuePressure,
    RateForecast,
    ReactiveAutoscaler,
    Request,
    ScaleAction,
    ScaleKind,
    Workload,
    poisson_arrivals,
)
from repro.serve.batching import Batch
from repro.serve.slo import FleetTimeline


def workload(name="wl", **overrides) -> Workload:
    kwargs = dict(name=name, n_beams=64, n_receivers=32, n_samples=64, include_transpose=True)
    kwargs.update(overrides)
    return Workload(**kwargs)


def make_batch(bid: int, wl: Workload, n: int, formed_s: float) -> Batch:
    requests = [Request(rid=bid * 100 + i, workload=wl, arrival_s=formed_s) for i in range(n)]
    return Batch(bid=bid, workload=wl, requests=requests, formed_s=formed_s)


def dry_device() -> Device:
    return Device("A100", ExecutionMode.DRY_RUN)


def dry_fleet(n: int) -> FleetDispatcher:
    return FleetDispatcher([dry_device() for _ in range(n)])


def signals(
    t_s=0.0,
    n_accepting=1,
    n_draining=0,
    queued_requests=0,
    queued_service_s=0.0,
    drain_s=None,
    busy_workers=0,
    firing_alerts=0,
) -> FleetSignals:
    drain_by_cap = {"float16": drain_s} if drain_s is not None else {}
    return FleetSignals(
        t_s=t_s,
        n_accepting=n_accepting,
        n_draining=n_draining,
        queued_requests=queued_requests,
        queued_service_s=queued_service_s,
        pressure_by_priority={},
        drain_s_by_capability=drain_by_cap,
        busy_workers=busy_workers,
        firing_alerts=firing_alerts,
    )


class TestRateForecast:
    def test_rate_profile_endpoints(self):
        f = RateForecast(base_rate_hz=100.0, amplitude=0.5, period_s=4.0)
        assert f.rate_hz(0.0) == pytest.approx(100.0)
        assert f.rate_hz(1.0) == pytest.approx(150.0)  # crest at T/4
        assert f.rate_hz(3.0) == pytest.approx(50.0)  # trough at 3T/4
        assert f.peak_rate_hz == pytest.approx(150.0)

    def test_phase_shifts_the_cycle(self):
        f = RateForecast(base_rate_hz=100.0, amplitude=1.0, period_s=4.0, phase_s=3.0)
        assert f.rate_hz(0.0) == pytest.approx(0.0)  # starts at the trough
        assert f.rate_hz(1.0) == pytest.approx(100.0)
        assert f.rate_hz(2.0) == pytest.approx(200.0)  # crest at T/2

    def test_window_max_is_exact(self):
        f = RateForecast(base_rate_hz=100.0, amplitude=1.0, period_s=4.0)
        # Window containing the crest (t=1) reports the peak.
        assert f.max_rate_hz(0.5, 1.5) == pytest.approx(200.0)
        # Window strictly past the crest: max at the earlier endpoint.
        assert f.max_rate_hz(1.2, 1.8) == pytest.approx(f.rate_hz(1.2))
        # Window on the rising edge: max at the later endpoint.
        assert f.max_rate_hz(0.2, 0.8) == pytest.approx(f.rate_hz(0.8))
        # Next period's crest is found too.
        assert f.max_rate_hz(4.2, 5.4) == pytest.approx(200.0)

    def test_validation(self):
        with pytest.raises(ShapeError):
            RateForecast(base_rate_hz=-1.0, amplitude=0.5, period_s=1.0)
        # Zero base rate is legal: a degenerate fit clamps to a flat
        # zero-rate forecast (see fit_rate_forecast).
        assert RateForecast(base_rate_hz=0.0, amplitude=0.5, period_s=1.0).peak_rate_hz == 0.0
        with pytest.raises(ShapeError):
            RateForecast(base_rate_hz=1.0, amplitude=1.5, period_s=1.0)
        with pytest.raises(ShapeError):
            RateForecast(base_rate_hz=1.0, amplitude=0.5, period_s=0.0)
        f = RateForecast(base_rate_hz=1.0, amplitude=0.5, period_s=1.0)
        with pytest.raises(ShapeError):
            f.max_rate_hz(1.0, 0.5)


class TestReactivePolicy:
    def test_single_pressured_tick_does_not_fire(self):
        policy = ReactiveAutoscaler(up_pressure_s=1e-3, up_ticks=2)
        assert policy.decide(signals(drain_s=2e-3)) is None

    def test_sustained_pressure_scales_up(self):
        policy = ReactiveAutoscaler(up_pressure_s=1e-3, up_ticks=2)
        assert policy.decide(signals(drain_s=2e-3)) is None
        action = policy.decide(signals(drain_s=2e-3))
        assert action is not None and action.kind is ScaleKind.UP

    def test_calm_tick_resets_the_trend(self):
        policy = ReactiveAutoscaler(up_pressure_s=1e-3, up_ticks=2)
        assert policy.decide(signals(drain_s=2e-3)) is None
        # Busy-but-not-pressured: neither trend advances.
        assert policy.decide(signals(drain_s=0.1e-3, busy_workers=1)) is None
        assert policy.decide(signals(drain_s=2e-3)) is None

    def test_step_scales_with_pressure(self):
        policy = ReactiveAutoscaler(up_pressure_s=1e-3, up_ticks=1, max_step=4)
        assert policy.decide(signals(drain_s=1.5e-3)).n == 1
        assert policy.decide(signals(drain_s=3.2e-3)).n == 3
        assert policy.decide(signals(drain_s=9e-3)).n == 4  # capped

    def test_infinite_pressure_takes_the_full_step(self):
        # An empty capability pool reports inf drain — the strongest
        # scale-up signal must not crash the step computation.
        policy = ReactiveAutoscaler(up_pressure_s=1e-3, up_ticks=1, max_step=4)
        action = policy.decide(signals(drain_s=float("inf")))
        assert action.kind is ScaleKind.UP
        assert action.n == 4

    def test_sustained_idle_scales_down(self):
        policy = ReactiveAutoscaler(up_pressure_s=1e-3, down_ticks=3)
        idle = signals(n_accepting=4, busy_workers=1)
        assert policy.decide(idle) is None
        assert policy.decide(idle) is None
        action = policy.decide(idle)
        assert action is not None and action.kind is ScaleKind.DOWN

    def test_busy_fleet_is_not_idle(self):
        policy = ReactiveAutoscaler(up_pressure_s=1e-3, down_ticks=1, idle_busy_fraction=0.5)
        assert policy.decide(signals(n_accepting=2, busy_workers=2)) is None
        assert policy.decide(signals(queued_requests=3, busy_workers=0)) is None

    def test_alert_burn_up_scales_on_firing_alert_with_calm_queues(self):
        # Error budget can burn at the front door (shed storms) before any
        # queue forms; with alert_burn_up on, a firing burn-rate alert is a
        # pressured tick even at zero queue drain.
        policy = ReactiveAutoscaler(up_pressure_s=1e-3, up_ticks=2, alert_burn_up=True)
        assert policy.decide(signals(firing_alerts=1)) is None
        action = policy.decide(signals(firing_alerts=1))
        assert action is not None and action.kind is ScaleKind.UP
        assert action.n == 1
        assert "burn-rate alert" in action.reason

    def test_alert_burn_up_off_by_default_keeps_legacy_behavior(self):
        policy = ReactiveAutoscaler(up_pressure_s=1e-3, up_ticks=1)
        assert policy.decide(signals(firing_alerts=3)) is None

    def test_queue_pressure_still_takes_the_proportional_step_while_burning(self):
        # When real queue pressure and a firing alert coincide, the reason
        # and step come from the pressure path (the stronger signal).
        policy = ReactiveAutoscaler(
            up_pressure_s=1e-3, up_ticks=1, max_step=4, alert_burn_up=True
        )
        action = policy.decide(signals(drain_s=3.2e-3, firing_alerts=1))
        assert action.n == 3
        assert "queue drain" in action.reason

    def test_validation(self):
        with pytest.raises(ShapeError):
            ReactiveAutoscaler(up_pressure_s=0.0)
        with pytest.raises(ShapeError):
            ReactiveAutoscaler(up_pressure_s=1e-3, up_ticks=0)
        with pytest.raises(ShapeError):
            ReactiveAutoscaler(up_pressure_s=1e-3, max_step=0)
        with pytest.raises(ShapeError):
            ReactiveAutoscaler(up_pressure_s=1e-3, idle_busy_fraction=1.5)


class TestPredictivePolicy:
    def policy(self, **overrides) -> PredictiveAutoscaler:
        kwargs = dict(
            forecast=RateForecast(base_rate_hz=100.0, amplitude=1.0, period_s=4.0),
            capacity_hz=50.0,
            lead_s=0.5,
            headroom=1.0,
        )
        kwargs.update(overrides)
        return PredictiveAutoscaler(**kwargs)

    def test_target_tracks_the_window_max(self):
        policy = self.policy()
        # At t=0.6 the window [0.6, 1.1] contains the crest (rate 200).
        assert policy.target_workers(0.6) == 4
        # Deep past the crest the window max falls with the profile.
        assert policy.target_workers(2.9) < 4

    def test_scale_up_jumps_to_target(self):
        policy = self.policy()
        action = policy.decide(signals(t_s=0.6, n_accepting=1))
        assert action.kind is ScaleKind.UP
        assert action.n == 3

    def test_scale_down_steps_by_one(self):
        policy = self.policy()
        action = policy.decide(signals(t_s=2.9, n_accepting=8))
        assert action.kind is ScaleKind.DOWN
        assert action.n == 1

    def test_hold_window_rides_out_a_short_trough(self):
        # At t=2.2 the lead window [2.2, 2.7] shows the falling edge
        # (target 2), but the hold window [2.2, 6.2] contains the next
        # crest (t=5): the fleet stays warm for it instead of draining
        # and re-provisioning cold.
        policy = self.policy(hold_s=4.0)
        assert policy.decide(signals(t_s=2.2, n_accepting=4)) is None
        symmetric = self.policy()
        assert symmetric.decide(signals(t_s=2.2, n_accepting=4)).kind is ScaleKind.DOWN

    def test_matched_fleet_holds(self):
        policy = self.policy()
        assert policy.decide(signals(t_s=0.6, n_accepting=4)) is None

    def test_validation(self):
        with pytest.raises(ShapeError):
            self.policy(capacity_hz=0.0)
        with pytest.raises(ShapeError):
            self.policy(lead_s=-1.0)
        with pytest.raises(ShapeError):
            self.policy(headroom=0.5)
        with pytest.raises(ShapeError):
            self.policy(hold_s=0.1)  # below lead_s


class TestAutoscalerDriver:
    def autoscaler(self, policy, **overrides) -> Autoscaler:
        kwargs = dict(
            policy=policy,
            device_factory=dry_device,
            interval_s=1e-3,
            max_workers=4,
        )
        kwargs.update(overrides)
        return Autoscaler(**kwargs)

    def test_tick_clock_advances(self):
        scaler = self.autoscaler(ReactiveAutoscaler(up_pressure_s=1e-3))
        assert scaler.next_tick_s() == pytest.approx(1e-3)
        scaler.tick(1e-3, dry_fleet(1), signals())
        assert scaler.next_tick_s() == pytest.approx(2e-3)

    def test_scale_up_respects_max_workers(self):
        fleet = dry_fleet(3)
        scaler = self.autoscaler(
            PredictiveAutoscaler(
                forecast=RateForecast(100.0, 1.0, 4.0),
                capacity_hz=10.0,
                lead_s=1.0,
            ),
            max_workers=4,
        )
        events = scaler.tick(1e-3, fleet, signals(t_s=0.5, n_accepting=3))
        assert len(events) == 1
        assert len(fleet.workers) == 4

    def test_scale_down_never_drains_the_seed_fleet(self):
        fleet = dry_fleet(2)
        policy = ReactiveAutoscaler(up_pressure_s=1e-3, down_ticks=1)
        scaler = self.autoscaler(policy)
        idle = signals(n_accepting=2)
        assert scaler.tick(1e-3, fleet, idle) == []
        assert all(w.accepting for w in fleet.workers)

    def test_scale_down_is_lifo_over_added_workers(self):
        fleet = dry_fleet(1)
        up = ReactiveAutoscaler(up_pressure_s=1e-3, up_ticks=1, max_step=2)
        scaler = self.autoscaler(up)
        scaler.tick(1e-3, fleet, signals(drain_s=3e-3))
        assert [w.index for w in fleet.workers] == [0, 1, 2]
        down = scaler.tick(2e-3, fleet, signals(n_accepting=3))
        # down_ticks default is high; force the drain directly instead.
        assert down == []
        scaler.policy = ReactiveAutoscaler(up_pressure_s=1e-3, down_ticks=1)
        events = scaler.tick(3e-3, fleet, signals(n_accepting=3))
        assert [e.kind for e in events] == ["down"]
        assert events[0].worker_index == 2  # newest addition drains first

    def test_cooldown_suppresses_consecutive_actions(self):
        fleet = dry_fleet(1)
        policy = ReactiveAutoscaler(up_pressure_s=1e-3, up_ticks=1, max_step=1)
        scaler = self.autoscaler(policy, cooldown_s=2.5e-3)
        assert scaler.tick(1e-3, fleet, signals(drain_s=3e-3)) != []
        assert scaler.tick(2e-3, fleet, signals(drain_s=3e-3)) == []
        assert scaler.tick(4e-3, fleet, signals(drain_s=3e-3)) != []

    def test_scaled_up_worker_charges_startup_and_cold_plans(self):
        fleet = dry_fleet(1)
        wl = workload()
        warm = make_batch(0, wl, 2, 0.0)
        fleet.dispatch(warm)
        scaler = self.autoscaler(
            ReactiveAutoscaler(up_pressure_s=1e-3, up_ticks=1, max_step=1),
            startup_s=5e-3,
        )
        [event] = scaler.tick(1e-3, fleet, signals(drain_s=3e-3))
        newcomer = fleet.worker_by_index(event.worker_index)
        # Engines free only after the modelled startup latency...
        assert newcomer.accept_s == pytest.approx(1e-3 + 5e-3)
        # ...and its plan-cache segment starts cold.
        assert fleet.cache.entries_for(newcomer.device) == 0

    def test_validation(self):
        policy = ReactiveAutoscaler(up_pressure_s=1e-3)
        with pytest.raises(ShapeError):
            self.autoscaler(policy, interval_s=0.0)
        with pytest.raises(ShapeError):
            self.autoscaler(policy, max_workers=0)
        with pytest.raises(ShapeError):
            self.autoscaler(policy, startup_s=-1.0)
        with pytest.raises(ShapeError):
            ScaleAction(ScaleKind.UP, n=0)


class TestScaleDownDraining:
    """The non-destructive scale-down contract, piece by piece."""

    def test_in_flight_batch_finishes_on_the_draining_worker(self):
        fleet = dry_fleet(1)
        added = fleet.add_worker(dry_device(), now=0.0)
        wl = workload()
        fleet.submit(make_batch(0, wl, 2, 0.0))
        fleet.submit(make_batch(1, wl, 2, 0.0))
        placed = fleet.drain(0.0)
        on_added = [e for e in placed if e.worker_index == added.index]
        assert on_added  # the second batch landed on the newcomer
        fleet.begin_drain(added.index, now=0.0)
        # Nothing is revoked: the execution still completes on its worker.
        assert on_added[0].completion_s > 0.0
        assert fleet.reap(0.0) == []  # still busy: not retired yet
        retired = fleet.reap(on_added[0].completion_s)
        assert [w.index for w in retired] == [added.index]
        assert added.retired_s == pytest.approx(on_added[0].completion_s)

    def test_queued_batches_reroute_away_from_draining_worker(self):
        fleet = dry_fleet(1)
        added = fleet.add_worker(dry_device(), now=0.0)
        wl = workload()
        batch = make_batch(0, wl, 2, 0.0)
        fleet.submit(batch)
        assert added.index in batch.candidate_indices
        fleet.begin_drain(added.index, now=0.0)
        assert added.index not in batch.candidate_indices
        [execution] = fleet.drain(0.0)
        assert execution.worker_index == 0

    def test_held_batches_reroute_away_from_draining_worker(self):
        # int1 work is eligible on the two A100s only; keeping both busy
        # while the MI300X is free is what parks an int1 batch in the
        # dispatcher's held list.
        from repro.ccglib.precision import Precision

        fleet = FleetDispatcher(
            [
                Device("A100", ExecutionMode.DRY_RUN),
                Device("A100", ExecutionMode.DRY_RUN),
                Device("MI300X", ExecutionMode.DRY_RUN),
            ]
        )
        int1 = workload(name="int1", precision=Precision.INT1)
        f16 = workload(name="f16")
        fleet.submit(make_batch(0, int1, 2, 0.0))
        fleet.submit(make_batch(1, int1, 2, 0.0))
        fleet.drain(0.0)  # both A100s staged
        fleet.submit(make_batch(2, int1, 2, 0.0))
        fleet.submit(make_batch(3, f16, 2, 0.0))
        placed = fleet.drain(0.0)
        assert [e.worker_index for e in placed] == [2]  # f16 on the MI300X
        assert fleet.held_requests == 2  # the int1 batch is held
        held = fleet._held[0]
        assert held.candidate_indices == (0, 1)
        fleet.begin_drain(1, now=0.0)
        assert held.candidate_indices == (0,)
        # The drained worker's availability is no longer a wake-up event.
        assert fleet.next_accept_s() == fleet.worker_by_index(0).accept_s

    def test_retirement_releases_the_plan_cache_segment(self):
        fleet = dry_fleet(1)
        added = fleet.add_worker(dry_device(), now=0.0)
        wl = workload()
        fleet.submit(make_batch(0, wl, 2, 0.0))
        fleet.submit(make_batch(1, wl, 2, 0.0))
        placed = fleet.drain(0.0)
        assert fleet.cache.entries_for(added.device) == 1
        fleet.begin_drain(added.index, now=0.0)
        end = max(e.completion_s for e in placed)
        fleet.reap(end)
        assert fleet.cache.entries_for(added.device) == 0
        assert fleet.cache.released == 1
        # Reports still see the retired worker's work.
        assert added in fleet.all_workers
        assert len(fleet.utilizations()) == 2

    def test_drain_falls_back_when_no_accepting_worker_is_capable(self):
        # int1 work can only run on the NVIDIA worker; draining it must
        # not strand a batch admitted before the drain began.
        from repro.ccglib.precision import Precision

        fleet = FleetDispatcher(
            [Device("A100", ExecutionMode.DRY_RUN), Device("MI300X", ExecutionMode.DRY_RUN)]
        )
        int1 = workload(name="int1", precision=Precision.INT1)
        batch = make_batch(0, int1, 2, 0.0)
        fleet.submit(batch)
        fleet.begin_drain(0, now=0.0)
        # Re-stamping fell back to the draining (only capable) worker.
        assert batch.candidate_indices == (0,)
        [execution] = fleet.drain(0.0)
        assert execution.worker_index == 0
        # Retirement waits until the committed work is done.
        assert fleet.reap(0.0) == []
        assert fleet.reap(execution.completion_s) != []

    def test_forming_batch_pins_the_last_capable_worker(self):
        # A request admitted into a *forming* batch (still in the
        # micro-batcher) must keep its last capable worker alive until the
        # flush — otherwise the flush would strand legitimately admitted
        # work on a retired fleet.
        from repro.ccglib.precision import Precision

        fleet = FleetDispatcher([Device("MI300X", ExecutionMode.DRY_RUN)])
        added = fleet.add_worker(dry_device(), now=0.0)  # the only NVIDIA
        int1 = workload(name="int1", precision=Precision.INT1)
        fleet.forming_workloads = lambda: [int1]
        fleet.begin_drain(added.index, now=0.0)
        assert fleet.reap(1.0) == []  # pinned by the forming int1 work
        assert fleet.next_retire_s() is None
        fleet.forming_workloads = lambda: []  # the batch flushed
        assert [w.index for w in fleet.reap(1.0)] == [added.index]

    def test_double_drain_rejected(self):
        fleet = dry_fleet(2)
        fleet.begin_drain(1, now=0.0)
        with pytest.raises(DeviceError):
            fleet.begin_drain(1, now=0.0)

    def test_added_worker_must_match_execution_mode(self):
        fleet = dry_fleet(1)
        with pytest.raises(DeviceError):
            fleet.add_worker(Device("A100"), now=0.0)


class TestPressureSignals:
    def test_scheduler_pressure_by_class(self):
        fleet = dry_fleet(1)
        urgent = workload(name="urgent", priority=0)
        batchy = workload(name="batchy", priority=2)
        fleet.submit(make_batch(0, urgent, 2, 0.0))
        fleet.submit(make_batch(1, batchy, 3, 0.0))
        pressure = fleet.scheduler.pressure_by_class()
        assert set(pressure) == {0, 2}
        assert pressure[0] == QueuePressure(
            n_batches=1, n_requests=2, service_s=pressure[0].service_s
        )
        assert pressure[0].service_s > 0.0

    def test_dispatcher_merges_held_batches_into_pressure(self):
        from repro.ccglib.precision import Precision

        fleet = FleetDispatcher(
            [
                Device("A100", ExecutionMode.DRY_RUN),
                Device("MI300X", ExecutionMode.DRY_RUN),
            ]
        )
        int1 = workload(name="int1", precision=Precision.INT1)
        f16 = workload(name="f16")
        fleet.submit(make_batch(0, int1, 2, 0.0))
        fleet.drain(0.0)  # A100 staged
        fleet.submit(make_batch(1, int1, 2, 0.0))
        fleet.submit(make_batch(2, f16, 2, 0.0))
        fleet.drain(0.0)  # f16 places on the MI300X; int1 batch is held
        assert fleet.held_requests == 2
        assert fleet.scheduler.pressure_by_class() == {}
        merged = fleet.queued_pressure_by_class()
        assert merged[0].n_requests == 2

    def test_drain_by_capability_reports_unservable_as_infinite(self):
        from repro.ccglib.precision import Precision

        fleet = FleetDispatcher([Device("MI300X", ExecutionMode.DRY_RUN)])
        f16 = workload(name="f16")
        fleet.submit(make_batch(0, f16, 2, 0.0))
        drains = fleet.queued_drain_by_capability()
        assert drains["float16"] > 0.0
        # Drain the only worker: the float16 pool is now empty.
        fleet.begin_drain(0, now=0.0)
        assert fleet.queued_drain_by_capability()["float16"] == float("inf")


class TestFleetTimeline:
    def test_records_and_collapses_steps(self):
        timeline = FleetTimeline()
        timeline.record(0.0, 2, 2)
        timeline.record(1.0, 2, 2)  # identical: collapsed
        timeline.record(2.0, 3, 4)
        assert timeline.points == [(0.0, 2, 2), (2.0, 3, 4)]
        assert timeline.size_at(0.5) == 2
        assert timeline.size_at(2.5) == 3
        assert timeline.peak_size == 3  # accepting basis
        assert timeline.peak_provisioned == 4  # cost basis

    def test_device_seconds_integrates_provisioned_size(self):
        timeline = FleetTimeline()
        timeline.record(0.0, 2, 2)
        timeline.record(4.0, 4, 5)  # 2 accepting->4, one still draining
        assert timeline.device_seconds(10.0) == pytest.approx(2 * 4 + 5 * 6)
        assert timeline.mean_size(10.0) == pytest.approx(3.8)

    def test_time_must_advance(self):
        timeline = FleetTimeline()
        timeline.record(1.0, 2, 2)
        with pytest.raises(ShapeError):
            timeline.record(0.5, 3, 3)


class TestAutoscaledService:
    def run_service(self, autoscaler=None):
        wl = workload(name="svc")
        trace = poisson_arrivals(wl, rate_hz=40_000.0, horizon_s=2e-3, seed=5)
        service = BeamformingService(
            [dry_device()],
            policy=BatchingPolicy(max_batch=4, max_wait_s=100e-6),
            slo=SLO(p99_latency_s=5e-3),
            autoscaler=autoscaler,
        )
        return service.run(trace)

    def reactive(self):
        return Autoscaler(
            ReactiveAutoscaler(up_pressure_s=20e-6, up_ticks=1, down_ticks=1),
            device_factory=dry_device,
            interval_s=100e-6,
            max_workers=4,
            startup_s=50e-6,
        )

    def test_fixed_fleet_reports_are_unchanged(self):
        report = self.run_service()
        assert report.scale_events == []
        assert report.fleet_timeline.points == [(0.0, 1, 1)]
        assert report.device_seconds == pytest.approx(report.makespan_s)
        assert report.mean_fleet_size == pytest.approx(1.0)

    def test_scale_events_and_timeline_are_recorded(self):
        report = self.run_service(self.reactive())
        assert report.n_scale_ups > 0
        assert report.peak_fleet_size > 1
        times = [t for t, _, _ in report.fleet_timeline.points]
        assert times == sorted(times)
        # Every completed request is accounted even across fleet changes.
        assert report.n_completed == report.n_admitted
        # The report covers every worker that ever served.
        assert report.n_devices == len(report.device_names)
        assert report.n_devices > 1

    def test_cold_start_is_charged_to_scaled_up_workers(self):
        report = self.run_service(self.reactive())
        scaled_up = {e.worker_index for e in report.scale_events if e.kind == "up"}
        cold = {
            e.worker_index
            for e in report.executions
            if e.build_s > 0 and e.worker_index in scaled_up
        }
        assert cold  # at least one newcomer faulted its plan in

    def test_autoscaled_run_replays_bit_identically(self):
        a = self.run_service(self.reactive())
        b = self.run_service(self.reactive())
        assert a.latencies_s == b.latencies_s
        assert a.scale_events == b.scale_events
        assert a.fleet_timeline.points == b.fleet_timeline.points
        assert [e.completion_s for e in a.executions] == [e.completion_s for e in b.executions]

    def test_summary_mentions_scaling(self):
        report = self.run_service(self.reactive())
        assert "scaling:" in report.summary()


class TestFittedForecastRegression:
    """The fitted forecast must track the oracle the generator thins against."""

    def test_fitted_parameters_match_the_oracle_profile(self):
        from repro.bench.serve_autoscale import PERIOD_S, fitted_forecast, forecast

        oracle = forecast()
        fitted = fitted_forecast()
        assert fitted.period_s == oracle.period_s == PERIOD_S
        assert fitted.base_rate_hz == pytest.approx(oracle.base_rate_hz, rel=0.02)
        assert fitted.amplitude == pytest.approx(oracle.amplitude, abs=0.02)
        phase_err = abs(fitted.phase_s - oracle.phase_s) % PERIOD_S
        phase_err = min(phase_err, PERIOD_S - phase_err)
        assert phase_err <= 0.01 * PERIOD_S

    def test_fitted_predictive_run_matches_the_oracle_run(self):
        # Worker-count quantization absorbs the sub-percent fit error:
        # the fitted-forecast run is run-level identical to the oracle's.
        from repro.bench.serve_autoscale import GOLDEN_HORIZON_S, predictive_scenario

        fitted = predictive_scenario(GOLDEN_HORIZON_S)
        oracle = predictive_scenario(GOLDEN_HORIZON_S, oracle=True)
        assert fitted.n_completed == oracle.n_completed
        assert fitted.p99_latency_s == oracle.p99_latency_s
        assert len(fitted.scale_events) == len(oracle.scale_events)
