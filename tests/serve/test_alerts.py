"""SLO error budgets and multi-window burn-rate alerting.

Synthetic-feed tests of the judgement half of the monitoring layer: the
budget arithmetic is exact and windowed correctly (future-stamped events
stay in the future), and the engine's pending → firing → resolved /
cancelled lifecycle transitions exactly once per state, lands in the
trace and the metrics registry, and replays deterministically.
"""

from __future__ import annotations

import pytest

from repro.errors import ShapeError
from repro.serve import (
    AlertEngine,
    BurnRateRule,
    ErrorBudget,
    MetricsRegistry,
    TraceRecorder,
)
from repro.serve.obs.alerts import DEFAULT_RULES
from repro.serve.obs.events import AlertStateChanged

#: one rule, wide-open arithmetic: objective 90% leaves a 10% budget, so
#: a fully-bad window burns at 10x and the threshold of 2 is breached.
RULE = BurnRateRule("burn", threshold=2.0, fast_window_s=1.0, slow_window_s=2.0)
HELD_RULE = BurnRateRule(
    "held", threshold=2.0, fast_window_s=1.0, slow_window_s=2.0, pending_s=1.0
)


def _engine(rule: BurnRateRule = RULE, **kwargs) -> AlertEngine:
    return AlertEngine(rules=(rule,), objective=0.9, **kwargs)


class TestBurnRateRule:
    def test_rejects_bad_shapes(self):
        with pytest.raises(ShapeError):
            BurnRateRule("", threshold=1.0, fast_window_s=1.0, slow_window_s=1.0)
        with pytest.raises(ShapeError):
            BurnRateRule("r", threshold=0.0, fast_window_s=1.0, slow_window_s=1.0)
        with pytest.raises(ShapeError):
            BurnRateRule("r", threshold=1.0, fast_window_s=0.0, slow_window_s=1.0)
        with pytest.raises(ShapeError):
            BurnRateRule("r", threshold=1.0, fast_window_s=2.0, slow_window_s=1.0)
        with pytest.raises(ShapeError):
            BurnRateRule(
                "r", threshold=1.0, fast_window_s=1.0, slow_window_s=1.0, pending_s=-1.0
            )

    def test_default_rules_are_fast_then_slow(self):
        names = [rule.name for rule in DEFAULT_RULES]
        assert names == ["fast-burn", "slow-burn"]
        for rule in DEFAULT_RULES:
            assert rule.fast_window_s <= rule.slow_window_s

    def test_to_dict_round_trips_the_fields(self):
        d = RULE.to_dict()
        assert d == {
            "name": "burn",
            "threshold": 2.0,
            "fast_window_s": 1.0,
            "slow_window_s": 2.0,
            "pending_s": 0.0,
        }


class TestErrorBudget:
    def test_rejects_bad_objective(self):
        for objective in (0.0, 1.0, -0.5, 2.0):
            with pytest.raises(ShapeError):
                ErrorBudget("svc", objective)

    def test_window_counts_with_out_of_order_appends(self):
        budget = ErrorBudget("svc", 0.9)
        budget.record(3.0, good=False)
        budget.record(1.0, good=True)
        budget.record(2.0, good=False)
        assert budget.n_events == 3
        assert budget.n_bad == 2
        assert budget.window_counts(10.0, now=3.0) == (3, 2)
        assert budget.window_counts(1.0, now=3.0) == (1, 1)  # (2, 3] only

    def test_future_events_stay_in_the_future(self):
        budget = ErrorBudget("svc", 0.9)
        budget.record(5.0, good=False)  # completion settled early
        assert budget.window_counts(10.0, now=1.0) == (0, 0)
        assert budget.error_rate(10.0, now=1.0) == 0.0
        assert budget.window_counts(10.0, now=5.0) == (1, 1)

    def test_burn_rate_scales_error_rate_by_the_budget(self):
        budget = ErrorBudget("svc", 0.9)
        budget.record(1.0, good=False)
        budget.record(1.5, good=True)
        assert budget.error_rate(2.0, now=2.0) == 0.5
        assert budget.burn_rate(2.0, now=2.0) == pytest.approx(5.0)

    def test_empty_window_is_zero_burn(self):
        budget = ErrorBudget("svc", 0.9)
        assert budget.burn_rate(1.0, now=1.0) == 0.0
        with pytest.raises(ShapeError):
            budget.window_counts(0.0, now=1.0)


class TestEngineValidation:
    def test_needs_at_least_one_rule(self):
        with pytest.raises(ShapeError):
            AlertEngine(rules=())

    def test_rejects_duplicate_rule_names(self):
        with pytest.raises(ShapeError):
            AlertEngine(rules=(RULE, RULE))


class TestLifecycle:
    def test_zero_holddown_fires_on_the_breaching_tick(self):
        engine = _engine()
        engine.observe(0.5, ("svc",), good=False)
        engine.evaluate(1.0)
        (alert,) = engine.history
        assert alert.state == "firing"
        assert alert.pending_s == 1.0
        assert alert.firing_s == 1.0
        # The fast window (1, 2] is clean: the alert resolves.
        engine.evaluate(2.0)
        assert alert.state == "resolved"
        assert alert.resolved_s == 2.0
        assert alert.peak_burn == pytest.approx(10.0)

    def test_holddown_passes_through_pending(self):
        engine = _engine(HELD_RULE)
        engine.observe(0.5, ("svc",), good=False)
        engine.observe(1.5, ("svc",), good=False)
        engine.evaluate(1.0)
        (alert,) = engine.history
        assert alert.state == "pending"
        engine.evaluate(2.0)  # breach held for pending_s=1.0
        assert alert.state == "firing"
        assert alert.firing_s == 2.0

    def test_pending_alert_cancels_when_the_breach_clears(self):
        engine = _engine(HELD_RULE)
        engine.observe(0.5, ("svc",), good=False)
        engine.evaluate(1.0)
        (alert,) = engine.history
        assert alert.state == "pending"
        engine.evaluate(2.0)  # fast window (1, 2] is clean
        assert alert.state == "cancelled"
        assert alert.cancelled_s == 2.0
        assert alert.firing_s is None

    def test_a_new_breach_opens_a_new_alert_instance(self):
        engine = _engine()
        engine.observe(0.5, ("svc",), good=False)
        engine.evaluate(1.0)
        engine.evaluate(2.0)  # resolves
        engine.observe(2.5, ("svc",), good=False)
        engine.evaluate(3.0)
        assert [a.aid for a in engine.history] == ["svc/burn#1", "svc/burn#2"]

    def test_slow_window_suppresses_a_single_blip(self):
        # One bad in a sea of good: fast window breaches, slow does not.
        rule = BurnRateRule("r", threshold=5.0, fast_window_s=0.5, slow_window_s=2.0)
        engine = _engine(rule)
        for i in range(16):
            engine.observe(0.1 + i * 0.1, ("svc",), good=True)
        engine.observe(1.75, ("svc",), good=False)
        # fast (1.5, 2]: 1 bad of 6 -> burn ~1.67; under threshold 5 -> quiet.
        engine.evaluate(2.0)
        assert engine.history == []

    def test_scopes_evaluate_in_sorted_order(self):
        engine = _engine()
        engine.observe(0.5, ("zeta", "alpha"), good=False)
        engine.evaluate(1.0)
        assert [a.scope for a in engine.history] == ["alpha", "zeta"]


class TestEmission:
    def test_transitions_land_as_trace_instants_in_order(self):
        engine = _engine()
        recorder = TraceRecorder()
        engine.bind(recorder, None)
        engine.observe(0.5, ("svc",), good=False)
        engine.evaluate(1.0)
        engine.evaluate(2.0)
        states = [
            e.state for e in recorder.events if isinstance(e, AlertStateChanged)
        ]
        assert states == ["pending", "firing", "resolved"]

    def test_transitions_count_as_metrics(self):
        engine = _engine(HELD_RULE)
        metrics = MetricsRegistry()
        engine.bind(TraceRecorder(), metrics)
        engine.observe(0.5, ("svc",), good=False)
        engine.evaluate(1.0)
        engine.evaluate(2.0)  # cancels
        assert metrics.counter("alerts.pending").value == 1
        assert metrics.counter("alerts.cancelled").value == 1
        assert metrics.counter("alerts.firing").value == 0

    def test_unbound_engine_emits_nothing_and_still_works(self):
        engine = _engine()
        engine.observe(0.5, ("svc",), good=False)
        engine.evaluate(1.0)
        assert engine.count("firing") == 1


class TestReporting:
    def test_count_firing_includes_resolved_alerts(self):
        engine = _engine()
        engine.observe(0.5, ("svc",), good=False)
        engine.evaluate(1.0)
        engine.evaluate(2.0)
        assert engine.count("firing") == 1
        assert engine.count("resolved") == 1
        assert engine.count("cancelled") == 0

    def test_snapshot_shape(self):
        engine = _engine()
        engine.observe(0.5, ("svc",), good=False)
        engine.evaluate(1.0)
        snapshot = engine.snapshot()
        assert set(snapshot) == {
            "objective",
            "rules",
            "history",
            "fired",
            "resolved",
            "cancelled",
        }
        assert snapshot["objective"] == 0.9
        assert snapshot["rules"] == [RULE.to_dict()]
        (alert,) = snapshot["history"]
        assert alert["id"] == "svc/burn#1"
        assert alert["state"] == "firing"

    def test_replay_is_deterministic(self):
        def play() -> list[dict]:
            engine = _engine()
            for i in range(20):
                engine.observe(0.1 * i, ("svc", "tenant=a"), good=i % 3 == 0)
                engine.evaluate(0.1 * i + 0.05)
            return [a.to_dict() for a in engine.history]

        assert play() == play()
