"""The placement layer: capability routing, shape buckets, in-service splits.

The tentpole contract of the placement PR: every request receives an
explicit PlacementDecision, int1 work never lands on a device without 1-bit
MMA, nearby shapes pad-and-merge into buckets priced by the cost model, and
requests larger than any single device shard across the fleet instead of
being shed — all deterministic, all consistent with the functional path.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.radioastronomy.beamformer import service_workload as _lofar_pipeline
from repro.apps.ultrasound.imaging import service_workload as _ultrasound_pipeline
from repro.errors import DeviceError, ShapeError
from repro.gpusim.device import Device, ExecutionMode
from repro.serve import (
    SLO,
    Batch,
    BatchingPolicy,
    BeamformingService,
    FleetDispatcher,
    PlacementDecision,
    PlacementKind,
    Placer,
    Request,
    Workload,
    merge_arrivals,
    poisson_arrivals,
)
from tests.conftest import random_complex

def lofar_workload(**kwargs):
    """The LOFAR adapter's bare kernel (the documented migration unwrap)."""
    return _lofar_pipeline(**kwargs).kernel


def ultrasound_workload(**kwargs):
    """The ultrasound adapter's bare kernel (the documented migration unwrap)."""
    return _ultrasound_pipeline(**kwargs).kernel


BIG_SLO = SLO(p99_latency_s=1e6)


def workload(name="wl", **overrides) -> Workload:
    kwargs = dict(name=name, n_beams=64, n_receivers=32, n_samples=64)
    kwargs.update(overrides)
    return Workload(**kwargs)


def dry(gpu: str = "A100") -> Device:
    return Device(gpu, ExecutionMode.DRY_RUN)


def fleet(*gpus: str) -> FleetDispatcher:
    return FleetDispatcher([dry(g) for g in gpus])


def make_batch(bid, wl, n, formed_s=0.0, decision=None) -> Batch:
    requests = [Request(rid=bid * 1000 + i, workload=wl, arrival_s=formed_s) for i in range(n)]
    return Batch(bid=bid, workload=wl, requests=requests, formed_s=formed_s, decision=decision)


class TestCapability:
    def test_int1_needs_nvidia(self):
        from repro.ccglib.precision import Precision

        int1 = workload(precision=Precision.INT1)
        assert int1.supported_by(dry("A100").spec)
        assert int1.supported_by(dry("GH200").spec)
        assert not int1.supported_by(dry("MI300X").spec)
        assert not int1.supported_by(dry("W7700").spec)

    def test_float16_runs_anywhere(self):
        wl = workload()
        for gpu in ("A100", "GH200", "MI300X", "MI210", "W7700", "AD4000"):
            assert wl.supported_by(dry(gpu).spec)

    def test_capable_workers_filter(self):
        from repro.ccglib.precision import Precision

        mixed = fleet("GH200", "MI300X")
        int1 = workload(precision=Precision.INT1)
        capable = mixed.placer.capable_workers(int1)
        assert [w.device.name for w in capable] == ["GH200"]
        assert len(mixed.placer.capable_workers(workload())) == 2

    def test_shed_decision_when_no_capable_device(self):
        from repro.ccglib.precision import Precision

        amd = fleet("MI300X")
        decision = amd.placer.place(workload(precision=Precision.INT1), BatchingPolicy())
        assert decision.kind is PlacementKind.SHED
        assert decision.reason == "capability"
        assert amd.placer.decisions == {"shed": 1}

    def test_submit_rejects_infeasible_batch(self):
        from repro.ccglib.precision import Precision

        amd = fleet("MI300X")
        with pytest.raises(DeviceError, match="no device"):
            amd.submit(make_batch(0, workload(precision=Precision.INT1), 1))


class TestFootprint:
    def test_footprint_scales_with_requests(self):
        wl = workload()
        assert wl.footprint_bytes(4) == pytest.approx(4 * wl.footprint_bytes(1))

    def test_normal_requests_fit(self):
        f = fleet("A100")
        assert f.placer.fits(f.workers[0], workload(), 8)

    def test_oversized_request_does_not_fit(self):
        f = fleet("A100")
        giant = lofar_workload(n_samples=256, n_channels=150_000)
        assert not f.placer.fits(f.workers[0], giant)


class TestDecisions:
    def test_route_is_the_default(self):
        f = fleet("A100")
        decision = f.placer.place(workload(), BatchingPolicy())
        assert decision.kind is PlacementKind.ROUTE
        assert decision.workload == workload()

    def test_merge_pads_to_bucket_edge(self):
        f = fleet("A100")
        policy = BatchingPolicy(sample_buckets=(128,))
        decision = f.placer.place(workload(n_samples=110), policy)
        assert decision.kind is PlacementKind.MERGE
        assert decision.workload.n_samples == 128
        # Beyond the largest edge: exact shape, plain route.
        decision = f.placer.place(workload(n_samples=200), policy)
        assert decision.kind is PlacementKind.ROUTE

    def test_pad_budget_bounds_bucket_overhead(self):
        # A 64-sample request must not be padded 32x just because a 2048
        # edge exists: beyond max_pad_fraction the exact shape wins.
        f = fleet("A100")
        policy = BatchingPolicy(sample_buckets=(2048,))
        decision = f.placer.place(workload(n_samples=64), policy)
        assert decision.kind is PlacementKind.ROUTE
        assert policy.bucket_samples(64) == 64
        assert policy.bucket_samples(1792) == 2048  # 14% < the 25% budget
        generous = BatchingPolicy(sample_buckets=(2048,), max_pad_fraction=100.0)
        assert generous.bucket_samples(64) == 2048

    def test_exact_edge_shape_routes_unpadded(self):
        f = fleet("A100")
        policy = BatchingPolicy(sample_buckets=(64,))
        decision = f.placer.place(workload(n_samples=64), policy)
        assert decision.kind is PlacementKind.ROUTE

    def test_split_across_memory_proportional_shards(self):
        mixed = fleet("GH200", "MI300X")  # 96 vs 192 GB
        giant = lofar_workload(n_samples=256, n_channels=350_000)
        decision = mixed.placer.place(giant, BatchingPolicy())
        assert decision.kind is PlacementKind.SPLIT
        assert sum(decision.shard_extents) == 350_000
        # The MI300X (2x the memory) takes ~2x the channels and, being the
        # larger device, comes first in the shard assignment.
        by_index = dict(zip(decision.shard_worker_indices, decision.shard_extents))
        assert by_index[1] > by_index[0]
        assert by_index[1] == pytest.approx(2 * by_index[0], rel=0.01)

    def test_unsplittable_oversize_sheds_for_capacity(self):
        f = fleet("A100", "A100")
        giant = lofar_workload(n_samples=30_000_000, n_channels=1)  # batch axis of 1
        assert not giant.splittable
        decision = f.placer.place(giant, BatchingPolicy())
        assert decision.kind is PlacementKind.SHED
        assert decision.reason == "capacity"

    def test_estimates_never_touch_device_timelines(self):
        f = fleet("A100", "GH200")
        wl = workload()
        for worker in f.workers:
            f.placer.estimate(worker, wl, 8)
        f.placer.place(wl, BatchingPolicy(sample_buckets=(128,)))
        assert all(len(w.device.timeline) == 0 for w in f.workers)

    def test_estimate_is_memoized(self):
        f = fleet("A100")
        first = f.placer.estimate(f.workers[0], workload(), 4)
        assert f.placer.estimate(f.workers[0], workload(), 4) is first


class TestWorkerSelection:
    def test_homogeneous_fleet_reduces_to_least_loaded(self):
        f = fleet("A100", "A100", "A100")
        wl = workload()
        batch = make_batch(0, wl, 2)
        assert f.placer.select_worker(batch, f.workers, 0.0).index == 0
        f.dispatch(make_batch(1, wl, 2))  # loads worker 0
        assert f.placer.select_worker(batch, f.workers, 0.0).index == 1

    def test_heterogeneous_fleet_prefers_faster_device(self):
        # Same backlog (idle fleet): the worker with the smaller predicted
        # stage-in + GEMM wins, whatever its index.
        f = fleet("W7700", "GH200")
        batch = make_batch(0, lofar_workload(n_samples=2048), 8)
        costs = [f.placer.estimate(w, batch.workload, 8).service_s for w in f.workers]
        assert costs[1] < costs[0]  # the GH200 is far faster here
        assert f.placer.select_worker(batch, f.workers, 0.0).index == 1

    def test_backlog_eventually_overflows_to_slower_device(self):
        f = fleet("W7700", "GH200")
        wl = lofar_workload(n_samples=2048)
        for i in range(12):
            f.dispatch(make_batch(i, wl, 8))
        used = {e.worker_index for e in f.executions}
        assert used == {0, 1}  # the slow device still backfills under load


class TestSplitDispatch:
    def test_split_execution_spans_workers_and_takes_slowest(self):
        mixed = fleet("GH200", "MI300X")
        giant = lofar_workload(n_samples=256, n_channels=350_000)
        decision = mixed.placer.place(giant, BatchingPolicy())
        batch = make_batch(0, giant, 1, decision=decision)
        execution = mixed.dispatch(batch)
        assert execution.is_split
        assert len(execution.shards) == 2
        assert {s.device_name for s in execution.shards} == {"GH200", "MI300X"}
        assert execution.completion_s == max(s.completion_s for s in execution.shards)
        # Both workers' compute engines were really occupied.
        assert all(w.busy_s > 0 for w in mixed.workers)

    def test_functional_split_matches_reference(self, rng):
        b, m, k, n = 6, 8, 16, 12
        weights = random_complex(rng, (b, m, k))
        data = random_complex(rng, (b, k, n))
        wl = workload(
            n_beams=m, n_receivers=k, n_samples=n, batch_per_request=b,
            restore_output_scale=True, weights=weights,
        )
        f = FleetDispatcher([Device("A100"), Device("A100")])
        decision = PlacementDecision(
            kind=PlacementKind.SPLIT,
            workload=wl,
            shard_extents=(4, 2),
            shard_worker_indices=(0, 1),
        )
        batch = Batch(
            bid=0,
            workload=wl,
            requests=[Request(rid=0, workload=wl, arrival_s=0.0, data=data)],
            formed_s=0.0,
            decision=decision,
        )
        execution = f.dispatch(batch)
        assert execution.outputs is not None and len(execution.outputs) == 1
        assert np.allclose(execution.outputs[0], weights @ data, atol=0.05)


class TestBucketedBatching:
    def test_policy_validation(self):
        with pytest.raises(ShapeError, match="ascending"):
            BatchingPolicy(sample_buckets=(128, 64))
        with pytest.raises(ShapeError, match="ascending"):
            BatchingPolicy(sample_buckets=(64, 64))
        with pytest.raises(ShapeError):
            BatchingPolicy(sample_buckets=(0, 64))
        with pytest.raises(ShapeError, match="max_pad_fraction"):
            BatchingPolicy(max_pad_fraction=-0.1)
        # 65 -> 128 is 97% padding: over the default budget, exact shape wins;
        # a generous budget buckets it.
        assert BatchingPolicy(sample_buckets=(64, 128)).bucket_samples(65) == 65
        assert BatchingPolicy(
            sample_buckets=(64, 128), max_pad_fraction=1.0
        ).bucket_samples(65) == 128
        assert BatchingPolicy(sample_buckets=(64, 128)).bucket_samples(120) == 128

    def test_padded_to_validation(self):
        with pytest.raises(ShapeError, match="pad"):
            workload(n_samples=64).padded_to(32)
        assert workload(n_samples=64).padded_to(64) is not None

    def test_nearby_shapes_share_one_launch(self):
        nearby = [lofar_workload(n_samples=n) for n in (1900, 1980, 2048)]
        trace = merge_arrivals(
            *[
                poisson_arrivals(wl, 50_000.0, 0.002, seed=7 + i)
                for i, wl in enumerate(nearby)
            ]
        )
        service = BeamformingService(
            [dry()],
            policy=BatchingPolicy(
                max_batch=32, max_wait_s=1e-3, sample_buckets=(2048,)
            ),
            slo=BIG_SLO,
        )
        report = service.run(trace)
        assert report.n_completed == len(trace)
        sample_mixes = [{r.workload.n_samples for e in report.executions for r in e.batch.requests}]
        # At least one launch merged more than one exact shape.
        mixed_launches = [
            e
            for e in report.executions
            if len({r.workload.n_samples for r in e.batch.requests}) > 1
        ]
        assert mixed_launches, sample_mixes
        # Every merged launch executed at the bucket edge and paid for it.
        for e in mixed_launches:
            assert e.batch.workload.n_samples == 2048
            assert e.batch.padded_ops > 0
        assert report.padded_ops_fraction > 0
        assert report.placements.get("merge", 0) > 0

    def test_functional_bucket_merge_trims_back_exact_outputs(self, rng):
        m, k = 8, 16
        weights = random_complex(rng, (1, m, k))
        short = workload(
            n_beams=m, n_receivers=k, n_samples=10,
            include_transpose=False, restore_output_scale=True, weights=weights,
        )
        long = workload(
            n_beams=m, n_receivers=k, n_samples=12,
            include_transpose=False, restore_output_scale=True, weights=weights,
        )
        requests = [
            Request(rid=0, workload=short, arrival_s=0.0,
                    data=random_complex(rng, (1, k, 10))),
            Request(rid=1, workload=long, arrival_s=1e-6,
                    data=random_complex(rng, (1, k, 12))),
        ]
        service = BeamformingService(
            [Device("A100")],
            policy=BatchingPolicy(max_batch=2, max_wait_s=1e-3, sample_buckets=(12,)),
            slo=BIG_SLO,
        )
        report = service.run(requests)
        assert report.n_completed == 2
        for outcome in report.outcomes:
            reference = weights @ outcome.request.data
            assert outcome.output.shape == reference.shape
            assert np.allclose(outcome.output, reference, atol=0.05)


class TestServiceEndToEnd:
    def test_int1_never_lands_on_amd(self):
        imaging = ultrasound_workload(n_voxels=1024, k=512, n_frames=32)
        beams = lofar_workload()
        trace = merge_arrivals(
            poisson_arrivals(imaging, 20_000.0, 0.003, seed=3),
            poisson_arrivals(beams, 100_000.0, 0.003, seed=4),
        )
        service = BeamformingService(
            [dry("GH200"), dry("MI300X")], policy=BatchingPolicy(max_batch=8),
            slo=BIG_SLO,
        )
        report = service.run(trace)
        int1_launches = [e for e in report.executions if e.batch.workload.precision.value == "int1"]
        assert int1_launches
        assert all(e.device_name == "GH200" for e in int1_launches)
        amd_launches = [e for e in report.executions if e.device_name == "MI300X"]
        assert amd_launches  # float16 work backfilled the AMD device

    def test_capability_shed_on_amd_only_fleet(self):
        imaging = ultrasound_workload(n_voxels=1024, k=512, n_frames=32)
        trace = poisson_arrivals(imaging, 10_000.0, 0.002, seed=9)
        service = BeamformingService([dry("MI300X")], slo=BIG_SLO)
        report = service.run(trace)
        assert report.n_completed == 0
        assert report.shed_rate == 1.0
        assert report.placements == {"shed": len(trace)}
        # The shed is attributed to the requests' own class.
        assert report.shed_share(imaging.priority) == 1.0

    def test_oversized_request_is_served_not_shed(self):
        giant = lofar_workload(n_samples=256, n_channels=100_000)
        background = lofar_workload()
        trace = merge_arrivals(
            poisson_arrivals(background, 50_000.0, 0.002, seed=5),
            [Request(rid=0, workload=giant, arrival_s=0.001)],
        )
        service = BeamformingService(
            [dry("A100"), dry("A100")], policy=BatchingPolicy(max_batch=8),
            slo=BIG_SLO,
        )
        report = service.run(trace)
        assert report.n_completed == len(trace)
        assert report.n_split_batches == 1
        giant_outcome = next(
            o for o in report.outcomes
            if o.request.workload.batch_per_request == 100_000
        )
        assert giant_outcome.completion_s is not None
        split = next(e for e in report.executions if e.is_split)
        assert len(split.shards) == 2
        assert report.placements.get("split") == 1

    def test_held_batches_do_not_block_other_devices(self):
        from repro.ccglib.precision import Precision

        mixed = fleet("A100", "MI210")
        int1 = workload("nv_only", precision=Precision.INT1)
        f16 = workload("anywhere")
        mixed.submit(make_batch(0, int1, 1))
        mixed.submit(make_batch(1, int1, 1))
        mixed.submit(make_batch(2, f16, 1))
        placed = mixed.drain(0.0)
        # int1 #0 takes the A100; int1 #1 is held (A100 busy, MI210
        # incapable); the float16 batch still reaches the MI210.
        assert [e.batch.bid for e in placed] == [0, 2]
        assert placed[0].device_name == "A100"
        assert placed[1].device_name == "MI210"
        assert mixed.has_queued()
        assert mixed.held_requests == 1
        later = mixed.next_accept_s()
        placed2 = mixed.drain(later)
        assert [e.batch.bid for e in placed2] == [1]
        assert placed2[0].device_name == "A100"

    def test_held_batch_does_not_jump_a_more_urgent_arrival(self):
        from repro.ccglib.precision import Precision

        mixed = fleet("A100", "MI210")
        int1_batch = workload("nv_batch", precision=Precision.INT1, priority=1)
        int1_live = workload("nv_live", precision=Precision.INT1, priority=0)
        f16 = workload("anywhere", priority=1)
        # Fill the A100 and park a priority-1 int1 batch in the held list.
        mixed.submit(make_batch(0, int1_batch, 1))
        mixed.submit(make_batch(1, int1_batch, 1))
        mixed.submit(make_batch(2, f16, 1))
        mixed.drain(0.0)
        assert mixed.held_requests == 1
        # A more urgent int1 batch arrives while #1 is held: when the A100
        # frees, strict priority must still hold — the later priority-0
        # batch dispatches before the held priority-1 one.
        mixed.submit(make_batch(3, int1_live, 1))
        later = mixed.next_accept_s()
        placed = mixed.drain(later)
        assert [e.batch.bid for e in placed] == [3]
        assert mixed.held_requests == 1  # the stale batch kept waiting
        final = mixed.drain(mixed.next_accept_s())
        assert [e.batch.bid for e in final] == [1]

    def test_held_work_counts_toward_admission_estimates(self):
        from repro.ccglib.precision import Precision

        mixed = fleet("A100", "MI210")
        int1 = workload("nv_only", precision=Precision.INT1)
        mixed.submit(make_batch(0, int1, 2))
        mixed.submit(make_batch(1, int1, 2))
        mixed.submit(make_batch(2, int1, 2))
        mixed.drain(0.0)  # one placed, the rest held (single capable device)
        assert mixed.held_requests == 4
        assert mixed.held_service_s(0) > 0.0
        # The scheduler is empty, so without the held term the projection
        # would claim the queue drained.
        assert mixed.scheduler.queued_service_s(0) == 0.0

    def test_report_carries_placement_counters_and_devices(self):
        beams = lofar_workload()
        trace = poisson_arrivals(beams, 50_000.0, 0.002, seed=2)
        service = BeamformingService([dry("A100"), dry("GH200")], slo=BIG_SLO)
        report = service.run(trace)
        assert report.device_names == ["A100", "GH200"]
        assert report.placements.get("route") == len(trace)
        workers = report.by_worker()
        assert sum(w["requests"] for w in workers) == report.n_completed
        assert "placing:" in report.summary()

    def test_placement_run_is_deterministic(self):
        def one_run():
            imaging = ultrasound_workload(n_voxels=1024, k=512, n_frames=32)
            beams = lofar_workload(n_samples=1900)
            trace = merge_arrivals(
                poisson_arrivals(imaging, 20_000.0, 0.003, seed=13),
                poisson_arrivals(beams, 80_000.0, 0.003, seed=14),
            )
            service = BeamformingService(
                [dry("GH200"), dry("MI300X")],
                policy=BatchingPolicy(
                    max_batch=16, max_wait_s=5e-4, sample_buckets=(2048,)
                ),
                slo=BIG_SLO,
            )
            report = service.run(trace)
            return (
                report.latencies_s,
                report.n_batches,
                report.placements,
                [e.device_name for e in report.executions],
            )

        assert one_run() == one_run()
