"""PlanCache: hit/miss accounting, one-time build charge, LRU eviction."""

from __future__ import annotations

import pytest

from repro.errors import ShapeError
from repro.gpusim.device import Device, ExecutionMode
from repro.serve import PlanCache, Workload


def workload(name="wl", **overrides) -> Workload:
    kwargs = dict(name=name, n_beams=64, n_receivers=32, n_samples=64)
    kwargs.update(overrides)
    return Workload(**kwargs)


def dry() -> Device:
    return Device("A100", ExecutionMode.DRY_RUN)


class TestHitMiss:
    def test_second_lookup_is_free(self):
        cache = PlanCache()
        device, wl = dry(), workload()
        entry1, build1 = cache.get(device, wl, 4)
        entry2, build2 = cache.get(device, wl, 4)
        assert entry1 is entry2
        assert build1 > 0.0  # planning overhead + weight prep
        assert build2 == 0.0
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate == 0.5
        assert entry2.hits == 1

    def test_build_charge_includes_weight_prep(self):
        cache = PlanCache(build_overhead_s=0.0)
        _, build = cache.get(dry(), workload(), 1)
        # With zero overhead the entire charge is the weight-prep kernels.
        assert build > 0.0

    def test_distinct_merged_extents_are_distinct_plans(self):
        cache = PlanCache()
        device, wl = dry(), workload()
        e4, _ = cache.get(device, wl, 4)
        e8, _ = cache.get(device, wl, 8)
        assert e4 is not e8
        assert e4.plan.batch == 4 and e8.plan.batch == 8
        assert cache.misses == 2

    def test_device_partitions_the_key(self):
        cache = PlanCache()
        wl = workload()
        cache.get(Device("A100", ExecutionMode.DRY_RUN), wl, 2)
        cache.get(Device("GH200", ExecutionMode.DRY_RUN), wl, 2)
        assert cache.misses == 2

    def test_memoized_costs_match_plan_predictions(self):
        cache = PlanCache()
        entry, _ = cache.get(dry(), workload(), 2)
        assert entry.gemm_s == pytest.approx(entry.plan.predict_gemm_cost().time_s)
        stage = entry.plan.stage_in_cost()
        assert entry.stage_in_s == pytest.approx(stage.time_s)

    def test_gemm_only_workload_has_zero_stage_in(self):
        wl = workload(include_transpose=False)
        entry, _ = PlanCache().get(dry(), wl, 2)
        assert entry.stage_in_s == 0.0

    def test_compat_key_consistent_with_plan_cache_key(self):
        # The cache keys on the pre-build Workload.compat_key; the built
        # plan's cache_key is the ground truth. Distinct entries must hold
        # plans with distinct keys, equal configs equal keys.
        cache = PlanCache()
        device = dry()
        e_a, _ = cache.get(device, workload("a"), 2)
        e_b, _ = cache.get(device, workload("b", n_beams=128), 2)
        e_c, _ = cache.get(device, workload("a"), 4)
        keys = [e.plan.cache_key for e in (e_a, e_b, e_c)]
        assert len(set(keys)) == 3
        assert workload("a").make_plan(device, 2).cache_key == e_a.plan.cache_key


class TestEviction:
    def test_lru_evicts_oldest(self):
        cache = PlanCache(capacity=2)
        device = dry()
        a, b, c = workload("a"), workload("b"), workload("c")
        cache.get(device, a, 1)
        cache.get(device, b, 1)
        cache.get(device, a, 1)  # refresh a: b is now LRU
        cache.get(device, c, 1)  # evicts b
        assert cache.evictions == 1
        cache.get(device, a, 1)
        assert cache.hits == 2  # a stayed resident
        cache.get(device, b, 1)
        assert cache.misses == 4  # b had to rebuild

    def test_capacity_bound_holds(self):
        cache = PlanCache(capacity=3)
        device = dry()
        for i in range(10):
            cache.get(device, workload(f"w{i}"), 1)
        assert len(cache) == 3
        assert cache.evictions == 7

    def test_validation(self):
        with pytest.raises(ShapeError):
            PlanCache(capacity=0)
        with pytest.raises(ShapeError):
            PlanCache(build_overhead_s=-1.0)
        with pytest.raises(ShapeError):
            workload().make_plan(dry(), 0)


class TestPerDeviceSegments:
    """Mixed-fleet capacity semantics: capacity bounds each device's segment.

    The regression this pins: with one shared LRU, a high-churn device
    (odd shapes, no buckets) evicted a quiet device's hot plans, coupling
    the fleet's cold-start behavior. Entries are now keyed *and accounted*
    per device.
    """

    def test_one_devices_churn_cannot_evict_anothers_hot_plans(self):
        cache = PlanCache(capacity=2)
        quiet, churny = dry(), dry()
        hot_a, hot_b = workload("hot_a"), workload("hot_b")
        cache.get(quiet, hot_a, 1)
        cache.get(quiet, hot_b, 1)
        # Churn far past capacity on the other device.
        for i in range(8):
            cache.get(churny, workload(f"churn{i}"), 1)
        # The quiet device's plans are untouched: both still hit.
        misses_before = cache.misses
        cache.get(quiet, hot_a, 1)
        cache.get(quiet, hot_b, 1)
        assert cache.misses == misses_before
        assert cache.entries_for(quiet) == 2
        assert cache.entries_for(churny) == 2  # its own segment stayed bounded

    def test_eviction_order_is_lru_within_a_segment(self):
        cache = PlanCache(capacity=2)
        device, other = dry(), dry()
        a, b, c = workload("a"), workload("b"), workload("c")
        cache.get(device, a, 1)
        cache.get(device, b, 1)
        # Traffic on another device must not refresh this segment's order.
        cache.get(other, workload("elsewhere"), 1)
        cache.get(device, a, 1)  # refresh a: b is now this segment's LRU
        cache.get(device, c, 1)  # evicts b, not a
        assert cache.evictions == 1
        misses_before = cache.misses
        cache.get(device, a, 1)  # hit
        assert cache.misses == misses_before
        cache.get(device, b, 1)  # b was the one evicted
        assert cache.misses == misses_before + 1

    def test_contains_does_not_refresh_lru_order(self):
        cache = PlanCache(capacity=2)
        device = dry()
        a, b, c = workload("a"), workload("b"), workload("c")
        cache.get(device, a, 1)
        cache.get(device, b, 1)
        assert cache.contains(device, a, 1)  # a peek, not a touch
        cache.get(device, c, 1)  # evicts a (still LRU despite contains)
        assert not cache.contains(device, a, 1)
        assert cache.contains(device, b, 1)
        assert cache.contains(device, c, 1)

    def test_total_len_spans_segments(self):
        cache = PlanCache(capacity=4)
        d1, d2 = dry(), dry()
        cache.get(d1, workload("x"), 1)
        cache.get(d2, workload("x"), 1)
        cache.get(d2, workload("y"), 1)
        assert len(cache) == 3
        assert cache.entries_for(d1) == 1
        assert cache.entries_for(d2) == 2
