"""Pipeline (DAG) workloads end to end through the serving tier.

The acceptance bars of the pipeline PR, layer by layer:

* **topology** — :class:`PipelineWorkload` validation rejects cycles,
  duplicate stages, unknown or duplicate dependencies, and multi-source
  graphs at construction; ``.kernel`` is defined for single-stage
  pipelines only;
* **byte-identity** — a :meth:`Workload.single_stage` pipeline replays
  the legacy bare-workload path bit-identically (the refactor that let
  ``service_workload()`` change its return type without moving a golden);
* **end-to-end** — a multi-stage run releases every stage exactly once,
  completes at the last stage, and records a gating chain whose
  telescoping segments sum bit-exactly to the end-to-end latency;
* **locality** — stage-locality placement keeps more stage dispatches on
  the buffer-resident worker than stage-blind placement, at a no-worse
  tail, with both arms paying the same transfer physics;
* **recovery** — a mid-run crash under the default
  :class:`ResiliencePolicy` re-enters the pipeline at the lost stage and
  still completes every admitted request;
* **observability** — a traced run replays an untraced one bit-identically.
"""

from __future__ import annotations

import pytest

from repro.apps.radioastronomy.beamformer import pipeline_workload as radio_pipeline
from repro.apps.radioastronomy.beamformer import service_workload as lofar_service
from repro.apps.ultrasound.imaging import pipeline_workload as ultrasound_pipeline
from repro.errors import ShapeError
from repro.gpusim.device import Device, ExecutionMode
from repro.serve import (
    SLO,
    BatchingPolicy,
    BeamformingService,
    FaultEvent,
    FaultKind,
    FaultPlan,
    PipelineWorkload,
    Placer,
    ResiliencePolicy,
    Stage,
    Workload,
    merge_arrivals,
    poisson_arrivals,
)
from repro.serve.obs.trace import TraceRecorder

POLICY = BatchingPolicy(max_batch=8, max_wait_s=100e-6)
SLO_WIDE = SLO(p99_latency_s=1.0)


def _fleet(n: int = 2, gpu: str = "A100") -> list[Device]:
    return [Device(gpu, ExecutionMode.DRY_RUN) for _ in range(n)]


def _stage_workload(name: str = "k") -> Workload:
    return Workload(name=name, n_beams=64, n_receivers=32, n_samples=128)


def _service(devices=None, **kwargs) -> BeamformingService:
    return BeamformingService(
        devices if devices is not None else _fleet(),
        policy=POLICY,
        slo=kwargs.pop("slo", SLO_WIDE),
        **kwargs,
    )


def _pipeline_trace(horizon_s: float = 0.002, rate: float = 20000.0, seed: int = 7):
    return poisson_arrivals(radio_pipeline(), rate, horizon_s, seed=seed)


class TestTopologyValidation:
    def test_cycle_is_rejected(self):
        with pytest.raises(ShapeError, match="cycle"):
            PipelineWorkload(
                name="cyclic",
                stages=(
                    Stage(name="src", workload=_stage_workload()),
                    Stage(name="a", workload=_stage_workload(), depends_on=("src", "b")),
                    Stage(name="b", workload=_stage_workload(), depends_on=("a",)),
                ),
            )

    def test_duplicate_stage_names_rejected(self):
        with pytest.raises(ShapeError, match="duplicate stage names"):
            PipelineWorkload(
                name="dup",
                stages=(
                    Stage(name="a", workload=_stage_workload()),
                    Stage(name="a", workload=_stage_workload()),
                ),
            )

    def test_unknown_dependency_rejected(self):
        with pytest.raises(ShapeError, match="unknown stage"):
            PipelineWorkload(
                name="dangling",
                stages=(
                    Stage(name="a", workload=_stage_workload()),
                    Stage(name="b", workload=_stage_workload(), depends_on=("ghost",)),
                ),
            )

    def test_multiple_sources_rejected(self):
        with pytest.raises(ShapeError, match="exactly one source"):
            PipelineWorkload(
                name="twin",
                stages=(
                    Stage(name="a", workload=_stage_workload()),
                    Stage(name="b", workload=_stage_workload()),
                ),
            )

    def test_self_and_duplicate_dependencies_rejected(self):
        with pytest.raises(ShapeError, match="depends on itself"):
            Stage(name="a", workload=_stage_workload(), depends_on=("a",))
        with pytest.raises(ShapeError, match="duplicate dependency"):
            Stage(name="a", workload=_stage_workload(), depends_on=("b", "b"))

    def test_kernel_raises_on_multi_stage(self):
        pipeline = radio_pipeline()
        with pytest.raises(ShapeError, match="single-stage"):
            pipeline.kernel

    def test_single_stage_kernel_is_the_wrapped_workload(self):
        workload = _stage_workload()
        assert workload.single_stage().kernel is workload

    def test_diamond_topology_is_valid(self):
        diamond = PipelineWorkload(
            name="diamond",
            stages=(
                Stage(name="src", workload=_stage_workload()),
                Stage(name="left", workload=_stage_workload(), depends_on=("src",)),
                Stage(name="right", workload=_stage_workload(), depends_on=("src",)),
                Stage(name="sink", workload=_stage_workload(), depends_on=("left", "right")),
            ),
        )
        assert diamond.topo_order[0] == "src"
        assert diamond.topo_order[-1] == "sink"
        assert {s.name for s in diamond.sinks} == {"sink"}
        # Multi-stage pipelines qualify their stage workload names.
        assert diamond.stage("left").workload.name == "diamond/left"

    def test_pipeline_priority_and_tenant_inherited_by_every_stage(self):
        pipeline = radio_pipeline(priority=0, tenant="followup")
        assert pipeline.priority_class == 0
        assert pipeline.tenant_name == "followup"
        assert all(s.workload.priority == 0 for s in pipeline.stages)
        assert all(s.workload.tenant == "followup" for s in pipeline.stages)


class TestSingleStageEquivalence:
    def test_single_stage_pipeline_replays_bare_workload_byte_identically(self):
        bare = lofar_service().kernel
        trace_bare = poisson_arrivals(bare, 30000.0, 0.002, seed=3)
        trace_pipe = poisson_arrivals(bare.single_stage(), 30000.0, 0.002, seed=3)
        a = _service().run(trace_bare)
        b = _service().run(trace_pipe)
        assert a.latencies_s == b.latencies_s
        assert a.n_batches == b.n_batches
        assert a.placements == b.placements
        # One-stage pipelines keep the bare workload name end to end.
        assert {e.batch.workload.name for e in b.executions} == {"lofar_beam_block"}
        # ... and never populate the cross-stage chain.
        assert all(o.stage_chain == () for o in b.outcomes)


class TestEndToEnd:
    def test_multi_stage_run_completes_every_admitted_request(self):
        report = _service().run(_pipeline_trace())
        assert report.n_offered > 0
        assert report.n_completed == report.n_admitted > 0
        counters = report.metrics.snapshot()["counters"]
        # Three stages per admitted request, released and completed once each.
        assert counters["service.stage_released"] == 3 * report.n_admitted
        assert counters["service.stage_completed"] == 3 * report.n_admitted

    def test_stage_chain_telescopes_and_sums_bit_exactly(self):
        report = _service().run(_pipeline_trace())
        completed = [o for o in report.outcomes if o.completion_s is not None]
        assert completed
        for outcome in completed:
            chain = outcome.stage_chain
            assert [link.stage for link in chain] == ["channelize", "beamform", "dedisperse"]
            assert chain[0].arrival_s == outcome.request.arrival_s
            for prev, nxt in zip(chain, chain[1:]):
                assert nxt.arrival_s == prev.completion_s  # telescoping links
            assert chain[-1].completion_s == outcome.completion_s
            # The boundaries are bit-exact (no gaps, no overlaps); the sum
            # of the per-link differences telescopes to the end-to-end
            # latency up to float-addition rounding of the partial sums.
            segments = sum(link.completion_s - link.arrival_s for link in chain)
            assert segments == pytest.approx(outcome.latency_s, rel=1e-12, abs=0.0)

    def test_same_stage_requests_coalesce_but_pipelines_never_mix(self):
        survey = radio_pipeline()
        imaging = ultrasound_pipeline()
        trace = merge_arrivals(
            poisson_arrivals(survey, 20000.0, 0.002, seed=5),
            poisson_arrivals(imaging, 20000.0, 0.002, seed=6),
        )
        report = _service().run(trace)
        names = {e.batch.workload.name for e in report.executions}
        assert names <= {
            "lofar_pulsar/channelize",
            "lofar_pulsar/beamform",
            "lofar_pulsar/dedisperse",
            "doppler_imaging/beamform",
            "doppler_imaging/doppler",
        }
        coalesced = [e for e in report.executions if e.batch.n_requests > 1]
        assert coalesced  # same-stage requests from different arrivals merged
        for execution in report.executions:
            pipelines = {r.pipeline.name for r in execution.batch.requests}
            stages = {r.stage for r in execution.batch.requests}
            assert len(pipelines) == 1
            assert len(stages) == 1


class TestStageLocality:
    def _run(self, stage_locality: bool):
        trace = merge_arrivals(
            poisson_arrivals(radio_pipeline(), 25000.0, 0.002, seed=11),
            poisson_arrivals(ultrasound_pipeline(), 25000.0, 0.002, seed=12),
        )
        service = _service(
            [Device("GH200", ExecutionMode.DRY_RUN), Device("A100", ExecutionMode.DRY_RUN)],
            placer=Placer(stage_locality=stage_locality),
        )
        return service.run(trace)

    @staticmethod
    def _local_fraction(report) -> float:
        counters = report.metrics.snapshot()["counters"]
        local = counters.get("dispatch.stage_local", 0)
        remote = counters.get("dispatch.stage_remote", 0)
        return local / (local + remote)

    def test_locality_beats_stage_blind_on_residency_and_tail(self):
        locality = self._run(stage_locality=True)
        blind = self._run(stage_locality=False)
        assert self._local_fraction(locality) > self._local_fraction(blind)
        assert locality.p99_latency_s <= blind.p99_latency_s

    def test_locality_waits_for_the_resident_worker_by_policy(self):
        locality = self._run(stage_locality=True)
        blind = self._run(stage_locality=False)
        assert locality.metrics.snapshot()["counters"].get("dispatch.stage_waits", 0) > 0
        assert blind.metrics.snapshot()["counters"].get("dispatch.stage_waits", 0) == 0


class TestStageFailureRecovery:
    def _crash_plan(self) -> FaultPlan:
        return FaultPlan(events=(FaultEvent(t_s=1e-3, kind=FaultKind.CRASH, worker_index=0),))

    def test_crash_with_recovery_reenters_at_the_lost_stage(self):
        trace = _pipeline_trace(horizon_s=0.002, rate=30000.0, seed=19)
        resilient = _service(
            _fleet(3),
            faults=self._crash_plan(),
            resilience=ResiliencePolicy(),
        )
        report = resilient.run(trace)
        assert report.n_crashes == 1
        assert report.n_retries > 0
        # Every admitted pipeline request still completed end to end, and
        # every completed chain is whole (the retry re-entered mid-pipeline
        # rather than restarting or dropping the request).
        assert report.availability == 1.0
        for outcome in report.outcomes:
            if outcome.completion_s is not None:
                assert [link.stage for link in outcome.stage_chain] == [
                    "channelize",
                    "beamform",
                    "dedisperse",
                ]

    def test_crash_without_recovery_loses_pipeline_requests(self):
        trace = _pipeline_trace(horizon_s=0.002, rate=30000.0, seed=19)
        fragile = _service(
            _fleet(3), faults=self._crash_plan(), resilience=ResiliencePolicy.disabled()
        )
        report = fragile.run(trace)
        assert report.availability < 1.0


class TestTracedEquivalence:
    def test_traced_run_replays_untraced_bit_identically(self):
        plain = _service().run(_pipeline_trace())
        recorder = TraceRecorder()
        traced = _service(recorder=recorder).run(_pipeline_trace())
        assert traced.latencies_s == plain.latencies_s
        assert traced.n_batches == plain.n_batches
        assert traced.placements == plain.placements
        names = {type(e).__name__ for e in recorder.events}
        assert "StageStarted" in names
        assert "StageCompleted" in names
