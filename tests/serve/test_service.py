"""BeamformingService end to end: acceptance bars of the serving tier."""

from __future__ import annotations

import numpy as np

from repro.apps.radioastronomy.beamformer import service_workload as _lofar_pipeline
from repro.apps.ultrasound.imaging import service_workload as _ultrasound_pipeline
from repro.gpusim.device import Device, ExecutionMode
from repro.serve import (
    SLO,
    AdmissionController,
    BatchingPolicy,
    BeamformingService,
    Request,
    poisson_arrivals,
)
from tests.conftest import random_complex

def lofar_workload(**kwargs):
    """The LOFAR adapter's bare kernel (the documented migration unwrap)."""
    return _lofar_pipeline(**kwargs).kernel


def ultrasound_workload(**kwargs):
    """The ultrasound adapter's bare kernel (the documented migration unwrap)."""
    return _ultrasound_pipeline(**kwargs).kernel


#: the serving scenario of the acceptance bar: small GPU-resident beam
#: blocks, one A100, 5 ms p99 SLO.
BEAM_BLOCK = lofar_workload()
SLO_5MS = SLO(p99_latency_s=5e-3)


def dry_fleet(n: int = 1) -> list[Device]:
    return [Device("A100", ExecutionMode.DRY_RUN) for _ in range(n)]


def overload_trace(factor: float = 5.0, horizon_s: float = 0.01, seed: int = 11):
    t_request = BEAM_BLOCK.make_plan(dry_fleet()[0], 1).predict_block_cost().time_s
    return poisson_arrivals(BEAM_BLOCK, factor / t_request, horizon_s, seed=seed)


def run_service(requests, max_batch, n_devices=1, slo=SLO_5MS, admission=None):
    service = BeamformingService(
        dry_fleet(n_devices),
        policy=BatchingPolicy(max_batch=max_batch, max_wait_s=200e-6),
        slo=slo,
        admission=admission,
    )
    return service.run(requests)


class TestAcceptanceBars:
    def test_batching_sustains_3x_naive_throughput_within_slo(self):
        # The PR's headline criterion: same Poisson overload, >= 3x the
        # naive per-request throughput, p99 inside the SLO.
        trace = overload_trace()
        naive = run_service(trace, max_batch=1)
        batched = run_service(trace, max_batch=32)
        assert batched.throughput_rps >= 3.0 * naive.throughput_rps
        assert batched.slo_attained
        assert batched.p99_latency_s <= SLO_5MS.p99_latency_s
        assert batched.shed_rate == 0.0

    def test_fixed_seed_simulation_is_deterministic(self):
        first = run_service(overload_trace(seed=7), max_batch=16)
        second = run_service(overload_trace(seed=7), max_batch=16)
        assert first.throughput_rps == second.throughput_rps
        assert first.p99_latency_s == second.p99_latency_s
        assert first.latencies_s == second.latencies_s
        assert first.n_batches == second.n_batches
        assert first.shed_rate == second.shed_rate

    def test_two_devices_scale_naive_throughput(self):
        trace = overload_trace()
        one = run_service(trace, max_batch=1, n_devices=1)
        two = run_service(trace, max_batch=1, n_devices=2)
        assert two.throughput_rps >= 1.8 * one.throughput_rps


class TestAdmissionControl:
    def test_overload_sheds_instead_of_unbounded_tail(self):
        trace = overload_trace()
        naive = run_service(trace, max_batch=1)
        assert naive.shed_rate > 0.3  # the front door did its job
        # What was admitted still met its deadline.
        assert naive.p99_latency_s <= SLO_5MS.admission_deadline_s * 1.05

    def test_no_shedding_when_capacity_is_ample(self):
        light = poisson_arrivals(BEAM_BLOCK, 1000.0, 0.01, seed=3)
        report = run_service(light, max_batch=8)
        assert report.shed_rate == 0.0
        assert report.n_completed == len(light)

    def test_run_is_single_shot(self):
        import pytest

        from repro.errors import ShapeError

        trace = overload_trace(horizon_s=0.002)
        service = BeamformingService(
            dry_fleet(), policy=BatchingPolicy(max_batch=8, max_wait_s=200e-6),
            slo=SLO_5MS,
        )
        service.run(trace)
        with pytest.raises(ShapeError, match="single-shot"):
            service.run(trace)

    def test_queue_depth_cap(self):
        trace = overload_trace()
        admission = AdmissionController(SLO(p99_latency_s=1e9), max_queue_depth=32)
        report = run_service(trace, max_batch=1, admission=admission)
        assert report.shed_rate > 0.0

    def test_every_offered_request_has_an_outcome(self):
        trace = overload_trace()
        report = run_service(trace, max_batch=8)
        assert report.n_offered == len(trace)
        assert [o.request.rid for o in report.outcomes] == [r.rid for r in trace]
        for outcome in report.outcomes:
            if outcome.admitted:
                assert outcome.completion_s is not None
                assert outcome.latency_s >= 0.0
            else:
                assert outcome.completion_s is None


class TestPlanCache:
    def test_steady_state_hits(self):
        report = run_service(overload_trace(), max_batch=32)
        assert report.cache_hit_rate > 0.9
        # Builds bounded by the distinct merged extents, not the launches.
        assert report.cache_misses <= 32
        assert report.n_batches > report.cache_misses

    def test_report_summary_renders(self):
        report = run_service(overload_trace(horizon_s=0.003), max_batch=8)
        text = report.summary()
        assert "p99" in text and "cache hit rate" in text and "shed" in text


class TestFunctionalService:
    def test_outputs_match_reference_through_batching(self, rng):
        b, m, k, n = 2, 8, 16, 12
        weights = random_complex(rng, (b, m, k))
        wl = lofar_workload(n_beams=m, n_stations=k, n_samples=n, n_channels=b, weights=weights)
        requests = [
            Request(
                rid=i, workload=wl, arrival_s=i * 1e-5,
                data=random_complex(rng, (b, k, n)),
            )
            for i in range(7)
        ]
        service = BeamformingService(
            [Device("A100")],
            policy=BatchingPolicy(max_batch=3, max_wait_s=1e-4),
            slo=SLO(p99_latency_s=1.0),
        )
        report = service.run(requests)
        assert report.n_completed == 7
        assert report.mean_batch_size > 1.0
        for outcome in report.outcomes:
            reference = weights @ outcome.request.data
            assert outcome.output.shape == reference.shape
            assert np.allclose(outcome.output, reference, atol=0.05)


class TestAppWorkloads:
    def test_lofar_entry_point_accounting(self):
        wl = lofar_workload()
        assert wl.include_transpose is False  # GPU-resident (paper §V-B)
        assert wl.restore_output_scale is True
        plan = wl.make_plan(dry_fleet()[0], 2)
        assert plan.batch == 2 * wl.batch_per_request

    def test_ultrasound_entry_point_accounting(self):
        from repro.ccglib.precision import Precision

        wl = ultrasound_workload(n_voxels=1024, k=512, n_frames=32)
        assert wl.include_transpose is True  # Fig 5 accounting
        assert wl.include_packing is True
        assert wl.precision is Precision.INT1
        report = BeamformingService(
            dry_fleet(),
            policy=BatchingPolicy(max_batch=4, max_wait_s=1e-4),
            slo=SLO(p99_latency_s=0.1),
        ).run(poisson_arrivals(wl, 2000.0, 0.005, seed=5))
        assert report.n_completed > 0
        assert report.slo_attained
