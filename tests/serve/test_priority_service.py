"""Priority classes end to end through BeamformingService.

The acceptance bars of the priority-scheduling PR: class isolation under
overload, lowest-class-first shedding, weighted-fair tenant service, and
per-class batching-policy overrides — all on the same deterministic
discrete-event simulation the rest of the serving tier uses.
"""

from __future__ import annotations

from repro.apps.radioastronomy.beamformer import service_workload as _lofar_pipeline
from repro.apps.ultrasound.imaging import service_workload as _ultrasound_pipeline
from repro.gpusim.device import Device, ExecutionMode
from repro.serve import (
    SLO,
    BatchingPolicy,
    BeamformingService,
    merge_arrivals,
    poisson_arrivals,
)

def lofar_workload(**kwargs):
    """The LOFAR adapter's bare kernel (the documented migration unwrap)."""
    return _lofar_pipeline(**kwargs).kernel


def ultrasound_workload(**kwargs):
    """The ultrasound adapter's bare kernel (the documented migration unwrap)."""
    return _ultrasound_pipeline(**kwargs).kernel


SLO_5MS = SLO(p99_latency_s=5e-3)
INTERACTIVE_POLICY = BatchingPolicy(max_batch=4, max_wait_s=50e-6)
BATCH_POLICY = BatchingPolicy(max_batch=32, max_wait_s=1e-3)


def dry_fleet(n: int = 1) -> list[Device]:
    return [Device("A100", ExecutionMode.DRY_RUN) for _ in range(n)]


def interactive_workload():
    """Live ultrasound frames: priority 0, tenant 'clinic' (the defaults)."""
    return ultrasound_workload(n_voxels=4096, k=1024, n_frames=64)


def batch_workload(tenant: str = "astronomy"):
    """Offline pulsar reprocessing: priority 1 by default."""
    return lofar_workload(n_samples=2048, tenant=tenant)


def batched_capacity_hz(workload) -> float:
    merged = BATCH_POLICY.max_batch
    return merged / workload.make_plan(dry_fleet()[0], merged).predict_gemm_cost().time_s


def priority_service(tenant_weights=None, slo=SLO_5MS, preemptive=True):
    return BeamformingService(
        dry_fleet(),
        policy=BATCH_POLICY,
        class_policies={0: INTERACTIVE_POLICY},
        slo=slo,
        tenant_weights=tenant_weights,
        preemptive=preemptive,
    )


def overload_trace(horizon_s: float = 0.006, seed: int = 11):
    """Interactive trickle + batch class at 5x the batched capacity."""
    interactive = interactive_workload()
    batch = batch_workload()
    rate = 5.0 * batched_capacity_hz(batch)
    return merge_arrivals(
        poisson_arrivals(interactive, 24000.0, horizon_s, seed=seed),
        poisson_arrivals(batch, rate, horizon_s, seed=seed + 1),
    )


class TestClassIsolation:
    def test_interactive_p99_holds_under_batch_overload(self):
        report = priority_service().run(overload_trace())
        by_class = {s.label: s for s in report.by_priority()}
        interactive = by_class["priority=0"]
        assert interactive.n_completed == interactive.n_offered  # nothing shed
        assert interactive.p99_latency_s <= SLO_5MS.p99_latency_s
        # The batch class, not the interactive one, absorbed the overload.
        assert by_class["priority=1"].shed_rate > 0.5

    def test_shedding_comes_from_lowest_class_only(self):
        report = priority_service().run(overload_trace())
        assert report.shed_rate > 0.0
        assert report.shed_share(1) >= 0.9
        assert report.shed_share(0) <= 0.1

    def test_batches_never_mix_priority_classes(self):
        service = priority_service()
        service.run(overload_trace(horizon_s=0.003))
        for execution in service.fleet.executions:
            priorities = {r.workload.priority for r in execution.batch.requests}
            tenants = {r.workload.tenant for r in execution.batch.requests}
            assert len(priorities) == 1
            assert len(tenants) == 1

    def test_class_policy_overrides_apply(self):
        service = priority_service()
        service.run(overload_trace(horizon_s=0.003))
        interactive_sizes = [
            e.batch.n_requests
            for e in service.fleet.executions
            if e.batch.priority == 0
        ]
        batch_sizes = [
            e.batch.n_requests
            for e in service.fleet.executions
            if e.batch.priority == 1
        ]
        assert interactive_sizes and batch_sizes
        assert max(interactive_sizes) <= INTERACTIVE_POLICY.max_batch
        assert max(batch_sizes) <= BATCH_POLICY.max_batch
        assert max(batch_sizes) > INTERACTIVE_POLICY.max_batch  # deep batching happened

    def test_preemption_charges_in_flight_wait_to_preemptor(self):
        # In-flight executions run to completion: an urgent batch never
        # starts its GEMM before already-started work frees the engine,
        # and its wait shows up as its own queue delay (non-destructive).
        service = priority_service()
        report = service.run(overload_trace(horizon_s=0.003))
        executions = sorted(service.fleet.executions, key=lambda e: e.compute_start_s)
        for prev, nxt in zip(executions, executions[1:]):
            assert nxt.compute_start_s >= prev.completion_s - 1e-12
        assert report.n_completed > 0


class TestWeightedFairService:
    def test_three_to_one_tenant_weights_within_ten_percent(self):
        # Two equal-priority tenants, weights 3:1, both saturating the
        # device: dispatch service over the contended window must sit
        # within 10% of 3:1 (the PR's weighted-fair acceptance bar).
        horizon_s = 0.01
        wl_a = batch_workload(tenant="pulsar-a")
        wl_b = batch_workload(tenant="pulsar-b")
        rate = batched_capacity_hz(wl_a)
        trace = merge_arrivals(
            poisson_arrivals(wl_a, rate, horizon_s, seed=21),
            poisson_arrivals(wl_b, rate, horizon_s, seed=22),
        )
        service = priority_service(
            tenant_weights={"pulsar-a": 3.0, "pulsar-b": 1.0},
            slo=SLO(p99_latency_s=10.0),  # no shedding: measure the scheduler
        )
        service.run(trace)
        served = {"pulsar-a": 0, "pulsar-b": 0}
        for execution in service.fleet.executions:
            if execution.start_s <= horizon_s:  # both tenants still backlogged
                served[execution.batch.tenant] += execution.batch.n_requests
        ratio = served["pulsar-a"] / served["pulsar-b"]
        assert 2.7 <= ratio <= 3.3

    def test_unweighted_tenants_split_evenly(self):
        horizon_s = 0.006
        wl_a = batch_workload(tenant="x")
        wl_b = batch_workload(tenant="y")
        rate = batched_capacity_hz(wl_a)
        trace = merge_arrivals(
            poisson_arrivals(wl_a, rate, horizon_s, seed=31),
            poisson_arrivals(wl_b, rate, horizon_s, seed=32),
        )
        service = priority_service(slo=SLO(p99_latency_s=10.0))
        service.run(trace)
        served = {"x": 0, "y": 0}
        for execution in service.fleet.executions:
            if execution.start_s <= horizon_s:
                served[execution.batch.tenant] += execution.batch.n_requests
        ratio = served["x"] / served["y"]
        assert 0.85 <= ratio <= 1.18


class TestNonPreemptiveFallback:
    def test_fifo_mode_ignores_priorities(self):
        # Same trace, preemption off: the interactive class loses its
        # protection — its tail must be at least as bad as with priorities
        # on, demonstrating the scheduler (not luck) provides isolation.
        trace = overload_trace()
        with_priorities = priority_service().run(trace)

        trace2 = overload_trace()
        without = priority_service(preemptive=False).run(trace2)
        p99_with = {s.label: s.p99_latency_s for s in with_priorities.by_priority()}
        p99_without = {s.label: s.p99_latency_s for s in without.by_priority()}
        assert p99_without["priority=0"] >= p99_with["priority=0"]

    def test_summary_includes_class_breakdown(self):
        report = priority_service().run(overload_trace(horizon_s=0.003))
        text = report.summary()
        assert "priority=0" in text
        assert "priority=1" in text
        assert "of all shedding" in text


class TestReplayDeterminism:
    def test_priority_run_is_bit_identical(self):
        first = priority_service(tenant_weights={"astronomy": 2.0}).run(overload_trace(seed=5))
        second = priority_service(tenant_weights={"astronomy": 2.0}).run(overload_trace(seed=5))
        assert first.latencies_s == second.latencies_s
        assert first.n_batches == second.n_batches
        assert [
            (s.label, s.n_offered, s.n_completed, s.p99_latency_s)
            for s in first.by_priority()
        ] == [
            (s.label, s.n_offered, s.n_completed, s.p99_latency_s)
            for s in second.by_priority()
        ]
