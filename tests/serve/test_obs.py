"""The observability layer: tracing, Perfetto export, metrics.

Four properties carry the PR's acceptance bars:

* **determinism** — the same seed renders a byte-identical Perfetto
  trace, and the small serve run matches the checked-in golden trace;
* **zero overhead** — a traced run and an untraced run of the same
  scenario report bit-identical numbers (the recorder observes the
  simulation, never perturbs it), and tracing is off by default;
* **well-formed export** — async request spans balance (shed requests
  included), timestamps are monotonic, and every completed request's
  span links by flow to the GEMM slice that served it;
* **metrics** — the registry arithmetic is exact, collisions fail loud,
  and the report's snapshot agrees with the report's own aggregates.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.bench.serve import golden_trace
from repro.errors import ShapeError
from repro.gpusim.device import Device, ExecutionMode
from repro.serve import (
    NULL_RECORDER,
    SLO,
    BatchingPolicy,
    BeamformingService,
    MetricsRegistry,
    TraceRecorder,
    render_trace,
)
from repro.serve.obs import EVENT_TYPES, trace_to_dict
from repro.serve.obs.events import RequestArrived, RequestCompleted, SpanEvent
from repro.serve.obs.metrics import Counter, Gauge, Histogram
from tests.serve.test_service import overload_trace

GOLDEN_DIR = Path(__file__).parent / "golden"


def _run(max_batch: int = 16, horizon_s: float = 0.004, recorder=None, n_devices: int = 1):
    service = BeamformingService(
        [Device("A100", ExecutionMode.DRY_RUN) for _ in range(n_devices)],
        policy=BatchingPolicy(max_batch=max_batch, max_wait_s=200e-6),
        slo=SLO(p99_latency_s=5e-3),
        recorder=recorder,
    )
    report = service.run(overload_trace(horizon_s=horizon_s))
    return service, report


class TestTraceDeterminism:
    def test_same_seed_renders_byte_identical_trace(self):
        first = TraceRecorder()
        second = TraceRecorder()
        _run(recorder=first)
        _run(recorder=second)
        assert render_trace(first) == render_trace(second)

    def test_small_serve_run_matches_checked_in_golden_trace(self):
        golden = (GOLDEN_DIR / "serve_trace_small.json").read_text()
        assert golden_trace() == golden

    def test_golden_trace_itself_replays_byte_identical(self):
        assert golden_trace() == golden_trace()


class TestZeroOverhead:
    def test_recorder_is_off_by_default_and_records_nothing(self):
        service, _ = _run()
        assert service.recorder is NULL_RECORDER
        assert not NULL_RECORDER.enabled
        # The null recorder swallows emissions without storing anything.
        NULL_RECORDER.emit(RequestArrived(t_s=0.0, rid=1, workload="w", priority=0,
                                          tenant="t"))
        assert not hasattr(NULL_RECORDER, "events")

    def test_traced_and_untraced_runs_report_identically(self):
        _, plain = _run()
        _, traced = _run(recorder=TraceRecorder())
        assert traced.latencies_s == plain.latencies_s
        assert traced.n_batches == plain.n_batches
        assert traced.shed_rate == plain.shed_rate
        assert traced.throughput_rps == plain.throughput_rps
        assert [o.completion_s for o in traced.outcomes] == [
            o.completion_s for o in plain.outcomes
        ]

    def test_metrics_identical_with_and_without_tracing(self):
        _, plain = _run()
        _, traced = _run(recorder=TraceRecorder())
        assert plain.metrics.snapshot() == traced.metrics.snapshot()


class TestRecorder:
    def test_recorder_collects_typed_events_in_emission_order(self):
        recorder = TraceRecorder()
        _, report = _run(recorder=recorder)
        assert recorder.enabled and len(recorder) == len(recorder.events) > 0
        assert recorder.count(RequestArrived) == report.n_offered
        assert recorder.count(RequestCompleted) == report.n_completed
        assert all(
            isinstance(e, RequestArrived) for e in recorder.of_type(RequestArrived)
        )
        assert all(isinstance(e, SpanEvent) for e in recorder.events)

    def test_every_event_type_is_registered_and_documented(self):
        assert len(EVENT_TYPES) >= 12
        for name, cls in EVENT_TYPES.items():
            assert cls.__name__ == name
            assert cls.__doc__, f"{name} has no docstring"


class TestPerfettoExport:
    def _trace(self, **kwargs):
        recorder = TraceRecorder()
        _, report = _run(recorder=recorder, **kwargs)
        return trace_to_dict(recorder), report

    def test_timestamps_are_monotonic_after_metadata(self):
        trace, _ = self._trace()
        ts = [e["ts"] for e in trace["traceEvents"] if e["ph"] != "M"]
        assert ts == sorted(ts)
        assert all(t >= 0 for t in ts)

    def test_async_request_spans_balance(self):
        trace, report = self._trace()
        events = trace["traceEvents"]
        begins = [e for e in events if e["ph"] == "b"]
        ends = [e for e in events if e["ph"] == "e"]
        assert len(begins) == report.n_offered
        assert len(ends) == len(begins)  # shed spans close at the verdict
        assert {e["id"] for e in begins} == {e["id"] for e in ends}

    def test_shed_requests_close_with_the_shed_verdict(self):
        # max_batch=1 under 5x overload sheds heavily (see test_service).
        trace, report = self._trace(max_batch=1)
        assert report.shed_rate > 0.0
        shed_ends = [
            e for e in trace["traceEvents"]
            if e["ph"] == "e" and e.get("args", {}).get("shed")
        ]
        assert len(shed_ends) == report.n_offered - report.n_admitted

    def test_completed_requests_flow_to_their_gemm_slice(self):
        trace, report = self._trace()
        events = trace["traceEvents"]
        flow_starts = {e["id"] for e in events if e["ph"] == "s"}
        flow_finishes = {e["id"] for e in events if e["ph"] == "f"}
        completed = {
            e["id"] for e in events
            if e["ph"] == "e" and not e.get("args", {}).get("shed")
        }
        assert completed and completed <= flow_starts
        assert completed <= flow_finishes

    def test_worker_tracks_and_slices_exist(self):
        trace, report = self._trace()
        events = trace["traceEvents"]
        thread_names = {
            e["args"]["name"] for e in events
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert "worker0/A100 copy" in thread_names
        assert "worker0/A100 compute" in thread_names
        gemms = [e for e in events if e["ph"] == "X" and e["name"] == "gemm"]
        assert len(gemms) == report.n_batches
        assert all(e["dur"] >= 0 for e in gemms)
        stage_ins = [e for e in events if e["ph"] == "X" and e["name"] == "stage_in"]
        assert len(stage_ins) == report.n_batches

    def test_queue_depth_counter_returns_to_zero(self):
        trace, _ = self._trace()
        depths = [
            e["args"]["batches"] for e in trace["traceEvents"]
            if e["ph"] == "C" and e["name"] == "queue_depth"
        ]
        assert depths and min(depths) >= 0 and depths[-1] == 0


class TestMetricsPrimitives:
    def test_counter_is_monotonic(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ShapeError, match="cannot decrease"):
            counter.inc(-1)

    def test_gauge_remembers_peak_and_samples(self):
        gauge = Gauge("g")
        gauge.set(-3.0)
        assert gauge.peak == -3.0  # first sample IS the peak, not max(0, .)
        gauge.set(7.0)
        gauge.set(2.0)
        assert (gauge.value, gauge.peak, gauge.samples) == (2.0, 7.0, 3)

    def test_histogram_buckets_exactly(self):
        histogram = Histogram("h", edges=(1.0, 2.0, 4.0))
        for value in (0.5, 1.0, 1.5, 3.0, 100.0):
            histogram.observe(value)
        # bisect_left: values at an edge land in that edge's bucket.
        assert histogram.counts == [2, 1, 1, 1]
        assert histogram.total == 5
        assert histogram.mean == pytest.approx(106.0 / 5)

    def test_histogram_rejects_unsorted_edges(self):
        with pytest.raises(ShapeError, match="strictly ascending"):
            Histogram("h", edges=(2.0, 1.0))

    def test_empty_histogram_reports_zeros(self):
        histogram = Histogram("h", edges=(1.0, 2.0))
        assert histogram.total == 0
        assert histogram.sum == 0.0
        assert histogram.mean == 0.0  # no division by zero
        assert histogram.counts == [0, 0, 0]

    def test_single_sample_histogram(self):
        histogram = Histogram("h", edges=(1.0, 2.0))
        histogram.observe(1.5)
        assert histogram.total == 1
        assert histogram.mean == 1.5
        assert histogram.counts == [0, 1, 0]

    def test_histogram_rejects_duplicate_edges(self):
        with pytest.raises(ShapeError, match="strictly ascending"):
            Histogram("h", edges=(1.0, 1.0, 2.0))

    def test_negative_observation_lands_in_the_first_bucket(self):
        histogram = Histogram("h", edges=(1.0, 2.0))
        histogram.observe(-5.0)
        assert histogram.counts == [1, 0, 0]
        assert histogram.mean == -5.0

    def test_registry_rejects_reregistering_with_different_edges(self):
        registry = MetricsRegistry()
        registry.histogram("lat", edges=(1.0, 2.0))
        with pytest.raises(ShapeError, match="already registered with edges"):
            registry.histogram("lat", edges=(1.0, 4.0))
        # The same edges get the same instance back.
        assert registry.histogram("lat", edges=(1.0, 2.0)) is registry.histogram(
            "lat", edges=(1.0, 2.0)
        )

    def test_registry_name_is_one_kind_forever(self):
        registry = MetricsRegistry()
        registry.inc("x")
        with pytest.raises(ShapeError, match="already registered as a counter"):
            registry.gauge("x")
        with pytest.raises(ShapeError, match="already registered as a counter"):
            registry.histogram("x")
        registry.observe("h", 1.0)
        with pytest.raises(ShapeError, match="already registered with edges"):
            registry.histogram("h", edges=(1.0, 2.0))

    def test_snapshot_and_render_are_sorted_and_stable(self):
        registry = MetricsRegistry()
        registry.inc("b.second")
        registry.inc("a.first", 2)
        registry.set_gauge("depth", 4)
        registry.observe("lat", 0.2)
        snapshot = registry.snapshot()
        assert list(snapshot["counters"]) == ["a.first", "b.second"]
        assert snapshot["gauges"]["depth"] == {"value": 4, "peak": 4, "samples": 1}
        assert snapshot["histograms"]["lat"]["total"] == 1
        lines = registry.render().splitlines()
        assert lines[0] == "a.first = 2"
        assert any(line.startswith("depth = 4 (peak 4)") for line in lines)


class TestMetricsInReport:
    def test_snapshot_agrees_with_report_aggregates(self):
        _, report = _run(n_devices=2)
        counters = report.metrics.snapshot()["counters"]
        assert counters["admission.admitted"] == report.n_admitted
        assert counters["service.completed"] == report.n_completed
        assert counters["dispatch.launches"] == report.n_batches
        assert counters["batcher.offered"] == report.n_offered
        hits = counters["cache.hits"]
        misses = counters["cache.misses"]
        assert hits + misses == report.n_batches
        assert misses == report.cache_misses
        latency = report.metrics.histogram("service.latency_ms")
        assert latency.total == report.n_completed

    def test_per_worker_cache_segments_surface(self):
        # The satellite fix: per-device-segment hit/miss counts were
        # invisible; now they live in cache_by_worker, the per-worker
        # counters, and the summary's plans line.
        _, report = _run(n_devices=2)
        assert len(report.cache_by_worker) == 2
        total_hits = sum(h for (_, _, h, _) in report.cache_by_worker)
        total_misses = sum(m for (_, _, _, m) in report.cache_by_worker)
        counters = report.metrics.snapshot()["counters"]
        assert total_hits == counters["cache.hits"]
        assert total_misses == counters["cache.misses"]
        assert counters["cache.worker0.hits"] == report.cache_by_worker[0][2]
        assert "worker0/A100" in report.summary()

    def test_summary_carries_blame_and_metrics_sections(self):
        _, report = _run()
        summary = report.summary()
        assert "blame:" in summary and "p99 blame" in summary
        assert "metrics:" in summary
        assert "admission.admitted" in summary

    def test_shed_reasons_split_by_cause(self):
        service, report = _run(max_batch=1)
        assert report.shed_rate > 0.0
        counters = report.metrics.snapshot()["counters"]
        shed = sum(v for k, v in counters.items() if k.startswith("admission.shed."))
        assert shed == report.n_offered - report.n_admitted
        assert shed == sum(service.admission.shed_by_reason.values())
