"""The monitoring dashboard: byte-deterministic self-contained HTML.

The page is an artifact the CI ships, so it is pinned three ways: two
renders of the same seed are byte-equal, the golden configuration's
sha256 matches the checked-in digest (re-bless via
``scripts/check_golden.py --bless``), and the structural validator the
CI runs accepts every page this module renders.
"""

from __future__ import annotations

import hashlib
import importlib.util
from pathlib import Path

import pytest

from repro.bench.serve import golden_dashboard, golden_dashboard_digest
from repro.errors import ShapeError
from repro.serve import ServiceMonitor, render_dashboard, write_dashboard
from tests.serve.test_monitor import INTERVAL_S, _run

GOLDEN_DIR = Path(__file__).parent / "golden"
SCRIPTS_DIR = Path(__file__).parent.parent.parent / "scripts"


def _load_validator():
    spec = importlib.util.spec_from_file_location(
        "validate_dashboard", SCRIPTS_DIR / "validate_dashboard.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _monitored_report():
    monitor = ServiceMonitor(interval_s=INTERVAL_S)
    return _run(monitor=monitor)


class TestDeterminism:
    def test_same_seed_renders_byte_identical_html(self):
        first = render_dashboard(_monitored_report(), title="t")
        second = render_dashboard(_monitored_report(), title="t")
        assert first == second

    def test_golden_digest_matches_checked_in_file(self):
        golden = (GOLDEN_DIR / "serve_dashboard_small.sha256").read_text()
        assert golden_dashboard_digest() == golden

    def test_digest_is_the_sha256_of_the_page(self):
        page = golden_dashboard()
        digest = hashlib.sha256(page.encode("utf-8")).hexdigest() + "\n"
        assert digest == golden_dashboard_digest()


class TestStructure:
    def test_page_is_self_contained_html(self):
        page = render_dashboard(_monitored_report(), title="overload run")
        assert page.lower().startswith("<!doctype html>")
        assert "overload run" in page
        for section in ("stats", "series", "alerts", "blame", "fleet"):
            assert f'id="{section}"' in page, section
        assert "<svg" in page
        assert "rate.arrival_hz" in page
        assert "http" not in page.split("</title>")[1]  # no external fetches

    def test_validator_script_accepts_the_page(self, tmp_path):
        path = tmp_path / "dash.html"
        write_dashboard(_monitored_report(), path, title="t")
        validator = _load_validator()
        assert validator.check(str(path)) == []

    def test_validator_script_rejects_a_gutted_page(self, tmp_path):
        page = render_dashboard(_monitored_report(), title="t")
        gutted = page.replace('id="alerts"', 'id="nope"')
        path = tmp_path / "bad.html"
        path.write_text(gutted)
        validator = _load_validator()
        problems = validator.check(str(path))
        assert any("alerts" in p for p in problems)

    def test_unmonitored_report_raises(self):
        with pytest.raises(ShapeError):
            render_dashboard(_run(), title="t")
