"""Arrival generators: determinism, rates, ordering, validation."""

from __future__ import annotations

import pytest

from repro.errors import ShapeError
from repro.serve import (
    Workload,
    bursty_arrivals,
    diurnal_arrivals,
    fit_rate_forecast,
    merge_arrivals,
    poisson_arrivals,
)


def workload(name: str = "wl") -> Workload:
    return Workload(name=name, n_beams=8, n_receivers=16, n_samples=8)


def assert_valid_trace(requests, horizon_s):
    times = [r.arrival_s for r in requests]
    assert times == sorted(times)
    assert all(0.0 <= t < horizon_s for t in times)
    assert [r.rid for r in requests] == list(range(len(requests)))


class TestPoisson:
    def test_deterministic_for_fixed_seed(self):
        a = poisson_arrivals(workload(), 1000.0, 1.0, seed=3)
        b = poisson_arrivals(workload(), 1000.0, 1.0, seed=3)
        assert [r.arrival_s for r in a] == [r.arrival_s for r in b]

    def test_different_seeds_differ(self):
        a = poisson_arrivals(workload(), 1000.0, 1.0, seed=3)
        b = poisson_arrivals(workload(), 1000.0, 1.0, seed=4)
        assert [r.arrival_s for r in a] != [r.arrival_s for r in b]

    def test_rate_within_statistical_bounds(self):
        reqs = poisson_arrivals(workload(), 1000.0, 2.0, seed=0)
        # 2000 expected, sigma ~45: a 5-sigma band is deterministic-safe.
        assert 1775 <= len(reqs) <= 2225
        assert_valid_trace(reqs, 2.0)

    def test_invalid_inputs(self):
        with pytest.raises(ShapeError):
            poisson_arrivals(workload(), 0.0, 1.0)
        with pytest.raises(ShapeError):
            poisson_arrivals(workload(), 10.0, 0.0)


class TestBursty:
    def test_deterministic_and_sorted(self):
        kwargs = dict(
            rate_on_hz=2000.0, rate_off_hz=10.0, mean_on_s=0.05,
            mean_off_s=0.05, horizon_s=1.0, seed=9,
        )
        a = bursty_arrivals(workload(), **kwargs)
        b = bursty_arrivals(workload(), **kwargs)
        assert [r.arrival_s for r in a] == [r.arrival_s for r in b]
        assert_valid_trace(a, 1.0)

    def test_silent_off_periods(self):
        reqs = bursty_arrivals(
            workload(), rate_on_hz=1000.0, rate_off_hz=0.0, mean_on_s=0.1,
            mean_off_s=0.1, horizon_s=1.0, seed=1,
        )
        # Roughly half the horizon is silent: well under the all-on count.
        assert 0 < len(reqs) < 900

    def test_burstier_than_poisson(self):
        # Max gap under on/off must exceed the typical poisson gap at the
        # same average load: the bursts are the point of the generator.
        on_off = bursty_arrivals(
            workload(), rate_on_hz=2000.0, rate_off_hz=0.0, mean_on_s=0.02,
            mean_off_s=0.08, horizon_s=1.0, seed=5,
        )
        gaps = [b.arrival_s - a.arrival_s for a, b in zip(on_off, on_off[1:])]
        assert max(gaps) > 0.02


class TestDiurnal:
    def test_deterministic_and_sorted(self):
        a = diurnal_arrivals(workload(), 500.0, 0.8, 0.5, 1.0, seed=2)
        b = diurnal_arrivals(workload(), 500.0, 0.8, 0.5, 1.0, seed=2)
        assert [r.arrival_s for r in a] == [r.arrival_s for r in b]
        assert_valid_trace(a, 1.0)

    def test_amplitude_bounds_enforced(self):
        with pytest.raises(ShapeError):
            diurnal_arrivals(workload(), 500.0, 1.5, 0.5, 1.0)
        with pytest.raises(ShapeError):
            diurnal_arrivals(workload(), 500.0, 0.5, 0.0, 1.0)

    def test_zero_amplitude_matches_poisson_mean(self):
        reqs = diurnal_arrivals(workload(), 1000.0, 0.0, 0.5, 2.0, seed=0)
        assert 1775 <= len(reqs) <= 2225


class TestMerge:
    def test_interleaves_and_renumbers(self):
        a = poisson_arrivals(workload("a"), 500.0, 1.0, seed=1)
        b = poisson_arrivals(workload("b"), 500.0, 1.0, seed=2)
        merged = merge_arrivals(a, b)
        assert len(merged) == len(a) + len(b)
        assert_valid_trace(merged, 1.0)
        # Both tenants are present after the merge.
        names = {r.workload.name for r in merged}
        assert names == {"a", "b"}


class TestFitRateForecast:
    def _arrivals(self, base=20_000.0, amplitude=0.8, period=0.5, horizon=2.0, seed=9):
        return diurnal_arrivals(workload(), base, amplitude, period, horizon, seed=seed)

    def test_recovers_the_generating_profile(self):
        base, amplitude, period = 20_000.0, 0.8, 0.5
        arrivals = self._arrivals(base, amplitude, period)
        fit = fit_rate_forecast([r.arrival_s for r in arrivals], period)
        assert fit.period_s == period
        assert fit.base_rate_hz == pytest.approx(base, rel=0.05)
        assert fit.amplitude == pytest.approx(amplitude, abs=0.05)
        # Phase is circular: compare the nearest wrap.
        phase_err = min(fit.phase_s % period, period - fit.phase_s % period)
        assert phase_err <= 0.02 * period

    def test_fit_is_deterministic(self):
        times = [r.arrival_s for r in self._arrivals()]
        a = fit_rate_forecast(times, 0.5)
        b = fit_rate_forecast(times, 0.5)
        assert (a.base_rate_hz, a.amplitude, a.phase_s) == (
            b.base_rate_hz,
            b.amplitude,
            b.phase_s,
        )

    def test_flat_traffic_fits_near_zero_amplitude(self):
        flat = poisson_arrivals(workload(), 20_000.0, 2.0, seed=4)
        fit = fit_rate_forecast([r.arrival_s for r in flat], 0.5)
        assert fit.amplitude <= 0.05
        assert fit.base_rate_hz == pytest.approx(20_000.0, rel=0.05)

    def test_only_whole_periods_enter_the_window(self):
        arrivals = self._arrivals(horizon=2.0)
        times = [r.arrival_s for r in arrivals]
        # A horizon of 2.3 periods fits over exactly 2 periods: adding
        # arrivals past the cut must not change the fit.
        fit_a = fit_rate_forecast([t for t in times if t < 1.0], 0.5, horizon_s=1.15)
        fit_b = fit_rate_forecast(times, 0.5, horizon_s=1.15)
        assert fit_a.base_rate_hz == fit_b.base_rate_hz
        assert fit_a.amplitude == fit_b.amplitude
        assert fit_a.phase_s == fit_b.phase_s

    def test_validation(self):
        with pytest.raises(ShapeError):
            fit_rate_forecast([0.1], 0.0)

    # Regressions: each degenerate observation set used to raise; all now
    # clamp to a flat (amplitude 0) forecast a caller can size against.

    def test_empty_arrivals_fit_flat_zero(self):
        fit = fit_rate_forecast([], 0.5)
        assert fit.base_rate_hz == 0.0
        assert fit.amplitude == 0.0
        assert fit.period_s == 0.5
        assert fit.peak_rate_hz == 0.0

    def test_window_under_one_period_fits_flat_mean(self):
        fit = fit_rate_forecast([0.05, 0.1, 0.15, 0.2], 0.5, horizon_s=0.25)
        assert fit.amplitude == 0.0
        assert fit.base_rate_hz == pytest.approx(4 / 0.25)

    def test_single_arrival_fits_flat(self):
        # One point carries no phase information: the raw Fourier sum
        # would always claim amplitude 1.
        fit = fit_rate_forecast([0.1], 0.5, horizon_s=0.5)
        assert fit.amplitude == 0.0
        assert fit.base_rate_hz == pytest.approx(1 / 0.5)
        # Default horizon (= the lone arrival) is under one period: the
        # flat clamp sizes by the observed horizon instead.
        fit = fit_rate_forecast([0.1], 0.5)
        assert fit.amplitude == 0.0
        assert fit.base_rate_hz == pytest.approx(1 / 0.1)

    def test_no_arrivals_inside_window_fits_flat_zero(self):
        # All observations past the whole-period cut: nothing usable.
        fit = fit_rate_forecast([0.55, 0.6], 0.5, horizon_s=0.5)
        assert fit.base_rate_hz == 0.0
        assert fit.amplitude == 0.0

    def test_healthy_fit_unchanged_by_the_clamps(self):
        times = [r.arrival_s for r in self._arrivals()]
        fit = fit_rate_forecast(times, 0.5)
        assert fit.amplitude > 0.0
        assert fit.base_rate_hz > 0.0
