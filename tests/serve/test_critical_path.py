"""Critical-path latency attribution: hand-checked and exact.

Two layers of assurance:

* **hand-built scenarios** — outcomes and executions are constructed
  directly with times chosen on exact binary fractions, the six-segment
  decomposition is computed by hand in the comments, and every segment is
  asserted with ``==`` (no tolerances);
* **whole-run invariants** — across real traced runs (plain, priority,
  heterogeneous, autoscaled), every completed request's segments must sum
  *bit-exactly* to its recorded latency and no segment may be negative.
"""

from __future__ import annotations

import pytest

from repro.bench import serve_autoscale, serve_hetero, serve_priority
from repro.errors import ShapeError
from repro.gpusim.device import Device, ExecutionMode
from repro.serve import (
    SLO,
    BatchingPolicy,
    BeamformingService,
    Request,
    Workload,
    poisson_arrivals,
)
from repro.serve.batching import Batch
from repro.serve.dispatch import BatchExecution
from repro.serve.obs.critical_path import SEGMENTS, attribute, blame
from repro.serve.service import RequestOutcome
from tests.serve.test_service import overload_trace


def _workload(name: str, priority: int, tenant: str = "default") -> Workload:
    return Workload(
        name=name, n_beams=8, n_receivers=8, n_samples=64,
        priority=priority, tenant=tenant,
    )


def _execution(batch: Batch, worker_index: int, *, start_s: float,
               compute_start_s: float, completion_s: float,
               stage_in_s: float, build_s: float) -> BatchExecution:
    return BatchExecution(
        batch=batch,
        device_name="A100",
        worker_index=worker_index,
        ready_s=batch.formed_s,
        start_s=start_s,
        compute_start_s=compute_start_s,
        completion_s=completion_s,
        stage_in_s=stage_in_s,
        gemm_s=completion_s - compute_start_s,
        build_s=build_s,
    )


class TestHandBuiltTwoRequestScenario:
    """The satellite scenario: every segment derived by hand.

    Request A (priority 1) arrives at t=0, its batch forms at 0.25, and
    while it waits, request B (priority 0, formed *later* at 0.5) runs on
    the same worker over [0.5, 0.75) — a textbook preemption. A then
    starts at 1.0, pays a 0.125 s plan build, a 0.25 s stage-in, waits
    0.125 s for the compute engine, and computes over [1.5, 2.0).
    """

    def _scenario(self):
        req_a = Request(rid=1, workload=_workload("batchwork", priority=1), arrival_s=0.0)
        req_b = Request(rid=2, workload=_workload("urgent", priority=0), arrival_s=0.375)
        batch_a = Batch(bid=10, workload=req_a.workload, requests=[req_a], formed_s=0.25)
        batch_b = Batch(bid=20, workload=req_b.workload, requests=[req_b], formed_s=0.5)
        exec_a = _execution(
            batch_a, 0, start_s=1.0, compute_start_s=1.5, completion_s=2.0,
            stage_in_s=0.25, build_s=0.125,
        )
        exec_b = _execution(
            batch_b, 0, start_s=0.5, compute_start_s=0.5, completion_s=0.75,
            stage_in_s=0.0, build_s=0.0,
        )
        outcomes = [
            RequestOutcome(request=req_a, admitted=True, batch_id=10, completion_s=2.0),
            RequestOutcome(request=req_b, admitted=True, batch_id=20, completion_s=0.75),
        ]
        return outcomes, [exec_a, exec_b]

    def test_preempted_request_decomposes_exactly(self):
        outcomes, executions = self._scenario()
        path_a = attribute(outcomes, executions)[0]
        # By hand: wait_for_batch = 0.25 - 0.0; the queue window [0.25, 1.0)
        # is 0.75 s of which B's compute span [0.5, 0.75) is preemption
        # (strictly more urgent AND formed strictly later), leaving 0.5 s of
        # ordinary queueing plus the 0.125 s engine wait (1.5 - 1.375);
        # cold_build = 0.125, stage_in = 0.25, compute = 2.0 - 1.5.
        assert path_a.rid == 1 and path_a.bid == 10 and path_a.worker_index == 0
        assert path_a.latency_s == 2.0
        assert path_a.wait_for_batch_s == 0.25
        assert path_a.preempted_by_s == 0.25
        assert path_a.queued_behind_s == 0.625
        assert path_a.cold_build_s == 0.125
        assert path_a.stage_in_s == 0.25
        assert path_a.compute_s == 0.5
        assert path_a.total_s == path_a.latency_s

    def test_preemptor_itself_sees_no_preemption(self):
        outcomes, executions = self._scenario()
        path_b = attribute(outcomes, executions)[1]
        # By hand: B waits 0.125 s for its batch (0.5 - 0.375), starts the
        # instant it forms, skips build and stage-in, computes 0.25 s.
        # A's span [1.5, 2.0) is less urgent, so it cannot preempt B.
        assert path_b.rid == 2
        assert path_b.latency_s == 0.375
        assert path_b.wait_for_batch_s == 0.125
        assert path_b.preempted_by_s == 0.0
        assert path_b.queued_behind_s == 0.0
        assert path_b.cold_build_s == 0.0
        assert path_b.stage_in_s == 0.0
        assert path_b.compute_s == 0.25
        assert path_b.total_s == path_b.latency_s

    def test_blame_over_both_requests_is_the_segment_means(self):
        outcomes, executions = self._scenario()
        paths = attribute(outcomes, executions)
        report = blame(paths, q=0.0)  # cohort = every request
        assert report.n_requests == 2
        # Mean seconds per segment over {A, B}, computed by hand.
        assert report.seconds["wait_for_batch"] == (0.25 + 0.125) / 2
        assert report.seconds["preempted_by"] == 0.125
        assert report.seconds["queued_behind"] == 0.3125
        assert report.seconds["cold_build"] == 0.0625
        assert report.seconds["stage_in"] == 0.125
        assert report.seconds["compute"] == 0.375
        assert sum(report.shares.values()) == pytest.approx(1.0)
        # The summary leads with the biggest segment of the cohort.
        assert report.summary().split(": ")[1].startswith("compute")

    def test_earlier_formed_urgent_work_is_queueing_not_preemption(self):
        # Same shape, but B forms *before* A's batch: draining ahead of A
        # is ordinary queueing, so preempted_by must be zero.
        outcomes, executions = self._scenario()
        batch_a = executions[0].batch
        req_b = outcomes[1].request
        early_b = Batch(bid=20, workload=req_b.workload, requests=[req_b], formed_s=0.125)
        executions[1] = _execution(
            early_b, 0, start_s=0.5, compute_start_s=0.5, completion_s=0.75,
            stage_in_s=0.0, build_s=0.0,
        )
        assert early_b.formed_s < batch_a.formed_s
        path_a = attribute(outcomes, executions)[0]
        assert path_a.preempted_by_s == 0.0
        assert path_a.queued_behind_s == 0.875
        assert path_a.total_s == path_a.latency_s

    def test_missing_execution_raises(self):
        outcomes, executions = self._scenario()
        with pytest.raises(ShapeError, match="no execution records"):
            attribute(outcomes, executions[:1])


class TestSplitCriticalShard:
    def test_split_follows_the_slowest_shard(self):
        req = Request(rid=7, workload=_workload("survey", priority=1), arrival_s=0.0)
        batch = Batch(bid=30, workload=req.workload, requests=[req], formed_s=0.5)
        fast = _execution(
            batch, 0, start_s=0.5, compute_start_s=0.75, completion_s=1.0,
            stage_in_s=0.25, build_s=0.0,
        )
        slow = _execution(
            batch, 1, start_s=1.0, compute_start_s=1.25, completion_s=2.0,
            stage_in_s=0.25, build_s=0.0,
        )
        top = BatchExecution(
            batch=batch, device_name="fleet", worker_index=-1, ready_s=0.5,
            start_s=0.5, compute_start_s=0.75, completion_s=2.0,
            stage_in_s=0.0, gemm_s=0.0, build_s=0.0, shards=[fast, slow],
        )
        outcomes = [RequestOutcome(request=req, admitted=True, batch_id=30, completion_s=2.0)]
        [path] = attribute(outcomes, [top])
        # The decomposition follows shard 1 (completes at 2.0 > 1.0):
        # wait 0.5, queue window 0.5, stage_in 0.25, compute 0.75.
        assert path.worker_index == 1
        assert path.wait_for_batch_s == 0.5
        assert path.queued_behind_s == 0.5
        assert path.stage_in_s == 0.25
        assert path.compute_s == 0.75
        assert path.total_s == path.latency_s == 2.0


def _assert_paths_exact(report):
    paths = report.request_paths()
    assert len(paths) == report.n_completed > 0
    for path in paths:
        assert path.total_s == path.latency_s  # bit-exact, not approx
        assert all(value >= 0.0 for value in path.segments().values())
    return paths


class TestWholeRunInvariants:
    """Acceptance bar: segments sum exactly on every traced real run."""

    def test_plain_serve_run(self):
        devices = [Device("A100", ExecutionMode.DRY_RUN)]
        service = BeamformingService(
            devices,
            policy=BatchingPolicy(max_batch=16, max_wait_s=200e-6),
            slo=SLO(p99_latency_s=5e-3),
        )
        report = service.run(overload_trace(horizon_s=0.005))
        _assert_paths_exact(report)
        tail = report.blame()
        assert tail is not None and set(tail.seconds) == set(SEGMENTS)
        assert sum(tail.shares.values()) == pytest.approx(1.0)

    def test_priority_overload_run_sees_preemption(self):
        report = serve_priority.overload_scenario(0.004)
        paths = _assert_paths_exact(report)
        # The scenario exists to preempt batch work under interactive load.
        assert any(p.preempted_by_s > 0 for p in paths if p.priority > 0)

    def test_heterogeneous_fleet_run(self):
        _assert_paths_exact(serve_hetero.mixed_scenario(0.004))

    def test_autoscaled_run_with_cold_builds(self):
        report = serve_autoscale.reactive_scenario(serve_autoscale.GOLDEN_HORIZON_S)
        paths = _assert_paths_exact(report)
        # Scale-ups fault in fresh plans: some request pays a cold build.
        assert any(p.cold_build_s > 0 for p in paths)

    def test_ultrasound_frames_run(self):
        from repro.apps.ultrasound.imaging import service_workload

        frames = service_workload(n_voxels=2048, k=512, n_frames=32).kernel
        rate = 2.0 / frames.make_plan(
            Device("A100", ExecutionMode.DRY_RUN), 1
        ).predict_block_cost().time_s
        service = BeamformingService(
            [Device("A100", ExecutionMode.DRY_RUN)],
            policy=BatchingPolicy(max_batch=8, max_wait_s=200e-6),
            slo=SLO(p99_latency_s=5e-3),
        )
        report = service.run(poisson_arrivals(frames, rate, 0.005, seed=3))
        _assert_paths_exact(report)

    def test_blame_none_when_nothing_completed(self):
        assert blame([]) is None
