"""PriorityScheduler: strict classes, DRR fairness, deterministic order."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.serve import Batch, PriorityScheduler, Request, Workload


def workload(priority=0, tenant="default", name="wl") -> Workload:
    return Workload(
        name=name, n_beams=8, n_receivers=16, n_samples=8,
        priority=priority, tenant=tenant,
    )


def batch(bid: int, wl: Workload, n: int = 1, formed_s: float = 0.0) -> Batch:
    requests = [Request(rid=bid * 1000 + i, workload=wl, arrival_s=formed_s) for i in range(n)]
    return Batch(bid=bid, workload=wl, requests=requests, formed_s=formed_s)


class TestStrictPriority:
    def test_lower_number_dispatches_first(self):
        sched = PriorityScheduler()
        sched.enqueue(batch(0, workload(priority=2)))
        sched.enqueue(batch(1, workload(priority=0)))
        sched.enqueue(batch(2, workload(priority=1)))
        order = [sched.next().priority for _ in range(3)]
        assert order == [0, 1, 2]

    def test_late_urgent_batch_preempts_queued_backlog(self):
        # Non-destructive preemption: work already queued (not in flight)
        # yields its slot to a later-arriving more urgent batch.
        sched = PriorityScheduler()
        for i in range(5):
            sched.enqueue(batch(i, workload(priority=1)))
        sched.enqueue(batch(99, workload(priority=0)))
        assert sched.next().bid == 99

    def test_fifo_within_one_class_and_tenant(self):
        sched = PriorityScheduler()
        wl = workload(priority=1)
        for i in range(4):
            sched.enqueue(batch(i, wl))
        assert [sched.next().bid for _ in range(4)] == [0, 1, 2, 3]

    def test_next_on_empty_raises(self):
        with pytest.raises(ShapeError, match="empty"):
            PriorityScheduler().next()

    def test_non_preemptive_mode_is_global_fifo(self):
        sched = PriorityScheduler(preemptive=False)
        sched.enqueue(batch(0, workload(priority=2)))
        sched.enqueue(batch(1, workload(priority=0)))
        assert [sched.next().bid, sched.next().bid] == [0, 1]


class TestQueueViews:
    def test_depths_and_queued_ahead(self):
        sched = PriorityScheduler()
        sched.enqueue(batch(0, workload(priority=0), n=2))
        sched.enqueue(batch(1, workload(priority=1), n=3))
        sched.enqueue(batch(2, workload(priority=1), n=1))
        assert len(sched) == 3
        assert sched.depth_requests() == 6
        assert sched.queued_ahead(0) == 1  # only its own class
        assert sched.queued_ahead(1) == 3  # both classes
        assert sched.queued_by_class() == {0: 1, 1: 2}

    def test_views_in_fifo_mode(self):
        sched = PriorityScheduler(preemptive=False)
        sched.enqueue(batch(0, workload(priority=1), n=2))
        sched.enqueue(batch(1, workload(priority=0), n=1))
        assert sched.depth_requests() == 3
        assert sched.queued_ahead(0) == 2  # FIFO: everything is ahead
        assert sched.queued_by_class() == {0: 1, 1: 1}

    def test_served_counters(self):
        sched = PriorityScheduler()
        sched.enqueue(batch(0, workload(priority=0, tenant="a"), n=4))
        sched.enqueue(batch(1, workload(priority=1, tenant="b"), n=2))
        sched.next(), sched.next()
        assert sched.served_requests == {(0, "a"): 4, (1, "b"): 2}


class TestValidation:
    def test_bad_quantum_and_weights(self):
        with pytest.raises(ShapeError, match="quantum"):
            PriorityScheduler(quantum=0.0)
        with pytest.raises(ShapeError, match="weight"):
            PriorityScheduler(tenant_weights={"a": 0.0})


class TestDeficitRoundRobin:
    def drain_ratio(self, sched: PriorityScheduler, a: str, b: str, until: int):
        """Serve until one tenant has dispatched ``until`` requests; return
        served-request counts at that instant (the contended interval)."""
        served = {a: 0, b: 0}
        while not sched.empty() and max(served.values()) < until:
            out = sched.next()
            served[out.tenant] += out.n_requests
        return served

    def test_weighted_service_matches_three_to_one(self):
        # The PR's weighted-fair acceptance bar: 3:1 weights must yield
        # dispatch service within 10% of 3:1 over a long seeded run of
        # random-sized batches, while both tenants stay backlogged.
        rng = np.random.default_rng(42)
        sched = PriorityScheduler(tenant_weights={"a": 3.0, "b": 1.0})
        wl_a, wl_b = workload(tenant="a"), workload(tenant="b")
        for i in range(400):
            sched.enqueue(batch(2 * i, wl_a, n=int(rng.integers(1, 9))))
            sched.enqueue(batch(2 * i + 1, wl_b, n=int(rng.integers(1, 9))))
        served = self.drain_ratio(sched, "a", "b", until=900)
        ratio = served["a"] / served["b"]
        assert 2.7 <= ratio <= 3.3

    def test_equal_weights_split_evenly(self):
        sched = PriorityScheduler()
        wl_a, wl_b = workload(tenant="a"), workload(tenant="b")
        for i in range(200):
            sched.enqueue(batch(2 * i, wl_a, n=4))
            sched.enqueue(batch(2 * i + 1, wl_b, n=4))
        served = self.drain_ratio(sched, "a", "b", until=400)
        ratio = served["a"] / served["b"]
        assert 0.9 <= ratio <= 1.1

    def test_idle_tenant_does_not_bank_credit(self):
        # A tenant that drains and rejoins must behave exactly like a
        # fresh tenant: the dispatch sequence after the idle gap equals
        # that of a scheduler that never saw the earlier burst.
        def enqueue_round(sched):
            for i in range(6):
                sched.enqueue(batch(10 + i, workload(tenant="a"), n=3))
                sched.enqueue(batch(20 + i, workload(tenant="b"), n=3))

        warmed = PriorityScheduler(tenant_weights={"a": 3.0, "b": 1.0}, quantum=1.0)
        warmed.enqueue(batch(0, workload(tenant="a"), n=5))
        assert warmed.next().tenant == "a"
        assert warmed.empty()
        enqueue_round(warmed)
        fresh = PriorityScheduler(tenant_weights={"a": 3.0, "b": 1.0}, quantum=1.0)
        enqueue_round(fresh)
        warmed_order = [warmed.next().bid for _ in range(len(warmed))]
        fresh_order = [fresh.next().bid for _ in range(len(fresh))]
        assert warmed_order == fresh_order

    def test_lone_tenant_served_fifo_regardless_of_quantum(self):
        sched = PriorityScheduler(quantum=0.25)
        wl = workload(tenant="solo")
        for i in range(5):
            sched.enqueue(batch(i, wl, n=8))
        assert [sched.next().bid for _ in range(5)] == [0, 1, 2, 3, 4]
        assert sched.empty()

    def test_determinism_of_dispatch_sequence(self):
        def build():
            rng = np.random.default_rng(7)
            sched = PriorityScheduler(tenant_weights={"a": 2.0, "b": 1.0})
            for i in range(120):
                tenant = "a" if rng.uniform() < 0.5 else "b"
                priority = int(rng.integers(0, 3))
                sched.enqueue(
                    batch(i, workload(priority=priority, tenant=tenant),
                          n=int(rng.integers(1, 6)))
                )
            return [sched.next().bid for _ in range(len(sched))]

        assert build() == build()
