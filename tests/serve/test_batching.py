"""MicroBatcher: triggers, compatibility keys, deterministic flush order."""

from __future__ import annotations

import pytest

from repro.errors import ShapeError
from repro.serve import BatchingPolicy, MicroBatcher, Request, Workload


def workload(name="wl", **overrides) -> Workload:
    kwargs = dict(name=name, n_beams=8, n_receivers=16, n_samples=8)
    kwargs.update(overrides)
    return Workload(**kwargs)


def request(rid: int, wl: Workload, at: float) -> Request:
    return Request(rid=rid, workload=wl, arrival_s=at)


class TestSizeTrigger:
    def test_full_batch_flushes_immediately(self):
        batcher = MicroBatcher(BatchingPolicy(max_batch=3, max_wait_s=1.0))
        wl = workload()
        assert batcher.offer(request(0, wl, 0.0), 0.0) is None
        assert batcher.offer(request(1, wl, 0.1), 0.1) is None
        batch = batcher.offer(request(2, wl, 0.2), 0.2)
        assert batch is not None
        assert [r.rid for r in batch.requests] == [0, 1, 2]
        assert batch.formed_s == 0.2
        assert batch.merged_batch == 3
        assert batcher.depth() == 0

    def test_max_batch_one_is_naive(self):
        batcher = MicroBatcher(BatchingPolicy(max_batch=1, max_wait_s=1.0))
        batch = batcher.offer(request(0, workload(), 0.5), 0.5)
        assert batch is not None and batch.n_requests == 1
        assert batch.batching_delay_s == 0.0

    def test_merged_batch_scales_with_per_request_extent(self):
        wl = workload(batch_per_request=4)
        batcher = MicroBatcher(BatchingPolicy(max_batch=2, max_wait_s=1.0))
        batcher.offer(request(0, wl, 0.0), 0.0)
        batch = batcher.offer(request(1, wl, 0.0), 0.0)
        assert batch.merged_batch == 8


class TestLatencyTrigger:
    def test_due_flushes_at_deadline_not_observation(self):
        batcher = MicroBatcher(BatchingPolicy(max_batch=8, max_wait_s=0.1))
        wl = workload()
        batcher.offer(request(0, wl, 0.0), 0.0)
        assert batcher.due(0.05) == []
        batches = batcher.due(0.5)  # observed late: timer fired at 0.1
        assert len(batches) == 1
        assert batches[0].formed_s == pytest.approx(0.1)
        assert batches[0].batching_delay_s == pytest.approx(0.1)

    def test_deadline_set_by_first_member(self):
        batcher = MicroBatcher(BatchingPolicy(max_batch=8, max_wait_s=0.1))
        wl = workload()
        batcher.offer(request(0, wl, 0.0), 0.0)
        batcher.offer(request(1, wl, 0.09), 0.09)
        assert batcher.next_deadline() == pytest.approx(0.1)

    def test_flush_all_drains_everything_in_deadline_order(self):
        batcher = MicroBatcher(BatchingPolicy(max_batch=8, max_wait_s=0.1))
        late, early = workload("late"), workload("early")
        batcher.offer(request(0, late, 0.05), 0.05)
        batcher.offer(request(1, early, 0.01), 0.01)
        batches = batcher.flush_all()
        assert [b.workload.name for b in batches] == ["early", "late"]
        assert batcher.depth() == 0


class TestCompatibility:
    def test_incompatible_workloads_never_share_a_batch(self):
        batcher = MicroBatcher(BatchingPolicy(max_batch=2, max_wait_s=1.0))
        a, b = workload("a"), workload("b")
        assert batcher.offer(request(0, a, 0.0), 0.0) is None
        assert batcher.offer(request(1, b, 0.0), 0.0) is None
        assert batcher.depth() == 2
        batch = batcher.offer(request(2, a, 0.0), 0.0)
        assert batch is not None
        assert {r.rid for r in batch.requests} == {0, 2}

    def test_weight_version_splits_generations(self):
        # A calibration bump must fence old and new requests apart.
        old = workload("cal", weights_version=0)
        new = workload("cal", weights_version=1)
        assert old.compat_key() != new.compat_key()
        batcher = MicroBatcher(BatchingPolicy(max_batch=2, max_wait_s=1.0))
        batcher.offer(request(0, old, 0.0), 0.0)
        assert batcher.offer(request(1, new, 0.0), 0.0) is None

    def test_same_shape_different_precision_split(self):
        from repro.ccglib.precision import Precision

        f16 = workload("x", precision=Precision.FLOAT16)
        i1 = workload("x", precision=Precision.INT1)
        assert f16.compat_key() != i1.compat_key()

    def test_packing_flag_normalized_in_compat_key(self):
        # None resolves to "pack iff int1" and float precisions force it
        # off — descriptors building identical plans must batch together.
        from repro.ccglib.precision import Precision

        implicit = workload("x", precision=Precision.INT1, include_packing=None)
        explicit = workload("x", precision=Precision.INT1, include_packing=True)
        assert implicit.compat_key() == explicit.compat_key()
        forced_off = workload("y", precision=Precision.FLOAT16, include_packing=True)
        default_off = workload("y", precision=Precision.FLOAT16, include_packing=None)
        assert forced_off.compat_key() == default_off.compat_key()

    def test_request_equality_safe_with_array_data(self):
        import numpy as np

        wl = workload()
        a = Request(rid=0, workload=wl, arrival_s=0.0, data=np.zeros((2, 2)))
        b = Request(rid=0, workload=wl, arrival_s=0.0, data=np.ones((2, 2)))
        assert a == b  # data excluded from comparison, no ambiguous-truth error


class TestPolicyValidation:
    def test_invalid_policy(self):
        with pytest.raises(ShapeError):
            BatchingPolicy(max_batch=0)
        with pytest.raises(ShapeError):
            BatchingPolicy(max_wait_s=-1.0)

    def test_counters(self):
        batcher = MicroBatcher(BatchingPolicy(max_batch=2, max_wait_s=0.1))
        wl = workload()
        batcher.offer(request(0, wl, 0.0), 0.0)
        batcher.offer(request(1, wl, 0.0), 0.0)  # size flush
        batcher.offer(request(2, wl, 0.2), 0.2)
        batcher.flush_all()  # timer flush
        assert batcher.n_offered == 3
        assert batcher.n_flushed_full == 1
        assert batcher.n_flushed_timer == 1
