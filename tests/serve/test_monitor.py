"""The service monitor: rolling time-series sampling of a live run.

Three properties carry the monitoring tentpole's acceptance bars:

* **determinism** — two monitored runs of the same seed render
  byte-identical series text and identical alert histories;
* **non-perturbation** — a monitored run reports bit-identically to an
  unmonitored one (ticks only read service state), and tracing on top
  changes nothing either;
* **honest sampling** — rates, queue depths, and busy fractions agree
  with the report's own aggregates where they overlap.
"""

from __future__ import annotations

import pytest

from repro.errors import ShapeError
from repro.gpusim.device import Device, ExecutionMode
from repro.serve import (
    SLO,
    BatchingPolicy,
    BeamformingService,
    ServiceMonitor,
    TraceRecorder,
)
from repro.serve.obs.monitor import MetricSampler, TimeSeries
from tests.serve.test_service import overload_trace

INTERVAL_S = 100e-6


def _run(monitor=None, recorder=None, horizon_s: float = 0.004):
    service = BeamformingService(
        [Device("A100", ExecutionMode.DRY_RUN)],
        policy=BatchingPolicy(max_batch=16, max_wait_s=200e-6),
        slo=SLO(p99_latency_s=5e-3),
        recorder=recorder,
        monitor=monitor,
    )
    return service.run(overload_trace(horizon_s=horizon_s))


class TestTimeSeries:
    def test_appends_in_order_and_reports_extremes(self):
        series = TimeSeries("q")
        for t, v in [(1.0, 5.0), (2.0, 3.0), (3.0, 7.0)]:
            series.append(t, v)
        assert len(series) == 3
        assert series.times == [1.0, 2.0, 3.0]
        assert series.values == [5.0, 3.0, 7.0]
        assert series.latest == 7.0
        assert series.minimum == 3.0
        assert series.maximum == 7.0

    def test_rejects_non_increasing_timestamps(self):
        series = TimeSeries("q")
        series.append(1.0, 0.0)
        with pytest.raises(ShapeError):
            series.append(1.0, 1.0)
        with pytest.raises(ShapeError):
            series.append(0.5, 1.0)

    def test_rolls_oldest_point_past_max_points(self):
        series = TimeSeries("q", max_points=3)
        for t in range(5):
            series.append(float(t), float(t) * 10.0)
        assert series.times == [2.0, 3.0, 4.0]

    def test_empty_series_raises_on_reads(self):
        series = TimeSeries("q")
        for prop in ("latest", "minimum", "maximum"):
            with pytest.raises(ShapeError):
                getattr(series, prop)

    def test_rejects_bad_max_points(self):
        with pytest.raises(ShapeError):
            TimeSeries("q", max_points=0)


class TestSamplerValidation:
    def test_rejects_non_positive_interval(self):
        with pytest.raises(ShapeError):
            MetricSampler(0.0)
        with pytest.raises(ShapeError):
            MetricSampler(-1e-3)

    def test_ticks_advance_on_fixed_cadence(self):
        sampler = MetricSampler(interval_s=0.5)
        assert sampler.next_sample_s == 0.5
        assert sampler.n_ticks == 0


class TestMonitorDeterminism:
    def test_same_seed_renders_byte_identical_series(self):
        first = ServiceMonitor(interval_s=INTERVAL_S)
        second = ServiceMonitor(interval_s=INTERVAL_S)
        _run(monitor=first)
        _run(monitor=second)
        rendered = first.render_series()
        assert rendered == second.render_series()
        assert rendered  # sampled something
        assert [a.to_dict() for a in first.alerts] == [
            a.to_dict() for a in second.alerts
        ]

    def test_monitored_run_reports_identically_to_unmonitored(self):
        plain = _run()
        monitored = _run(monitor=ServiceMonitor(interval_s=INTERVAL_S))
        assert monitored.latencies_s == plain.latencies_s
        assert monitored.n_batches == plain.n_batches
        assert monitored.throughput_rps == plain.throughput_rps
        assert monitored.shed_rate == plain.shed_rate

    def test_tracing_does_not_perturb_a_monitored_run(self):
        untraced_monitor = ServiceMonitor(interval_s=INTERVAL_S)
        traced_monitor = ServiceMonitor(interval_s=INTERVAL_S)
        untraced = _run(monitor=untraced_monitor)
        traced = _run(monitor=traced_monitor, recorder=TraceRecorder())
        assert traced.latencies_s == untraced.latencies_s
        assert traced_monitor.render_series() == untraced_monitor.render_series()


class TestSampledSeries:
    def test_core_series_exist_and_cover_the_run(self):
        monitor = ServiceMonitor(interval_s=INTERVAL_S)
        report = _run(monitor=monitor)
        for name in (
            "rate.arrival_hz",
            "rate.completed_hz",
            "rate.shed_hz",
            "queue.requests",
            "inflight.requests",
            "cache.hit_rate",
            "ops.padded_fraction",
            "fleet.accepting",
            "fleet.provisioned",
            "util.worker0",
        ):
            assert name in monitor.series, name
            assert len(monitor.series[name]) == monitor.sampler.n_ticks
        # Windowed rates integrate exactly: cumulative completions over
        # every tick equal the completions by the last tick instant (the
        # partial window after it is not a tick and is honestly absent).
        completed = sum(
            v * INTERVAL_S for v in monitor.series["rate.completed_hz"].values
        )
        last_tick_s = monitor.sampler.n_ticks * INTERVAL_S
        expected = sum(
            1
            for outcome in report.outcomes
            if outcome.completion_s is not None and outcome.completion_s <= last_tick_s
        )
        assert round(completed) == expected
        assert expected >= report.n_completed * 0.9  # the tail window is small

    def test_arrival_rate_integrates_to_offered_requests(self):
        monitor = ServiceMonitor(interval_s=INTERVAL_S)
        report = _run(monitor=monitor)
        offered = sum(
            v * INTERVAL_S for v in monitor.series["rate.arrival_hz"].values
        )
        # All arrivals land inside the sampled horizon (the drain tail
        # extends past the last arrival), so the integral is exact.
        assert round(offered) == report.n_offered

    def test_busy_fraction_is_a_fraction(self):
        monitor = ServiceMonitor(interval_s=INTERVAL_S)
        _run(monitor=monitor)
        values = monitor.series["util.worker0"].values
        assert values and all(0.0 <= v <= 1.0 + 1e-9 for v in values)
        assert max(values) > 0.0  # an overloaded device is busy


class TestReportIntegration:
    def test_summary_reports_busy_and_alert_lines_when_monitored(self):
        report = _run(monitor=ServiceMonitor(interval_s=INTERVAL_S))
        summary = report.summary()
        assert "busy:" in summary
        assert "alerts:" in summary

    def test_unmonitored_summary_has_no_alert_line(self):
        assert "alerts:" not in _run().summary()

    def test_worker_busy_fractions_bounded(self):
        report = _run(monitor=ServiceMonitor(interval_s=INTERVAL_S))
        busy = report.worker_busy_fractions()
        assert len(busy) == 1
        assert 0.0 < busy[0] <= 1.0
