"""serve.slo edge cases: percentiles, tracker slices, admission counters."""

from __future__ import annotations

import pytest

from repro.errors import ShapeError
from repro.serve import SLO, AdmissionController, ClassStats, SLOTracker, percentile

SLO_1MS = SLO(p99_latency_s=1e-3)


class TestPercentile:
    def test_empty_sample_is_zero(self):
        # Regression: an empty sample used to raise ShapeError, which a
        # zero-completion report (total shed, or a crash storm that loses
        # everything) could hit through its summary path.
        assert percentile([], 0.0) == 0.0
        assert percentile([], 50.0) == 0.0
        assert percentile([], 99.0) == 0.0
        assert percentile([], 100.0) == 0.0

    def test_empty_sample_still_validates_quantile(self):
        with pytest.raises(ShapeError, match="percentile"):
            percentile([], 101.0)

    def test_extreme_quantiles_are_min_and_max(self):
        values = [5.0, 1.0, 3.0]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 100.0) == 5.0

    def test_out_of_range_quantile_raises(self):
        with pytest.raises(ShapeError, match="percentile"):
            percentile([1.0], 101.0)
        with pytest.raises(ShapeError, match="percentile"):
            percentile([1.0], -1.0)

    def test_single_sample_is_every_percentile(self):
        assert percentile([0.25], 0.0) == 0.25
        assert percentile([0.25], 50.0) == 0.25
        assert percentile([0.25], 99.0) == 0.25
        assert percentile([0.25], 100.0) == 0.25

    def test_linear_interpolation(self):
        values = [0.0, 1.0, 2.0, 3.0]
        assert percentile(values, 50.0) == pytest.approx(1.5)
        assert percentile(values, 100.0) == 3.0
        assert percentile(values, 0.0) == 0.0

    def test_order_independent(self):
        assert percentile([3.0, 1.0, 2.0], 50.0) == percentile([1.0, 2.0, 3.0], 50.0)


class TestSLOTrackerEdges:
    def test_empty_tracker_reports_nothing(self):
        tracker = SLOTracker(SLO_1MS)
        assert tracker.by_priority() == []
        assert tracker.by_tenant() == []
        assert tracker.n_shed == 0
        assert tracker.shed_share(0) == 0.0  # no shedding: share is 0, not NaN

    def test_single_sample_slice(self):
        tracker = SLOTracker(SLO_1MS)
        tracker.record(priority=0, tenant="t", admitted=True, latency_s=4e-4)
        (stats,) = tracker.by_priority(span_s=2.0)
        assert stats.n_offered == stats.n_admitted == stats.n_completed == 1
        assert stats.p50_latency_s == stats.p99_latency_s == 4e-4
        assert stats.throughput_rps == pytest.approx(0.5)
        assert stats.goodput_rps == pytest.approx(0.5)  # inside the deadline
        assert stats.shed_rate == 0.0

    def test_shed_everything_scenario(self):
        tracker = SLOTracker(SLO_1MS)
        for _ in range(5):
            tracker.record(priority=1, tenant="bulk", admitted=False, latency_s=None)
        (stats,) = tracker.by_priority()
        assert stats.n_completed == 0
        assert stats.shed_rate == 1.0
        assert stats.shed_share == 1.0
        # No completions: the tail is reported as 0.0, never an exception.
        assert stats.p50_latency_s == stats.p95_latency_s == stats.p99_latency_s == 0.0
        assert tracker.shed_share(1) == 1.0
        assert tracker.shed_share(0) == 0.0

    def test_zero_span_reports_zero_rates(self):
        tracker = SLOTracker(SLO_1MS)
        tracker.record(priority=0, tenant="t", admitted=True, latency_s=1e-4)
        (stats,) = tracker.by_priority(span_s=0.0)
        assert stats.throughput_rps == 0.0
        assert stats.goodput_rps == 0.0

    def test_goodput_excludes_deadline_misses(self):
        tracker = SLOTracker(SLO_1MS)
        tracker.record(priority=0, tenant="t", admitted=True, latency_s=5e-4)
        tracker.record(priority=0, tenant="t", admitted=True, latency_s=5e-3)  # late
        (stats,) = tracker.by_priority(span_s=1.0)
        assert stats.throughput_rps == pytest.approx(2.0)
        assert stats.goodput_rps == pytest.approx(1.0)


class TestPerClassAggregation:
    def test_classes_sorted_most_urgent_first(self):
        tracker = SLOTracker(SLO_1MS)
        tracker.record(priority=2, tenant="c", admitted=True, latency_s=1e-4)
        tracker.record(priority=0, tenant="a", admitted=True, latency_s=1e-4)
        tracker.record(priority=1, tenant="b", admitted=False, latency_s=None)
        labels = [s.label for s in tracker.by_priority()]
        assert labels == ["priority=0", "priority=1", "priority=2"]

    def test_tenants_in_first_seen_order(self):
        tracker = SLOTracker(SLO_1MS)
        tracker.record(priority=0, tenant="zeta", admitted=True, latency_s=1e-4)
        tracker.record(priority=0, tenant="alpha", admitted=True, latency_s=1e-4)
        assert [s.label for s in tracker.by_tenant()] == ["zeta", "alpha"]

    def test_shed_shares_sum_to_one_across_classes(self):
        tracker = SLOTracker(SLO_1MS)
        for priority, admitted in ((0, True), (1, False), (1, False), (2, False)):
            tracker.record(
                priority=priority, tenant=f"t{priority}", admitted=admitted,
                latency_s=1e-4 if admitted else None,
            )
        shares = [s.shed_share for s in tracker.by_priority()]
        assert sum(shares) == pytest.approx(1.0)
        assert shares[0] == 0.0

    def test_class_and_tenant_views_account_every_request(self):
        tracker = SLOTracker(SLO_1MS)
        for i in range(10):
            tracker.record(
                priority=i % 2, tenant=f"t{i % 3}", admitted=i % 4 != 0,
                latency_s=1e-4 if i % 4 != 0 else None,
            )
        assert sum(s.n_offered for s in tracker.by_priority()) == 10
        assert sum(s.n_offered for s in tracker.by_tenant()) == 10
        assert sum(s.n_shed for s in tracker.by_priority()) == tracker.n_shed


class TestClassStats:
    def test_derived_counts(self):
        stats = ClassStats(label="x", n_offered=10, n_admitted=7)
        assert stats.n_shed == 3
        assert stats.shed_rate == pytest.approx(0.3)

    def test_empty_slice_rates(self):
        stats = ClassStats(label="x")
        assert stats.n_shed == 0
        assert stats.shed_rate == 0.0


class TestAdmissionPerClassCounters:
    def test_shed_by_class_tallies(self):
        controller = AdmissionController(SLO_1MS)
        assert controller.admit(1e-4, 0, priority=0)
        assert not controller.admit(1.0, 0, priority=1)
        assert not controller.admit(1.0, 0, priority=1)
        assert not controller.admit(1.0, 0, priority=0)
        assert controller.shed_by_class == {1: 2, 0: 1}
        assert controller.n_shed == 3
        assert controller.n_admitted == 1

    def test_depth_cap_still_applies_per_call(self):
        controller = AdmissionController(SLO(p99_latency_s=1e9), max_queue_depth=2)
        assert controller.admit(0.0, 0, priority=3)
        assert not controller.admit(0.0, 2, priority=3)
        assert controller.shed_by_class == {3: 1}
