"""Fault injection and recovery: crashes, stragglers, hedging, shards.

The contract under test, in three layers:

* **plan layer** — :class:`FaultEvent` / :class:`FaultPlan` /
  :func:`crash_storm` validation and bit-determinism;
* **zero-overhead** — a service handed ``faults=None`` or an *empty* plan
  replays the legacy paths byte-identically (every golden stays valid);
* **recovery layer** — a crash loses admitted work without recovery and
  loses nothing with the default :class:`ResiliencePolicy`; hedging bounds
  the straggler tail and bills its waste; a lost shard of a split request
  re-executes on a survivor; a replacement worker joins re-warmed.
"""

from __future__ import annotations

from functools import cache

import pytest

from repro.apps.radioastronomy.beamformer import service_workload as _lofar_pipeline
from repro.errors import ShapeError
from repro.gpusim.device import Device, ExecutionMode
from repro.serve import (
    SLO,
    BatchingPolicy,
    BeamformingService,
    FaultEvent,
    FaultKind,
    FaultPlan,
    ResiliencePolicy,
    crash_storm,
    poisson_arrivals,
)
from repro.serve.workload import Request

def lofar_workload(**kwargs):
    """The LOFAR adapter's bare kernel (the documented migration unwrap)."""
    return _lofar_pipeline(**kwargs).kernel


POLICY = BatchingPolicy(max_batch=32, max_wait_s=0.5e-3)
HORIZON_S = 4e-3
CRASH_T_S = 2e-3


def _service(n_workers: int = 2, gpu: str = "A100", **kwargs) -> BeamformingService:
    return BeamformingService(
        [Device(gpu, ExecutionMode.DRY_RUN) for _ in range(n_workers)],
        policy=POLICY,
        slo=SLO(p99_latency_s=3e-3, deadline_s=2e-3),
        **kwargs,
    )


@cache
def _trace() -> tuple[Request, ...]:
    """A fixed overload trace: ~70% of the two-worker batched capacity,
    heavy enough that a mid-run crash always finds batches in flight."""
    workload = lofar_workload(n_samples=2048)
    plan = workload.make_plan(Device("A100", ExecutionMode.DRY_RUN), POLICY.max_batch)
    rate = 0.7 * 2 * POLICY.max_batch / plan.predict_gemm_cost().time_s
    return tuple(poisson_arrivals(workload, rate, HORIZON_S, seed=5))


def _run(**kwargs):
    return _service(**kwargs).run(list(_trace()))


_CRASH = FaultPlan((FaultEvent(t_s=CRASH_T_S, kind=FaultKind.CRASH, worker_index=0),))
_SLOW = FaultPlan(
    (
        FaultEvent(t_s=0.0, kind=FaultKind.SLOW_START, worker_index=0, factor=4.0),
        FaultEvent(t_s=3e-3, kind=FaultKind.SLOW_END, worker_index=0),
    )
)
_CRASH_REPLACE = FaultPlan(
    (
        FaultEvent(t_s=CRASH_T_S, kind=FaultKind.CRASH, worker_index=0),
        FaultEvent(
            t_s=CRASH_T_S,
            kind=FaultKind.REPLACE,
            device_name="A100",
            startup_s=100e-6,
        ),
    )
)


class TestFaultPlanValidation:
    def test_event_rejects_bad_fields(self):
        with pytest.raises(ShapeError):
            FaultEvent(t_s=-1.0, kind=FaultKind.CRASH, worker_index=0)
        with pytest.raises(ShapeError):
            FaultEvent(t_s=0.0, kind=FaultKind.SLOW_START, worker_index=0, factor=0.5)
        with pytest.raises(ShapeError):
            FaultEvent(t_s=0.0, kind=FaultKind.CRASH)  # no worker_index
        with pytest.raises(ShapeError):
            FaultEvent(t_s=0.0, kind=FaultKind.REPLACE)  # no device_name

    def test_plan_must_be_time_sorted(self):
        a = FaultEvent(t_s=1.0, kind=FaultKind.CRASH, worker_index=0)
        b = FaultEvent(t_s=0.5, kind=FaultKind.CRASH, worker_index=1)
        with pytest.raises(ShapeError):
            FaultPlan((a, b))
        assert len(FaultPlan((b, a))) == 2

    def test_empty_plan_counts_nothing(self):
        assert len(FaultPlan()) == 0
        assert FaultPlan().n_crashes == 0


class TestCrashStorm:
    def test_deterministic_for_fixed_seed(self):
        a = crash_storm(1.0, [0, 1, 2], seed=3)
        b = crash_storm(1.0, [0, 1, 2], seed=3)
        assert a == b
        assert a != crash_storm(1.0, [0, 1, 2], seed=4)

    def test_shape_and_bounds(self):
        plan = crash_storm(
            1.0, [0, 1, 2, 3], n_crashes=2, n_slow_windows=3, replace_device="A100"
        )
        assert plan.n_crashes == 2
        assert all(0.0 <= e.t_s <= 1.0 + 0.1 for e in plan.events)
        kinds = [e.kind for e in plan.events]
        assert kinds.count(FaultKind.REPLACE) == 2
        assert kinds.count(FaultKind.SLOW_START) == 3
        assert kinds.count(FaultKind.SLOW_END) == 3
        # Crashed workers are distinct (drawn without replacement).
        crashed = [e.worker_index for e in plan.events if e.kind is FaultKind.CRASH]
        assert len(set(crashed)) == 2

    def test_validation(self):
        with pytest.raises(ShapeError):
            crash_storm(0.0, [0])
        with pytest.raises(ShapeError):
            crash_storm(1.0, [])
        with pytest.raises(ShapeError):
            crash_storm(1.0, [0], n_crashes=2)


class TestResiliencePolicy:
    def test_class_budget_overrides_default(self):
        policy = ResiliencePolicy(max_retries=2, class_retries={0: 5})
        assert policy.budget(0) == 5
        assert policy.budget(1) == 2

    def test_disabled_turns_everything_off(self):
        policy = ResiliencePolicy.disabled()
        assert policy.budget(0) == 0
        assert policy.hedge_slow_threshold == float("inf")
        assert not policy.recover_shards
        assert not policy.rewarm_plans

    def test_validation(self):
        with pytest.raises(ShapeError):
            ResiliencePolicy(max_retries=-1)
        with pytest.raises(ShapeError):
            ResiliencePolicy(retry_deadline_factor=0.0)
        with pytest.raises(ShapeError):
            ResiliencePolicy(hedge_slow_threshold=0.5)
        with pytest.raises(ShapeError):
            ResiliencePolicy(rewarm_limit=-1)


class TestZeroFaultIdentity:
    def test_empty_plan_is_byte_identical_to_no_plan(self):
        plain = _run()
        empty = _run(faults=FaultPlan())
        assert empty.latencies_s == plain.latencies_s
        assert empty.summary() == plain.summary()
        assert empty.n_crashes == 0 and empty.n_retries == 0
        assert empty.wasted_device_seconds == 0.0

    def test_fault_free_report_is_fully_available(self):
        report = _run()
        assert report.availability == 1.0
        assert report.n_failed == 0


@cache
def _no_recovery():
    return _run(faults=_CRASH, resilience=ResiliencePolicy.disabled())


@cache
def _resilient():
    return _run(faults=_CRASH)


@cache
def _hedged():
    return _run(faults=_SLOW)


@cache
def _replaced():
    return _run(faults=_CRASH_REPLACE)


class TestCrashRecovery:
    def test_crash_loses_admitted_work_without_recovery(self):
        report = _no_recovery()
        assert report.n_crashes == 1
        assert report.n_failed > 0
        assert report.availability < 1.0
        assert report.n_retries == 0
        # Lost requests stay admitted: the failure is charged to the
        # service, not laundered through the shed counter.
        assert report.n_admitted == report.n_offered

    def test_default_policy_recovers_every_request(self):
        report = _resilient()
        assert report.n_crashes == 1
        assert report.n_retries > 0
        assert report.n_failed == 0
        assert report.availability == 1.0

    def test_crash_emits_a_scale_event_and_wastes_burned_work(self):
        report = _resilient()
        kinds = [e.kind for e in report.scale_events]
        assert kinds.count("crash") == 1
        crash = next(e for e in report.scale_events if e.kind == "crash")
        assert crash.t_s == CRASH_T_S
        assert crash.provisioned == 1  # one worker left
        assert report.wasted_device_seconds > 0.0

    def test_faulted_replay_is_bit_deterministic(self):
        a = _resilient()
        b = _run(faults=_CRASH)
        assert b.latencies_s == a.latencies_s
        assert b.n_retries == a.n_retries
        assert b.wasted_device_seconds == a.wasted_device_seconds
        assert b.summary() == a.summary()

    def test_exhausted_retry_budget_fails_the_request(self):
        # Budget 0 with recovery otherwise on: every displaced request
        # fails as retries_exhausted instead of re-entering the placer.
        report = _run(faults=_CRASH, resilience=ResiliencePolicy(max_retries=0))
        assert report.n_retries == 0
        assert report.n_failed > 0

    def test_hopeless_deadline_fails_fast_instead_of_retrying(self):
        # A retry whose projected finish cannot fit inside the scaled
        # admission deadline is a doomed launch; fail fast instead.
        report = _run(
            faults=_CRASH, resilience=ResiliencePolicy(retry_deadline_factor=1e-6)
        )
        assert report.n_retries == 0
        assert report.n_failed > 0


class TestStragglersAndHedging:
    def test_slow_worker_triggers_hedges_that_win(self):
        report = _hedged()
        assert report.n_hedges > 0
        assert report.n_hedge_wins > 0
        # The losing duplicate's compute is billed, never hidden.
        assert report.wasted_device_seconds > 0.0
        assert report.n_failed == 0

    def test_hedging_off_means_no_hedges_and_a_worse_tail(self):
        unhedged = _run(
            faults=_SLOW,
            resilience=ResiliencePolicy(hedge_slow_threshold=float("inf")),
        )
        assert unhedged.n_hedges == 0
        assert unhedged.wasted_device_seconds == 0.0
        assert unhedged.p99_latency_s >= _hedged().p99_latency_s

    def test_slow_window_alone_loses_nothing(self):
        assert _hedged().availability == 1.0


class TestShardRecovery:
    """An oversized survey request split across a 3-GH200 fleet, with one
    shard holder crashing mid-execution."""

    @staticmethod
    def _survey_service(**kwargs):
        return BeamformingService(
            [Device("GH200", ExecutionMode.DRY_RUN) for _ in range(3)],
            policy=POLICY,
            slo=SLO(p99_latency_s=120.0),
            **kwargs,
        )

    @classmethod
    def _run_survey(cls, **kwargs):
        survey = lofar_workload(n_samples=256, n_channels=350_000)
        return cls._survey_service(**kwargs).run(
            [Request(rid=0, workload=survey, arrival_s=0.0)]
        )

    @classmethod
    @cache
    def _crash_mid_split(cls) -> FaultPlan:
        baseline = cls._run_survey()
        execution = baseline.executions[0]
        assert execution.is_split
        victim = execution.shards[0].worker_index
        mid = (execution.start_s + execution.completion_s) / 2.0
        return FaultPlan((FaultEvent(t_s=mid, kind=FaultKind.CRASH, worker_index=victim),))

    def test_lost_shard_reexecutes_on_a_survivor(self):
        report = self._run_survey(faults=self._crash_mid_split())
        assert report.n_shard_recoveries == 1
        assert report.n_completed == 1
        assert report.availability == 1.0
        # The dead shard's burned compute is waste; the survivors' is not.
        assert report.wasted_device_seconds > 0.0

    def test_without_shard_recovery_the_split_is_lost(self):
        # Two surviving GH200s cannot hold the survey at all, so the
        # whole-request retry path finds no capable placement either:
        # shard recovery is the only way this request completes.
        report = self._run_survey(
            faults=self._crash_mid_split(),
            resilience=ResiliencePolicy(recover_shards=False),
        )
        assert report.n_shard_recoveries == 0
        assert report.n_retries == 0
        assert report.n_failed == 1


class TestReplacement:
    def test_replacement_joins_and_the_fleet_recovers(self):
        report = _replaced()
        kinds = [e.kind for e in report.scale_events]
        assert kinds.count("crash") == 1
        assert kinds.count("replace") == 1
        replace = next(e for e in report.scale_events if e.kind == "replace")
        assert replace.device_name == "A100"
        assert replace.provisioned == 2  # back to full strength
        assert report.availability == 1.0

    def test_replacement_serves_traffic(self):
        report = _replaced()
        # Worker indices 0/1 are the seed fleet; the replacement takes 2.
        assert any(e.worker_index == 2 for e in report.executions)

    def test_rewarm_spares_the_replacement_cold_builds(self):
        cold = _run(
            faults=_CRASH_REPLACE, resilience=ResiliencePolicy(rewarm_plans=False)
        )
        warm = _replaced()
        warm_builds = sum(
            1 for e in warm.executions if e.worker_index == 2 and e.build_s > 0
        )
        cold_builds = sum(
            1 for e in cold.executions if e.worker_index == 2 and e.build_s > 0
        )
        assert warm_builds < cold_builds
