"""Golden-replay determinism of the serving experiments.

The discrete-event simulator's whole value rests on reproducibility, so it
is pinned two ways:

* **replay** — running the "serve" and "serve-priority" experiments twice
  with the same seed must produce byte-identical report rows (the CSVs the
  CLI would write), not merely statistically similar ones;
* **golden file** — a small fixed overload scenario is rendered to CSV and
  compared byte-for-byte against a checked-in golden. Any change to the
  event loop, scheduler, batcher, estimates, or float formatting that
  moves a single bit shows up as a diff here and must be re-blessed
  deliberately (regenerate via ``repro.bench.serve_priority.golden_rows``).
"""

from __future__ import annotations

from pathlib import Path

from repro.bench.registry import run_experiment
from repro.bench.serve_autoscale import golden_rows as autoscale_golden_rows
from repro.bench.serve_pipeline import golden_rows as pipeline_golden_rows
from repro.bench.serve_priority import golden_rows
from repro.bench.serve_resilience import golden_rows as resilience_golden_rows
from repro.util.formatting import render_csv

GOLDEN_DIR = Path(__file__).parent / "golden"


def _csv_tables(name: str) -> dict[str, str]:
    result = run_experiment(name, quick=True)
    return {table: render_csv(headers, rows) for table, (headers, rows) in result.tables.items()}


class TestExperimentReplay:
    def test_serve_experiment_rows_replay_byte_identical(self):
        assert _csv_tables("serve") == _csv_tables("serve")

    def test_serve_priority_experiment_rows_replay_byte_identical(self):
        assert _csv_tables("serve-priority") == _csv_tables("serve-priority")


class TestGoldenFile:
    def test_small_scenario_matches_checked_in_golden(self):
        headers, rows = golden_rows()
        rendered = render_csv(headers, rows)
        golden = (GOLDEN_DIR / "serve_priority_small.csv").read_text()
        assert rendered == golden

    def test_golden_covers_every_slice(self):
        golden = (GOLDEN_DIR / "serve_priority_small.csv").read_text()
        first_column = [line.split(",")[0] for line in golden.splitlines()[1:]]
        assert first_column == [
            "priority=0",
            "priority=1",
            "pulsar-a",
            "pulsar-b",
            "clinic",
            "overall",
        ]


class TestAutoscaleGoldenFile:
    def test_small_scenario_matches_checked_in_golden(self):
        # golden_rows defaults to serve_autoscale.GOLDEN_HORIZON_S — the
        # same single source scripts/check_golden.py regenerates from.
        headers, rows = autoscale_golden_rows()
        rendered = render_csv(headers, rows)
        golden = (GOLDEN_DIR / "serve_autoscale_small.csv").read_text()
        assert rendered == golden

    def test_golden_covers_every_provisioning_regime(self):
        golden = (GOLDEN_DIR / "serve_autoscale_small.csv").read_text()
        first_column = [line.split(",")[0] for line in golden.splitlines()[1:]]
        assert first_column[:2] == ["reactive", "predictive"]
        assert all(label.startswith("fixed-") for label in first_column[2:])
        assert len(first_column) == 4


class TestResilienceGoldenFile:
    def test_small_scenario_matches_checked_in_golden(self):
        # golden_rows defaults to serve_resilience.GOLDEN_HORIZON_S — the
        # same single source scripts/check_golden.py regenerates from.
        headers, rows = resilience_golden_rows()
        rendered = render_csv(headers, rows)
        golden = (GOLDEN_DIR / "serve_resilience_small.csv").read_text()
        assert rendered == golden

    def test_golden_covers_every_recovery_arm(self):
        golden = (GOLDEN_DIR / "serve_resilience_small.csv").read_text()
        first_column = [line.split(",")[0] for line in golden.splitlines()[1:]]
        assert first_column == ["fault-free", "no-recovery", "resilient"]

    def test_golden_pins_the_recovery_story(self):
        # The pinned bytes must keep telling the story the bench claims:
        # the crash costs the no-recovery arm admitted requests, and the
        # resilient arm recovers every one of them.
        golden = (GOLDEN_DIR / "serve_resilience_small.csv").read_text()
        header, *rows = [line.split(",") for line in golden.splitlines()]
        availability = header.index("availability (%)")
        by_label = {row[0]: row for row in rows}
        assert float(by_label["fault-free"][availability]) == 100.0
        assert float(by_label["no-recovery"][availability]) < 100.0
        assert float(by_label["resilient"][availability]) >= 99.9


class TestPipelineGoldenFile:
    def test_small_scenario_matches_checked_in_golden(self):
        # golden_rows defaults to serve_pipeline.GOLDEN_HORIZON_S — the
        # same single source scripts/check_golden.py regenerates from.
        headers, rows = pipeline_golden_rows()
        rendered = render_csv(headers, rows)
        golden = (GOLDEN_DIR / "serve_pipeline_small.csv").read_text()
        assert rendered == golden

    def test_golden_covers_both_placement_arms(self):
        golden = (GOLDEN_DIR / "serve_pipeline_small.csv").read_text()
        first_column = [line.split(",")[0] for line in golden.splitlines()[1:]]
        assert first_column == ["stage-locality", "stage-blind"]

    def test_golden_pins_the_locality_story(self):
        # The pinned bytes must keep telling the story the bench claims:
        # locality-aware stage placement keeps more dispatches on the
        # buffer-resident worker and holds a tighter end-to-end tail.
        golden = (GOLDEN_DIR / "serve_pipeline_small.csv").read_text()
        header, *rows = [line.split(",") for line in golden.splitlines()]
        local_pct = header.index("stage-local (%)")
        p99 = header.index("p99 (ms)")
        by_label = {row[0]: row for row in rows}
        locality, blind = by_label["stage-locality"], by_label["stage-blind"]
        assert float(locality[local_pct]) > float(blind[local_pct])
        assert float(locality[p99]) <= float(blind[p99])
