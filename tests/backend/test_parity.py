"""Cross-backend parity: every importable backend vs the NumPy reference.

Parameterized over :func:`repro.backend.available_backends`, so on a plain
CI host this pins the NumPy backend against itself (exercising the backend
code paths), and on the optional-backends job (``jax[cpu]`` installed) the
same tests become genuine cross-library parity checks — pack -> transpose
-> GEMM round trips within the per-precision tolerances of
:data:`repro.ccglib.precision.PARITY_TOLERANCES`.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backend import available_backends, get_backend, numpy_backend
from repro.backend.conformance import require_conformant
from repro.ccglib.bit_gemm import complex_bit_gemm
from repro.ccglib.complex_mma import complex_mma_f16_batched, complex_mma_tf32_batched
from repro.ccglib.gemm import gemm_once
from repro.ccglib.layouts import to_planar
from repro.ccglib.packing import pack_sign_planar, unpack_sign_planar
from repro.ccglib.precision import Precision, parity_tolerance
from repro.ccglib.transpose import planar_to_kmajor
from repro.gpusim.device import Device

BACKENDS = list(available_backends())

pytestmark = pytest.mark.parametrize("backend_name", BACKENDS)


def _pad32(k: int) -> int:
    return -(-k // 32) * 32


@st.composite
def _problem(draw):
    batch = draw(st.integers(1, 3))
    m = draw(st.integers(1, 12))
    n = draw(st.integers(1, 12))
    k = draw(st.integers(1, 70))
    seed = draw(st.integers(0, 2**31))
    return batch, m, n, k, seed


def _operands(batch, m, n, k, seed):
    rng = np.random.default_rng(seed)
    a = (rng.normal(size=(batch, m, k)) + 1j * rng.normal(size=(batch, m, k)))
    b = (rng.normal(size=(batch, k, n)) + 1j * rng.normal(size=(batch, k, n)))
    return a.astype(np.complex64), b.astype(np.complex64)


class TestConformance:
    def test_backend_is_conformant(self, backend_name):
        require_conformant(get_backend(backend_name))


class TestPackRoundTrip:
    @settings(max_examples=20, deadline=None)
    @given(case=_problem())
    def test_pack_unpack_matches_numpy_bitwise(self, backend_name, case):
        batch, m, _, k, seed = case
        be = get_backend(backend_name)
        rng = np.random.default_rng(seed)
        values = rng.normal(size=(batch, 2, m, k)).astype(np.float32)
        values[values == 0] = 1.0

        words = be.to_numpy(pack_sign_planar(values, k_pad_to=_pad32(k), backend=be))
        words_ref = np.asarray(pack_sign_planar(values, k_pad_to=_pad32(k)))
        assert words.dtype == np.uint32
        assert np.array_equal(words, words_ref)

        signs = be.to_numpy(unpack_sign_planar(be.asarray(words), k, backend=be))
        assert np.array_equal(signs, np.where(values >= 0, 1, -1).astype(np.int8))

    def test_transpose_is_exact(self, backend_name):
        be = get_backend(backend_name)
        rng = np.random.default_rng(11)
        planar = rng.normal(size=(3, 2, 17, 9)).astype(np.float32)
        got = be.to_numpy(planar_to_kmajor(be.asarray(planar), backend=be))
        assert np.array_equal(got, np.asarray(planar_to_kmajor(planar)))


class TestGemmParity:
    @settings(max_examples=15, deadline=None)
    @given(case=_problem())
    def test_int1_pipeline_exact(self, backend_name, case):
        batch, m, n, k, seed = case
        be = get_backend(backend_name)
        a, b = _operands(batch, m, n, k, seed)
        a_planar = np.asarray(to_planar(a))
        b_km = planar_to_kmajor(np.asarray(to_planar(b)))

        aw = pack_sign_planar(a_planar, k_pad_to=_pad32(k), backend=be)
        bw = pack_sign_planar(b_km, k_pad_to=_pad32(k), backend=be)
        got = be.to_numpy(complex_bit_gemm(aw, bw, k_valid=k, backend=be))

        aw_ref = pack_sign_planar(a_planar, k_pad_to=_pad32(k))
        bw_ref = pack_sign_planar(b_km, k_pad_to=_pad32(k))
        want = np.asarray(complex_bit_gemm(aw_ref, bw_ref, k_valid=k))
        tol = parity_tolerance(Precision.INT1)
        assert tol.exact
        assert np.array_equal(got, want)

    @settings(max_examples=15, deadline=None)
    @given(case=_problem())
    def test_f16_within_tolerance(self, backend_name, case):
        batch, m, n, k, seed = case
        be = get_backend(backend_name)
        ref = numpy_backend()
        a, b = _operands(batch, m, n, k, seed)
        a_planar, b_planar = np.asarray(to_planar(a)), np.asarray(to_planar(b))
        got = be.to_numpy(complex_mma_f16_batched(a_planar, b_planar, backend=be))
        want = np.asarray(complex_mma_f16_batched(a_planar, b_planar, backend=ref))
        tol = parity_tolerance(Precision.FLOAT16)
        scale = max(1.0, float(np.max(np.abs(want))))
        np.testing.assert_allclose(
            got / scale, want / scale, rtol=tol.rtol, atol=tol.atol
        )

    @settings(max_examples=15, deadline=None)
    @given(case=_problem())
    def test_tf32_within_tolerance(self, backend_name, case):
        batch, m, n, k, seed = case
        be = get_backend(backend_name)
        ref = numpy_backend()
        a, b = _operands(batch, m, n, k, seed)
        a_planar, b_planar = np.asarray(to_planar(a)), np.asarray(to_planar(b))
        got = be.to_numpy(complex_mma_tf32_batched(a_planar, b_planar, backend=be))
        want = np.asarray(complex_mma_tf32_batched(a_planar, b_planar, backend=ref))
        tol = parity_tolerance(Precision.TF32)
        scale = max(1.0, float(np.max(np.abs(want))))
        np.testing.assert_allclose(
            got / scale, want / scale, rtol=tol.rtol, atol=tol.atol
        )


class TestEndToEnd:
    @pytest.mark.parametrize("precision", [Precision.FLOAT16, Precision.INT1])
    def test_gemm_entry_point_matches_numpy(self, backend_name, precision):
        be = get_backend(backend_name)
        device = Device("A100")
        a, b = _operands(2, 8, 6, 33, seed=42)
        got_res = gemm_once(device, precision, a, b, backend=be)
        want_res = gemm_once(Device("A100"), precision, a, b)
        got = be.to_numpy(got_res.output)
        want = np.asarray(want_res.output)
        tol = parity_tolerance(precision)
        if tol.exact:
            assert np.array_equal(got, want)
        else:
            scale = max(1.0, float(np.max(np.abs(want))))
            np.testing.assert_allclose(
                got / scale, want / scale, rtol=tol.rtol, atol=tol.atol
            )
