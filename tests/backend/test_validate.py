"""The cross-backend validation harness and its CLI."""

from __future__ import annotations

import numpy as np
import pytest

from repro.backend import available_backends, numpy_backend
from repro.backend.validate import (
    CaseResult,
    ValidationReport,
    _compare,
    main,
    validate_all,
    validate_backend,
)


class TestValidateNumpy:
    def test_reference_backend_passes_everything(self):
        report = validate_backend("numpy")
        assert report.ok, report.summary()
        assert report.backend == "numpy"
        assert report.version == np.__version__
        assert not report.failures
        # every shape contributes its full case family
        cases = {c.case.split("/")[0] for c in report.cases}
        assert {
            "conformance", "pack", "unpack", "transpose",
            "int1-gemm", "f16-gemm", "tf32-gemm", "pack-bits", "unpack-bits", "rms",
        } <= cases

    def test_quick_mode_runs_fewer_shapes(self):
        quick = validate_backend("numpy", quick=True)
        full = validate_backend("numpy", quick=False)
        assert quick.ok
        assert len(quick.cases) < len(full.cases)

    def test_validate_all_covers_available(self):
        reports = validate_all(quick=True)
        assert set(reports) == set(available_backends())
        assert all(r.ok for r in reports.values())

    def test_backend_instances_accepted(self):
        assert validate_backend(numpy_backend(), quick=True).ok


class TestCompare:
    def test_exact_mismatch_reports_error_magnitude(self):
        got = np.array([1, 2, 4])
        want = np.array([1, 2, 3])
        result = _compare("c", got, want, 0.0, 0.0)
        assert not result.passed
        assert result.max_abs_err == 1.0
        assert "exact" in result.detail

    def test_shape_mismatch_is_a_failure(self):
        result = _compare("c", np.zeros(3), np.zeros(4), 1e-3, 1e-3)
        assert not result.passed and "shape" in result.detail

    def test_tolerance_pass_records_error(self):
        result = _compare("c", np.array([1.0001]), np.array([1.0]), 1e-3, 1e-3)
        assert result.passed and result.max_abs_err > 0


class TestReport:
    def test_summary_marks_failures(self):
        report = ValidationReport(backend="x", version="1")
        report.cases.append(CaseResult("good", True))
        report.cases.append(CaseResult("bad", False, max_abs_err=2.5, detail="boom"))
        text = report.summary()
        assert "[FAIL]" in text and "boom" in text and "1/2" in text
        assert not report.ok and len(report.failures) == 1


class TestCli:
    def test_default_run_passes(self, capsys):
        assert main(["--quick"]) == 0
        assert "[PASS] backend numpy" in capsys.readouterr().out

    def test_unknown_backend_exits_nonzero(self, capsys):
        assert main(["definitely-not-a-backend"]) == 1
        out = capsys.readouterr().out
        assert "[SKIP]" in out and "numpy" in out

    @pytest.mark.parametrize("name", list(available_backends()))
    def test_each_available_backend_passes(self, name):
        assert validate_backend(name, quick=True).ok
