"""Backend registry, protocol defaults, and the NumPy reference backend."""

from __future__ import annotations

import numpy as np
import pytest

from repro.backend import (
    ArrayBackend,
    NumpyBackend,
    available_backends,
    backend_versions,
    get_backend,
    numpy_backend,
    register_backend,
)
from repro.backend.conformance import check_backend, require_conformant
from repro.errors import BackendError


class TestRegistry:
    def test_numpy_always_available_and_first(self):
        names = available_backends()
        assert names[0] == "numpy"

    def test_get_backend_none_is_numpy_reference(self):
        assert get_backend(None) is numpy_backend()
        assert get_backend("numpy") is numpy_backend()

    def test_get_backend_passes_instances_through(self):
        be = numpy_backend()
        assert get_backend(be) is be

    def test_unknown_backend_lists_available(self):
        with pytest.raises(BackendError, match="available: numpy"):
            get_backend("tensorflow")

    def test_known_but_absent_backend_is_a_clean_error(self):
        # cupy is registered but (in CI) not importable: either outcome is a
        # BackendError naming the available set, never an ImportError.
        if "cupy" in available_backends():
            pytest.skip("cupy importable here; absence path not reachable")
        with pytest.raises(BackendError, match="not available"):
            get_backend("cupy")

    def test_versions_cover_exactly_the_available_set(self):
        versions = backend_versions()
        assert set(versions) == set(available_backends())
        assert all(isinstance(v, str) and v for v in versions.values())

    def test_register_backend_and_overwrite_rules(self):
        class _Fake(NumpyBackend):
            name = "fake-be"

        try:
            register_backend("fake-be", _Fake)
            assert "fake-be" in available_backends()
            assert isinstance(get_backend("fake-be"), _Fake)
            with pytest.raises(BackendError, match="already registered"):
                register_backend("fake-be", _Fake)
            register_backend("fake-be", _Fake, overwrite=True)
        finally:
            from repro import backend as _pkg

            _pkg._FACTORIES.pop("fake-be", None)
            _pkg._INSTANCES.pop("fake-be", None)

    def test_numpy_reference_cannot_be_replaced(self):
        with pytest.raises(BackendError, match="cannot be replaced"):
            register_backend("numpy", NumpyBackend)

    def test_failing_factory_reported_not_raised(self):
        def _broken() -> ArrayBackend:
            raise BackendError("deliberately unusable")

        try:
            register_backend("broken-be", _broken)
            assert "broken-be" not in available_backends()
            with pytest.raises(BackendError, match="deliberately unusable"):
                get_backend("broken-be")
        finally:
            from repro import backend as _pkg

            _pkg._FACTORIES.pop("broken-be", None)
            _pkg._PROBE_FAILURES.pop("broken-be", None)


class TestNumpyBackend:
    def test_conformant(self):
        require_conformant(numpy_backend())

    def test_roundtrip_is_zero_copy_for_ndarrays(self):
        be = numpy_backend()
        host = np.arange(4, dtype=np.float32)
        assert be.asarray(host) is host  # np.asarray no-op
        assert np.shares_memory(be.astype(host, np.float32), host)

    def test_popcount_matches_swar_default(self):
        # The reference delegates to util.bits; the protocol default is the
        # SWAR reduction — both must agree everywhere.
        from repro.backend import _popcount_swar

        rng = np.random.default_rng(3)
        words = rng.integers(0, 2**32, size=257, dtype=np.uint32)
        be = numpy_backend()
        assert np.array_equal(be.popcount(words), _popcount_swar(words, np))

    def test_bitcast_is_a_view(self):
        be = numpy_backend()
        f = np.array([1.5, -0.0], dtype=np.float32)
        bits = be.bitcast(f, np.uint32)
        assert bits.dtype == np.uint32
        assert np.shares_memory(bits, f)
        assert np.array_equal(be.bitcast(bits, np.float32), f)

    def test_synchronize_is_a_noop(self):
        assert numpy_backend().synchronize() is None

    def test_identity_strings(self):
        be = numpy_backend()
        assert be.name == "numpy"
        assert be.version == np.__version__
        assert be.device_kind == "cpu"
        assert be.device_of(np.zeros(1)) == "cpu"
        assert be.dtype_of(np.zeros(1, dtype=np.complex64)) == np.complex64


class TestConformance:
    def test_broken_backend_is_caught(self):
        class _Broken(NumpyBackend):
            name = "broken"

            def popcount(self, words):
                return super().popcount(words) + 1  # off-by-one everywhere

        problems = check_backend(_Broken())
        assert any("popcount" in p for p in problems)
        with pytest.raises(BackendError, match="violates the ArrayBackend protocol"):
            require_conformant(_Broken())

    def test_bad_identity_is_caught(self):
        class _NoVersion(NumpyBackend):
            name = "noversion"

            @property
            def version(self):
                return ""

        assert any("version" in p for p in check_backend(_NoVersion()))

    def test_wrong_matmul_is_caught(self):
        class _Scaled(NumpyBackend):
            name = "scaled"

            def matmul(self, a, b):
                return 2.0 * np.matmul(a, b)

        assert any("matmul" in p for p in check_backend(_Scaled()))
