"""Report writer: CSV round-trips and file layout."""

from __future__ import annotations

import csv
import io

from repro.bench.report import ExperimentResult


def _result() -> ExperimentResult:
    return ExperimentResult(
        name="demo",
        title="Demo experiment",
        text="body text",
        tables={
            "series": (["x", "y"], [[1, 2.5], [2, 3.5]]),
            "other": (["a"], [["v"]]),
        },
        findings=["finding one"],
    )


class TestWrite:
    def test_files_created(self, tmp_path):
        written = _result().write(tmp_path)
        names = {p.name for p in written}
        assert names == {"demo.txt", "demo_series.csv", "demo_other.csv"}

    def test_csv_parses_back(self, tmp_path):
        _result().write(tmp_path)
        with open(tmp_path / "demo_series.csv") as fh:
            rows = list(csv.reader(fh))
        assert rows[0] == ["x", "y"]
        assert [float(v) for v in rows[1]] == [1.0, 2.5]

    def test_report_contains_title_and_findings(self, tmp_path):
        _result().write(tmp_path)
        text = (tmp_path / "demo.txt").read_text()
        assert "Demo experiment" in text
        assert "finding one" in text

    def test_nested_outdir_created(self, tmp_path):
        out = tmp_path / "a" / "b"
        _result().write(out)
        assert (out / "demo.txt").exists()


class TestRealExperimentCsv:
    def test_fig7_series_parse(self, tmp_path):
        from repro.bench.fig7 import run

        result = run(quick=True)
        result.write(tmp_path)
        with open(tmp_path / "fig7_tcbf_A100.csv") as fh:
            rows = list(csv.reader(fh))
        header, data = rows[0], rows[1:]
        assert header == ["receivers", "tflops", "tflops_per_joule", "bound"]
        ks = [int(r[0]) for r in data]
        tflops = [float(r[1]) for r in data]
        assert ks == sorted(ks)
        assert max(tflops) > 100  # A100 reaches >100 TFLOPs/s at 512 rcv
