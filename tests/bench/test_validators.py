"""The CI validator scripts: trace alert lifecycle, counter signs, dashboard.

The validators live in ``scripts/`` (loaded here by file path) and gate
artifacts CI produces on every run; these tests pin their judgement on
synthetic inputs — well-formed sequences pass, each class of corruption
is named in a problem string.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

SCRIPTS_DIR = Path(__file__).parent.parent.parent / "scripts"


def _load(name: str):
    spec = importlib.util.spec_from_file_location(name, SCRIPTS_DIR / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _trace(tmp_path, events: list[dict]) -> str:
    path = tmp_path / "trace.json"
    path.write_text(json.dumps({"traceEvents": events}))
    return str(path)


def _alert(ts: float, aid: str, state: str) -> dict:
    return {
        "ph": "i",
        "name": "alert",
        "pid": 3,
        "tid": 0,
        "ts": ts,
        "s": "t",
        "args": {"id": aid, "scope": "svc", "rule": "burn", "state": state},
    }


def _counter(ts: float, **series) -> dict:
    return {"ph": "C", "name": "c", "pid": 3, "tid": 0, "ts": ts, "args": series}


class TestTraceAlerts:
    def test_full_lifecycle_passes(self, tmp_path):
        validate = _load("validate_trace")
        events = [
            _alert(1.0, "a#1", "pending"),
            _alert(1.0, "a#1", "firing"),
            _alert(2.0, "a#1", "resolved"),
            _alert(3.0, "b#1", "pending"),
            _alert(4.0, "b#1", "cancelled"),
        ]
        assert validate.check(_trace(tmp_path, events)) == []

    def test_firing_without_pending_fails(self, tmp_path):
        validate = _load("validate_trace")
        problems = validate.check(_trace(tmp_path, [_alert(1.0, "a#1", "firing")]))
        assert any("without 'pending'" in p for p in problems)

    def test_resolved_before_firing_fails(self, tmp_path):
        validate = _load("validate_trace")
        events = [_alert(1.0, "a#1", "pending"), _alert(2.0, "a#1", "resolved")]
        problems = validate.check(_trace(tmp_path, events))
        assert any("resolves without 'firing'" in p for p in problems)

    def test_cancel_after_firing_fails(self, tmp_path):
        validate = _load("validate_trace")
        events = [
            _alert(1.0, "a#1", "pending"),
            _alert(1.0, "a#1", "firing"),
            _alert(2.0, "a#1", "cancelled"),
        ]
        problems = validate.check(_trace(tmp_path, events))
        assert any("after firing" in p for p in problems)

    def test_states_after_terminal_fail(self, tmp_path):
        validate = _load("validate_trace")
        events = [
            _alert(1.0, "a#1", "pending"),
            _alert(1.0, "a#1", "firing"),
            _alert(2.0, "a#1", "resolved"),
            _alert(3.0, "a#1", "firing"),
        ]
        problems = validate.check(_trace(tmp_path, events))
        assert any("after 'resolved'" in p for p in problems)

    def test_repeated_state_fails(self, tmp_path):
        validate = _load("validate_trace")
        events = [
            _alert(1.0, "a#1", "pending"),
            _alert(1.0, "a#1", "firing"),
            _alert(2.0, "a#1", "firing"),
        ]
        problems = validate.check(_trace(tmp_path, events))
        assert any("repeats state" in p for p in problems)

    def test_missing_args_and_unknown_state_fail(self, tmp_path):
        validate = _load("validate_trace")
        bare = _alert(1.0, "a#1", "pending")
        del bare["args"]["rule"]
        weird = _alert(2.0, "b#1", "exploded")
        problems = validate.check(_trace(tmp_path, [bare, weird]))
        assert any("missing args" in p for p in problems)
        assert any("unknown alert state" in p for p in problems)


class TestTraceCounters:
    def test_non_negative_counters_pass(self, tmp_path):
        validate = _load("validate_trace")
        assert validate.check(_trace(tmp_path, [_counter(1.0, depth=3)])) == []

    def test_negative_counter_fails(self, tmp_path):
        validate = _load("validate_trace")
        problems = validate.check(_trace(tmp_path, [_counter(1.0, depth=-1)]))
        assert any("non-negative" in p for p in problems)


class TestDashboardValidator:
    def test_minimal_valid_page_passes(self, tmp_path):
        validate = _load("validate_dashboard")
        sections = "".join(
            f'<div id="{s}"><svg width="1" height="1"></svg></div>'
            for s in validate.REQUIRED_SECTIONS
        )
        series = " ".join(validate.REQUIRED_SERIES)
        page = (
            "<!doctype html>\n<html><head><title>d</title></head>"
            f"<body>{sections}<p>{series}</p></body></html>"
        )
        path = tmp_path / "dash.html"
        path.write_text(page)
        assert validate.check(str(path)) == []

    def test_unbalanced_tags_fail(self, tmp_path):
        validate = _load("validate_dashboard")
        path = tmp_path / "dash.html"
        path.write_text("<!doctype html><html><head><title>d</title></head><body><div></span>")
        problems = validate.check(str(path))
        assert any("misnested" in p or "unclosed" in p for p in problems)


class TestBenchSmokeBackends:
    """The report's top-level ``backends`` block is gated by bench_smoke."""

    def test_matching_block_passes(self):
        from repro.backend import backend_versions

        smoke = _load("bench_smoke")
        assert smoke.check_backends_block({"backends": backend_versions()}) == []

    def test_missing_block_fails(self):
        smoke = _load("bench_smoke")
        problems = smoke.check_backends_block({})
        assert problems == ["missing or empty top-level 'backends' block"]

    def test_numpy_omission_and_empty_version_fail(self):
        smoke = _load("bench_smoke")
        problems = smoke.check_backends_block({"backends": {"jax": ""}})
        assert any("numpy" in p for p in problems)
        assert any("version" in p for p in problems)

    def test_stale_block_fails(self):
        from repro.backend import backend_versions

        smoke = _load("bench_smoke")
        block = dict(backend_versions())
        block["imaginary"] = "9.9"
        problems = smoke.check_backends_block({"backends": block})
        assert any("this host detects" in p for p in problems)
