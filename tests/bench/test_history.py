"""Bench-history regression tracking: summarize, append, check, CLI."""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

from repro.bench.history import (
    SPECS,
    MetricSpec,
    append_history,
    check,
    load_history,
    summarize,
)
from repro.errors import ShapeError

SCRIPTS_DIR = Path(__file__).parent.parent.parent / "scripts"


def _load_cli():
    spec = importlib.util.spec_from_file_location(
        "bench_history", SCRIPTS_DIR / "bench_history.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _payload(thr: float = 100_000.0, p99: float = 0.5) -> dict:
    """A minimal --output report covering the two 'serve' specs."""
    return {
        "experiments": [
            {
                "name": "serve",
                "tables": {
                    "headline": {
                        "headers": ["config", "thr (req/s)", "p99 (ms)"],
                        "rows": [
                            ["naive (max_batch=1)", 10_000, 5.0],
                            ["batched (max_batch=32)", thr, p99],
                        ],
                    }
                },
            }
        ]
    }


class TestSpecs:
    def test_tracked_specs_cover_all_serving_experiments(self):
        assert {s.experiment for s in SPECS} == {
            "serve",
            "serve-priority",
            "serve-hetero",
            "serve-autoscale",
            "serve-resilience",
            "serve-pipeline",
            "backend-micro",
        }
        assert len({s.name for s in SPECS}) == len(SPECS)

    def test_micro_throughput_specs_are_wide_gates(self):
        # Wall-clock metrics on shared CI hosts are noisy: the gate exists
        # to catch a de-vectorization cliff, so the tolerance must be wide.
        micro = [s for s in SPECS if s.experiment == "backend-micro"]
        assert {s.name for s in micro} == {
            "backend_micro.numpy_pack_gbps",
            "backend_micro.numpy_transpose_gbps",
        }
        assert all(s.higher_is_better and s.rel_tol >= 0.5 for s in micro)

    def test_spec_rejects_negative_tolerances(self):
        with pytest.raises(ShapeError):
            MetricSpec("e", "t", "r", "c", "n", higher_is_better=True, rel_tol=-0.1)


class TestSummarize:
    def test_pulls_metrics_by_coordinates(self):
        row = summarize(_payload(thr=123_456.0, p99=0.75), label="x", quick=True)
        assert row["label"] == "x"
        assert row["quick"] is True
        assert row["metrics"]["serve.batched_thr_rps"] == 123_456.0
        assert row["metrics"]["serve.batched_p99_ms"] == 0.75

    def test_missing_experiments_are_skipped_not_errors(self):
        row = summarize(_payload())
        assert "serve_autoscale.reactive_completed" not in row["metrics"]

    def test_malformed_report_raises(self):
        with pytest.raises(ShapeError):
            summarize({"not": "a report"})
        broken = _payload()
        broken["experiments"][0]["tables"]["headline"]["rows"] = [["other", 1, 2]]
        with pytest.raises(ShapeError, match="no row"):
            summarize(broken)

    def test_report_with_no_tracked_experiments_raises(self):
        with pytest.raises(ShapeError, match="none of the tracked"):
            summarize({"experiments": [{"name": "fig5", "tables": {}}]})


class TestCheck:
    def test_two_identical_rows_pass(self):
        rows = [summarize(_payload(), quick=True) for _ in range(2)]
        assert check(rows) == []

    def test_throughput_regression_fails(self):
        rows = [
            summarize(_payload(thr=100_000.0), quick=True),
            summarize(_payload(thr=100_000.0), quick=True),
            summarize(_payload(thr=80_000.0), quick=True),  # -20%
        ]
        problems = check(rows)
        assert len(problems) == 1
        assert "serve.batched_thr_rps" in problems[0]

    def test_latency_rise_fails_and_improvement_passes(self):
        base = summarize(_payload(p99=1.0), quick=True)
        assert check([base, summarize(_payload(p99=1.3), quick=True)]) != []
        assert check([base, summarize(_payload(p99=0.5), quick=True)]) == []

    def test_tolerance_absorbs_small_moves(self):
        rows = [
            summarize(_payload(thr=100_000.0), quick=True),
            summarize(_payload(thr=96_000.0), quick=True),  # -4% < 5% tol
        ]
        assert check(rows) == []

    def test_quick_and_full_rows_never_compare(self):
        rows = [
            summarize(_payload(thr=100_000.0), quick=False),
            summarize(_payload(thr=50_000.0), quick=True),  # no quick prior
        ]
        assert check(rows) == []

    def test_window_bounds_the_baseline(self):
        rows = [summarize(_payload(thr=200_000.0), quick=True)] + [
            summarize(_payload(thr=100_000.0), quick=True) for _ in range(6)
        ]
        # Window 5 excludes the old 200k row: the newest 100k row passes.
        assert check(rows, window=5) == []
        with pytest.raises(ShapeError):
            check(rows, window=0)

    def test_empty_history_is_a_problem(self):
        assert check([]) != []

    def test_new_bench_first_row_skips_not_raises(self):
        # Regression: the first row carrying a newly registered bench's
        # metric has no comparable prior with that metric — it must pass
        # vacuously (nothing to drift from), never raise or flag.
        old = summarize(_payload(), quick=True)
        new = summarize(_payload(), quick=True)
        new["metrics"]["serve_resilience.resilient_availability_pct"] = 99.95
        new["metrics"]["serve_resilience.resilient_p99_ms"] = 1.25
        assert check([old, new]) == []

    def test_null_metrics_rows_skip_not_raise(self):
        # Regression: a row with ``"metrics": null`` (partial or
        # hand-edited append) used to raise — AttributeError when newest,
        # TypeError when a prior — instead of reading as "tracks nothing".
        good = summarize(_payload(), quick=True)
        null_row = {"label": "partial", "quick": True, "metrics": None}
        assert check([good, null_row]) == []
        assert check([null_row, good]) == []
        assert check([good, null_row, good]) == []


class TestFileRoundTrip:
    def test_append_and_load(self, tmp_path):
        path = tmp_path / "history.jsonl"
        assert load_history(path) == []
        row = summarize(_payload(), label="a", quick=True)
        append_history(path, row)
        append_history(path, row)
        assert load_history(path) == [row, row]

    def test_corrupt_rows_raise(self, tmp_path):
        path = tmp_path / "history.jsonl"
        path.write_text("{not json}\n")
        with pytest.raises(ShapeError):
            load_history(path)


class TestCli:
    def test_two_consecutive_appends_pass_check(self, tmp_path):
        cli = _load_cli()
        report = tmp_path / "report.json"
        report.write_text(json.dumps(_payload()))
        history = tmp_path / "history.jsonl"
        argv = ["--history", str(history), "--append", str(report), "--quick", "--check"]
        assert cli.main(argv) == 0
        assert cli.main(argv) == 0

    def test_injected_regression_fails_nonzero(self, tmp_path):
        cli = _load_cli()
        good = tmp_path / "good.json"
        good.write_text(json.dumps(_payload(thr=100_000.0)))
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps(_payload(thr=80_000.0)))  # -20% throughput
        history = tmp_path / "history.jsonl"
        base = ["--history", str(history), "--quick", "--check"]
        assert cli.main(base + ["--append", str(good)]) == 0
        assert cli.main(base + ["--append", str(bad)]) == 1

    def test_unreadable_report_exits_two(self, tmp_path):
        cli = _load_cli()
        history = tmp_path / "history.jsonl"
        code = cli.main(
            ["--history", str(history), "--append", str(tmp_path / "missing.json")]
        )
        assert code == 2

    def test_checked_in_history_passes_the_gate(self):
        rows = load_history(SCRIPTS_DIR.parent / "benchmarks" / "history.jsonl")
        assert len(rows) >= 2
        assert check(rows) == []
