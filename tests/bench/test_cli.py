"""Benchmark CLI."""

from __future__ import annotations

import pytest

from repro.bench.__main__ import main


class TestCli:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out and "fig7" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_single_experiment_writes_output(self, tmp_path, capsys):
        assert main(["table1", "--outdir", str(tmp_path)]) == 0
        assert (tmp_path / "table1.txt").exists()
        assert "Table I" in capsys.readouterr().out
