"""Benchmark CLI."""

from __future__ import annotations

import pytest

from repro.bench.__main__ import main


class TestCli:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out and "fig7" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_single_experiment_writes_output(self, tmp_path, capsys):
        assert main(["table1", "--outdir", str(tmp_path)]) == 0
        assert (tmp_path / "table1.txt").exists()
        assert "Table I" in capsys.readouterr().out


class TestCliPolish:
    def test_list_includes_one_line_descriptions(self, capsys):
        from repro.bench.registry import EXPERIMENTS, describe

        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        lines = [line for line in out.splitlines() if line.strip()]
        assert len(lines) == len(EXPERIMENTS)
        # Every line pairs the name with its module's one-line summary.
        assert any("serve-hetero" in line and "heterogeneous" in line.lower()
                   for line in lines)
        for name in EXPERIMENTS:
            assert describe(name)  # no experiment is undocumented

    def test_unknown_experiment_exits_nonzero(self):
        import pytest

        with pytest.raises(SystemExit) as excinfo:
            main(["no-such-experiment"])
        assert excinfo.value.code != 0

    def test_output_writes_json_report(self, tmp_path, capsys):
        import json

        out_json = tmp_path / "report.json"
        assert main(["table1", "--outdir", str(tmp_path), "--output", str(out_json)]) == 0
        payload = json.loads(out_json.read_text())
        [experiment] = payload["experiments"]
        assert experiment["name"] == "table1"
        assert experiment["findings"]
        assert "microbench" in experiment["tables"]
        table = experiment["tables"]["microbench"]
        assert table["headers"] and table["rows"]
        # The human-readable files still land in --outdir alongside.
        assert (tmp_path / "table1.txt").exists()


class TestCliBackend:
    def test_backend_numpy_accepted(self, tmp_path, capsys):
        assert main(
            ["backend-micro", "--quick", "--backend", "numpy", "--outdir", str(tmp_path)]
        ) == 0
        assert "numpy/pack" in capsys.readouterr().out

    def test_unavailable_backend_exits_nonzero_listing_available(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["backend-micro", "--backend", "not-a-backend"])
        assert excinfo.value.code != 0
        assert "available: numpy" in capsys.readouterr().err

    def test_backend_on_unsupporting_experiment_exits_nonzero(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["table1", "--backend", "numpy"])
        assert excinfo.value.code != 0
        assert "backend-aware" in capsys.readouterr().err

    def test_output_report_carries_backends_block(self, tmp_path):
        import json

        from repro.backend import backend_versions

        out_json = tmp_path / "report.json"
        assert main(
            ["backend-micro", "--quick", "--outdir", str(tmp_path), "--output", str(out_json)]
        ) == 0
        payload = json.loads(out_json.read_text())
        assert payload["backends"] == backend_versions()
