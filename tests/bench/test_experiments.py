"""Benchmark harness: every experiment runs and reproduces its findings."""

from __future__ import annotations

import pytest

from repro.bench.registry import EXPERIMENTS, run_all, run_experiment
from repro.bench.report import ExperimentResult
from repro.errors import ReproError

# Session-scoped cache: experiments are deterministic, run each once.
_RESULTS: dict[str, ExperimentResult] = {}


def _get(name: str) -> ExperimentResult:
    if name not in _RESULTS:
        _RESULTS[name] = run_experiment(name, quick=True)
    return _RESULTS[name]


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        assert {"table1", "fig2", "table3", "fig3", "fig4", "fig5", "fig6", "fig7"} <= set(
            EXPERIMENTS
        )

    def test_unknown_experiment(self):
        with pytest.raises(ReproError, match="unknown experiment"):
            run_experiment("fig99")


@pytest.mark.parametrize("name", list(EXPERIMENTS))
def test_experiment_runs_and_reports(name):
    result = _get(name)
    assert result.name == name
    assert result.text.strip()
    assert result.findings
    assert result.tables


class TestTable1Findings:
    def test_all_cells_reproduced(self):
        result = _get("table1")
        headers, rows = result.tables["microbench"]
        ratios = [r[-1] for r in rows if r[-1] != "-"]
        assert len(ratios) == 19
        assert all(0.89 <= r <= 1.11 for r in ratios)


class TestTable3Findings:
    def test_model_matches_published(self):
        result = _get("table3")
        headers, rows = result.tables["table3"]
        for row in rows:
            paper_tops, model_tops = row[2], row[3]
            assert abs(model_tops / paper_tops - 1) < 0.02
            assert row[4] >= model_tops - 0.1  # tuner at least as good


class TestFig3Findings:
    def test_small_sizes_memory_bound(self):
        result = _get("fig3")
        headers, rows = result.tables["roofline"]
        small = [r for r in rows if r[2] == "small"]
        assert all(r[7] == "memory" for r in small)

    def test_big_sizes_compute_bound(self):
        result = _get("fig3")
        headers, rows = result.tables["roofline"]
        big = [r for r in rows if r[2] == "big"]
        assert all(r[7] == "compute" for r in big)


class TestFig5Findings:
    def test_summary_matches_paper_structure(self):
        result = _get("fig5")
        headers, rows = result.tables["summary"]
        by_gpu = {r[0]: r for r in rows}
        assert by_gpu["GH200"][1] > 1000  # three planes real-time
        assert by_gpu["GH200"][2] < 1000  # full volume not real-time
        assert 0.75 <= by_gpu["GH200"][3] <= 0.95


class TestFig7Findings:
    def test_headline_ratios(self):
        result = _get("fig7")
        headers, rows = result.tables["summary"]
        by_name = {r[0]: r[1] for r in rows}
        assert 10 <= by_name["A100 TCBF/reference speedup @512 rcv"] <= 25
        assert by_name["A100 TCBF/reference speedup @8 rcv"] <= 2.0
        assert 1.2 <= by_name["MI300X / GH200 @512 rcv"] <= 1.8


class TestOutput:
    def test_write_creates_files(self, tmp_path):
        result = _get("table1")
        written = result.write(tmp_path)
        assert (tmp_path / "table1.txt").exists()
        assert any(p.suffix == ".csv" for p in written)

    def test_full_text_includes_findings(self):
        result = _get("table1")
        assert "Findings vs paper" in result.full_text()


class TestBackendMicroFindings:
    def test_vectorized_pack_beats_pinned_floor(self):
        from repro.bench.backend_micro import MIN_PACK_SPEEDUP

        result = _get("backend-micro")
        headers, rows = result.tables["speedup"]
        by_label = {row[0]: row for row in rows}
        speedup = by_label["pack vectorized"][headers.index("speedup")]
        assert speedup >= MIN_PACK_SPEEDUP
        assert any("PASS" in f and "bit-identical" in f for f in result.findings)

    def test_backends_table_covers_detected_set(self):
        from repro.backend import available_backends

        result = _get("backend-micro")
        _, rows = result.tables["backends"]
        assert {row[0] for row in rows} == set(available_backends())

    def test_micro_table_has_all_numpy_paths(self):
        result = _get("backend-micro")
        _, rows = result.tables["micro"]
        labels = {row[0] for row in rows}
        assert {"numpy/pack", "numpy/transpose", "numpy/gemm-f16", "numpy/gemm-int1"} <= labels
