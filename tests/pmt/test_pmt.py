"""Power Measurement Toolkit reproduction."""

from __future__ import annotations

import pytest

from repro.errors import PowerError
from repro.gpusim.device import Device
from repro.gpusim.timing import Bound, KernelCost
from repro.pmt.meter import PowerMeter
from repro.pmt.sensor import NVMLSensor, ROCmSMISensor, create_sensor


def _cost(t: float, power: float) -> KernelCost:
    return KernelCost(
        name="k", time_s=t, useful_ops=1e12 * t, issued_ops=1e12 * t, dram_bytes=0,
        smem_bytes=0, bound=Bound.COMPUTE, power_w=power, energy_j=power * t,
    )


class TestSensorFactory:
    def test_nvidia_gets_nvml(self):
        assert isinstance(create_sensor(Device("A100")), NVMLSensor)
        assert create_sensor(Device("GH200")).backend_name == "nvml"

    def test_amd_gets_rocm_smi(self):
        assert isinstance(create_sensor(Device("MI300X")), ROCmSMISensor)
        assert create_sensor(Device("W7700")).backend_name == "rocm-smi"


class TestSensor:
    def test_sample_idle(self):
        dev = Device("A100")
        reading = create_sensor(dev).sample()
        assert reading.watts == dev.power.idle_w

    def test_sample_during_kernel(self):
        dev = Device("A100")
        dev.record_kernel(_cost(1e-3, 250.0))
        assert create_sensor(dev).sample(0.5e-3).watts == 250.0

    def test_integrate_exact(self):
        dev = Device("A100")
        dev.record_kernel(_cost(2e-3, 200.0))
        dev.record_kernel(_cost(1e-3, 100.0))
        sensor = create_sensor(dev)
        # kernels: 0.4 J + 0.1 J
        assert sensor.integrate_energy(0.0, 3e-3) == pytest.approx(0.5)

    def test_integrate_partial_kernel(self):
        dev = Device("A100")
        dev.record_kernel(_cost(2e-3, 200.0))
        sensor = create_sensor(dev)
        assert sensor.integrate_energy(0.5e-3, 1.5e-3) == pytest.approx(0.2)

    def test_integrate_includes_idle_gap(self):
        dev = Device("A100")
        dev.record_kernel(_cost(1e-3, 200.0))
        sensor = create_sensor(dev)
        # 1 ms kernel + 1 ms idle
        expected = 0.2 + dev.power.idle_w * 1e-3
        assert sensor.integrate_energy(0.0, 2e-3) == pytest.approx(expected)

    def test_reversed_interval(self):
        sensor = create_sensor(Device("A100"))
        with pytest.raises(PowerError):
            sensor.integrate_energy(1.0, 0.0)


class TestMeter:
    def test_read_delta(self):
        dev = Device("GH200")
        meter = PowerMeter(dev)
        begin = meter.read()
        dev.record_kernel(_cost(4e-3, 500.0))
        end = meter.read()
        assert PowerMeter.seconds(begin, end) == pytest.approx(4e-3)
        assert PowerMeter.joules(begin, end) == pytest.approx(2.0)
        assert PowerMeter.watts(begin, end) == pytest.approx(500.0)

    def test_ops_per_joule_paper_metric(self):
        dev = Device("A100")
        meter = PowerMeter(dev)
        begin = meter.read()
        dev.record_kernel(_cost(1e-3, 216.0))
        end = meter.read()
        # 1e9 useful ops over 0.216 J
        assert PowerMeter.ops_per_joule(1e9, begin, end) == pytest.approx(1e9 / 0.216)

    def test_errors(self):
        dev = Device("A100")
        meter = PowerMeter(dev)
        s = meter.read()
        with pytest.raises(PowerError):
            PowerMeter.watts(s, s)
        with pytest.raises(PowerError):
            PowerMeter.ops_per_joule(1.0, s, s)

    def test_matches_device_energy_accounting(self):
        # The meter must agree with the sum of kernel energies.
        dev = Device("MI300X")
        meter = PowerMeter(dev)
        begin = meter.read()
        for t, p in [(1e-3, 600.0), (2e-3, 300.0), (5e-4, 150.0)]:
            dev.record_kernel(_cost(t, p))
        end = meter.read()
        assert PowerMeter.joules(begin, end) == pytest.approx(dev.total_energy_j())
