"""Roofline model (paper Fig 3 machinery)."""

from __future__ import annotations

import pytest

from repro.ccglib.perfmodel import GemmProblem, model_gemm
from repro.ccglib.precision import Precision
from repro.ccglib.tuning import published_tuning
from repro.gpusim.specs import get_spec
from repro.roofline.model import (
    FIG3_PROBLEMS,
    build_roofline,
    is_memory_bound,
    place_point,
)


class TestCeilings:
    def test_fp16_ceiling_is_measured_not_theoretical(self):
        roof = build_roofline(get_spec("GH200"))
        # measured GH200 fp16 = ~646 TOPs/s (0.65 WMMA factor), not 990.
        assert roof.peaks_ops["float16 tensor"] == pytest.approx(646e12, rel=0.02)

    def test_int1_ceiling_halved_for_and_mode(self):
        roof = build_roofline(get_spec("GH200"))
        # Hopper uses AND: useful ceiling is half the instruction rate.
        assert roof.peaks_ops["int1 tensor"] == pytest.approx(10276e12 / 2, rel=0.02)

    def test_int1_ceiling_absent_on_amd(self):
        roof = build_roofline(get_spec("MI300X"))
        assert "int1 tensor" not in roof.peaks_ops
        assert "float32" in roof.peaks_ops

    def test_attainable_is_min_of_slope_and_peak(self):
        roof = build_roofline(get_spec("A100"))
        ridge = roof.ridge_point("float16 tensor")
        low_ai = ridge / 10
        assert roof.attainable("float16 tensor", low_ai) == pytest.approx(
            low_ai * roof.mem_bandwidth_bytes
        )
        assert roof.attainable("float16 tensor", ridge * 10) == roof.peaks_ops["float16 tensor"]

    def test_ridge_point_a100_fp16(self):
        roof = build_roofline(get_spec("A100"))
        # ~308 TOPs / 1.555 TB/s ~ 198 ops/byte.
        assert roof.ridge_point("float16 tensor") == pytest.approx(198, rel=0.05)


class TestPlacement:
    def _point(self, gpu, precision, size):
        spec = get_spec(gpu)
        problem = FIG3_PROBLEMS[(precision, size)]
        params = published_tuning(gpu, precision).params
        cost = model_gemm(spec, precision, problem, params)
        return place_point(spec, precision, problem, cost, size)

    @pytest.mark.parametrize("gpu", ["A100", "GH200", "MI300X"])
    def test_small_fp16_memory_bound(self, gpu):
        assert self._point(gpu, Precision.FLOAT16, "small").memory_bound

    @pytest.mark.parametrize("gpu", ["A100", "GH200"])
    def test_big_fp16_compute_bound(self, gpu):
        assert not self._point(gpu, Precision.FLOAT16, "big").memory_bound

    def test_small_close_to_slope_on_nvidia(self):
        # Paper: "especially the NVIDIA GPUs ... very close to the limit".
        point = self._point("A100", Precision.FLOAT16, "small")
        assert point.fraction_of_roofline > 0.85

    def test_big_between_half_and_peak(self):
        for gpu in ("A100", "GH200"):
            point = self._point(gpu, Precision.FLOAT16, "big")
            assert 0.4 < point.fraction_of_roofline <= 1.0

    def test_achieved_never_exceeds_attainable_meaningfully(self):
        for (precision, size) in FIG3_PROBLEMS:
            point = self._point("A100", precision, size)
            assert point.achieved_ops <= point.attainable_ops * 1.05

    def test_ai_matches_paper_scale(self):
        # fp16 big at 8192^3: AI ~ 4100 ops/byte (paper plots it near 2^12).
        point = self._point("A100", Precision.FLOAT16, "big")
        assert point.arithmetic_intensity == pytest.approx(4096, rel=0.15)
        # fp16 small: ~60 ops/byte (near 2^6).
        small = self._point("A100", Precision.FLOAT16, "small")
        assert small.arithmetic_intensity == pytest.approx(60, rel=0.2)

    def test_is_memory_bound_geometry(self):
        roof = build_roofline(get_spec("A100"))
        ridge = roof.ridge_point("float16 tensor")
        assert is_memory_bound(roof, "float16 tensor", ridge * 0.5)
        assert not is_memory_bound(roof, "float16 tensor", ridge * 2.0)
