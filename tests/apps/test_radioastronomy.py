"""Radio-astronomy substrates: layout, channelizer, sky, station, pulsar."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.radioastronomy import (
    DISPERSION_MS,
    Observation,
    PointSource,
    PolyphaseFilterbank,
    Pulsar,
    StationBeamformer,
    StationConfig,
    beam_grid,
    dedisperse,
    expected_beam_power,
    fft_filterbank,
    fold,
    generate_station_data,
    geometric_delay,
    leakage_db,
    lofar_like_layout,
    profile_snr,
    steering_weights,
)
from repro.errors import ShapeError


class TestLayout:
    def test_station_count(self):
        assert lofar_like_layout(48).n_stations == 48

    def test_core_and_remote_radii(self):
        layout = lofar_like_layout(40, core_radius_m=2000, max_radius_m=80000)
        radii = np.linalg.norm(layout.positions, axis=1)
        assert radii.min() < 2000
        assert radii.max() > 40000

    def test_baselines_symmetric(self):
        layout = lofar_like_layout(10)
        b = layout.baselines()
        assert np.allclose(b, b.T)
        assert np.all(np.diag(b) == 0)

    def test_geometric_delay_zenith_zero(self):
        layout = lofar_like_layout(8)
        assert np.all(geometric_delay(layout.positions, 0.0, 0.0) == 0.0)

    def test_geometric_delay_linear_in_direction(self):
        pos = np.array([[1000.0, 0.0]])
        d1 = geometric_delay(pos, 0.01, 0.0)
        d2 = geometric_delay(pos, 0.02, 0.0)
        assert d2[0] == pytest.approx(2 * d1[0])

    def test_delay_shape_validation(self):
        with pytest.raises(ShapeError):
            geometric_delay(np.zeros((3,)), 0.1, 0.1)


class TestChannelizer:
    def test_tone_lands_in_its_channel(self):
        pfb = PolyphaseFilterbank(16, 8)
        t = np.arange(16 * 64)
        tone = np.exp(2j * np.pi * (5 / 16) * t)
        out = pfb.channelize(tone)
        power = (np.abs(out) ** 2).mean(axis=-1)
        assert power.argmax() == 5

    def test_pfb_beats_fft_filterbank_on_leakage(self):
        # An off-bin tone: the PFB must suppress leakage far better.
        t = np.arange(16 * 128)
        tone = np.exp(2j * np.pi * ((3 + 0.31) / 16) * t)
        pfb_leak = leakage_db(PolyphaseFilterbank(16, 8).channelize(tone), 3)
        fft_leak = leakage_db(fft_filterbank(tone, 16), 3)
        assert pfb_leak < fft_leak - 20.0

    def test_output_shape(self):
        pfb = PolyphaseFilterbank(8, 4)
        out = pfb.channelize(np.zeros((3, 8 * 16), dtype=np.complex64))
        assert out.shape == (3, 8, 16 - 3)

    def test_input_length_validated(self):
        pfb = PolyphaseFilterbank(8, 4)
        with pytest.raises(ShapeError):
            pfb.channelize(np.zeros(12))
        with pytest.raises(ShapeError):
            pfb.channelize(np.zeros(16))  # multiple of 8 but < taps window

    def test_prototype_unit_dc_gain(self):
        h = PolyphaseFilterbank(16, 8).prototype()
        assert h.sum() == pytest.approx(1.0)

    def test_channel_frequencies(self):
        pfb = PolyphaseFilterbank(4, 2)
        freqs = pfb.channel_frequencies(100e6, 4e6)
        assert freqs[0] == pytest.approx(100e6)
        assert len(freqs) == 4


class TestSky:
    def test_station_data_shape(self):
        obs = Observation(layout=lofar_like_layout(6), n_channels=4, n_samples=64)
        data = generate_station_data(obs, [PointSource(l=0.01, m=0.0, flux=1.0)])
        assert data.shape == (4, 6, 64)
        assert data.dtype == np.complex64

    def test_source_raises_power_over_noise(self):
        obs = Observation(layout=lofar_like_layout(6), n_channels=4, n_samples=256, noise_level=0.1)
        quiet = generate_station_data(obs, [])
        loud = generate_station_data(obs, [PointSource(l=0.0, m=0.0, flux=5.0)])
        assert (np.abs(loud) ** 2).mean() > 5 * (np.abs(quiet) ** 2).mean()

    def test_dispersion_delay_formula(self):
        psr = Pulsar(l=0, m=0, dm_pc_cm3=10.0, f_ref_hz=200e6)
        delay = psr.dispersion_delay_s(150e6)
        expected = DISPERSION_MS * 1e-3 * 10.0 * ((0.15) ** -2 - (0.2) ** -2)
        assert delay == pytest.approx(expected)
        assert delay > 0  # lower frequency arrives later

    def test_pulsar_envelope_duty_cycle(self):
        psr = Pulsar(l=0, m=0, period_s=0.1, duty_cycle=0.2, dm_pc_cm3=0.0)
        t = np.linspace(0, 1.0, 10000)
        env = psr.envelope(t, psr.f_ref_hz)
        assert env.mean() == pytest.approx(0.2, abs=0.02)

    def test_expected_beam_power_peaks_on_source(self):
        obs = Observation(layout=lofar_like_layout(16), n_channels=2, n_samples=16)
        src = PointSource(l=0.003, m=-0.002, flux=2.0)
        on = expected_beam_power(obs, src, src.l, src.m)
        off = expected_beam_power(obs, src, src.l + 0.01, src.m)
        assert on == pytest.approx(2.0)
        assert off < on / 5


class TestStationBeamformer:
    def test_gain_toward_pointing(self):
        st = StationBeamformer(StationConfig(n_antennas=16), 150e6, 3.2e6)
        assert st.beam_gain((0.01, 0.0), (0.01, 0.0)) == pytest.approx(1.0)

    def test_off_axis_suppression(self):
        st = StationBeamformer(StationConfig(n_antennas=24), 150e6, 3.2e6)
        # 30 m aperture at 2 m wavelength: beamwidth ~ 0.07 rad.
        assert st.beam_gain((0.0, 0.0), (0.3, 0.0)) < 0.3

    def test_station_beam_recovers_on_axis_source(self):
        cfg = StationConfig(n_antennas=12, n_channels=8, n_taps=4)
        st = StationBeamformer(cfg, 150e6, 3.2e6)
        x = st.simulate_antenna_source(0.05, 0.0, n_samples=8 * 32)
        on = st.form_station_beam(x, 0.05, 0.0)
        off = st.form_station_beam(x, -0.25, 0.1)
        assert (np.abs(on) ** 2).sum() > 3 * (np.abs(off) ** 2).sum()

    def test_antenna_count_checked(self):
        st = StationBeamformer(StationConfig(n_antennas=4), 150e6, 3.2e6)
        with pytest.raises(ShapeError):
            st.form_station_beam(np.zeros((3, 64), dtype=np.complex64), 0, 0)


class TestWeights:
    def test_shape_and_magnitude(self):
        layout = lofar_like_layout(12)
        w = steering_weights(layout, np.array([150e6, 151e6]), beam_grid(9))
        assert w.shape == (2, 9, 12)
        assert np.allclose(np.abs(w), 1.0 / 12, atol=1e-6)

    def test_unnormalized(self):
        layout = lofar_like_layout(5)
        w = steering_weights(layout, np.array([150e6]), beam_grid(4), normalize=False)
        assert np.allclose(np.abs(w), 1.0, atol=1e-6)

    def test_beam_grid_count_and_extent(self):
        dirs = beam_grid(25, fov_radius=0.02)
        assert dirs.shape == (25, 2)
        assert np.abs(dirs).max() <= 0.02 + 1e-12

    def test_direction_validation(self):
        with pytest.raises(ShapeError):
            steering_weights(lofar_like_layout(4), np.array([1e8]), np.zeros((3,)))


class TestPulsarProcessing:
    def test_dedispersion_aligns_channels(self):
        freqs = np.array([140e6, 150e6, 160e6])
        t_sample = 1e-3
        dm = 20.0
        n = 512
        spectrum = np.zeros((3, n))
        # place a pulse in each channel at its dispersed arrival time
        psr = Pulsar(l=0, m=0, dm_pc_cm3=dm, f_ref_hz=160e6)
        for ch, f in enumerate(freqs):
            shift = int(round(psr.dispersion_delay_s(f) / t_sample))
            spectrum[ch, (100 + shift) % n] = 1.0
        fixed = dedisperse(spectrum, dm, freqs, t_sample)
        series = fixed.sum(axis=0)
        assert series.max() == pytest.approx(3.0)
        assert series.argmax() == 100

    def test_fold_recovers_phase(self):
        t_sample = 1e-3
        period = 0.05
        n = 5000
        series = np.zeros(n)
        t = np.arange(n) * t_sample
        series[((t / period) % 1.0) < 0.1] = 1.0
        profile = fold(series, period, t_sample, n_bins=20)
        assert profile[:2].mean() > 5 * profile[10:18].mean()

    def test_profile_snr_flat_is_low(self, rng):
        flat = rng.normal(1.0, 0.1, size=32)
        assert profile_snr(flat) < 5.0

    def test_profile_snr_pulse_is_high(self):
        profile = np.zeros(32)
        profile[3] = 10.0
        assert profile_snr(profile) > 5.0

    def test_validation(self):
        with pytest.raises(ShapeError):
            dedisperse(np.zeros(5), 1.0, np.zeros(5), 1e-3)
        with pytest.raises(ShapeError):
            fold(np.zeros((2, 2)), 0.1, 1e-3)
        with pytest.raises(ShapeError):
            profile_snr(np.zeros(2))
