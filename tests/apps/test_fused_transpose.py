"""Experimental transpose-free pipeline (paper §VI future work)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.ultrasound import (
    ClutterFilter,
    EnsembleConfig,
    ImagingConfig,
    TransducerArray,
    UltrasoundBeamformer,
    VoxelGrid,
    apply_clutter_filter,
    build_model_matrix,
    make_phantom,
    power_doppler,
    simulate_frames,
)
from repro.ccglib.precision import Precision
from repro.gpusim.device import Device, ExecutionMode


class TestFusedTranspose:
    def test_skips_transpose_kernel(self):
        dev = Device("A100", ExecutionMode.DRY_RUN)
        bf = UltrasoundBeamformer(dev, n_voxels=4096, k=8192, n_frames=256, fused_transpose=True)
        result = bf.reconstruct()
        assert all(c.name != "transpose" for c in result.costs)

    def test_baseline_includes_transpose(self):
        dev = Device("A100", ExecutionMode.DRY_RUN)
        bf = UltrasoundBeamformer(dev, n_voxels=4096, k=8192, n_frames=256)
        assert any(c.name == "transpose" for c in bf.reconstruct().costs)

    def test_fused_is_never_slower(self):
        for precision in (Precision.INT1, Precision.FLOAT16):
            t_base = UltrasoundBeamformer(
                Device("GH200", ExecutionMode.DRY_RUN),
                n_voxels=38880, k=524288, n_frames=1024, precision=precision,
            ).reconstruct().time_s
            t_fused = UltrasoundBeamformer(
                Device("GH200", ExecutionMode.DRY_RUN),
                n_voxels=38880, k=524288, n_frames=1024, precision=precision,
                fused_transpose=True,
            ).reconstruct().time_s
            assert t_fused < t_base

    def test_functional_result_identical(self):
        # The fused path changes cost accounting only; images are identical.
        cfg = ImagingConfig(
            array=TransducerArray(4, 4), grid=VoxelGrid(shape=(6, 6, 6)),
            n_frequencies=8, n_transmissions=4,
        )
        model = build_model_matrix(cfg)
        phantom = make_phantom(cfg.grid, n_generations=2)
        frames = simulate_frames(model, phantom, EnsembleConfig(n_frames=16))
        filtered = apply_clutter_filter(frames, ClutterFilter.MEAN)
        dev = Device("A100")
        base = UltrasoundBeamformer(dev, model, n_frames=16).reconstruct(filtered)
        fused = UltrasoundBeamformer(
            dev, model, n_frames=16, fused_transpose=True
        ).reconstruct(filtered)
        assert np.array_equal(power_doppler(base.frames), power_doppler(fused.frames))
