"""Incoherent-mode transient detection scenario (paper §V-B trade-offs)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.radioastronomy import (
    LOFARBeamformer,
    Observation,
    PointSource,
    Pulsar,
    beam_grid,
    dedisperse,
    generate_station_data,
    incoherent_beam,
    lofar_like_layout,
    steering_weights,
)
from repro.gpusim.device import Device


@pytest.fixture(scope="module")
def burst_scene():
    layout = lofar_like_layout(24)
    obs = Observation(layout=layout, n_channels=16, n_samples=1024, seed=42)
    burst = Pulsar(
        l=0.15, m=-0.12, flux=25.0,
        period_s=obs.n_samples * obs.sample_time_s * 2,  # one pulse in window
        duty_cycle=0.004, dm_pc_cm3=60.0,
    )
    data = generate_station_data(obs, [burst])
    return layout, obs, burst, data


def _peak_snr(series: np.ndarray) -> float:
    baseline = np.median(series)
    mad = np.median(np.abs(series - baseline)) * 1.4826 + 1e-12
    return float((series.max() - baseline) / mad)


class TestIncoherentTransientDetection:
    def test_dedispersion_required(self, burst_scene):
        layout, obs, burst, data = burst_scene
        incoh, _ = incoherent_beam(
            Device("A100"), data, obs.n_channels, layout.n_stations, obs.n_samples
        )
        fixed = dedisperse(incoh, burst.dm_pc_cm3, obs.channel_frequencies(), obs.sample_time_s)
        snr_dedispersed = _peak_snr(fixed.sum(axis=0))
        snr_raw = _peak_snr(incoh.sum(axis=0))
        assert snr_dedispersed > 2 * snr_raw
        assert snr_dedispersed > 10

    def test_out_of_field_burst_not_localized_by_tied_beams(self, burst_scene):
        layout, obs, burst, data = burst_scene
        dirs = beam_grid(16, fov_radius=0.02)  # burst far outside
        weights = steering_weights(layout, obs.channel_frequencies(), dirs)
        bf = LOFARBeamformer(Device("A100"), 16, layout.n_stations, obs.n_samples, obs.n_channels)
        beams = bf.form_beams(weights, data)
        p = (np.abs(beams.beams) ** 2).mean(axis=(0, 2))
        # sidelobe pickup: no beam dominates the grid.
        assert p.max() / np.median(p) < 6.0

    def test_in_field_source_is_localized(self, burst_scene):
        layout, obs, *_ = burst_scene
        dirs = beam_grid(16, fov_radius=0.02)
        src = PointSource(l=float(dirs[5][0]), m=float(dirs[5][1]), flux=2.0)
        data = generate_station_data(obs, [src])
        weights = steering_weights(layout, obs.channel_frequencies(), dirs)
        bf = LOFARBeamformer(Device("A100"), 16, layout.n_stations, obs.n_samples, obs.n_channels)
        beams = bf.form_beams(weights, data)
        p = (np.abs(beams.beams) ** 2).mean(axis=(0, 2))
        assert int(p.argmax()) == 5
        assert p.max() / np.median(p) > 5.0

    def test_incoherent_far_cheaper_than_wide_tied_grid(self, burst_scene):
        layout, obs, *_ = burst_scene
        from repro.gpusim.device import ExecutionMode

        dry = Device("A100", ExecutionMode.DRY_RUN)
        coh = LOFARBeamformer(dry, 1024, layout.n_stations, obs.n_samples,
                              obs.n_channels).predict_cost()
        _, inc = incoherent_beam(dry, None, obs.n_channels, layout.n_stations, obs.n_samples)
        assert coh.time_s / inc.time_s > 5
