"""Central LOFAR beamformer: TCBF vs reference, incoherent mode, pipeline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.radioastronomy import (
    LOFARBeamformer,
    Observation,
    PointSource,
    Pulsar,
    ReferenceBeamformer,
    beam_grid,
    generate_station_data,
    incoherent_beam,
    lofar_like_layout,
    run_observation,
    steering_weights,
)
from repro.ccglib.precision import Precision
from repro.errors import ShapeError
from repro.gpusim.device import Device, ExecutionMode


@pytest.fixture(scope="module")
def observation_setup():
    layout = lofar_like_layout(16)
    obs = Observation(layout=layout, n_channels=4, n_samples=128)
    src = PointSource(l=0.004, m=-0.006, flux=4.0)
    data = generate_station_data(obs, [src])
    dirs = beam_grid(9, fov_radius=0.012)
    # snap beam 4 (centre) onto the source for a guaranteed main-lobe hit
    dirs[4] = [src.l, src.m]
    weights = steering_weights(layout, obs.channel_frequencies(), dirs)
    return layout, obs, src, data, dirs, weights


class TestCoherentBeamforming:
    def test_on_source_beam_strongest(self, observation_setup):
        layout, obs, src, data, dirs, weights = observation_setup
        bf = LOFARBeamformer(Device("A100"), 9, 16, 128, 4)
        out = bf.form_beams(weights, data)
        powers = (np.abs(out.beams) ** 2).mean(axis=(0, 2))
        assert powers.argmax() == 4

    def test_matches_reference_numerically(self, observation_setup):
        layout, obs, src, data, dirs, weights = observation_setup
        dev = Device("A100")
        tc = LOFARBeamformer(dev, 9, 16, 128, 4).form_beams(weights, data)
        ref, _ = ReferenceBeamformer(dev, 9, 16, 128, 4).form_beams(weights, data)
        rel = np.abs(tc.beams - ref).max() / np.abs(ref).max()
        assert rel < 2e-3  # float16 quantization only

    def test_operand_shapes_validated(self, observation_setup):
        *_, weights = observation_setup
        bf = LOFARBeamformer(Device("A100"), 9, 16, 128, 4)
        with pytest.raises(ShapeError):
            bf.form_beams(weights, np.zeros((4, 3, 128), dtype=np.complex64))
        with pytest.raises(ShapeError):
            bf.form_beams(None, None)

    def test_dry_run_cost_only(self):
        dev = Device("GH200", ExecutionMode.DRY_RUN)
        bf = LOFARBeamformer(dev, 1024, 48, 1024, 256)
        out = bf.form_beams()
        assert out.beams is None
        assert out.cost.useful_ops == pytest.approx(8 * 256 * 1024 * 1024 * 48)


class TestIncoherentBeam:
    def test_functional_values(self, observation_setup, rng):
        *_, data, dirs, weights = observation_setup
        dev = Device("A100")
        out, cost = incoherent_beam(dev, data, 4, 16, 128)
        assert out.shape == (4, 128)
        assert np.allclose(out, (np.abs(data) ** 2).sum(axis=1), rtol=1e-5)

    def test_memory_bound(self):
        dev = Device("A100", ExecutionMode.DRY_RUN)
        _, cost = incoherent_beam(dev, None, 256, 512, 1024)
        assert cost.bound.value == "memory"

    def test_much_cheaper_than_coherent(self):
        # "Computationally less demanding" — paper §V-B.
        dev = Device("A100", ExecutionMode.DRY_RUN)
        coherent = LOFARBeamformer(dev, 1024, 512, 1024, 256).predict_cost()
        _, inc = incoherent_beam(dev, None, 256, 512, 1024)
        assert inc.time_s < coherent.time_s / 3


class TestReferenceBeamformer:
    def test_compute_bound_at_large_k(self):
        dev = Device("A100", ExecutionMode.DRY_RUN)
        cost = ReferenceBeamformer(dev, 1024, 512, 1024, 256).predict_cost()
        assert cost.detail["t_math"] > cost.detail["t_dram"]

    def test_never_exceeds_fp32_peak(self):
        dev = Device("A100", ExecutionMode.DRY_RUN)
        cost = ReferenceBeamformer(dev, 1024, 512, 1024, 256).predict_cost()
        assert cost.ops_per_second < dev.spec.fp32_peak_ops()

    def test_tcbf_speedup_shape_vs_paper(self):
        # Paper: up to ~20x at many receivers, crossover at very few.
        dev = Device("A100", ExecutionMode.DRY_RUN)

        def speedup(k):
            t = LOFARBeamformer(dev, 1024, k, 1024, 256).predict_cost()
            r = ReferenceBeamformer(dev, 1024, k, 1024, 256).predict_cost()
            return t.ops_per_second / r.ops_per_second

        assert speedup(8) < 2.0
        assert 3.0 < speedup(48) < 10.0
        assert 10.0 < speedup(512) < 25.0

    def test_energy_advantage(self):
        dev = Device("A100", ExecutionMode.DRY_RUN)
        t = LOFARBeamformer(dev, 1024, 512, 1024, 256).predict_cost()
        r = ReferenceBeamformer(dev, 1024, 512, 1024, 256).predict_cost()
        assert 5.0 < t.ops_per_joule / r.ops_per_joule < 25.0  # paper: ~10x


class TestEndToEndPipeline:
    def test_pulsar_detected_in_correct_beam(self):
        dirs = beam_grid(25, fov_radius=0.02)
        psr = Pulsar(
            l=float(dirs[7][0]), m=float(dirs[7][1]), flux=4.0,
            period_s=6.4e-4, duty_cycle=0.15, dm_pc_cm3=5.0,
        )
        res = run_observation(Device("A100"), [psr], n_stations=24, n_beams=25,
                              n_channels=8, n_samples=512)
        snrs = np.array([d.snr for d in res.detections])
        assert res.detections[7].detected
        assert snrs[7] > 3 * np.delete(snrs, 7).max()

    def test_observation_metadata(self):
        src = PointSource(l=0.0, m=0.0, flux=2.0)
        res = run_observation(Device("A100"), [src], n_stations=8, n_beams=4,
                              n_channels=2, n_samples=64, search_pulsars=False)
        assert res.beams.shape == (2, 4, 64)
        assert res.beam_powers().shape == (4, 2, 64)
        assert res.detections == []
