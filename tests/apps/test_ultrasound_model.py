"""Ultrasound substrate: geometry, acoustics, model matrix, phantom."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.apps.ultrasound.acoustics import PulseSpectrum, greens_function, pulse_echo_response
from repro.apps.ultrasound.array_geometry import (
    CodedAperture,
    TransducerArray,
    TransmissionScheme,
    VoxelGrid,
    SPEED_OF_SOUND,
)
from repro.apps.ultrasound.model_matrix import (
    ImagingConfig,
    build_model_matrix,
    paper_scale_config,
    recorded_dataset_config,
)
from repro.apps.ultrasound.phantom import grow_vessel_tree, make_phantom
from repro.errors import ShapeError


class TestGeometry:
    def test_array_positions(self):
        arr = TransducerArray(n_x=4, n_y=2, pitch_m=1e-3)
        pos = arr.positions()
        assert pos.shape == (8, 3)
        assert np.allclose(pos.mean(axis=0), 0.0)  # centred
        assert np.all(pos[:, 2] == 0.0)  # in the z=0 plane

    def test_voxel_grid(self):
        grid = VoxelGrid(shape=(4, 3, 2), spacing_m=1e-3, origin_m=(0, 0, 5e-3))
        pos = grid.positions()
        assert pos.shape == (24, 3)
        assert pos[:, 2].min() == pytest.approx(5e-3)

    def test_grid_volume_roundtrip(self):
        grid = VoxelGrid(shape=(4, 3, 2))
        flat = np.arange(grid.n_voxels, dtype=float)
        vol = grid.to_volume(flat)
        assert vol.shape == (2, 3, 4)
        assert vol[0, 0, 1] == 1.0  # x-fastest ordering

    def test_grid_wrong_size(self):
        with pytest.raises(ShapeError):
            VoxelGrid(shape=(2, 2, 2)).to_volume(np.zeros(9))


class TestCodedAperture:
    def test_deterministic(self):
        arr = TransducerArray(4, 4)
        grid = VoxelGrid(shape=(3, 3, 3))
        mask = CodedAperture(n_elements=16)
        d1 = mask.delays(arr.positions(), grid.positions())
        d2 = mask.delays(arr.positions(), grid.positions())
        assert np.array_equal(d1, d2)
        assert d1.shape == (16, 27)

    def test_rms_scale(self):
        arr = TransducerArray(8, 8)
        grid = VoxelGrid(shape=(8, 8, 8))
        mask = CodedAperture(n_elements=64, delay_rms_s=1e-7)
        d = mask.delays(arr.positions(), grid.positions())
        assert 0.3e-7 < d.std() < 3e-7

    def test_element_count_checked(self):
        mask = CodedAperture(n_elements=4)
        with pytest.raises(ShapeError):
            mask.delays(np.zeros((5, 3)), np.ones((2, 3)))


class TestAcoustics:
    def test_greens_amplitude_decay(self):
        f = np.array([5e6])
        src = np.zeros((1, 3))
        near = np.array([[0, 0, 1e-3]])
        far = np.array([[0, 0, 2e-3]])
        g_near = np.abs(greens_function(f, src, near))[0, 0, 0]
        g_far = np.abs(greens_function(f, src, far))[0, 0, 0]
        assert g_near / g_far == pytest.approx(2.0, rel=1e-3)

    def test_greens_phase_velocity(self):
        f = np.array([1e6])
        src = np.zeros((1, 3))
        dst = np.array([[0, 0, SPEED_OF_SOUND / 1e6]])  # exactly one wavelength
        g = greens_function(f, src, dst)[0, 0, 0]
        assert np.angle(g) == pytest.approx(0.0, abs=1e-3)

    def test_spectrum_peak_at_centre(self):
        spec = PulseSpectrum(centre_hz=5e6)
        freqs = spec.frequencies(11)
        amps = spec.amplitude(freqs)
        assert amps.argmax() == 5  # symmetric grid -> middle bin
        assert amps.max() == pytest.approx(1.0)

    def test_pulse_echo_shape(self):
        arr = TransducerArray(2, 2)
        grid = VoxelGrid(shape=(2, 2, 2))
        codes = TransmissionScheme(3, 4).codes()
        h = pulse_echo_response(np.array([4e6, 5e6]), arr.positions(), grid.positions(), codes)
        assert h.shape == (2, 4, 3, 8)
        assert h.dtype == np.complex64


class TestModelMatrix:
    def test_row_count(self):
        cfg = ImagingConfig(
            array=TransducerArray(2, 2), grid=VoxelGrid(shape=(3, 3, 2)),
            n_frequencies=5, n_transmissions=3,
        )
        model = build_model_matrix(cfg)
        assert model.data.shape == (5 * 4 * 3, 18)
        assert model.k == cfg.n_rows

    def test_matched_filter_unit_rows(self):
        cfg = ImagingConfig(
            array=TransducerArray(2, 2), grid=VoxelGrid(shape=(2, 2, 2)),
            n_frequencies=4, n_transmissions=2,
        )
        filt = build_model_matrix(cfg).matched_filter()
        norms = np.linalg.norm(filt, axis=1)
        assert np.allclose(norms, 1.0, atol=1e-5)

    def test_voxel_signatures_distinct(self):
        # The coded aperture must decorrelate voxel signatures: the Gram
        # matrix of normalized columns stays well below 1 off-diagonal
        # on average.
        cfg = ImagingConfig(
            array=TransducerArray(4, 4), grid=VoxelGrid(shape=(4, 4, 3)),
            n_frequencies=8, n_transmissions=4,
        )
        h = build_model_matrix(cfg).data
        hn = h / np.linalg.norm(h, axis=0, keepdims=True)
        gram = np.abs(hn.conj().T @ hn)
        np.fill_diagonal(gram, 0.0)
        assert gram.mean() < 0.3

    def test_paper_scale_shapes(self):
        cfg = paper_scale_config()
        assert cfg.n_rows == 262144  # 128 * 64 * 32
        assert cfg.n_voxels == 128**3
        rec = recorded_dataset_config()
        assert rec.n_rows == 524288  # 128 * 64 * 64
        assert rec.n_voxels == 38880


class TestPhantom:
    def test_tree_is_a_tree(self):
        tree = grow_vessel_tree(VoxelGrid(shape=(16, 16, 16)), n_generations=3)
        assert nx.is_tree(tree.to_undirected())
        assert tree.number_of_nodes() == 1 + 2 + 4 + 8

    def test_radii_and_speeds_shrink(self):
        tree = grow_vessel_tree(VoxelGrid(shape=(8, 8, 8)), n_generations=3)
        for u, v in tree.edges:
            assert tree.nodes[v]["radius"] < tree.nodes[u]["radius"]
            assert tree.nodes[v]["speed"] < tree.nodes[u]["speed"]

    def test_phantom_fields(self):
        grid = VoxelGrid(shape=(10, 10, 8))
        phantom = make_phantom(grid, n_generations=3)
        assert phantom.blood_amplitude.shape == (grid.n_voxels,)
        assert 0 < phantom.n_blood_voxels < grid.n_voxels / 2
        # flow only inside vessels
        assert np.all((phantom.flow_speed > 0) == (phantom.blood_amplitude > 0))

    def test_tissue_dominates_blood(self):
        phantom = make_phantom(VoxelGrid(shape=(8, 8, 8)), tissue_to_blood_db=30.0)
        blood_level = phantom.blood_amplitude[phantom.blood_amplitude > 0].mean()
        tissue_level = phantom.tissue_amplitude.mean()
        ratio_db = 20 * np.log10(tissue_level / blood_level)
        assert 24.0 < ratio_db < 36.0

    def test_deterministic(self):
        grid = VoxelGrid(shape=(6, 6, 6))
        p1 = make_phantom(grid, seed=3)
        p2 = make_phantom(grid, seed=3)
        assert np.array_equal(p1.blood_amplitude, p2.blood_amplitude)
