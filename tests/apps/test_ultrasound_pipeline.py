"""Ultrasound measurement, Doppler filtering, imaging, real-time analysis."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.ultrasound import (
    ClutterFilter,
    EnsembleConfig,
    ImagingConfig,
    TransducerArray,
    UltrasoundBeamformer,
    VoxelGrid,
    apply_clutter_filter,
    build_model_matrix,
    contrast_db,
    doppler_rate,
    make_phantom,
    max_intensity_projections,
    max_realtime_voxels,
    power_doppler,
    remove_mean,
    render_ascii,
    simulate_frames,
    svd_filter,
    frames_per_second,
    FULL_VOLUME_VOXELS,
    THREE_PLANES_VOXELS,
    REQUIRED_FPS,
)
from repro.ccglib.precision import Precision
from repro.errors import ShapeError
from repro.gpusim.device import Device, ExecutionMode
from repro.gpusim.specs import get_spec

PROJ_AXIS = {"axial": 0, "coronal": 1, "sagittal": 2}


@pytest.fixture(scope="module")
def small_setup():
    cfg = ImagingConfig(
        array=TransducerArray(4, 4),
        grid=VoxelGrid(shape=(10, 10, 8)),
        n_frequencies=12,
        n_transmissions=6,
    )
    model = build_model_matrix(cfg)
    phantom = make_phantom(cfg.grid, n_generations=3)
    frames = simulate_frames(model, phantom, EnsembleConfig(n_frames=48))
    return cfg, model, phantom, frames


class TestMeasurement:
    def test_shape(self, small_setup):
        cfg, model, phantom, frames = small_setup
        assert frames.shape == (model.k, 48)

    def test_tissue_component_stationary(self, small_setup):
        # Without noise+blood, frames would be identical; with them the
        # frame-to-frame correlation must still be dominated by clutter.
        cfg, model, phantom, frames = small_setup
        c = np.abs(np.vdot(frames[:, 0], frames[:, 1])) / (
            np.linalg.norm(frames[:, 0]) * np.linalg.norm(frames[:, 1])
        )
        assert c > 0.95

    def test_doppler_rate_scaling(self):
        rate = doppler_rate(np.array([1e-2]), 5e6, 1000.0)
        # 2 * v/c * 2*pi*f0 / fr = 2 * (0.01/1540) * 2*pi*5e6 / 1000
        assert rate[0] == pytest.approx(2 * 0.01 / 1540 * 2 * np.pi * 5e6 / 1000)

    def test_phantom_model_mismatch(self, small_setup):
        cfg, model, phantom, _ = small_setup
        other = make_phantom(VoxelGrid(shape=(3, 3, 3)))
        with pytest.raises(ShapeError):
            simulate_frames(model, other, EnsembleConfig(n_frames=4))


class TestClutterFilters:
    def test_mean_removal_exact_dc(self, rng):
        y = (rng.normal(size=(20, 16)) + 1j * rng.normal(size=(20, 16))).astype(np.complex64)
        y += 100.0  # huge DC clutter
        filtered = remove_mean(y)
        assert np.abs(filtered.mean(axis=1)).max() < 1e-4

    def test_svd_removes_dominant_component(self, rng):
        # rank-1 clutter + small noise: one component removal must reduce
        # total power by orders of magnitude.
        u = rng.normal(size=(30, 1))
        v = rng.normal(size=(1, 16))
        clutter = (u @ v).astype(np.complex64) * 100
        noise = rng.normal(size=(30, 16)).astype(np.complex64)
        filtered = svd_filter(clutter + noise, n_components=1)
        assert np.linalg.norm(filtered) < 0.01 * np.linalg.norm(clutter + noise)

    def test_svd_zero_components_identity(self, rng):
        y = rng.normal(size=(5, 4)).astype(np.complex64)
        assert np.array_equal(svd_filter(y, 0), y)

    def test_dispatch(self, small_setup):
        _, _, _, frames = small_setup
        assert np.array_equal(apply_clutter_filter(frames, ClutterFilter.NONE), frames)
        assert not np.array_equal(apply_clutter_filter(frames, ClutterFilter.MEAN), frames)

    def test_power_doppler_shape(self, rng):
        frames = rng.normal(size=(10, 7)).astype(np.complex64)
        assert power_doppler(frames).shape == (10,)


class TestImaging:
    def test_vessels_visible_with_filter(self, small_setup):
        cfg, model, phantom, frames = small_setup
        filtered = apply_clutter_filter(frames, ClutterFilter.SVD, 2)
        bf = UltrasoundBeamformer(Device("A100"), model, n_frames=48, precision=Precision.INT1)
        img = power_doppler(bf.reconstruct(filtered).frames)
        mips = max_intensity_projections(cfg.grid.to_volume(img))
        mask = phantom.blood_mask_volume()
        for name, mip in mips.items():
            assert contrast_db(mip, mask.max(axis=PROJ_AXIS[name])) > 4.0

    def test_paper_ordering_claim(self, small_setup):
        # Sign extraction before Doppler processing loses the signal.
        cfg, model, phantom, frames = small_setup
        bf = UltrasoundBeamformer(Device("A100"), model, n_frames=48, precision=Precision.INT1)
        img_raw = power_doppler(bf.reconstruct(frames).frames)
        mips = max_intensity_projections(cfg.grid.to_volume(img_raw))
        mask = phantom.blood_mask_volume()
        assert contrast_db(mips["axial"], mask.max(axis=0)) < 2.0

    def test_int1_close_to_float16(self, small_setup):
        cfg, model, phantom, frames = small_setup
        filtered = apply_clutter_filter(frames, ClutterFilter.SVD, 2)
        dev = Device("A100")
        img1 = power_doppler(
            UltrasoundBeamformer(dev, model, n_frames=48, precision=Precision.INT1)
            .reconstruct(filtered).frames
        )
        img16 = power_doppler(
            UltrasoundBeamformer(dev, model, n_frames=48, precision=Precision.FLOAT16)
            .reconstruct(filtered).frames
        )
        assert np.corrcoef(img1, img16)[0, 1] > 0.8

    def test_cost_accounting_includes_pack_and_transpose(self, small_setup):
        cfg, model, _, frames = small_setup
        bf = UltrasoundBeamformer(Device("A100"), model, n_frames=48, precision=Precision.INT1)
        result = bf.reconstruct(apply_clutter_filter(frames, ClutterFilter.MEAN))
        names = [c.name for c in result.costs]
        assert names[0] == "transpose"
        assert names[1] == "pack_bits"
        assert names[2].startswith("gemm_int1")

    def test_float16_skips_packing(self, small_setup):
        cfg, model, _, frames = small_setup
        bf = UltrasoundBeamformer(Device("A100"), model, n_frames=48, precision=Precision.FLOAT16)
        result = bf.reconstruct(frames)
        assert [c.name for c in result.costs] == ["transpose", "gemm_float16"]

    def test_measurement_shape_checked(self, small_setup):
        _, model, _, _ = small_setup
        bf = UltrasoundBeamformer(Device("A100"), model, n_frames=48)
        with pytest.raises(ShapeError):
            bf.reconstruct(np.zeros((3, 3), dtype=np.complex64))

    def test_needs_model_or_shapes(self):
        with pytest.raises(ShapeError):
            UltrasoundBeamformer(Device("A100"))

    def test_prepare_model_records_offline_cost(self, small_setup):
        _, model, _, _ = small_setup
        bf = UltrasoundBeamformer(Device("A100"), model, n_frames=48, precision=Precision.INT1)
        bf.prepare_model()
        assert bf.model_prep_cost is not None
        assert bf.model_prep_cost.time_s > 0


class TestMips:
    def test_projection_shapes(self):
        vol = np.zeros((3, 4, 5))
        mips = max_intensity_projections(vol)
        assert mips["axial"].shape == (4, 5)
        assert mips["coronal"].shape == (3, 5)
        assert mips["sagittal"].shape == (3, 4)

    def test_ascii_render(self):
        img = np.random.default_rng(0).random((16, 16))
        art = render_ascii(img, width=20)
        assert len(art.splitlines()) >= 1

    def test_ascii_empty(self):
        assert "empty" in render_ascii(np.zeros((4, 4)))

    def test_contrast_errors(self):
        with pytest.raises(ShapeError):
            contrast_db(np.ones((2, 2)), np.ones((3, 3), dtype=bool))
        with pytest.raises(ShapeError):
            contrast_db(np.ones((2, 2)), np.ones((2, 2), dtype=bool))  # no background


class TestRealTime:
    def test_constants(self):
        assert REQUIRED_FPS == 1000.0
        assert THREE_PLANES_VOXELS == 3 * 128 * 128
        assert FULL_VOLUME_VOXELS == 128**3

    @pytest.mark.parametrize("gpu", ["GH200", "A100", "AD4000"])
    def test_three_planes_real_time(self, gpu):
        point = frames_per_second(get_spec(gpu), THREE_PLANES_VOXELS)
        assert point.real_time
        assert point.fps > 5 * REQUIRED_FPS  # "easily sustain"

    @pytest.mark.parametrize("gpu", ["GH200", "A100", "AD4000"])
    def test_full_volume_not_real_time(self, gpu):
        assert not frames_per_second(get_spec(gpu), FULL_VOLUME_VOXELS).real_time

    def test_gh200_fraction_near_paper(self):
        frac = max_realtime_voxels(get_spec("GH200")) / FULL_VOLUME_VOXELS
        assert 0.75 <= frac <= 0.95  # paper: ~85%

    def test_ordering_gh200_a100_ad4000(self):
        fps = {
            gpu: frames_per_second(get_spec(gpu), FULL_VOLUME_VOXELS).fps
            for gpu in ("GH200", "A100", "AD4000")
        }
        assert fps["GH200"] > fps["A100"] > fps["AD4000"]

    def test_fps_decreases_with_voxels(self):
        spec = get_spec("A100")
        fps = [frames_per_second(spec, v).fps for v in (10**5, 10**6, 2 * 10**6)]
        assert fps == sorted(fps, reverse=True)

    def test_half_frequencies_enable_full_volume(self):
        from repro.apps.ultrasound.realtime import PAPER_REALTIME_K

        for gpu, expected in [("GH200", True), ("A100", True), ("AD4000", False)]:
            point = frames_per_second(get_spec(gpu), FULL_VOLUME_VOXELS, k=PAPER_REALTIME_K // 2)
            assert point.real_time is expected
