"""ccglib built-in benchmark tools."""

from __future__ import annotations

import pytest

from repro.ccglib.benchmark import measure, size_grid, sweep_cubic, sweep_k, sweep_mn
from repro.ccglib.perfmodel import GemmProblem
from repro.ccglib.precision import Precision
from repro.gpusim.specs import get_spec


class TestSweeps:
    def test_cubic_sweep_shapes(self):
        points = sweep_cubic(get_spec("A100"), Precision.FLOAT16, [256, 512])
        assert [p.m for p in points] == [256, 512]
        assert all(p.m == p.n == p.k for p in points)
        assert all(p.tops > 0 for p in points)

    def test_mn_sweep_fixed_k(self):
        points = sweep_mn(get_spec("A100"), Precision.INT1, [1024, 2048], k=524288)
        assert all(p.k == 524288 for p in points)

    def test_k_sweep_fixed_mn(self):
        points = sweep_k(get_spec("GH200"), Precision.INT1, [65536, 131072], m=32768, n=8192)
        assert [p.k for p in points] == [65536, 131072]
        assert all(p.m == 32768 for p in points)

    def test_performance_grows_with_size(self):
        points = sweep_cubic(get_spec("MI300X"), Precision.FLOAT16, [512, 8192])
        assert points[1].tops > points[0].tops

    def test_measure_records_bound(self):
        point = measure(get_spec("A100"), Precision.FLOAT16, GemmProblem(256, 1024, 1024, 64))
        assert point.bound == "memory"


class TestSizeGrid:
    def test_includes_offsets(self):
        grid = size_grid(1000, 3000, 1000, include_offsets=(0, 136))
        assert 1000 in grid and 1136 in grid

    def test_respects_bounds(self):
        grid = size_grid(1000, 2000, 1000, include_offsets=(0, 5000))
        assert max(grid) <= 2000
        assert min(grid) >= 1000

    def test_sorted_unique(self):
        grid = size_grid(100, 1000, 100, include_offsets=(0, 0))
        assert grid == sorted(set(grid))
