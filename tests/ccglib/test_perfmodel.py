"""Analytical GEMM performance model: calibration, restrictions, trends."""

from __future__ import annotations

import dataclasses

import pytest

from repro.ccglib.perfmodel import (
    GemmProblem,
    accumulator_registers,
    model_gemm,
    shared_memory_per_block,
    theoretical_min_bytes,
    validate_config,
)
from repro.ccglib.precision import Precision, traits
from repro.ccglib.tuning import TABLE_III, TuneParams, published_tuning
from repro.errors import KernelConfigError
from repro.gpusim.arch import BitOp
from repro.gpusim.specs import get_spec
from repro.gpusim.timing import Bound
from repro.kerneltuner.tuner import PAPER_TUNING_PROBLEMS
from repro.util.units import tera


class TestTableIIICalibration:
    """The calibration anchor: model == paper at the published configs."""

    @pytest.mark.parametrize("row", TABLE_III, ids=lambda r: f"{r.gpu}-{r.precision.value}")
    def test_performance_within_one_percent(self, row):
        spec = get_spec(row.gpu)
        cost = model_gemm(spec, row.precision, PAPER_TUNING_PROBLEMS[row.precision], row.params)
        assert cost.ops_per_second / tera == pytest.approx(row.tops, rel=0.01)

    @pytest.mark.parametrize("row", TABLE_III, ids=lambda r: f"{r.gpu}-{r.precision.value}")
    def test_energy_within_three_percent(self, row):
        spec = get_spec(row.gpu)
        cost = model_gemm(spec, row.precision, PAPER_TUNING_PROBLEMS[row.precision], row.params)
        assert cost.ops_per_joule / tera == pytest.approx(row.tops_per_joule, rel=0.03)

    @pytest.mark.parametrize("row", TABLE_III, ids=lambda r: f"{r.gpu}-{r.precision.value}")
    def test_large_tuned_kernels_are_compute_bound(self, row):
        spec = get_spec(row.gpu)
        cost = model_gemm(spec, row.precision, PAPER_TUNING_PROBLEMS[row.precision], row.params)
        assert cost.bound is Bound.COMPUTE


class TestRestrictions:
    def test_table3_configs_all_valid(self):
        for row in TABLE_III:
            validate_config(get_spec(row.gpu), row.precision, row.params)

    def test_block_warp_divisibility(self):
        with pytest.raises(KernelConfigError, match="divisible"):
            validate_config(get_spec("A100"), Precision.FLOAT16, TuneParams(96, 32, 64, 32, 2))

    def test_warp_fragment_multiple(self):
        with pytest.raises(KernelConfigError, match="fragment"):
            validate_config(get_spec("A100"), Precision.FLOAT16, TuneParams(64, 32, 8, 32, 2))

    def test_amd_rejects_multibuffer(self):
        with pytest.raises(KernelConfigError, match="asynchronous"):
            validate_config(get_spec("MI300X"), Precision.FLOAT16, TuneParams(128, 64, 64, 32, 2))

    def test_register_budget(self):
        # Huge warp tile -> accumulators alone exceed 255 regs on NVIDIA.
        params = TuneParams(256, 256, 128, 128, 1)
        assert accumulator_registers(params, 32) > 255
        with pytest.raises(KernelConfigError, match="registers"):
            validate_config(get_spec("A100"), Precision.FLOAT16, params)

    def test_shared_memory_budget(self):
        # AMD LDS is 64 KiB; four large fp16 stages do not fit... constructed
        # to pass divisibility but fail capacity on NVIDIA Ada (100 KiB).
        params = TuneParams(256, 256, 64, 64, 4)
        smem = shared_memory_per_block(params, traits(Precision.FLOAT16))
        assert smem > get_spec("AD4000").smem_per_sm_bytes
        with pytest.raises(KernelConfigError, match="shared memory"):
            validate_config(get_spec("AD4000"), Precision.FLOAT16, params)

    def test_too_many_warps(self):
        with pytest.raises(KernelConfigError, match="warps"):
            validate_config(get_spec("A100"), Precision.FLOAT16, TuneParams(256, 256, 16, 16, 1))

    def test_int1_on_amd_rejected(self):
        with pytest.raises(Exception):
            validate_config(get_spec("MI210"), Precision.INT1, TuneParams(128, 64, 32, 64, 1))


class TestPaddingEffects:
    def test_sawtooth(self):
        spec = get_spec("A100")
        params = published_tuning("A100", Precision.FLOAT16).params
        aligned = model_gemm(spec, Precision.FLOAT16, GemmProblem(1, 4096, 4096, 4096), params)
        off = model_gemm(spec, Precision.FLOAT16, GemmProblem(1, 4096, 4096, 4097), params)
        # One element over a K boundary pads a full fragment: slower.
        assert off.ops_per_second < aligned.ops_per_second

    def test_padded_dims_recorded(self):
        spec = get_spec("A100")
        params = published_tuning("A100", Precision.FLOAT16).params
        cost = model_gemm(spec, Precision.FLOAT16, GemmProblem(1, 100, 100, 100), params)
        assert cost.detail["padded_m"] % params.block_m == 0
        assert cost.detail["padded_k"] % 16 == 0

    def test_small_matrices_slower(self):
        spec = get_spec("GH200")
        params = published_tuning("GH200", Precision.FLOAT16).params
        small = model_gemm(spec, Precision.FLOAT16, GemmProblem(1, 512, 512, 512), params)
        big = model_gemm(spec, Precision.FLOAT16, GemmProblem(1, 8192, 8192, 8192), params)
        assert small.ops_per_second < 0.6 * big.ops_per_second


class TestBitOpEffects:
    def test_and_doubles_instructions(self):
        spec = get_spec("A100")
        params = published_tuning("A100", Precision.INT1).params
        problem = GemmProblem(1, 4096, 4096, 524288)
        xor = model_gemm(spec, Precision.INT1, problem, params, bit_op=BitOp.XOR)
        and_ = model_gemm(spec, Precision.INT1, problem, params, bit_op=BitOp.AND)
        assert and_.issued_ops == pytest.approx(2 * xor.issued_ops)
        assert xor.ops_per_second > and_.ops_per_second

    def test_hopper_auto_switch_beats_xor(self):
        spec = get_spec("GH200")
        params = published_tuning("GH200", Precision.INT1).params
        problem = PAPER_TUNING_PROBLEMS[Precision.INT1]
        auto = model_gemm(spec, Precision.INT1, problem, params)  # AND
        xor = model_gemm(spec, Precision.INT1, problem, params, bit_op=BitOp.XOR)
        assert auto.ops_per_second > 1.5 * xor.ops_per_second
        assert auto.name.endswith("and")


class TestResourceBounds:
    def test_tiny_k_is_memory_bound_at_large_mn(self):
        # Fig 3 small case: dominated by the C output traffic.
        spec = get_spec("A100")
        params = published_tuning("A100", Precision.FLOAT16).params
        cost = model_gemm(spec, Precision.FLOAT16, GemmProblem(256, 1024, 1024, 64), params)
        assert cost.bound is Bound.MEMORY

    def test_util_ranges(self):
        spec = get_spec("MI300X")
        params = published_tuning("MI300X", Precision.FLOAT16).params
        cost = model_gemm(spec, Precision.FLOAT16, GemmProblem(1, 8192, 8192, 8192), params)
        for key in ("util_tensor", "util_dram", "util_smem"):
            assert 0.0 <= cost.detail[key] <= 1.0

    def test_energy_at_least_idle(self):
        spec = get_spec("A100")
        params = published_tuning("A100", Precision.FLOAT16).params
        cost = model_gemm(spec, Precision.FLOAT16, GemmProblem(1, 256, 256, 256), params)
        assert cost.energy_j >= spec.power.idle_w * cost.time_s * 0.999

    def test_short_k_ramp_penalty(self):
        # LOFAR effect: K=512 cannot saturate a big GPU (paper §V-B on MI300X).
        spec = get_spec("MI300X")
        params = published_tuning("MI300X", Precision.FLOAT16).params
        short = model_gemm(spec, Precision.FLOAT16, GemmProblem(256, 1024, 1024, 512), params)
        long = model_gemm(spec, Precision.FLOAT16, GemmProblem(1, 8192, 8192, 8192), params)
        assert short.ops_per_second < 0.95 * long.ops_per_second
        # and a truly short K suffers visibly
        very_short = model_gemm(
            spec, Precision.FLOAT16, GemmProblem(256, 1024, 1024, 64), params
        )
        assert very_short.detail["f_ramp"] < 0.75


class TestTheoreticalBytes:
    def test_fp16_accounting(self):
        problem = GemmProblem(1, 8192, 8192, 8192)
        nbytes = theoretical_min_bytes(Precision.FLOAT16, problem)
        expected = 8192 * 8192 * 2 * 2 * 2 + 8192 * 8192 * 2 * 4
        assert nbytes == pytest.approx(expected)

    def test_int1_is_32x_smaller_on_inputs(self):
        problem = GemmProblem(1, 1024, 1024, 4096)
        f16 = theoretical_min_bytes(Precision.FLOAT16, problem)
        i1 = theoretical_min_bytes(Precision.INT1, problem)
        assert i1 < f16
