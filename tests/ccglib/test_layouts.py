"""Complex layout conversions."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ccglib.layouts import (
    IMAG,
    REAL,
    ensure_batched,
    to_interleaved,
    to_planar,
    validate_planar_pair,
)
from repro.errors import ShapeError


class TestPlanarConversion:
    @given(st.integers(1, 6), st.integers(1, 6), st.integers(0, 2**31))
    def test_roundtrip(self, r, c, seed):
        rng = np.random.default_rng(seed)
        z = (rng.normal(size=(r, c)) + 1j * rng.normal(size=(r, c))).astype(np.complex64)
        assert np.array_equal(to_interleaved(to_planar(z)), z)

    def test_plane_order(self):
        z = np.array([[1 + 2j]], dtype=np.complex64)
        p = to_planar(z)
        assert p[REAL, 0, 0] == 1.0
        assert p[IMAG, 0, 0] == 2.0

    def test_dtype_quantization(self):
        z = np.array([[1.0 + 1.0j]], dtype=np.complex64)
        assert to_planar(z, dtype=np.float16).dtype == np.float16

    def test_rejects_real_input(self):
        with pytest.raises(ShapeError):
            to_planar(np.zeros((2, 2)))

    def test_interleaved_rejects_bad_axis(self):
        with pytest.raises(ShapeError):
            to_interleaved(np.zeros((3, 2, 2)))

    def test_batched_shapes(self):
        z = np.zeros((4, 3, 2), dtype=np.complex64)
        p = to_planar(z)
        assert p.shape == (4, 2, 3, 2)
        assert to_interleaved(p).shape == z.shape


class TestEnsureBatched:
    def test_adds_batch(self):
        arr, had = ensure_batched(np.zeros((3, 4)), 3)
        assert arr.shape == (1, 3, 4)
        assert not had

    def test_keeps_batch(self):
        arr, had = ensure_batched(np.zeros((2, 3, 4)), 3)
        assert arr.shape == (2, 3, 4)
        assert had

    def test_rejects_other_ranks(self):
        with pytest.raises(ShapeError):
            ensure_batched(np.zeros((4,)), 3)


class TestValidatePlanarPair:
    def test_extracts_dims(self):
        a = np.zeros((2, 2, 5, 7))
        b = np.zeros((2, 2, 7, 3))
        assert validate_planar_pair(a, b) == (2, 5, 3, 7)

    @pytest.mark.parametrize(
        "a_shape,b_shape",
        [
            ((2, 2, 5, 7), (2, 2, 6, 3)),  # K mismatch
            ((2, 2, 5, 7), (3, 2, 7, 3)),  # batch mismatch
            ((2, 1, 5, 7), (2, 2, 7, 3)),  # bad complex axis
            ((2, 5, 7), (2, 7, 3)),        # missing batch
        ],
    )
    def test_rejects(self, a_shape, b_shape):
        with pytest.raises(ShapeError):
            validate_planar_pair(np.zeros(a_shape), np.zeros(b_shape))
