"""Experimental TensorFloat-32 support (paper §VI future work).

"Both NVIDIA and AMD (starting with CDNA3) support tensorfloat32 ...
Support for these formats is currently available as an experimental
feature in ccglib."
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ccglib.gemm import Gemm
from repro.ccglib.perfmodel import GemmProblem, model_gemm
from repro.ccglib.precision import Precision
from repro.ccglib.tuning import TuneParams
from repro.errors import UnsupportedPrecisionError
from repro.gpusim.device import Device
from repro.gpusim.specs import get_spec
from tests.conftest import random_complex

TF32_PARAMS = TuneParams(128, 64, 64, 32, 2)
TF32_PARAMS_AMD = TuneParams(128, 64, 64, 32, 1)


class TestTf32Model:
    def test_half_the_float16_rate_on_nvidia(self):
        spec = get_spec("A100")
        problem = GemmProblem(1, 8192, 8192, 8192)
        tf32 = model_gemm(spec, Precision.TF32, problem, TF32_PARAMS)
        fp16 = model_gemm(spec, Precision.FLOAT16, problem, TF32_PARAMS)
        # Half tensor rate, but also 2x the bytes: compute-bound here, so
        # roughly half the throughput.
        assert 0.35 < tf32.ops_per_second / fp16.ops_per_second < 0.65

    def test_supported_on_cdna3_not_cdna2(self):
        problem = GemmProblem(1, 4096, 4096, 4096)
        cost = model_gemm(get_spec("MI300X"), Precision.TF32, problem, TF32_PARAMS_AMD)
        assert cost.time_s > 0
        with pytest.raises(UnsupportedPrecisionError):
            model_gemm(get_spec("MI210"), Precision.TF32, problem, TF32_PARAMS_AMD)

    def test_gated_behind_experimental_flag(self):
        with pytest.raises(UnsupportedPrecisionError, match="experimental"):
            Gemm(Device("A100"), Precision.TF32, 1, 32, 32, 32)


class TestTf32Functional:
    def test_tf32_keeps_float32_range(self, rng):
        # 70000 overflows float16 but is exactly representable in TF32
        # range (the paper: "a 19-bit format with the same range as float32
        # but less precision").
        dev = Device("A100")
        a = np.zeros((1, 8, 16), dtype=np.complex64)
        a[0, 0, 0] = 70000.0
        b = np.zeros((1, 16, 4), dtype=np.complex64)
        b[0, 0, 0] = 1.0
        with np.errstate(over="ignore", invalid="ignore"):  # overflow is the point
            out16 = Gemm(dev, Precision.FLOAT16, 1, 8, 4, 16).run(a, b).output[0, 0, 0]
        out32 = Gemm(
            dev, Precision.TF32, 1, 8, 4, 16, experimental_ok=True
        ).run(a, b).output[0, 0, 0]
        assert not np.isfinite(out16.real)  # fp16 overflow (inf/NaN)
        assert out32.real == pytest.approx(70000.0, rel=1e-3)

    def test_tf32_matches_fp16_precision_in_range(self, rng):
        # TF32 and float16 share the 10-bit mantissa; for unit-scale values
        # the two paths agree to quantization error — TF32's advantage is
        # range, not precision (only rounding tie-breaks differ).
        dev = Device("A100")
        a = random_complex(rng, (1, 16, 64))
        b = random_complex(rng, (1, 64, 16))
        ref = a.astype(np.complex128) @ b.astype(np.complex128)
        out16 = Gemm(dev, Precision.FLOAT16, 1, 16, 16, 64).run(a, b).output
        out32 = Gemm(dev, Precision.TF32, 1, 16, 16, 64, experimental_ok=True).run(a, b).output
        err16 = np.abs(out16 - ref).max()
        err32 = np.abs(out32 - ref).max()
        assert err32 < 1.5 * err16
        assert err16 < 1.5 * err32

    def test_tf32_quantization_rounds_mantissa(self):
        from repro.gpusim.tensorcore import quantize_tf32

        # 1 + 2^-11 rounds to 1 + 2^-10 or 1 under TF32 (10-bit mantissa).
        v = np.float32(1.0 + 2.0**-11)
        q = float(quantize_tf32(np.array([v]))[0])
        assert q in (1.0, float(np.float32(1.0 + 2.0**-10)))
        # exactly representable values survive unchanged
        exact = np.float32(1.5)
        assert float(quantize_tf32(np.array([exact]))[0]) == 1.5
