"""Tuning parameters: Table III data, runtime selection, search space."""

from __future__ import annotations

import pytest

from repro.ccglib.perfmodel import validate_config
from repro.ccglib.precision import Precision
from repro.ccglib.tuning import (
    TABLE_III,
    TuneParams,
    default_params,
    published_tuning,
    raw_search_space,
    select_params,
)
from repro.gpusim.specs import GPU_CATALOG, get_spec


class TestTableIII:
    def test_ten_rows(self):
        assert len(TABLE_III) == 10  # 7 float16 + 3 int1

    def test_amd_float16_single_buffer(self):
        for row in TABLE_III:
            if get_spec(row.gpu).arch.vendor.value == "amd":
                assert row.params.num_buffers == 1

    def test_mi300x_and_mi300a_share_params(self):
        # Paper: "The MI300X and MI300A optimal parameters are identical".
        x = published_tuning("MI300X", Precision.FLOAT16).params
        a = published_tuning("MI300A", Precision.FLOAT16).params
        assert x == a

    def test_lookup_missing(self):
        assert published_tuning("MI210", Precision.INT1) is None

    def test_warps_per_block(self):
        p = published_tuning("A100", Precision.FLOAT16).params
        assert p.warps_per_block == (256 // 64) * (32 // 32)


class TestDefaults:
    @pytest.mark.parametrize("gpu", list(GPU_CATALOG))
    def test_defaults_valid(self, gpu):
        spec = get_spec(gpu)
        params = default_params(spec, Precision.FLOAT16)
        validate_config(spec, Precision.FLOAT16, params)

    def test_fallback_for_untabulated_combination(self):
        # int1 has no AMD rows; default must still be a sane config.
        params = default_params(get_spec("MI210"), Precision.FLOAT16)
        assert params.num_buffers == 1


class TestSelectParams:
    def test_shrinks_for_tiny_m(self):
        spec = get_spec("A100")
        p = select_params(spec, Precision.FLOAT16, m=16, n=4096)
        assert p.block_m <= 64
        validate_config(spec, Precision.FLOAT16, p)

    def test_keeps_default_for_large_problem(self):
        spec = get_spec("A100")
        assert select_params(spec, Precision.FLOAT16, 8192, 8192) == default_params(
            spec, Precision.FLOAT16
        )

    def test_never_below_warp_tile(self):
        spec = get_spec("A100")
        p = select_params(spec, Precision.FLOAT16, m=1, n=1)
        assert p.block_m >= p.warp_m
        assert p.block_n >= p.warp_n

    def test_explicit_params_respected_but_adapted(self):
        spec = get_spec("A100")
        override = TuneParams(256, 256, 32, 32, 2)
        p = select_params(spec, Precision.FLOAT16, m=32, n=32, params=override)
        assert p.block_m == 32 and p.block_n == 32


class TestRawSearchSpace:
    def test_divisibility_prefiltered(self):
        for params in raw_search_space(get_spec("A100")):
            assert params.block_m % params.warp_m == 0
            assert params.block_n % params.warp_n == 0

    def test_amd_single_buffer_only(self):
        assert {p.num_buffers for p in raw_search_space(get_spec("MI300X"))} == {1}

    def test_nvidia_has_buffer_choices(self):
        assert {p.num_buffers for p in raw_search_space(get_spec("A100"))} == {1, 2, 4}

    def test_table3_configs_in_space(self):
        for row in TABLE_III:
            space = set(raw_search_space(get_spec(row.gpu)))
            assert row.params in space
