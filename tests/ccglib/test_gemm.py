"""Public Gemm API: correctness, planning, dry-run."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ccglib.gemm import Gemm, gemm_once
from repro.ccglib.precision import Precision
from repro.ccglib.tuning import TuneParams
from repro.errors import ShapeError, UnsupportedPrecisionError
from repro.gpusim.device import Device, ExecutionMode
from tests.conftest import random_complex, random_pm1_complex


class TestFloat16Path:
    def test_matches_reference(self, a100_device, rng):
        a = random_complex(rng, (2, 24, 40))
        b = random_complex(rng, (2, 40, 12))
        result = gemm_once(a100_device, Precision.FLOAT16, a, b)
        ref = a.astype(np.complex128) @ b.astype(np.complex128)
        scale = np.abs(ref).max()
        assert np.abs(result.output - ref).max() / scale < 5e-3

    def test_unbatched_operands(self, a100_device, rng):
        a = random_complex(rng, (8, 16))
        b = random_complex(rng, (16, 4))
        result = gemm_once(a100_device, Precision.FLOAT16, a, b)
        assert result.output.shape == (1, 8, 4)

    @given(st.integers(0, 2**31))
    def test_batch_items_independent(self, seed):
        rng = np.random.default_rng(seed)
        dev = Device("A100")
        a = random_complex(rng, (3, 6, 10))
        b = random_complex(rng, (3, 10, 5))
        full = gemm_once(dev, Precision.FLOAT16, a, b).output
        solo = gemm_once(dev, Precision.FLOAT16, a[1:2], b[1:2]).output
        assert np.allclose(full[1], solo[0], rtol=1e-5, atol=1e-5)


class TestInt1Path:
    @given(st.integers(1, 40), st.integers(0, 2**31))
    def test_exact_for_pm1_inputs(self, k, seed):
        rng = np.random.default_rng(seed)
        dev = Device("A100")
        a = random_pm1_complex(rng, (5, k))
        b = random_pm1_complex(rng, (k, 4))
        result = gemm_once(dev, Precision.INT1, a, b)
        ref = a.astype(np.complex128) @ b.astype(np.complex128)
        assert np.array_equal(result.output[0], ref.astype(np.complex64))

    def test_and_path_on_hopper_exact(self, gh200_device, rng):
        a = random_pm1_complex(rng, (7, 100))
        b = random_pm1_complex(rng, (100, 3))
        result = gemm_once(gh200_device, Precision.INT1, a, b)
        ref = a.astype(np.complex128) @ b.astype(np.complex128)
        assert np.array_equal(result.output[0], ref.astype(np.complex64))
        assert result.cost.name == "gemm_int1_and"

    def test_sign_quantization_of_general_input(self, a100_device, rng):
        # Arbitrary complex inputs are reduced to their component signs.
        a = random_complex(rng, (3, 33))
        b = random_complex(rng, (33, 2))
        got = gemm_once(a100_device, Precision.INT1, a, b).output
        sa = np.sign(a.real) + 0j + 1j * np.sign(a.imag)
        sa = np.where(a.real >= 0, 1, -1) + 1j * np.where(a.imag >= 0, 1, -1)
        sb = np.where(b.real >= 0, 1, -1) + 1j * np.where(b.imag >= 0, 1, -1)
        ref = sa.astype(np.complex128) @ sb.astype(np.complex128)
        assert np.array_equal(got[0], ref.astype(np.complex64))

    def test_rejected_on_amd(self, mi300x_device):
        with pytest.raises(UnsupportedPrecisionError):
            Gemm(mi300x_device, Precision.INT1, 1, 8, 8, 256)


class TestPlanning:
    def test_shape_mismatch_rejected(self, a100_device, rng):
        plan = Gemm(a100_device, Precision.FLOAT16, 1, 8, 8, 8)
        a = random_complex(rng, (1, 8, 16))
        b = random_complex(rng, (1, 16, 8))
        with pytest.raises(ShapeError, match="do not match the plan"):
            plan.run(a, b)

    def test_real_operands_rejected(self, a100_device):
        plan = Gemm(a100_device, Precision.FLOAT16, 1, 4, 4, 4)
        with pytest.raises(ShapeError, match="complex"):
            plan.run(np.ones((1, 4, 4)), np.ones((1, 4, 4)))

    def test_missing_operands_rejected(self, a100_device):
        plan = Gemm(a100_device, Precision.FLOAT16, 1, 4, 4, 4)
        with pytest.raises(ShapeError):
            plan.run()

    def test_invalid_params_fail_at_plan_time(self, a100_device):
        from repro.errors import KernelConfigError

        with pytest.raises(KernelConfigError):
            Gemm(
                a100_device,
                Precision.FLOAT16,
                1, 64, 64, 64,
                params=TuneParams(64, 64, 64, 64, 9),
            )

    def test_padded_k(self, a100_device):
        plan = Gemm(a100_device, Precision.INT1, 1, 16, 16, 100)
        assert plan.padded_k == 256  # int1 fragment K granularity

    def test_small_problem_shrinks_tiles(self, a100_device):
        plan = Gemm(a100_device, Precision.FLOAT16, 1, 16, 16, 64)
        # Default A100 tile is 256x32; a 16x16 problem must not keep it.
        assert plan.params.block_m < 256

    def test_experimental_precision_gate(self, a100_device):
        with pytest.raises(UnsupportedPrecisionError, match="experimental"):
            Gemm(a100_device, Precision.TF32, 1, 16, 16, 16)
        plan = Gemm(a100_device, Precision.TF32, 1, 16, 16, 16, experimental_ok=True)
        assert plan.precision is Precision.TF32


class TestDryRun:
    def test_returns_cost_only(self):
        dev = Device("GH200", ExecutionMode.DRY_RUN)
        plan = Gemm(dev, Precision.INT1, 1, 38880, 8041, 524288)
        result = plan.run()
        assert result.output is None
        assert result.cost.time_s > 0
        assert dev.timeline[-1].cost is result.cost

    def test_paper_scale_does_not_compute(self):
        # 1.3 PetaOps functionally would take hours; the dry run is instant
        # and the recorded cost carries the op count.
        dev = Device("GH200", ExecutionMode.DRY_RUN)
        result = Gemm(dev, Precision.INT1, 1, 38880, 8041, 524288).run()
        assert result.cost.useful_ops == pytest.approx(8 * 38880 * 8041 * 524288)

    def test_predict_cost_does_not_record(self, a100_device):
        plan = Gemm(a100_device, Precision.FLOAT16, 1, 64, 64, 64)
        plan.predict_cost()
        assert len(a100_device.timeline) == 0


class TestFloat16Quantization:
    def test_fp16_rounding_visible(self, a100_device):
        # 2048 + 1 is not representable in fp16; the product must show it.
        a = np.array([[[2049.0 + 0j]]], dtype=np.complex64)
        b = np.array([[[1.0 + 0j]]], dtype=np.complex64)
        out = gemm_once(a100_device, Precision.FLOAT16, a, b).output
        assert out[0, 0, 0].real == np.float32(np.float16(2049.0))
