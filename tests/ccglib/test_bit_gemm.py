"""1-bit GEMM arithmetic: Table II, Eqs. 4-6, padding correction."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ccglib.bit_gemm import (
    bit_gemm_reference,
    complex_bit_gemm,
    real_bit_dot,
    real_bit_dot_and,
    unpack_planar,
)
from repro.errors import ShapeError
from repro.gpusim.arch import BitOp
from repro.util.bits import pack_bits, pad_to_words


def test_table2_worked_example():
    """The exact worked example of paper Table II (K=4).

    A = (1, -1, 1, -1) -> binary 1010; B = (1, 1, -1, -1) -> binary 1100.
    popc(A ^ B) = 2 and the dot product K - 2*popc = 0.
    """
    a_bits = np.array([1, 0, 1, 0], dtype=np.uint8)
    b_bits = np.array([1, 1, 0, 0], dtype=np.uint8)
    a_words = pack_bits(pad_to_words(a_bits))
    b_words = pack_bits(pad_to_words(b_bits))
    # Padding contributes popc(0^0)=0 per padded bit, so the packed XOR
    # popcount equals the K=4 popcount of the table: 2.
    from repro.util.bits import popcount

    assert int(popcount(a_words ^ b_words).sum()) == 2
    # Decimal check: sum(A*B) = 1*1 + -1*1 + 1*-1 + -1*-1 = 0.
    # For the packed dot we must account for the 28 padded (-1 * -1) pairs.
    k_full = 32
    padded_dot = real_bit_dot(a_words, b_words, k_full)
    assert padded_dot == 0 + 28  # true dot plus padding contribution
    assert padded_dot - (k_full - 4) == 0  # Kpad correction recovers 0


def _pack_planar_bits(bits: np.ndarray) -> np.ndarray:
    """(2, R, K) {0,1} -> (2, R, W) packed words, padding with 0-bits."""
    return pack_bits(pad_to_words(bits, axis=-1, pad_bit=0), axis=-1)


@st.composite
def packed_problem(draw):
    m = draw(st.integers(1, 6))
    n = draw(st.integers(1, 6))
    k = draw(st.integers(1, 130))  # crosses the 32, 64, 128 word boundaries
    seed = draw(st.integers(0, 2**31))
    rng = np.random.default_rng(seed)
    a_bits = rng.integers(0, 2, size=(2, m, k)).astype(np.uint8)
    b_bits = rng.integers(0, 2, size=(2, n, k)).astype(np.uint8)
    return a_bits, b_bits, k


class TestComplexBitGemm:
    @given(packed_problem())
    def test_xor_matches_reference_with_padding(self, problem):
        a_bits, b_bits, k = problem
        expected = bit_gemm_reference(a_bits, b_bits)
        got = complex_bit_gemm(_pack_planar_bits(a_bits), _pack_planar_bits(b_bits), k, BitOp.XOR)
        assert np.array_equal(got, expected)

    @given(packed_problem())
    def test_and_equals_xor(self, problem):
        a_bits, b_bits, k = problem
        a_w, b_w = _pack_planar_bits(a_bits), _pack_planar_bits(b_bits)
        assert np.array_equal(
            complex_bit_gemm(a_w, b_w, k, BitOp.XOR),
            complex_bit_gemm(a_w, b_w, k, BitOp.AND),
        )

    def test_exact_at_word_boundary(self, rng):
        # K exactly 64: zero padding; both components exact.
        a_bits = rng.integers(0, 2, size=(2, 3, 64)).astype(np.uint8)
        b_bits = rng.integers(0, 2, size=(2, 2, 64)).astype(np.uint8)
        got = complex_bit_gemm(_pack_planar_bits(a_bits), _pack_planar_bits(b_bits), 64)
        assert np.array_equal(got, bit_gemm_reference(a_bits, b_bits))

    def test_output_dtype_and_shape(self, rng):
        a_bits = rng.integers(0, 2, size=(2, 4, 40)).astype(np.uint8)
        b_bits = rng.integers(0, 2, size=(2, 5, 40)).astype(np.uint8)
        out = complex_bit_gemm(_pack_planar_bits(a_bits), _pack_planar_bits(b_bits), 40)
        assert out.shape == (2, 4, 5)
        assert out.dtype == np.int32

    def test_result_parity(self, rng):
        # Each complex component is a sum/difference of two length-K ±1
        # dot products; both share K's parity, so the result is always even.
        for k in (33, 34):
            a_bits = rng.integers(0, 2, size=(2, 3, k)).astype(np.uint8)
            b_bits = rng.integers(0, 2, size=(2, 3, k)).astype(np.uint8)
            out = complex_bit_gemm(_pack_planar_bits(a_bits), _pack_planar_bits(b_bits), k)
            assert np.all(out % 2 == 0)

    def test_k_valid_bounds(self, rng):
        a = rng.integers(0, 2**32, size=(2, 1, 1), dtype=np.uint32)
        b = rng.integers(0, 2**32, size=(2, 1, 1), dtype=np.uint32)
        with pytest.raises(ShapeError):
            complex_bit_gemm(a, b, 0)
        with pytest.raises(ShapeError):
            complex_bit_gemm(a, b, 33)

    def test_shape_validation(self, rng):
        good = rng.integers(0, 2**32, size=(2, 2, 2), dtype=np.uint32)
        with pytest.raises(ShapeError):
            complex_bit_gemm(good[:1], good, 64)
        with pytest.raises(ShapeError):
            complex_bit_gemm(good, good.astype(np.int64), 64)
        with pytest.raises(ShapeError):
            complex_bit_gemm(good, rng.integers(0, 2, size=(2, 2, 3), dtype=np.uint32), 64)

    def test_n_block_independence(self, rng):
        a_bits = rng.integers(0, 2, size=(2, 3, 96)).astype(np.uint8)
        b_bits = rng.integers(0, 2, size=(2, 7, 96)).astype(np.uint8)
        a_w, b_w = _pack_planar_bits(a_bits), _pack_planar_bits(b_bits)
        assert np.array_equal(
            complex_bit_gemm(a_w, b_w, 96, n_block=2),
            complex_bit_gemm(a_w, b_w, 96, n_block=128),
        )


class TestRealBitDot:
    @given(st.integers(0, 2**31), st.integers(1, 4))
    def test_xor_and_agree(self, seed, words):
        rng = np.random.default_rng(seed)
        a = rng.integers(0, 2**32, size=words, dtype=np.uint32)
        b = rng.integers(0, 2**32, size=words, dtype=np.uint32)
        k = 32 * words
        assert real_bit_dot(a, b, k) == real_bit_dot_and(a, b, k)

    @given(st.integers(0, 2**31), st.integers(1, 3))
    def test_matches_sign_arithmetic(self, seed, words):
        rng = np.random.default_rng(seed)
        k = 32 * words
        bits_a = rng.integers(0, 2, size=k).astype(np.uint8)
        bits_b = rng.integers(0, 2, size=k).astype(np.uint8)
        signs_a = bits_a.astype(np.int64) * 2 - 1
        signs_b = bits_b.astype(np.int64) * 2 - 1
        a, b = pack_bits(bits_a), pack_bits(bits_b)
        assert real_bit_dot(a, b, k) == int((signs_a * signs_b).sum())


class TestUnpackPlanar:
    def test_roundtrip(self, rng):
        bits = rng.integers(0, 2, size=(2, 3, 64)).astype(np.uint8)
        words = _pack_planar_bits(bits)
        assert np.array_equal(unpack_planar(words, 64), bits)
