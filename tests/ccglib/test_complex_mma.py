"""Complex MMA decomposition (paper §III-B 5-step schedule)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ccglib.complex_mma import (
    complex_mma_f16,
    complex_mma_f16_naive,
    reference_complex_gemm,
)
from repro.errors import ShapeError


def _planar(z: np.ndarray) -> np.ndarray:
    return np.stack([z.real, z.imag]).astype(np.float32)


@st.composite
def complex_tile(draw):
    m = draw(st.integers(1, 12))
    k = draw(st.integers(1, 24))
    n = draw(st.integers(1, 12))
    seed = draw(st.integers(0, 2**31))
    rng = np.random.default_rng(seed)
    a = (rng.normal(size=(m, k)) + 1j * rng.normal(size=(m, k))).astype(np.complex64)
    b = (rng.normal(size=(k, n)) + 1j * rng.normal(size=(k, n))).astype(np.complex64)
    return a, b


class TestFiveStepSchedule:
    @given(complex_tile())
    def test_matches_reference_within_fp16_tolerance(self, ab):
        a, b = ab
        got = complex_mma_f16(_planar(a), _planar(b))
        want = reference_complex_gemm(a, b)
        got_c = got[0] + 1j * got[1]
        # float16 inputs: relative error bounded by ~2^-10 per element times
        # accumulation; loose but meaningful bound.
        scale = max(np.abs(want).max(), 1e-3)
        assert np.abs(got_c - want).max() / scale < 5e-2

    @given(complex_tile())
    def test_naive_equals_fused(self, ab):
        # The register-negation trick changes scheduling, not results:
        # fp16 negation is exact.
        a, b = ab
        fused = complex_mma_f16(_planar(a), _planar(b))
        naive = complex_mma_f16_naive(_planar(a), _planar(b))
        assert np.allclose(fused, naive, rtol=1e-6, atol=1e-6)

    def test_accumulation(self, rng):
        a = (rng.normal(size=(4, 8)) + 1j * rng.normal(size=(4, 8))).astype(np.complex64)
        b = (rng.normal(size=(8, 4)) + 1j * rng.normal(size=(8, 4))).astype(np.complex64)
        base = complex_mma_f16(_planar(a), _planar(b))
        acc = complex_mma_f16(_planar(a), _planar(b), base.copy())
        assert np.allclose(acc, 2 * base, rtol=1e-6)

    def test_pure_real_inputs(self, rng):
        a = rng.normal(size=(3, 5)).astype(np.complex64)
        b = rng.normal(size=(5, 2)).astype(np.complex64)
        out = complex_mma_f16(_planar(a), _planar(b))
        # real x real: imaginary component exactly zero.
        assert np.all(out[1] == 0)

    def test_pure_imaginary_inputs(self, rng):
        a = (1j * rng.normal(size=(3, 5))).astype(np.complex64)
        b = (1j * rng.normal(size=(5, 2))).astype(np.complex64)
        out = complex_mma_f16(_planar(a), _planar(b))
        # i*x * i*y = -x*y: purely real and negative-definite structure.
        assert np.all(out[1] == 0)
        ref = -(a.imag.astype(np.float16).astype(np.float32)
                @ b.imag.astype(np.float16).astype(np.float32))
        assert np.allclose(out[0], ref, rtol=1e-6)

    def test_output_dtype_float32(self, rng):
        a = rng.normal(size=(2, 2)).astype(np.complex64)
        out = complex_mma_f16(_planar(a), _planar(a))
        assert out.dtype == np.float32

    def test_shape_errors(self):
        with pytest.raises(ShapeError):
            complex_mma_f16(np.zeros((3, 2, 2)), np.zeros((2, 2, 2)))
        with pytest.raises(ShapeError):
            complex_mma_f16(np.zeros((2, 2, 2)), np.zeros((2, 2, 2)),
                            np.zeros((2, 3, 3), dtype=np.float32))

    def test_fp32_accumulation_beats_fp16_accumulation(self, rng):
        # Long-K sums: fp32 accumulators (the tensor-core mode) must be far
        # more accurate than doing everything in fp16.
        k = 2048
        a = (rng.normal(size=(1, k)) + 1j * rng.normal(size=(1, k))).astype(np.complex64)
        b = (rng.normal(size=(k, 1)) + 1j * rng.normal(size=(k, 1))).astype(np.complex64)
        ref = reference_complex_gemm(a, b)[0, 0]
        got = complex_mma_f16(_planar(a), _planar(b))
        got_c = got[0, 0, 0] + 1j * got[1, 0, 0]
        all_fp16 = (a.astype(np.complex64).real.astype(np.float16).astype(np.float16) @
                    b.real.astype(np.float16)).astype(np.float32)
        # sanity: our error is small relative to the magnitude of the sum
        assert abs(got_c - ref) / max(abs(ref), 1.0) < 0.05
