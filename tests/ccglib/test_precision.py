"""Precision traits and peaks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ccglib.precision import (
    Precision,
    complex_ops,
    require_supported,
    tensor_peak_ops,
    traits,
)
from repro.errors import UnsupportedPrecisionError
from repro.gpusim.arch import FRAG_INT1_16x8x256
from repro.gpusim.specs import get_spec


class TestTraits:
    def test_float16(self):
        t = traits(Precision.FLOAT16)
        assert t.input_bytes == 2.0
        assert t.output_dtype == np.float32
        assert str(t.default_fragment) == "16x16x16"

    def test_int1_packed(self):
        t = traits(Precision.INT1)
        assert t.input_bytes == pytest.approx(1 / 8)
        assert t.input_dtype == np.uint32
        assert t.output_dtype == np.int32
        # Paper §III-A: no reason to use the small layout.
        assert t.default_fragment == FRAG_INT1_16x8x256

    def test_stage_k_matches_fragment(self):
        assert traits(Precision.INT1).stage_k == 256
        assert traits(Precision.FLOAT16).stage_k == 16


class TestPeaks:
    def test_catalog_values(self):
        assert tensor_peak_ops(get_spec("A100"), Precision.INT1) == pytest.approx(4992e12)

    def test_tf32_half_of_fp16_on_nvidia(self):
        spec = get_spec("GH200")
        assert tensor_peak_ops(spec, Precision.TF32) == pytest.approx(
            tensor_peak_ops(spec, Precision.FLOAT16) / 2
        )

    def test_tf32_on_cdna3_only_for_amd(self):
        assert tensor_peak_ops(get_spec("MI300X"), Precision.TF32) > 0
        with pytest.raises(UnsupportedPrecisionError):
            tensor_peak_ops(get_spec("MI210"), Precision.TF32)

    def test_int1_amd_raises(self):
        with pytest.raises(Exception):
            tensor_peak_ops(get_spec("W7700"), Precision.INT1)


class TestRequireSupported:
    def test_experimental_gate(self):
        with pytest.raises(UnsupportedPrecisionError, match="experimental"):
            require_supported(get_spec("A100"), Precision.TF32)
        require_supported(get_spec("A100"), Precision.TF32, experimental_ok=True)

    def test_int1_vendor_gate(self):
        require_supported(get_spec("AD4000"), Precision.INT1)
        with pytest.raises(UnsupportedPrecisionError):
            require_supported(get_spec("MI300A"), Precision.INT1)


class TestComplexOps:
    def test_paper_definition(self):
        # §IV-A: "the number of useful operations, i.e. 8 x M x N x K".
        assert complex_ops(1, 8192, 8192, 8192) == pytest.approx(8 * 8192**3)

    def test_batch_scales(self):
        assert complex_ops(256, 10, 10, 10) == 256 * complex_ops(1, 10, 10, 10)
