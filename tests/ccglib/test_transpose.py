"""Transpose/tiling kernels."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ccglib.transpose import (
    TiledMatrix,
    count_tiles,
    planar_to_kmajor,
    run_transpose_kernel,
    tile_planar,
    transpose_cost,
    untile_planar,
)
from repro.errors import ShapeError
from repro.gpusim.timing import Bound


class TestTiling:
    @given(
        st.integers(1, 40),
        st.integers(1, 40),
        st.sampled_from([(8, 8), (16, 16), (16, 8)]),
        st.integers(0, 2**31),
    )
    def test_roundtrip_with_padding(self, r, c, tile, seed):
        rng = np.random.default_rng(seed)
        planar = rng.normal(size=(2, r, c)).astype(np.float32)
        tiled = tile_planar(planar, *tile)
        assert np.array_equal(untile_planar(tiled), planar)

    def test_padded_extents(self):
        tiled = tile_planar(np.ones((2, 17, 9), dtype=np.float32), 16, 8)
        assert tiled.padded_rows == 32
        assert tiled.padded_cols == 16
        assert tiled.tiles.shape == (2, 2, 2, 16, 8)

    def test_pad_value(self):
        tiled = tile_planar(np.ones((2, 1, 1), dtype=np.float32), 4, 4, pad_value=0.0)
        assert tiled.tiles.sum() == 2.0  # only the two real values

    def test_rejects_non_planar(self):
        with pytest.raises(ShapeError):
            tile_planar(np.ones((3, 4, 4)), 2, 2)

    def test_tiles_contiguous(self):
        tiled = tile_planar(np.ones((2, 16, 16), dtype=np.float32), 8, 8)
        assert tiled.tiles.flags["C_CONTIGUOUS"]


class TestKMajor:
    def test_transposes_kn(self, rng):
        planar = rng.normal(size=(2, 5, 3)).astype(np.float32)
        km = planar_to_kmajor(planar)
        assert km.shape == (2, 3, 5)
        assert np.array_equal(km[0], planar[0].T)

    def test_rejects_bad_shape(self):
        with pytest.raises(ShapeError):
            planar_to_kmajor(np.ones((1, 2, 3)))


class TestCostModel:
    def test_memory_bound_read_write(self, a100_device):
        cost = transpose_cost(a100_device, 10**8, 2.0)
        assert cost.bound is Bound.MEMORY
        assert cost.dram_bytes == pytest.approx(2 * 10**8 * 2.0)

    def test_run_records_on_timeline(self, a100_device):
        out, cost = run_transpose_kernel(a100_device, np.ones((2, 4, 3), dtype=np.float32), 24, 4.0)
        assert out.shape == (2, 3, 4)
        assert a100_device.timeline[-1].cost is cost

    def test_cost_only_mode(self, a100_device):
        out, cost = run_transpose_kernel(a100_device, None, 24, 4.0)
        assert out is None


class TestCountTiles:
    @given(st.integers(1, 1000), st.integers(1, 1000), st.integers(1, 64), st.integers(1, 64))
    def test_covers_matrix(self, r, c, tr, tc):
        rt, ct = count_tiles(r, c, tr, tc)
        assert rt * tr >= r > (rt - 1) * tr
        assert ct * tc >= c > (ct - 1) * tc
