"""Packing kernels: sign quantization, padding, cost model."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ccglib.packing import (
    PackDirection,
    pack_sign_planar,
    packing_cost,
    run_pack_kernel,
    unpack_sign_planar,
)
from repro.errors import ShapeError
from repro.gpusim.device import Device, ExecutionMode
from repro.gpusim.timing import Bound


class TestPackSign:
    @given(st.integers(1, 4), st.integers(1, 100), st.integers(0, 2**31))
    def test_roundtrip_signs(self, rows, k, seed):
        rng = np.random.default_rng(seed)
        values = rng.normal(size=(rows, k)).astype(np.float32)
        values[values == 0] = 1.0
        packed = pack_sign_planar(values)
        signs = unpack_sign_planar(packed, k)
        assert np.array_equal(signs, np.where(values >= 0, 1, -1).astype(np.int8))

    def test_k_pad_to(self):
        values = np.ones((1, 10), dtype=np.float32)
        packed = pack_sign_planar(values, k_pad_to=256)
        assert packed.shape == (1, 8)  # 256 bits = 8 words

    def test_k_pad_too_small(self):
        with pytest.raises(ShapeError):
            pack_sign_planar(np.ones((1, 10)), k_pad_to=5)

    def test_padding_bits_are_zero(self):
        packed = pack_sign_planar(np.ones((1, 1), dtype=np.float32), k_pad_to=64)
        # first bit 1 (MSB of word 0), everything else 0 (= decimal -1).
        assert packed[0, 0] == 0x80000000
        assert packed[0, 1] == 0


class TestPackingCost:
    def test_memory_bound(self, a100_device):
        cost = packing_cost(a100_device, 10**8, 4.0)
        assert cost.bound is Bound.MEMORY
        assert cost.dram_bytes > 4e8

    def test_scales_with_values(self, a100_device):
        # Not exactly 100x: the fixed launch overhead dilutes small packs.
        small = packing_cost(a100_device, 10**6, 4.0).time_s
        big = packing_cost(a100_device, 10**8, 4.0).time_s
        assert 30 * small < big < 100 * small

    def test_bandwidth_sanity(self, a100_device):
        # Large packs approach the achievable DRAM bandwidth.
        n = 10**9
        cost = packing_cost(a100_device, n, 4.0)
        achieved = cost.dram_bytes / cost.time_s
        spec = a100_device.spec
        assert achieved <= spec.mem_bandwidth_bytes() * spec.mem_efficiency + 1
        assert achieved > 0.9 * spec.mem_bandwidth_bytes() * spec.mem_efficiency

    def test_direction_label(self, a100_device):
        assert packing_cost(a100_device, 10, 2.0, PackDirection.UNPACK).name == "unpack_bits"


class TestRunPackKernel:
    def test_functional_returns_words(self, a100_device):
        values = np.ones((2, 3, 32), dtype=np.float32)
        words, cost = run_pack_kernel(a100_device, values, values.size, 4.0)
        assert words.shape == (2, 3, 1)
        assert a100_device.timeline[-1].cost is cost

    def test_cost_only_when_values_none(self, a100_device):
        words, cost = run_pack_kernel(a100_device, None, 1000, 4.0)
        assert words is None
        assert cost.time_s > 0

    def test_dry_run(self):
        dev = Device("A100", ExecutionMode.DRY_RUN)
        words, cost = run_pack_kernel(dev, None, 10**6, 2.0)
        assert words is None
        assert len(dev.timeline) == 1


class TestScalarReference:
    """The scalar loop is the executable spec of the bit layout; the
    vectorized kernel must agree with it word for word."""

    @given(st.integers(1, 3), st.integers(1, 5), st.integers(1, 100), st.integers(0, 2**31))
    def test_vectorized_matches_scalar_bitwise(self, batch, rows, k, seed):
        from repro.ccglib.packing import pack_sign_planar_scalar

        rng = np.random.default_rng(seed)
        values = rng.normal(size=(batch, 2, rows, k)).astype(np.float32)
        pad = -(-k // 32) * 32
        vectorized = pack_sign_planar(values, k_pad_to=pad)
        scalar = pack_sign_planar_scalar(values, k_pad_to=pad)
        assert vectorized.dtype == scalar.dtype == np.uint32
        assert np.array_equal(vectorized, scalar)

    def test_known_word(self):
        from repro.ccglib.packing import pack_sign_planar_scalar

        # sample 0 -> bit 31 (MSB-first): [+, -, -, ...] packs to 0x8000...
        values = np.full((1, 32), -1.0, dtype=np.float32)
        values[0, 0] = 1.0
        assert pack_sign_planar_scalar(values)[0, 0] == np.uint32(0x80000000)
        assert pack_sign_planar(values)[0, 0] == np.uint32(0x80000000)
