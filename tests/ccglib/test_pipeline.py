"""Multi-stage buffer model and overlap factors."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ccglib.pipeline import (
    MultiStageBuffer,
    overlap_factor,
    run_pipelined_chunks,
)
from repro.ccglib.precision import Precision
from repro.errors import KernelConfigError
from repro.gpusim.arch import Architecture, capabilities


class TestOverlapFactor:
    def test_two_buffers_beat_one_on_nvidia(self):
        caps = capabilities(Architecture.AMPERE)
        for precision in (Precision.FLOAT16, Precision.INT1):
            assert overlap_factor(caps, precision, 2) > overlap_factor(caps, precision, 1)

    def test_fp16_peaks_at_two_buffers(self):
        # Large fp16 stages: deeper pipelines stop paying off (Table III
        # tunes every float16 kernel to 2 buffers).
        caps = capabilities(Architecture.AMPERE)
        assert overlap_factor(caps, Precision.FLOAT16, 2) >= overlap_factor(
            caps, Precision.FLOAT16, 4
        )

    def test_int1_keeps_gaining(self):
        caps = capabilities(Architecture.AMPERE)
        assert overlap_factor(caps, Precision.INT1, 4) > overlap_factor(caps, Precision.INT1, 2)

    def test_amd_requires_single_buffer(self):
        caps = capabilities(Architecture.CDNA3)
        assert overlap_factor(caps, Precision.FLOAT16, 1) > 0
        with pytest.raises(KernelConfigError, match="fixed to 1"):
            overlap_factor(caps, Precision.FLOAT16, 2)

    def test_depth_clamped_beyond_table(self):
        caps = capabilities(Architecture.AMPERE)
        assert overlap_factor(caps, Precision.INT1, 9) == overlap_factor(caps, Precision.INT1, 4)

    def test_zero_buffers_invalid(self):
        caps = capabilities(Architecture.AMPERE)
        with pytest.raises(KernelConfigError):
            overlap_factor(caps, Precision.FLOAT16, 0)


class TestMultiStageBuffer:
    def test_fill_then_drain(self):
        pipe = MultiStageBuffer(2)
        i0 = pipe.producer_acquire(10)
        pipe.producer_commit(i0)
        assert pipe.consumer_wait() == 10
        pipe.consumer_release()
        assert pipe.stages_in_flight == 0

    def test_overrun_detected(self):
        pipe = MultiStageBuffer(2)
        pipe.producer_acquire(0)
        pipe.producer_acquire(1)
        with pytest.raises(KernelConfigError, match="overrun"):
            pipe.producer_acquire(2)

    def test_read_before_commit_detected(self):
        pipe = MultiStageBuffer(1)
        pipe.producer_acquire(0)
        with pytest.raises(KernelConfigError, match="before its copy"):
            pipe.consumer_wait()

    def test_empty_wait_and_release(self):
        pipe = MultiStageBuffer(1)
        with pytest.raises(KernelConfigError):
            pipe.consumer_wait()
        with pytest.raises(KernelConfigError):
            pipe.consumer_release()

    def test_invalid_depth(self):
        with pytest.raises(KernelConfigError):
            MultiStageBuffer(0)


class TestPipelinedExecution:
    @given(st.integers(1, 6), st.integers(0, 40))
    def test_order_preserved(self, depth, n_chunks):
        chunks = list(range(n_chunks))
        assert run_pipelined_chunks(depth, chunks) == chunks

    @given(st.integers(1, 4))
    def test_in_flight_bounded(self, depth):
        # Indirect check via the protocol: a longer sequence than depth must
        # still complete, proving release/acquire cycling works.
        chunks = list(range(depth * 3 + 1))
        assert run_pipelined_chunks(depth, chunks) == chunks
