"""BlockExecutor: submission-order consumption, protocol, overlap model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ccglib.precision import Precision
from repro.errors import KernelConfigError
from repro.gpusim.device import Device, ExecutionMode
from repro.tcbf import BeamformerPlan, BlockExecutor, pipelined_makespan
from tests.conftest import random_complex


def dry_plan(**overrides) -> BeamformerPlan:
    kwargs = dict(n_beams=4096, n_receivers=8192, n_samples=256, precision=Precision.INT1)
    kwargs.update(overrides)
    return BeamformerPlan(Device("A100", ExecutionMode.DRY_RUN), **kwargs)


class TestConsumptionOrder:
    @pytest.mark.parametrize("num_buffers", [1, 2, 3, 4])
    def test_stream_consumes_in_submission_order(self, num_buffers):
        executor = BlockExecutor(dry_plan(), num_buffers=num_buffers)
        results, stats = executor.run_stream([None] * 8)
        assert executor.consumed == list(range(8))
        assert len(results) == 8
        assert stats.num_blocks == 8

    @pytest.mark.parametrize("num_buffers", [1, 2, 3, 4])
    def test_fewer_blocks_than_buffers(self, num_buffers):
        executor = BlockExecutor(dry_plan(), num_buffers=num_buffers)
        results, _ = executor.run_stream([None] * 2)
        assert executor.consumed == [0, 1]
        assert len(results) == 2

    def test_functional_blocks_keep_their_data(self, rng):
        # Each streamed block must come back beamformed with its own data.
        plan = BeamformerPlan(
            Device("A100"), n_beams=4, n_receivers=32, n_samples=8,
            include_transpose=False, restore_output_scale=True,
        )
        weights = random_complex(rng, (4, 32))
        blocks = [random_complex(rng, (32, 8)) for _ in range(5)]
        executor = BlockExecutor(plan, num_buffers=2)
        results, _ = executor.run_stream(blocks, weights=weights)
        for block, result in zip(blocks, results):
            assert np.allclose(result.output[0], weights @ block, atol=0.05)

    def test_in_place_weight_updates_honored(self, rng):
        # A calibration update applied in place between blocks must take
        # effect: the plan re-reads the weights array on every execution.
        plan = BeamformerPlan(
            Device("A100"), n_beams=4, n_receivers=32, n_samples=8,
            include_transpose=False,
        )
        weights = random_complex(rng, (4, 32))
        block = random_complex(rng, (32, 8))
        first = plan.execute(weights, block)
        assert np.abs(first.output).max() > 0
        weights *= 0.0
        second = plan.execute(weights, block)
        assert np.abs(second.output).max() == 0.0


class TestProtocolViolations:
    def test_submit_overrun_raises(self):
        executor = BlockExecutor(dry_plan(), num_buffers=2)
        executor.submit()
        executor.submit()
        with pytest.raises(KernelConfigError):
            executor.submit()

    def test_collect_empty_raises(self):
        executor = BlockExecutor(dry_plan(), num_buffers=2)
        with pytest.raises(KernelConfigError):
            executor.collect()

    def test_collect_beyond_staged_raises(self):
        executor = BlockExecutor(dry_plan(), num_buffers=3)
        executor.submit()
        executor.collect()
        with pytest.raises(KernelConfigError):
            executor.collect()

    def test_zero_buffers_rejected(self):
        with pytest.raises(KernelConfigError):
            BlockExecutor(dry_plan(), num_buffers=0)

    def test_rejected_block_stays_staged_until_discarded(self, rng):
        # A block that fails shape validation must not be silently dropped:
        # the caller sees the error, then explicitly discards the block and
        # the stream continues.
        from repro.errors import ShapeError

        plan = BeamformerPlan(
            Device("A100"), n_beams=4, n_receivers=32, n_samples=8,
            include_transpose=False,
        )
        executor = BlockExecutor(plan, num_buffers=2)
        executor.submit(
            random_complex(rng, (4, 32)), random_complex(rng, (31, 8))  # bad K
        )
        with pytest.raises(ShapeError):
            executor.collect()
        assert executor.blocks_in_flight == 1
        assert executor.consumed == []
        assert executor.stats().num_blocks == 0
        # Recovery: discard the bad block, stream a good one.
        assert executor.discard() == 0
        assert executor.blocks_in_flight == 0
        executor.submit(random_complex(rng, (4, 32)), random_complex(rng, (32, 8)))
        result = executor.collect()
        assert result.output is not None
        assert executor.consumed == [1]

    def test_in_flight_accounting(self):
        executor = BlockExecutor(dry_plan(), num_buffers=3)
        assert executor.blocks_in_flight == 0
        executor.submit()
        executor.submit()
        assert executor.blocks_in_flight == 2
        executor.collect()
        assert executor.blocks_in_flight == 1


class TestOverlapModel:
    def test_single_buffer_is_serial(self):
        executor = BlockExecutor(dry_plan(), num_buffers=1)
        _, stats = executor.run_stream([None] * 6)
        assert stats.pipelined_time_s == pytest.approx(stats.serial_time_s)
        assert stats.overlap_speedup == pytest.approx(1.0)

    def test_double_buffering_overlaps_stage_in(self):
        # With >=2 buffers the copy side (transpose+pack) of block i+1 hides
        # behind the GEMM of block i, so the makespan drops below serial.
        _, serial = BlockExecutor(dry_plan(), num_buffers=1).run_stream([None] * 6)
        _, overlapped = BlockExecutor(dry_plan(), num_buffers=2).run_stream([None] * 6)
        assert overlapped.pipelined_time_s < serial.serial_time_s
        assert overlapped.overlap_speedup > 1.0

    def test_makespan_never_below_compute(self):
        _, stats = BlockExecutor(dry_plan(), num_buffers=4).run_stream([None] * 6)
        assert stats.pipelined_time_s >= stats.compute_time_s

    def test_no_stage_in_means_no_overlap_to_win(self):
        plan = dry_plan(include_transpose=False, include_packing=False)
        _, stats = BlockExecutor(plan, num_buffers=2).run_stream([None] * 4)
        assert stats.stage_in_time_s == 0.0
        assert stats.pipelined_time_s == pytest.approx(stats.compute_time_s)

    def test_deeper_pipelines_monotone(self):
        times = []
        for nb in (1, 2, 3, 4):
            _, stats = BlockExecutor(dry_plan(), num_buffers=nb).run_stream([None] * 8)
            times.append(stats.pipelined_time_s)
        for shallower, deeper in zip(times, times[1:]):
            assert deeper <= shallower * (1 + 1e-9)

    def test_run_stream_refuses_manually_staged_blocks(self):
        # Mixing manual submits with run_stream would misattribute results;
        # the executor rejects the combination up front.
        executor = BlockExecutor(dry_plan(), num_buffers=3)
        executor.submit()
        with pytest.raises(KernelConfigError):
            executor.run_stream([None] * 2)
        executor.collect()  # drained: streaming works again
        _, stats = executor.run_stream([None] * 2)
        assert stats.num_blocks == 2

    def test_reset_stats_bounds_history(self):
        executor = BlockExecutor(dry_plan(), num_buffers=2)
        executor.run_stream([None] * 4)
        executor.reset_stats()
        assert executor.consumed == []
        assert executor.stats().num_blocks == 0
        # Pipeline state survives: streaming continues with fresh stats.
        _, stats = executor.run_stream([None] * 2)
        assert stats.num_blocks == 2

    def test_reused_executor_reports_per_stream_stats(self):
        # A second run_stream on the same executor must report that
        # stream's blocks only (lifetime stats stay available via stats()).
        executor = BlockExecutor(dry_plan(), num_buffers=2)
        _, first = executor.run_stream([None] * 8)
        _, second = executor.run_stream([None] * 3)
        assert first.num_blocks == 8
        assert second.num_blocks == 3
        assert second.serial_time_s == pytest.approx(first.serial_time_s * 3 / 8)
        assert executor.stats().num_blocks == 11

    def test_stats_throughput_accessors(self):
        _, stats = BlockExecutor(dry_plan(), num_buffers=2).run_stream([None] * 4)
        assert stats.blocks_per_second == pytest.approx(4 / stats.pipelined_time_s)
        assert stats.fps == pytest.approx(4 * 256 / stats.pipelined_time_s)
        assert stats.tflops > 0


class TestEmptyAndDegenerateStreams:
    def test_empty_block_sequence(self):
        # A scheduler tick with nothing queued must be a clean no-op.
        executor = BlockExecutor(dry_plan(), num_buffers=2)
        results, stats = executor.run_stream([])
        assert results == []
        assert executor.consumed == []
        assert executor.blocks_in_flight == 0
        assert stats.num_blocks == 0
        assert stats.serial_time_s == 0.0
        assert stats.pipelined_time_s == 0.0

    def test_empty_stream_stats_accessors_are_finite(self):
        _, stats = BlockExecutor(dry_plan(), num_buffers=2).run_stream([])
        assert stats.overlap_speedup == 1.0
        assert stats.blocks_per_second == 0.0
        assert stats.fps == 0.0
        assert stats.tflops == 0.0

    def test_executor_usable_after_empty_stream(self):
        executor = BlockExecutor(dry_plan(), num_buffers=2)
        executor.run_stream([])
        _, stats = executor.run_stream([None] * 3)
        assert stats.num_blocks == 3

    def test_overlap_speedup_zero_pipelined_time(self):
        # Zero makespan (e.g. a stats window with no blocks) must report a
        # neutral 1.0 speedup, not divide by zero.
        from repro.tcbf import StreamStats

        stats = StreamStats(
            num_blocks=0,
            num_buffers=2,
            n_frames_per_block=256,
            serial_time_s=0.0,
            pipelined_time_s=0.0,
            stage_in_time_s=0.0,
            compute_time_s=0.0,
            useful_ops=0.0,
        )
        assert stats.overlap_speedup == 1.0
        assert stats.blocks_per_second == 0.0
        assert stats.tflops == 0.0

    def test_overlap_speedup_negative_pipelined_time_guarded(self):
        from repro.tcbf import StreamStats

        stats = StreamStats(
            num_blocks=1,
            num_buffers=1,
            n_frames_per_block=1,
            serial_time_s=1.0,
            pipelined_time_s=-1.0,
            stage_in_time_s=0.5,
            compute_time_s=0.5,
            useful_ops=1.0,
        )
        assert stats.overlap_speedup == 1.0


class TestMakespanModel:
    def test_empty_stream(self):
        assert pipelined_makespan([], [], 2) == 0.0

    def test_serial_when_one_buffer(self):
        t_in, t_c = [1.0, 2.0, 3.0], [4.0, 5.0, 6.0]
        assert pipelined_makespan(t_in, t_c, 1) == pytest.approx(21.0)

    def test_full_overlap_with_two_buffers(self):
        # Stage-in always shorter than the previous GEMM: only the first
        # stage-in is exposed.
        t_in, t_c = [1.0, 1.0, 1.0], [4.0, 4.0, 4.0]
        assert pipelined_makespan(t_in, t_c, 2) == pytest.approx(1.0 + 12.0)

    def test_copy_bound_stream(self):
        # Stage-in dominates: the copy engine is the bottleneck.
        t_in, t_c = [4.0, 4.0, 4.0], [1.0, 1.0, 1.0]
        assert pipelined_makespan(t_in, t_c, 2) == pytest.approx(4.0 + 4.0 + 4.0 + 1.0)

    def test_mismatched_lists_raise(self):
        with pytest.raises(ValueError):
            pipelined_makespan([1.0], [1.0, 2.0], 2)

    def test_invalid_buffers_raise(self):
        with pytest.raises(KernelConfigError):
            pipelined_makespan([1.0], [1.0], 0)
