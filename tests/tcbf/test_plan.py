"""BeamformerPlan: end-to-end cost accounting, scaling, validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ccglib.gemm import Gemm
from repro.ccglib.precision import Precision
from repro.errors import ShapeError
from repro.gpusim.device import Device, ExecutionMode
from repro.tcbf import BeamformerPlan, BeamformResult, normalize_rms, rms

from tests.conftest import random_complex


class TestRmsScaling:
    def test_rms_of_constant_magnitude(self):
        # |3+4j| = 5 everywhere: the RMS is 5, while np.abs(x).std() — the
        # statistic both apps previously used — is 0 (fell back to 1.0).
        x = np.full((8, 8), 3 + 4j, dtype=np.complex64)
        assert rms(x) == pytest.approx(5.0)
        assert float(np.abs(x).std()) == 0.0

    def test_rms_nonzero_mean_exceeds_magnitude_std(self, rng):
        # For a shifted signal the std of magnitudes under-estimates energy.
        x = (rng.normal(size=512) + 10.0) + 1j * rng.normal(size=512)
        assert rms(x) > float(np.abs(x).std())
        assert rms(x) == pytest.approx(np.sqrt(np.mean(np.abs(x) ** 2)))

    def test_zero_input_falls_back_to_one(self):
        assert rms(np.zeros(16, dtype=np.complex64)) == 1.0
        assert rms(np.array([])) == 1.0

    def test_normalize_rms_round_trip(self, rng):
        x = random_complex(rng, (4, 4), scale=37.0)
        scaled, scale = normalize_rms(x)
        assert rms(scaled) == pytest.approx(1.0)
        assert np.allclose(scaled * scale, x)


class TestCostAccounting:
    def test_int1_block_cost_is_end_to_end(self):
        dev = Device("A100", ExecutionMode.DRY_RUN)
        plan = BeamformerPlan(
            dev, n_beams=4096, n_receivers=8192, n_samples=512,
            precision=Precision.INT1,
        )
        total = plan.predict_block_cost()
        gemm = plan.predict_gemm_cost()
        stage_in = plan.stage_in_cost()
        assert stage_in is not None
        assert total.time_s == pytest.approx(stage_in.time_s + gemm.time_s)
        assert total.time_s > gemm.time_s  # GEMM-only accounting would miss this

    def test_gemm_only_when_stages_disabled(self):
        dev = Device("A100", ExecutionMode.DRY_RUN)
        plan = BeamformerPlan(
            dev, n_beams=1024, n_receivers=48, n_samples=1024, batch=64,
            include_transpose=False, include_packing=False,
        )
        assert plan.stage_in_cost() is None
        assert plan.predict_block_cost() == plan.predict_gemm_cost()

    def test_float16_has_no_packing_stage(self):
        dev = Device("A100", ExecutionMode.DRY_RUN)
        plan = BeamformerPlan(dev, n_beams=256, n_receivers=128, n_samples=256)
        result = plan.execute()
        assert [c.name for c in result.costs] == ["transpose", "gemm_float16"]

    def test_int1_stage_order(self):
        dev = Device("A100", ExecutionMode.DRY_RUN)
        plan = BeamformerPlan(
            dev, n_beams=256, n_receivers=512, n_samples=256,
            precision=Precision.INT1,
        )
        names = [c.name for c in plan.execute().costs]
        assert names[0] == "transpose"
        assert names[1] == "pack_bits"
        assert names[2].startswith("gemm_int1")

    def test_stages_recorded_on_device_timeline(self):
        dev = Device("A100", ExecutionMode.DRY_RUN)
        plan = BeamformerPlan(
            dev, n_beams=64, n_receivers=256, n_samples=64,
            precision=Precision.INT1,
        )
        plan.execute()
        assert len(dev.timeline) == 3

    def test_prepare_weights_excluded_from_block(self):
        dev = Device("A100", ExecutionMode.DRY_RUN)
        plan = BeamformerPlan(
            dev, n_beams=64, n_receivers=256, n_samples=64,
            precision=Precision.INT1,
        )
        prep = plan.prepare_weights()
        assert prep is plan.weight_prep_cost
        assert prep.time_s > 0
        # weight prep = transpose + pack; the per-block cost is unchanged.
        assert len(dev.timeline) == 2
        assert plan.predict_block_cost().time_s == pytest.approx(
            plan.stage_in_cost().time_s + plan.predict_gemm_cost().time_s
        )

    def test_prepare_weights_float16_transpose_only(self):
        dev = Device("A100", ExecutionMode.DRY_RUN)
        plan = BeamformerPlan(dev, n_beams=64, n_receivers=256, n_samples=64)
        plan.prepare_weights()
        assert len(dev.timeline) == 1
        assert dev.timeline[0].cost.name == "transpose"


class TestFunctionalExecution:
    def test_matches_direct_gemm(self, rng):
        w = random_complex(rng, (2, 8, 32))
        d = random_complex(rng, (2, 32, 16))
        plan = BeamformerPlan(
            Device("A100"), n_beams=8, n_receivers=32, n_samples=16, batch=2,
            include_transpose=False, include_packing=False,
            restore_output_scale=True,
        )
        out = plan.execute(w, d).output
        assert np.allclose(out, w @ d, atol=0.05)

    def test_scale_restoration(self, rng):
        # With restore_output_scale the result is in input units regardless
        # of the operand magnitude.
        w = random_complex(rng, (1, 8, 32))
        d = random_complex(rng, (1, 32, 16), scale=500.0)
        plan = BeamformerPlan(
            Device("A100"), n_beams=8, n_receivers=32, n_samples=16,
            include_transpose=False, restore_output_scale=True,
        )
        out = plan.execute(w, d).output
        assert np.allclose(out, w @ d, rtol=5e-3, atol=0.5)

    def test_unbatched_operands_accepted(self, rng):
        w = random_complex(rng, (8, 32))
        d = random_complex(rng, (32, 16))
        plan = BeamformerPlan(
            Device("A100"), n_beams=8, n_receivers=32, n_samples=16,
            include_transpose=False,
        )
        assert plan.execute(w, d).output.shape == (1, 8, 16)

    def test_missing_operands_raise(self):
        plan = BeamformerPlan(Device("A100"), n_beams=8, n_receivers=32, n_samples=16)
        with pytest.raises(ShapeError):
            plan.execute()
        with pytest.raises(ShapeError):
            plan.execute(np.ones((8, 32), dtype=np.complex64), None)

    def test_shape_mismatch_raises_before_recording(self, rng):
        dev = Device("A100")
        plan = BeamformerPlan(dev, n_beams=8, n_receivers=32, n_samples=16)
        with pytest.raises(ShapeError):
            plan.execute(random_complex(rng, (8, 32)), random_complex(rng, (31, 16)))
        assert len(dev.timeline) == 0  # nothing charged for a rejected block

    def test_dry_run_ignores_operands(self):
        plan = BeamformerPlan(
            Device("A100", ExecutionMode.DRY_RUN),
            n_beams=8, n_receivers=32, n_samples=16,
        )
        result = plan.execute()
        assert result.output is None
        assert result.total.time_s > 0


class TestBeamformResult:
    def _result(self) -> BeamformResult:
        plan = BeamformerPlan(
            Device("A100", ExecutionMode.DRY_RUN),
            n_beams=1024, n_receivers=48, n_samples=1024, batch=256,
            include_transpose=False, include_packing=False,
        )
        return plan.execute()

    def test_domain_aliases(self):
        r = self._result()
        assert r.beams is r.output
        assert r.frames is r.output
        assert r.cost is r.total

    def test_throughput_accessors(self):
        r = self._result()
        assert r.tflops == pytest.approx(r.total.ops_per_second / 1e12)
        assert r.tops == r.tflops
        assert r.fps == pytest.approx(1024 / r.total.time_s)
        assert r.time_s == r.total.time_s

    def test_fps_requires_frame_count(self):
        r = self._result()
        r.n_frames = None
        with pytest.raises(ValueError):
            _ = r.fps

    def test_useful_ops_match_complex_gemm_count(self):
        r = self._result()
        assert r.total.useful_ops == pytest.approx(8 * 256 * 1024 * 1024 * 48)

    def test_tflops_excludes_helper_kernel_element_moves(self):
        # transpose/pack report element moves in useful_ops; the TFLOPs
        # metric must count the GEMM's FLOPs only (over end-to-end time).
        plan = BeamformerPlan(
            Device("A100", ExecutionMode.DRY_RUN),
            n_beams=256, n_receivers=512, n_samples=256,
            precision=Precision.INT1,
        )
        r = plan.execute()
        gemm = r.costs[-1]
        assert r.gemm_cost is gemm
        assert r.tflops == pytest.approx(gemm.useful_ops / r.total.time_s / 1e12)
        assert r.total.useful_ops > gemm.useful_ops  # the mix-up this guards


class TestPlanIntrospection:
    def test_shape_and_padding(self):
        plan = BeamformerPlan(
            Device("A100"), n_beams=9, n_receivers=50, n_samples=100, batch=3,
        )
        assert plan.shape == (3, 9, 50, 100)
        assert plan.padded_k % 16 == 0
        assert plan.padded_k >= 50

    def test_params_resolved_from_gemm(self):
        plan = BeamformerPlan(Device("A100"), n_beams=16, n_receivers=64, n_samples=16)
        ref = Gemm(Device("A100"), Precision.FLOAT16, batch=1, m=16, n=16, k=64)
        assert plan.params == ref.params
