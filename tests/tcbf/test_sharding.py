"""ShardedBeamformer: splits, merged outputs, aggregate throughput."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ccglib.precision import Precision
from repro.errors import ShapeError
from repro.gpusim.device import Device, ExecutionMode
from repro.tcbf import (
    BeamformerPlan,
    ShardedBeamformer,
    merge_batch_operands,
    split_batched_output,
    split_extent,
)
from tests.conftest import random_complex, random_pm1_complex

#: the paper's LOFAR benchmark shape at the typical 48-station configuration.
LOFAR = dict(n_beams=1024, n_receivers=48, n_samples=1024, batch=256)


def dry_devices(n: int, gpu: str = "A100") -> list[Device]:
    return [Device(gpu, ExecutionMode.DRY_RUN) for _ in range(n)]


class TestSplitExtent:
    def test_even(self):
        assert split_extent(256, 2) == [128, 128]
        assert split_extent(256, 4) == [64, 64, 64, 64]

    def test_uneven_front_loaded(self):
        assert split_extent(5, 2) == [3, 2]
        assert split_extent(10, 3) == [4, 3, 3]

    def test_errors(self):
        with pytest.raises(ShapeError):
            split_extent(1, 2)
        with pytest.raises(ShapeError):
            split_extent(4, 0)

    @given(
        total=st.integers(min_value=1, max_value=10_000),
        parts=st.integers(min_value=1, max_value=64),
    )
    def test_remainder_distribution_invariants(self, total, parts):
        # The scheduler leans on these when it splits merged batches:
        # exact coverage, near-equality, front-loaded remainder, no empties.
        if total < parts:
            with pytest.raises(ShapeError):
                split_extent(total, parts)
            return
        sizes = split_extent(total, parts)
        assert len(sizes) == parts
        assert sum(sizes) == total
        assert all(s >= 1 for s in sizes)
        assert max(sizes) - min(sizes) <= 1
        # The first total % parts shards carry the remainder, in order.
        extra = total % parts
        assert sizes == sorted(sizes, reverse=True)
        assert sizes.count(max(sizes)) == (extra if extra else parts)


class TestBatchMergeHelpers:
    def test_merge_then_split_round_trip(self, rng):
        # merge_batch_operands stacks requests; split_batched_output hands
        # each request back exactly its slice.
        w = random_complex(rng, (2, 4, 8))
        blocks = [random_complex(rng, (2, 8, 6)) for _ in range(3)]
        mw, md = merge_batch_operands(w, blocks)
        assert mw.shape == (6, 4, 8)
        assert md.shape == (6, 8, 6)
        out = np.einsum("bmk,bkn->bmn", mw, md)
        parts = split_batched_output(out, [2, 2, 2])
        for block, part in zip(blocks, parts):
            assert np.allclose(part, np.einsum("bmk,bkn->bmn", w, block))

    def test_merge_accepts_2d_weights(self, rng):
        w = random_complex(rng, (4, 8))
        blocks = [random_complex(rng, (8, 6)) for _ in range(2)]
        mw, md = merge_batch_operands(w, blocks)
        assert mw.shape == (2, 4, 8)
        assert md.shape == (2, 8, 6)

    def test_merge_rejects_incompatible_blocks(self, rng):
        w = random_complex(rng, (2, 4, 8))
        with pytest.raises(ShapeError):
            merge_batch_operands(w, [])
        with pytest.raises(ShapeError):
            merge_batch_operands(w, [random_complex(rng, (2, 7, 6))])  # bad K
        with pytest.raises(ShapeError):
            merge_batch_operands(
                w, [random_complex(rng, (2, 8, 6)), random_complex(rng, (2, 8, 5))]
            )

    def test_split_validates_extents(self, rng):
        out = random_complex(rng, (6, 4, 5))
        with pytest.raises(ShapeError):
            split_batched_output(out, [])
        with pytest.raises(ShapeError):
            split_batched_output(out, [4, 0, 2])
        with pytest.raises(ShapeError):
            split_batched_output(out, [4, 4])
        parts = split_batched_output(out, [4, 2])
        assert [p.shape[0] for p in parts] == [4, 2]
        # Views, not copies: the serving layer returns slices of the block.
        assert parts[0].base is not None


class TestAggregateThroughput:
    def test_two_devices_near_double_lofar(self):
        # The acceptance bar: batch-parallel LOFAR-sized problem, >=1.8x the
        # single-device modelled throughput on two devices.
        single = BeamformerPlan(
            Device("A100", ExecutionMode.DRY_RUN), **LOFAR,
            include_transpose=False, include_packing=False,
        ).predict_gemm_cost()
        sharded = ShardedBeamformer(
            dry_devices(2), **LOFAR,
            include_transpose=False, include_packing=False,
        )
        result = sharded.execute()
        assert result.ops_per_second >= 1.8 * single.ops_per_second
        assert result.useful_ops == pytest.approx(single.useful_ops)
        assert sharded.predicted_throughput() == pytest.approx(result.ops_per_second)

    def test_four_devices_scale_further(self):
        single = BeamformerPlan(
            Device("A100", ExecutionMode.DRY_RUN), **LOFAR,
            include_transpose=False, include_packing=False,
        ).predict_gemm_cost()
        result = ShardedBeamformer(
            dry_devices(4), **LOFAR,
            include_transpose=False, include_packing=False,
        ).execute()
        assert result.ops_per_second >= 3.6 * single.ops_per_second

    def test_even_split_balances_load(self):
        result = ShardedBeamformer(dry_devices(2), **LOFAR).execute()
        assert result.shard_sizes == [128, 128]
        assert result.load_balance == pytest.approx(1.0)

    def test_wall_time_is_slowest_shard(self):
        # Heterogeneous fleet: the big GPU waits for the small one.
        devices = [
            Device("GH200", ExecutionMode.DRY_RUN),
            Device("AD4000", ExecutionMode.DRY_RUN),
        ]
        result = ShardedBeamformer(
            devices, **LOFAR, include_transpose=False, include_packing=False
        ).execute()
        times = [s.total.time_s for s in result.shards]
        assert result.wall_time_s == max(times)
        assert result.load_balance < 1.0

    def test_per_device_timelines_populated(self):
        devices = dry_devices(3)
        ShardedBeamformer(devices, **LOFAR).execute()
        for device in devices:
            assert len(device.timeline) >= 1

    def test_dry_run_ignores_operands(self):
        # Like the single-device plan, dry-run shards predict cost only and
        # never touch (or validate) the operands.
        result = ShardedBeamformer(dry_devices(2), **LOFAR).execute(
            np.zeros((1,)), np.zeros((1,))
        )
        assert result.output is None
        assert all(s.output is None for s in result.shards)

    def test_energy_sums_over_shards(self):
        result = ShardedBeamformer(dry_devices(2), **LOFAR).execute()
        assert result.energy_j == pytest.approx(sum(s.total.energy_j for s in result.shards))


class TestFunctionalSharding:
    def test_batch_shard_merges_exactly(self, rng):
        # int1 outputs are exact small integers, so the sharded result must
        # equal the single-device result bit for bit.
        batch, m, k, n = 4, 8, 64, 16
        w = random_pm1_complex(rng, (batch, m, k))
        d = random_pm1_complex(rng, (batch, k, n))
        kwargs = dict(
            n_beams=m, n_receivers=k, n_samples=n, batch=batch,
            precision=Precision.INT1,
        )
        single = BeamformerPlan(Device("A100"), **kwargs).execute(w, d)
        sharded = ShardedBeamformer(
            [Device("A100"), Device("A100")], shard_dim="batch", **kwargs
        ).execute(w, d)
        assert sharded.output.shape == single.output.shape
        assert np.array_equal(sharded.output, single.output)

    def test_beam_shard_merges_exactly(self, rng):
        m, k, n = 8, 64, 16
        w = random_pm1_complex(rng, (1, m, k))
        d = random_pm1_complex(rng, (1, k, n))
        kwargs = dict(n_beams=m, n_receivers=k, n_samples=n, precision=Precision.INT1)
        single = BeamformerPlan(Device("A100"), **kwargs).execute(w, d)
        sharded = ShardedBeamformer(
            [Device("A100"), Device("A100")], shard_dim="beams", **kwargs
        ).execute(w, d)
        assert np.array_equal(sharded.output, single.output)

    def test_batch_shard_uses_one_global_scale(self, rng):
        # Without output-scale restoration, per-shard RMS would normalize a
        # loud batch item differently from a quiet one; the sharded result
        # must match the unsharded plan bit for bit instead.
        batch, m, k, n = 2, 4, 32, 8
        w = random_complex(rng, (batch, m, k))
        d = random_complex(rng, (batch, k, n))
        d[1] *= 100.0  # item 1 is 100x louder than item 0
        kwargs = dict(n_beams=m, n_receivers=k, n_samples=n, batch=batch,
                      include_transpose=False, restore_output_scale=False)
        single = BeamformerPlan(Device("A100"), **kwargs).execute(w, d)
        sharded = ShardedBeamformer(
            [Device("A100"), Device("A100")], shard_dim="batch", **kwargs
        ).execute(w, d)
        assert np.array_equal(sharded.output, single.output)

    def test_gemm_only_ops_accounting(self):
        # With streaming stages enabled, aggregate ops must still count the
        # GEMM's FLOPs only — consistent with BeamformResult.tflops.
        kwargs = dict(n_beams=256, n_receivers=512, n_samples=256,
                      precision=Precision.INT1)
        sharded = ShardedBeamformer(dry_devices(2), batch=2, shard_dim="batch", **kwargs)
        result = sharded.execute()
        gemm_ops = sum(s.gemm_cost.useful_ops for s in result.shards)
        assert result.useful_ops == pytest.approx(gemm_ops)
        assert result.useful_ops < sum(s.total.useful_ops for s in result.shards)
        assert sharded.predicted_throughput() == pytest.approx(result.ops_per_second)

    def test_beam_shard_restores_scale_like_single(self, rng):
        # Beams mode pre-normalizes the shared data once (shards see unit
        # scale); the restored output must still match the unsharded plan.
        m, k, n = 8, 32, 8
        w = random_complex(rng, (1, m, k))
        d = random_complex(rng, (1, k, n), scale=50.0)
        kwargs = dict(n_beams=m, n_receivers=k, n_samples=n,
                      include_transpose=False, restore_output_scale=True)
        single = BeamformerPlan(Device("A100"), **kwargs).execute(w, d)
        sharded = ShardedBeamformer(
            [Device("A100"), Device("A100")], shard_dim="beams", **kwargs
        ).execute(w, d)
        assert np.array_equal(sharded.output, single.output)

    def test_float16_batch_shard_close(self, rng):
        batch, m, k, n = 2, 4, 32, 8
        w = random_complex(rng, (batch, m, k))
        d = random_complex(rng, (batch, k, n))
        kwargs = dict(n_beams=m, n_receivers=k, n_samples=n, batch=batch,
                      include_transpose=False, restore_output_scale=True)
        sharded = ShardedBeamformer(
            [Device("A100"), Device("A100")], shard_dim="batch", **kwargs
        ).execute(w, d)
        assert np.allclose(sharded.output, w @ d, atol=0.05)


class TestValidation:
    def test_no_devices(self):
        with pytest.raises(ShapeError):
            ShardedBeamformer([], **LOFAR)

    def test_bad_shard_dim(self):
        with pytest.raises(ShapeError):
            ShardedBeamformer(dry_devices(2), shard_dim="samples", **LOFAR)

    def test_oversized_operands_rejected_not_truncated(self, rng):
        # An operand larger than the declared problem along the sharded
        # axis must raise like the single-device plan, not be sliced down.
        kwargs = dict(n_beams=4, n_receivers=32, n_samples=8, batch=4,
                      include_transpose=False)
        sharded = ShardedBeamformer([Device("A100"), Device("A100")], shard_dim="batch", **kwargs)
        with pytest.raises(ShapeError):
            sharded.execute(random_complex(rng, (6, 4, 32)), random_complex(rng, (6, 32, 8)))
        beam_sharded = ShardedBeamformer(
            [Device("A100"), Device("A100")], shard_dim="beams",
            n_beams=8, n_receivers=32, n_samples=8, include_transpose=False,
        )
        with pytest.raises(ShapeError):
            beam_sharded.execute(random_complex(rng, (1, 12, 32)), random_complex(rng, (1, 32, 8)))

    def test_kernel_variant_kwargs_forwarded(self):
        # AND-mode int1 (Hopper-style) must be shardable too.
        from repro.gpusim.arch import BitOp

        sharded = ShardedBeamformer(
            dry_devices(2), n_beams=64, n_receivers=256, n_samples=64,
            batch=2, precision=Precision.INT1, bit_op=BitOp.AND,
        )
        result = sharded.execute()
        assert all(s.gemm_cost.name == "gemm_int1_and" for s in result.shards)

    def test_mixed_mode_fleet_rejected(self):
        from repro.errors import DeviceError

        with pytest.raises(DeviceError):
            ShardedBeamformer([Device("A100"), Device("A100", ExecutionMode.DRY_RUN)], **LOFAR)

    def test_more_devices_than_units(self):
        with pytest.raises(ShapeError):
            ShardedBeamformer(dry_devices(3), n_beams=16, n_receivers=8, n_samples=16, batch=2)


class TestDegenerateCases:
    """Satellite coverage: the edges the serving tier's split path leans on."""

    def test_split_more_parts_than_total(self):
        with pytest.raises(ShapeError, match="cannot split"):
            split_extent(3, 4)

    def test_split_single_unit_single_part(self):
        assert split_extent(1, 1) == [1]

    def test_merge_single_element_batch(self, rng):
        # One request is a legal merge: weights repeat once, data pass through.
        weights = random_complex(rng, (1, 4, 8))
        block = random_complex(rng, (1, 8, 6))
        merged_w, merged_d = merge_batch_operands(weights, [block])
        assert merged_w.shape == (1, 4, 8)
        assert np.array_equal(merged_d, block)
        [back] = split_batched_output(merged_d, [1])
        assert np.array_equal(back, block)

    def test_merge_empty_request_list_rejected(self, rng):
        with pytest.raises(ShapeError, match="empty request list"):
            merge_batch_operands(random_complex(rng, (1, 4, 8)), [])

    def test_split_output_empty_extents_rejected(self, rng):
        with pytest.raises(ShapeError, match="empty extent list"):
            split_batched_output(random_complex(rng, (2, 4, 6)), [])

    def test_load_balance_on_unequal_shards(self):
        # 3 batch units over 2 devices -> [2, 1]: the 2-unit shard takes
        # longer, so balance = mean/max sits strictly inside (0.5, 1).
        sharded = ShardedBeamformer(
            dry_devices(2),
            n_beams=2048,
            n_receivers=64,
            n_samples=2048,
            batch=3,
            include_transpose=False,
        )
        result = sharded.execute()
        assert sharded.shard_sizes == [2, 1]
        times = [s.total.time_s for s in result.shards]
        assert times[0] > times[1]
        expected = (sum(times) / 2.0) / max(times)
        assert result.load_balance == pytest.approx(expected)
        assert 0.5 < result.load_balance < 1.0

    def test_load_balance_even_split_is_unity(self):
        sharded = ShardedBeamformer(
            dry_devices(2),
            n_beams=256,
            n_receivers=48,
            n_samples=512,
            batch=4,
            include_transpose=False,
        )
        assert sharded.execute().load_balance == pytest.approx(1.0)


class TestWeightedSplit:
    def test_proportional_to_weights(self):
        from repro.tcbf import split_extent_weighted

        assert split_extent_weighted(300, [1.0, 2.0]) == [100, 200]
        assert split_extent_weighted(10, [1.0, 1.0]) == [5, 5]

    def test_largest_remainder_is_deterministic(self):
        from repro.tcbf import split_extent_weighted

        # 10 over 1:1:1 -> remainder goes to the lowest indices.
        assert split_extent_weighted(10, [1.0, 1.0, 1.0]) == [4, 3, 3]

    def test_covers_total_and_no_empty_shards(self):
        from repro.tcbf import split_extent_weighted

        extents = split_extent_weighted(7, [1000.0, 1.0, 1.0])
        assert sum(extents) == 7
        assert all(e >= 1 for e in extents)
        assert extents[0] == max(extents)

    def test_errors(self):
        from repro.tcbf import split_extent_weighted

        with pytest.raises(ShapeError):
            split_extent_weighted(5, [])
        with pytest.raises(ShapeError):
            split_extent_weighted(5, [1.0, -1.0])
        with pytest.raises(ShapeError):
            split_extent_weighted(1, [1.0, 1.0])


class TestBuildShardPlans:
    def test_matches_sharded_beamformer_construction(self):
        from repro.tcbf import build_shard_plans

        devices = dry_devices(2)
        sharded = ShardedBeamformer(
            devices, n_beams=512, n_receivers=48, n_samples=256, batch=6,
            include_transpose=False,
        )
        rebuilt = build_shard_plans(
            devices,
            sharded.shard_sizes,
            n_beams=512,
            n_receivers=48,
            n_samples=256,
            batch=6,
            include_transpose=False,
        )
        assert [p.cache_key for p in rebuilt] == [p.cache_key for p in sharded.plans]

    def test_validates_inputs(self):
        from repro.tcbf import build_shard_plans

        with pytest.raises(ShapeError, match="shard_dim"):
            build_shard_plans(
                dry_devices(1), [4], n_beams=8, n_receivers=8, n_samples=8,
                shard_dim="voxels",
            )
        with pytest.raises(ShapeError, match="shard sizes"):
            build_shard_plans(
                dry_devices(2), [4], n_beams=8, n_receivers=8, n_samples=8,
            )
