"""Property: int1 and float16 TCBF outputs agree on random problems.

The paper's 1-bit mode keeps only the sign of the operands, so absolute
values differ from the float16 reconstruction — but the two outputs must
stay strongly correlated and mostly sign-consistent (that is why power
Doppler survives 1-bit quantization, §V-A). Verified property-based over
random beamforming shapes and data.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ccglib.precision import Precision
from repro.gpusim.device import Device
from repro.tcbf import BeamformerPlan


@st.composite
def beamform_problems(draw):
    # Enough output elements (m*n >= 64) and summation depth (k >= 128) for
    # the correlation estimate itself to be stable.
    m = draw(st.integers(min_value=8, max_value=16))
    k = draw(st.integers(min_value=128, max_value=256))
    n = draw(st.integers(min_value=8, max_value=24))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    return m, k, n, seed


@given(beamform_problems())
@settings(max_examples=15, deadline=None)
def test_int1_tracks_float16_in_sign_and_correlation(problem):
    m, k, n, seed = problem
    rng = np.random.default_rng(seed)
    weights = (rng.normal(size=(m, k)) + 1j * rng.normal(size=(m, k))).astype(np.complex64)
    data = (rng.normal(size=(k, n)) + 1j * rng.normal(size=(k, n))).astype(np.complex64)

    def run(precision):
        plan = BeamformerPlan(
            Device("A100"),
            n_beams=m,
            n_receivers=k,
            n_samples=n,
            precision=precision,
            include_transpose=False,
            include_packing=False,
        )
        return plan.execute(weights, data).output.ravel()

    int1 = run(Precision.INT1)
    f16 = run(Precision.FLOAT16)

    for component in (np.real, np.imag):
        a, b = component(int1), component(f16)
        assert np.corrcoef(a, b)[0, 1] > 0.3
        assert np.mean(np.sign(a) == np.sign(b)) > 0.5
