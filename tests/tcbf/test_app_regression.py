"""Regression: the domain apps are thin TCBF adapters with unchanged behavior.

``LOFARBeamformer.form_beams`` and ``UltrasoundBeamformer.reconstruct`` must
produce outputs and recorded ``KernelCost`` totals identical to the direct
ccglib composition they previously hand-rolled (with the corrected RMS
operand normalization), while delegating to :mod:`repro.tcbf`.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.radioastronomy import BeamformOutput, LOFARBeamformer
from repro.apps.ultrasound import ReconstructionResult, UltrasoundBeamformer
from repro.apps.ultrasound.array_geometry import TransducerArray, VoxelGrid
from repro.apps.ultrasound.measurement import EnsembleConfig, simulate_frames
from repro.apps.ultrasound.model_matrix import ImagingConfig, build_model_matrix
from repro.apps.ultrasound.phantom import make_phantom
from repro.ccglib.gemm import Gemm
from repro.ccglib.packing import packing_cost
from repro.ccglib.precision import Precision, traits
from repro.ccglib.transpose import transpose_cost
from repro.gpusim.device import Device, ExecutionMode
from repro.tcbf import BeamformerPlan, BeamformResult
from tests.conftest import random_complex


@pytest.fixture(scope="module")
def ultrasound_setup():
    cfg = ImagingConfig(
        array=TransducerArray(4, 4),
        grid=VoxelGrid(shape=(8, 8, 6)),
        n_frequencies=10,
        n_transmissions=5,
    )
    model = build_model_matrix(cfg)
    phantom = make_phantom(cfg.grid, n_generations=3)
    frames = simulate_frames(model, phantom, EnsembleConfig(n_frames=32))
    return model, frames


class TestSharedResultType:
    def test_dataclasses_deduplicated(self):
        # The per-app result types are the one shared TCBF record now.
        assert BeamformOutput is BeamformResult
        assert ReconstructionResult is BeamformResult

    def test_apps_delegate_to_tcbf(self):
        lofar = LOFARBeamformer(Device("A100", ExecutionMode.DRY_RUN), 16, 8, 32, 2)
        us = UltrasoundBeamformer(
            Device("A100", ExecutionMode.DRY_RUN), n_voxels=1024, k=2048, n_frames=64
        )
        assert isinstance(lofar.plan, BeamformerPlan)
        assert isinstance(us.plan, BeamformerPlan)


class TestLOFARRegression:
    def test_output_and_cost_match_direct_ccglib(self, rng):
        batch, m, k, n = 4, 9, 16, 128
        weights = random_complex(rng, (batch, m, k))
        data = random_complex(rng, (batch, k, n), scale=3.0)

        out = LOFARBeamformer(Device("A100"), m, k, n, batch).form_beams(weights, data)

        # The hand-rolled path the app used before the refactor, with the
        # corrected unit-RMS operand normalization.
        ref_dev = Device("A100")
        plan = Gemm(ref_dev, Precision.FLOAT16, batch=batch, m=m, n=n, k=k)
        scale = float(np.sqrt(np.mean(np.abs(data) ** 2)))
        ref = plan.run(weights.astype(np.complex64), (data / scale).astype(np.complex64))
        assert np.array_equal(out.beams, ref.output * scale)
        assert out.cost == ref.cost  # full KernelCost equality, field by field

    def test_gemm_is_the_only_recorded_kernel(self, rng):
        # LOFAR accounting is GEMM-only: data are already GPU-resident.
        dev = Device("A100")
        bf = LOFARBeamformer(dev, 9, 16, 128, 4)
        bf.form_beams(random_complex(rng, (4, 9, 16)), random_complex(rng, (4, 16, 128)))
        assert [e.cost.name for e in dev.timeline] == ["gemm_float16"]

    def test_predict_cost_unchanged(self):
        dev = Device("GH200", ExecutionMode.DRY_RUN)
        bf = LOFARBeamformer(dev, 1024, 48, 1024, 256)
        ref = Gemm(dev, Precision.FLOAT16, batch=256, m=1024, n=1024, k=48)
        assert bf.predict_cost() == ref.predict_cost()


class TestUltrasoundRegression:
    def test_output_and_cost_match_direct_ccglib(self, ultrasound_setup):
        model, frames = ultrasound_setup
        bf = UltrasoundBeamformer(Device("A100"), model, n_frames=32, precision=Precision.INT1)
        result = bf.reconstruct(frames)

        ref_dev = Device("A100")
        plan = Gemm(
            ref_dev, Precision.INT1, batch=1, m=model.n_voxels, n=32, k=model.k,
            params=bf.params,
        )
        scale = float(np.sqrt(np.mean(np.abs(frames) ** 2)))
        ref = plan.run(
            model.matched_filter()[None, ...].astype(np.complex64),
            (frames / scale)[None, ...].astype(np.complex64),
        )
        assert np.array_equal(result.frames, ref.output[0])

        # Cost totals: per-frame transpose + 1-bit packing + GEMM.
        n_values = 2 * model.k * 32
        t = transpose_cost(ref_dev, n_values, traits(Precision.INT1).input_bytes)
        p = packing_cost(ref_dev, n_values, 4.0)
        assert [c.name for c in result.costs] == ["transpose", "pack_bits", ref.cost.name]
        assert result.total.time_s == pytest.approx(
            t.time_s + p.time_s + ref.cost.time_s, rel=1e-12
        )
        assert result.total.energy_j == pytest.approx(
            t.energy_j + p.energy_j + ref.cost.energy_j, rel=1e-12
        )
        assert result.total.dram_bytes == pytest.approx(
            t.dram_bytes + p.dram_bytes + ref.cost.dram_bytes
        )

    def test_model_prep_cost_matches_direct_composition(self, ultrasound_setup):
        model, _ = ultrasound_setup
        bf = UltrasoundBeamformer(Device("A100"), model, n_frames=32, precision=Precision.INT1)
        bf.prepare_model()
        ref_dev = Device("A100")
        n_values = 2 * model.n_voxels * model.k
        t = transpose_cost(ref_dev, n_values, traits(Precision.INT1).input_bytes)
        p = packing_cost(ref_dev, n_values, 4.0)
        assert bf.model_prep_cost.time_s == pytest.approx(t.time_s + p.time_s, rel=1e-12)
        assert bf.model_prep_cost.name == "model_prep"

    def test_scale_invariance_of_image(self, ultrasound_setup):
        # The RMS normalization makes the reconstruction scale-free: int1
        # sign quantization ignores positive scale entirely.
        model, frames = ultrasound_setup
        a = UltrasoundBeamformer(
            Device("A100"), model, n_frames=32, precision=Precision.INT1
        ).reconstruct(frames)
        b = UltrasoundBeamformer(
            Device("A100"), model, n_frames=32, precision=Precision.INT1
        ).reconstruct(frames * 1e4)
        assert np.array_equal(a.frames, b.frames)
