"""The paper's headline claims, checked end-to-end on the simulated stack.

Abstract: "In the 16-bit mode, it achieves over 600 TeraOps/s on an AMD
MI300X GPU, while approaching 1 TeraOp/J. In the 1-bit mode, it breaks the
3 PetaOps/s barrier and achieves over 10 TeraOps/J on an NVIDIA A100 GPU.
... the TCBF is up to a factor 10-100 faster than previous GPU-based
beamforming implementations, as well as an order of magnitude more energy
efficient."
"""

from __future__ import annotations

import pytest

from repro.apps.radioastronomy.beamformer import LOFARBeamformer
from repro.apps.radioastronomy.reference import ReferenceBeamformer
from repro.ccglib.perfmodel import model_gemm
from repro.ccglib.precision import Precision
from repro.ccglib.tuning import published_tuning
from repro.gpusim.device import Device, ExecutionMode
from repro.gpusim.specs import get_spec
from repro.kerneltuner.tuner import PAPER_TUNING_PROBLEMS
from repro.util.units import peta, tera


def _tuned_cost(gpu: str, precision: Precision):
    spec = get_spec(gpu)
    return model_gemm(
        spec, precision, PAPER_TUNING_PROBLEMS[precision],
        published_tuning(gpu, precision).params,
    )


class TestAbstractClaims:
    def test_mi300x_over_600_tops_fp16(self):
        cost = _tuned_cost("MI300X", Precision.FLOAT16)
        assert cost.ops_per_second > 600 * tera

    def test_mi300x_approaching_one_top_per_joule(self):
        cost = _tuned_cost("MI300X", Precision.FLOAT16)
        assert 0.8 * tera < cost.ops_per_joule < 1.0 * tera

    def test_a100_breaks_3_petaops_int1(self):
        cost = _tuned_cost("A100", Precision.INT1)
        assert cost.ops_per_second > 3 * peta

    def test_a100_over_10_tops_per_joule_int1(self):
        cost = _tuned_cost("A100", Precision.INT1)
        assert cost.ops_per_joule > 10 * tera


class TestUltrasoundClaims:
    def test_three_orders_of_magnitude_vs_octave(self):
        # "The TCBF is nearly three orders of magnitude faster" (§V-A).
        from repro.bench.fig6 import (
            OCTAVE_OPENCL_EFFICIENCY,
            RECORDED_K,
            RECORDED_M,
            RECORDED_N,
        )
        from repro.apps.ultrasound.imaging import UltrasoundBeamformer
        from repro.ccglib.precision import complex_ops

        gh200 = Device("GH200", ExecutionMode.DRY_RUN)
        bf = UltrasoundBeamformer(
            gh200, n_voxels=RECORDED_M, k=RECORDED_K, n_frames=RECORDED_N,
            precision=Precision.INT1,
        )
        tcbf_s = bf.reconstruct().time_s
        ops = complex_ops(1, RECORDED_M, RECORDED_N, RECORDED_K)
        octave_s = ops / (get_spec("A100").fp32_peak_ops() * OCTAVE_OPENCL_EFFICIENCY)
        assert 300 < octave_s / tcbf_s < 3000

    def test_recorded_dataset_inside_realtime_budget(self):
        # Paper: 1.2 s, "significantly shorter than the real-time
        # requirement of 8 s, leaving room for e.g. Doppler processing".
        from repro.bench.fig6 import RECORDED_K, RECORDED_M, RECORDED_N
        from repro.apps.ultrasound.imaging import UltrasoundBeamformer

        gh200 = Device("GH200", ExecutionMode.DRY_RUN)
        t = UltrasoundBeamformer(
            gh200, n_voxels=RECORDED_M, k=RECORDED_K, n_frames=RECORDED_N,
            precision=Precision.INT1,
        ).reconstruct().time_s
        assert t < 8.0 / 2  # comfortably inside, as the paper stresses


class TestRadioAstronomyClaims:
    def test_2_to_20x_faster_than_reference(self):
        # Conclusions: "The radio-astronomical TCBF is 2-20 times faster
        # than the existing beamformer."
        dev = Device("A100", ExecutionMode.DRY_RUN)
        ratios = []
        for k in (16, 48, 128, 512):
            t = LOFARBeamformer(dev, 1024, k, 1024, 256).predict_cost()
            r = ReferenceBeamformer(dev, 1024, k, 1024, 256).predict_cost()
            ratios.append(t.ops_per_second / r.ops_per_second)
        assert ratios == sorted(ratios)  # monotone in receiver count
        assert ratios[0] > 1.5
        assert 10 < ratios[-1] < 25

    def test_order_of_magnitude_energy_advantage(self):
        dev = Device("A100", ExecutionMode.DRY_RUN)
        t = LOFARBeamformer(dev, 1024, 512, 1024, 256).predict_cost()
        r = ReferenceBeamformer(dev, 1024, 512, 1024, 256).predict_cost()
        assert t.ops_per_joule / r.ops_per_joule > 8.0


class TestTableIStructure:
    def test_gh200_fastest_int1_a100_most_efficient(self):
        # Paper §IV-A: "The GH200 is the fastest in int1, although the A100
        # is more energy efficient."
        gh = _tuned_cost("GH200", Precision.INT1)
        a100 = _tuned_cost("A100", Precision.INT1)
        assert gh.ops_per_second > a100.ops_per_second
        assert a100.ops_per_joule > gh.ops_per_joule

    def test_mi300x_fastest_and_most_efficient_fp16(self):
        # "In float16, the MI300X is both the fastest and most
        # energy-efficient GPU."
        costs = {
            gpu: _tuned_cost(gpu, Precision.FLOAT16)
            for gpu in ("AD4000", "A100", "GH200", "W7700", "MI300X", "MI300A")
        }
        best_perf = max(costs, key=lambda g: costs[g].ops_per_second)
        assert best_perf == "MI300X"
        # MI210's PMT readings make it an efficiency outlier in the paper
        # too (1.3 TOPs/J); excluding it, MI300X leads.
        assert costs["MI300X"].ops_per_joule == max(
            c.ops_per_joule for g, c in costs.items()
        )
