"""Failure injection: the library must fail loudly and precisely.

A downstream user integrating the TCBF into a real pipeline relies on the
error surface as much as on the happy path: capability violations, capacity
exhaustion, protocol misuse, and degenerate data must all raise the
documented exception types rather than corrupt results.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ccglib.gemm import Gemm, gemm_once
from repro.ccglib.packing import pack_sign_planar
from repro.ccglib.pipeline import MultiStageBuffer
from repro.ccglib.precision import Precision
from repro.ccglib.tuning import TuneParams
from repro.errors import (
    KernelConfigError,
    MemoryError_,
    PowerError,
    ShapeError,
    TunerError,
    UnsupportedPrecisionError,
)
from repro.gpusim.device import Device, ExecutionMode
from repro.gpusim.specs import get_spec


class TestCapabilityFailures:
    def test_int1_on_every_amd_gpu(self):
        for gpu in ("W7700", "MI210", "MI300X", "MI300A"):
            with pytest.raises(UnsupportedPrecisionError):
                Gemm(Device(gpu), Precision.INT1, 1, 16, 16, 256)

    def test_multibuffer_on_amd_even_with_explicit_params(self):
        with pytest.raises(KernelConfigError):
            Gemm(
                Device("MI210"), Precision.FLOAT16, 1, 128, 128, 128,
                params=TuneParams(128, 64, 64, 32, 2),
            )

    def test_tuner_rejects_impossible_space(self):
        from repro.kerneltuner.space import SearchSpace
        from repro.kerneltuner.strategies import BruteForce

        space = SearchSpace(parameters={"x": [1]}, restrictions=[lambda c: False])
        with pytest.raises(TunerError):
            BruteForce().run(space, lambda c: 1.0)


class TestCapacityFailures:
    def test_oversized_allocation_is_atomic(self):
        dev = Device("AD4000", ExecutionMode.DRY_RUN)  # 20 GB
        dev.allocate((2**30,), np.float32)  # 4 GB fine
        before = dev.memory.allocated_bytes
        with pytest.raises(MemoryError_):
            dev.allocate((5 * 2**30,), np.float32)  # 20 GB more: too much
        assert dev.memory.allocated_bytes == before  # nothing leaked

    def test_functional_access_of_dry_buffer(self):
        dev = Device("A100", ExecutionMode.DRY_RUN)
        buf = dev.allocate((8,), np.float32)
        with pytest.raises(MemoryError_, match="dry-run"):
            buf.require_data()


class TestProtocolMisuse:
    def test_pipeline_double_release(self):
        pipe = MultiStageBuffer(2)
        idx = pipe.producer_acquire(0)
        pipe.producer_commit(idx)
        pipe.consumer_wait()
        pipe.consumer_release()
        with pytest.raises(KernelConfigError):
            pipe.consumer_release()

    def test_meter_misuse(self):
        from repro.pmt.meter import PMTState, PowerMeter

        with pytest.raises(PowerError):
            PowerMeter.seconds(PMTState(1.0, 0.0), PMTState(0.0, 0.0))


class TestDegenerateData:
    def test_nan_signs_are_deterministic(self):
        # NaN >= 0 is False, so NaN quantizes to -1: degraded but defined.
        values = np.array([[np.nan, 1.0, -np.inf, np.inf]], dtype=np.float32)
        packed = pack_sign_planar(values, k_pad_to=32)
        from repro.ccglib.packing import unpack_sign_planar

        signs = unpack_sign_planar(packed, 4)
        assert signs.tolist() == [[-1, 1, -1, 1]]

    def test_zero_matrix_float16(self):
        dev = Device("A100")
        a = np.zeros((1, 8, 16), dtype=np.complex64)
        b = np.zeros((1, 16, 4), dtype=np.complex64)
        out = gemm_once(dev, Precision.FLOAT16, a, b).output
        assert np.all(out == 0)

    def test_zero_matrix_int1_is_all_ones_encoding(self):
        # Zero is unrepresentable in 1-bit: quantizes to +1 everywhere, so
        # the 'zero' product becomes K * (1+i)(1+i) = 2iK — documented
        # behaviour of the encoding, not silent corruption.
        dev = Device("A100")
        k = 64
        a = np.zeros((1, 2, k), dtype=np.complex64)
        b = np.zeros((1, k, 2), dtype=np.complex64)
        out = gemm_once(dev, Precision.INT1, a, b).output
        assert np.all(out == 2j * k)

    def test_dry_run_ignores_operands(self):
        # Documented: dry-run devices return cost only, operands unused.
        dev = Device("A100", ExecutionMode.DRY_RUN)
        plan = Gemm(dev, Precision.FLOAT16, 1, 8, 8, 16)
        result = plan.run(np.zeros((99,)), None)  # wrong shapes: ignored
        assert result.output is None
        assert result.cost.time_s > 0


class TestShapeSurface:
    @pytest.mark.parametrize(
        "m,n,k",
        [(0, 8, 8), (8, -1, 8), (8, 8, 0)],
    )
    def test_nonpositive_dims_rejected_at_plan_time(self, m, n, k):
        with pytest.raises(ShapeError):
            Gemm(Device("A100"), Precision.FLOAT16, 1, m, n, k)

    def test_batch_zero_rejected(self):
        with pytest.raises(ShapeError):
            Gemm(Device("A100"), Precision.FLOAT16, 0, 8, 8, 8)
