"""Station (FPGA) stage feeding the central tensor-core beamformer.

The paper's two-stage LOFAR architecture (§V-B): antennas -> station
beamformer (delay-phase sum + channelizer) -> beamlet data -> central
coherent beamformer. This test drives a real signal through both stages
and verifies the coherent gains compound.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.radioastronomy import (
    LOFARBeamformer,
    StationBeamformer,
    StationConfig,
    geometric_delay,
    lofar_like_layout,
)
from repro.ccglib.precision import Precision
from repro.gpusim.device import Device
from repro.util.rng import make_rng


@pytest.fixture(scope="module")
def two_stage_setup():
    """Four stations observing one far-field noise source through real
    station hardware (antennas + PFB), then centrally beamformed."""
    rng = make_rng(77)
    n_stations = 4
    layout = lofar_like_layout(n_stations, core_fraction=1.0, core_radius_m=1500, seed=5)
    f_centre, bandwidth = 150e6, 3.2e6
    n_channels, n_taps = 8, 4
    n_time = n_channels * 64
    source_lm = (0.004, -0.002)

    station_cfg = StationConfig(n_antennas=12, n_channels=n_channels, n_taps=n_taps)
    beamlets = []
    n_spectra = None
    base_signal = (rng.normal(size=n_time) + 1j * rng.normal(size=n_time)).astype(np.complex64)
    freqs = None
    for st_idx in range(n_stations):
        station = StationBeamformer(station_cfg, f_centre, bandwidth)
        freqs = station.channel_frequencies()
        # Per-antenna data: the common source signal with the station's
        # geometric phase, plus independent receiver noise per antenna.
        tau_station = geometric_delay(layout.positions[st_idx : st_idx + 1], *source_lm)[0]
        station_phase = np.exp(-2j * np.pi * f_centre * tau_station)
        antennas = station.simulate_antenna_source(*source_lm, n_samples=n_time, seed=st_idx)
        # replace the per-station random signal with the shared one, keeping
        # the antenna phase structure: antennas encodes phases x signal_st.
        signal_st = base_signal * station_phase
        phases = antennas[:, 0] / antennas[0, 0]  # relative antenna phases
        antennas = np.outer(phases * antennas[0, 0] / np.abs(antennas[0, 0]), signal_st)
        noise = rng.normal(size=antennas.shape) + 1j * rng.normal(size=antennas.shape)
        antennas = antennas + 0.5 * noise.astype(np.complex64)
        beam = station.form_station_beam(antennas.astype(np.complex64), *source_lm)
        beamlets.append(beam)
        n_spectra = beam.shape[1]
    data = np.stack(beamlets, axis=1)  # (C, S, T')
    return layout, freqs, source_lm, data, n_spectra


class TestTwoStagePipeline:
    def test_central_beam_gains_over_single_station(self, two_stage_setup):
        layout, freqs, source_lm, data, n_t = two_stage_setup
        n_st = layout.n_stations
        # Central weights toward the source vs away from it.
        tau = np.stack([
            geometric_delay(layout.positions, *source_lm),
            geometric_delay(layout.positions, 0.2, 0.15),
        ])  # (2 beams, S)
        weights = np.exp(2j * np.pi * freqs[:, None, None] * tau[None]) / n_st
        bf = LOFARBeamformer(Device("A100"), 2, n_st, n_t, len(freqs), precision=Precision.FLOAT16)
        out = bf.form_beams(weights.astype(np.complex64), data)
        on_power = (np.abs(out.beams[:, 0]) ** 2).mean()
        off_power = (np.abs(out.beams[:, 1]) ** 2).mean()
        # The on-source tied beam adds station signals coherently; away from
        # the source the geometric phases scramble and power collapses.
        # (The contrast is bounded here by the centre-frequency narrowband
        # approximation used in the station stage, not by the beamformer.)
        assert on_power > 2 * off_power
        assert np.isfinite(out.beams).all()

    def test_beamlet_data_has_channel_structure(self, two_stage_setup):
        *_, data, _ = two_stage_setup
        assert data.ndim == 3
        assert np.isfinite(data).all()
        # all stations carry comparable power (same source + noise floor)
        station_power = (np.abs(data) ** 2).mean(axis=(0, 2))
        assert station_power.max() / station_power.min() < 3.0
