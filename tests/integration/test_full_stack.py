"""Cross-module integration: GEMM + PMT + memory + applications together."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ccglib.gemm import Gemm, gemm_once
from repro.ccglib.precision import Precision
from repro.gpusim.device import Device, ExecutionMode
from repro.gpusim.specs import GPU_CATALOG, INT1_GPUS
from repro.pmt.meter import PowerMeter
from tests.conftest import random_complex, random_pm1_complex


class TestAllDevicesFloat16:
    @pytest.mark.parametrize("gpu", list(GPU_CATALOG))
    def test_gemm_runs_and_agrees(self, gpu, rng):
        """Every catalog GPU computes the same float16 result."""
        a = random_complex(rng, (1, 16, 24))
        b = random_complex(rng, (1, 24, 8))
        result = gemm_once(Device(gpu), Precision.FLOAT16, a, b)
        ref = a.astype(np.complex128) @ b.astype(np.complex128)
        assert np.abs(result.output - ref).max() / np.abs(ref).max() < 5e-3

    def test_device_numerics_identical_across_vendors(self, rng):
        # The library promise: CUDA/HIP differences are hidden; results are
        # bit-identical between devices (same fragment arithmetic).
        a = random_complex(rng, (1, 8, 16))
        b = random_complex(rng, (1, 16, 8))
        outputs = [
            gemm_once(Device(gpu), Precision.FLOAT16, a, b).output
            for gpu in ("A100", "MI300X", "W7700")
        ]
        assert np.array_equal(outputs[0], outputs[1])
        assert np.array_equal(outputs[0], outputs[2])


class TestInt1AcrossNvidia:
    @pytest.mark.parametrize("gpu", list(INT1_GPUS))
    def test_exact_on_every_nvidia_gpu(self, gpu, rng):
        a = random_pm1_complex(rng, (1, 9, 70))
        b = random_pm1_complex(rng, (1, 70, 5))
        result = gemm_once(Device(gpu), Precision.INT1, a, b)
        ref = a.astype(np.complex128) @ b.astype(np.complex128)
        assert np.array_equal(result.output, ref.astype(np.complex64))

    def test_xor_and_devices_agree(self, rng):
        # A100 (XOR) and GH200 (AND) must produce identical integers.
        a = random_pm1_complex(rng, (1, 6, 131))
        b = random_pm1_complex(rng, (1, 131, 6))
        out_xor = gemm_once(Device("A100"), Precision.INT1, a, b).output
        out_and = gemm_once(Device("GH200"), Precision.INT1, a, b).output
        assert np.array_equal(out_xor, out_and)


class TestPmtIntegration:
    def test_meter_covers_full_pipeline(self, rng):
        """PMT energy over a multi-kernel run equals the kernel-cost sum."""
        dev = Device("A100")
        meter = PowerMeter(dev)
        begin = meter.read()
        a = random_complex(rng, (2, 32, 64))
        b = random_complex(rng, (2, 64, 16))
        plan = Gemm(dev, Precision.FLOAT16, 2, 32, 16, 64)
        plan.run(a, b)
        plan.run(a, b)
        end = meter.read()
        assert PowerMeter.joules(begin, end) == pytest.approx(dev.total_energy_j())
        assert PowerMeter.seconds(begin, end) == pytest.approx(dev.total_time_s())

    def test_paper_energy_metric_via_pmt(self):
        """Reproduce a Table III energy number through the PMT code path."""
        dev = Device("A100", ExecutionMode.DRY_RUN)
        meter = PowerMeter(dev)
        begin = meter.read()
        plan = Gemm(dev, Precision.FLOAT16, 1, 8192, 8192, 8192)
        result = plan.run()
        end = meter.read()
        tops_per_joule = PowerMeter.ops_per_joule(result.cost.useful_ops, begin, end) / 1e12
        assert tops_per_joule == pytest.approx(0.8, rel=0.05)  # paper: 0.8


class TestMemoryIntegration:
    def test_upload_compute_free_cycle(self, rng):
        dev = Device("AD4000")
        a_host = random_complex(rng, (1, 16, 32))
        buf = dev.upload(a_host, label="A")
        assert dev.memory.allocated_bytes == a_host.nbytes
        dev.free(buf)
        assert dev.memory.allocated_bytes == 0

    def test_dry_run_capacity_guard_at_paper_scale(self):
        # The full 128^3 1-bit model matrix (~137 GB packed) does not fit
        # any catalog GPU except MI300X (192 GB).
        packed_shape = (2, 128**3, 262144 // 32)
        fits = {}
        for gpu in ("A100", "GH200", "MI300X"):
            dev = Device(gpu, ExecutionMode.DRY_RUN)
            try:
                dev.allocate(packed_shape, np.uint32)
                fits[gpu] = True
            except Exception:
                fits[gpu] = False
        assert fits == {"A100": False, "GH200": False, "MI300X": True}


class TestCrossApplication:
    def test_same_gemm_backend_serves_both_domains(self, rng):
        """The domain wrappers are thin: both reduce to ccglib GEMM calls."""
        from repro.apps.radioastronomy import LOFARBeamformer
        from repro.apps.ultrasound.imaging import UltrasoundBeamformer

        dev = Device("A100", ExecutionMode.DRY_RUN)
        lofar = LOFARBeamformer(dev, 64, 16, 128, 4)
        lofar.form_beams()
        us = UltrasoundBeamformer(dev, n_voxels=4096, k=8192, n_frames=128)
        us.reconstruct()
        names = [e.cost.name for e in dev.timeline]
        assert sum(n.startswith("gemm_") for n in names) == 2
        assert "pack_bits" in names and "transpose" in names
