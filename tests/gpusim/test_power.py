"""Linear power model with TDP capping."""

from __future__ import annotations

import pytest

from repro.errors import PowerError
from repro.gpusim.power import PowerModel
from repro.gpusim.specs import get_spec


class TestPowerModel:
    def test_idle_floor(self):
        model = PowerModel(get_spec("A100"))
        sample = model.kernel_power("float16", 0.0, 0.0, 0.0)
        assert sample.total_w == pytest.approx(model.idle_w)

    def test_monotone_in_tensor_utilization(self):
        model = PowerModel(get_spec("A100"))
        lo = model.kernel_power("float16", 0.2, 0.1, 0.1).total_w
        hi = model.kernel_power("float16", 0.8, 0.1, 0.1).total_w
        assert hi > lo

    def test_tdp_cap(self):
        spec = get_spec("AD4000")
        model = PowerModel(spec)
        sample = model.kernel_power("float16", 1.0, 1.0, 1.0)
        assert sample.total_w <= spec.tdp_w + 1e-9

    def test_cap_preserves_idle(self):
        spec = get_spec("AD4000")
        model = PowerModel(spec)
        sample = model.kernel_power("float16", 1.0, 1.0, 1.0)
        assert sample.idle_w == spec.power.idle_w

    def test_utilizations_clamped(self):
        model = PowerModel(get_spec("GH200"))
        a = model.kernel_power("float16", 2.0, 0.0, 0.0).total_w
        b = model.kernel_power("float16", 1.0, 0.0, 0.0).total_w
        assert a == b

    def test_unknown_precision_coefficient(self):
        model = PowerModel(get_spec("MI210"))
        with pytest.raises(PowerError):
            model.kernel_power("int1", 0.5, 0.0, 0.0)

    def test_no_precision_means_no_tensor_power(self):
        model = PowerModel(get_spec("A100"))
        sample = model.kernel_power(None, 1.0, 0.5, 0.0)
        assert sample.tensor_w == 0.0
        assert sample.memory_w > 0.0

    def test_breakdown_sums_to_total(self):
        model = PowerModel(get_spec("MI300X"))
        s = model.kernel_power("float16", 0.4, 0.3, 0.2)
        assert s.total_w == pytest.approx(s.idle_w + s.tensor_w + s.memory_w + s.shared_w)
