"""Clock behaviour model."""

from __future__ import annotations

import pytest

from repro.gpusim.clock import ClockModel
from repro.gpusim.specs import get_spec


class TestClockModel:
    def test_light_load_boosts(self):
        model = ClockModel(get_spec("A100"))
        light = model.resolve(0.05)
        heavy = model.resolve(1.0)
        assert light.clock_hz > heavy.clock_hz

    def test_full_load_hits_sustained(self):
        spec = get_spec("MI300X")
        model = ClockModel(spec)
        assert model.resolve(1.0).fraction_of_spec == pytest.approx(spec.sustained_clock_fraction)

    def test_monotone_droop(self):
        model = ClockModel(get_spec("GH200"))
        clocks = [model.resolve(u).clock_hz for u in (0.0, 0.3, 0.6, 1.0)]
        assert clocks == sorted(clocks, reverse=True)

    def test_utilization_clamped(self):
        model = ClockModel(get_spec("A100"))
        assert model.resolve(-1.0).clock_hz == model.resolve(0.0).clock_hz
        assert model.resolve(2.0).clock_hz == model.resolve(1.0).clock_hz

    def test_workstation_boost_above_spec_even_at_full_load(self):
        # AD4000 measured above theoretical peak in Table I.
        model = ClockModel(get_spec("AD4000"))
        assert model.resolve(1.0).fraction_of_spec > 1.0
