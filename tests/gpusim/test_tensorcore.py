"""Functional tensor-core fragment arithmetic."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ShapeError
from repro.gpusim.arch import Architecture, FRAG_FLOAT16_16x16x16, capabilities, FragmentShape
from repro.gpusim.tensorcore import (
    bmma_and,
    bmma_xor,
    mma_f16,
    quantize_f16,
    validate_fragment_tile,
)
from repro.util.bits import popcount


class TestMmaF16:
    def test_matches_fp32_of_quantized_inputs(self, rng):
        a = rng.normal(size=(16, 16)).astype(np.float32)
        b = rng.normal(size=(16, 16)).astype(np.float32)
        got = mma_f16(a, b)
        want = a.astype(np.float16).astype(np.float32) @ b.astype(np.float16).astype(np.float32)
        assert np.allclose(got, want, rtol=1e-6)
        assert got.dtype == np.float32

    def test_quantization_is_visible(self):
        # A value that changes under float16 rounding must be used quantized.
        a = np.full((1, 1), 1.0009765625 + 1e-5, dtype=np.float32)  # rounds in fp16
        b = np.ones((1, 1), dtype=np.float32)
        got = mma_f16(a, b)[0, 0]
        assert got == np.float32(np.float16(a[0, 0]))

    def test_accumulate(self, rng):
        a = rng.normal(size=(4, 8)).astype(np.float16)
        b = rng.normal(size=(8, 4)).astype(np.float16)
        c = np.ones((4, 4), dtype=np.float32)
        got = mma_f16(a, b, c)
        assert np.allclose(got, mma_f16(a, b) + 1.0, rtol=1e-6)

    def test_accumulator_not_mutated(self, rng):
        a = rng.normal(size=(2, 2)).astype(np.float16)
        c = np.zeros((2, 2), dtype=np.float32)
        mma_f16(a, a, c)
        assert np.all(c == 0)

    def test_shape_mismatch(self):
        with pytest.raises(ShapeError):
            mma_f16(np.zeros((2, 3)), np.zeros((4, 2)))

    def test_accumulator_shape_mismatch(self):
        with pytest.raises(ShapeError):
            mma_f16(np.zeros((2, 3)), np.zeros((3, 2)), np.zeros((3, 3), dtype=np.float32))


def _popc_xor_reference(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    out = np.zeros((a.shape[0], b.shape[0]), dtype=np.int64)
    for i in range(a.shape[0]):
        for j in range(b.shape[0]):
            out[i, j] = sum(bin(int(x) ^ int(y)).count("1") for x, y in zip(a[i], b[j]))
    return out


class TestBinaryMma:
    @given(st.integers(0, 2**31), st.integers(1, 3), st.integers(1, 4))
    def test_xor_matches_reference(self, seed, m, words):
        rng = np.random.default_rng(seed)
        a = rng.integers(0, 2**32, size=(m, words), dtype=np.uint32)
        b = rng.integers(0, 2**32, size=(2, words), dtype=np.uint32)
        assert np.array_equal(bmma_xor(a, b), _popc_xor_reference(a, b))

    def test_and_or_complement_identity(self, rng):
        # popc(A&B) + popc(~A&~B) == K - popc(A^B): the §III-E equivalence.
        a = rng.integers(0, 2**32, size=(3, 4), dtype=np.uint32)
        b = rng.integers(0, 2**32, size=(5, 4), dtype=np.uint32)
        k = 4 * 32
        same = bmma_and(a, b) + bmma_and(~a, ~b)
        assert np.array_equal(same, k - bmma_xor(a, b))

    def test_accumulation(self, rng):
        a = rng.integers(0, 2**32, size=(2, 2), dtype=np.uint32)
        b = rng.integers(0, 2**32, size=(2, 2), dtype=np.uint32)
        base = bmma_xor(a, b)
        assert np.array_equal(bmma_xor(a, b, base), 2 * base)

    def test_requires_uint32(self):
        with pytest.raises(ShapeError):
            bmma_xor(np.zeros((1, 1), dtype=np.int32), np.zeros((1, 1), dtype=np.uint32))

    def test_word_count_mismatch(self):
        with pytest.raises(ShapeError):
            bmma_xor(np.zeros((1, 2), dtype=np.uint32), np.zeros((1, 3), dtype=np.uint32))


class TestFragmentTileValidation:
    def test_accepts_whole_fragments(self):
        caps = capabilities(Architecture.AMPERE)
        validate_fragment_tile(caps, "float16", FRAG_FLOAT16_16x16x16, 32, 48, 64)

    def test_rejects_partial_fragments(self):
        caps = capabilities(Architecture.AMPERE)
        with pytest.raises(ShapeError, match="pad first"):
            validate_fragment_tile(caps, "float16", FRAG_FLOAT16_16x16x16, 17, 16, 16)
