"""Device memory pool: accounting, capacity, functional vs dry-run."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import MemoryError_
from repro.gpusim.memory import MemoryPool
from repro.gpusim.specs import get_spec


@pytest.fixture
def pool():
    return MemoryPool(get_spec("A100"))


class TestAllocation:
    def test_accounting(self, pool):
        buf = pool.allocate((1024,), np.float32, materialize=True)
        assert buf.nbytes == 4096
        assert pool.allocated_bytes == 4096
        pool.free(buf)
        assert pool.allocated_bytes == 0

    def test_peak_tracking(self, pool):
        a = pool.allocate((1000,), np.float64, materialize=False)
        b = pool.allocate((1000,), np.float64, materialize=False)
        pool.free(a)
        assert pool.peak_bytes == 16000
        assert pool.allocated_bytes == 8000
        pool.free(b)

    def test_capacity_enforced(self, pool):
        with pytest.raises(MemoryError_, match="exceeds device memory"):
            pool.allocate((pool.capacity_bytes + 1,), np.uint8, materialize=False)

    def test_dry_run_tracks_paper_scale_without_ram(self, pool):
        # 38880 x 524288 complex64 would be ~152 GiB materialized... the
        # A100 has 40 GiB, so this must fail on capacity, not on host RAM.
        with pytest.raises(MemoryError_):
            pool.allocate((38880, 524288), np.complex64, materialize=False)

    def test_dry_run_buffer_not_materialized(self, pool):
        buf = pool.allocate((16,), np.float32, materialize=False)
        assert not buf.is_materialized
        with pytest.raises(MemoryError_, match="dry-run"):
            buf.require_data()

    def test_free_idempotent(self, pool):
        buf = pool.allocate((4,), np.int32, materialize=True)
        pool.free(buf)
        pool.free(buf)
        assert pool.allocated_bytes == 0

    def test_fill_value(self, pool):
        buf = pool.allocate((8,), np.float32, materialize=True, fill=2.5)
        assert np.all(buf.require_data() == 2.5)


class TestUpload:
    def test_functional_copy(self, pool):
        host = np.arange(10, dtype=np.int64)
        buf = pool.upload(host, materialize=True)
        host[0] = 99  # device copy must be independent
        assert buf.require_data()[0] == 0

    def test_dry_upload_metadata_only(self, pool):
        buf = pool.upload(np.zeros((3, 4), dtype=np.float16), materialize=False)
        assert buf.shape == (3, 4)
        assert buf.nbytes == 24
        assert buf.data is None


class TestTransferModel:
    def test_pcie_estimate(self, pool):
        # 25 GB at 25 GB/s -> 1 second.
        assert pool.transfer_time_s(25e9) == pytest.approx(1.0)
