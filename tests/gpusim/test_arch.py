"""Architecture capability tables (paper Table I structure)."""

from __future__ import annotations

import pytest

from repro.errors import UnsupportedFragmentError, UnsupportedPrecisionError
from repro.gpusim.arch import (
    Architecture,
    BitOp,
    FRAG_FLOAT16_16x16x16,
    FRAG_INT1_16x8x256,
    FRAG_INT1_8x8x128,
    FragmentShape,
    Vendor,
    capabilities,
)

NVIDIA_ARCHS = [Architecture.ADA, Architecture.AMPERE, Architecture.HOPPER]
AMD_ARCHS = [Architecture.RDNA3, Architecture.CDNA2, Architecture.CDNA3]


class TestVendors:
    @pytest.mark.parametrize("arch", NVIDIA_ARCHS)
    def test_nvidia(self, arch):
        assert arch.vendor is Vendor.NVIDIA

    @pytest.mark.parametrize("arch", AMD_ARCHS)
    def test_amd(self, arch):
        assert arch.vendor is Vendor.AMD


class TestFragmentShape:
    def test_str(self):
        assert str(FRAG_FLOAT16_16x16x16) == "16x16x16"

    def test_ops_per_instruction(self):
        # 2 ops per FMA over m*n*k FMAs.
        assert FRAG_FLOAT16_16x16x16.ops == 2 * 16 * 16 * 16
        assert FRAG_INT1_16x8x256.ops == 2 * 16 * 8 * 256


class TestPrecisionSupport:
    @pytest.mark.parametrize("arch", NVIDIA_ARCHS)
    def test_nvidia_has_int1(self, arch):
        assert capabilities(arch).supports_precision("int1")

    @pytest.mark.parametrize("arch", AMD_ARCHS)
    def test_amd_lacks_int1(self, arch):
        caps = capabilities(arch)
        assert not caps.supports_precision("int1")
        with pytest.raises(UnsupportedPrecisionError, match="NVIDIA-only"):
            caps.require_precision("int1")

    @pytest.mark.parametrize("arch", NVIDIA_ARCHS + AMD_ARCHS)
    def test_everyone_has_float16(self, arch):
        capabilities(arch).require_precision("float16")

    def test_unknown_fragment_rejected(self):
        caps = capabilities(Architecture.AMPERE)
        with pytest.raises(UnsupportedFragmentError):
            caps.require_fragment("float16", FragmentShape(8, 8, 4))


class TestRateFactors:
    """The Table I structural ratios."""

    def test_small_fragment_half_rate_on_ampere(self):
        caps = capabilities(Architecture.AMPERE)
        small = caps.rate_factor("int1", FRAG_INT1_8x8x128, BitOp.XOR)
        big = caps.rate_factor("int1", FRAG_INT1_16x8x256, BitOp.XOR)
        assert small == pytest.approx(0.5, rel=0.05)
        assert big == 1.0

    def test_small_fragment_full_rate_on_ada(self):
        caps = capabilities(Architecture.ADA)
        assert caps.rate_factor("int1", FRAG_INT1_8x8x128, BitOp.XOR) > 0.95

    def test_xor_emulated_on_hopper(self):
        caps = capabilities(Architecture.HOPPER)
        xor = caps.rate_factor("int1", FRAG_INT1_16x8x256, BitOp.XOR)
        and_ = caps.rate_factor("int1", FRAG_INT1_16x8x256, BitOp.AND)
        # Paper: XOR up to ~5x slower than AND on Hopper.
        assert 3.5 < and_ / xor < 5.5

    def test_xor_full_rate_pre_hopper(self):
        for arch in (Architecture.ADA, Architecture.AMPERE):
            caps = capabilities(arch)
            assert caps.rate_factor("int1", FRAG_INT1_16x8x256, BitOp.XOR) == 1.0

    def test_int1_requires_bit_op(self):
        caps = capabilities(Architecture.AMPERE)
        with pytest.raises(UnsupportedPrecisionError):
            caps.rate_factor("int1", FRAG_INT1_16x8x256, None)

    def test_wmma_factor_hopper(self):
        # Paper: WMMA limits Hopper to 60-65% of maximum.
        assert capabilities(Architecture.HOPPER).wmma_interface_factor == pytest.approx(0.65)
        assert capabilities(Architecture.AMPERE).wmma_interface_factor == 1.0


class TestPreferredBitOp:
    def test_hopper_prefers_and(self):
        assert capabilities(Architecture.HOPPER).preferred_bit_op is BitOp.AND

    @pytest.mark.parametrize("arch", [Architecture.ADA, Architecture.AMPERE])
    def test_pre_hopper_prefers_xor(self, arch):
        assert capabilities(arch).preferred_bit_op is BitOp.XOR

    @pytest.mark.parametrize("arch", AMD_ARCHS)
    def test_amd_has_none(self, arch):
        assert capabilities(arch).preferred_bit_op is None


class TestAsyncCopies:
    @pytest.mark.parametrize("arch", NVIDIA_ARCHS)
    def test_nvidia_has_async(self, arch):
        assert capabilities(arch).async_copies

    @pytest.mark.parametrize("arch", AMD_ARCHS)
    def test_amd_lacks_async(self, arch):
        assert not capabilities(arch).async_copies


class TestWarpSizes:
    @pytest.mark.parametrize("arch", NVIDIA_ARCHS)
    def test_nvidia_32(self, arch):
        assert capabilities(arch).warp_size == 32

    @pytest.mark.parametrize("arch", AMD_ARCHS)
    def test_amd_64(self, arch):
        assert capabilities(arch).warp_size == 64
