"""Device execution accounting: timeline, streams, events, power sampling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.gpusim.device import Device, ExecutionMode
from repro.gpusim.timing import Bound, KernelCost, combine_costs


def _cost(t: float, power: float = 100.0, ops: float = 1e9) -> KernelCost:
    return KernelCost(
        name="k",
        time_s=t,
        useful_ops=ops,
        issued_ops=ops,
        dram_bytes=1e6,
        smem_bytes=0.0,
        bound=Bound.COMPUTE,
        power_w=power,
        energy_j=power * t,
    )


class TestTimeline:
    def test_advances(self):
        dev = Device("A100")
        dev.record_kernel(_cost(1e-3))
        dev.record_kernel(_cost(2e-3))
        assert dev.now_s == pytest.approx(3e-3)
        assert len(dev.timeline) == 2
        assert dev.timeline[1].start_s == pytest.approx(1e-3)

    def test_totals(self):
        dev = Device("A100")
        dev.record_kernel(_cost(1e-3, power=200.0))
        assert dev.total_time_s() == pytest.approx(1e-3)
        assert dev.total_energy_j() == pytest.approx(0.2)
        assert dev.total_useful_ops() == pytest.approx(1e9)

    def test_reset_keeps_allocations(self):
        dev = Device("A100")
        buf = dev.allocate((16,), np.float32)
        dev.record_kernel(_cost(1e-3))
        dev.reset_timeline()
        assert dev.now_s == 0.0
        assert not dev.timeline
        assert dev.memory.allocated_bytes == buf.nbytes

    def test_power_at(self):
        dev = Device("A100")
        dev.record_kernel(_cost(1e-3, power=250.0))
        assert dev.power_at(0.5e-3) == 250.0
        assert dev.power_at(2e-3) == dev.power.idle_w


class TestModes:
    def test_functional_materializes(self):
        dev = Device("A100", ExecutionMode.FUNCTIONAL)
        assert dev.allocate((4,), np.float32).is_materialized

    def test_dry_run_does_not(self):
        dev = Device("A100", ExecutionMode.DRY_RUN)
        assert not dev.allocate((4,), np.float32).is_materialized

    def test_upload_roundtrip(self, rng):
        dev = Device("GH200")
        host = rng.normal(size=6).astype(np.float32)
        buf = dev.upload(host)
        assert np.array_equal(buf.require_data(), host)

    def test_spec_by_name(self):
        assert Device("mi210").spec.name == "MI210"


class TestStreamAndEvents:
    def test_event_elapsed(self):
        dev = Device("A100")
        e0 = dev.default_stream.record_event()
        dev.default_stream.launch(_cost(5e-3))
        e1 = dev.default_stream.record_event()
        assert e1.elapsed_since(e0) == pytest.approx(5e-3)

    def test_unrecorded_event(self):
        from repro.errors import DeviceError
        from repro.gpusim.device import Event

        with pytest.raises(DeviceError):
            Event().elapsed_since(Event(time_s=0.0))


class TestCombineCosts:
    def test_sums_and_dominant_bound(self):
        a = _cost(1e-3)
        b = KernelCost(
            name="mem", time_s=5e-3, useful_ops=0, issued_ops=0, dram_bytes=1e9,
            smem_bytes=0, bound=Bound.MEMORY, power_w=50.0, energy_j=0.25e-3 * 1000,
        )
        total = combine_costs("pipeline", [a, b])
        assert total.time_s == pytest.approx(6e-3)
        assert total.bound is Bound.MEMORY
        assert total.energy_j == pytest.approx(a.energy_j + b.energy_j)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            combine_costs("nothing", [])

    def test_derived_metrics(self):
        c = _cost(2.0, power=100.0, ops=4e12)
        assert c.ops_per_second == pytest.approx(2e12)
        assert c.ops_per_joule == pytest.approx(4e12 / 200.0)
        assert c.arithmetic_intensity == pytest.approx(4e12 / 1e6)
