"""Device catalog integrity and Table-I-calibrated peaks."""

from __future__ import annotations

import pytest

from repro.errors import DeviceError
from repro.gpusim.specs import GPU_CATALOG, INT1_GPUS, get_spec


class TestCatalog:
    def test_seven_gpus(self):
        assert len(GPU_CATALOG) == 7
        assert set(GPU_CATALOG) == {
            "AD4000", "A100", "GH200", "W7700", "MI210", "MI300X", "MI300A",
        }

    def test_int1_gpus_are_the_nvidia_three(self):
        assert set(INT1_GPUS) == {"AD4000", "A100", "GH200"}

    @pytest.mark.parametrize("name", list(GPU_CATALOG))
    def test_positive_fields(self, name):
        spec = GPU_CATALOG[name]
        assert spec.n_sm > 0
        assert spec.clock_mhz > 0
        assert spec.mem_bandwidth_gbs > 0
        assert spec.mem_bytes > 0
        assert spec.smem_per_sm_bytes > 0
        assert spec.tdp_w > spec.power.idle_w > 0
        assert 0 < spec.mem_efficiency <= 1
        assert 0 < spec.fp32_efficiency <= 1
        for eff in spec.gemm_efficiency.values():
            assert 0 < eff <= 1

    @pytest.mark.parametrize("name", list(GPU_CATALOG))
    def test_power_coefficients_cover_supported_precisions(self, name):
        spec = GPU_CATALOG[name]
        for precision in spec.tensor_peak_tops:
            assert precision in spec.power.tensor_w


class TestLookup:
    def test_case_insensitive(self):
        assert get_spec("a100").name == "A100"
        assert get_spec("Mi300x").name == "MI300X"

    def test_unknown_raises(self):
        with pytest.raises(DeviceError, match="unknown GPU"):
            get_spec("H200")


class TestPeaks:
    def test_theoretical_matches_paper_table1(self):
        assert get_spec("A100").theoretical_peak_ops("float16") == pytest.approx(312e12)
        assert get_spec("GH200").theoretical_peak_ops("int1") == pytest.approx(15800e12)

    def test_sustained_clock_directions(self):
        # Workstation cards boost beyond spec; MI300s throttle below it.
        assert get_spec("AD4000").sustained_clock_fraction > 1.0
        assert get_spec("W7700").sustained_clock_fraction > 1.0
        assert get_spec("MI300X").sustained_clock_fraction < 1.0
        assert get_spec("MI300A").sustained_clock_fraction < 1.0

    def test_wmma_peak_hopper_penalty(self):
        gh = get_spec("GH200")
        assert gh.wmma_peak_ops("float16") == pytest.approx(gh.sustained_peak_ops("float16") * 0.65)

    def test_int1_peak_missing_on_amd(self):
        with pytest.raises(Exception):
            get_spec("MI300X").theoretical_peak_ops("int1")

    def test_smem_bandwidth_scales_with_sms(self):
        a100 = get_spec("A100")
        assert a100.smem_bandwidth_bytes() == pytest.approx(
            a100.caps.smem_bytes_per_clock * a100.n_sm * a100.sustained_clock_hz
        )

    def test_memory_ordering_of_datacenter_gpus(self):
        # MI300X has the fattest memory system in the catalog.
        bws = {n: s.mem_bandwidth_gbs for n, s in GPU_CATALOG.items()}
        assert max(bws, key=bws.get) == "MI300X"
