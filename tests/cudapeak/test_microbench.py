"""cudapeak micro-benchmarks vs paper Table I."""

from __future__ import annotations

import pytest

from repro.bench.table1 import PAPER_TABLE1
from repro.cudapeak.microbench import (
    TABLE1_BENCHMARKS,
    functional_fragment_check,
    run_microbenchmark,
    run_table1,
)
from repro.errors import UnsupportedPrecisionError
from repro.gpusim.arch import (
    BitOp,
    FRAG_FLOAT16_16x16x16,
    FRAG_INT1_16x8x256,
    FRAG_INT1_8x8x128,
)
from repro.gpusim.specs import get_spec


class TestAgainstPaper:
    @pytest.mark.parametrize(
        "key",
        list(PAPER_TABLE1),
        ids=lambda k: f"{k[0]}-{k[1]}-{k[2]}-{k[3]}",
    )
    def test_each_cell_within_ten_percent(self, key):
        gpu, precision, frag_str, op = key
        frag = {"16x16x16": FRAG_FLOAT16_16x16x16, "8x8x128": FRAG_INT1_8x8x128,
                "16x8x256": FRAG_INT1_16x8x256}[frag_str]
        bit_op = BitOp(op) if op else None
        result = run_microbenchmark(get_spec(gpu), precision, frag, bit_op)
        assert result.measured_tops == pytest.approx(PAPER_TABLE1[key], rel=0.10)

    def test_full_matrix_has_19_entries(self):
        # 7 fp16 + 3 NVIDIA GPUs x 4 int1 variants = 19 (AMD int1 skipped).
        assert len(run_table1()) == 19

    def test_amd_int1_raises_directly(self):
        with pytest.raises(UnsupportedPrecisionError):
            run_microbenchmark(get_spec("MI300X"), "int1", FRAG_INT1_16x8x256, BitOp.XOR)

    def test_workstation_ratio_above_one(self):
        r = run_microbenchmark(get_spec("AD4000"), "float16", FRAG_FLOAT16_16x16x16)
        assert r.ratio > 1.0

    def test_gh200_wmma_ratio(self):
        r = run_microbenchmark(get_spec("GH200"), "float16", FRAG_FLOAT16_16x16x16)
        assert 0.60 < r.ratio < 0.70  # paper: ~65%


class TestFunctionalChecks:
    @pytest.mark.parametrize(
        "precision,frag,op",
        TABLE1_BENCHMARKS,
        ids=lambda v: str(v),
    )
    def test_fragment_numerics(self, precision, frag, op):
        assert functional_fragment_check(precision, frag, op, seed=7)

    def test_unknown_precision(self):
        with pytest.raises(UnsupportedPrecisionError):
            functional_fragment_check("int4", FRAG_INT1_8x8x128, BitOp.XOR)
