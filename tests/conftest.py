"""Shared test configuration: hypothesis profile and common fixtures."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

# Single-core CI-style environment: keep property tests snappy but meaningful.
settings.register_profile(
    "repro",
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture
def a100_device():
    from repro.gpusim import Device

    return Device("A100")


@pytest.fixture
def gh200_device():
    from repro.gpusim import Device

    return Device("GH200")


@pytest.fixture
def mi300x_device():
    from repro.gpusim import Device

    return Device("MI300X")


def random_complex(rng: np.random.Generator, shape: tuple[int, ...], scale: float = 1.0):
    """Unit-scale complex64 test data."""
    return ((rng.normal(size=shape) + 1j * rng.normal(size=shape)) * scale).astype(np.complex64)


def random_pm1_complex(rng: np.random.Generator, shape: tuple[int, ...]):
    """Complex values with ±1 real and imaginary parts (1-bit representable)."""
    re = rng.choice([-1.0, 1.0], size=shape)
    im = rng.choice([-1.0, 1.0], size=shape)
    return (re + 1j * im).astype(np.complex64)
