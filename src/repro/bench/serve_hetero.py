"""Experiment: cost-model-driven placement on a heterogeneous fleet.

The paper's core argument is that throughput is won by matching the
workload to the hardware: precision support, tensor-core peaks, and
transpose/pack overheads all differ per device (Tables I/III). This
experiment puts the serving tier's placement layer
(:mod:`repro.serve.placement`) on a mixed **GH200 + MI300X** fleet and
checks the three placement decisions end to end, deterministically:

* **capability routing** — int1 ultrasound requests (NVIDIA-only 1-bit
  MMA, paper §II) must *never* land on the MI300X, while float16 LOFAR
  work backfills it; on an AMD-only fleet the same int1 traffic is shed at
  the front door instead of queued hopelessly;
* **shape buckets** — LOFAR dumps of five nearby sample counts, offered at
  the same load, once with exact-shape batching and once padded into one
  2048-sample bucket: the bucketed run must raise goodput, and the padded
  FLOPs it paid are reported (the cost model prices the padding — the
  plans are built at the bucket shape);
* **in-service sharding** — a survey request whose operands exceed *any*
  single device's memory is split across the fleet (memory-proportional
  extents via :func:`~repro.tcbf.sharding.split_extent_weighted`) and
  served, with per-shard utilization reported, instead of being shed;
* **determinism** — a fixed-seed replay of the headline run reproduces
  every number bit-for-bit.
"""

from __future__ import annotations

from repro.apps.radioastronomy.beamformer import service_workload as lofar_workload
from repro.apps.ultrasound.imaging import service_workload as ultrasound_workload
from repro.bench.report import ExperimentResult
from repro.gpusim.device import Device, ExecutionMode
from repro.serve import (
    SLO,
    BatchingPolicy,
    BeamformingService,
    Request,
    ServiceMonitor,
    ServiceReport,
    merge_arrivals,
    poisson_arrivals,
    render_dashboard,
)
from repro.serve.obs.trace import NullRecorder
from repro.util.formatting import render_table

SEED = 2026
SLO_P99_S = 5e-3

#: the mixed fleet: one NVIDIA Grace Hopper, one AMD MI300X.
FLEET = ("GH200", "MI300X")

#: int1 live imaging offered rate (req/s).
INT1_RATE_HZ = 24_000.0
#: float16 LOFAR offered load relative to the GH200's *own* batched
#: capacity — above 1.0 the MI300X must absorb the spill.
FLOAT16_OVERLOAD = 1.8

#: nearby LOFAR dump lengths sharing one 2048-sample bucket.
NEARBY_SAMPLES = (1792, 1856, 1920, 1984, 2048)
BUCKET_EDGES = (2048,)
#: bucket-scenario offered load relative to the GH200's batched capacity —
#: high enough that exact-shape batching's five shallow groups hurt its
#: tail, low enough that neither configuration sheds.
BUCKET_OVERLOAD = 2.5

#: the oversized survey request: channels x pols far beyond any single
#: device's memory (~229 GB of operands at float16).
SURVEY_CHANNELS = 350_000

BATCH_POLICY = BatchingPolicy(max_batch=32, max_wait_s=1e-3)
INTERACTIVE_POLICY = BatchingPolicy(max_batch=4, max_wait_s=50e-6)

#: monitoring cadence of the headline run (~80 samples per quick run).
MONITOR_INTERVAL_S = 50e-6


def _fleet() -> list[Device]:
    return [Device(name, ExecutionMode.DRY_RUN) for name in FLEET]


def _batched_capacity_hz(workload, gpu: str) -> float:
    """Requests/s one device sustains on full merged batches of this class."""
    merged = BATCH_POLICY.max_batch
    plan = workload.kernel.make_plan(Device(gpu, ExecutionMode.DRY_RUN), merged)
    return merged / plan.predict_block_cost().time_s


def mixed_scenario(
    horizon_s: float,
    seed: int = SEED,
    recorder: NullRecorder | None = None,
    monitor: ServiceMonitor | None = None,
) -> ServiceReport:
    """int1 imaging + float16 LOFAR on the mixed fleet (the headline run)."""
    imaging = ultrasound_workload(n_voxels=4096, k=1024, n_frames=64)
    beams = lofar_workload(n_samples=2048)
    rate = FLOAT16_OVERLOAD * _batched_capacity_hz(beams, "GH200")
    trace = merge_arrivals(
        poisson_arrivals(imaging, INT1_RATE_HZ, horizon_s, seed=seed),
        poisson_arrivals(beams, rate, horizon_s, seed=seed + 1),
    )
    service = BeamformingService(
        _fleet(),
        policy=BATCH_POLICY,
        class_policies={0: INTERACTIVE_POLICY},
        slo=SLO(p99_latency_s=SLO_P99_S),
        recorder=recorder,
        monitor=monitor,
    )
    return service.run(trace)


def amd_only_scenario(horizon_s: float, seed: int = SEED) -> ServiceReport:
    """The same int1 traffic against an MI300X-only fleet: front-door shed."""
    imaging = ultrasound_workload(n_voxels=4096, k=1024, n_frames=64)
    trace = poisson_arrivals(imaging, INT1_RATE_HZ, horizon_s, seed=seed)
    service = BeamformingService(
        [Device("MI300X", ExecutionMode.DRY_RUN)],
        policy=BATCH_POLICY,
        class_policies={0: INTERACTIVE_POLICY},
        slo=SLO(p99_latency_s=SLO_P99_S),
    )
    return service.run(trace)


def bucket_scenario(horizon_s: float, bucketed: bool, seed: int = SEED) -> ServiceReport:
    """Five nearby LOFAR shapes, exact-shape vs one-bucket batching."""
    edges = BUCKET_EDGES if bucketed else ()
    policy = BatchingPolicy(
        max_batch=BATCH_POLICY.max_batch,
        max_wait_s=BATCH_POLICY.max_wait_s,
        sample_buckets=edges,
    )
    reference = lofar_workload(n_samples=max(NEARBY_SAMPLES))
    per_shape_rate = (
        BUCKET_OVERLOAD * _batched_capacity_hz(reference, "GH200") / len(NEARBY_SAMPLES)
    )
    streams = [
        poisson_arrivals(
            lofar_workload(n_samples=n), per_shape_rate, horizon_s, seed=seed + i
        )
        for i, n in enumerate(NEARBY_SAMPLES)
    ]
    service = BeamformingService(_fleet(), policy=policy, slo=SLO(p99_latency_s=SLO_P99_S))
    return service.run(merge_arrivals(*streams))


def split_scenario(horizon_s: float, seed: int = SEED) -> ServiceReport:
    """A survey request bigger than any device, over background traffic.

    The survey job is offline work (minutes-scale SLO); the point is that
    it is *served* — sharded across the fleet in proportion to device
    memory — rather than shed for not fitting anywhere.
    """
    survey = lofar_workload(n_samples=256, n_channels=SURVEY_CHANNELS)
    background = lofar_workload(n_samples=256)
    rate = 0.5 * _batched_capacity_hz(background, "GH200")
    trace = merge_arrivals(
        poisson_arrivals(background, rate, horizon_s, seed=seed),
        [Request(rid=0, workload=survey, arrival_s=horizon_s / 2.0)],
    )
    service = BeamformingService(_fleet(), policy=BATCH_POLICY, slo=SLO(p99_latency_s=120.0))
    return service.run(trace)


def _precision_by_device(report: ServiceReport) -> dict[tuple[str, str], int]:
    """Launch counts per (device, precision), shard placements included."""
    counts: dict[tuple[str, str], int] = {}
    for execution in report.executions:
        parts = execution.shards if execution.is_split else [execution]
        precision = execution.batch.workload.precision.value
        for part in parts:
            key = (part.device_name, precision)
            counts[key] = counts.get(key, 0) + 1
    return counts


def _report_row(label: str, report: ServiceReport) -> list[object]:
    return [
        label,
        report.n_offered,
        report.n_completed,
        round(report.goodput_rps),
        report.p99_latency_s * 1e3,
        report.shed_rate * 100.0,
        report.n_batches,
        report.padded_ops_fraction * 100.0,
    ]


_REPORT_HEADERS = [
    "config",
    "offered",
    "completed",
    "goodput (req/s)",
    "p99 (ms)",
    "shed (%)",
    "launches",
    "padded ops (%)",
]


def run(quick: bool = False, recorder: NullRecorder | None = None) -> ExperimentResult:
    horizon_s = 0.004 if quick else 0.01
    findings: list[str] = []
    tables: dict[str, tuple[list[str], list[list[object]]]] = {}
    text_parts: list[str] = []

    # --- capability routing on the mixed fleet ------------------------------
    monitor = ServiceMonitor(interval_s=MONITOR_INTERVAL_S)
    mixed = mixed_scenario(horizon_s, recorder=recorder, monitor=monitor)
    by_dev = _precision_by_device(mixed)
    int1_on_amd = sum(n for (dev, prec), n in by_dev.items() if prec == "int1" and dev != "GH200")
    int1_on_gh200 = by_dev.get(("GH200", "int1"), 0)
    float16_on_amd = by_dev.get(("MI300X", "float16"), 0)
    placement_rows = [[dev, prec, n] for (dev, prec), n in sorted(by_dev.items())]
    tables["placement"] = (["device", "precision", "launches"], placement_rows)
    text_parts.append(
        render_table(
            ["device", "precision", "launches"],
            placement_rows,
            title=(
                "Launch placement on the GH200 + MI300X fleet "
                "(int1 imaging + float16 LOFAR)"
            ),
        )
    )
    worker_rows = [
        [w["device"], w["batches"], w["requests"], w["utilization"] * 100.0]
        for w in mixed.by_worker()
    ]
    tables["workers"] = (
        ["device", "launches", "requests", "utilization (%)"],
        worker_rows,
    )
    text_parts.append(
        render_table(
            ["device", "launches", "requests", "utilization (%)"],
            worker_rows,
            title="Per-worker totals of the same run",
        )
    )
    findings.append(
        f"capability routing: {int1_on_gh200} int1 launches, "
        f"{int1_on_amd} of them on the MI300X "
        f"({'PASS' if int1_on_amd == 0 and int1_on_gh200 > 0 else 'FAIL'}: "
        "1-bit MMA is NVIDIA-only)"
    )
    findings.append(
        f"heterogeneous backfill: the MI300X served {float16_on_amd} float16 "
        f"launches the GH200 alone could not absorb "
        f"({'PASS' if float16_on_amd > 0 else 'FAIL'})"
    )

    # --- int1 on an AMD-only fleet: shed at the door ------------------------
    amd_only = amd_only_scenario(horizon_s)
    findings.append(
        f"AMD-only fleet: {amd_only.shed_rate:.1%} of int1 requests shed at "
        f"admission with {amd_only.n_batches} launches attempted "
        f"({'PASS' if amd_only.shed_rate == 1.0 and amd_only.n_batches == 0 else 'FAIL'})"
    )

    # --- shape buckets: exact vs padded-merge at the same load --------------
    exact = bucket_scenario(horizon_s, bucketed=False)
    bucketed = bucket_scenario(horizon_s, bucketed=True)
    bucket_rows = [
        _report_row("exact-shape", exact),
        _report_row(f"buckets {BUCKET_EDGES}", bucketed),
    ]
    tables["buckets"] = (_REPORT_HEADERS, bucket_rows)
    text_parts.append(
        render_table(
            _REPORT_HEADERS,
            bucket_rows,
            title=(
                f"Shape-bucket pad-and-merge vs exact-shape batching "
                f"(LOFAR dumps of {NEARBY_SAMPLES} samples, same offered load)"
            ),
        )
    )
    goodput_gain = bucketed.goodput_rps / exact.goodput_rps if exact.goodput_rps > 0 else 0.0
    findings.append(
        f"shape buckets raise goodput {goodput_gain:.2f}x at the same offered "
        f"load, paying {bucketed.padded_ops_fraction:.1%} padded FLOPs over "
        f"{bucketed.n_batches} launches (vs {exact.n_batches} exact-shape) "
        f"({'PASS' if goodput_gain > 1.0 else 'FAIL'})"
    )

    # --- in-service sharding of an oversized request ------------------------
    split = split_scenario(horizon_s)
    split_execs = [e for e in split.executions if e.is_split]
    survey_outcome = next(
        o
        for o in split.outcomes
        if o.request.workload.batch_per_request == SURVEY_CHANNELS
    )
    shard_rows: list[list[object]] = []
    for execution in split_execs:
        for shard, extent in zip(execution.shards, execution.batch.decision.shard_extents):
            shard_rows.append(
                [
                    shard.device_name,
                    extent,
                    shard.gemm_s * 1e3,
                    shard.gemm_s / execution.service_s * 100.0,
                ]
            )
    tables["shards"] = (
        ["device", "channels", "gemm (ms)", "shard utilization (%)"],
        shard_rows,
    )
    text_parts.append(
        render_table(
            ["device", "channels", "gemm (ms)", "shard utilization (%)"],
            shard_rows,
            title=(
                f"In-service sharding of a {SURVEY_CHANNELS:,}-channel survey "
                "request (memory-proportional extents)"
            ),
        )
    )
    served = survey_outcome.completion_s is not None
    shard_devices = {s.device_name for s in split_execs[0].shards} if split_execs else set()
    findings.append(
        f"oversized survey request ({SURVEY_CHANNELS:,} channels, ~229 GB of "
        f"operands) served via in-service sharding across "
        f"{sorted(shard_devices)} instead of being shed "
        f"({'PASS' if served and shard_devices == set(FLEET) else 'FAIL'})"
    )

    # --- determinism ---------------------------------------------------------
    replay = mixed_scenario(horizon_s)
    deterministic = (
        replay.latencies_s == mixed.latencies_s
        and replay.n_batches == mixed.n_batches
        and _precision_by_device(replay) == by_dev
        and replay.placements == mixed.placements
    )
    findings.append(
        f"fixed-seed replay reproduces every latency, launch count, and "
        f"placement decision bit-identically ({'PASS' if deterministic else 'FAIL'})"
    )

    return ExperimentResult(
        name="serve-hetero",
        title="Heterogeneous fleets: capability routing, shape buckets, in-service sharding",
        text="\n".join(text_parts),
        tables=tables,
        findings=findings,
        metrics=mixed.metrics.snapshot() if mixed.metrics is not None else None,
        alerts=monitor.engine.snapshot(),
        availability=mixed.availability,
        dashboard_html=render_dashboard(
            mixed, title="serve-hetero: int1 imaging + float16 LOFAR on GH200 + MI300X"
        ),
    )
