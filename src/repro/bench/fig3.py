"""Experiment: paper Fig 3 — roofline analysis.

For every GPU, place the tuned kernel at the paper's four benchmark shapes
(float16/int1 x small/big) on the device roofline built from theoretical
memory bandwidth and *measured* tensor peaks. Verifies the paper's reading:
small sizes are memory-bound and sit close to the bandwidth slope
(especially on NVIDIA); big sizes are compute-bound at 50-85% of tensor
peak; and everywhere except small-size-on-workstation-GPUs the kernel beats
the theoretical float32-core maximum.
"""

from __future__ import annotations

from repro.bench.report import ExperimentResult
from repro.ccglib.perfmodel import model_gemm, theoretical_min_bytes
from repro.ccglib.precision import Precision
from repro.gpusim.specs import GPU_CATALOG
from repro.kerneltuner.strategies import GreedyILS
from repro.kerneltuner.tuner import tune_gemm
from repro.roofline.model import FIG3_PROBLEMS, build_roofline, place_point
from repro.util.formatting import render_table
from repro.util.units import tera

WORKSTATION_GPUS = ("AD4000", "W7700")


def run() -> ExperimentResult:
    headers = [
        "GPU",
        "precision",
        "size",
        "AI (ops/byte)",
        "achieved TOPs/s",
        "roofline TOPs/s",
        "fraction",
        "bound",
        "beats fp32 peak",
    ]
    rows: list[list[object]] = []
    checks = {"small_mem": 0, "small_total": 0, "big_ok": 0, "big_total": 0}
    beats_fp32_except_ws_small = True
    for gpu, spec in GPU_CATALOG.items():
        roof = build_roofline(spec)
        for (precision, size), problem in FIG3_PROBLEMS.items():
            if precision is Precision.INT1 and not spec.caps.supports_precision("int1"):
                continue
            tuned = tune_gemm(
                spec, precision, problem=problem, strategy=GreedyILS(budget=100, seed=3)
            )
            cost = model_gemm(spec, precision, problem, tuned.best_params)
            point = place_point(spec, precision, problem, cost, size)
            fp32_peak = spec.fp32_peak_ops()
            beats = point.achieved_ops > fp32_peak
            if size == "small":
                checks["small_total"] += 1
                checks["small_mem"] += int(point.memory_bound)
                if not beats and gpu not in WORKSTATION_GPUS:
                    beats_fp32_except_ws_small = False
            else:
                checks["big_total"] += 1
                frac_peak = point.achieved_ops / roof.peaks_ops[point.ceiling]
                checks["big_ok"] += int(not point.memory_bound and 0.35 <= frac_peak <= 0.95)
                if not beats:
                    beats_fp32_except_ws_small = False
            rows.append(
                [
                    gpu,
                    precision.value,
                    size,
                    round(point.arithmetic_intensity, 1),
                    round(point.achieved_ops / tera, 1),
                    round(point.attainable_ops / tera, 1),
                    round(point.fraction_of_roofline, 3),
                    "memory" if point.memory_bound else "compute",
                    "yes" if beats else "no",
                ]
            )
    text = render_table(headers, rows, title="Roofline placement of the tuned kernels")
    findings = [
        f"{checks['small_mem']}/{checks['small_total']} small-size kernels are "
        "memory-bound (paper: 'For all GPUs, the small matrix size is memory-bound')",
        f"{checks['big_ok']}/{checks['big_total']} big-size kernels are compute-bound "
        "at an intermediate fraction of tensor peak (paper: 50-85%)",
        "the float32-core ceiling is beaten everywhere except small sizes on "
        f"workstation GPUs: {beats_fp32_except_ws_small}",
    ]
    return ExperimentResult(
        name="fig3",
        title="Roofline analysis of the GEMM kernel (paper Fig 3)",
        text=text,
        tables={"roofline": (headers, rows)},
        findings=findings,
    )
