"""CLI: regenerate the paper's tables and figures.

Usage::

    python -m repro.bench                 # run everything -> results/
    python -m repro.bench fig5 fig7       # selected experiments
    python -m repro.bench --quick         # coarser sweeps
    python -m repro.bench --list          # experiments + one-line summaries
    python -m repro.bench serve --output report.json
    python -m repro.bench serve --trace serve.trace.json

Exits non-zero on unknown experiment names. ``--output`` additionally
writes one machine-readable JSON report covering every experiment run
(name, title, findings, raw table series, and — for serving experiments —
a ``metrics`` block with the registry snapshot of the headline run), plus
a top-level ``backends`` block listing every detected array backend with
its version string — the per-experiment ``.txt`` / ``.csv`` files still
land in ``--outdir``. ``--backend NAME`` routes the functional runners
through a :mod:`repro.backend` array backend (default numpy); unknown or
unimportable names exit non-zero listing what is available.
``--trace PATH`` records the headline run's span events and writes
Chrome/Perfetto ``trace_event`` JSON to PATH (open it at
``ui.perfetto.dev``); it applies to exactly one experiment per invocation.
``--dashboard PATH`` writes the headline run's monitoring dashboard — a
self-contained, byte-deterministic HTML page with per-series sparklines,
the burn-rate alert timeline, p99 blame, and the fleet timeline — and
likewise applies to exactly one (serving) experiment.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.backend import available_backends, backend_versions
from repro.bench.registry import (
    EXPERIMENTS,
    describe,
    run_experiment,
    supports_backend,
    supports_tracing,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="tcbf-bench",
        description="Regenerate the tables and figures of 'The Tensor-Core Beamformer'",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help=f"experiments to run (default: all). Known: {', '.join(EXPERIMENTS)}",
    )
    parser.add_argument("--outdir", default="results", help="output directory")
    parser.add_argument("--quick", action="store_true", help="coarser sweeps")
    parser.add_argument(
        "--list",
        action="store_true",
        help="list experiments with one-line descriptions and exit",
    )
    parser.add_argument(
        "--output",
        metavar="PATH",
        help="also write one combined JSON report of the run to PATH",
    )
    parser.add_argument(
        "--backend",
        metavar="NAME",
        help=(
            "array backend for functional runners (default: numpy); "
            "unknown or unavailable names exit non-zero listing what is "
            "importable here"
        ),
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        help=(
            "record the headline run's span events and write Perfetto "
            "trace_event JSON to PATH (exactly one experiment)"
        ),
    )
    parser.add_argument(
        "--dashboard",
        metavar="PATH",
        help=(
            "write the headline run's monitoring dashboard HTML to PATH "
            "(exactly one serving experiment)"
        ),
    )
    args = parser.parse_args(argv)

    if args.list:
        width = max(len(name) for name in EXPERIMENTS)
        for name in EXPERIMENTS:
            print(f"{name:<{width}}  {describe(name)}")
        return 0

    names = args.experiments or list(EXPERIMENTS)
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiments: {', '.join(unknown)}")

    if args.backend is not None:
        if args.backend not in available_backends():
            parser.error(
                f"backend {args.backend!r} is not available here; "
                f"available: {', '.join(available_backends())}"
            )
        unsupported = [n for n in names if not supports_backend(n)]
        if unsupported:
            backend_aware = [n for n in EXPERIMENTS if supports_backend(n)]
            parser.error(
                f"--backend is not supported by: {', '.join(unsupported)}; "
                f"backend-aware: {', '.join(backend_aware)}"
            )

    recorder = None
    if args.trace:
        if len(names) != 1:
            parser.error("--trace applies to exactly one experiment, e.g. --trace out.json serve")
        if not supports_tracing(names[0]):
            traceable = [n for n in EXPERIMENTS if supports_tracing(n)]
            parser.error(
                f"experiment {names[0]!r} does not support tracing; "
                f"traceable: {', '.join(traceable)}"
            )
        from repro.serve.obs import TraceRecorder

        recorder = TraceRecorder()
    if args.dashboard and len(names) != 1:
        parser.error(
            "--dashboard applies to exactly one experiment, "
            "e.g. --dashboard dash.html serve"
        )

    json_report: list[dict] = []
    dashboard_html: str | None = None
    for name in names:
        t0 = time.perf_counter()
        result = run_experiment(
            name, quick=args.quick, recorder=recorder, backend=args.backend
        )
        elapsed = time.perf_counter() - t0
        print(result.full_text())
        written = result.write(args.outdir)
        print(f"[{name}] done in {elapsed:.1f}s; wrote {len(written)} files to {args.outdir}/")
        print()
        entry = {
            "name": result.name,
            "title": result.title,
            "findings": result.findings,
            "tables": {
                table: {"headers": list(headers), "rows": [list(r) for r in rows]}
                for table, (headers, rows) in result.tables.items()
            },
            "elapsed_s": round(elapsed, 3),
        }
        if result.metrics is not None:
            entry["metrics"] = result.metrics
        if result.alerts is not None:
            entry["alerts"] = result.alerts
        if result.availability is not None:
            entry["availability"] = result.availability
        if args.dashboard:
            dashboard_html = result.dashboard_html
        json_report.append(entry)
    if args.trace:
        from repro.serve.obs import write_trace

        write_trace(recorder, args.trace)
        print(f"wrote Perfetto trace ({len(recorder.events)} events) to {args.trace}")
    if args.dashboard:
        if dashboard_html is None:
            parser.error(
                f"experiment {names[0]!r} does not produce a dashboard "
                "(only the serving experiments monitor their headline run)"
            )
        with open(args.dashboard, "w") as fh:
            fh.write(dashboard_html)
        print(f"wrote monitoring dashboard to {args.dashboard}")
    if args.output:
        report = {
            "backends": backend_versions(),
            "experiments": json_report,
        }
        with open(args.output, "w") as fh:
            json.dump(report, fh, indent=2, default=str)
        print(f"wrote JSON report to {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
