"""CLI: regenerate the paper's tables and figures.

Usage::

    python -m repro.bench                 # run everything -> results/
    python -m repro.bench fig5 fig7       # selected experiments
    python -m repro.bench --quick         # coarser sweeps
    python -m repro.bench --list
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.bench.registry import EXPERIMENTS, run_experiment


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="tcbf-bench",
        description="Regenerate the tables and figures of 'The Tensor-Core Beamformer'",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help=f"experiments to run (default: all). Known: {', '.join(EXPERIMENTS)}",
    )
    parser.add_argument("--outdir", default="results", help="output directory")
    parser.add_argument("--quick", action="store_true", help="coarser sweeps")
    parser.add_argument("--list", action="store_true", help="list experiments and exit")
    args = parser.parse_args(argv)

    if args.list:
        for name in EXPERIMENTS:
            print(name)
        return 0

    names = args.experiments or list(EXPERIMENTS)
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiments: {', '.join(unknown)}")

    for name in names:
        t0 = time.perf_counter()
        result = run_experiment(name, quick=args.quick)
        elapsed = time.perf_counter() - t0
        print(result.full_text())
        written = result.write(args.outdir)
        print(f"[{name}] done in {elapsed:.1f}s; wrote {len(written)} files to {args.outdir}/")
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
