"""Experiment: resilience — a crash + straggler storm, with and without recovery.

The paper benchmarks a healthy device; an always-on serving tier cannot
assume one. This experiment drives one fixed-seed Poisson trace (a fixed
four-A100 fleet at 70% of its batched GEMM capacity) through the same
seeded :func:`~repro.serve.faults.crash_storm` — one worker crash with a
cold replacement, plus two transient 4x straggler windows — under three
regimes:

* **fault-free** — no storm at all: the control arm, and the byte-identity
  witness (a service constructed with an *empty* fault plan must replay
  it bit-for-bit);
* **no-recovery** — the storm with
  :meth:`~repro.serve.faults.ResiliencePolicy.disabled`: whatever was in
  flight on the crashed worker is simply lost;
* **resilient** — the storm with the default
  :class:`~repro.serve.faults.ResiliencePolicy`: per-class retries with
  deadline-aware re-placement, hedged dispatch against the stragglers,
  shard recovery, and plan re-warm on the replacement.

Checked claims, all deterministic:

* without recovery the crash costs admitted requests — availability lands
  below the 99.9% bar at the same device-second spend;
* the resilient arm recovers to >= 99.9% availability *and* holds the p99
  SLO through the storm, with the recovery bill (wasted device-seconds
  from hedge losers and burned crash work) reported, never hidden;
* recovery buys availability with work, not with capacity: the resilient
  arm's device-seconds stay within a few percent of the no-recovery arm's;
* a service handed an empty fault plan replays the fault-free arm
  byte-identically (the zero-overhead-when-disabled contract);
* a fixed-seed replay of the resilient arm reproduces every latency and
  recovery counter bit-for-bit.
"""

from __future__ import annotations

from functools import cache

from repro.apps.radioastronomy.beamformer import service_workload as lofar_workload
from repro.bench.report import ExperimentResult
from repro.gpusim.device import Device, ExecutionMode
from repro.serve import (
    SLO,
    BatchingPolicy,
    BeamformingService,
    FaultPlan,
    ResiliencePolicy,
    ServiceReport,
    crash_storm,
    poisson_arrivals,
)
from repro.serve.obs import ServiceMonitor, render_dashboard
from repro.serve.obs.trace import NullRecorder
from repro.util.formatting import render_table

GPU = "A100"
#: independent child streams: the trace and the storm must not be coupled.
TRACE_SEED = 11
STORM_SEED = 7

N_WORKERS = 4
HORIZON_S = 16e-3
#: offered load relative to the whole fleet's batched GEMM capacity —
#: high enough that a crash always finds batches in flight to kill.
LOAD = 0.7

SLO_P99_S = 3e-3
DEADLINE_S = 2e-3
POLICY = BatchingPolicy(max_batch=32, max_wait_s=0.5e-3)

#: storm shape: one crash (with a cold same-model replacement) and two
#: transient straggler windows on the survivors.
N_CRASHES = 1
N_SLOW_WINDOWS = 2
SLOW_FACTOR = 4.0
REPLACE_STARTUP_S = 400e-6

#: monitor sampling cadence of the headline (resilient) run.
MONITOR_INTERVAL_S = 100e-6

#: acceptance bars.
AVAILABILITY_BAR = 0.999
#: device-second parity between the recovery arms (same fleet, same storm,
#: same horizon — recovery must not smuggle in extra capacity).
DEVICE_SECONDS_TOL = 0.03

#: horizon of the small scenario pinned by the checked-in golden CSV —
#: the single source both the golden test and scripts/check_golden.py read.
GOLDEN_HORIZON_S = 8e-3


def _device() -> Device:
    return Device(GPU, ExecutionMode.DRY_RUN)


def _workload():
    return lofar_workload(n_samples=2048)


@cache
def capacity_hz() -> float:
    """Requests/s one device sustains on full merged batches (GEMM-bound,
    the same accounting as the serve-autoscale bench). Cached: a pure
    function of the catalog spec, consulted by every arm and replay."""
    plan = _workload().kernel.make_plan(_device(), POLICY.max_batch)
    return POLICY.max_batch / plan.predict_gemm_cost().time_s


def _trace(horizon_s: float, seed: int = TRACE_SEED):
    return poisson_arrivals(
        _workload(), LOAD * N_WORKERS * capacity_hz(), horizon_s, seed=seed
    )


def storm(horizon_s: float = HORIZON_S) -> FaultPlan:
    """The seeded storm every faulted arm replays (crash + replacement +
    straggler windows), deterministic for a fixed horizon."""
    return crash_storm(
        horizon_s,
        list(range(N_WORKERS)),
        n_crashes=N_CRASHES,
        n_slow_windows=N_SLOW_WINDOWS,
        slow_factor=SLOW_FACTOR,
        replace_device=GPU,
        replace_startup_s=REPLACE_STARTUP_S,
        seed=STORM_SEED,
    )


def _service(
    faults: FaultPlan | None = None,
    resilience: ResiliencePolicy | None = None,
    recorder: NullRecorder | None = None,
    monitor: ServiceMonitor | None = None,
) -> BeamformingService:
    return BeamformingService(
        [_device() for _ in range(N_WORKERS)],
        policy=POLICY,
        slo=SLO(p99_latency_s=SLO_P99_S, deadline_s=DEADLINE_S),
        faults=faults,
        resilience=resilience,
        recorder=recorder,
        monitor=monitor,
    )


def fault_free_scenario(
    horizon_s: float = HORIZON_S, faults: FaultPlan | None = None
) -> ServiceReport:
    """The control arm; pass an empty :class:`FaultPlan` to witness the
    zero-overhead-when-disabled byte-identity contract."""
    return _service(faults=faults).run(_trace(horizon_s))


def no_recovery_scenario(horizon_s: float = HORIZON_S) -> ServiceReport:
    """The storm with every recovery mechanism switched off."""
    return _service(
        faults=storm(horizon_s), resilience=ResiliencePolicy.disabled()
    ).run(_trace(horizon_s))


def resilient_scenario(
    horizon_s: float = HORIZON_S,
    recorder: NullRecorder | None = None,
    monitor: ServiceMonitor | None = None,
) -> ServiceReport:
    """The storm with the default recovery policy — the headline arm."""
    return _service(
        faults=storm(horizon_s),
        resilience=ResiliencePolicy(),
        recorder=recorder,
        monitor=monitor,
    ).run(_trace(horizon_s))


def _arm_row(label: str, report: ServiceReport) -> list[object]:
    return [
        label,
        report.n_offered,
        report.n_admitted,
        report.n_completed,
        report.availability * 100.0,
        report.p99_latency_s * 1e3,
        report.shed_rate * 100.0,
        report.device_seconds * 1e3,
        report.n_crashes,
        report.n_retries,
        report.n_hedges,
        report.n_hedge_wins,
        report.n_shard_recoveries,
        report.wasted_device_seconds * 1e3,
    ]


_ARM_HEADERS = [
    "config",
    "offered",
    "admitted",
    "completed",
    "availability (%)",
    "p99 (ms)",
    "shed (%)",
    "device-ms",
    "crashes",
    "retries",
    "hedges",
    "hedge wins",
    "shard recoveries",
    "wasted device-ms",
]


def _storm_rows(plan: FaultPlan) -> list[list[object]]:
    return [
        [e.t_s * 1e3, e.kind.value, e.worker_index, e.factor, e.device_name, e.startup_s * 1e3]
        for e in plan.events
    ]


_STORM_HEADERS = ["t (ms)", "kind", "worker", "factor", "device", "startup (ms)"]


def golden_rows(
    horizon_s: float = GOLDEN_HORIZON_S,
) -> tuple[list[str], list[list[object]]]:
    """The scenario rows pinned by the checked-in golden CSV.

    One row per arm of the storm scenario over one short horizon; every
    value is a deterministic function of the seeds, so the rendered CSV
    must match the golden file byte for byte on any platform. Regenerate
    (and re-bless deliberately) via ``scripts/check_golden.py --bless``.
    """
    rows = [
        _arm_row("fault-free", fault_free_scenario(horizon_s)),
        _arm_row("no-recovery", no_recovery_scenario(horizon_s)),
        _arm_row("resilient", resilient_scenario(horizon_s)),
    ]
    return _ARM_HEADERS, rows


def run(quick: bool = False, recorder: NullRecorder | None = None) -> ExperimentResult:
    # The storm is the experiment: quick mode keeps the full horizon (the
    # run is already small, and a shorter one would under-sample the
    # straggler windows the hedging claim needs).
    horizon_s = HORIZON_S
    findings: list[str] = []
    tables: dict[str, tuple[list[str], list[list[object]]]] = {}
    text_parts: list[str] = []

    monitor = ServiceMonitor(interval_s=MONITOR_INTERVAL_S)
    fault_free = fault_free_scenario(horizon_s)
    no_recovery = no_recovery_scenario(horizon_s)
    resilient = resilient_scenario(horizon_s, recorder=recorder, monitor=monitor)

    rows = [
        _arm_row("fault-free", fault_free),
        _arm_row("no-recovery", no_recovery),
        _arm_row("resilient", resilient),
    ]
    tables["arms"] = (_ARM_HEADERS, rows)
    text_parts.append(
        render_table(
            _ARM_HEADERS,
            rows,
            title=(
                f"One crash (+cold replacement) and {N_SLOW_WINDOWS} transient "
                f"{SLOW_FACTOR:.0f}x straggler windows on {N_WORKERS} {GPU}s at "
                f"{LOAD:.0%} fleet load: recovery on vs off"
            ),
        )
    )
    storm_rows = _storm_rows(storm(horizon_s))
    tables["storm"] = (_STORM_HEADERS, storm_rows)
    text_parts.append(
        render_table(
            _STORM_HEADERS, storm_rows, title="The injected storm, in time order"
        )
    )

    # --- the crash costs requests without recovery; recovery restores them --
    availability_ok = (
        no_recovery.n_failed > 0
        and no_recovery.availability < AVAILABILITY_BAR
        and resilient.availability >= AVAILABILITY_BAR
    )
    findings.append(
        f"without recovery the crash loses {no_recovery.n_failed} admitted "
        f"requests ({no_recovery.availability:.3%} available, below the "
        f"{AVAILABILITY_BAR:.1%} bar); the default policy recovers to "
        f"{resilient.availability:.3%} with {resilient.n_retries} retries, "
        f"{resilient.n_hedges} hedges ({resilient.n_hedge_wins} won), and "
        f"{resilient.n_shard_recoveries} shard recoveries "
        f"({'PASS' if availability_ok else 'FAIL'})"
    )

    # --- the SLO holds through the storm ------------------------------------
    slo_ok = resilient.p99_latency_s <= SLO_P99_S and resilient.shed_rate == 0.0
    findings.append(
        f"the resilient arm holds p99 {resilient.p99_latency_s * 1e3:.3f} ms "
        f"<= {SLO_P99_S * 1e3:.0f} ms through the storm with "
        f"{resilient.shed_rate:.2%} shed ({'PASS' if slo_ok else 'FAIL'})"
    )

    # --- recovery is work, not capacity -------------------------------------
    parity = resilient.device_seconds / no_recovery.device_seconds
    parity_ok = abs(parity - 1.0) <= DEVICE_SECONDS_TOL
    findings.append(
        f"recovery buys availability with work, not capacity: "
        f"{parity:.1%} of the no-recovery arm's device-seconds, with the "
        f"bill reported as {resilient.wasted_device_seconds * 1e3:.3f} wasted "
        f"device-ms (hedge losers + burned crash work) "
        f"({'PASS' if parity_ok else 'FAIL'})"
    )

    # --- zero faults, zero overhead -----------------------------------------
    empty_plan = fault_free_scenario(horizon_s, faults=FaultPlan())
    identical = (
        empty_plan.latencies_s == fault_free.latencies_s
        and empty_plan.summary() == fault_free.summary()
        and _arm_row("fault-free", empty_plan) == rows[0]
    )
    findings.append(
        f"a service handed an empty fault plan replays the fault-free arm "
        f"byte-identically ({'PASS' if identical else 'FAIL'})"
    )

    # --- determinism ---------------------------------------------------------
    replay = resilient_scenario(horizon_s)
    deterministic = (
        replay.latencies_s == resilient.latencies_s
        and _arm_row("resilient", replay) == rows[2]
    )
    findings.append(
        f"fixed-seed replay reproduces every latency and recovery counter "
        f"bit-identically ({'PASS' if deterministic else 'FAIL'})"
    )

    return ExperimentResult(
        name="serve-resilience",
        title="Resilient serving: crash storms, stragglers, and recovery",
        text="\n".join(text_parts),
        tables=tables,
        findings=findings,
        metrics=resilient.metrics.snapshot() if resilient.metrics is not None else None,
        alerts=monitor.engine.snapshot(),
        availability=resilient.availability,
        dashboard_html=render_dashboard(
            resilient,
            title=f"serve-resilience: default recovery policy under the {GPU} storm",
        ),
    )
