"""Experiment: pipeline (DAG) workloads served end to end on one fleet.

Real deployments of the tensor-core beamformer chain kernels, not single
launches: the paper's radio-astronomy path is channelizer → beamformer →
pulsar search (§V-B) and its ultrasound path is beamform → Doppler
ensemble (§V-A). This experiment serves both *as pipelines* — the
observatory DAG (:func:`repro.apps.radioastronomy.beamformer.pipeline_workload`)
and the clinic DAG (:func:`repro.apps.ultrasound.imaging.pipeline_workload`)
mixed on one heterogeneous **GH200 + A100** fleet — and checks the
serving tier's pipeline machinery end to end, deterministically:

* **end-to-end SLO** — latency is measured from the arrival of a request
  to the completion of its *last* stage, and the end-to-end p99 must sit
  inside the pinned objective; per-stage batching still coalesces
  same-stage requests from concurrent arrivals into shared launches;
* **stage locality** — the placer prices each stage's inter-stage buffer:
  resident on the worker that produced the dependency (stage-in elided)
  or transferred over the interconnect. The same traffic runs once with
  locality-aware scoring and once stage-blind; the locality arm must keep
  a higher fraction of stage dispatches local and a no-worse tail. Both
  arms *pay* the transfer physics — only the scoring differs;
* **determinism** — a fixed-seed replay of the headline run reproduces
  every end-to-end latency and placement bit-for-bit, and the golden CSV
  pins both arms' numbers byte-exactly.
"""

from __future__ import annotations

from repro.apps.radioastronomy.beamformer import pipeline_workload as radio_pipeline
from repro.apps.ultrasound.imaging import pipeline_workload as ultrasound_pipeline
from repro.bench.report import ExperimentResult
from repro.gpusim.device import Device, ExecutionMode
from repro.serve import (
    SLO,
    BatchingPolicy,
    BeamformingService,
    Placer,
    ServiceMonitor,
    ServiceReport,
    merge_arrivals,
    poisson_arrivals,
    render_dashboard,
)
from repro.serve.obs.trace import NullRecorder
from repro.util.formatting import render_table

SEED = 2027

#: end-to-end latency objective for the mixed-DAG run — generous next to
#: a single stage's service time because three stages must flush, queue,
#: and complete in sequence, but tight enough that a scheduling
#: regression (or a locality loss) shows up as a FAIL.
E2E_SLO_P99_S = 10e-3

#: the mixed fleet the two DAGs share: one Grace Hopper, one A100 —
#: heterogeneous peaks, so stage placement has a real choice to make.
FLEET = ("GH200", "A100")

#: survey (observatory) end-to-end offered rate relative to the
#: beamform stage's single-device batched capacity. Pipeline load
#: multiplies — every request spawns one launch-share per stage, and
#: remote inter-stage buffers cost interconnect time — so 0.08 of one
#: stage's capacity already keeps the two-device fleet busy while the
#: locality arm's full-horizon tail stays inside the end-to-end SLO
#: (the tail is set by waits for the buffer-resident worker, not by
#: queue growth, so pushing the load lower does not shrink it further).
SURVEY_LOAD = 0.08
#: imaging (clinic) offered rate relative to its beamform capacity.
IMAGING_LOAD = 0.08

BATCH_POLICY = BatchingPolicy(max_batch=8, max_wait_s=100e-6)

#: monitoring cadence of the headline run.
MONITOR_INTERVAL_S = 50e-6

#: horizon of the golden replay (short: the CSV pins both arms).
GOLDEN_HORIZON_S = 0.004


def _fleet() -> list[Device]:
    return [Device(name, ExecutionMode.DRY_RUN) for name in FLEET]


def _pipelines():
    """The two DAGs of the headline run (fixed shapes, survey + imaging)."""
    survey = radio_pipeline(
        n_beams=256, n_stations=64, n_samples=256, n_channels=32, n_dms=64
    )
    imaging = ultrasound_pipeline(
        n_voxels=4096, k=1024, n_frames=64, n_ensemble=32
    )
    return survey, imaging


def _stage_capacity_hz(pipeline, stage: str, gpu: str) -> float:
    """Requests/s one device sustains on full merged batches of one stage."""
    merged = BATCH_POLICY.max_batch
    kernel = pipeline.stage(stage).workload
    plan = kernel.make_plan(Device(gpu, ExecutionMode.DRY_RUN), merged)
    return merged / plan.predict_block_cost().time_s


def mixed_scenario(
    horizon_s: float,
    stage_locality: bool = True,
    seed: int = SEED,
    recorder: NullRecorder | None = None,
    monitor: ServiceMonitor | None = None,
) -> ServiceReport:
    """Survey + imaging DAGs on the shared fleet, one locality arm.

    ``stage_locality`` toggles only the placer's *scoring* — whether
    ``select_worker`` sees the buffer-residency-adjusted stage-in cost.
    The transfer physics is charged identically in both arms at dispatch,
    so the comparison isolates the placement policy.
    """
    survey, imaging = _pipelines()
    survey_rate = SURVEY_LOAD * _stage_capacity_hz(survey, "beamform", "GH200")
    imaging_rate = IMAGING_LOAD * _stage_capacity_hz(imaging, "beamform", "GH200")
    trace = merge_arrivals(
        poisson_arrivals(survey, survey_rate, horizon_s, seed=seed),
        poisson_arrivals(imaging, imaging_rate, horizon_s, seed=seed + 1),
    )
    service = BeamformingService(
        _fleet(),
        policy=BATCH_POLICY,
        slo=SLO(p99_latency_s=E2E_SLO_P99_S),
        placer=Placer(stage_locality=stage_locality),
        recorder=recorder,
        monitor=monitor,
    )
    return service.run(trace)


def _stage_dispatch_counts(report: ServiceReport) -> tuple[int, int]:
    """(local, remote) stage-batch dispatch counts from the run's counters."""
    counters = report.metrics.snapshot()["counters"] if report.metrics else {}
    return (
        int(counters.get("dispatch.stage_local", 0)),
        int(counters.get("dispatch.stage_remote", 0)),
    )


def _local_fraction(report: ServiceReport) -> float:
    local, remote = _stage_dispatch_counts(report)
    return local / (local + remote) if local + remote else 0.0


def _arm_row(label: str, report: ServiceReport) -> list[object]:
    local, remote = _stage_dispatch_counts(report)
    return [
        label,
        report.n_offered,
        report.n_completed,
        report.shed_rate * 100.0,
        report.p50_latency_s * 1e3,
        report.p99_latency_s * 1e3,
        round(report.throughput_rps),
        _local_fraction(report) * 100.0,
        remote,
    ]


_ARM_HEADERS = [
    "config",
    "offered",
    "completed",
    "shed (%)",
    "p50 (ms)",
    "p99 (ms)",
    "thr (req/s)",
    "stage-local (%)",
    "remote stage launches",
]


def _stage_placement_rows(report: ServiceReport) -> list[list[object]]:
    """Launch counts per (stage workload, device) of one run."""
    counts: dict[tuple[str, str], tuple[int, int]] = {}
    for execution in report.executions:
        parts = execution.shards if execution.is_split else [execution]
        name = execution.batch.workload.name
        for part in parts:
            launches, requests = counts.get((name, part.device_name), (0, 0))
            counts[(name, part.device_name)] = (
                launches + 1,
                requests + execution.batch.n_requests,
            )
    return [
        [name, device, launches, requests]
        for (name, device), (launches, requests) in sorted(counts.items())
    ]


def golden_rows(
    horizon_s: float = GOLDEN_HORIZON_S, seed: int = SEED
) -> tuple[list[str], list[list[object]]]:
    """The small fixed scenario pinned by the checked-in golden CSV.

    Both locality arms of a short mixed-DAG run; every value is a
    deterministic function of the seed, so the rendered CSV must match
    the golden file byte for byte on any platform.
    """
    locality = mixed_scenario(horizon_s, stage_locality=True, seed=seed)
    blind = mixed_scenario(horizon_s, stage_locality=False, seed=seed)
    return _ARM_HEADERS, [
        _arm_row("stage-locality", locality),
        _arm_row("stage-blind", blind),
    ]


def run(quick: bool = False, recorder: NullRecorder | None = None) -> ExperimentResult:
    horizon_s = 0.004 if quick else 0.01
    findings: list[str] = []
    tables: dict[str, tuple[list[str], list[list[object]]]] = {}
    text_parts: list[str] = []

    # --- headline: both DAGs, locality-aware placement ----------------------
    monitor = ServiceMonitor(interval_s=MONITOR_INTERVAL_S)
    locality = mixed_scenario(horizon_s, stage_locality=True, recorder=recorder, monitor=monitor)
    blind = mixed_scenario(horizon_s, stage_locality=False)

    arm_rows = [
        _arm_row("stage-locality", locality),
        _arm_row("stage-blind", blind),
    ]
    tables["arms"] = (_ARM_HEADERS, arm_rows)
    text_parts.append(
        render_table(
            _ARM_HEADERS,
            arm_rows,
            title=(
                "End-to-end pipeline serving on the GH200 + A100 fleet "
                "(observatory channelize->beamform->dedisperse + clinic "
                "beamform->Doppler), locality-aware vs stage-blind placement"
            ),
        )
    )
    stage_rows = _stage_placement_rows(locality)
    tables["stages"] = (["stage", "device", "launches", "requests"], stage_rows)
    text_parts.append(
        render_table(
            ["stage", "device", "launches", "requests"],
            stage_rows,
            title="Per-stage launch placement of the locality-aware run",
        )
    )

    # --- findings -----------------------------------------------------------
    p99_ms = locality.p99_latency_s * 1e3
    findings.append(
        f"end-to-end p99 of the mixed survey+imaging DAG run: {p99_ms:.3f} ms "
        f"against the {E2E_SLO_P99_S * 1e3:.0f} ms objective "
        f"({'PASS' if locality.p99_latency_s <= E2E_SLO_P99_S else 'FAIL'}; "
        "latency spans every stage, arrival to last-stage completion)"
    )
    local_frac = _local_fraction(locality)
    blind_frac = _local_fraction(blind)
    beats = local_frac > blind_frac and locality.p99_latency_s <= blind.p99_latency_s
    findings.append(
        f"stage-locality placement kept {local_frac:.1%} of stage dispatches "
        f"on the worker holding their input buffer (stage-blind: {blind_frac:.1%}) "
        f"at p99 {p99_ms:.3f} ms vs {blind.p99_latency_s * 1e3:.3f} ms "
        f"({'PASS' if beats else 'FAIL'}: both arms pay the same transfer "
        "physics; only the scoring differs)"
    )
    survey, imaging = _pipelines()
    stage_names = {w for w, _d, _l, _r in [tuple(r) for r in stage_rows]}
    all_stages = {s.workload.name for s in survey.stages} | {
        s.workload.name for s in imaging.stages
    }
    findings.append(
        f"both DAGs executed every stage on the shared fleet: "
        f"{len(stage_names & all_stages)}/{len(all_stages)} stage classes "
        f"launched ({'PASS' if stage_names >= all_stages else 'FAIL'})"
    )

    # --- determinism --------------------------------------------------------
    replay = mixed_scenario(horizon_s, stage_locality=True)
    deterministic = (
        replay.latencies_s == locality.latencies_s
        and replay.n_batches == locality.n_batches
        and replay.placements == locality.placements
        and _stage_dispatch_counts(replay) == _stage_dispatch_counts(locality)
    )
    findings.append(
        f"fixed-seed replay reproduces every end-to-end latency, launch, "
        f"and stage placement bit-identically ({'PASS' if deterministic else 'FAIL'})"
    )

    return ExperimentResult(
        name="serve-pipeline",
        title="Pipeline (DAG) workloads: end-to-end SLOs and stage-locality placement",
        text="\n".join(text_parts),
        tables=tables,
        findings=findings,
        metrics=locality.metrics.snapshot() if locality.metrics is not None else None,
        alerts=monitor.engine.snapshot(),
        availability=locality.availability,
        dashboard_html=render_dashboard(
            locality, title="serve-pipeline: mixed observatory + clinic DAGs on GH200 + A100"
        ),
    )
