"""Experiment: paper Fig 2 — auto-tuning scatter of performance vs energy.

For every GPU (float16) and every NVIDIA GPU (int1), brute-force tune the
GEMM at the paper's tuning sizes and emit the full (TOPs/J, TOPs/s) cloud —
one point per valid configuration — plus the paper's observation checks:
the fastest configuration is (close to) the most energy-efficient one, and
the GH200 shows a wide efficiency spread among similarly fast kernels.
"""

from __future__ import annotations

from repro.bench.report import ExperimentResult
from repro.ccglib.precision import Precision
from repro.gpusim.specs import GPU_CATALOG
from repro.kerneltuner.tuner import tune_gemm
from repro.util.formatting import ascii_scatter, render_table


def run() -> ExperimentResult:
    sections: list[str] = []
    tables: dict[str, tuple[list[str], list[list[object]]]] = {}
    findings: list[str] = []
    headers = ["config", "tops", "tops_per_joule", "power_w", "time_s"]
    summary_rows: list[list[object]] = []
    for gpu, spec in GPU_CATALOG.items():
        for precision in (Precision.FLOAT16, Precision.INT1):
            if precision is Precision.INT1 and not spec.caps.supports_precision("int1"):
                continue
            result = tune_gemm(spec, precision)
            rows = [
                [
                    str(rec.params),
                    round(rec.metrics["tops"], 1),
                    round(rec.metrics["tops_per_joule"], 3),
                    round(rec.metrics["power_w"], 1),
                    rec.metrics["time_s"],
                ]
                for rec in result.records
            ]
            tables[f"{gpu}_{precision.value}"] = (headers, rows)
            xs = [rec.metrics["tops_per_joule"] for rec in result.records]
            ys = [rec.metrics["tops"] for rec in result.records]
            sections.append(
                ascii_scatter(
                    xs,
                    ys,
                    width=56,
                    height=12,
                    xlabel="TOPs/J",
                    ylabel="TOPs/s",
                    title=f"{gpu} {precision.value}: {len(rows)} valid configs "
                    f"({result.invalid_configs} invalid)",
                )
            )
            best_perf = result.best
            best_eff = max(result.records, key=lambda r: r.metrics["tops_per_joule"])
            perf_of_eff = best_eff.metrics["tops"] / best_perf.metrics["tops"]
            summary_rows.append(
                [
                    gpu,
                    precision.value,
                    round(best_perf.metrics["tops"], 1),
                    round(best_perf.metrics["tops_per_joule"], 2),
                    round(best_eff.metrics["tops_per_joule"], 2),
                    round(perf_of_eff, 3),
                ]
            )
    tables["summary"] = (
        ["GPU", "precision", "best TOPs/s", "its TOPs/J", "best TOPs/J", "perf@bestE / best perf"],
        summary_rows,
    )
    sections.append(
        render_table(tables["summary"][0], tables["summary"][1], title="Per-device tuning summary")
    )
    near = sum(1 for r in summary_rows if r[5] >= 0.9)
    findings.append(
        f"in {near}/{len(summary_rows)} device/precision pairs the most "
        "energy-efficient configuration performs within 10% of the fastest "
        "(paper: 'typically, the most performant combination of parameters is "
        "also the most energy efficient solution')"
    )
    return ExperimentResult(
        name="fig2",
        title="Auto-tuning results: performance vs energy efficiency (paper Fig 2)",
        text="\n".join(sections),
        tables=tables,
        findings=findings,
    )
