"""Experiment: paper Fig 4 — performance/energy across matrix sizes.

Three sweeps with the Table III parameters, reproducing the panels of
Fig 4: (a) float16 with M=N=K swept to 16384 on all GPUs; (b) int1 with
M=N swept at the tuned K, and K swept at the tuned M, N (NVIDIA only).
Off-tile sizes are included to expose the padding sawtooth.
"""

from __future__ import annotations

from repro.bench.report import ExperimentResult
from repro.ccglib.benchmark import size_grid, sweep_cubic, sweep_k, sweep_mn
from repro.ccglib.precision import Precision
from repro.gpusim.specs import GPU_CATALOG, INT1_GPUS
from repro.util.formatting import ascii_series, render_table


def run(quick: bool = False) -> ExperimentResult:
    step = 2048 if quick else 1024
    sizes = size_grid(512, 16384, step, include_offsets=(0, 136))
    tables: dict[str, tuple[list[str], list[list[object]]]] = {}
    sections: list[str] = []
    headers = ["size", "tops", "tops_per_joule", "bound"]

    # (a) float16 cubic sweep on every GPU.
    fp16_series: dict[str, tuple[list[float], list[float]]] = {}
    sawtooth_checks = []
    for gpu, spec in GPU_CATALOG.items():
        points = sweep_cubic(spec, Precision.FLOAT16, sizes)
        rows = [[p.m, round(p.tops, 1), round(p.tops_per_joule, 3), p.bound] for p in points]
        tables[f"fp16_{gpu}"] = (headers, rows)
        fp16_series[gpu] = ([float(p.m) for p in points], [p.tops for p in points])
        by_size = {p.m: p.tops for p in points}
        pairs = [(s, s + 136) for s in by_size if s + 136 in by_size]
        if pairs:
            sawtooth_checks.append(
                sum(by_size[off] < by_size[base] for base, off in pairs) / len(pairs)
            )
    sections.append(
        ascii_series(
            fp16_series,
            width=60,
            height=14,
            xlabel="matrix size (all axes)",
            ylabel="TFLOPs/s",
            title="float16 GEMM performance vs size (Fig 4a)",
        )
    )

    # (b) int1 sweeps (NVIDIA only).
    int1_mn_series: dict[str, tuple[list[float], list[float]]] = {}
    int1_k_series: dict[str, tuple[list[float], list[float]]] = {}
    k_values = size_grid(32768, 1048576, 131072 if quick else 65536, include_offsets=(0, 4096))
    for gpu in INT1_GPUS:
        spec = GPU_CATALOG[gpu]
        mn_points = sweep_mn(spec, Precision.INT1, sizes, k=524288)
        tables[f"int1_mn_{gpu}"] = (
            headers,
            [[p.m, round(p.tops, 1), round(p.tops_per_joule, 3), p.bound] for p in mn_points],
        )
        int1_mn_series[gpu] = ([float(p.m) for p in mn_points], [p.tops for p in mn_points])
        k_points = sweep_k(spec, Precision.INT1, k_values, m=32768, n=8192)
        tables[f"int1_k_{gpu}"] = (
            ["k", "tops", "tops_per_joule", "bound"],
            [[p.k, round(p.tops, 1), round(p.tops_per_joule, 3), p.bound] for p in k_points],
        )
        int1_k_series[gpu] = ([float(p.k) for p in k_points], [p.tops for p in k_points])
    sections.append(
        ascii_series(
            int1_mn_series,
            width=60,
            height=12,
            xlabel="matrix size (M, N)",
            ylabel="TOPs/s",
            title="int1 GEMM performance vs M=N at K=524288 (Fig 4b left)",
        )
    )
    sections.append(
        ascii_series(
            int1_k_series,
            width=60,
            height=12,
            xlabel="matrix size (K)",
            ylabel="TOPs/s",
            title="int1 GEMM performance vs K at M=32768, N=8192 (Fig 4b right)",
        )
    )

    # Summary of asymptotic levels.
    summary_rows = []
    for gpu, (xs, ys) in fp16_series.items():
        summary_rows.append([gpu, "float16", round(max(ys), 1)])
    for gpu, (xs, ys) in int1_mn_series.items():
        summary_rows.append([gpu, "int1", round(max(ys), 1)])
    tables["summary"] = (["GPU", "precision", "peak TOPs/s in sweep"], summary_rows)
    sections.append(render_table(*tables["summary"], title="Sweep maxima"))

    findings = [
        "performance and energy efficiency are substantially lower for small "
        "matrices and plateau from a few thousand elements per side",
        f"off-tile sizes are slower than aligned sizes in "
        f"{100 * sum(sawtooth_checks) / max(len(sawtooth_checks), 1):.0f}% of "
        "float16 samples (the padding sawtooth)",
        "sweep maxima approach the Table III tuned values per GPU",
    ]
    return ExperimentResult(
        name="fig4",
        title="Complex GEMM benchmark across matrix sizes (paper Fig 4)",
        text="\n".join(sections),
        tables=tables,
        findings=findings,
    )
