"""Experiment: the serving tier under load (beyond-paper scenario axis).

The paper measures the beamformer as a library — one caller, saturating
batches. The roadmap's production scenario is the opposite: many callers,
each bringing a request far too small to fill a tensor-core GPU. This
experiment quantifies what the :mod:`repro.serve` tier buys back:

* **headline** — naive per-request execution vs dynamic micro-batching on
  one A100 under the same Poisson overload (5x the naive single-device
  capacity, self-calibrated from the cost model): micro-batching must
  sustain >= 3x the naive throughput with p99 inside the SLO;
* **policies** — the max-batch x fleet-size knob grid;
* **traffic** — Poisson / bursty / diurnal shapes through the batched
  configuration (admission control keeps the tail bounded by shedding);
* **ultrasound** — the same story on low-latency 2-D live-view frame
  requests (big requests batch less: the win shifts to the plan cache);
* **determinism** — two identical runs must agree bit-for-bit.
"""

from __future__ import annotations

import hashlib

from repro.apps.radioastronomy.beamformer import service_workload as lofar_workload
from repro.apps.ultrasound.imaging import service_workload as ultrasound_workload
from repro.bench.report import ExperimentResult
from repro.gpusim.device import Device, ExecutionMode
from repro.serve import (
    SLO,
    BatchingPolicy,
    BeamformingService,
    Request,
    ServiceMonitor,
    ServiceReport,
    TraceRecorder,
    Workload,
    bursty_arrivals,
    diurnal_arrivals,
    poisson_arrivals,
    render_dashboard,
    render_trace,
)
from repro.serve.obs.trace import NullRecorder
from repro.util.formatting import ascii_scatter, render_table

#: serving GPU and SLO of every scenario in this experiment.
GPU = "A100"
SLO_P99_S = 5e-3
MAX_WAIT_S = 200e-6
SEED = 2025

#: offered load relative to the naive single-device capacity (1 / t_request).
OVERLOAD_FACTOR = 5.0

#: the acceptance bar: batched throughput over naive throughput.
REQUIRED_SPEEDUP = 3.0

#: monitoring cadence of the headline run (~120 samples per quick run).
MONITOR_INTERVAL_S = 100e-6


def _simulate(
    requests: list[Request],
    max_batch: int,
    n_devices: int,
    recorder: NullRecorder | None = None,
    monitor: ServiceMonitor | None = None,
) -> ServiceReport:
    devices = [Device(GPU, ExecutionMode.DRY_RUN) for _ in range(n_devices)]
    service = BeamformingService(
        devices,
        policy=BatchingPolicy(max_batch=max_batch, max_wait_s=MAX_WAIT_S),
        slo=SLO(p99_latency_s=SLO_P99_S),
        recorder=recorder,
        monitor=monitor,
    )
    return service.run(requests)


def _naive_rate(workload: Workload) -> float:
    """Self-calibrated overload: OVERLOAD_FACTOR x naive device capacity."""
    t_request = (
        workload.kernel.make_plan(Device(GPU, ExecutionMode.DRY_RUN), 1)
        .predict_block_cost()
        .time_s
    )
    return OVERLOAD_FACTOR / t_request


#: horizon of the small traced run pinned by the checked-in golden trace.
#: Short on purpose — a few hundred requests already exercise every event
#: type while keeping the checked-in JSON reviewable.
GOLDEN_HORIZON_S = 0.001


def golden_trace(horizon_s: float = GOLDEN_HORIZON_S, seed: int = SEED) -> str:
    """The rendered Perfetto JSON pinned by the checked-in golden trace.

    Traces the headline batched configuration over a short fixed-seed
    Poisson overload. Timestamps come from the simulation clock and the
    rendering sorts keys with fixed separators, so the returned text must
    match the golden file byte for byte on any platform.
    """
    beam_block = lofar_workload()
    arrivals = poisson_arrivals(beam_block, _naive_rate(beam_block), horizon_s, seed=seed)
    recorder = TraceRecorder()
    _simulate(arrivals, max_batch=32, n_devices=1, recorder=recorder)
    return render_trace(recorder) + "\n"


def golden_dashboard(horizon_s: float = GOLDEN_HORIZON_S, seed: int = SEED) -> str:
    """The rendered dashboard HTML pinned by the checked-in golden digest.

    Monitors the same short headline configuration as :func:`golden_trace`.
    Sampling, alert evaluation, and HTML rendering are all deterministic
    functions of the simulation clock, so the page must hash identically
    on any platform; ``scripts/check_golden.py`` gates the digest.
    """
    beam_block = lofar_workload()
    arrivals = poisson_arrivals(beam_block, _naive_rate(beam_block), horizon_s, seed=seed)
    monitor = ServiceMonitor(interval_s=MONITOR_INTERVAL_S)
    report = _simulate(arrivals, max_batch=32, n_devices=1, monitor=monitor)
    return render_dashboard(
        report, title=f"serve (golden): batched LOFAR overload on one {GPU}"
    )


def golden_dashboard_digest(horizon_s: float = GOLDEN_HORIZON_S, seed: int = SEED) -> str:
    """sha256 hex digest of :func:`golden_dashboard`, plus a trailing newline."""
    html = golden_dashboard(horizon_s, seed=seed)
    return hashlib.sha256(html.encode("utf-8")).hexdigest() + "\n"


def _row(label: str, report: ServiceReport) -> list[object]:
    return [
        label,
        report.n_offered,
        round(report.throughput_rps),
        report.p50_latency_s * 1e3,
        report.p99_latency_s * 1e3,
        report.shed_rate * 100.0,
        report.mean_batch_size,
        report.cache_hit_rate * 100.0,
        report.utilizations[0] * 100.0,
    ]


_HEADERS = [
    "config",
    "offered",
    "thr (req/s)",
    "p50 (ms)",
    "p99 (ms)",
    "shed (%)",
    "batch",
    "cache hit (%)",
    "util[0] (%)",
]


def run(quick: bool = False, recorder: NullRecorder | None = None) -> ExperimentResult:
    horizon_s = 0.012 if quick else 0.03
    findings: list[str] = []
    tables: dict[str, tuple[list[str], list[list[object]]]] = {}
    text_parts: list[str] = []

    # --- headline: naive vs micro-batched under the same Poisson overload ---
    beam_block = lofar_workload()
    rate_hz = _naive_rate(beam_block)
    arrivals = poisson_arrivals(beam_block, rate_hz, horizon_s, seed=SEED)
    naive = _simulate(arrivals, max_batch=1, n_devices=1)
    monitor = ServiceMonitor(interval_s=MONITOR_INTERVAL_S)
    batched = _simulate(arrivals, max_batch=32, n_devices=1, recorder=recorder, monitor=monitor)
    speedup = batched.throughput_rps / naive.throughput_rps
    headline_rows = [_row("naive (max_batch=1)", naive), _row("batched (max_batch=32)", batched)]
    tables["headline"] = (_HEADERS, headline_rows)
    text_parts.append(
        render_table(
            _HEADERS,
            headline_rows,
            title=(
                f"LOFAR beam blocks on one {GPU}, Poisson "
                f"{rate_hz / 1e3:.0f}k req/s ({OVERLOAD_FACTOR:.0f}x naive capacity)"
            ),
        )
    )
    findings.append(
        f"micro-batching sustains {speedup:.2f}x the naive per-request "
        f"throughput under the same Poisson overload "
        f"({'PASS' if speedup >= REQUIRED_SPEEDUP else 'FAIL'}: bar {REQUIRED_SPEEDUP:.0f}x)"
    )
    findings.append(
        f"batched p99 {batched.p99_latency_s * 1e3:.2f} ms inside the "
        f"{SLO_P99_S * 1e3:.0f} ms SLO with {batched.shed_rate:.1%} shed "
        f"({'PASS' if batched.slo_attained and batched.shed_rate == 0 else 'FAIL'}); "
        f"naive sheds {naive.shed_rate:.1%} to hold its tail"
    )
    findings.append(
        f"plan cache: {batched.cache_misses} builds over "
        f"{batched.n_batches} launches ({batched.cache_hit_rate:.1%} hit rate)"
    )

    # --- policy grid: max_batch x fleet size --------------------------------
    policy_rows: list[list[object]] = []
    sweep = [1, 4, 32] if quick else [1, 4, 16, 32]
    xs, ys = [], []
    for n_devices in (1, 2):
        for max_batch in sweep:
            report = _simulate(arrivals, max_batch=max_batch, n_devices=n_devices)
            policy_rows.append(_row(f"batch<={max_batch} x {n_devices} dev", report))
            if n_devices == 1:
                xs.append(float(max_batch))
                ys.append(report.throughput_rps)
    tables["policies"] = (_HEADERS, policy_rows)
    text_parts.append(render_table(_HEADERS, policy_rows, title="Scheduling policy grid"))
    text_parts.append(
        ascii_scatter(
            xs,
            ys,
            xlabel="max_batch",
            ylabel="req/s",
            title="Single-device throughput vs batching knob",
            logx=True,
        )
    )
    naive_2dev = next(r for r in policy_rows if r[0] == "batch<=1 x 2 dev")
    fleet_scaling = naive_2dev[2] / naive.throughput_rps
    findings.append(
        f"least-loaded fleet routing: 2 devices carry {fleet_scaling:.2f}x the "
        f"naive single-device throughput "
        f"({'PASS' if fleet_scaling >= 1.8 else 'FAIL'}: bar 1.8x)"
    )

    # --- traffic shapes through the batched configuration -------------------
    bursty = bursty_arrivals(
        beam_block,
        rate_on_hz=rate_hz,
        rate_off_hz=rate_hz / 20.0,
        mean_on_s=horizon_s / 6.0,
        mean_off_s=horizon_s / 6.0,
        horizon_s=horizon_s,
        seed=SEED,
    )
    diurnal = diurnal_arrivals(
        beam_block,
        base_rate_hz=rate_hz * 0.6,
        amplitude=0.8,
        period_s=horizon_s / 2.0,
        horizon_s=horizon_s,
        seed=SEED,
    )
    traffic_rows = []
    slo_held = []
    for label, trace in (("poisson", arrivals), ("bursty", bursty), ("diurnal", diurnal)):
        report = _simulate(trace, max_batch=32, n_devices=1)
        traffic_rows.append(_row(label, report))
        slo_held.append(report.slo_attained)
    tables["traffic"] = (_HEADERS, traffic_rows)
    text_parts.append(
        render_table(_HEADERS, traffic_rows, title="Traffic shapes (batched, 1 device)")
    )
    findings.append(
        f"SLO attained across poisson/bursty/diurnal traffic "
        f"({'PASS' if all(slo_held) else 'FAIL'})"
    )

    # --- ultrasound live-view frames ----------------------------------------
    frames = ultrasound_workload(n_voxels=4096, k=1024, n_frames=64)
    frame_rate_hz = _naive_rate(frames)
    frame_arrivals = poisson_arrivals(frames, frame_rate_hz, horizon_s, seed=SEED + 1)
    us_naive = _simulate(frame_arrivals, max_batch=1, n_devices=1)
    us_batched = _simulate(frame_arrivals, max_batch=8, n_devices=1)
    us_speedup = us_batched.throughput_rps / us_naive.throughput_rps
    us_rows = [_row("naive", us_naive), _row("batched (max_batch=8)", us_batched)]
    tables["ultrasound"] = (_HEADERS, us_rows)
    text_parts.append(
        render_table(
            _HEADERS,
            us_rows,
            title=(
                f"Ultrasound 2-D live-view frames (4096 voxels, K=1024), "
                f"Poisson {frame_rate_hz / 1e3:.0f}k req/s"
            ),
        )
    )
    findings.append(
        f"ultrasound frame requests: {us_speedup:.2f}x from batching at "
        f"batch<=8 (int1 per-request transpose+pack included)"
    )

    # --- determinism ---------------------------------------------------------
    replay = _simulate(
        poisson_arrivals(beam_block, rate_hz, horizon_s, seed=SEED),
        max_batch=32,
        n_devices=1,
    )
    deterministic = (
        replay.throughput_rps == batched.throughput_rps
        and replay.p99_latency_s == batched.p99_latency_s
        and replay.shed_rate == batched.shed_rate
        and replay.n_batches == batched.n_batches
    )
    findings.append(
        f"fixed-seed replay is bit-identical (throughput, p99, shed, "
        f"launches) ({'PASS' if deterministic else 'FAIL'})"
    )

    return ExperimentResult(
        name="serve",
        title="Beamforming-as-a-service: micro-batching, plan cache, SLO control",
        text="\n".join(text_parts),
        tables=tables,
        findings=findings,
        metrics=batched.metrics.snapshot() if batched.metrics is not None else None,
        alerts=monitor.engine.snapshot(),
        availability=batched.availability,
        dashboard_html=render_dashboard(
            batched, title=f"serve: batched LOFAR overload on one {GPU}"
        ),
    )
