"""Experiment: paper Table III — best kernel per GPU/precision.

Two comparisons per row:

* the model evaluated at the paper's published optimal parameters — this is
  the calibration anchor and must match the published TOPs/s and TOPs/J;
* the auto-tuner's own optimum on the simulated device — allowed to sit a
  few percent above (the optimum plateau is wide; the paper notes optimal
  parameters "vary a lot from GPU to GPU").
"""

from __future__ import annotations

from repro.bench.report import ExperimentResult
from repro.ccglib.perfmodel import GemmProblem, model_gemm
from repro.ccglib.precision import Precision
from repro.ccglib.tuning import TABLE_III
from repro.gpusim.specs import get_spec
from repro.kerneltuner.tuner import PAPER_TUNING_PROBLEMS, tune_gemm
from repro.util.formatting import render_table
from repro.util.units import tera


def run() -> ExperimentResult:
    headers = [
        "GPU",
        "precision",
        "paper TOPs/s",
        "model@paper-params",
        "tuned TOPs/s",
        "paper TOPs/J",
        "model TOPs/J",
        "paper params (bM/wM/bN/wN/buf)",
        "tuned params",
    ]
    rows: list[list[object]] = []
    max_perf_dev = 0.0
    max_energy_dev = 0.0
    for row in TABLE_III:
        spec = get_spec(row.gpu)
        problem = PAPER_TUNING_PROBLEMS[row.precision]
        at_paper = model_gemm(spec, row.precision, problem, row.params)
        tuned = tune_gemm(spec, row.precision, problem=problem)
        model_tops = at_paper.ops_per_second / tera
        model_tpj = at_paper.ops_per_joule / tera
        max_perf_dev = max(max_perf_dev, abs(model_tops / row.tops - 1.0))
        max_energy_dev = max(max_energy_dev, abs(model_tpj / row.tops_per_joule - 1.0))
        p = row.params
        rows.append(
            [
                row.gpu,
                row.precision.value,
                row.tops,
                round(model_tops, 1),
                round(tuned.best.metrics["tops"], 1),
                row.tops_per_joule,
                round(model_tpj, 2),
                f"{p.block_m}/{p.warp_m}/{p.block_n}/{p.warp_n}/{p.num_buffers}",
                str(tuned.best_params),
            ]
        )
    text = render_table(headers, rows, title="Tuned matrix-multiply kernels")
    findings = [
        f"model at the paper's parameters reproduces published TOPs/s within "
        f"{max_perf_dev * 100:.1f}% and TOPs/J within {max_energy_dev * 100:.1f}% "
        "(calibration anchor)",
        "auto-tuned optima land on a wide plateau within a few percent of the "
        "published configurations",
        "MI300X is the fastest and most energy-efficient float16 GPU; GH200 is "
        "fastest in int1 while A100 is the most int1-energy-efficient — as in the paper",
    ]
    return ExperimentResult(
        name="table3",
        title="Kernel performance, energy efficiency, optimal parameters (paper Table III)",
        text=text,
        tables={"table3": (headers, rows)},
        findings=findings,
    )
