"""Ablation benchmarks for the design decisions called out in DESIGN.md §5.

Not a paper figure — these quantify the *reasons* behind the paper's design
choices on the simulated devices:

1. complex decomposition: 4 MMAs + in-register negation vs a naive variant
   that writes four real partial products and combines them in a separate
   pass (extra global traffic + kernel launch);
2. 1-bit multiply op: XOR vs AND per NVIDIA architecture (the §III-E
   auto-switch);
3. 1-bit fragment layout: 8x8x128 (portable WMMA) vs 16x8x256 (PTX
   extension);
4. pipeline depth: num_buffers sweep at the tuned configuration.
"""

from __future__ import annotations

import dataclasses

from repro.bench.report import ExperimentResult
from repro.ccglib.perfmodel import GemmProblem, model_gemm
from repro.ccglib.precision import Precision, traits
from repro.ccglib.tuning import TABLE_III, published_tuning
from repro.errors import KernelConfigError
from repro.gpusim.arch import BitOp, FRAG_INT1_8x8x128, FRAG_INT1_16x8x256
from repro.gpusim.specs import GPU_CATALOG, INT1_GPUS, get_spec
from repro.kerneltuner.tuner import PAPER_TUNING_PROBLEMS
from repro.util.formatting import render_table
from repro.util.units import tera


def _combine_pass_seconds(spec, problem: GemmProblem) -> float:
    """Extra pass of the naive complex decomposition: read 4 partials,
    write 2 outputs (float32 planes)."""
    n = problem.batch * problem.m * problem.n
    nbytes = n * 4 * 4.0 + n * 2 * 4.0
    return (
        nbytes / (spec.mem_bandwidth_bytes() * spec.mem_efficiency)
        + spec.kernel_launch_overhead_s
    )


def run() -> ExperimentResult:
    sections: list[str] = []
    tables: dict[str, tuple[list[str], list[list[object]]]] = {}
    findings: list[str] = []

    # 1. complex decomposition ------------------------------------------------
    problem = PAPER_TUNING_PROBLEMS[Precision.FLOAT16]
    rows = []
    for gpu, spec in GPU_CATALOG.items():
        params = published_tuning(gpu, Precision.FLOAT16).params
        fused = model_gemm(spec, Precision.FLOAT16, problem, params)
        naive_s = fused.time_s + _combine_pass_seconds(spec, problem)
        rows.append(
            [
                gpu,
                round(fused.ops_per_second / tera, 1),
                round(fused.useful_ops / naive_s / tera, 1),
                round(naive_s / fused.time_s - 1.0, 4),
            ]
        )
    headers = ["GPU", "fused TOPs/s", "naive TOPs/s", "combine-pass overhead"]
    tables["complex_decomposition"] = (headers, rows)
    sections.append(
        render_table(headers, rows, title="Complex MMA: register negation vs separate combine pass")
    )
    findings.append(
        "the in-register negation avoids a memory-bound combine pass worth "
        f"up to {max(r[3] for r in rows) * 100:.1f}% at the tuning size (grows "
        "for smaller K where the GEMM itself is cheaper)"
    )

    # 2. XOR vs AND per architecture ------------------------------------------
    problem1 = PAPER_TUNING_PROBLEMS[Precision.INT1]
    rows = []
    for gpu in INT1_GPUS:
        spec = get_spec(gpu)
        params = published_tuning(gpu, Precision.INT1).params
        xor = model_gemm(spec, Precision.INT1, problem1, params, bit_op=BitOp.XOR)
        and_ = model_gemm(spec, Precision.INT1, problem1, params, bit_op=BitOp.AND)
        auto = spec.caps.preferred_bit_op.value
        rows.append(
            [
                gpu,
                round(xor.ops_per_second / tera, 0),
                round(and_.ops_per_second / tera, 0),
                auto,
                round(max(xor.ops_per_second, and_.ops_per_second)
                      / min(xor.ops_per_second, and_.ops_per_second), 2),
            ]
        )
    headers = ["GPU", "XOR TOPs/s", "AND TOPs/s", "auto-selected", "best/worst"]
    tables["xor_vs_and"] = (headers, rows)
    sections.append(render_table(headers, rows, title="1-bit multiply op (paper §III-E)"))
    findings.append(
        "ccglib's auto-switch picks the faster op everywhere: XOR on "
        "Ada/Ampere (AND needs 2x instructions), AND on Hopper (XOR is "
        "software-emulated)"
    )

    # 3. fragment layout --------------------------------------------------------
    rows = []
    for gpu in INT1_GPUS:
        spec = get_spec(gpu)
        params = published_tuning(gpu, Precision.INT1).params
        op = spec.caps.preferred_bit_op
        small = model_gemm(spec, Precision.INT1, problem1, params, bit_op=op,
                           fragment=FRAG_INT1_8x8x128)
        big = model_gemm(spec, Precision.INT1, problem1, params, bit_op=op,
                         fragment=FRAG_INT1_16x8x256)
        rows.append(
            [
                gpu,
                round(small.ops_per_second / tera, 0),
                round(big.ops_per_second / tera, 0),
                round(big.ops_per_second / small.ops_per_second, 2),
            ]
        )
    headers = ["GPU", "8x8x128 TOPs/s", "16x8x256 TOPs/s", "speedup"]
    tables["fragment_layout"] = (headers, rows)
    sections.append(render_table(headers, rows, title="1-bit fragment layout (paper §III-A)"))
    findings.append(
        "the 16x8x256 PTX-extension layout is never slower than the WMMA "
        "8x8x128 layout — the paper's reason to default to it"
    )

    # 4. transpose-free interleaved kernel (paper §VI future work) --------------
    from repro.apps.ultrasound.imaging import UltrasoundBeamformer
    from repro.gpusim.device import Device, ExecutionMode

    rows = []
    for gpu in INT1_GPUS:
        for precision in (Precision.INT1, Precision.FLOAT16):
            dev_a = Device(gpu, ExecutionMode.DRY_RUN)
            dev_b = Device(gpu, ExecutionMode.DRY_RUN)
            baseline = UltrasoundBeamformer(
                dev_a, n_voxels=38880, k=524288, n_frames=8041,
                precision=precision,
            ).reconstruct().time_s
            fused = UltrasoundBeamformer(
                dev_b, n_voxels=38880, k=524288, n_frames=8041,
                precision=precision, fused_transpose=True,
            ).reconstruct().time_s
            rows.append([gpu, precision.value, round(baseline, 3), round(fused, 3),
                         round(baseline / fused - 1.0, 4)])
    headers = ["GPU", "precision", "with transpose (s)", "fused (s)", "saving"]
    tables["transpose_free"] = (headers, rows)
    sections.append(render_table(
        headers, rows,
        title="Transpose-free interleaved kernel prototype (paper §VI) on the "
        "recorded ultrasound dataset",
    ))
    findings.append(
        "fusing the transpose into an interleaved-input kernel (the §VI "
        "future-work item, as done in the tensor-core correlator) saves "
        f"up to {max(r[4] for r in rows) * 100:.1f}% at the recorded-dataset "
        "shape — a useful negative result: at beamforming K values the GEMM "
        "dominates and the transpose is convenience/latency, not throughput"
    )

    # 5. pipeline depth -----------------------------------------------------------
    rows = []
    for row in TABLE_III:
        spec = get_spec(row.gpu)
        problem_x = PAPER_TUNING_PROBLEMS[row.precision]
        entry: list[object] = [row.gpu, row.precision.value]
        for nbuf in (1, 2, 4):
            params = dataclasses.replace(row.params, num_buffers=nbuf)
            try:
                cost = model_gemm(spec, row.precision, problem_x, params)
                entry.append(round(cost.ops_per_second / tera, 1))
            except KernelConfigError:
                entry.append("n/a")
        rows.append(entry)
    headers = ["GPU", "precision", "1 buffer", "2 buffers", "4 buffers"]
    tables["pipeline_depth"] = (headers, rows)
    sections.append(render_table(headers, rows, title="Multi-stage buffer depth (paper §III-C)"))
    findings.append(
        "multi-stage async buffering is worth ~25-40% on NVIDIA (1 -> 2 "
        "stages); AMD devices reject num_buffers > 1 (no async copies)"
    )

    return ExperimentResult(
        name="ablations",
        title="Design-choice ablations (DESIGN.md §5)",
        text="\n".join(sections),
        tables=tables,
        findings=findings,
    )
