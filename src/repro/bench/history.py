"""Bench-history regression tracking over ``--output`` JSON reports.

Every CI bench run appends one summarized row to ``benchmarks/history.jsonl``
— a handful of headline metrics pulled out of the combined JSON report by
explicit :class:`MetricSpec` coordinates (experiment, table, row label,
column header). ``scripts/bench_history.py --check`` then compares the
newest row against the mean of a trailing window of comparable rows and
fails on any metric that moved past its tolerance in the bad direction:
throughput down, p99 up, shed up. The tolerances are deliberate and
per-metric — simulated runs are deterministic, but quick/full sweeps and
code changes move the numbers, so the gate flags *regressions*, not noise.

The row format is plain JSON, one object per line::

    {"label": "ci", "quick": true, "metrics": {"serve.batched_thr_rps": ...}}

Rows with different ``quick`` flags are never compared against each other.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.errors import ShapeError

#: rows compared by default: the newest row vs the mean of this many
#: trailing comparable rows (fewer is fine; zero comparable rows passes).
DEFAULT_WINDOW = 5


@dataclass(frozen=True)
class MetricSpec:
    """Coordinates of one tracked metric inside the combined JSON report."""

    #: experiment ``name`` in the report (e.g. ``"serve"``).
    experiment: str
    #: table name inside that experiment (e.g. ``"headline"``).
    table: str
    #: first-column label of the row to read (e.g. ``"batched (max_batch=32)"``).
    row: str
    #: column header to read (e.g. ``"thr (req/s)"``).
    column: str
    #: short dotted name the metric is stored and reported under.
    name: str
    #: direction of goodness: ``True`` flags drops, ``False`` flags rises.
    higher_is_better: bool
    #: relative tolerance vs the trailing mean before a move is a regression.
    rel_tol: float
    #: absolute slack added on top (for metrics that hover near zero).
    abs_tol: float = 0.0

    def __post_init__(self) -> None:
        if self.rel_tol < 0 or self.abs_tol < 0:
            raise ShapeError(
                f"tolerances must be non-negative, got rel={self.rel_tol} abs={self.abs_tol}"
            )


#: the tracked headline metrics, one per serving experiment axis.
SPECS: tuple[MetricSpec, ...] = (
    MetricSpec(
        "serve", "headline", "batched (max_batch=32)", "thr (req/s)",
        "serve.batched_thr_rps", higher_is_better=True, rel_tol=0.05,
    ),
    MetricSpec(
        "serve", "headline", "batched (max_batch=32)", "p99 (ms)",
        "serve.batched_p99_ms", higher_is_better=False, rel_tol=0.15,
    ),
    MetricSpec(
        "serve-priority", "classes", "priority=0", "p99 (ms)",
        "serve_priority.interactive_p99_ms", higher_is_better=False, rel_tol=0.15,
    ),
    MetricSpec(
        "serve-priority", "classes", "priority=0", "thr (req/s)",
        "serve_priority.interactive_thr_rps", higher_is_better=True, rel_tol=0.05,
    ),
    MetricSpec(
        "serve-hetero", "buckets", "buckets (2048,)", "goodput (req/s)",
        "serve_hetero.bucketed_goodput_rps", higher_is_better=True, rel_tol=0.05,
    ),
    MetricSpec(
        "serve-autoscale", "policies", "reactive", "completed",
        "serve_autoscale.reactive_completed", higher_is_better=True, rel_tol=0.05,
    ),
    MetricSpec(
        "serve-autoscale", "policies", "reactive", "p99 (ms)",
        "serve_autoscale.reactive_p99_ms", higher_is_better=False, rel_tol=0.15,
    ),
    MetricSpec(
        "serve-autoscale", "policies", "reactive", "shed (%)",
        "serve_autoscale.reactive_shed_pct", higher_is_better=False,
        rel_tol=0.10, abs_tol=0.5,
    ),
    MetricSpec(
        "serve-resilience", "arms", "resilient", "availability (%)",
        "serve_resilience.resilient_availability_pct", higher_is_better=True,
        rel_tol=0.0, abs_tol=0.05,
    ),
    MetricSpec(
        "serve-resilience", "arms", "resilient", "p99 (ms)",
        "serve_resilience.resilient_p99_ms", higher_is_better=False, rel_tol=0.15,
    ),
    MetricSpec(
        "serve-pipeline", "arms", "stage-locality", "p99 (ms)",
        "serve_pipeline.e2e_p99_ms", higher_is_better=False, rel_tol=0.15,
    ),
    MetricSpec(
        "serve-pipeline", "arms", "stage-locality", "stage-local (%)",
        "serve_pipeline.stage_local_pct", higher_is_better=True,
        rel_tol=0.10, abs_tol=1.0,
    ),
    # Wall-clock micro throughput of the vectorized hot paths. Real (not
    # modelled) time on a shared CI host is noisy, so the tolerance is wide
    # — the gate exists to catch a de-vectorization cliff (10-100x), not
    # scheduler jitter.
    MetricSpec(
        "backend-micro", "micro", "numpy/pack", "GB/s",
        "backend_micro.numpy_pack_gbps", higher_is_better=True, rel_tol=0.5,
    ),
    MetricSpec(
        "backend-micro", "micro", "numpy/transpose", "GB/s",
        "backend_micro.numpy_transpose_gbps", higher_is_better=True, rel_tol=0.5,
    ),
)


def _lookup(payload: dict, spec: MetricSpec) -> float | None:
    """Pull one metric out of a combined ``--output`` report, or ``None``.

    Missing experiments are fine (partial bench runs track what they ran);
    a present experiment with a malformed table is an error.
    """
    entries = payload.get("experiments")
    if not isinstance(entries, list):
        raise ShapeError("report has no 'experiments' list — not a --output report?")
    entry = next((e for e in entries if e.get("name") == spec.experiment), None)
    if entry is None:
        return None
    table = entry.get("tables", {}).get(spec.table)
    if table is None:
        raise ShapeError(f"{spec.experiment}: no table {spec.table!r} in report")
    headers, rows = table["headers"], table["rows"]
    if spec.column not in headers:
        raise ShapeError(
            f"{spec.experiment}/{spec.table}: no column {spec.column!r} (have {headers})"
        )
    col = headers.index(spec.column)
    row = next((r for r in rows if r and str(r[0]) == spec.row), None)
    if row is None:
        labels = [str(r[0]) for r in rows if r]
        raise ShapeError(
            f"{spec.experiment}/{spec.table}: no row {spec.row!r} (have {labels})"
        )
    return float(row[col])


def summarize(payload: dict, label: str = "", quick: bool = False) -> dict:
    """One history row from a combined ``--output`` report."""
    metrics = {}
    for spec in SPECS:
        value = _lookup(payload, spec)
        if value is not None:
            metrics[spec.name] = value
    if not metrics:
        raise ShapeError(
            "report contains none of the tracked experiments "
            f"({sorted({s.experiment for s in SPECS})})"
        )
    return {"label": label, "quick": quick, "metrics": metrics}


def check(rows: list[dict], window: int = DEFAULT_WINDOW) -> list[str]:
    """Regression problems of the newest row vs its trailing window.

    Compares ``rows[-1]`` against the mean of up to ``window`` preceding
    rows with the same ``quick`` flag, metric by metric. Returns one
    problem string per regressed metric; an empty list means pass. Fewer
    than one comparable prior row passes vacuously (nothing to drift from).
    """
    if window < 1:
        raise ShapeError(f"window must be >= 1, got {window}")
    if not rows:
        return ["history is empty — append a row before checking"]
    newest = rows[-1]
    prior = [r for r in rows[:-1] if r.get("quick") == newest.get("quick")]
    prior = prior[-window:]
    if not prior:
        return []
    problems: list[str] = []
    for spec in SPECS:
        # ``or {}`` twice: a row may carry ``"metrics": null`` (a partial
        # or hand-edited append), which must read as "tracks nothing",
        # not raise. Likewise a metric newly added to SPECS appears in
        # the newest row only — zero comparable priors skips the metric
        # (nothing to drift from), the same vacuous pass as a new bench.
        value = (newest.get("metrics") or {}).get(spec.name)
        if value is None:
            continue
        baseline_values = [
            (r.get("metrics") or {})[spec.name]
            for r in prior
            if spec.name in (r.get("metrics") or {})
        ]
        if not baseline_values:
            continue
        baseline = sum(baseline_values) / len(baseline_values)
        slack = abs(baseline) * spec.rel_tol + spec.abs_tol
        if spec.higher_is_better:
            regressed = value < baseline - slack
            direction = "dropped"
        else:
            regressed = value > baseline + slack
            direction = "rose"
        if regressed:
            problems.append(
                f"{spec.name}: {direction} to {value:g} vs trailing mean "
                f"{baseline:g} over {len(baseline_values)} run(s) "
                f"(tolerance {spec.rel_tol:.0%}"
                + (f" + {spec.abs_tol:g}" if spec.abs_tol else "")
                + ")"
            )
    return problems


def load_history(path: str | Path) -> list[dict]:
    """All rows of a ``history.jsonl`` file, oldest first ([] if absent)."""
    path = Path(path)
    if not path.exists():
        return []
    rows = []
    for i, line in enumerate(path.read_text().splitlines(), start=1):
        if not line.strip():
            continue
        try:
            rows.append(json.loads(line))
        except json.JSONDecodeError as exc:
            raise ShapeError(f"{path}:{i}: bad history row: {exc}") from exc
    return rows


def append_history(path: str | Path, row: dict) -> None:
    """Append one row to a ``history.jsonl`` file, creating it if needed."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("a") as fh:
        fh.write(json.dumps(row, sort_keys=True) + "\n")
