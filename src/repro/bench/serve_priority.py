"""Experiment: priority classes and weighted-fair multi-tenancy under overload.

The paper frames the Tensor-Core Beamformer as one library serving several
disciplines at once. This experiment puts that framing under stress on a
single A100: a latency-critical ultrasound live view (priority 0, tenant
"clinic") shares the device with an offline pulsar-reprocessing campaign
run by two tenants ("pulsar-a" at weight 3, "pulsar-b" at weight 1,
priority 1) whose combined offered load is **5x the device's batched
capacity**. The serving tier must degrade *by policy*, not by collapse:

* **isolation** — the interactive class holds its p99 SLO through the
  overload (queued batch work is preempted non-destructively; in-flight
  launches are merely waited out);
* **shedding** — admission control sheds strictly from the lowest
  priority class (>= 90% of all shed requests, in practice all of them);
* **fairness** — inside the batch class, deficit-round-robin dispatch
  serves the 3:1-weighted tenants within 10% of the 3:1 ratio while both
  are backlogged;
* **determinism** — an identical fixed-seed rerun reproduces every
  reported number bit-for-bit.
"""

from __future__ import annotations

from repro.apps.radioastronomy.beamformer import service_workload as lofar_workload
from repro.apps.ultrasound.imaging import service_workload as ultrasound_workload
from repro.bench.report import ExperimentResult
from repro.gpusim.device import Device, ExecutionMode
from repro.serve import (
    SLO,
    BatchingPolicy,
    BeamformingService,
    ClassStats,
    ServiceMonitor,
    ServiceReport,
    merge_arrivals,
    poisson_arrivals,
    render_dashboard,
)
from repro.serve.obs.trace import NullRecorder
from repro.util.formatting import render_table

GPU = "A100"
SLO_P99_S = 5e-3
SEED = 2025

#: batch-class offered load relative to the device's *batched* capacity.
OVERLOAD_FACTOR = 5.0
#: interactive offered rate (req/s): a busy clinic, ~13% of the device.
INTERACTIVE_RATE_HZ = 24_000.0
#: DRR weights of the two reprocessing campaigns sharing the batch class.
TENANT_WEIGHTS = {"pulsar-a": 3.0, "pulsar-b": 1.0}

#: acceptance bars.
REQUIRED_SHED_SHARE = 0.90
FAIRNESS_TARGET = 3.0
FAIRNESS_TOLERANCE = 0.10

#: batching knobs per priority class: tight wait for the live view, deep
#: batches for throughput work.
INTERACTIVE_POLICY = BatchingPolicy(max_batch=4, max_wait_s=50e-6)
BATCH_POLICY = BatchingPolicy(max_batch=32, max_wait_s=1e-3)

#: monitoring cadence of the headline run (~80 samples per quick run).
MONITOR_INTERVAL_S = 50e-6


def _device() -> Device:
    return Device(GPU, ExecutionMode.DRY_RUN)


def _workloads():
    interactive = ultrasound_workload(n_voxels=4096, k=1024, n_frames=64)
    pulsar_a = lofar_workload(n_samples=2048, tenant="pulsar-a")
    pulsar_b = lofar_workload(n_samples=2048, tenant="pulsar-b")
    return interactive, pulsar_a, pulsar_b


def _batched_capacity_hz(workload) -> float:
    """Requests/s one device sustains on full merged batches of this class."""
    merged = BATCH_POLICY.max_batch
    gemm_s = workload.kernel.make_plan(_device(), merged).predict_gemm_cost().time_s
    return merged / gemm_s


def _service(
    slo_s: float = SLO_P99_S,
    recorder: NullRecorder | None = None,
    monitor: ServiceMonitor | None = None,
) -> BeamformingService:
    return BeamformingService(
        [_device()],
        policy=BATCH_POLICY,
        class_policies={0: INTERACTIVE_POLICY},
        slo=SLO(p99_latency_s=slo_s),
        tenant_weights=TENANT_WEIGHTS,
        recorder=recorder,
        monitor=monitor,
    )


def overload_scenario(
    horizon_s: float,
    seed: int = SEED,
    recorder: NullRecorder | None = None,
    monitor: ServiceMonitor | None = None,
) -> ServiceReport:
    """The headline run: clinic + two pulsar campaigns at 5x overload."""
    interactive, pulsar_a, pulsar_b = _workloads()
    batch_rate = OVERLOAD_FACTOR / 2.0 * _batched_capacity_hz(pulsar_a)
    trace = merge_arrivals(
        poisson_arrivals(interactive, INTERACTIVE_RATE_HZ, horizon_s, seed=seed),
        poisson_arrivals(pulsar_a, batch_rate, horizon_s, seed=seed + 1),
        poisson_arrivals(pulsar_b, batch_rate, horizon_s, seed=seed + 2),
    )
    return _service(recorder=recorder, monitor=monitor).run(trace)


def fairness_scenario(horizon_s: float, seed: int = SEED) -> tuple[dict[str, int], float]:
    """Two 3:1-weighted tenants saturating the batch class, no shedding.

    Returns the per-tenant requests dispatched while both were backlogged
    (executions started inside the arrival window) and the served ratio.
    """
    _, pulsar_a, pulsar_b = _workloads()
    rate = _batched_capacity_hz(pulsar_a)
    trace = merge_arrivals(
        poisson_arrivals(pulsar_a, rate, horizon_s, seed=seed + 3),
        poisson_arrivals(pulsar_b, rate, horizon_s, seed=seed + 4),
    )
    # An SLO far beyond the drain time disables shedding: fairness is a
    # scheduler property and must be measured without admission bias.
    service = _service(slo_s=10.0)
    service.run(trace)
    served = {tenant: 0 for tenant in TENANT_WEIGHTS}
    for execution in service.fleet.executions:
        if execution.start_s <= horizon_s:
            served[execution.batch.tenant] += execution.batch.n_requests
    ratio = served["pulsar-a"] / served["pulsar-b"] if served["pulsar-b"] else 0.0
    return served, ratio


def _stats_row(stats: ClassStats) -> list[object]:
    return [
        stats.label,
        stats.n_offered,
        stats.n_completed,
        stats.n_shed,
        stats.shed_rate * 100.0,
        stats.shed_share * 100.0,
        stats.p50_latency_s * 1e3,
        stats.p99_latency_s * 1e3,
        round(stats.throughput_rps),
    ]


_STATS_HEADERS = [
    "slice",
    "offered",
    "completed",
    "shed",
    "shed rate (%)",
    "shed share (%)",
    "p50 (ms)",
    "p99 (ms)",
    "thr (req/s)",
]


def golden_rows(horizon_s: float = 0.004, seed: int = SEED) -> tuple[list[str], list[list[object]]]:
    """The small fixed scenario pinned by the checked-in golden CSV.

    Per-class and per-tenant report rows of a short overload run; every
    value is a deterministic function of the seed, so the rendered CSV must
    match the golden file byte for byte on any platform.
    """
    report = overload_scenario(horizon_s, seed=seed)
    rows = [_stats_row(s) for s in report.by_priority() + report.by_tenant()]
    rows.append(
        [
            "overall",
            report.n_offered,
            report.n_completed,
            report.n_offered - report.n_admitted,
            report.shed_rate * 100.0,
            100.0 if report.n_offered > report.n_admitted else 0.0,
            report.p50_latency_s * 1e3,
            report.p99_latency_s * 1e3,
            round(report.throughput_rps),
        ]
    )
    return _STATS_HEADERS, rows


def run(quick: bool = False, recorder: NullRecorder | None = None) -> ExperimentResult:
    horizon_s = 0.004 if quick else 0.01
    findings: list[str] = []
    tables: dict[str, tuple[list[str], list[list[object]]]] = {}
    text_parts: list[str] = []

    # --- headline: 5x overload, three tenants, two priority classes ---------
    monitor = ServiceMonitor(interval_s=MONITOR_INTERVAL_S)
    report = overload_scenario(horizon_s, recorder=recorder, monitor=monitor)
    classes = report.by_priority()
    tenants = report.by_tenant()
    class_rows = [_stats_row(s) for s in classes]
    tenant_rows = [_stats_row(s) for s in tenants]
    tables["classes"] = (_STATS_HEADERS, class_rows)
    tables["tenants"] = (_STATS_HEADERS, tenant_rows)
    text_parts.append(
        render_table(
            _STATS_HEADERS,
            class_rows,
            title=(
                f"Priority classes on one {GPU}: live ultrasound (priority 0) vs "
                f"pulsar reprocessing (priority 1) at "
                f"{OVERLOAD_FACTOR:.0f}x batched capacity"
            ),
        )
    )
    text_parts.append(render_table(_STATS_HEADERS, tenant_rows, title="The same run, by tenant"))

    interactive = classes[0]
    assert interactive.label == "priority=0"
    findings.append(
        f"interactive class p99 {interactive.p99_latency_s * 1e3:.2f} ms holds the "
        f"{SLO_P99_S * 1e3:.0f} ms SLO under {OVERLOAD_FACTOR:.0f}x overload with "
        f"{interactive.shed_rate:.1%} of it shed "
        f"({'PASS' if interactive.p99_latency_s <= SLO_P99_S else 'FAIL'})"
    )
    shed_share = report.shed_share(1)
    findings.append(
        f"{shed_share:.1%} of all shed requests came from the lowest priority "
        f"class ({'PASS' if shed_share >= REQUIRED_SHED_SHARE else 'FAIL'}: "
        f"bar {REQUIRED_SHED_SHARE:.0%}); overall shed rate {report.shed_rate:.1%}"
    )

    # --- weighted-fair dispatch inside the batch class ----------------------
    served, ratio = fairness_scenario(horizon_s)
    fairness_rows = [[tenant, TENANT_WEIGHTS[tenant], served[tenant]] for tenant in served]
    tables["fairness"] = (["tenant", "weight", "requests served"], fairness_rows)
    text_parts.append(
        render_table(
            ["tenant", "weight", "requests served"],
            fairness_rows,
            title="Deficit-round-robin service while both tenants are backlogged",
        )
    )
    fair = abs(ratio - FAIRNESS_TARGET) <= FAIRNESS_TARGET * FAIRNESS_TOLERANCE
    findings.append(
        f"3:1-weighted tenants served at {ratio:.2f}:1 "
        f"({'PASS' if fair else 'FAIL'}: within "
        f"{FAIRNESS_TOLERANCE:.0%} of {FAIRNESS_TARGET:.0f}:1)"
    )

    # --- determinism ---------------------------------------------------------
    replay = overload_scenario(horizon_s)
    deterministic = (
        [_stats_row(s) for s in replay.by_priority()] == class_rows
        and [_stats_row(s) for s in replay.by_tenant()] == tenant_rows
        and replay.latencies_s == report.latencies_s
        and replay.n_batches == report.n_batches
    )
    findings.append(
        f"fixed-seed replay reproduces every class/tenant row and all "
        f"latencies bit-identically ({'PASS' if deterministic else 'FAIL'})"
    )

    return ExperimentResult(
        name="serve-priority",
        title="Multi-tenant serving: priority classes + weighted-fair queueing",
        text="\n".join(text_parts),
        tables=tables,
        findings=findings,
        metrics=report.metrics.snapshot() if report.metrics is not None else None,
        alerts=monitor.engine.snapshot(),
        availability=report.availability,
        dashboard_html=render_dashboard(
            report,
            title=f"serve-priority: clinic vs pulsar campaigns on one {GPU}",
        ),
    )
