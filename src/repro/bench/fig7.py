"""Experiment: paper Fig 7 — LOFAR TCBF performance vs receiver count.

Sweeps the number of receivers (stations) from 8 to 512 with the paper's
configuration (1024 beams, 1024 samples, batch 256 = polarizations x
channels) on all seven GPUs in float16, plus the float32 reference
beamformer on A100 and GH200. Checks the paper's reading: the TCBF beats
the reference except at very small receiver counts, reaches up to ~20x
speedup and ~10x energy advantage on the A100, is still several times
faster at the typical 48-station configuration, and the MI300X tops the
GH200 by up to ~50% while remaining unsaturated at 512 receivers.
"""

from __future__ import annotations

from repro.apps.radioastronomy.beamformer import LOFARBeamformer
from repro.apps.radioastronomy.reference import ReferenceBeamformer
from repro.bench.report import ExperimentResult
from repro.ccglib.precision import Precision
from repro.gpusim.device import Device, ExecutionMode
from repro.gpusim.specs import GPU_CATALOG
from repro.util.formatting import ascii_series, render_table
from repro.util.units import tera

N_BEAMS = 1024
N_SAMPLES = 1024
BATCH_CHANNELS = 256
REFERENCE_GPUS = ("A100", "GH200")
TYPICAL_STATIONS = 48


def receiver_sweep(quick: bool = False) -> list[int]:
    """8..512 receivers including off-fragment values for the sawtooth."""
    if quick:
        return [8, 16, 48, 96, 200, 341, 512]
    values = list(range(8, 513, 8))
    values += [k + 3 for k in range(16, 512, 32)]  # off-multiple points
    return sorted(set(values))


def run(quick: bool = False) -> ExperimentResult:
    ks = receiver_sweep(quick)
    headers = ["receivers", "tflops", "tflops_per_joule", "bound"]
    tables: dict[str, tuple[list[str], list[list[object]]]] = {}
    perf_series: dict[str, tuple[list[float], list[float]]] = {}
    eff_series: dict[str, tuple[list[float], list[float]]] = {}

    def tcbf_cost(spec_name: str, k: int):
        device = Device(spec_name, ExecutionMode.DRY_RUN)
        return LOFARBeamformer(
            device, N_BEAMS, k, N_SAMPLES, BATCH_CHANNELS, precision=Precision.FLOAT16
        ).predict_cost()

    def ref_cost(spec_name: str, k: int):
        device = Device(spec_name, ExecutionMode.DRY_RUN)
        return ReferenceBeamformer(device, N_BEAMS, k, N_SAMPLES, BATCH_CHANNELS).predict_cost()

    for gpu in GPU_CATALOG:
        rows = []
        xs, ys, es = [], [], []
        for k in ks:
            cost = tcbf_cost(gpu, k)
            rows.append(
                [
                    k,
                    round(cost.ops_per_second / tera, 1),
                    round(cost.ops_per_joule / tera, 3),
                    cost.bound.value,
                ]
            )
            xs.append(float(k))
            ys.append(cost.ops_per_second / tera)
            es.append(cost.ops_per_joule / tera)
        tables[f"tcbf_{gpu}"] = (headers, rows)
        perf_series[gpu] = (xs, ys)
        eff_series[gpu] = (xs, es)
    for gpu in REFERENCE_GPUS:
        rows = []
        xs, ys, es = [], [], []
        for k in ks:
            cost = ref_cost(gpu, k)
            rows.append(
                [
                    k,
                    round(cost.ops_per_second / tera, 2),
                    round(cost.ops_per_joule / tera, 4),
                    cost.bound.value,
                ]
            )
            xs.append(float(k))
            ys.append(cost.ops_per_second / tera)
            es.append(cost.ops_per_joule / tera)
        tables[f"reference_{gpu}"] = (headers, rows)
        perf_series[f"ref {gpu}"] = (xs, ys)
        eff_series[f"ref {gpu}"] = (xs, es)

    sections = [
        ascii_series(
            perf_series,
            width=60,
            height=14,
            xlabel="number of receivers",
            ylabel="TFLOPs/s",
            title="LOFAR TCBF performance (Fig 7 left)",
        ),
        ascii_series(
            eff_series,
            width=60,
            height=12,
            xlabel="number of receivers",
            ylabel="TFLOPs/J",
            title="LOFAR TCBF energy efficiency (Fig 7 right)",
        ),
    ]

    # Headline ratios on the A100.
    a100_tcbf_512 = tcbf_cost("A100", 512)
    a100_ref_512 = ref_cost("A100", 512)
    a100_tcbf_48 = tcbf_cost("A100", TYPICAL_STATIONS)
    a100_ref_48 = ref_cost("A100", TYPICAL_STATIONS)
    a100_tcbf_8 = tcbf_cost("A100", 8)
    a100_ref_8 = ref_cost("A100", 8)
    mi300x_512 = tcbf_cost("MI300X", 512)
    gh200_512 = tcbf_cost("GH200", 512)
    speedup_512 = a100_tcbf_512.ops_per_second / a100_ref_512.ops_per_second
    energy_512 = a100_tcbf_512.ops_per_joule / a100_ref_512.ops_per_joule
    speedup_48 = a100_tcbf_48.ops_per_second / a100_ref_48.ops_per_second
    speedup_8 = a100_tcbf_8.ops_per_second / a100_ref_8.ops_per_second
    mi_vs_gh = mi300x_512.ops_per_second / gh200_512.ops_per_second
    mi_frac_of_big = mi300x_512.ops_per_second / tera / 603.0

    summary_headers = ["quantity", "measured", "paper"]
    summary_rows = [
        ["A100 TCBF/reference speedup @512 rcv", round(speedup_512, 1), "up to 20x"],
        ["A100 TCBF/reference energy ratio @512 rcv", round(energy_512, 1), "~10x"],
        ["A100 TCBF/reference speedup @48 rcv", round(speedup_48, 1), "several times"],
        ["A100 TCBF/reference speedup @8 rcv", round(speedup_8, 2), "~1 (crossover)"],
        ["MI300X / GH200 @512 rcv", round(mi_vs_gh, 2), "up to 1.5x"],
        ["MI300X @512 rcv vs its big-matrix peak", round(mi_frac_of_big, 2), "<1 (unsaturated)"],
    ]
    tables["summary"] = (summary_headers, summary_rows)
    sections.append(render_table(summary_headers, summary_rows, title="Headline comparisons"))

    findings = [
        f"TCBF outperforms the reference beamformer except at very small "
        f"receiver counts (speedup {speedup_8:.2f}x at 8 receivers, "
        f"{speedup_48:.1f}x at 48, {speedup_512:.1f}x at 512)",
        f"energy advantage on the A100 reaches {energy_512:.1f}x (paper: ~10x)",
        f"MI300X delivers {mi_vs_gh:.2f}x the GH200 throughput at 512 receivers "
        f"while reaching only {mi_frac_of_big * 100:.0f}% of its large-matrix "
        "performance (workload too small to saturate it)",
        "the K-padding sawtooth is visible at receiver counts that are not "
        "multiples of the fragment K granularity",
    ]
    return ExperimentResult(
        name="fig7",
        title="LOFAR TCBF performance and energy efficiency (paper Fig 7)",
        text="\n".join(sections),
        tables=tables,
        findings=findings,
    )
