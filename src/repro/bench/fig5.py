"""Experiment: paper Fig 5 — ultrasound frames per second vs voxels.

Sweeps the voxel count from three orthogonal 128x128 planes to the full
128^3 volume on the three NVIDIA GPUs (1-bit mode, K = 128 freq x 64
transceivers x 32 transmissions), including the per-batch measurement
packing + transpose. Checks the paper's three headline statements: all
GPUs sustain three orthogonal planes in real time; no GPU sustains the full
volume; the GH200 covers ~85% of the voxels; halving the frequency count
brings the full volume within reach of A100 and GH200.
"""

from __future__ import annotations

from repro.apps.ultrasound.realtime import (
    FULL_VOLUME_VOXELS,
    PAPER_REALTIME_K,
    REQUIRED_FPS,
    THREE_PLANES_VOXELS,
    default_voxel_sweep,
    frames_per_second,
    max_realtime_voxels,
    sweep_voxels,
)
from repro.bench.report import ExperimentResult
from repro.gpusim.specs import INT1_GPUS, get_spec
from repro.util.formatting import ascii_series, render_table

#: paper reading of Fig 5: GH200 covers ~85% of the volume in real time.
PAPER_GH200_FRACTION = 0.85


def run() -> ExperimentResult:
    voxel_counts = default_voxel_sweep(14)
    headers = ["voxels", "fps", "gemm_tops", "real_time"]
    tables: dict[str, tuple[list[str], list[list[object]]]] = {}
    series: dict[str, tuple[list[float], list[float]]] = {}
    summary_rows: list[list[object]] = []
    for gpu in INT1_GPUS:
        spec = get_spec(gpu)
        points = sweep_voxels(spec, voxel_counts)
        tables[gpu] = (
            headers,
            [
                [p.n_voxels, round(p.fps, 1), round(p.gemm_tops, 1), p.real_time]
                for p in points
            ],
        )
        series[gpu] = (
            [float(p.n_voxels) for p in points],
            [p.fps for p in points],
        )
        planes = frames_per_second(spec, THREE_PLANES_VOXELS)
        full = frames_per_second(spec, FULL_VOLUME_VOXELS)
        limit = max_realtime_voxels(spec)
        half_freq = frames_per_second(spec, FULL_VOLUME_VOXELS, k=PAPER_REALTIME_K // 2)
        summary_rows.append(
            [
                gpu,
                round(planes.fps, 0),
                round(full.fps, 0),
                round(limit / FULL_VOLUME_VOXELS, 3),
                round(half_freq.fps, 0),
            ]
        )
    series["required"] = (
        [float(voxel_counts[0]), float(voxel_counts[-1])],
        [REQUIRED_FPS, REQUIRED_FPS],
    )
    plot = ascii_series(
        series,
        width=60,
        height=14,
        xlabel="voxels",
        ylabel="frames/s",
        logx=True,
        logy=True,
        title="Ultrasound beamforming throughput (Fig 5); 'required' = 1000 fps",
    )
    summary_headers = [
        "GPU",
        "3-planes fps",
        "full-volume fps",
        "real-time volume fraction",
        "full-volume fps @64 freqs",
    ]
    tables["summary"] = (summary_headers, summary_rows)
    text = plot + "\n" + render_table(summary_headers, summary_rows, title="Real-time checks")

    by_gpu = {r[0]: r for r in summary_rows}
    gh_frac = by_gpu["GH200"][3]
    findings = [
        f"all three GPUs sustain three orthogonal planes far above the 1000 fps "
        f"requirement (min {min(r[1] for r in summary_rows):.0f} fps)",
        f"no GPU sustains the full 128^3 volume "
        f"(max {max(r[2] for r in summary_rows):.0f} fps < 1000)",
        f"GH200 covers {gh_frac * 100:.0f}% of the voxels in real time "
        f"(paper: ~{PAPER_GH200_FRACTION * 100:.0f}%)",
        "halving the number of frequencies (128 -> 64) makes the full volume "
        f"real-time capable on A100 ({by_gpu['A100'][4]:.0f} fps) and GH200 "
        f"({by_gpu['GH200'][4]:.0f} fps), but not AD4000 "
        f"({by_gpu['AD4000'][4]:.0f} fps)",
    ]
    return ExperimentResult(
        name="fig5",
        title="Performance of beamforming for ultrasound (paper Fig 5)",
        text=text,
        tables=tables,
        findings=findings,
    )
