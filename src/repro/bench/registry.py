"""Experiment registry: every paper table/figure mapped to its runner."""

from __future__ import annotations

import inspect
from collections.abc import Callable

from repro.bench import (
    ablations,
    backend_micro,
    claims,
    fig2,
    fig3,
    fig4,
    fig5,
    fig6,
    fig7,
    serve,
    serve_autoscale,
    serve_hetero,
    serve_pipeline,
    serve_priority,
    serve_resilience,
    table1,
    table3,
)
from repro.bench.report import ExperimentResult
from repro.errors import ReproError

#: experiment name -> runner. Order matches the paper's evaluation flow.
EXPERIMENTS: dict[str, Callable[..., ExperimentResult]] = {
    "table1": table1.run,
    "fig2": fig2.run,
    "table3": table3.run,
    "fig3": fig3.run,
    "fig4": fig4.run,
    "fig5": fig5.run,
    "fig6": fig6.run,
    "fig7": fig7.run,
    "ablations": ablations.run,
    "backend-micro": backend_micro.run,
    "claims": claims.run,
    "serve": serve.run,
    "serve-priority": serve_priority.run,
    "serve-hetero": serve_hetero.run,
    "serve-autoscale": serve_autoscale.run,
    "serve-resilience": serve_resilience.run,
    "serve-pipeline": serve_pipeline.run,
}


def describe(name: str) -> str:
    """One-line description of an experiment (its module docstring's lead).

    The registry's runners are module-level ``run`` functions, so the first
    docstring line of each module is the authoritative summary — no second
    copy to drift.
    """
    runner = EXPERIMENTS[name]
    doc = inspect.getdoc(inspect.getmodule(runner)) or ""
    first = doc.strip().splitlines()[0] if doc.strip() else ""
    return first.removeprefix("Experiment:").strip().rstrip(".")


def supports_tracing(name: str) -> bool:
    """Whether an experiment's runner accepts a span-event ``recorder``."""
    return "recorder" in inspect.signature(EXPERIMENTS[name]).parameters


def supports_backend(name: str) -> bool:
    """Whether an experiment's runner accepts an array ``backend`` name."""
    return "backend" in inspect.signature(EXPERIMENTS[name]).parameters


def run_experiment(
    name: str, quick: bool = False, recorder=None, backend: str | None = None
) -> ExperimentResult:
    """Run one experiment by name; passes ``quick``, ``recorder``, and
    ``backend`` where supported (``recorder`` collects the headline run's
    span events for Perfetto export — see :mod:`repro.serve.obs`;
    ``backend`` selects the array-execution backend of functional runners
    — see :mod:`repro.backend`)."""
    try:
        runner = EXPERIMENTS[name]
    except KeyError as exc:
        raise ReproError(
            f"unknown experiment {name!r}; available: {', '.join(EXPERIMENTS)}"
        ) from exc
    params = inspect.signature(runner).parameters
    kwargs: dict[str, object] = {}
    if "quick" in params:
        kwargs["quick"] = quick
    if recorder is not None:
        if "recorder" not in params:
            raise ReproError(
                f"experiment {name!r} does not support tracing; traceable: "
                f"{', '.join(n for n in EXPERIMENTS if supports_tracing(n))}"
            )
        kwargs["recorder"] = recorder
    if backend is not None:
        if "backend" not in params:
            raise ReproError(
                f"experiment {name!r} does not support backend selection; "
                f"backend-aware: {', '.join(n for n in EXPERIMENTS if supports_backend(n))}"
            )
        kwargs["backend"] = backend
    return runner(**kwargs)


def run_all(quick: bool = False) -> list[ExperimentResult]:
    """Run every registered experiment in paper order."""
    return [run_experiment(name, quick=quick) for name in EXPERIMENTS]
