"""Experiment registry: every paper table/figure mapped to its runner."""

from __future__ import annotations

import inspect
from collections.abc import Callable

from repro.bench import (
    ablations,
    claims,
    fig2,
    fig3,
    fig4,
    fig5,
    fig6,
    fig7,
    serve,
    serve_autoscale,
    serve_hetero,
    serve_priority,
    table1,
    table3,
)
from repro.bench.report import ExperimentResult
from repro.errors import ReproError

#: experiment name -> runner. Order matches the paper's evaluation flow.
EXPERIMENTS: dict[str, Callable[..., ExperimentResult]] = {
    "table1": table1.run,
    "fig2": fig2.run,
    "table3": table3.run,
    "fig3": fig3.run,
    "fig4": fig4.run,
    "fig5": fig5.run,
    "fig6": fig6.run,
    "fig7": fig7.run,
    "ablations": ablations.run,
    "claims": claims.run,
    "serve": serve.run,
    "serve-priority": serve_priority.run,
    "serve-hetero": serve_hetero.run,
    "serve-autoscale": serve_autoscale.run,
}


def describe(name: str) -> str:
    """One-line description of an experiment (its module docstring's lead).

    The registry's runners are module-level ``run`` functions, so the first
    docstring line of each module is the authoritative summary — no second
    copy to drift.
    """
    runner = EXPERIMENTS[name]
    doc = inspect.getdoc(inspect.getmodule(runner)) or ""
    first = doc.strip().splitlines()[0] if doc.strip() else ""
    return first.removeprefix("Experiment:").strip().rstrip(".")


def run_experiment(name: str, quick: bool = False) -> ExperimentResult:
    """Run one experiment by name; passes ``quick`` where supported."""
    try:
        runner = EXPERIMENTS[name]
    except KeyError as exc:
        raise ReproError(
            f"unknown experiment {name!r}; available: {', '.join(EXPERIMENTS)}"
        ) from exc
    if "quick" in inspect.signature(runner).parameters:
        return runner(quick=quick)
    return runner()


def run_all(quick: bool = False) -> list[ExperimentResult]:
    """Run every registered experiment in paper order."""
    return [run_experiment(name, quick=quick) for name in EXPERIMENTS]
