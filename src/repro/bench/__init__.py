"""Benchmark harness: regenerates every table and figure of the paper.

See :mod:`repro.bench.registry` for the experiment index and
``python -m repro.bench --help`` for the CLI.
"""

from repro.bench.registry import EXPERIMENTS, run_experiment, run_all
from repro.bench.report import ExperimentResult

__all__ = ["EXPERIMENTS", "run_experiment", "run_all", "ExperimentResult"]
