"""Experiment: the paper's abstract-level claims, checked in one table.

Not a figure — a cross-cutting summary for EXPERIMENTS.md: every headline
number of the abstract and conclusions, measured on the simulated stack.
"""

from __future__ import annotations

from repro.apps.radioastronomy.beamformer import LOFARBeamformer
from repro.apps.radioastronomy.reference import ReferenceBeamformer
from repro.apps.ultrasound.imaging import UltrasoundBeamformer
from repro.apps.ultrasound.realtime import (
    FULL_VOLUME_VOXELS,
    max_realtime_voxels,
)
from repro.bench.report import ExperimentResult
from repro.ccglib.perfmodel import model_gemm
from repro.ccglib.precision import Precision, complex_ops
from repro.ccglib.tuning import published_tuning
from repro.gpusim.device import Device, ExecutionMode
from repro.gpusim.specs import get_spec
from repro.kerneltuner.tuner import PAPER_TUNING_PROBLEMS
from repro.util.formatting import render_table
from repro.util.units import peta, tera

#: the Octave baseline efficiency fitted from the paper's 15-minute report.
from repro.bench.fig6 import (
    OCTAVE_OPENCL_EFFICIENCY,
    RECORDED_K,
    RECORDED_M,
    RECORDED_N,
)


def _tuned(gpu: str, precision: Precision):
    spec = get_spec(gpu)
    return model_gemm(
        spec, precision, PAPER_TUNING_PROBLEMS[precision],
        published_tuning(gpu, precision).params,
    )


def run() -> ExperimentResult:
    rows: list[list[object]] = []

    mi300x = _tuned("MI300X", Precision.FLOAT16)
    rows.append([
        "16-bit mode: over 600 TOPs/s on MI300X",
        f"{mi300x.ops_per_second / tera:.0f} TOPs/s",
        mi300x.ops_per_second > 600 * tera,
    ])
    rows.append([
        "... while approaching 1 TOp/J",
        f"{mi300x.ops_per_joule / tera:.2f} TOPs/J",
        0.8 * tera < mi300x.ops_per_joule <= 1.0 * tera,
    ])
    a100_int1 = _tuned("A100", Precision.INT1)
    rows.append([
        "1-bit mode: breaks the 3 PetaOps/s barrier (A100)",
        f"{a100_int1.ops_per_second / peta:.2f} POps/s",
        a100_int1.ops_per_second > 3 * peta,
    ])
    rows.append([
        "... and over 10 TOPs/J on the A100",
        f"{a100_int1.ops_per_joule / tera:.1f} TOPs/J",
        a100_int1.ops_per_joule > 10 * tera,
    ])

    # Ultrasound: 10-100x faster claim (vs Octave: even more).
    gh200 = Device("GH200", ExecutionMode.DRY_RUN)
    tcbf_s = UltrasoundBeamformer(
        gh200, n_voxels=RECORDED_M, k=RECORDED_K, n_frames=RECORDED_N,
        precision=Precision.INT1,
    ).reconstruct().time_s
    octave_s = complex_ops(1, RECORDED_M, RECORDED_N, RECORDED_K) / (
        get_spec("A100").fp32_peak_ops() * OCTAVE_OPENCL_EFFICIENCY
    )
    rows.append([
        "ultrasound: nearly three orders of magnitude vs previous impl.",
        f"{octave_s / tcbf_s:.0f}x",
        300 <= octave_s / tcbf_s <= 3000,
    ])
    rows.append([
        "3D cUSi real-time feedback possible for the first time",
        f"{tcbf_s:.2f} s for the recorded dataset (< 8 s budget)",
        tcbf_s < 8.0,
    ])
    frac = max_realtime_voxels(get_spec("GH200")) / FULL_VOLUME_VOXELS
    rows.append([
        "GH200 processes ~85% of the full volume in real time",
        f"{frac:.0%}",
        0.75 <= frac <= 0.95,
    ])

    # Radio astronomy: 2-20x faster, ~10x more efficient.
    dry = Device("A100", ExecutionMode.DRY_RUN)
    speedups = []
    for k in (16, 48, 128, 512):
        t = LOFARBeamformer(dry, 1024, k, 1024, 256).predict_cost()
        r = ReferenceBeamformer(dry, 1024, k, 1024, 256).predict_cost()
        speedups.append(t.ops_per_second / r.ops_per_second)
    rows.append([
        "radio astronomy: 2-20x faster than the existing beamformer",
        f"{min(speedups):.1f}x - {max(speedups):.1f}x over 16..512 receivers",
        speedups[-1] > 10 and min(speedups) > 1.5,
    ])
    t512 = LOFARBeamformer(dry, 1024, 512, 1024, 256).predict_cost()
    r512 = ReferenceBeamformer(dry, 1024, 512, 1024, 256).predict_cost()
    rows.append([
        "... and an order of magnitude more energy efficient",
        f"{t512.ops_per_joule / r512.ops_per_joule:.1f}x",
        t512.ops_per_joule / r512.ops_per_joule > 8,
    ])

    headers = ["claim (abstract/conclusions)", "measured", "holds"]
    text = render_table(headers, rows, title="Headline claims on the simulated stack")
    n_hold = sum(1 for r in rows if r[2])
    return ExperimentResult(
        name="claims",
        title="Abstract and conclusion claims, end to end",
        text=text,
        tables={"claims": (headers, rows)},
        findings=[f"{n_hold}/{len(rows)} headline claims hold on the simulated stack"],
    )
