"""Experiment: paper Fig 6 — beamformed mouse-brain volume.

Two halves, per the substitution plan (DESIGN.md §2):

* **Image quality (functional)**: synthetic vascular phantom at reduced
  scale through the full pipeline — simulate frames, SVD clutter filter,
  sign quantization, 1-bit reconstruction, power Doppler, three orthogonal
  MIPs — and verify vessels are visible (positive contrast), that skipping
  the clutter filter destroys the image (the paper's ordering claim), and
  that the 1-bit image correlates with the float16 image at reduced
  contrast ("conversion to 1-bit means that the contrast is reduced ...
  still results in usable image feedback").
* **Throughput (dry-run, paper scale)**: the recorded-dataset shape
  M=38880, N=8041, K=524288 on the GH200 (paper: 1.2 s) versus the Octave
  float32/OpenCL baseline on an A100 (paper: ~15 minutes) — the "nearly
  three orders of magnitude" claim.
"""

from __future__ import annotations

import numpy as np

from repro.apps.ultrasound import (
    ClutterFilter,
    EnsembleConfig,
    ImagingConfig,
    TransducerArray,
    UltrasoundBeamformer,
    VoxelGrid,
    apply_clutter_filter,
    build_model_matrix,
    contrast_db,
    make_phantom,
    max_intensity_projections,
    power_doppler,
    render_ascii,
    simulate_frames,
)
from repro.bench.report import ExperimentResult
from repro.ccglib.precision import Precision, complex_ops
from repro.gpusim.device import Device, ExecutionMode
from repro.gpusim.specs import get_spec
from repro.util.formatting import render_table

#: paper: "we run the matrix-matrix multiplication in float32 precision
#: using Octave with OpenCL backend. On an A100, this takes roughly 15
#: minutes" — which implies ~7.5% of the A100's float32 peak; kept as the
#: documented baseline efficiency.
OCTAVE_OPENCL_EFFICIENCY = 0.075

#: recorded mouse-brain dataset shape (paper §V-A).
RECORDED_M, RECORDED_N, RECORDED_K = 38880, 8041, 524288
PAPER_TCBF_SECONDS = 1.2
PAPER_OCTAVE_SECONDS = 15 * 60.0
REALTIME_BUDGET_SECONDS = 8.0

PROJECTION_AXIS = {"axial": 0, "coronal": 1, "sagittal": 2}


def run(backend: str | None = None) -> ExperimentResult:
    sections: list[str] = []
    findings: list[str] = []

    # ---- functional image-quality half -----------------------------------
    cfg = ImagingConfig(
        array=TransducerArray(4, 4),
        grid=VoxelGrid(shape=(12, 12, 10)),
        n_frequencies=16,
        n_transmissions=8,
    )
    model = build_model_matrix(cfg)
    phantom = make_phantom(cfg.grid, n_generations=3)
    frames = simulate_frames(model, phantom, EnsembleConfig(n_frames=64))
    filtered = apply_clutter_filter(frames, ClutterFilter.SVD, n_components=2)
    device = Device("GH200")
    images: dict[str, np.ndarray] = {}
    for precision in (Precision.INT1, Precision.FLOAT16):
        bf = UltrasoundBeamformer(
            device, model, n_frames=64, precision=precision, backend=backend
        )
        rec = bf.reconstruct(filtered)
        images[precision.value] = power_doppler(rec.frames)
    unfiltered = power_doppler(
        UltrasoundBeamformer(
            device, model, n_frames=64, precision=Precision.INT1, backend=backend
        )
        .reconstruct(frames)
        .frames
    )
    mask = phantom.blood_mask_volume()
    contrast_rows: list[list[object]] = []
    for label, img in [
        ("int1 + clutter filter", images["int1"]),
        ("float16 + clutter filter", images["float16"]),
        ("int1, no clutter filter", unfiltered),
    ]:
        mips = max_intensity_projections(cfg.grid.to_volume(img))
        row: list[object] = [label]
        for name, mip in mips.items():
            row.append(round(contrast_db(mip, mask.max(axis=PROJECTION_AXIS[name])), 1))
        contrast_rows.append(row)
    contrast_headers = ["pipeline", "axial dB", "coronal dB", "sagittal dB"]
    sections.append(
        render_table(contrast_headers, contrast_rows, title="Vessel contrast of the MIPs")
    )
    mips1 = max_intensity_projections(cfg.grid.to_volume(images["int1"]))
    for name in ("sagittal", "coronal", "axial"):
        sections.append(f"{name} MIP (1-bit pipeline):")
        sections.append(render_ascii(mips1[name], width=48))
    corr = float(np.corrcoef(images["int1"], images["float16"])[0, 1])
    findings.append(
        f"1-bit and float16 power-Doppler volumes correlate at r={corr:.2f}; "
        "1-bit contrast is mildly reduced but vessels remain clearly visible"
    )
    findings.append(
        "without pre-quantization clutter filtering the vessel contrast "
        f"collapses to {contrast_rows[2][1]} dB (paper: Doppler processing "
        "must precede sign extraction)"
    )

    # ---- paper-scale throughput half --------------------------------------
    gh200 = Device("GH200", ExecutionMode.DRY_RUN)
    bf = UltrasoundBeamformer(
        gh200, n_voxels=RECORDED_M, k=RECORDED_K, n_frames=RECORDED_N,
        precision=Precision.INT1,
    )
    rec = bf.reconstruct()
    tcbf_s = rec.time_s
    ops = complex_ops(1, RECORDED_M, RECORDED_N, RECORDED_K)
    a100 = get_spec("A100")
    octave_s = ops / (a100.fp32_peak_ops() * OCTAVE_OPENCL_EFFICIENCY)
    timing_rows = [
        ["TCBF on GH200 (int1, incl. pack+transpose)", round(tcbf_s, 2), PAPER_TCBF_SECONDS],
        ["Octave float32/OpenCL on A100", round(octave_s, 0), PAPER_OCTAVE_SECONDS],
        [
            "speedup",
            round(octave_s / tcbf_s, 0),
            round(PAPER_OCTAVE_SECONDS / PAPER_TCBF_SECONDS, 0),
        ],
    ]
    timing_headers = ["quantity", "measured", "paper"]
    sections.append(
        render_table(
            timing_headers,
            timing_rows,
            title=f"Recorded dataset M={RECORDED_M}, N={RECORDED_N}, K={RECORDED_K}",
        )
    )
    findings.append(
        f"recorded-dataset reconstruction takes {tcbf_s:.2f} s on the simulated "
        f"GH200 (paper: {PAPER_TCBF_SECONDS} s), well inside the {REALTIME_BUDGET_SECONDS:.0f} s "
        "real-time budget"
    )
    findings.append(
        f"TCBF is {octave_s / tcbf_s:.0f}x faster than the Octave baseline "
        "(paper: 'nearly three orders of magnitude')"
    )

    tables = {
        "contrast": (contrast_headers, contrast_rows),
        "timing": (timing_headers, timing_rows),
    }
    return ExperimentResult(
        name="fig6",
        title="Beamformed mouse-brain volume: quality and throughput (paper Fig 6)",
        text="\n".join(sections),
        tables=tables,
        findings=findings,
    )
