"""Experiment: paper Table I — tensor-core micro-benchmarks.

Regenerates the measured-vs-theoretical throughput matrix over all seven
GPUs, both 1-bit fragment layouts and both multiply operands, and compares
against the paper's published measurements cell by cell.
"""

from __future__ import annotations

from repro.bench.report import ExperimentResult
from repro.cudapeak.microbench import run_table1
from repro.gpusim.arch import BitOp
from repro.util.formatting import render_table

#: Paper Table I "Measured performance" values, keyed by
#: (gpu, precision, fragment string, bit op or None).
PAPER_TABLE1: dict[tuple[str, str, str, str | None], float] = {
    ("AD4000", "float16", "16x16x16", None): 117.0,
    ("A100", "float16", "16x16x16", None): 308.0,
    ("GH200", "float16", "16x16x16", None): 646.0,
    ("W7700", "float16", "16x16x16", None): 59.0,
    ("MI210", "float16", "16x16x16", None): 174.0,
    ("MI300X", "float16", "16x16x16", None): 1205.0,
    ("MI300A", "float16", "16x16x16", None): 949.0,
    ("AD4000", "int1", "8x8x128", "xor"): 1847.0,
    ("AD4000", "int1", "8x8x128", "and"): 1804.0,
    ("AD4000", "int1", "16x8x256", "xor"): 1865.0,
    ("AD4000", "int1", "16x8x256", "and"): 1865.0,
    ("A100", "int1", "8x8x128", "xor"): 2465.0,
    ("A100", "int1", "8x8x128", "and"): 2408.0,
    ("A100", "int1", "16x8x256", "xor"): 4942.0,
    ("A100", "int1", "16x8x256", "and"): 4942.0,
    ("GH200", "int1", "8x8x128", "xor"): 979.0,
    ("GH200", "int1", "8x8x128", "and"): 3894.0,
    ("GH200", "int1", "16x8x256", "xor"): 2361.0,
    ("GH200", "int1", "16x8x256", "and"): 10276.0,
}


def run() -> ExperimentResult:
    results = run_table1()
    headers = [
        "GPU",
        "precision",
        "fragment",
        "op",
        "measured TOPs/s",
        "theoretical TOPs/s",
        "paper TOPs/s",
        "ratio vs paper",
    ]
    rows: list[list[object]] = []
    max_dev = 0.0
    for r in results:
        op = r.bit_op.value if r.bit_op else None
        paper = PAPER_TABLE1.get((r.gpu, r.precision, str(r.fragment), op))
        ratio = r.measured_tops / paper if paper else float("nan")
        if paper:
            max_dev = max(max_dev, abs(ratio - 1.0))
        rows.append(
            [
                r.gpu,
                r.precision,
                str(r.fragment),
                op or "-",
                round(r.measured_tops, 0),
                round(r.theoretical_tops, 0),
                paper if paper is not None else "-",
                round(ratio, 3) if paper else "-",
            ]
        )
    text = render_table(headers, rows, title="Tensor-core micro-benchmarks (cudapeak)")
    findings = [
        f"all {sum(1 for r in rows if r[6] != '-')} published cells reproduced within "
        f"{max_dev * 100:.1f}% (clock/interface calibration)",
        "workstation GPUs (AD4000, W7700) exceed theoretical peak via boosted clocks",
        "GH200 reaches ~65% of peak through the WMMA interface",
        "XOR on GH200 is ~4.4x slower than AND (software emulation on Hopper)",
        "8x8x128 runs at half the 16x8x256 rate on A100, equal rate on AD4000",
        "1-bit rows are absent for AMD GPUs (int1 is NVIDIA-only)",
    ]
    return ExperimentResult(
        name="table1",
        title="Tensor core micro-benchmark results (paper Table I)",
        text=text,
        tables={"microbench": (headers, rows)},
        findings=findings,
    )
