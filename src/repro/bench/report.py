"""Experiment result container and file output.

Every experiment runner returns an :class:`ExperimentResult` holding the
rendered text report (tables + ASCII figures) and the raw series. The CLI
writes ``<name>.txt`` plus one ``<name>_<table>.csv`` per series to the
output directory, so the figures can be re-plotted with any tool.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from collections.abc import Sequence

from repro.util.formatting import render_csv


@dataclass
class ExperimentResult:
    """Output of one table/figure reproduction."""

    name: str
    title: str
    #: rendered human-readable report (tables, ASCII plots, findings).
    text: str
    #: raw numeric series: table name -> (headers, rows).
    tables: dict[str, tuple[Sequence[str], list[Sequence[object]]]] = field(
        default_factory=dict
    )
    #: headline comparisons against the paper, one line each.
    findings: list[str] = field(default_factory=list)
    #: JSON-ready :meth:`MetricsRegistry.snapshot` of the experiment's
    #: headline run, when the runner serves traffic (``None`` otherwise).
    metrics: dict[str, object] | None = None
    #: JSON-ready :meth:`AlertEngine.snapshot` of the headline run's
    #: burn-rate alerting (``None`` for unmonitored experiments).
    alerts: dict[str, object] | None = None
    #: completed fraction of admitted requests in the headline run — the
    #: resilience axis every serving experiment reports (``None`` for
    #: experiments that serve no traffic).
    availability: float | None = None
    #: rendered monitoring dashboard HTML of the headline run
    #: (``repro-bench --dashboard PATH`` writes it; ``None`` when the
    #: runner does not monitor).
    dashboard_html: str | None = None

    def full_text(self) -> str:
        parts = [f"=== {self.name}: {self.title} ===", "", self.text]
        if self.findings:
            parts += ["", "Findings vs paper:"]
            parts += [f"  - {f}" for f in self.findings]
        return "\n".join(parts) + "\n"

    def write(self, outdir: str | Path) -> list[Path]:
        """Write the report and CSVs; returns the created paths."""
        outdir = Path(outdir)
        outdir.mkdir(parents=True, exist_ok=True)
        written = []
        report = outdir / f"{self.name}.txt"
        report.write_text(self.full_text())
        written.append(report)
        for table_name, (headers, rows) in self.tables.items():
            csv_path = outdir / f"{self.name}_{table_name}.csv"
            csv_path.write_text(render_csv(headers, rows))
            written.append(csv_path)
        return written
