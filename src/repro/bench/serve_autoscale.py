"""Experiment: elastic fleets — reactive vs predictive autoscaling vs fixed.

The paper sizes a fixed device set against a known ingest rate; a serving
tier faces a *diurnal* rate that swings from zero to twice the daily mean.
This experiment drives one compressed two-day LOFAR trace (sinusoidal
rate, dead troughs, peaks at 9x one device's batched capacity) through
three provisioning regimes on simulated A100s:

* **reactive autoscaling** — scale up on sustained queue pressure, down on
  sustained idle (:class:`~repro.serve.autoscale.ReactiveAutoscaler`);
* **predictive autoscaling** — size the fleet against the arrival
  generator's own :class:`~repro.serve.arrivals.RateForecast`, a
  provisioning window ahead
  (:class:`~repro.serve.autoscale.PredictiveAutoscaler`);
* **fixed fleets** — the autoscaler's device-second budget spent as a
  constant fleet (whole devices: the budget's floor and its ceiling).

Checked claims, all deterministic:

* the reactive policy holds its p99 SLO with sub-percent shedding at a
  load where the equal-device-second fixed fleet sheds several percent of
  all requests at the diurnal peaks;
* the predictive policy scales *ahead* of the first peak (its first
  scale-up precedes the reactive policy's by milliseconds of simulated
  time) and pays fewer cold-start-affected requests — capacity warms its
  plan cache before the crush, and short troughs are ridden out warm
  rather than drained and re-provisioned cold;
* every scale-down drains non-destructively (each drain reaches its
  retire event; nothing in flight is revoked);
* a fixed-seed replay reproduces every reported number bit-for-bit.
"""

from __future__ import annotations

from functools import cache

from repro.apps.radioastronomy.beamformer import service_workload as lofar_workload
from repro.bench.report import ExperimentResult
from repro.gpusim.device import Device, ExecutionMode
from repro.serve import (
    SLO,
    Autoscaler,
    BatchingPolicy,
    BeamformingService,
    PredictiveAutoscaler,
    RateForecast,
    ReactiveAutoscaler,
    ServiceReport,
    diurnal_arrivals,
)
from repro.serve.arrivals import fit_rate_forecast
from repro.serve.obs import ServiceMonitor, render_dashboard
from repro.serve.obs.trace import NullRecorder
from repro.util.formatting import render_table

GPU = "A100"
SEED = 2027

#: the compressed "day": one diurnal period, trace covers two of them.
PERIOD_S = 8e-3
HORIZON_S = 16e-3
#: daily-mean offered load relative to one device's batched GEMM capacity;
#: amplitude 1.0 makes the peak twice that and the night dead silent.
BASE_LOAD = 4.5
AMPLITUDE = 1.0

SLO_P99_S = 2e-3
#: admission deadline, tighter than the reported p99 target: the margin
#: the fixed fleet's peak queue must fit inside.
DEADLINE_S = 1.3e-3

POLICY = BatchingPolicy(max_batch=32, max_wait_s=0.5e-3)

#: seed fleet (and scale-down floor) of the elastic configurations.
SEED_WORKERS = 2
MAX_WORKERS = 10
#: modelled provisioning latency of a scaled-up worker.
STARTUP_S = 400e-6
#: autoscaler evaluation interval (the fourth event source's clock).
INTERVAL_S = 250e-6
#: monitor sampling cadence (the pure-read fifth event source's clock).
MONITOR_INTERVAL_S = 100e-6

#: reactive knobs: sustained-pressure threshold and trend lengths.
UP_PRESSURE_S = 0.15e-3
UP_TICKS = 2
DOWN_TICKS = 1
#: predictive knobs: provisioning window, keep-warm window, margin.
LEAD_S = 1.5e-3
HOLD_S = 5e-3
HEADROOM = 1.15

#: acceptance bars.
REACTIVE_MAX_SHED = 0.01
FIXED_MIN_SHED = 0.02

#: horizon of the small scenario pinned by the checked-in golden CSV (one
#: diurnal day) — the single source both the golden test and
#: scripts/check_golden.py read.
GOLDEN_HORIZON_S = 8e-3


def _device() -> Device:
    return Device(GPU, ExecutionMode.DRY_RUN)


def _workload():
    return lofar_workload(n_samples=2048)


@cache
def capacity_hz() -> float:
    """Requests/s one device sustains on full merged batches.

    GEMM-bound: with copy/compute overlap the stage-in of the next batch
    hides behind the running GEMM, so steady-state throughput is set by
    the GEMM alone (the same accounting as the serve-priority bench).
    Cached: the value is a pure function of the catalog spec, and every
    scenario (plus the replay and golden runs) consults it.
    """
    plan = _workload().kernel.make_plan(_device(), POLICY.max_batch)
    return POLICY.max_batch / plan.predict_gemm_cost().time_s


@cache
def forecast() -> RateForecast:
    """The diurnal profile: day starts at the trough (night)."""
    return RateForecast(
        base_rate_hz=BASE_LOAD * capacity_hz(),
        amplitude=AMPLITUDE,
        period_s=PERIOD_S,
        phase_s=0.75 * PERIOD_S,
    )


def _trace(horizon_s: float, seed: int):
    profile = forecast()
    return diurnal_arrivals(
        _workload(),
        profile.base_rate_hz,
        profile.amplitude,
        profile.period_s,
        horizon_s,
        seed=seed,
        phase_s=profile.phase_s,
    )


def _service(
    n_devices: int,
    autoscaler: Autoscaler | None = None,
    recorder: NullRecorder | None = None,
    monitor: ServiceMonitor | None = None,
) -> BeamformingService:
    return BeamformingService(
        [_device() for _ in range(n_devices)],
        policy=POLICY,
        slo=SLO(p99_latency_s=SLO_P99_S, deadline_s=DEADLINE_S),
        autoscaler=autoscaler,
        recorder=recorder,
        monitor=monitor,
    )


def _monitor() -> ServiceMonitor:
    """The headline run's monitor: default burn-rate rules, 100 µs ticks."""
    return ServiceMonitor(interval_s=MONITOR_INTERVAL_S)


def reactive_scenario(
    horizon_s: float = HORIZON_S,
    seed: int = SEED,
    recorder: NullRecorder | None = None,
    monitor: ServiceMonitor | None = None,
) -> ServiceReport:
    """The reactive run: queue pressure up, sustained idle down."""
    autoscaler = Autoscaler(
        ReactiveAutoscaler(
            up_pressure_s=UP_PRESSURE_S, up_ticks=UP_TICKS, down_ticks=DOWN_TICKS
        ),
        device_factory=_device,
        interval_s=INTERVAL_S,
        max_workers=MAX_WORKERS,
        startup_s=STARTUP_S,
    )
    return _service(SEED_WORKERS, autoscaler, recorder=recorder, monitor=monitor).run(
        _trace(horizon_s, seed)
    )


@cache
def fitted_forecast(horizon_s: float = HORIZON_S, seed: int = SEED) -> RateForecast:
    """The forecast a live operator would have: fitted from observed traffic.

    Estimated from the trace's own arrival instants via
    :func:`~repro.serve.arrivals.fit_rate_forecast` — only the period is
    assumed known (the day length is scheduled; the profile is not). The
    profile is periodic, so fitting on the same window the run replays is
    the honest stand-in for "fit on yesterday, provision today".
    """
    trace = _trace(horizon_s, seed)
    return fit_rate_forecast([r.arrival_s for r in trace], PERIOD_S, horizon_s)


def predictive_scenario(
    horizon_s: float = HORIZON_S, seed: int = SEED, oracle: bool = False
) -> ServiceReport:
    """The predictive run: sized against the diurnal rate forecast.

    By default the policy consumes the *fitted* forecast (estimated from
    observed arrivals); ``oracle=True`` hands it the generator's true
    profile instead — the upper bound the regression test pins the fitted
    run against.
    """
    autoscaler = Autoscaler(
        PredictiveAutoscaler(
            forecast=forecast() if oracle else fitted_forecast(horizon_s, seed),
            capacity_hz=capacity_hz(),
            lead_s=LEAD_S,
            hold_s=HOLD_S,
            headroom=HEADROOM,
        ),
        device_factory=_device,
        interval_s=INTERVAL_S,
        max_workers=MAX_WORKERS,
        startup_s=STARTUP_S,
    )
    return _service(SEED_WORKERS, autoscaler).run(_trace(horizon_s, seed))


def fixed_scenario(n_devices: int, horizon_s: float = HORIZON_S, seed: int = SEED) -> ServiceReport:
    """The same trace on a fixed fleet of ``n_devices``."""
    return _service(n_devices).run(_trace(horizon_s, seed))


def _report_row(label: str, report: ServiceReport) -> list[object]:
    return [
        label,
        report.n_offered,
        report.n_completed,
        report.shed_rate * 100.0,
        report.p99_latency_s * 1e3,
        report.device_seconds * 1e3,
        report.mean_fleet_size,
        report.peak_fleet_size,
        report.cold_start_requests,
        report.n_scale_ups,
        report.n_scale_downs,
    ]


_REPORT_HEADERS = [
    "config",
    "offered",
    "completed",
    "shed (%)",
    "p99 (ms)",
    "device-ms",
    "mean fleet",
    "peak fleet",
    "cold-start reqs",
    "ups",
    "downs",
]


def _event_rows(label: str, report: ServiceReport) -> list[list[object]]:
    return [
        [label, e.t_s * 1e3, e.kind, e.worker_index, e.accepting, e.provisioned]
        for e in report.scale_events
    ]


_EVENT_HEADERS = ["policy", "t (ms)", "event", "worker", "accepting", "provisioned"]


def golden_rows(
    horizon_s: float = GOLDEN_HORIZON_S, seed: int = SEED
) -> tuple[list[str], list[list[object]]]:
    """The scenario rows pinned by the checked-in golden CSV.

    One row per provisioning regime of the headline trace; every value is
    a deterministic function of the seed, so the rendered CSV must match
    the golden file byte for byte on any platform. Regenerate (and
    re-bless deliberately) via ``scripts/check_golden.py --bless``.
    """
    reactive = reactive_scenario(horizon_s, seed=seed)
    predictive = predictive_scenario(horizon_s, seed=seed)
    n_budget = max(1, int(reactive.mean_fleet_size))
    rows = [
        _report_row("reactive", reactive),
        _report_row("predictive", predictive),
        _report_row(
            f"fixed-{n_budget}", fixed_scenario(n_budget, horizon_s, seed=seed)
        ),
        _report_row(
            f"fixed-{n_budget + 1}",
            fixed_scenario(n_budget + 1, horizon_s, seed=seed),
        ),
    ]
    return _REPORT_HEADERS, rows


def run(quick: bool = False, recorder: NullRecorder | None = None) -> ExperimentResult:
    # The two-day trace is the experiment: quick mode keeps the full
    # horizon (a single day would have no second peak for the reactive
    # policy to pay its cold-start bill on) — the run is already small.
    horizon_s = HORIZON_S
    findings: list[str] = []
    tables: dict[str, tuple[list[str], list[list[object]]]] = {}
    text_parts: list[str] = []

    monitor = _monitor()
    reactive = reactive_scenario(horizon_s, recorder=recorder, monitor=monitor)
    predictive = predictive_scenario(horizon_s)
    #: the autoscaler's device-second budget as whole fixed devices.
    n_budget = max(1, int(reactive.mean_fleet_size))
    fixed_floor = fixed_scenario(n_budget, horizon_s)
    fixed_ceil = fixed_scenario(n_budget + 1, horizon_s)

    rows = [
        _report_row("reactive", reactive),
        _report_row("predictive", predictive),
        _report_row(f"fixed-{n_budget}", fixed_floor),
        _report_row(f"fixed-{n_budget + 1}", fixed_ceil),
    ]
    tables["policies"] = (_REPORT_HEADERS, rows)
    text_parts.append(
        render_table(
            _REPORT_HEADERS,
            rows,
            title=(
                f"Two compressed diurnal days on {GPU}s (peak "
                f"{BASE_LOAD * (1 + AMPLITUDE):.0f}x one device's batched "
                f"capacity, dead troughs): elastic vs fixed provisioning"
            ),
        )
    )
    event_rows = _event_rows("reactive", reactive) + _event_rows("predictive", predictive)
    tables["scale_events"] = (_EVENT_HEADERS, event_rows)
    text_parts.append(
        render_table(
            _EVENT_HEADERS, event_rows, title="Every applied scale event, in time order"
        )
    )

    # --- reactive vs the same budget spent as a fixed fleet -----------------
    budget_ratio = fixed_floor.device_seconds / reactive.device_seconds
    reactive_ok = (
        reactive.slo_attained
        and reactive.shed_rate <= REACTIVE_MAX_SHED
        and fixed_floor.shed_rate >= FIXED_MIN_SHED
    )
    findings.append(
        f"reactive autoscaling holds p99 {reactive.p99_latency_s * 1e3:.2f} ms "
        f"<= {SLO_P99_S * 1e3:.0f} ms SLO with {reactive.shed_rate:.2%} shed; "
        f"the same device-second budget as a fixed fleet ({n_budget} whole "
        f"devices, {budget_ratio:.0%} of the autoscaler's device-seconds) "
        f"sheds {fixed_floor.shed_rate:.1%} at the diurnal peaks "
        f"({'PASS' if reactive_ok else 'FAIL'})"
    )
    findings.append(
        f"buying out of the shedding with fixed capacity takes "
        f"{n_budget + 1} devices — "
        f"{fixed_ceil.device_seconds / reactive.device_seconds - 1:+.0%} "
        f"device-seconds over the reactive fleet for "
        f"{fixed_ceil.shed_rate:.1%} shed"
    )

    # --- predictive scales ahead of the peak --------------------------------
    first_reactive = min(e.t_s for e in reactive.scale_events)
    first_predictive = min(e.t_s for e in predictive.scale_events)
    predictive_ok = (
        first_predictive < first_reactive
        and predictive.cold_start_requests < reactive.cold_start_requests
        and predictive.shed_rate <= reactive.shed_rate
    )
    findings.append(
        f"predictive scaling acts {first_predictive * 1e3:.2f} ms into the "
        f"trace vs the reactive policy's {first_reactive * 1e3:.2f} ms and "
        f"affects {predictive.cold_start_requests} requests with cold plan "
        f"builds vs {reactive.cold_start_requests} reactive (forecast-window "
        f"hold rides out short troughs warm) "
        f"({'PASS' if predictive_ok else 'FAIL'})"
    )

    # --- non-destructive scale-down -----------------------------------------
    drains_ok = all(
        r.n_scale_downs == sum(1 for e in r.scale_events if e.kind == "retire")
        for r in (reactive, predictive)
    )
    findings.append(
        f"every scale-down drained to retirement "
        f"({reactive.n_scale_downs} reactive + {predictive.n_scale_downs} "
        f"predictive drains, none revoked in flight) "
        f"({'PASS' if drains_ok else 'FAIL'})"
    )

    # --- burn-rate alerting sees the peak -----------------------------------
    fired = [a for a in reactive.alerts() if a.firing_s is not None]
    service_fired = [a for a in fired if a.scope == "service"]
    resolved = [a for a in service_fired if a.resolved_s is not None]
    scaled_into_resolution = any(
        any(
            e.kind == "up" and a.firing_s <= e.t_s <= a.resolved_s
            for e in reactive.scale_events
        )
        for a in resolved
    )
    alerts_ok = bool(service_fired) and bool(resolved) and scaled_into_resolution
    if service_fired:
        first = service_fired[0]
        findings.append(
            f"burn-rate alerting catches the diurnal peak: "
            f"{len(fired)} alert(s) fired "
            f"(service-scope [{first.aid}] at {first.firing_s * 1e3:.2f} ms, "
            f"peak burn {first.peak_burn:.0f}x the error budget) and "
            f"resolved after scale-up at "
            f"{(resolved[0].resolved_s if resolved else 0.0) * 1e3:.2f} ms "
            f"({'PASS' if alerts_ok else 'FAIL'})"
        )
    else:
        findings.append(
            "burn-rate alerting: no service-scope alert fired at the "
            "diurnal peak (FAIL)"
        )

    # --- determinism ---------------------------------------------------------
    replay = reactive_scenario(horizon_s)
    deterministic = (
        replay.latencies_s == reactive.latencies_s
        and _report_row("reactive", replay) == rows[0]
        and _event_rows("reactive", replay) == _event_rows("reactive", reactive)
    )
    findings.append(
        f"fixed-seed replay reproduces every latency, fleet size, and scale "
        f"event bit-identically ({'PASS' if deterministic else 'FAIL'})"
    )

    return ExperimentResult(
        name="serve-autoscale",
        title="Elastic fleets: reactive and predictive autoscaling vs fixed provisioning",
        text="\n".join(text_parts),
        tables=tables,
        findings=findings,
        metrics=reactive.metrics.snapshot() if reactive.metrics is not None else None,
        alerts=monitor.engine.snapshot(),
        availability=reactive.availability,
        dashboard_html=render_dashboard(
            reactive,
            title="serve-autoscale: reactive policy, two compressed diurnal days",
        ),
    )
