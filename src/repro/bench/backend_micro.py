"""Experiment: backend micro-benchmarks — wall-clock hot-path throughput.

Unlike every other experiment (which reports *modelled* device time from
the analytic cost layer), this one measures real wall-clock throughput of
the vectorized functional hot paths — 1-bit packing, the K-major
transpose, the float16 5-step complex MMA and the packed 1-bit GEMM — on
every detected :mod:`repro.backend` array backend. Two purposes:

* **pin the vectorization win**: the packing kernel is also implemented as
  a deliberately scalar Python loop
  (:func:`repro.ccglib.packing.pack_sign_planar_scalar`, the executable
  specification of the bit layout); the ``speedup`` table measures the
  vectorized path against it and the findings assert the pinned >= 5x
  floor, so a future change that quietly de-vectorizes the hot path fails
  the bench;
* **compare backends**: the same pipeline entry points run per backend
  (NumPy always; CuPy/JAX when importable), giving a like-for-like
  throughput table and exercising the cross-backend code paths in CI.

Wall-clock numbers vary with the host, so the bench-history gate tracks
them with deliberately wide tolerances — the gate exists to catch a
de-vectorization cliff, not scheduler jitter.
"""

from __future__ import annotations

import time

import numpy as np

from repro.backend import available_backends, backend_versions, get_backend
from repro.bench.report import ExperimentResult
from repro.ccglib.bit_gemm import complex_bit_gemm
from repro.ccglib.complex_mma import complex_mma_f16_batched
from repro.ccglib.packing import pack_sign_planar, pack_sign_planar_scalar
from repro.ccglib.transpose import planar_to_kmajor
from repro.util.formatting import render_table

#: pinned floor for the vectorized-vs-scalar packing speedup; a drop below
#: this means the hot path fell back to per-element Python work.
MIN_PACK_SPEEDUP = 5.0

#: the scalar reference always runs this shape (quick or not): the Python
#: loop is the slow side, so the comparison shape must stay small.
_SCALAR_SHAPE = (2, 16, 8192)

_TIMING_REPS = 3


def _best_time(fn, be, reps: int = _TIMING_REPS) -> float:
    """Best-of-``reps`` wall time of ``fn()``, synchronized per repetition."""
    fn()  # warm-up: JIT traces, allocator pools, import costs
    be.synchronize()
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        be.synchronize()
        best = min(best, time.perf_counter() - t0)
    return max(best, 1e-9)


def run(quick: bool = False, backend: str | None = None) -> ExperimentResult:
    rng = np.random.default_rng(99)
    if quick:
        pack_shape = (2, 32, 32768)
        trans_shape = (2, 512, 512)
        f16_shape = (4, 64, 64, 64)      # batch, m, n, k
        int1_shape = (1, 64, 64, 4096)
    else:
        pack_shape = (2, 64, 262144)
        trans_shape = (2, 2048, 2048)
        f16_shape = (8, 128, 128, 256)
        int1_shape = (1, 128, 128, 16384)

    backends = [backend] if backend is not None else list(available_backends())
    sections: list[str] = []
    findings: list[str] = []

    micro_headers = ["path", "time (ms)", "GB/s", "GFLOP/s"]
    micro_rows: list[list[object]] = []
    pack_host = rng.normal(size=pack_shape).astype(np.float32)
    trans_host = rng.normal(size=trans_shape).astype(np.float32)
    bf, mf, nf, kf = f16_shape
    a_f16 = rng.normal(size=(bf, 2, mf, kf)).astype(np.float32)
    b_f16 = rng.normal(size=(bf, 2, kf, nf)).astype(np.float32)
    bi, mi, ni, ki = int1_shape

    for name in backends:
        be = get_backend(name)

        pack_in = be.asarray(pack_host)
        t = _best_time(lambda: pack_sign_planar(pack_in, backend=be), be)
        words = pack_sign_planar(pack_in, backend=be)
        pack_bytes = pack_host.nbytes + int(np.prod(words.shape)) * 4
        micro_rows.append(
            [f"{be.name}/pack", round(t * 1e3, 3), round(pack_bytes / t / 1e9, 2), 0.0]
        )

        trans_in = be.asarray(trans_host)
        t = _best_time(lambda: planar_to_kmajor(trans_in, backend=be), be)
        micro_rows.append(
            [
                f"{be.name}/transpose",
                round(t * 1e3, 3),
                round(2 * trans_host.nbytes / t / 1e9, 2),
                0.0,
            ]
        )

        a_dev, b_dev = be.asarray(a_f16), be.asarray(b_f16)
        t = _best_time(lambda: complex_mma_f16_batched(a_dev, b_dev, backend=be), be)
        flops = 8.0 * bf * mf * nf * kf
        micro_rows.append(
            [f"{be.name}/gemm-f16", round(t * 1e3, 3), 0.0, round(flops / t / 1e9, 2)]
        )

        aw = be.asarray(
            rng.integers(0, 2**32, size=(bi, 2, mi, ki // 32), dtype=np.uint32)
        )
        bw = be.asarray(
            rng.integers(0, 2**32, size=(bi, 2, ni, ki // 32), dtype=np.uint32)
        )
        t = _best_time(lambda: complex_bit_gemm(aw, bw, k_valid=ki, backend=be), be)
        ops = 8.0 * bi * mi * ni * ki
        micro_rows.append(
            [f"{be.name}/gemm-int1", round(t * 1e3, 3), 0.0, round(ops / t / 1e9, 2)]
        )

    sections.append(
        render_table(
            micro_headers,
            micro_rows,
            title="Wall-clock throughput of the vectorized hot paths, per backend",
        )
    )

    # -- vectorized vs scalar packing reference -----------------------------
    np_be = get_backend("numpy")
    scalar_vals = rng.normal(size=_SCALAR_SHAPE).astype(np.float32)
    t_scalar = _best_time(lambda: pack_sign_planar_scalar(scalar_vals), np_be, reps=1)
    t_vec = _best_time(lambda: pack_sign_planar(scalar_vals), np_be)
    speedup = t_scalar / t_vec
    identical = bool(
        np.array_equal(pack_sign_planar_scalar(scalar_vals), pack_sign_planar(scalar_vals))
    )
    speedup_headers = ["path", "time (ms)", "speedup"]
    speedup_rows: list[list[object]] = [
        ["pack scalar (reference)", round(t_scalar * 1e3, 3), 1.0],
        ["pack vectorized", round(t_vec * 1e3, 3), round(speedup, 1)],
    ]
    sections.append(
        render_table(
            speedup_headers,
            speedup_rows,
            title=f"1-bit packing: scalar reference vs vectorized, shape {_SCALAR_SHAPE}",
        )
    )
    verdict = "PASS" if speedup >= MIN_PACK_SPEEDUP else "FAIL"
    findings.append(
        f"vectorized pack kernel is {speedup:.0f}x faster than the scalar "
        f"per-word reference (pinned floor {MIN_PACK_SPEEDUP:.0f}x: {verdict}) "
        f"with bit-identical output ({'yes' if identical else 'NO'})"
    )

    # -- detected backends ---------------------------------------------------
    avail_headers = ["backend", "version", "device"]
    avail_rows: list[list[object]] = [
        [name, version, get_backend(name).device_kind]
        for name, version in backend_versions().items()
    ]
    sections.append(
        render_table(avail_headers, avail_rows, title="Detected array backends")
    )
    findings.append(
        f"{len(avail_rows)} array backend(s) detected: "
        + ", ".join(str(r[0]) for r in avail_rows)
    )

    tables = {
        "micro": (micro_headers, micro_rows),
        "speedup": (speedup_headers, speedup_rows),
        "backends": (avail_headers, avail_rows),
    }
    return ExperimentResult(
        name="backend-micro",
        title="Array-backend micro-benchmarks: vectorized hot-path wall-clock throughput",
        text="\n".join(sections),
        tables=tables,
        findings=findings,
    )
