"""Analytical performance model of the ccglib matrix-multiply kernels.

This is the documented substitution for timing real kernels on real GPUs
(DESIGN.md §2). One kernel execution is modelled as the maximum of three
resource bounds plus launch overhead::

    t = max(t_math, t_dram, t_smem) + t_launch

* ``t_math`` — tensor-core issue time: padded instruction ops over the
  device's sustained WMMA-reachable peak, divided by efficiency factors for
  wave quantization (partially filled last wave), occupancy-based latency
  hiding, pipeline overlap (:func:`repro.ccglib.pipeline.overlap_factor`),
  K-ramp (pipeline fill/drain, which keeps short-K workloads such as the
  512-receiver LOFAR case of Fig 7 from saturating large GPUs), and a
  per-device calibrated kernel efficiency
  (:attr:`repro.gpusim.specs.GPUSpec.gemm_efficiency`, fitted to Table III).
* ``t_dram`` — global-memory time from a tile-reuse traffic model: blocks
  resident in one wave form an approximately square super-tile whose A/B
  tiles are fetched once per wave (L2 captures intra-wave reuse); outputs
  are written once.
* ``t_smem`` — shared-memory bandwidth: every warp loads its warp-tile
  fragments from shared memory, so small warp tiles cause redundant
  traffic; this is the register-level data-reuse effect of paper §III-C.

Padding to block/fragment tiles inflates the issued ops and produces the
sawtooth of paper Figs 4 and 7. AND-mode 1-bit kernels issue twice the
instructions (paper §III-E, Table III footnote a).

The model also validates configurations (shared-memory capacity, register
budget, thread limits) so the auto-tuner sees the same restriction structure
the real Kernel-Tuner setup does.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.ccglib import pipeline
from repro.ccglib.precision import Precision, PrecisionTraits, complex_ops, tensor_peak_ops, traits
from repro.ccglib.tuning import TuneParams
from repro.errors import KernelConfigError
from repro.gpusim.arch import BitOp, FragmentShape
from repro.gpusim.power import PowerModel
from repro.gpusim.specs import GPUSpec
from repro.gpusim.timing import Bound, KernelCost
from repro.util.validation import ceil_div, round_up

#: extra registers per thread beyond accumulators/fragments (indices, ptrs).
OVERHEAD_REGISTERS = 40

#: exponent of the occupancy latency-hiding factor.
OCCUPANCY_EXPONENT = 0.6


@dataclass(frozen=True)
class GemmProblem:
    """Shape of one batched complex GEMM: C[b] = A[b] (M,K) x B[b] (K,N)."""

    batch: int
    m: int
    n: int
    k: int

    def useful_ops(self) -> float:
        return complex_ops(self.batch, self.m, self.n, self.k)


@dataclass(frozen=True)
class ConfigGeometry:
    """Derived per-configuration resource geometry."""

    warps_per_block: int
    threads_per_block: int
    regs_per_thread: int
    smem_per_block: int
    blocks_per_sm: int


def accumulator_registers(params: TuneParams, warp_size: int) -> int:
    """32-bit accumulator registers per thread: warp tile x complex / warp."""
    return (params.warp_m * params.warp_n * 2) // warp_size


def fragment_registers(params: TuneParams, tr: PrecisionTraits, warp_size: int) -> int:
    """Registers holding the A/B fragments of one K-chunk, per thread."""
    bytes_per_thread = (
        (params.warp_m + params.warp_n) * tr.stage_k * 2 * tr.input_bytes / warp_size
    )
    return max(1, math.ceil(bytes_per_thread / 4.0))


def shared_memory_per_block(params: TuneParams, tr: PrecisionTraits) -> int:
    """Bytes of shared memory: num_buffers stages of (A-tile + B-tile)."""
    stage = (params.block_m + params.block_n) * tr.stage_k * 2 * tr.input_bytes
    return math.ceil(params.num_buffers * stage)


def validate_config(
    spec: GPUSpec, precision: Precision, params: TuneParams, fragment: FragmentShape | None = None
) -> ConfigGeometry:
    """Check a tuning configuration against hardware restrictions.

    Raises :class:`KernelConfigError` describing the violated restriction;
    returns the derived geometry when valid. The auto-tuner uses the
    exception paths to prune the search space.
    """
    tr = traits(precision)
    frag = fragment or tr.default_fragment
    caps = spec.caps
    caps.require_fragment(precision.value, frag) if precision is not Precision.TF32 else None

    if params.block_m % params.warp_m or params.block_n % params.warp_n:
        raise KernelConfigError(f"{params}: block tile not divisible by warp tile")
    if params.warp_m % frag.m or params.warp_n % frag.n:
        raise KernelConfigError(f"{params}: warp tile not a multiple of fragment {frag}")
    if not caps.async_copies and params.num_buffers != 1:
        raise KernelConfigError(
            f"{spec.name}: num_buffers must be 1 (no asynchronous copies on AMD)"
        )

    warps = params.warps_per_block
    threads = warps * caps.warp_size
    if not 1 <= warps <= 16:
        raise KernelConfigError(f"{params}: {warps} warps per block outside [1, 16]")
    if threads > caps.max_threads_per_block:
        raise KernelConfigError(
            f"{params}: {threads} threads exceed the {caps.max_threads_per_block} limit"
        )

    smem = shared_memory_per_block(params, tr)
    if smem > spec.smem_per_sm_bytes:
        raise KernelConfigError(
            f"{params}: {smem} B shared memory exceeds {spec.smem_per_sm_bytes} B"
        )

    regs = (
        accumulator_registers(params, caps.warp_size)
        + fragment_registers(params, tr, caps.warp_size)
        + OVERHEAD_REGISTERS
    )
    if regs > caps.max_registers_per_thread:
        raise KernelConfigError(
            f"{params}: {regs} registers/thread exceed {caps.max_registers_per_thread}"
        )

    blocks_by_smem = spec.smem_per_sm_bytes // smem
    blocks_by_warps = caps.max_warps_per_sm // warps
    blocks_by_regs = caps.registers_per_sm // max(regs * threads, 1)
    blocks_per_sm = min(blocks_by_smem, blocks_by_warps, blocks_by_regs, spec.max_blocks_per_sm)
    if blocks_per_sm < 1:
        raise KernelConfigError(f"{params}: zero resident blocks per SM")

    return ConfigGeometry(
        warps_per_block=warps,
        threads_per_block=threads,
        regs_per_thread=regs,
        smem_per_block=smem,
        blocks_per_sm=blocks_per_sm,
    )


def resolve_bit_op(spec: GPUSpec, precision: Precision, bit_op: BitOp | None) -> BitOp | None:
    """Pick the bit op ccglib would use (paper §III-E auto-switch)."""
    if precision is not Precision.INT1:
        return None
    return bit_op or spec.caps.preferred_bit_op


def model_gemm(
    spec: GPUSpec,
    precision: Precision,
    problem: GemmProblem,
    params: TuneParams,
    bit_op: BitOp | None = None,
    fragment: FragmentShape | None = None,
) -> KernelCost:
    """Predict time/energy of one GEMM kernel launch.

    Returns a :class:`~repro.gpusim.timing.KernelCost` whose ``detail``
    carries every intermediate quantity for reports and tests.
    """
    tr = traits(precision)
    frag = fragment or tr.default_fragment
    geometry = validate_config(spec, precision, params, frag)
    caps = spec.caps
    bit_op = resolve_bit_op(spec, precision, bit_op)

    # --- padded shapes and op counts ------------------------------------
    kc = frag.k if precision is Precision.INT1 else tr.stage_k
    mp = round_up(problem.m, params.block_m)
    np_ = round_up(problem.n, params.block_n)
    kp = round_up(problem.k, kc)
    useful_ops = problem.useful_ops()
    padded_ops = complex_ops(problem.batch, mp, np_, kp)
    instr_factor = 2.0 if (precision is Precision.INT1 and bit_op is BitOp.AND) else 1.0
    issued_ops = padded_ops * instr_factor

    # --- tensor-core issue bound -----------------------------------------
    if precision is Precision.TF32:
        rate = 1.0
        peak_theoretical = tensor_peak_ops(spec, precision)
    else:
        rate = caps.rate_factor(precision.value, frag, bit_op)
        peak_theoretical = tensor_peak_ops(spec, precision)
    peak_instr = (
        peak_theoretical
        * spec.sustained_clock_fraction
        * caps.wmma_interface_factor
        * rate
    )
    t_tc_ideal = issued_ops / peak_instr

    # --- grid geometry ----------------------------------------------------
    nbm, nbn = mp // params.block_m, np_ // params.block_n
    blocks_per_item = nbm * nbn
    total_blocks = problem.batch * blocks_per_item
    wave_size = spec.n_sm * geometry.blocks_per_sm
    waves = ceil_div(total_blocks, wave_size)
    wave_eff = total_blocks / (waves * wave_size)

    # --- efficiency factors ------------------------------------------------
    active_warps = geometry.warps_per_block * geometry.blocks_per_sm
    f_occ = min(1.0, (active_warps / caps.latency_warps) ** OCCUPANCY_EXPONENT)
    f_overlap = pipeline.overlap_factor(caps, precision, params.num_buffers)
    chunks = kp / kc
    f_ramp = chunks / (chunks + spec.ramp_chunks)
    f_kernel = spec.gemm_efficiency.get(
        "float16" if precision is Precision.TF32 else precision.value,
        spec.gemm_efficiency.get("float16", 0.7),
    )
    t_math = t_tc_ideal / (wave_eff * f_occ * f_overlap * f_ramp * f_kernel)

    # --- DRAM traffic -------------------------------------------------------
    if wave_size >= blocks_per_item:
        g_m, g_n = nbm, nbn
    else:
        g_m = min(nbm, max(1, round(math.sqrt(wave_size * nbm / nbn))))
        g_n = min(nbn, max(1, ceil_div(wave_size, g_m)))
    n_rects = total_blocks / (g_m * g_n)
    input_bytes = (
        n_rects
        * (g_m * params.block_m + g_n * params.block_n)
        * kp
        * 2
        * tr.input_bytes
    )
    output_bytes = problem.batch * mp * np_ * 2 * tr.output_bytes
    dram_bytes = input_bytes + output_bytes
    t_dram = dram_bytes / (spec.mem_bandwidth_bytes() * spec.mem_efficiency)

    # --- shared-memory traffic ----------------------------------------------
    frag_reads = (
        kp
        * (
            params.block_m * (params.block_n // params.warp_n)
            + params.block_n * (params.block_m // params.warp_m)
        )
        * 2
        * tr.input_bytes
    )
    stage_writes = kp * (params.block_m + params.block_n) * 2 * tr.input_bytes
    smem_bytes = total_blocks * (frag_reads + stage_writes)
    t_smem = smem_bytes / spec.smem_bandwidth_bytes()

    # --- combine -------------------------------------------------------------
    t_body = max(t_math, t_dram, t_smem)
    time_s = t_body + spec.kernel_launch_overhead_s
    if t_body == t_math:
        bound = Bound.COMPUTE
    elif t_body == t_dram:
        bound = Bound.MEMORY
    else:
        bound = Bound.SHARED

    util_tensor = min(1.0, t_tc_ideal / time_s)
    util_dram = min(1.0, (dram_bytes / time_s) / spec.mem_bandwidth_bytes())
    util_smem = min(1.0, (smem_bytes / time_s) / spec.smem_bandwidth_bytes())
    power = PowerModel(spec).kernel_power(
        precision="int1" if precision is Precision.INT1 else "float16",
        tensor_utilization=util_tensor,
        dram_utilization=util_dram,
        smem_utilization=util_smem,
    )

    return KernelCost(
        name=f"gemm_{precision.value}" + (f"_{bit_op.value}" if bit_op else ""),
        time_s=time_s,
        useful_ops=useful_ops,
        issued_ops=issued_ops,
        dram_bytes=dram_bytes,
        smem_bytes=smem_bytes,
        bound=bound,
        power_w=power.total_w,
        energy_j=power.total_w * time_s,
        detail={
            "t_math": t_math,
            "t_dram": t_dram,
            "t_smem": t_smem,
            "t_tc_ideal": t_tc_ideal,
            "wave_eff": wave_eff,
            "f_occ": f_occ,
            "f_overlap": f_overlap,
            "f_ramp": f_ramp,
            "f_kernel": f_kernel,
            "blocks_per_sm": float(geometry.blocks_per_sm),
            "total_blocks": float(total_blocks),
            "waves": float(waves),
            "padded_m": float(mp),
            "padded_n": float(np_),
            "padded_k": float(kp),
            "util_tensor": util_tensor,
            "util_dram": util_dram,
            "util_smem": util_smem,
            "regs_per_thread": float(geometry.regs_per_thread),
            "smem_per_block": float(geometry.smem_per_block),
        },
    )


def theoretical_min_bytes(precision: Precision, problem: GemmProblem) -> float:
    """Theoretical DRAM traffic: read A and B once, write C once.

    Used by the roofline analysis (paper §IV-B computes arithmetic intensity
    from "the theoretical amount of bytes transferred to and from device
    memory").
    """
    tr = traits(precision)
    a = problem.batch * problem.m * problem.k * 2 * tr.input_bytes
    b = problem.batch * problem.k * problem.n * 2 * tr.input_bytes
    c = problem.batch * problem.m * problem.n * 2 * tr.output_bytes
    return a + b + c
