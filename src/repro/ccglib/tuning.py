"""Kernel tuning parameters: the search space and the shipped defaults.

The GEMM kernels are "adaptive in the amount of work per thread block and
warp" (paper §III-C); optimal values per GPU were found by auto-tuning
(§IV-A) and are listed in paper Table III. "While a default set of
parameters is shipped with ccglib, a GPU-specific optimization is best" —
we ship exactly the Table III parameters as defaults and let
:mod:`repro.kerneltuner` re-derive per-device optima against the simulated
hardware.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterator

from repro.ccglib.precision import Precision
from repro.gpusim.specs import GPUSpec
from repro.util.validation import round_up


@dataclass(frozen=True, order=True)
class TuneParams:
    """One point in the kernel tuning space.

    ``block_m``/``block_n``: output tile computed by one thread block (the
    paper's "M per block" / "N per block"); ``warp_m``/``warp_n``: sub-tile
    computed by one warp; ``num_buffers``: shared-memory pipeline depth.
    """

    block_m: int
    block_n: int
    warp_m: int
    warp_n: int
    num_buffers: int

    @property
    def warps_per_block(self) -> int:
        return (self.block_m // self.warp_m) * (self.block_n // self.warp_n)

    def __str__(self) -> str:
        return (
            f"bM{self.block_m}/wM{self.warp_m}/bN{self.block_n}/"
            f"wN{self.warp_n}/buf{self.num_buffers}"
        )


@dataclass(frozen=True)
class PublishedTuning:
    """A paper Table III row: tuned parameters plus the published metrics."""

    gpu: str
    precision: Precision
    params: TuneParams
    tops: float
    tops_per_joule: float


#: Paper Table III: "Matrix-matrix multiplication kernel performance, energy
#: efficiency, and optimal tuning parameter values."
TABLE_III: tuple[PublishedTuning, ...] = (
    PublishedTuning("AD4000", Precision.FLOAT16, TuneParams(256, 32, 32, 32, 2), 93.0, 0.7),
    PublishedTuning("A100", Precision.FLOAT16, TuneParams(256, 32, 64, 32, 2), 173.0, 0.8),
    PublishedTuning("GH200", Precision.FLOAT16, TuneParams(128, 64, 64, 32, 2), 335.0, 0.8),
    PublishedTuning("W7700", Precision.FLOAT16, TuneParams(256, 64, 128, 16, 1), 45.0, 0.3),
    PublishedTuning("MI210", Precision.FLOAT16, TuneParams(128, 64, 64, 32, 1), 147.0, 1.3),
    PublishedTuning("MI300X", Precision.FLOAT16, TuneParams(128, 128, 64, 32, 1), 603.0, 0.9),
    PublishedTuning("MI300A", Precision.FLOAT16, TuneParams(128, 128, 64, 32, 1), 518.0, 0.8),
    PublishedTuning("AD4000", Precision.INT1, TuneParams(256, 32, 128, 16, 2), 1400.0, 10.7),
    PublishedTuning("A100", Precision.INT1, TuneParams(128, 64, 32, 64, 4), 3080.0, 12.3),
    PublishedTuning("GH200", Precision.INT1, TuneParams(64, 128, 64, 32, 2), 3780.0, 6.0),
)


def published_tuning(gpu: str, precision: Precision) -> PublishedTuning | None:
    """Table III row for a device/precision, or None (e.g. int1 on AMD)."""
    for row in TABLE_III:
        if row.gpu.lower() == gpu.lower() and row.precision is precision:
            return row
    return None


#: Candidate values mirroring the ranges the paper's tuning explored.
BLOCK_M_VALUES: tuple[int, ...] = (32, 64, 128, 256)
BLOCK_N_VALUES: tuple[int, ...] = (32, 64, 128, 256)
WARP_M_VALUES: tuple[int, ...] = (16, 32, 64, 128)
WARP_N_VALUES: tuple[int, ...] = (16, 32, 64, 128)
NUM_BUFFER_VALUES: tuple[int, ...] = (1, 2, 4)


def raw_search_space(spec: GPUSpec) -> Iterator[TuneParams]:
    """Unfiltered cartesian tuning space (restrictions applied by caller).

    AMD devices only see ``num_buffers == 1`` (no async copies, §III-C).
    """
    buffer_values = NUM_BUFFER_VALUES if spec.caps.async_copies else (1,)
    for bm in BLOCK_M_VALUES:
        for bn in BLOCK_N_VALUES:
            for wm in WARP_M_VALUES:
                for wn in WARP_N_VALUES:
                    if bm % wm or bn % wn:
                        continue
                    for nb in buffer_values:
                        yield TuneParams(bm, bn, wm, wn, nb)


def default_params(spec: GPUSpec, precision: Precision) -> TuneParams:
    """Shipped default parameters for a device/precision.

    Table III values when available; otherwise a conservative generic
    configuration (the "default set of parameters shipped with ccglib").
    """
    row = published_tuning(spec.name, precision)
    if row is not None:
        return row.params
    nb = 2 if spec.caps.async_copies else 1
    return TuneParams(128, 64, 64, 32, nb)


def select_params(
    spec: GPUSpec, precision: Precision, m: int, n: int, params: TuneParams | None = None
) -> TuneParams:
    """Runtime parameter selection for a concrete problem shape.

    ccglib compiles kernels at run time "with knowledge of both the type of
    GPU used, and of all input parameters" (§III). When the problem is
    smaller than the default block tile, shrinking the tile avoids gross
    padding waste: a 16-beam problem should not run 256-row blocks.
    """
    p = params or default_params(spec, precision)
    bm, bn, wm, wn = p.block_m, p.block_n, p.warp_m, p.warp_n
    while bm // 2 >= round_up(m, wm) and bm // 2 >= wm:
        bm //= 2
    while bn // 2 >= round_up(n, wn) and bn // 2 >= wn:
        bn //= 2
    return TuneParams(bm, bn, wm, wn, p.num_buffers)
