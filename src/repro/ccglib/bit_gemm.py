"""1-bit complex matrix multiplication in the packed domain.

Implements the arithmetic of paper §III-D and §III-E:

* values are ±1, encoded as binary 1 -> +1 / 0 -> -1 (Fig. 1); zero is not
  representable;
* a real-valued ±1 dot product of length K is ``K - 2 * popc(A ^ B)``
  (Eq. 4, worked example in Table II);
* a complex product needs 2K terms per component. The imaginary part of B
  is negated for the real-part accumulation — for ±1 values negation is a
  bitwise NOT, the 1-bit analogue of the float16 register negation;
* K is padded to the tensor-core fragment size with binary 0 (= -1). The
  padding self-cancels in the real part but adds ``Kpad * (-1) * (-1)``
  twice in the imaginary part, which must be subtracted (Eq. 5);
* on Hopper the XOR multiply op is software-emulated and slow, so the AND
  formulation ``2*(popc(A&B) + popc(~A&~B)) - K`` (Eq. 6) is used, costing
  twice the instructions but running ~4x faster than emulated XOR.

Operand convention: packed planar matrices ``A``: (..., 2, M, W) and
``B``: (..., 2, N, W) uint32 words, W = Kfull/32, K packed along the last
axis, with identical (possibly empty) leading batch dims. Note B rows are
indexed by N here (both operands are "K-major"): the transpose kernel
produces this layout from a (2, K, N) host matrix. All arithmetic is exact
integer work, so it runs unchanged — and bit-identically — on every
:class:`~repro.backend.ArrayBackend`; the blocked accumulation builds each
N-chunk functionally (no in-place slice writes) so immutable-array
backends such as JAX work too.
"""

from __future__ import annotations

import numpy as np

from repro.backend import ArrayBackend, get_backend
from repro.ccglib.layouts import IMAG, REAL
from repro.errors import ShapeError
from repro.gpusim.arch import BitOp
from repro.util.bits import PACK_WORD_BITS, bits_to_sign, popcount, unpack_bits

#: default N-chunk size for the blocked popcount accumulation; bounds the
#: (M, chunk, W) temporary to keep functional runs inside a laptop's RAM.
DEFAULT_N_BLOCK = 128


def _validate_packed(a_words, b_words) -> tuple[int, int, int]:
    if a_words.ndim < 3 or a_words.shape[-3] != 2:
        raise ShapeError(f"packed A must be (..., 2, M, W), got {a_words.shape}")
    if b_words.ndim < 3 or b_words.shape[-3] != 2:
        raise ShapeError(f"packed B must be (..., 2, N, W), got {b_words.shape}")
    if np.dtype(a_words.dtype) != np.uint32 or np.dtype(b_words.dtype) != np.uint32:
        raise ShapeError("packed operands must be uint32")
    if a_words.shape[-1] != b_words.shape[-1]:
        raise ShapeError(
            f"packed word-count mismatch: A has W={a_words.shape[-1]}, B has W={b_words.shape[-1]}"
        )
    if a_words.shape[:-3] != b_words.shape[:-3]:
        raise ShapeError(
            f"batch mismatch: A has leading dims {a_words.shape[:-3]}, "
            f"B has {b_words.shape[:-3]}"
        )
    return a_words.shape[-2], b_words.shape[-2], a_words.shape[-1]


def _popc_gemm(a, b, op: BitOp, n_block: int, be: ArrayBackend):
    """sum_w popc(a[..., m, w] OP b[..., n, w]) for all (m, n), blocked over n.

    Chunks are accumulated into a list and concatenated once — equivalent to
    the historical preallocate-and-slice-assign formulation on NumPy, and
    the only formulation possible on immutable-array backends.
    """
    xp = be.xp
    n = b.shape[-2]
    chunks = []
    for n0 in range(0, n, n_block):
        chunk = b[..., n0 : n0 + n_block, :]
        if op is BitOp.XOR:
            mixed = a[..., :, None, :] ^ chunk[..., None, :, :]
        else:
            mixed = a[..., :, None, :] & chunk[..., None, :, :]
        chunks.append(be.popcount(mixed).sum(axis=-1))
    if len(chunks) == 1:
        return chunks[0]
    return xp.concatenate(chunks, axis=-1)


def complex_bit_gemm(
    a_words,
    b_words,
    k_valid: int,
    bit_op: BitOp = BitOp.XOR,
    n_block: int = DEFAULT_N_BLOCK,
    backend: ArrayBackend | None = None,
):
    """Complex 1-bit GEMM on packed operands.

    Parameters
    ----------
    a_words, b_words:
        Packed planar operands (..., 2, M, W) and (..., 2, N, W) with
        matching leading batch dims; padding bits (if any) must be binary 0
        (decimal -1).
    k_valid:
        The true K before padding; ``Kpad = 32*W - k_valid`` drives the
        imaginary-part correction of Eq. 5.
    bit_op:
        ``BitOp.XOR`` uses Eq. 5 directly; ``BitOp.AND`` uses the Hopper
        formulation of Eq. 6 (two AND-popc passes emulating each XOR-popc).
    backend:
        Optional :class:`~repro.backend.ArrayBackend`; default NumPy.

    Returns
    -------
    (..., 2, M, N) int32 planar result, exact over the valid K region.
    """
    be = get_backend(backend)
    xp = be.xp
    a_words = be.asarray(a_words)
    b_words = be.asarray(b_words)
    _validate_packed(a_words, b_words)
    w = a_words.shape[-1]
    k_full = w * PACK_WORD_BITS
    if not 0 < k_valid <= k_full:
        raise ShapeError(f"k_valid {k_valid} outside (0, {k_full}]")
    k_pad = k_full - k_valid

    a_re, a_im = a_words[..., REAL, :, :], a_words[..., IMAG, :, :]
    b_re, b_im = b_words[..., REAL, :, :], b_words[..., IMAG, :, :]
    # Register-level negation of Im(B): bitwise NOT flips every ±1 sign,
    # including the padded region (pad bit 0 = -1 becomes +1 there, which is
    # exactly what makes the real-part padding self-cancel).
    b_im_neg = ~b_im

    if bit_op is BitOp.XOR:
        p_rr = _popc_gemm(a_re, b_re, BitOp.XOR, n_block, be)
        p_ii = _popc_gemm(a_im, b_im_neg, BitOp.XOR, n_block, be)
        p_ri = _popc_gemm(a_re, b_im, BitOp.XOR, n_block, be)
        p_ir = _popc_gemm(a_im, b_re, BitOp.XOR, n_block, be)
    elif bit_op is BitOp.AND:
        # Eq. 6: popc(A^B) == K - (popc(A&B) + popc(~A&~B)); substitute into
        # the XOR-based expressions below. Issued as two AND-MMAs per term.
        p_rr = k_full - _and_same_count(a_re, b_re, n_block, be)
        p_ii = k_full - _and_same_count(a_im, b_im_neg, n_block, be)
        p_ri = k_full - _and_same_count(a_re, b_im, n_block, be)
        p_ir = k_full - _and_same_count(a_im, b_re, n_block, be)
    else:  # pragma: no cover - enum is exhaustive
        raise ShapeError(f"unknown bit op {bit_op}")

    # Eq. 5 of the paper (with p_ii computed against the negated Im(B)):
    real = 2 * (k_full - (p_rr + p_ii))
    imag = 2 * (k_full - k_pad - (p_ri + p_ir))
    return xp.stack([real, imag], axis=-3).astype(xp.int32)


def _and_same_count(a, b, n_block: int, be: ArrayBackend):
    """Count of equal bit positions via two AND-popc passes (Eq. 6)."""
    return _popc_gemm(a, b, BitOp.AND, n_block, be) + _popc_gemm(~a, ~b, BitOp.AND, n_block, be)


def real_bit_dot(a_words: np.ndarray, b_words: np.ndarray, k: int) -> int:
    """Real-valued ±1 dot product, Eq. 4: ``K - 2*popc(A ^ B)``.

    This is the Table II primitive; ``k`` is the valid length (padding, if
    present, must be accounted for by the caller).
    """
    a_words = np.atleast_1d(np.asarray(a_words, dtype=np.uint32))
    b_words = np.atleast_1d(np.asarray(b_words, dtype=np.uint32))
    p = int(popcount(a_words ^ b_words).sum())
    return k - 2 * p


def real_bit_dot_and(a_words: np.ndarray, b_words: np.ndarray, k: int) -> int:
    """Real-valued ±1 dot product with AND ops, Eq. 6:
    ``2*(popc(A & B) + popc(~A & ~B)) - K``."""
    a_words = np.atleast_1d(np.asarray(a_words, dtype=np.uint32))
    b_words = np.atleast_1d(np.asarray(b_words, dtype=np.uint32))
    same = int(popcount(a_words & b_words).sum()) + int(popcount(~a_words & ~b_words).sum())
    return 2 * same - k


def bit_gemm_reference(a_bits: np.ndarray, b_bits: np.ndarray) -> np.ndarray:
    """Unpacked ±1 complex reference GEMM for validation.

    ``a_bits``: (2, M, K) and ``b_bits``: (2, N, K) arrays of {0, 1}.
    Returns the exact (2, M, N) int64 planar complex product of the ±1
    interpretations. This is the ground truth the packed kernels must match
    on the valid K region. Deliberately NumPy-only: every backend's packed
    kernel is checked against this single host-side oracle.
    """
    a_sign = np.asarray(bits_to_sign(a_bits, dtype=np.int64))
    b_sign = np.asarray(bits_to_sign(b_bits, dtype=np.int64))
    a_re, a_im = a_sign[REAL], a_sign[IMAG]
    b_re, b_im = b_sign[REAL], b_sign[IMAG]
    real = a_re @ b_re.T - a_im @ b_im.T
    imag = a_re @ b_im.T + a_im @ b_re.T
    return np.stack([real, imag])


def unpack_planar(words, k_valid: int, backend: ArrayBackend | None = None):
    """Unpack a planar packed matrix (..., 2, R, W) to bits (..., 2, R, k_valid)."""
    return unpack_bits(words, axis=-1, count=k_valid, backend=backend)
