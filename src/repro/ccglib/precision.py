"""Input/output precisions supported by the ccglib GEMM kernels.

The paper's library supports 16-bit float and 1-bit integer input
(§III), with float32 / int32 accumulation respectively (Table I column 1).
TensorFloat-32 is mentioned as an experimental feature (§VI); we expose it
behind an ``experimental`` flag with throughput derived from the float16
peak (half rate on NVIDIA tensor cores, supported on AMD from CDNA3).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.errors import UnsupportedPrecisionError
from repro.gpusim.arch import (
    Architecture,
    FRAG_FLOAT16_16x16x16,
    FRAG_INT1_8x8x128,
    FRAG_INT1_16x8x256,
    FragmentShape,
)
from repro.gpusim.specs import GPUSpec


class Precision(enum.Enum):
    """Matrix-value precision of the GEMM inputs."""

    FLOAT16 = "float16"
    INT1 = "int1"
    TF32 = "tf32"  # experimental (paper §VI)

    @property
    def is_experimental(self) -> bool:
        return self is Precision.TF32


@dataclass(frozen=True)
class PrecisionTraits:
    """Static properties of a precision as the kernels see it."""

    precision: Precision
    #: bytes per real-valued input element (0.125 for packed 1-bit).
    input_bytes: float
    #: NumPy dtype of input storage (packed words for int1).
    input_dtype: np.dtype
    #: NumPy dtype of the accumulator / output.
    output_dtype: np.dtype
    #: bytes per real-valued output element.
    output_bytes: int
    #: fragment layouts from fastest to slowest preference.
    fragments: tuple[FragmentShape, ...]
    #: K-granularity of one shared-memory pipeline stage.
    stage_k: int

    @property
    def default_fragment(self) -> FragmentShape:
        return self.fragments[0]


_TRAITS: dict[Precision, PrecisionTraits] = {
    Precision.FLOAT16: PrecisionTraits(
        precision=Precision.FLOAT16,
        input_bytes=2.0,
        input_dtype=np.dtype(np.float16),
        output_dtype=np.dtype(np.float32),
        output_bytes=4,
        fragments=(FRAG_FLOAT16_16x16x16,),
        stage_k=FRAG_FLOAT16_16x16x16.k,
    ),
    Precision.INT1: PrecisionTraits(
        precision=Precision.INT1,
        input_bytes=1.0 / 8.0,
        input_dtype=np.dtype(np.uint32),
        output_dtype=np.dtype(np.int32),
        output_bytes=4,
        # 16x8x256 is never slower than 8x8x128 (paper §III-A: "there seems
        # to be no reason to use the small layout"), so it is the default.
        fragments=(FRAG_INT1_16x8x256, FRAG_INT1_8x8x128),
        stage_k=FRAG_INT1_16x8x256.k,
    ),
    Precision.TF32: PrecisionTraits(
        precision=Precision.TF32,
        input_bytes=4.0,
        input_dtype=np.dtype(np.float32),
        output_dtype=np.dtype(np.float32),
        output_bytes=4,
        fragments=(FragmentShape(16, 16, 8),),
        stage_k=8,
    ),
}


def traits(precision: Precision) -> PrecisionTraits:
    """Look up the static traits of a precision."""
    return _TRAITS[precision]


@dataclass(frozen=True)
class ParityTolerance:
    """Allowed deviation from the NumPy reference for one precision.

    Different array backends may fuse, reorder, or widen the float
    arithmetic differently (e.g. JAX's XLA emits FMA contractions; CuPy
    dispatches to cuBLAS), so cross-backend comparisons use per-precision
    relative/absolute tolerances instead of bit equality. int1 is exact
    integer arithmetic — every conformant backend must match it bit-for-bit.
    """

    rtol: float
    atol: float

    @property
    def exact(self) -> bool:
        return self.rtol == 0.0 and self.atol == 0.0


#: Cross-backend parity tolerances per precision, used by
#: :mod:`repro.backend.validate` and the parity test-suite.
PARITY_TOLERANCES: dict[Precision, ParityTolerance] = {
    # float16 multiplicands, float32 accumulation: one reassociated sum over
    # K can differ by a few ULP per term.
    Precision.FLOAT16: ParityTolerance(rtol=1e-3, atol=1e-3),
    # 10-bit mantissa inputs; accumulation in float32.
    Precision.TF32: ParityTolerance(rtol=1e-3, atol=1e-3),
    # Exact ±1 integer arithmetic: no deviation is ever legitimate.
    Precision.INT1: ParityTolerance(rtol=0.0, atol=0.0),
}


def parity_tolerance(precision: Precision) -> ParityTolerance:
    """Cross-backend comparison tolerance for a precision."""
    return PARITY_TOLERANCES[precision]


def tensor_peak_ops(spec: GPUSpec, precision: Precision) -> float:
    """Theoretical tensor peak for a precision on a device, ops/s.

    float16 and int1 come straight from the calibrated catalog (paper
    Table I). TF32 is experimental: NVIDIA runs it at half the float16
    rate; AMD supports it from CDNA3 on (paper §VI) at half rate as well.
    """
    if precision is Precision.FLOAT16:
        return spec.theoretical_peak_ops("float16")
    if precision is Precision.INT1:
        return spec.theoretical_peak_ops("int1")
    if precision is Precision.TF32:
        if spec.arch.vendor.value == "nvidia" or spec.arch is Architecture.CDNA3:
            return spec.theoretical_peak_ops("float16") / 2.0
        raise UnsupportedPrecisionError(f"{spec.name}: tensorfloat32 requires NVIDIA or AMD CDNA3+")
    raise UnsupportedPrecisionError(str(precision))


def require_supported(spec: GPUSpec, precision: Precision, experimental_ok: bool = False) -> None:
    """Validate that a device supports a precision.

    Raises :class:`UnsupportedPrecisionError` for int1 on AMD (paper §II)
    and for experimental precisions unless explicitly enabled.
    """
    if precision.is_experimental and not experimental_ok:
        raise UnsupportedPrecisionError(
            f"{precision.value} is experimental; pass experimental_ok=True to enable"
        )
    if precision is Precision.INT1:
        spec.caps.require_precision("int1")
    elif precision is Precision.FLOAT16:
        spec.caps.require_precision("float16")
    elif precision is Precision.TF32:
        tensor_peak_ops(spec, precision)  # raises if unsupported


def complex_ops(batch: int, m: int, n: int, k: int) -> float:
    """Useful operations of a batched complex GEMM: ``8 * M * N * K`` per
    batch item (paper §IV-A: four real FMAs per complex multiply, two ops
    per FMA)."""
    return 8.0 * batch * m * n * k
