"""Complex matrix multiplication on real-valued tensor-core MMAs.

Tensor cores only execute real-valued matrix products and only provide
accumulation (no subtraction). The paper (§III-B) therefore decomposes one
complex GEMM into four real MMAs plus a register-level negation of the
imaginary part of B::

    1) Re(C) += Re(A) Re(B)
    2) Im(C) += Re(A) Im(B)
    3) Im(B)  = -Im(B)          (in registers; global data untouched)
    4) Re(C) += Im(A) Im(B)     (now the negated copy)
    5) Im(C) += Im(A) Re(B)

This module implements that exact 5-step schedule functionally (on the
fragment model of :mod:`repro.gpusim.tensorcore`) so tests can verify it
against a straightforward complex reference, including the float16
quantization the hardware applies to the inputs.
"""

from __future__ import annotations

import numpy as np

from repro.ccglib.layouts import IMAG, REAL
from repro.errors import ShapeError
from repro.gpusim.tensorcore import mma_f16, mma_tf32, quantize_f16, quantize_tf32


def complex_mma_f16(
    a_planar: np.ndarray,
    b_planar: np.ndarray,
    c_planar: np.ndarray | None = None,
) -> np.ndarray:
    """One complex tile product via the paper's 5-step decomposition.

    ``a_planar``: (2, m, k) float-like; ``b_planar``: (2, k, n);
    ``c_planar``: optional (2, m, n) float32 accumulator. Returns the
    accumulated (2, m, n) float32 planar result.

    The negation of Im(B) happens on the float16-quantized register copy,
    exactly like the kernel does — float16 negation is exact, so steps 3+4
    equal a true subtraction of ``Im(A) Im(B)``.
    """
    if a_planar.ndim != 3 or a_planar.shape[0] != 2:
        raise ShapeError(f"a_planar must be (2, m, k), got {a_planar.shape}")
    if b_planar.ndim != 3 or b_planar.shape[0] != 2:
        raise ShapeError(f"b_planar must be (2, k, n), got {b_planar.shape}")
    a_re = quantize_f16(a_planar[REAL])
    a_im = quantize_f16(a_planar[IMAG])
    b_re = quantize_f16(b_planar[REAL])
    b_im = quantize_f16(b_planar[IMAG])

    m, n = a_re.shape[0], b_re.shape[1]
    if c_planar is None:
        c_re = np.zeros((m, n), dtype=np.float32)
        c_im = np.zeros((m, n), dtype=np.float32)
    else:
        if c_planar.shape != (2, m, n):
            raise ShapeError(f"c_planar must be (2, {m}, {n}), got {c_planar.shape}")
        c_re = c_planar[REAL].astype(np.float32)
        c_im = c_planar[IMAG].astype(np.float32)

    c_re = mma_f16(a_re, b_re, c_re)        # step 1
    c_im = mma_f16(a_re, b_im, c_im)        # step 2
    b_im_neg = -b_im                        # step 3 (registers only)
    c_re = mma_f16(a_im, b_im_neg, c_re)    # step 4
    c_im = mma_f16(a_im, b_re, c_im)        # step 5
    return np.stack([c_re, c_im])


def complex_mma_f16_naive(
    a_planar: np.ndarray,
    b_planar: np.ndarray,
) -> np.ndarray:
    """Baseline decomposition without the register negation trick.

    Computes the four partial products into *separate* accumulators and
    combines them afterwards with a subtraction on the regular cores. This
    needs the same four MMAs but an extra full-size combine pass (2*m*n
    reads + m*n subtract/add), which is what the in-register negation
    avoids. Kept as an ablation baseline (DESIGN.md §5.1).
    """
    a_re = quantize_f16(a_planar[REAL])
    a_im = quantize_f16(a_planar[IMAG])
    b_re = quantize_f16(b_planar[REAL])
    b_im = quantize_f16(b_planar[IMAG])
    rr = mma_f16(a_re, b_re)
    ii = mma_f16(a_im, b_im)
    ri = mma_f16(a_re, b_im)
    ir = mma_f16(a_im, b_re)
    return np.stack([rr - ii, ri + ir])


def reference_complex_gemm(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Full-precision complex reference for accuracy checks (complex128)."""
    return np.asarray(a, dtype=np.complex128) @ np.asarray(b, dtype=np.complex128)


def complex_mma_tf32(
    a_planar: np.ndarray,
    b_planar: np.ndarray,
    c_planar: np.ndarray | None = None,
) -> np.ndarray:
    """The 5-step schedule with TensorFloat-32 fragments (experimental §VI).

    Same structure as :func:`complex_mma_f16`; the inputs keep float32
    range with 10-bit mantissas.
    """
    if a_planar.ndim != 3 or a_planar.shape[0] != 2:
        raise ShapeError(f"a_planar must be (2, m, k), got {a_planar.shape}")
    if b_planar.ndim != 3 or b_planar.shape[0] != 2:
        raise ShapeError(f"b_planar must be (2, k, n), got {b_planar.shape}")
    a_re, a_im = quantize_tf32(a_planar[REAL]), quantize_tf32(a_planar[IMAG])
    b_re, b_im = quantize_tf32(b_planar[REAL]), quantize_tf32(b_planar[IMAG])
    m, n = a_re.shape[0], b_re.shape[1]
    if c_planar is None:
        c_re = np.zeros((m, n), dtype=np.float32)
        c_im = np.zeros((m, n), dtype=np.float32)
    else:
        c_re = c_planar[REAL].astype(np.float32)
        c_im = c_planar[IMAG].astype(np.float32)
    c_re = mma_tf32(a_re, b_re, c_re)
    c_im = mma_tf32(a_re, b_im, c_im)
    c_re = mma_tf32(a_im, -b_im, c_re)
    c_im = mma_tf32(a_im, b_re, c_im)
    return np.stack([c_re, c_im])
