"""Complex matrix multiplication on real-valued tensor-core MMAs.

Tensor cores only execute real-valued matrix products and only provide
accumulation (no subtraction). The paper (§III-B) therefore decomposes one
complex GEMM into four real MMAs plus a register-level negation of the
imaginary part of B::

    1) Re(C) += Re(A) Re(B)
    2) Im(C) += Re(A) Im(B)
    3) Im(B)  = -Im(B)          (in registers; global data untouched)
    4) Re(C) += Im(A) Im(B)     (now the negated copy)
    5) Im(C) += Im(A) Re(B)

This module implements that exact 5-step schedule functionally (on the
fragment model of :mod:`repro.gpusim.tensorcore`) so tests can verify it
against a straightforward complex reference, including the float16
quantization the hardware applies to the inputs.

Two tiers of entry point exist:

* the single-tile functions (:func:`complex_mma_f16`,
  :func:`complex_mma_tf32`) — NumPy-only, one (2, m, k) tile at a time,
  mirroring one warp's fragment schedule;
* the batched functions (:func:`complex_mma_f16_batched`,
  :func:`complex_mma_tf32_batched`) — the production hot path: one fused
  batched ``matmul`` per schedule step over (..., 2, m, k) operands, on
  any :class:`~repro.backend.ArrayBackend`. On NumPy a batched ``matmul``
  is bit-identical to the per-item loop (verified; ``einsum`` is *not*,
  which is why the schedule uses ``matmul`` exclusively), so replacing
  the loop changes no golden output.
"""

from __future__ import annotations

import numpy as np

from repro.backend import ArrayBackend, get_backend
from repro.ccglib.layouts import IMAG, REAL
from repro.errors import ShapeError
from repro.gpusim.tensorcore import mma_f16, mma_tf32, quantize_f16, quantize_tf32


def complex_mma_f16(
    a_planar: np.ndarray,
    b_planar: np.ndarray,
    c_planar: np.ndarray | None = None,
) -> np.ndarray:
    """One complex tile product via the paper's 5-step decomposition.

    ``a_planar``: (2, m, k) float-like; ``b_planar``: (2, k, n);
    ``c_planar``: optional (2, m, n) float32 accumulator. Returns the
    accumulated (2, m, n) float32 planar result.

    The negation of Im(B) happens on the float16-quantized register copy,
    exactly like the kernel does — float16 negation is exact, so steps 3+4
    equal a true subtraction of ``Im(A) Im(B)``.
    """
    if a_planar.ndim != 3 or a_planar.shape[0] != 2:
        raise ShapeError(f"a_planar must be (2, m, k), got {a_planar.shape}")
    if b_planar.ndim != 3 or b_planar.shape[0] != 2:
        raise ShapeError(f"b_planar must be (2, k, n), got {b_planar.shape}")
    a_re = quantize_f16(a_planar[REAL])
    a_im = quantize_f16(a_planar[IMAG])
    b_re = quantize_f16(b_planar[REAL])
    b_im = quantize_f16(b_planar[IMAG])

    m, n = a_re.shape[0], b_re.shape[1]
    if c_planar is None:
        c_re = np.zeros((m, n), dtype=np.float32)
        c_im = np.zeros((m, n), dtype=np.float32)
    else:
        if c_planar.shape != (2, m, n):
            raise ShapeError(f"c_planar must be (2, {m}, {n}), got {c_planar.shape}")
        c_re = c_planar[REAL].astype(np.float32)
        c_im = c_planar[IMAG].astype(np.float32)

    c_re = mma_f16(a_re, b_re, c_re)        # step 1
    c_im = mma_f16(a_re, b_im, c_im)        # step 2
    b_im_neg = -b_im                        # step 3 (registers only)
    c_re = mma_f16(a_im, b_im_neg, c_re)    # step 4
    c_im = mma_f16(a_im, b_re, c_im)        # step 5
    return np.stack([c_re, c_im])


def complex_mma_f16_naive(
    a_planar: np.ndarray,
    b_planar: np.ndarray,
) -> np.ndarray:
    """Baseline decomposition without the register negation trick.

    Computes the four partial products into *separate* accumulators and
    combines them afterwards with a subtraction on the regular cores. This
    needs the same four MMAs but an extra full-size combine pass (2*m*n
    reads + m*n subtract/add), which is what the in-register negation
    avoids. Kept as an ablation baseline (DESIGN.md §5.1).
    """
    a_re = quantize_f16(a_planar[REAL])
    a_im = quantize_f16(a_planar[IMAG])
    b_re = quantize_f16(b_planar[REAL])
    b_im = quantize_f16(b_planar[IMAG])
    rr = mma_f16(a_re, b_re)
    ii = mma_f16(a_im, b_im)
    ri = mma_f16(a_re, b_im)
    ir = mma_f16(a_im, b_re)
    return np.stack([rr - ii, ri + ir])


def reference_complex_gemm(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Full-precision complex reference for accuracy checks (complex128)."""
    return np.asarray(a, dtype=np.complex128) @ np.asarray(b, dtype=np.complex128)


def complex_mma_tf32(
    a_planar: np.ndarray,
    b_planar: np.ndarray,
    c_planar: np.ndarray | None = None,
) -> np.ndarray:
    """The 5-step schedule with TensorFloat-32 fragments (experimental §VI).

    Same structure as :func:`complex_mma_f16`; the inputs keep float32
    range with 10-bit mantissas.
    """
    if a_planar.ndim != 3 or a_planar.shape[0] != 2:
        raise ShapeError(f"a_planar must be (2, m, k), got {a_planar.shape}")
    if b_planar.ndim != 3 or b_planar.shape[0] != 2:
        raise ShapeError(f"b_planar must be (2, k, n), got {b_planar.shape}")
    a_re, a_im = quantize_tf32(a_planar[REAL]), quantize_tf32(a_planar[IMAG])
    b_re, b_im = quantize_tf32(b_planar[REAL]), quantize_tf32(b_planar[IMAG])
    m, n = a_re.shape[0], b_re.shape[1]
    if c_planar is None:
        c_re = np.zeros((m, n), dtype=np.float32)
        c_im = np.zeros((m, n), dtype=np.float32)
    else:
        c_re = c_planar[REAL].astype(np.float32)
        c_im = c_planar[IMAG].astype(np.float32)
    c_re = mma_tf32(a_re, b_re, c_re)
    c_im = mma_tf32(a_re, b_im, c_im)
    c_re = mma_tf32(a_im, -b_im, c_re)
    c_im = mma_tf32(a_im, b_re, c_im)
    return np.stack([c_re, c_im])


def _validate_batched_planar(a_planar, b_planar) -> None:
    if a_planar.ndim < 3 or a_planar.shape[-3] != 2:
        raise ShapeError(f"a_planar must be (..., 2, m, k), got {a_planar.shape}")
    if b_planar.ndim < 3 or b_planar.shape[-3] != 2:
        raise ShapeError(f"b_planar must be (..., 2, k, n), got {b_planar.shape}")
    if a_planar.shape[:-3] != b_planar.shape[:-3]:
        raise ShapeError(
            f"batch mismatch: A has leading dims {a_planar.shape[:-3]}, "
            f"B has {b_planar.shape[:-3]}"
        )
    if a_planar.shape[-1] != b_planar.shape[-2]:
        raise ShapeError(f"K mismatch: A has K={a_planar.shape[-1]}, B has K={b_planar.shape[-2]}")


def _mma_step(a_quant, b_quant, c, be: ArrayBackend):
    """One schedule step: float32 accumulate of a quantized batched product."""
    xp = be.xp
    prod = be.matmul(a_quant.astype(xp.float32), b_quant.astype(xp.float32))
    return c + prod


def quantize_tf32_backend(values, backend: ArrayBackend | None = None):
    """Backend-generic TensorFloat-32 quantization (round to 10 mantissa bits).

    Same arithmetic as :func:`repro.gpusim.tensorcore.quantize_tf32` —
    round-to-nearest of the low 13 mantissa bits via the IEEE-754 encoding —
    expressed through the backend's :meth:`~repro.backend.ArrayBackend.bitcast`
    instead of a NumPy ``view`` so it runs on immutable/device arrays too.
    """
    be = get_backend(backend)
    xp = be.xp
    v = be.astype(be.asarray(values), xp.float32)
    bits = be.bitcast(v, xp.uint32)
    rounded = (bits + xp.uint32(0x1000)) & xp.uint32(0xFFFFE000)
    return be.bitcast(rounded, xp.float32)


def complex_mma_f16_batched(
    a_planar,
    b_planar,
    c_planar=None,
    backend: ArrayBackend | None = None,
):
    """Batched 5-step complex MMA: (..., 2, m, k) x (..., 2, k, n) -> (..., 2, m, n).

    Executes the identical schedule as :func:`complex_mma_f16` — quantize to
    float16, four float32-accumulated products with the Im(B) register
    negation — but with each step a single batched ``matmul`` over all
    leading dims, which is the vectorized hot path of the float16 GEMM.
    """
    be = get_backend(backend)
    xp = be.xp
    a_planar = be.asarray(a_planar)
    b_planar = be.asarray(b_planar)
    _validate_batched_planar(a_planar, b_planar)
    a_re = be.astype(a_planar[..., REAL, :, :], xp.float16)
    a_im = be.astype(a_planar[..., IMAG, :, :], xp.float16)
    b_re = be.astype(b_planar[..., REAL, :, :], xp.float16)
    b_im = be.astype(b_planar[..., IMAG, :, :], xp.float16)

    m, n = a_re.shape[-2], b_re.shape[-1]
    out_shape = a_re.shape[:-2] + (m, n)
    if c_planar is None:
        c_re = xp.zeros(out_shape, dtype=xp.float32)
        c_im = xp.zeros(out_shape, dtype=xp.float32)
    else:
        c_planar = be.asarray(c_planar)
        if c_planar.shape != a_re.shape[:-2] + (2, m, n):
            raise ShapeError(
                f"c_planar must be {a_re.shape[:-2] + (2, m, n)}, got {c_planar.shape}"
            )
        c_re = be.astype(c_planar[..., REAL, :, :], xp.float32)
        c_im = be.astype(c_planar[..., IMAG, :, :], xp.float32)

    c_re = _mma_step(a_re, b_re, c_re, be)      # step 1
    c_im = _mma_step(a_re, b_im, c_im, be)      # step 2
    b_im_neg = -b_im                            # step 3 (registers only)
    c_re = _mma_step(a_im, b_im_neg, c_re, be)  # step 4
    c_im = _mma_step(a_im, b_re, c_im, be)      # step 5
    return xp.stack([c_re, c_im], axis=-3)


def complex_mma_tf32_batched(
    a_planar,
    b_planar,
    c_planar=None,
    backend: ArrayBackend | None = None,
):
    """Batched 5-step schedule with TensorFloat-32 fragments (experimental §VI)."""
    be = get_backend(backend)
    xp = be.xp
    a_planar = be.asarray(a_planar)
    b_planar = be.asarray(b_planar)
    _validate_batched_planar(a_planar, b_planar)
    a_re = quantize_tf32_backend(a_planar[..., REAL, :, :], backend=be)
    a_im = quantize_tf32_backend(a_planar[..., IMAG, :, :], backend=be)
    b_re = quantize_tf32_backend(b_planar[..., REAL, :, :], backend=be)
    b_im = quantize_tf32_backend(b_planar[..., IMAG, :, :], backend=be)

    m, n = a_re.shape[-2], b_re.shape[-1]
    out_shape = a_re.shape[:-2] + (m, n)
    if c_planar is None:
        c_re = xp.zeros(out_shape, dtype=xp.float32)
        c_im = xp.zeros(out_shape, dtype=xp.float32)
    else:
        c_planar = be.asarray(c_planar)
        c_re = be.astype(c_planar[..., REAL, :, :], xp.float32)
        c_im = be.astype(c_planar[..., IMAG, :, :], xp.float32)

    # TF32 multiplicands are rounded copies; products accumulate in float32.
    c_re = _mma_step(a_re, b_re, c_re, be)
    c_im = _mma_step(a_re, b_im, c_im, be)
    c_re = _mma_step(a_im, -b_im, c_re, be)
    c_im = _mma_step(a_im, b_re, c_im, be)
    return xp.stack([c_re, c_im], axis=-3)
