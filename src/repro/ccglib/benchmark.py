"""Built-in benchmark tools of the ccglib reproduction.

"We take the best parameters from Table III, and use the built-in benchmark
tools of ccglib to measure performance and energy efficiency across a range
of matrix sizes" (paper §IV-C). These helpers sweep the analytical kernel
model over matrix-size grids and return flat records that the Fig 4
harness renders.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Sequence

from repro.ccglib.perfmodel import GemmProblem, model_gemm
from repro.ccglib.precision import Precision
from repro.ccglib.tuning import TuneParams, default_params
from repro.gpusim.arch import BitOp
from repro.gpusim.specs import GPUSpec
from repro.gpusim.timing import KernelCost
from repro.util.units import tera


@dataclass(frozen=True)
class BenchmarkPoint:
    """One measured point of a size sweep."""

    gpu: str
    precision: Precision
    batch: int
    m: int
    n: int
    k: int
    tops: float
    tops_per_joule: float
    time_s: float
    bound: str

    @classmethod
    def from_cost(
        cls, spec: GPUSpec, precision: Precision, problem: GemmProblem, cost: KernelCost
    ) -> "BenchmarkPoint":
        return cls(
            gpu=spec.name,
            precision=precision,
            batch=problem.batch,
            m=problem.m,
            n=problem.n,
            k=problem.k,
            tops=cost.ops_per_second / tera,
            tops_per_joule=cost.ops_per_joule / tera,
            time_s=cost.time_s,
            bound=cost.bound.value,
        )


def measure(
    spec: GPUSpec,
    precision: Precision,
    problem: GemmProblem,
    params: TuneParams | None = None,
    bit_op: BitOp | None = None,
) -> BenchmarkPoint:
    """Single-point benchmark with the shipped (or given) parameters."""
    params = params or default_params(spec, precision)
    cost = model_gemm(spec, precision, problem, params, bit_op=bit_op)
    return BenchmarkPoint.from_cost(spec, precision, problem, cost)


def sweep_cubic(
    spec: GPUSpec,
    precision: Precision,
    sizes: Sequence[int],
    params: TuneParams | None = None,
) -> list[BenchmarkPoint]:
    """Sweep M = N = K over ``sizes`` (paper Fig 4a: "Matrix size (all axes)")."""
    return [measure(spec, precision, GemmProblem(batch=1, m=s, n=s, k=s), params) for s in sizes]


def sweep_mn(
    spec: GPUSpec,
    precision: Precision,
    sizes: Sequence[int],
    k: int,
    params: TuneParams | None = None,
) -> list[BenchmarkPoint]:
    """Sweep M = N with fixed K (paper Fig 4b left: "Matrix size (M, N)")."""
    return [measure(spec, precision, GemmProblem(batch=1, m=s, n=s, k=k), params) for s in sizes]


def sweep_k(
    spec: GPUSpec,
    precision: Precision,
    ks: Sequence[int],
    m: int,
    n: int,
    params: TuneParams | None = None,
) -> list[BenchmarkPoint]:
    """Sweep K with fixed M, N (paper Fig 4b right: "Matrix size (K)")."""
    return [measure(spec, precision, GemmProblem(batch=1, m=m, n=n, k=k), params) for k in ks]


def size_grid(lo: int, hi: int, step: int, include_offsets: Iterable[int] = (0,)) -> list[int]:
    """Build a size grid with optional off-tile offsets to expose the
    padding sawtooth of Fig 4 (sizes that are not tile multiples pay for
    padded work)."""
    sizes: set[int] = set()
    for base in range(lo, hi + 1, step):
        for off in include_offsets:
            s = base + off
            if lo <= s <= hi:
                sizes.add(s)
    return sorted(sizes)
