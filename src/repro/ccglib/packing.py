"""Packing/unpacking kernels for the 1-bit data path.

"For 1-bit precision, the input data must be packed, i.e. 32 consecutive
1-bit samples must be stored in a single 32-bit integer. Packing and
unpacking kernels are provided to handle this. [They] are relatively
straightforward, and [...] bound by memory bandwidth as they only move data
around." (paper §III)

The functional implementation quantizes to the sign bit and packs along the
K axis; the cost model charges the kernel at the device's achievable memory
bandwidth, reading the full-precision input and writing the 32x smaller
packed output. Two functional implementations exist:

* :func:`pack_sign_planar` — the production path: fully vectorized
  (batched packbits on NumPy, shift-and-or word combine elsewhere), runs
  on any :class:`~repro.backend.ArrayBackend`;
* :func:`pack_sign_planar_scalar` — a deliberately scalar Python loop
  mirroring the per-thread CUDA packing kernel one word at a time. It is
  the readable specification of the bit layout and the baseline the
  ``backend-micro`` bench pins the vectorized path's speedup against.
"""

from __future__ import annotations

import enum

import numpy as np

from repro.backend import ArrayBackend, get_backend
from repro.errors import ShapeError
from repro.gpusim.device import Device
from repro.gpusim.timing import Bound, KernelCost
from repro.util.bits import (
    PACK_WORD_BITS,
    pack_bits,
    pad_to_words,
    sign_to_bits,
    unpack_bits,
)
from repro.util.validation import round_up


class PackDirection(enum.Enum):
    """Mirror of ccglib's packing API: forward packs, backward unpacks."""

    PACK = "pack"
    UNPACK = "unpack"


def _pad_k(bits, k_pad_to, xp):
    """Pad the last (K) axis with binary 0 (decimal -1) up to ``k_pad_to``."""
    if k_pad_to is not None:
        k = bits.shape[-1]
        if k_pad_to < k:
            raise ShapeError(f"k_pad_to {k_pad_to} smaller than K {k}")
        pad = [(0, 0)] * (bits.ndim - 1) + [(0, k_pad_to - k)]
        bits = xp.pad(bits, pad, constant_values=0)
    return bits


def pack_sign_planar(values_planar, k_pad_to: int | None = None, backend: ArrayBackend | None = None):
    """Quantize a planar real array to sign bits and pack the last axis.

    ``values_planar``: (..., K) real values; the sign is kept (>= 0 -> +1).
    ``k_pad_to`` optionally pads K up to a tensor-core fragment multiple
    *before* packing; padding bits are binary 0 (decimal -1) per §III-D.
    Output: (..., W) uint32 with ``W = padded_K / 32``.

    Fully vectorized on every backend; the NumPy path is bit-identical to
    the scalar reference :func:`pack_sign_planar_scalar`.
    """
    be = get_backend(backend)
    values_planar = be.asarray(values_planar)
    bits = sign_to_bits(values_planar, backend=be)
    bits = _pad_k(bits, k_pad_to, be.xp)
    bits = pad_to_words(bits, axis=-1, pad_bit=0, backend=be)
    return pack_bits(bits, axis=-1, backend=be)


def pack_sign_planar_scalar(
    values_planar: np.ndarray, k_pad_to: int | None = None
) -> np.ndarray:
    """Scalar reference for :func:`pack_sign_planar` (NumPy only).

    One Python iteration per output word, one shift-and-or per sample —
    a direct transliteration of the per-thread CUDA packing kernel, where
    each thread reads 32 consecutive samples and ballots them into one
    ``uint32``. Bit-for-bit identical to the vectorized path; kept as the
    executable specification of the bit layout (sample ``i`` -> bit
    ``31 - (i % 32)``) and as the baseline the ``backend-micro`` bench
    measures the vectorized speedup against. Never use it for real data.
    """
    values_planar = np.asarray(values_planar)
    bits = np.asarray(sign_to_bits(values_planar))
    bits = _pad_k(bits, k_pad_to, np)
    bits = np.asarray(pad_to_words(bits, axis=-1, pad_bit=0))
    rows = bits.reshape(-1, bits.shape[-1])
    n_words = bits.shape[-1] // PACK_WORD_BITS
    out = np.empty((rows.shape[0], n_words), dtype=np.uint32)
    for r in range(rows.shape[0]):
        for w in range(n_words):
            word = 0
            for i in range(PACK_WORD_BITS):
                word |= int(rows[r, w * PACK_WORD_BITS + i]) << (PACK_WORD_BITS - 1 - i)
            out[r, w] = word
    return out.reshape(bits.shape[:-1] + (n_words,))


def unpack_sign_planar(words, k_valid: int, backend: ArrayBackend | None = None):
    """Unpack packed sign words back to ±1 int8 values (inverse transport)."""
    be = get_backend(backend)
    bits = unpack_bits(words, axis=-1, count=k_valid, backend=be)
    return (bits.astype(be.xp.int8) * 2 - 1).astype(be.xp.int8)


def packing_cost(
    device: Device,
    n_values: int,
    input_bytes_per_value: float,
    direction: PackDirection = PackDirection.PACK,
) -> KernelCost:
    """Analytic cost of a packing/unpacking kernel launch.

    Pure data movement: reads ``n_values`` at the input element size and
    writes one bit per value (or vice versa for unpacking). Runs at the
    device's achievable DRAM bandwidth (paper: "bound by memory bandwidth").
    """
    spec = device.spec
    full_bytes = n_values * input_bytes_per_value
    packed_bytes = round_up(int(n_values), PACK_WORD_BITS) / 8.0
    dram_bytes = full_bytes + packed_bytes
    bw = spec.mem_bandwidth_bytes() * spec.mem_efficiency
    time_s = dram_bytes / bw + spec.kernel_launch_overhead_s
    power = device.power.kernel_power(
        precision=None,
        tensor_utilization=0.0,
        dram_utilization=min(1.0, (dram_bytes / max(time_s, 1e-12)) / spec.mem_bandwidth_bytes()),
        smem_utilization=0.0,
    )
    return KernelCost(
        name=f"{direction.value}_bits",
        time_s=time_s,
        useful_ops=float(n_values),
        issued_ops=float(n_values),
        dram_bytes=dram_bytes,
        smem_bytes=0.0,
        bound=Bound.MEMORY,
        power_w=power.total_w,
        energy_j=power.total_w * time_s,
        detail={"n_values": float(n_values)},
    )


def run_pack_kernel(
    device: Device,
    values_planar,
    n_values: int,
    input_bytes_per_value: float,
    k_pad_to: int | None = None,
    backend: ArrayBackend | None = None,
):
    """Execute the packing kernel on a device (functional or dry-run).

    Returns ``(packed_words_or_None, cost)`` and records the launch on the
    device timeline. Passing ``values_planar=None`` records the cost only
    (used when a higher-level functional path performs the quantization
    itself).
    """
    cost = packing_cost(device, n_values, input_bytes_per_value, PackDirection.PACK)
    device.record_kernel(cost)
    if device.is_functional and values_planar is not None:
        return pack_sign_planar(values_planar, k_pad_to=k_pad_to, backend=backend), cost
    return None, cost
