"""Public complex-GEMM API of the ccglib reproduction.

Usage mirrors the real library: the user creates a :class:`Gemm` plan for a
device, telling it only the shapes and precision; tensor-core details
(fragment layouts, bit ops, tuning parameters, padding) are chosen
internally ("The use of the tensor cores ... is hidden from the user. The
user only has to provide the input and output matrices and tell ccglib what
shapes and types the matrices have", paper §III). Plans are specialized at
creation time for the device and problem shape, the moral equivalent of
ccglib's runtime kernel compilation.

Plans optionally bind an :class:`~repro.backend.ArrayBackend`; the default
is the NumPy reference and is bit-identical to the historical per-item
implementation. The functional paths are fully batched — one fused
pack/transpose/GEMM pipeline over the whole batch instead of a Python loop
per item — which is what lets a CuPy or JAX backend run them efficiently.

>>> from repro.gpusim import Device
>>> from repro.ccglib import Gemm, Precision
>>> import numpy as np
>>> rng = np.random.default_rng(0)
>>> a = (rng.normal(size=(1, 8, 16)) + 1j * rng.normal(size=(1, 8, 16))).astype(np.complex64)
>>> b = (rng.normal(size=(1, 16, 4)) + 1j * rng.normal(size=(1, 16, 4))).astype(np.complex64)
>>> gemm = Gemm(Device("A100"), Precision.FLOAT16, batch=1, m=8, n=4, k=16)
>>> result = gemm.run(a, b)
>>> np.allclose(result.output, a @ b, atol=0.2)
True
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.backend import ArrayBackend, get_backend
from repro.ccglib.bit_gemm import complex_bit_gemm
from repro.ccglib.complex_mma import complex_mma_f16_batched, complex_mma_tf32_batched
from repro.ccglib.layouts import (
    IMAG,
    REAL,
    ComplexLayout,
    ensure_batched,
    to_planar,
    validate_planar_pair,
)
from repro.ccglib.packing import pack_sign_planar
from repro.ccglib.perfmodel import GemmProblem, model_gemm, resolve_bit_op, validate_config
from repro.ccglib.precision import Precision, require_supported, traits
from repro.ccglib.transpose import planar_to_kmajor
from repro.ccglib.tuning import TuneParams, select_params
from repro.errors import ShapeError
from repro.gpusim.arch import BitOp, FragmentShape
from repro.gpusim.device import Device
from repro.gpusim.timing import KernelCost
from repro.util.validation import require_positive_int, round_up


@dataclass
class GemmResult:
    """Outcome of one planned GEMM execution.

    ``output`` is a complex64 array (batch, M, N) in functional mode (for
    int1 precision the values are exact small integers stored as complex)
    and ``None`` in dry-run mode; on a non-NumPy backend it stays a device
    array of that backend (convert with ``backend.to_numpy``). ``cost`` is
    always populated.
    """

    output: Any | None
    cost: KernelCost


class Gemm:
    """A complex matrix-multiply plan bound to a device.

    Parameters
    ----------
    device:
        Simulated GPU to run on.
    precision:
        :class:`~repro.ccglib.precision.Precision` of the matrix values.
    batch, m, n, k:
        Problem shape: ``batch`` independent products of (M,K) x (K,N)
        matrices ("It is also possible to execute several matrix-matrix
        multiplications at once through a batch size option", §III).
    params:
        Optional tuning override; defaults to the shipped (Table III)
        parameters adapted to the problem shape.
    bit_op:
        1-bit multiply op override; by default XOR, or AND on Hopper-class
        devices where XOR is software-emulated (§III-E).
    backend:
        Array-execution backend for the functional path (name, instance, or
        ``None`` for the NumPy reference).
    """

    def __init__(
        self,
        device: Device,
        precision: Precision,
        batch: int,
        m: int,
        n: int,
        k: int,
        *,
        params: TuneParams | None = None,
        bit_op: BitOp | None = None,
        fragment: FragmentShape | None = None,
        experimental_ok: bool = False,
        backend: ArrayBackend | str | None = None,
    ):
        require_positive_int(batch, "batch")
        require_positive_int(m, "m")
        require_positive_int(n, "n")
        require_positive_int(k, "k")
        require_supported(device.spec, precision, experimental_ok=experimental_ok)
        self.device = device
        self.precision = precision
        self.backend = get_backend(backend)
        self.problem = GemmProblem(batch=batch, m=m, n=n, k=k)
        self.params = select_params(device.spec, precision, m, n, params)
        self.fragment = fragment or traits(precision).default_fragment
        self.bit_op = resolve_bit_op(device.spec, precision, bit_op)
        # Fail fast on invalid configurations at plan time, like a runtime
        # compilation failure would.
        validate_config(device.spec, precision, self.params, self.fragment)

    # -- introspection -------------------------------------------------------

    @property
    def padded_k(self) -> int:
        """K after padding to the fragment granularity."""
        return round_up(self.problem.k, self.fragment.k)

    def predict_cost(self) -> KernelCost:
        """Cost-model prediction without executing anything."""
        return model_gemm(
            self.device.spec,
            self.precision,
            self.problem,
            self.params,
            bit_op=self.bit_op,
            fragment=self.fragment,
        )

    # -- execution -------------------------------------------------------------

    def run(self, a: Any | None = None, b: Any | None = None) -> GemmResult:
        """Execute the plan.

        Functional devices require interleaved complex operands ``a`` of
        shape (batch, M, K) (or (M, K) for batch=1) and ``b`` of shape
        (batch, K, N); dry-run devices ignore the operands and return the
        predicted cost only. The launch is recorded on the device timeline
        either way.
        """
        cost = self.predict_cost()
        self.device.record_kernel(cost)
        if not self.device.is_functional:
            return GemmResult(output=None, cost=cost)
        if a is None or b is None:
            raise ShapeError("functional execution requires both operands")
        a_planar, b_planar = self._prepare_operands(a, b)
        if self.precision is Precision.INT1:
            output = self._run_int1(a_planar, b_planar)
        else:
            output = self._run_float(a_planar, b_planar)
        return GemmResult(output=output, cost=cost)

    # -- internals ----------------------------------------------------------

    def _prepare_operands(self, a: Any, b: Any) -> tuple[Any, Any]:
        be = self.backend
        a = be.asarray(a)
        b = be.asarray(b)
        if not _is_complex_dtype(a) or not _is_complex_dtype(b):
            raise ShapeError("operands must be complex arrays (interleaved layout)")
        a, _ = ensure_batched(a, 3, backend=be)
        b, _ = ensure_batched(b, 3, backend=be)
        a_planar = to_planar(a, backend=be)
        b_planar = to_planar(b, backend=be)
        batch, m, n, k = validate_planar_pair(a_planar, b_planar)
        expected = (self.problem.batch, self.problem.m, self.problem.n, self.problem.k)
        if (batch, m, n, k) != expected:
            raise ShapeError(
                f"operand shapes (batch={batch}, M={m}, N={n}, K={k}) do not match "
                f"the plan (batch={expected[0]}, M={expected[1]}, N={expected[2]}, "
                f"K={expected[3]})"
            )
        return a_planar, b_planar

    def _run_float(self, a_planar: Any, b_planar: Any) -> Any:
        """float16 (and experimental tf32) functional path.

        One batched 5-step complex MMA over all batch items; on NumPy this
        is bit-identical to the historical per-item loop (batched ``matmul``
        matches looped 2D ``matmul`` exactly).
        """
        be = self.backend
        mma = complex_mma_tf32_batched if self.precision is Precision.TF32 else complex_mma_f16_batched
        planar = mma(a_planar, b_planar, backend=be)
        out = planar[..., REAL, :, :] + 1j * planar[..., IMAG, :, :]
        return be.astype(out, be.xp.complex64)

    def _run_int1(self, a_planar: Any, b_planar: Any) -> Any:
        """1-bit functional path: sign-quantize, pack, binary GEMM (Eq. 5/6).

        Exact integer arithmetic throughout, so batching the packed GEMM over
        all items is trivially bit-identical to the historical loop.
        """
        be = self.backend
        xp = be.xp
        k_pad_to = self.padded_k
        a_words = pack_sign_planar(a_planar, k_pad_to=k_pad_to, backend=be)
        b_kmajor = planar_to_kmajor(b_planar, backend=be)
        b_words = pack_sign_planar(b_kmajor, k_pad_to=k_pad_to, backend=be)
        planar = complex_bit_gemm(
            a_words,
            b_words,
            k_valid=self.problem.k,
            bit_op=self.bit_op or BitOp.XOR,
            backend=be,
        )
        out = planar[..., REAL, :, :].astype(xp.float32) + 1j * planar[..., IMAG, :, :].astype(
            xp.float32
        )
        return be.astype(out, xp.complex64)


def _is_complex_dtype(array: Any) -> bool:
    """Complex-dtype test that never copies the array off its device."""
    return np.issubdtype(np.dtype(array.dtype), np.complexfloating)


def gemm_once(
    device: Device,
    precision: Precision,
    a: Any,
    b: Any,
    *,
    backend: ArrayBackend | str | None = None,
    **kwargs,
) -> GemmResult:
    """One-shot convenience wrapper: plan from operand shapes and run."""
    be = get_backend(backend)
    a_arr, _ = ensure_batched(be.asarray(a), 3, backend=be)
    b_arr, _ = ensure_batched(be.asarray(b), 3, backend=be)
    batch, m, k = a_arr.shape
    n = b_arr.shape[2]
    plan = Gemm(device, precision, batch=batch, m=m, n=n, k=k, backend=be, **kwargs)
    return plan.run(a_arr, b_arr)
