"""Transpose/tiling kernel: host layout -> device GEMM layout.

"The matrix-matrix multiplication kernel requires that the input matrices
are tiled in device memory. This can be handled by ccglib through a
transpose kernel." (paper §III). The kernel also performs the planar
separation of complex components the MMA kernels expect (§VI), and — for
the B operand — the K-major reordering that turns a (K, N) matrix into
rows of N with K contiguous, so 1-bit packing can run along K.

The functional implementation is a pure reindexing (strided views:
reshape + swapaxes/moveaxis + pad, materialized contiguously once at the
end); the cost model charges one read + one write of the matrix at DRAM
bandwidth (the paper: transpose is "bound by memory bandwidth"). All
entry points accept an optional :class:`~repro.backend.ArrayBackend` and
run in its namespace; the NumPy default is bit-identical to the
pre-backend implementation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.backend import ArrayBackend, get_backend
from repro.errors import ShapeError
from repro.gpusim.device import Device
from repro.gpusim.timing import Bound, KernelCost
from repro.util.validation import ceil_div, round_up


def _ascontiguous(array, xp):
    """Materialize a strided view contiguously (no-op where unsupported)."""
    if hasattr(xp, "ascontiguousarray"):
        return xp.ascontiguousarray(array)
    return array


@dataclass(frozen=True)
class TiledMatrix:
    """A matrix reorganized into block tiles for the MMA kernel.

    ``tiles`` has shape (2, r_tiles, c_tiles, tile_r, tile_c): planar
    complex, tile-row-major. ``rows``/``cols`` keep the valid (unpadded)
    extent so results can be cropped after the GEMM.
    """

    tiles: np.ndarray
    rows: int
    cols: int
    tile_r: int
    tile_c: int

    @property
    def padded_rows(self) -> int:
        return self.tiles.shape[1] * self.tile_r

    @property
    def padded_cols(self) -> int:
        return self.tiles.shape[2] * self.tile_c


def tile_planar(
    planar,
    tile_r: int,
    tile_c: int,
    pad_value: float = 0.0,
    backend: ArrayBackend | None = None,
) -> TiledMatrix:
    """Tile a planar (2, R, C) matrix into (2, rt, ct, tile_r, tile_c).

    Rows/cols are padded up to tile multiples with ``pad_value`` (zero for
    float16 — tensor cores can represent it; the 1-bit path pads *bits*
    separately because zero is unrepresentable there).
    """
    be = get_backend(backend)
    xp = be.xp
    planar = be.asarray(planar)
    if planar.ndim != 3 or planar.shape[0] != 2:
        raise ShapeError(f"expected planar (2, R, C), got {planar.shape}")
    _, r, c = planar.shape
    rp, cp = round_up(r, tile_r), round_up(c, tile_c)
    if (rp, cp) != (r, c):
        planar = xp.pad(planar, ((0, 0), (0, rp - r), (0, cp - c)), constant_values=pad_value)
    tiles = planar.reshape(2, rp // tile_r, tile_r, cp // tile_c, tile_c)
    tiles = tiles.transpose(0, 1, 3, 2, 4)
    return TiledMatrix(
        tiles=_ascontiguous(tiles, xp), rows=r, cols=c, tile_r=tile_r, tile_c=tile_c
    )


def untile_planar(tiled: TiledMatrix, backend: ArrayBackend | None = None):
    """Exact inverse of :func:`tile_planar`, cropped to the valid extent."""
    be = get_backend(backend)
    xp = be.xp
    t = be.asarray(tiled.tiles)
    _, rt, ct, tr, tc = t.shape
    planar = t.transpose(0, 1, 3, 2, 4).reshape(2, rt * tr, ct * tc)
    return _ascontiguous(planar[:, : tiled.rows, : tiled.cols], xp)


def planar_to_kmajor(planar_kn, backend: ArrayBackend | None = None):
    """Reorder a planar B operand (..., 2, K, N) into K-major rows (..., 2, N, K).

    The GEMM and the 1-bit packing both consume B with K contiguous per
    output column; this is the "transpose" half of ccglib's transpose
    kernel (the tiling half is :func:`tile_planar`). Accepts one matrix
    ``(2, K, N)`` or a batch ``(batch, 2, K, N)`` — the reorder is a
    strided view (``swapaxes``) over the last two axes either way,
    materialized contiguously once.
    """
    be = get_backend(backend)
    xp = be.xp
    planar_kn = be.asarray(planar_kn)
    if planar_kn.ndim < 3 or planar_kn.shape[-3] != 2:
        raise ShapeError(f"expected planar (..., 2, K, N), got {planar_kn.shape}")
    return _ascontiguous(xp.swapaxes(planar_kn, -1, -2), xp)


def transpose_cost(device: Device, n_values: int, bytes_per_value: float) -> KernelCost:
    """Analytic cost of a transpose/tiling kernel: read + write at DRAM BW."""
    spec = device.spec
    dram_bytes = 2.0 * n_values * bytes_per_value
    bw = spec.mem_bandwidth_bytes() * spec.mem_efficiency
    time_s = dram_bytes / bw + spec.kernel_launch_overhead_s
    power = device.power.kernel_power(
        precision=None,
        tensor_utilization=0.0,
        dram_utilization=min(1.0, (dram_bytes / max(time_s, 1e-12)) / spec.mem_bandwidth_bytes()),
        smem_utilization=0.15,
    )
    return KernelCost(
        name="transpose",
        time_s=time_s,
        useful_ops=float(n_values),
        issued_ops=float(n_values),
        dram_bytes=dram_bytes,
        smem_bytes=float(n_values) * bytes_per_value,
        bound=Bound.MEMORY,
        power_w=power.total_w,
        energy_j=power.total_w * time_s,
        detail={"n_values": float(n_values)},
    )


def run_transpose_kernel(
    device: Device,
    planar_kn,
    n_values: int,
    bytes_per_value: float,
    backend: ArrayBackend | None = None,
):
    """Execute the B-operand transpose on a device; records the launch.

    Passing ``planar_kn=None`` records the launch cost without producing
    output (cost-only accounting, used when a higher-level functional path
    performs the data movement itself); with values it also returns the
    transposed array on functional devices.
    """
    cost = transpose_cost(device, n_values, bytes_per_value)
    device.record_kernel(cost)
    if device.is_functional and planar_kn is not None:
        return planar_to_kmajor(planar_kn, backend=backend), cost
    return None, cost


def count_tiles(rows: int, cols: int, tile_r: int, tile_c: int) -> tuple[int, int]:
    """Tile-grid dimensions for a padded matrix."""
    return ceil_div(rows, tile_r), ceil_div(cols, tile_c)
