"""Multi-stage shared-memory pipeline model (paper §III-C).

On NVIDIA Ampere and later, ccglib overlaps tensor-core computation with
asynchronous global->shared copies through a multi-stage buffer: "While data
is being copied to one buffer, another buffer can be copied to the register
file and used for computations." The number of buffers is a tuning
parameter; it is "automatically set to one on AMD GPUs, which do not support
these asynchronous copies" — AMD instead hides latency through wavefront
occupancy.

Two artifacts live here:

* :func:`overlap_factor` — the analytic overlap efficiency used by the
  kernel performance model. float16 stages are kilobytes-large, so two
  stages cover DRAM latency and deeper pipelines only add shared-memory
  pressure and synchronization cost; int1 stages are tiny (a 128+64-tile
  stage is ~12 KiB even at K-chunk 256), so deeper pipelines keep winning —
  this is why Table III tunes A100 int1 to 4 buffers but all float16
  kernels to 2.
* :class:`MultiStageBuffer` — a functional model of the producer/consumer
  stage cycling with the CUDA-pipeline commit/wait semantics, used by tests
  to verify that no stage is read before it is written and that exactly
  ``num_buffers`` stages are ever in flight.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ccglib.precision import Precision
from repro.errors import KernelConfigError
from repro.gpusim.arch import ArchCapabilities

#: overlap efficiency by (precision family, num_buffers) on NVIDIA.
_NVIDIA_OVERLAP: dict[Precision, dict[int, float]] = {
    Precision.FLOAT16: {1: 0.70, 2: 0.93, 3: 0.92, 4: 0.90},
    Precision.TF32: {1: 0.70, 2: 0.93, 3: 0.92, 4: 0.90},
    Precision.INT1: {1: 0.65, 2: 0.90, 3: 0.92, 4: 0.93},
}

#: AMD: no async copies; overlap comes from occupancy (modelled separately
#: by the occupancy factor), leaving a constant issue-efficiency here.
_AMD_OVERLAP = 0.92


def overlap_factor(caps: ArchCapabilities, precision: Precision, num_buffers: int) -> float:
    """Fraction of ideal MMA issue rate achieved by the copy/compute overlap."""
    if num_buffers < 1:
        raise KernelConfigError(f"num_buffers must be >= 1, got {num_buffers}")
    if not caps.async_copies:
        if num_buffers != 1:
            raise KernelConfigError(
                f"{caps.arch.value}: multi-stage buffers require asynchronous "
                "copies; num_buffers is fixed to 1 on AMD GPUs"
            )
        return _AMD_OVERLAP
    table = _NVIDIA_OVERLAP[precision]
    return table[min(num_buffers, max(table))]


@dataclass
class _Stage:
    """One shared-memory stage of the pipeline."""

    chunk_id: int | None = None
    committed: bool = False


@dataclass
class MultiStageBuffer:
    """Functional model of the CUDA pipeline primitives over N stages.

    The producer calls :meth:`producer_acquire`/:meth:`producer_commit` to
    fill stages in order; the consumer calls :meth:`consumer_wait`/
    :meth:`consumer_release`. Raises :class:`KernelConfigError` on protocol
    violations (reading uncommitted data, overrunning the stage ring).
    """

    num_buffers: int
    _stages: list[_Stage] = field(default_factory=list)
    _head: int = 0  # next stage to fill
    _tail: int = 0  # next stage to consume
    _in_flight: int = 0

    def __post_init__(self) -> None:
        if self.num_buffers < 1:
            raise KernelConfigError("pipeline needs at least one stage")
        self._stages = [_Stage() for _ in range(self.num_buffers)]

    def producer_acquire(self, chunk_id: int) -> int:
        """Claim the next stage for an async copy of ``chunk_id``."""
        if self._in_flight >= self.num_buffers:
            raise KernelConfigError(f"pipeline overrun: {self._in_flight} stages already in flight")
        idx = self._head
        stage = self._stages[idx]
        stage.chunk_id = chunk_id
        stage.committed = False
        self._head = (self._head + 1) % self.num_buffers
        self._in_flight += 1
        return idx

    def producer_commit(self, idx: int) -> None:
        """Mark the async copy into stage ``idx`` complete."""
        self._stages[idx].committed = True

    def consumer_wait(self) -> int:
        """Block until the oldest stage is committed; return its chunk id."""
        stage = self._stages[self._tail]
        if self._in_flight == 0:
            raise KernelConfigError("consumer_wait with empty pipeline")
        if not stage.committed:
            raise KernelConfigError(f"stage {self._tail} read before its copy was committed")
        assert stage.chunk_id is not None
        return stage.chunk_id

    def consumer_release(self) -> None:
        """Free the oldest stage for reuse by the producer."""
        if self._in_flight == 0:
            raise KernelConfigError("consumer_release with empty pipeline")
        self._stages[self._tail] = _Stage()
        self._tail = (self._tail + 1) % self.num_buffers
        self._in_flight -= 1

    @property
    def stages_in_flight(self) -> int:
        return self._in_flight


def run_pipelined_chunks(num_buffers: int, chunk_ids: list[int]) -> list[int]:
    """Drive a :class:`MultiStageBuffer` over a chunk sequence.

    Software-pipelines like the kernel does: prefetch up to ``num_buffers``
    chunks, then steady-state consume-one/prefetch-one. Returns the chunk
    ids in consumption order (must equal the input order — a test invariant).
    """
    pipe = MultiStageBuffer(num_buffers)
    consumed: list[int] = []
    produce_iter = iter(chunk_ids)
    # Prefetch phase.
    prefetched = []
    for _ in range(min(num_buffers, len(chunk_ids))):
        cid = next(produce_iter)
        prefetched.append(pipe.producer_acquire(cid))
    for idx in prefetched:
        pipe.producer_commit(idx)
    # Steady state.
    remaining = len(chunk_ids)
    while remaining:
        consumed.append(pipe.consumer_wait())
        pipe.consumer_release()
        remaining -= 1
        nxt = next(produce_iter, None)
        if nxt is not None:
            idx = pipe.producer_acquire(nxt)
            pipe.producer_commit(idx)
    return consumed
