"""Matrix layout conventions of the ccglib data path.

ccglib separates complex data into planar real/imaginary components
(paper §VI: kernels "require a transpose of the input data because the
complex data have to be separated into their real and imaginary
components, instead of the more usual interleaved storage format").

Host-side (user-facing) formats:

* ``interleaved``: ordinary NumPy ``complex64``/``complex128`` arrays, shape
  ``(batch, M, K)`` for A and ``(batch, K, N)`` for B;
* ``planar``: real arrays with a leading complex axis of length 2, shape
  ``(batch, 2, M, K)`` and ``(batch, 2, K, N)``.

Device-side the GEMM consumes planar data, optionally tiled into
block-tile-major order by the transpose kernel (see
:mod:`repro.ccglib.transpose`).
"""

from __future__ import annotations

import enum

import numpy as np

from repro.errors import ShapeError

#: index of the real plane along the complex axis.
REAL = 0
#: index of the imaginary plane along the complex axis.
IMAG = 1


class ComplexLayout(enum.Enum):
    """How complex values are stored in a host array."""

    INTERLEAVED = "interleaved"
    PLANAR = "planar"


class MatrixSide(enum.Enum):
    """Which GEMM operand a matrix is (decides expected shape)."""

    A = "a"  # (batch, M, K): e.g. beam weights
    B = "b"  # (batch, K, N): e.g. receiver samples
    C = "c"  # (batch, M, N): beamformed output


def to_planar(array: np.ndarray, dtype=None) -> np.ndarray:
    """Convert an interleaved complex array to planar layout.

    Input shape ``(..., R, C)`` complex; output shape ``(..., 2, R, C)``
    real with ``out[..., REAL, :, :]`` the real part. ``dtype`` optionally
    quantizes the planes (e.g. ``np.float16`` for the 16-bit data path).
    """
    array = np.asarray(array)
    if not np.iscomplexobj(array):
        raise ShapeError(f"to_planar expects a complex array, got {array.dtype}")
    planar = np.stack([array.real, array.imag], axis=-3)
    if dtype is not None:
        planar = planar.astype(dtype)
    return planar


def to_interleaved(planar: np.ndarray) -> np.ndarray:
    """Convert a planar array ``(..., 2, R, C)`` back to complex64/128."""
    planar = np.asarray(planar)
    if planar.ndim < 3 or planar.shape[-3] != 2:
        raise ShapeError(
            f"planar array must have a complex axis of length 2 third-from-last, "
            f"got shape {planar.shape}"
        )
    out_dtype = np.complex128 if planar.dtype == np.float64 else np.complex64
    imag_dtype = np.float64 if out_dtype == np.complex128 else np.float32
    return (
        planar[..., REAL, :, :] + 1j * planar[..., IMAG, :, :].astype(imag_dtype)
    ).astype(out_dtype)


def ensure_batched(array: np.ndarray, expected_ndim: int) -> tuple[np.ndarray, bool]:
    """Add a singleton batch axis if ``array`` is one batch item.

    Returns ``(batched_array, had_batch)`` so results can be un-batched.
    """
    array = np.asarray(array)
    if array.ndim == expected_ndim:
        return array, True
    if array.ndim == expected_ndim - 1:
        return array[None, ...], False
    raise ShapeError(
        f"expected {expected_ndim}D (batched) or {expected_ndim - 1}D array, "
        f"got {array.ndim}D with shape {array.shape}"
    )


def validate_planar_pair(a: np.ndarray, b: np.ndarray) -> tuple[int, int, int, int]:
    """Validate planar GEMM operands and return ``(batch, M, N, K)``.

    ``a``: (batch, 2, M, K); ``b``: (batch, 2, K, N).
    """
    if a.ndim != 4 or b.ndim != 4:
        raise ShapeError(f"expected 4D planar operands, got {a.shape} and {b.shape}")
    if a.shape[1] != 2 or b.shape[1] != 2:
        raise ShapeError("planar operands need a complex axis of length 2 at index 1")
    if a.shape[0] != b.shape[0]:
        raise ShapeError(f"batch mismatch: {a.shape[0]} vs {b.shape[0]}")
    if a.shape[3] != b.shape[2]:
        raise ShapeError(f"K mismatch: A has K={a.shape[3]}, B has K={b.shape[2]}")
    batch, _, m, k = a.shape
    n = b.shape[3]
    return batch, m, n, k
