"""Matrix layout conventions of the ccglib data path.

ccglib separates complex data into planar real/imaginary components
(paper §VI: kernels "require a transpose of the input data because the
complex data have to be separated into their real and imaginary
components, instead of the more usual interleaved storage format").

Host-side (user-facing) formats:

* ``interleaved``: ordinary NumPy ``complex64``/``complex128`` arrays, shape
  ``(batch, M, K)`` for A and ``(batch, K, N)`` for B;
* ``planar``: real arrays with a leading complex axis of length 2, shape
  ``(batch, 2, M, K)`` and ``(batch, 2, K, N)``.

Device-side the GEMM consumes planar data, optionally tiled into
block-tile-major order by the transpose kernel (see
:mod:`repro.ccglib.transpose`).

Every conversion accepts an optional :class:`~repro.backend.ArrayBackend`
and runs in that backend's namespace; the default is the NumPy reference,
bit-identical to the pre-backend implementation. The planar/interleaved
conversions are single fused vectorized expressions (one ``stack`` /
one complex combine), never per-element loops.
"""

from __future__ import annotations

import enum

import numpy as np

from repro.backend import ArrayBackend, get_backend
from repro.errors import ShapeError

#: index of the real plane along the complex axis.
REAL = 0
#: index of the imaginary plane along the complex axis.
IMAG = 1


class ComplexLayout(enum.Enum):
    """How complex values are stored in a host array."""

    INTERLEAVED = "interleaved"
    PLANAR = "planar"


class MatrixSide(enum.Enum):
    """Which GEMM operand a matrix is (decides expected shape)."""

    A = "a"  # (batch, M, K): e.g. beam weights
    B = "b"  # (batch, K, N): e.g. receiver samples
    C = "c"  # (batch, M, N): beamformed output


def _is_complex(array, xp) -> bool:
    """Complex-dtype test that never copies the array off its device."""
    return np.issubdtype(np.dtype(array.dtype), np.complexfloating)


def to_planar(array, dtype=None, backend: ArrayBackend | None = None):
    """Convert an interleaved complex array to planar layout.

    Input shape ``(..., R, C)`` complex; output shape ``(..., 2, R, C)``
    real with ``out[..., REAL, :, :]`` the real part. ``dtype`` optionally
    quantizes the planes (e.g. ``np.float16`` for the 16-bit data path).
    """
    be = get_backend(backend)
    xp = be.xp
    array = be.asarray(array)
    if not _is_complex(array, xp):
        raise ShapeError(f"to_planar expects a complex array, got {array.dtype}")
    planar = xp.stack([array.real, array.imag], axis=-3)
    if dtype is not None:
        planar = planar.astype(dtype)
    return planar


def to_interleaved(planar, backend: ArrayBackend | None = None):
    """Convert a planar array ``(..., 2, R, C)`` back to complex64/128."""
    be = get_backend(backend)
    xp = be.xp
    planar = be.asarray(planar)
    if planar.ndim < 3 or planar.shape[-3] != 2:
        raise ShapeError(
            f"planar array must have a complex axis of length 2 third-from-last, "
            f"got shape {planar.shape}"
        )
    out_dtype = xp.complex128 if planar.dtype == xp.float64 else xp.complex64
    imag_dtype = xp.float64 if out_dtype == xp.complex128 else xp.float32
    return (
        planar[..., REAL, :, :] + 1j * planar[..., IMAG, :, :].astype(imag_dtype)
    ).astype(out_dtype)


def ensure_batched(array, expected_ndim: int, backend: ArrayBackend | None = None):
    """Add a singleton batch axis if ``array`` is one batch item.

    Returns ``(batched_array, had_batch)`` so results can be un-batched.
    """
    be = get_backend(backend)
    array = be.asarray(array)
    if array.ndim == expected_ndim:
        return array, True
    if array.ndim == expected_ndim - 1:
        return array[None, ...], False
    raise ShapeError(
        f"expected {expected_ndim}D (batched) or {expected_ndim - 1}D array, "
        f"got {array.ndim}D with shape {array.shape}"
    )


def validate_planar_pair(a, b) -> tuple[int, int, int, int]:
    """Validate planar GEMM operands and return ``(batch, M, N, K)``.

    ``a``: (batch, 2, M, K); ``b``: (batch, 2, K, N). Shape-only checks,
    so arrays of any backend pass through untouched.
    """
    if a.ndim != 4 or b.ndim != 4:
        raise ShapeError(f"expected 4D planar operands, got {a.shape} and {b.shape}")
    if a.shape[1] != 2 or b.shape[1] != 2:
        raise ShapeError("planar operands need a complex axis of length 2 at index 1")
    if a.shape[0] != b.shape[0]:
        raise ShapeError(f"batch mismatch: {a.shape[0]} vs {b.shape[0]}")
    if a.shape[3] != b.shape[2]:
        raise ShapeError(f"K mismatch: A has K={a.shape[3]}, B has K={b.shape[2]}")
    batch, _, m, k = a.shape
    n = b.shape[3]
    return batch, m, n, k
