"""ccglib reproduction: complex GEMM on (simulated) tensor cores.

The paper's primary contribution — a domain-independent complex
matrix-matrix multiplication library that hides tensor-core complexity —
lives here:

* :class:`~repro.ccglib.gemm.Gemm` — the public plan/run API;
* :mod:`~repro.ccglib.complex_mma` — the 4-MMA + register-negation complex
  decomposition (paper §III-B);
* :mod:`~repro.ccglib.bit_gemm` — 1-bit XOR/AND popcount arithmetic with
  padding correction (paper §III-D/E, Eqs. 4-6);
* :mod:`~repro.ccglib.packing` / :mod:`~repro.ccglib.transpose` — the
  memory-bound helper kernels (paper §III);
* :mod:`~repro.ccglib.perfmodel` — the analytical kernel timing model;
* :mod:`~repro.ccglib.tuning` — tuning parameters and Table III defaults;
* :mod:`~repro.ccglib.pipeline` — the multi-stage async-copy buffer model;
* :mod:`~repro.ccglib.benchmark` — built-in size-sweep benchmark tools.
"""

from repro.ccglib.precision import Precision, traits, tensor_peak_ops, complex_ops
from repro.ccglib.gemm import Gemm, GemmResult, gemm_once
from repro.ccglib.perfmodel import (
    GemmProblem,
    model_gemm,
    validate_config,
    theoretical_min_bytes,
)
from repro.ccglib.tuning import (
    TuneParams,
    PublishedTuning,
    TABLE_III,
    published_tuning,
    default_params,
    select_params,
    raw_search_space,
)
from repro.ccglib.layouts import ComplexLayout, to_planar, to_interleaved, REAL, IMAG
from repro.ccglib.complex_mma import complex_mma_f16, reference_complex_gemm
from repro.ccglib.bit_gemm import complex_bit_gemm, bit_gemm_reference, real_bit_dot
from repro.ccglib.packing import pack_sign_planar, unpack_sign_planar, run_pack_kernel
from repro.ccglib.transpose import (
    tile_planar,
    untile_planar,
    planar_to_kmajor,
    run_transpose_kernel,
)

__all__ = [
    "Precision",
    "traits",
    "tensor_peak_ops",
    "complex_ops",
    "Gemm",
    "GemmResult",
    "gemm_once",
    "GemmProblem",
    "model_gemm",
    "validate_config",
    "theoretical_min_bytes",
    "TuneParams",
    "PublishedTuning",
    "TABLE_III",
    "published_tuning",
    "default_params",
    "select_params",
    "raw_search_space",
    "ComplexLayout",
    "to_planar",
    "to_interleaved",
    "REAL",
    "IMAG",
    "complex_mma_f16",
    "reference_complex_gemm",
    "complex_bit_gemm",
    "bit_gemm_reference",
    "real_bit_dot",
    "pack_sign_planar",
    "unpack_sign_planar",
    "run_pack_kernel",
    "tile_planar",
    "untile_planar",
    "planar_to_kmajor",
    "run_transpose_kernel",
]
