"""Exception hierarchy for the TCBF reproduction library.

All library errors derive from :class:`ReproError` so callers can catch one
base type. Specific subclasses mirror the failure domains of the real ccglib
stack: device capability mismatches, invalid kernel configurations, shape and
layout violations, and tuner failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by :mod:`repro`."""


class DeviceError(ReproError):
    """A simulated device was asked to do something it cannot do."""


class UnsupportedPrecisionError(DeviceError):
    """The device does not support the requested input precision.

    Mirrors ccglib's behaviour when e.g. 1-bit matrix values are requested on
    an AMD GPU (the paper notes int1 is NVIDIA-only).
    """


class UnsupportedFragmentError(DeviceError):
    """The device does not support the requested WMMA fragment layout."""


class KernelConfigError(ReproError):
    """A kernel tuning configuration violates a hardware or shape restriction.

    Raised for example when the requested tile sizes do not divide evenly,
    the shared-memory footprint exceeds the device's capacity, or the
    register budget is blown. The auto-tuner treats these as invalid points
    in the search space rather than hard failures.
    """


class ShapeError(ReproError):
    """Matrix shapes or layouts passed to the library are inconsistent."""


class BackendError(ReproError):
    """An array-execution backend is unknown, unavailable, or non-conformant.

    Raised by :func:`repro.backend.get_backend` for names that are not
    registered or whose import-time probe failed (e.g. CuPy without a GPU),
    and by the conformance checker for backends that violate the
    :class:`~repro.backend.ArrayBackend` protocol.
    """


class MemoryError_(DeviceError):
    """Simulated device memory exhausted (named to avoid shadowing builtin)."""


class TunerError(ReproError):
    """The auto-tuner could not produce a valid result."""


class PowerError(ReproError):
    """Power measurement was requested from an unavailable sensor."""
