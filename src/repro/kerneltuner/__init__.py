"""Kernel Tuner reproduction: auto-tuning of the ccglib GPU kernels.

"To facilitate this, we use Kernel Tuner, a Python-based auto-tuning
framework that can automatically optimize kernels written in both CUDA and
HIP" (paper §IV-A). The reproduction keeps Kernel Tuner's structure:
search spaces with restrictions, pluggable strategies, observers for time
and (via PMT) power, and a persistent result cache.
"""

from repro.kerneltuner.space import (
    SearchSpace,
    gemm_search_space,
    config_to_params,
    params_to_config,
)
from repro.kerneltuner.strategies import BruteForce, RandomSample, GreedyILS, StrategyResult
from repro.kerneltuner.observers import (
    Observer,
    ObserverChain,
    TimeObserver,
    PerformanceObserver,
    PowerObserver,
    default_observers,
)
from repro.kerneltuner.cache import TuningCache
from repro.kerneltuner.tuner import (
    tune_gemm,
    TuningResult,
    TuningRecord,
    PAPER_TUNING_PROBLEMS,
)

__all__ = [
    "SearchSpace",
    "gemm_search_space",
    "config_to_params",
    "params_to_config",
    "BruteForce",
    "RandomSample",
    "GreedyILS",
    "StrategyResult",
    "Observer",
    "ObserverChain",
    "TimeObserver",
    "PerformanceObserver",
    "PowerObserver",
    "default_observers",
    "TuningCache",
    "tune_gemm",
    "TuningResult",
    "TuningRecord",
    "PAPER_TUNING_PROBLEMS",
]
