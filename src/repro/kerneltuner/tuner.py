"""Auto-tuner orchestration: tune ccglib GEMM kernels on simulated devices.

Mirrors the paper's tuning setup (§IV-A): the float16 kernel is tuned at
M=N=K=8192 and the 1-bit kernel at M=32768, N=8192, K=524288; each
configuration is benchmarked for run time (Kernel Tuner) and GPU energy
(PMT), and the winner by performance is reported alongside its energy
efficiency (Fig 2 scatter, Table III rows).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ccglib.perfmodel import GemmProblem, model_gemm
from repro.ccglib.precision import Precision
from repro.ccglib.tuning import TuneParams
from repro.errors import KernelConfigError, TunerError, UnsupportedPrecisionError
from repro.gpusim.specs import GPUSpec
from repro.gpusim.timing import KernelCost
from repro.kerneltuner.cache import TuningCache
from repro.kerneltuner.observers import ObserverChain, default_observers
from repro.kerneltuner.space import Config, SearchSpace, config_to_params, gemm_search_space
from repro.kerneltuner.strategies import BruteForce, Strategy

#: tuning problems used by the paper as "a generic use case" (§IV-A).
PAPER_TUNING_PROBLEMS: dict[Precision, GemmProblem] = {
    Precision.FLOAT16: GemmProblem(batch=1, m=8192, n=8192, k=8192),
    Precision.INT1: GemmProblem(batch=1, m=32768, n=8192, k=524288),
}

#: objectives the tuner can maximize.
OBJECTIVES = ("tops", "tops_per_joule")


@dataclass(frozen=True)
class TuningRecord:
    """One evaluated configuration with its metrics."""

    params: TuneParams
    metrics: dict[str, float]


@dataclass
class TuningResult:
    """Outcome of one tuning run (the data behind one Fig 2 panel)."""

    gpu: str
    precision: Precision
    problem: GemmProblem
    objective: str
    best: TuningRecord
    records: list[TuningRecord] = field(default_factory=list)
    evaluations: int = 0
    invalid_configs: int = 0

    @property
    def best_params(self) -> TuneParams:
        return self.best.params

    def pareto_front(self) -> list[TuningRecord]:
        """Non-dominated records in the (tops, tops_per_joule) plane.

        The paper observes that "typically, the most performant combination
        of parameters is also the most energy efficient solution" — i.e.
        the front is short; tests assert the best-performance point is on it.
        """
        front: list[TuningRecord] = []
        for rec in self.records:
            dominated = any(
                other.metrics["tops"] >= rec.metrics["tops"]
                and other.metrics["tops_per_joule"] >= rec.metrics["tops_per_joule"]
                and other is not rec
                and (
                    other.metrics["tops"] > rec.metrics["tops"]
                    or other.metrics["tops_per_joule"] > rec.metrics["tops_per_joule"]
                )
                for other in self.records
            )
            if not dominated:
                front.append(rec)
        return front


def tune_gemm(
    spec: GPUSpec,
    precision: Precision,
    problem: GemmProblem | None = None,
    strategy: Strategy | None = None,
    objective: str = "tops",
    observers: ObserverChain | None = None,
    cache: TuningCache | None = None,
    space: SearchSpace | None = None,
) -> TuningResult:
    """Auto-tune the GEMM kernel for one device/precision.

    Invalid configurations (shared memory, registers, AMD buffer
    restriction...) surface as :class:`KernelConfigError` during evaluation
    and are pruned, exactly how compile failures behave under Kernel Tuner.
    """
    if objective not in OBJECTIVES:
        raise TunerError(f"objective must be one of {OBJECTIVES}, got {objective!r}")
    if precision is Precision.INT1 and not spec.caps.supports_precision("int1"):
        raise UnsupportedPrecisionError(f"{spec.name} does not support int1")
    problem = problem or PAPER_TUNING_PROBLEMS[precision]
    strategy = strategy or BruteForce()
    observers = observers or default_observers()
    space = space or gemm_search_space(spec, precision)
    problem_key = f"b{problem.batch}m{problem.m}n{problem.n}k{problem.k}"

    records: list[TuningRecord] = []
    invalid = 0

    def evaluate(config: Config) -> float | None:
        nonlocal invalid
        if cache is not None:
            cached = cache.get(spec.name, precision.value, problem_key, config)
            if cached is not None:
                records.append(TuningRecord(config_to_params(config), cached))
                return cached[objective]
        params = config_to_params(config)
        try:
            cost: KernelCost = model_gemm(spec, precision, problem, params)
        except KernelConfigError:
            invalid += 1
            return None
        metrics = observers.collect(cost)
        records.append(TuningRecord(params, metrics))
        if cache is not None:
            cache.put(spec.name, precision.value, problem_key, config, metrics)
        return metrics[objective]

    outcome = strategy.run(space, evaluate)
    best_params = config_to_params(outcome.best_config)
    best_record = next(r for r in records if r.params == best_params)
    return TuningResult(
        gpu=spec.name,
        precision=precision,
        problem=problem,
        objective=objective,
        best=best_record,
        records=records,
        evaluations=outcome.evaluations,
        invalid_configs=invalid,
    )
