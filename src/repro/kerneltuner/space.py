"""Tuning search spaces with restrictions (Kernel Tuner reproduction).

Kernel Tuner [6] expresses a tuning problem as named parameters with value
lists plus restriction predicates that prune invalid combinations. We keep
that structure so tuning setups read like real Kernel Tuner scripts, and
provide the concrete space used for the ccglib GEMM kernels ("the amount of
work per thread block and warp ... set at compile time", paper §IV-A).
"""

from __future__ import annotations

import itertools
from collections.abc import Callable, Iterator, Mapping, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.ccglib.precision import Precision
from repro.ccglib.tuning import (
    BLOCK_M_VALUES,
    BLOCK_N_VALUES,
    NUM_BUFFER_VALUES,
    TuneParams,
    WARP_M_VALUES,
    WARP_N_VALUES,
)
from repro.errors import TunerError
from repro.gpusim.specs import GPUSpec
from repro.util.rng import make_rng

Config = dict[str, int]
Restriction = Callable[[Config], bool]


@dataclass
class SearchSpace:
    """Named tuning parameters with restriction predicates."""

    parameters: Mapping[str, Sequence[int]]
    restrictions: list[Restriction] = field(default_factory=list)

    def is_valid(self, config: Config) -> bool:
        return all(r(config) for r in self.restrictions)

    def __iter__(self) -> Iterator[Config]:
        names = list(self.parameters)
        for values in itertools.product(*(self.parameters[n] for n in names)):
            config = dict(zip(names, values))
            if self.is_valid(config):
                yield config

    def cardinality_unrestricted(self) -> int:
        """Cartesian size before restrictions."""
        out = 1
        for values in self.parameters.values():
            out *= len(values)
        return out

    def enumerate_valid(self) -> list[Config]:
        return list(self)

    def sample(self, n: int, seed: int = 0) -> list[Config]:
        """Uniform sample of valid configs without replacement."""
        valid = self.enumerate_valid()
        if not valid:
            raise TunerError("search space has no valid configurations")
        rng = make_rng(seed)
        n = min(n, len(valid))
        idx = rng.choice(len(valid), size=n, replace=False)
        return [valid[i] for i in np.sort(idx)]

    def neighbours(self, config: Config) -> list[Config]:
        """Hamming-distance-1 valid neighbours (for local search)."""
        out: list[Config] = []
        for name, values in self.parameters.items():
            for v in values:
                if v == config[name]:
                    continue
                cand = dict(config)
                cand[name] = v
                if self.is_valid(cand):
                    out.append(cand)
        return out


def config_to_params(config: Config) -> TuneParams:
    """Convert a GEMM tuning config dict to :class:`TuneParams`."""
    return TuneParams(
        block_m=config["block_m"],
        block_n=config["block_n"],
        warp_m=config["warp_m"],
        warp_n=config["warp_n"],
        num_buffers=config["num_buffers"],
    )


def params_to_config(params: TuneParams) -> Config:
    """Inverse of :func:`config_to_params`."""
    return {
        "block_m": params.block_m,
        "block_n": params.block_n,
        "warp_m": params.warp_m,
        "warp_n": params.warp_n,
        "num_buffers": params.num_buffers,
    }


def gemm_search_space(spec: GPUSpec, precision: Precision) -> SearchSpace:
    """The ccglib GEMM tuning space for one device/precision.

    Structural restrictions (divisibility, AMD single-buffer) are encoded
    here; hardware-capacity restrictions (shared memory, registers) are
    enforced by the kernel's own :func:`~repro.ccglib.perfmodel.validate_config`
    at evaluation time, mirroring how Kernel Tuner discovers compile failures.
    """
    buffers = NUM_BUFFER_VALUES if spec.caps.async_copies else (1,)
    return SearchSpace(
        parameters={
            "block_m": BLOCK_M_VALUES,
            "block_n": BLOCK_N_VALUES,
            "warp_m": WARP_M_VALUES,
            "warp_n": WARP_N_VALUES,
            "num_buffers": buffers,
        },
        restrictions=[
            lambda c: c["block_m"] % c["warp_m"] == 0,
            lambda c: c["block_n"] % c["warp_n"] == 0,
            # at least one warp, at most 16 warps per block
            lambda c: 1
            <= (c["block_m"] // c["warp_m"]) * (c["block_n"] // c["warp_n"])
            <= 16,
        ],
    )
