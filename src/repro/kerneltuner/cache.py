"""Tuning result cache.

Kernel Tuner persists evaluated configurations so repeated tuning runs (and
crash recovery) skip known points. We reproduce a JSON-file cache keyed by
(device, precision, problem shape, configuration).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.kerneltuner.space import Config


def _key(device: str, precision: str, problem_key: str, config: Config) -> str:
    cfg = ",".join(f"{k}={config[k]}" for k in sorted(config))
    return f"{device}|{precision}|{problem_key}|{cfg}"


@dataclass
class TuningCache:
    """In-memory cache with optional JSON persistence."""

    path: Path | None = None
    _entries: dict[str, dict[str, float]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.path is not None:
            self.path = Path(self.path)
            if self.path.exists():
                self._entries = json.loads(self.path.read_text())

    def get(
        self, device: str, precision: str, problem_key: str, config: Config
    ) -> dict[str, float] | None:
        return self._entries.get(_key(device, precision, problem_key, config))

    def put(
        self,
        device: str,
        precision: str,
        problem_key: str,
        config: Config,
        metrics: dict[str, float],
    ) -> None:
        self._entries[_key(device, precision, problem_key, config)] = dict(metrics)

    def flush(self) -> None:
        """Write the cache to disk (no-op for purely in-memory caches)."""
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self.path.write_text(json.dumps(self._entries, indent=1, sort_keys=True))

    def __len__(self) -> int:
        return len(self._entries)
