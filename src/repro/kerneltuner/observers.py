"""Observers: pluggable metrics attached to tuning runs.

Kernel Tuner "measures the run time of each configuration" and "it is
possible to extend Kernel Tuner with other metrics, either built-in or
custom. In addition to performance metrics, we measure the energy
consumption of the GPU using the Power Measurement Toolkit" (paper §IV-A).
The observers here mirror that: every evaluated configuration passes its
:class:`~repro.gpusim.timing.KernelCost` through the observer chain, which
extracts time, performance, power, and energy metrics.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

from repro.gpusim.timing import KernelCost
from repro.util.units import tera


class Observer(abc.ABC):
    """Extracts named metrics from an executed kernel configuration."""

    @abc.abstractmethod
    def observe(self, cost: KernelCost) -> dict[str, float]:
        """Return metric name -> value for one kernel execution."""


class TimeObserver(Observer):
    """Kernel Tuner's built-in metric: execution time."""

    def observe(self, cost: KernelCost) -> dict[str, float]:
        return {"time_s": cost.time_s}


class PerformanceObserver(Observer):
    """Useful-operation throughput in TOPs/s (paper §IV-A definition:
    ``8 * M * N * K`` useful ops per second)."""

    def observe(self, cost: KernelCost) -> dict[str, float]:
        return {"tops": cost.ops_per_second / tera}


class PowerObserver(Observer):
    """PMT-backed power/energy metrics (paper: PMT via NVML / rocm-smi)."""

    def observe(self, cost: KernelCost) -> dict[str, float]:
        return {
            "power_w": cost.power_w,
            "energy_j": cost.energy_j,
            "tops_per_joule": cost.ops_per_joule / tera,
        }


@dataclass
class ObserverChain:
    """Runs every observer and merges the metric dictionaries."""

    observers: list[Observer] = field(default_factory=list)

    def collect(self, cost: KernelCost) -> dict[str, float]:
        metrics: dict[str, float] = {}
        for obs in self.observers:
            metrics.update(obs.observe(cost))
        return metrics


def default_observers() -> ObserverChain:
    """Time + performance + power, the paper's full observer set."""
    return ObserverChain([TimeObserver(), PerformanceObserver(), PowerObserver()])
