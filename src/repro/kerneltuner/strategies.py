"""Search strategies for the auto-tuner.

Kernel Tuner ships multiple optimization strategies; "to find the optimum of
the tunable parameters, we need to explore a vast search space, and this
process has to be repeated for each GPU architecture" (paper §IV-A). We
implement three representative strategies over an abstract evaluate
function (higher objective = better):

* :class:`BruteForce` — exhaustive; the reference the others are tested
  against (the GEMM space is small enough: a few hundred valid points);
* :class:`RandomSample` — uniform sampling with a fixed budget;
* :class:`GreedyILS` — greedy iterated local search: hill-climb over
  Hamming-1 neighbourhoods with random restarts, Kernel Tuner's default
  style of local optimizer.
"""

from __future__ import annotations

import abc
from collections.abc import Callable
from dataclasses import dataclass, field

from repro.errors import TunerError
from repro.kerneltuner.space import Config, SearchSpace
from repro.util.rng import make_rng

#: evaluate(config) -> objective value, or None when the config is invalid
#: (compile failure / restriction violation discovered at build time).
EvaluateFn = Callable[[Config], "float | None"]


@dataclass
class StrategyResult:
    """Outcome of one strategy run."""

    best_config: Config
    best_objective: float
    evaluations: int
    #: every (config, objective) pair that was evaluated successfully.
    history: list[tuple[Config, float]] = field(default_factory=list)


class Strategy(abc.ABC):
    """A search strategy over a :class:`SearchSpace`."""

    @abc.abstractmethod
    def run(self, space: SearchSpace, evaluate: EvaluateFn) -> StrategyResult:
        """Search the space, maximizing the objective."""

    @staticmethod
    def _finalize(history: list[tuple[Config, float]], evaluations: int) -> StrategyResult:
        if not history:
            raise TunerError("no valid configuration found in the search space")
        best_config, best_obj = max(history, key=lambda item: item[1])
        return StrategyResult(
            best_config=best_config,
            best_objective=best_obj,
            evaluations=evaluations,
            history=history,
        )


class BruteForce(Strategy):
    """Evaluate every valid configuration."""

    def run(self, space: SearchSpace, evaluate: EvaluateFn) -> StrategyResult:
        history: list[tuple[Config, float]] = []
        evaluations = 0
        for config in space:
            evaluations += 1
            obj = evaluate(config)
            if obj is not None:
                history.append((config, obj))
        return self._finalize(history, evaluations)


@dataclass
class RandomSample(Strategy):
    """Evaluate a fixed-size uniform sample of the valid space."""

    budget: int = 64
    seed: int = 0

    def run(self, space: SearchSpace, evaluate: EvaluateFn) -> StrategyResult:
        history: list[tuple[Config, float]] = []
        evaluations = 0
        for config in space.sample(self.budget, seed=self.seed):
            evaluations += 1
            obj = evaluate(config)
            if obj is not None:
                history.append((config, obj))
        return self._finalize(history, evaluations)


@dataclass
class GreedyILS(Strategy):
    """Greedy iterated local search with random restarts.

    From a random valid start, repeatedly move to the best improving
    Hamming-1 neighbour; on a local optimum, restart from a fresh random
    point, until the evaluation budget is exhausted.
    """

    budget: int = 150
    seed: int = 0

    def run(self, space: SearchSpace, evaluate: EvaluateFn) -> StrategyResult:
        rng = make_rng(self.seed)
        valid = space.enumerate_valid()
        if not valid:
            raise TunerError("search space has no valid configurations")
        history: list[tuple[Config, float]] = []
        seen: dict[str, float | None] = {}
        evaluations = 0

        def eval_cached(config: Config) -> float | None:
            nonlocal evaluations
            key = repr(sorted(config.items()))
            if key in seen:
                return seen[key]
            evaluations += 1
            obj = evaluate(config)
            seen[key] = obj
            if obj is not None:
                history.append((config, obj))
            return obj

        while evaluations < self.budget:
            current = valid[rng.integers(len(valid))]
            current_obj = eval_cached(current)
            if current_obj is None:
                continue
            improved = True
            while improved and evaluations < self.budget:
                improved = False
                best_nb, best_nb_obj = None, current_obj
                for nb in space.neighbours(current):
                    if evaluations >= self.budget:
                        break
                    obj = eval_cached(nb)
                    if obj is not None and obj > best_nb_obj:
                        best_nb, best_nb_obj = nb, obj
                if best_nb is not None:
                    current, current_obj = best_nb, best_nb_obj
                    improved = True
        return self._finalize(history, evaluations)
