"""cudapeak reproduction: tensor-core peak micro-benchmarks (paper Table I)."""

from repro.cudapeak.microbench import (
    MicrobenchResult,
    run_microbenchmark,
    run_table1,
    functional_fragment_check,
)

__all__ = [
    "MicrobenchResult",
    "run_microbenchmark",
    "run_table1",
    "functional_fragment_check",
]
