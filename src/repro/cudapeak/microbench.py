"""Tensor-core micro-benchmarks, reproducing paper Table I.

"These micro-benchmarks do not load data from global memory, to avoid
memory throughput bottlenecks" (paper §III-A): each benchmark issues a long
stream of MMA instructions on register-resident fragments and reports the
achieved throughput. On the simulated devices the achieved rate is::

    measured = theoretical_peak * sustained_clock_fraction
             * wmma_interface_factor * fragment_rate * xor_penalty

which reproduces every structural effect of Table I: workstation GPUs
exceeding spec through boosted clocks, MI300X/A falling short through
throttling, the GH200 reaching only ~65% via WMMA, the small 1-bit fragment
running at half rate on Ampere, and software-emulated XOR on Hopper.

The module also contains a *functional* fragment check that actually
executes a fragment-sized MMA numerically, so tests can verify the
arithmetic path the benchmark claims to measure.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import UnsupportedPrecisionError
from repro.gpusim.arch import (
    BitOp,
    FRAG_FLOAT16_16x16x16,
    FRAG_INT1_16x8x256,
    FRAG_INT1_8x8x128,
    FragmentShape,
)
from repro.gpusim.specs import GPUSpec, GPU_CATALOG
from repro.gpusim.tensorcore import bmma_and, bmma_xor, mma_f16
from repro.util.bits import PACK_WORD_BITS
from repro.util.rng import make_rng
from repro.util.units import tera


@dataclass(frozen=True)
class MicrobenchResult:
    """One Table I cell: measured and theoretical throughput."""

    gpu: str
    precision: str
    fragment: FragmentShape
    bit_op: BitOp | None
    measured_tops: float
    theoretical_tops: float

    @property
    def ratio(self) -> float:
        return self.measured_tops / self.theoretical_tops


def run_microbenchmark(
    spec: GPUSpec,
    precision: str,
    fragment: FragmentShape,
    bit_op: BitOp | None = None,
) -> MicrobenchResult:
    """Peak throughput of one (precision, fragment, bit-op) combination.

    Raises :class:`UnsupportedPrecisionError`/``UnsupportedFragmentError``
    exactly where the paper reports N/A cells (1-bit on AMD).
    """
    caps = spec.caps
    rate = caps.rate_factor(precision, fragment, bit_op)
    theoretical = spec.theoretical_peak_ops(precision)
    measured = theoretical * spec.sustained_clock_fraction * caps.wmma_interface_factor * rate
    return MicrobenchResult(
        gpu=spec.name,
        precision=precision,
        fragment=fragment,
        bit_op=bit_op,
        measured_tops=measured / tera,
        theoretical_tops=theoretical / tera,
    )


#: The benchmark matrix of Table I: float16 plus the four 1-bit variants
#: (two fragment layouts x two multiply operands, §III-A).
TABLE1_BENCHMARKS: tuple[tuple[str, FragmentShape, BitOp | None], ...] = (
    ("float16", FRAG_FLOAT16_16x16x16, None),
    ("int1", FRAG_INT1_8x8x128, BitOp.XOR),
    ("int1", FRAG_INT1_8x8x128, BitOp.AND),
    ("int1", FRAG_INT1_16x8x256, BitOp.XOR),
    ("int1", FRAG_INT1_16x8x256, BitOp.AND),
)


def run_table1(gpus: list[str] | None = None) -> list[MicrobenchResult]:
    """Run the full Table I benchmark matrix over the catalog.

    Unsupported combinations (1-bit on AMD) are skipped, matching the N/A
    cells of the paper's table.
    """
    results: list[MicrobenchResult] = []
    for name in gpus or list(GPU_CATALOG):
        spec = GPU_CATALOG[name]
        for precision, fragment, bit_op in TABLE1_BENCHMARKS:
            try:
                results.append(run_microbenchmark(spec, precision, fragment, bit_op))
            except UnsupportedPrecisionError:
                continue
    return results


def functional_fragment_check(
    precision: str,
    fragment: FragmentShape,
    bit_op: BitOp | None = None,
    seed: int = 0,
) -> bool:
    """Numerically execute one fragment MMA and verify it against NumPy.

    This is what keeps the micro-benchmark honest: the instruction being
    rate-modelled is also executed functionally on random fragments.
    """
    rng = make_rng(seed)
    if precision == "float16":
        a = rng.normal(size=(fragment.m, fragment.k)).astype(np.float16)
        b = rng.normal(size=(fragment.k, fragment.n)).astype(np.float16)
        got = mma_f16(a, b)
        want = a.astype(np.float32) @ b.astype(np.float32)
        return np.allclose(got, want, rtol=1e-6)
    if precision == "int1":
        words = fragment.k // PACK_WORD_BITS
        a = rng.integers(0, 2**32, size=(fragment.m, words), dtype=np.uint32)
        b = rng.integers(0, 2**32, size=(fragment.n, words), dtype=np.uint32)
        if bit_op is BitOp.XOR:
            got = bmma_xor(a, b)
        else:
            # Emulate XOR popcount with two AND passes (Eq. 6 rearranged).
            got = fragment.k - (bmma_and(a, b) + bmma_and(~a, ~b))
        # Reference: popcount of XOR through Python ints.
        want = np.array(
            [
                [sum(bin(int(aw) ^ int(bw)).count("1") for aw, bw in zip(ar, br)) for br in b]
                for ar in a
            ],
            dtype=np.int64,
        )
        return bool(np.array_equal(got, want))
    raise UnsupportedPrecisionError(precision)
