"""Functional model of tensor-core matrix fragments.

Reproduces the *numerics* of the WMMA instructions ccglib issues:

* ``mma_f16``: D = A x B + C with float16 multiplicands and float32
  accumulation. Inputs are quantized to float16 exactly as the hardware
  sees them; products and the accumulation chain are kept in float32
  (tensor cores accumulate in full precision within a fragment).
* ``bmma_xor`` / ``bmma_and``: the 1-bit binary MMA. Per CUDA semantics
  the hardware computes ``D += popc(A op B)`` element-wise over the K
  dimension of packed 32-bit words; the arithmetic interpretation
  (``K - 2*popc`` for XOR, Eq. 4 of the paper) is applied by the kernel
  epilogue, not by the instruction. We mirror that split: these functions
  accumulate raw population counts.

Only fragment-shape validation is architecture-dependent; the arithmetic
itself is identical across devices, which is what lets ccglib hide CUDA/HIP
differences behind one interface.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.gpusim.arch import ArchCapabilities, BitOp, FragmentShape
from repro.util.bits import popcount


def quantize_f16(values: np.ndarray) -> np.ndarray:
    """Quantize values to float16 as loading into an fp16 fragment would."""
    return np.asarray(values).astype(np.float16)


def quantize_tf32(values: np.ndarray) -> np.ndarray:
    """Quantize float32 values to TensorFloat-32 (paper §VI).

    TF32 keeps the float32 exponent (same range) but only 10 mantissa bits;
    hardware rounds-to-nearest when loading fragments. Implemented by
    rounding away the low 13 mantissa bits of the IEEE-754 encoding.
    """
    v = np.ascontiguousarray(np.asarray(values, dtype=np.float32))
    bits = v.view(np.uint32)
    rounded = ((bits + np.uint32(0x1000)) & np.uint32(0xFFFFE000)).astype(np.uint32)
    return rounded.view(np.float32).reshape(v.shape)


def mma_tf32(a: np.ndarray, b: np.ndarray, c: np.ndarray | None = None) -> np.ndarray:
    """TF32-multiply / float32-accumulate matrix product (experimental)."""
    a_t = quantize_tf32(a)
    b_t = quantize_tf32(b)
    if a_t.ndim != 2 or b_t.ndim != 2 or a_t.shape[1] != b_t.shape[0]:
        raise ShapeError(f"mma_tf32 shape mismatch: {a_t.shape} x {b_t.shape}")
    prod = a_t @ b_t
    if c is None:
        return prod
    if c.shape != prod.shape:
        raise ShapeError(f"accumulator shape {c.shape} != product shape {prod.shape}")
    return c.astype(np.float32) + prod


def mma_f16(a: np.ndarray, b: np.ndarray, c: np.ndarray | None = None) -> np.ndarray:
    """Float16-multiply / float32-accumulate matrix product.

    ``a`` is (m, k), ``b`` is (k, n); both are cast to float16 first (no-op
    if already float16), then multiplied with float32 accumulation. ``c`` is
    the float32 accumulator to add into (a copy is returned; fragments are
    register values, not views).
    """
    a16 = quantize_f16(a)
    b16 = quantize_f16(b)
    if a16.ndim != 2 or b16.ndim != 2 or a16.shape[1] != b16.shape[0]:
        raise ShapeError(f"mma_f16 shape mismatch: {a16.shape} x {b16.shape}")
    prod = a16.astype(np.float32) @ b16.astype(np.float32)
    if c is None:
        return prod
    if c.shape != prod.shape:
        raise ShapeError(f"accumulator shape {c.shape} != product shape {prod.shape}")
    return c.astype(np.float32) + prod


def _bmma(a_words: np.ndarray, b_words: np.ndarray, op: BitOp) -> np.ndarray:
    """Popcount-accumulate over packed K words: out[i, j] = sum_w popc(a[i,w] OP b[j,w])."""
    a_words = np.asarray(a_words)
    b_words = np.asarray(b_words)
    if a_words.dtype != np.uint32 or b_words.dtype != np.uint32:
        raise ShapeError("binary MMA operates on packed uint32 words")
    if a_words.ndim != 2 or b_words.ndim != 2 or a_words.shape[1] != b_words.shape[1]:
        raise ShapeError(
            f"binary MMA shape mismatch: {a_words.shape} vs {b_words.shape} "
            "(expected (m, w) and (n, w))"
        )
    if op is BitOp.XOR:
        mixed = a_words[:, None, :] ^ b_words[None, :, :]
    else:
        mixed = a_words[:, None, :] & b_words[None, :, :]
    return popcount(mixed).sum(axis=-1, dtype=np.int64)


def bmma_xor(a_words: np.ndarray, b_words: np.ndarray, c: np.ndarray | None = None) -> np.ndarray:
    """1-bit MMA with XOR multiply: accumulates ``popc(A ^ B)`` (paper §III-D)."""
    out = _bmma(a_words, b_words, BitOp.XOR)
    return out if c is None else c + out


def bmma_and(a_words: np.ndarray, b_words: np.ndarray, c: np.ndarray | None = None) -> np.ndarray:
    """1-bit MMA with AND multiply: accumulates ``popc(A & B)`` (paper §III-E)."""
    out = _bmma(a_words, b_words, BitOp.AND)
    return out if c is None else c + out


def validate_fragment_tile(
    caps: ArchCapabilities, precision: str, frag: FragmentShape, m: int, n: int, k: int
) -> None:
    """Check that an (m, n, k) tile decomposes into whole fragments.

    ccglib pads matrices so that kernels only ever see whole fragments; this
    guard catches internal tiling bugs early in the functional path.
    """
    caps.require_fragment(precision, frag)
    if m % frag.m or n % frag.n or k % frag.k:
        raise ShapeError(f"tile {m}x{n}x{k} is not a multiple of fragment {frag} — pad first")
