"""Simulated device global memory: buffers, allocation tracking, transfers.

Functional mode stores real NumPy arrays in :class:`DeviceBuffer` objects so
kernels can compute on them; dry-run mode allocates metadata only (shape,
dtype, nbytes) so paper-scale problems don't exhaust host RAM. Both modes
share allocation accounting, which lets tests assert that e.g. the ultrasound
pipeline fits in a 40 GB A100 before attempting a run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import MemoryError_, ShapeError
from repro.gpusim.specs import GPUSpec


@dataclass
class DeviceBuffer:
    """A device-resident array.

    ``data`` is a real ndarray in functional mode and ``None`` in dry-run
    mode; ``shape``/``dtype``/``nbytes`` are always valid.
    """

    shape: tuple[int, ...]
    dtype: np.dtype
    nbytes: int
    data: np.ndarray | None = None
    label: str = ""

    @property
    def is_materialized(self) -> bool:
        return self.data is not None

    def require_data(self) -> np.ndarray:
        if self.data is None:
            raise MemoryError_(
                f"buffer {self.label or self.shape} is a dry-run allocation; "
                "functional access is not available"
            )
        return self.data


class MemoryPool:
    """Tracks allocations against the device's memory capacity."""

    def __init__(self, spec: GPUSpec):
        self._spec = spec
        self._allocated = 0
        self._peak = 0
        self._buffers: list[DeviceBuffer] = []

    @property
    def allocated_bytes(self) -> int:
        return self._allocated

    @property
    def peak_bytes(self) -> int:
        return self._peak

    @property
    def capacity_bytes(self) -> int:
        return self._spec.mem_bytes

    def allocate(
        self,
        shape: tuple[int, ...],
        dtype,
        *,
        materialize: bool,
        label: str = "",
        fill: float | None = None,
    ) -> DeviceBuffer:
        """Allocate a buffer; raises :class:`MemoryError_` when over capacity."""
        dtype = np.dtype(dtype)
        nbytes = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
        if nbytes < 0:
            raise ShapeError(f"invalid allocation shape {shape}")
        if self._allocated + nbytes > self.capacity_bytes:
            raise MemoryError_(
                f"{self._spec.name}: allocation of {nbytes} bytes exceeds device "
                f"memory ({self._allocated} of {self.capacity_bytes} in use)"
            )
        data = None
        if materialize:
            data = (
                np.zeros(shape, dtype=dtype)
                if fill is None
                else np.full(shape, fill, dtype=dtype)
            )
        buf = DeviceBuffer(shape=tuple(shape), dtype=dtype, nbytes=nbytes, data=data, label=label)
        self._allocated += nbytes
        self._peak = max(self._peak, self._allocated)
        self._buffers.append(buf)
        return buf

    def upload(self, host_array: np.ndarray, *, materialize: bool, label: str = "") -> DeviceBuffer:
        """Copy a host array to the device (functional) or register its
        shape/dtype (dry-run)."""
        buf = self.allocate(
            host_array.shape, host_array.dtype, materialize=materialize, label=label
        )
        if materialize:
            np.copyto(buf.data, host_array)
        return buf

    def free(self, buf: DeviceBuffer) -> None:
        """Release a buffer's accounting; idempotent."""
        if buf in self._buffers:
            self._buffers.remove(buf)
            self._allocated -= buf.nbytes
            buf.data = None

    def transfer_time_s(self, nbytes: int, pcie_gbs: float = 25.0) -> float:
        """Host<->device transfer estimate (PCIe gen4 x16 effective ~25 GB/s).

        The paper excludes host transfers from kernel benchmarks ("data are
        typically already GPU-resident", §V-B) but the ultrasound real-time
        analysis needs an ingest estimate.
        """
        return nbytes / (pcie_gbs * 1e9)
