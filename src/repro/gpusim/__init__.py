"""Simulated GPU substrate: architectures, device catalog, execution models.

This package is the documented substitution for the physical GPUs of the
paper's evaluation (see DESIGN.md §2). It provides:

* :mod:`~repro.gpusim.arch` — architecture capability tables (fragment
  layouts, 1-bit support, async copies, WMMA interface factors);
* :mod:`~repro.gpusim.specs` — the seven-device catalog (AD4000, A100,
  GH200, W7700, MI210, MI300X, MI300A) with Table-I-calibrated clocks;
* :mod:`~repro.gpusim.tensorcore` — bit-exact functional fragment MMA;
* :mod:`~repro.gpusim.device` — device execution/accounting with
  functional and dry-run modes;
* clock, power, memory, and timing models consumed by the ccglib kernels.
"""

from repro.gpusim.arch import (
    Architecture,
    ArchCapabilities,
    BitOp,
    FragmentShape,
    Vendor,
    capabilities,
    FRAG_FLOAT16_16x16x16,
    FRAG_INT1_8x8x128,
    FRAG_INT1_16x8x256,
)
from repro.gpusim.specs import (
    GPUSpec,
    GPU_CATALOG,
    INT1_GPUS,
    get_spec,
    AD4000,
    A100,
    GH200,
    W7700,
    MI210,
    MI300X,
    MI300A,
)
from repro.gpusim.device import Device, ExecutionMode, Stream, Event
from repro.gpusim.timing import KernelCost, Bound, combine_costs
from repro.gpusim.memory import DeviceBuffer, MemoryPool

__all__ = [
    "Architecture",
    "ArchCapabilities",
    "BitOp",
    "FragmentShape",
    "Vendor",
    "capabilities",
    "FRAG_FLOAT16_16x16x16",
    "FRAG_INT1_8x8x128",
    "FRAG_INT1_16x8x256",
    "GPUSpec",
    "GPU_CATALOG",
    "INT1_GPUS",
    "get_spec",
    "AD4000",
    "A100",
    "GH200",
    "W7700",
    "MI210",
    "MI300X",
    "MI300A",
    "Device",
    "ExecutionMode",
    "Stream",
    "Event",
    "KernelCost",
    "Bound",
    "combine_costs",
    "DeviceBuffer",
    "MemoryPool",
]
