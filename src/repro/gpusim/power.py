"""Device power model.

The paper measures GPU power through PMT (NVML on NVIDIA, rocm-smi on AMD)
while kernels run, and reports energy efficiency as TeraOps/J (§IV-A). We
model average kernel power as a linear mix of utilization terms::

    P = idle + tensor_w[prec] * u_tensor + memory_w * u_dram + shared_w * u_smem

where each ``u`` is the fraction of the corresponding resource's sustained
bandwidth actually consumed while the kernel runs. Coefficients per GPU are
fitted so that the tuned kernels of paper Table III land on the published
TOPs/J values (e.g. A100 float16: 173 TOPs/s at 0.8 TOPs/J implies ~216 W).

The shared-memory term is what creates the two-dimensional spread in the
auto-tuning scatter of Fig 2: configurations with redundant shared-memory
traffic draw more power at equal throughput and are therefore strictly less
energy efficient.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PowerError
from repro.gpusim.specs import GPUSpec


@dataclass(frozen=True)
class PowerSample:
    """Average power breakdown of one kernel execution."""

    total_w: float
    idle_w: float
    tensor_w: float
    memory_w: float
    shared_w: float


class PowerModel:
    """Evaluates the linear power model of a device."""

    def __init__(self, spec: GPUSpec):
        self._spec = spec

    @property
    def idle_w(self) -> float:
        return self._spec.power.idle_w

    def tensor_coefficient(self, precision: str) -> float:
        try:
            return self._spec.power.tensor_w[precision]
        except KeyError as exc:
            raise PowerError(f"{self._spec.name} has no power coefficient for {precision}") from exc

    def kernel_power(
        self,
        precision: str | None,
        tensor_utilization: float,
        dram_utilization: float,
        smem_utilization: float,
    ) -> PowerSample:
        """Average power of a kernel given its resource utilizations.

        Utilizations are clamped to [0, 1]; the total is additionally capped
        at the device TDP (real boards enforce a power limit).
        """
        ut = min(max(tensor_utilization, 0.0), 1.0)
        um = min(max(dram_utilization, 0.0), 1.0)
        us = min(max(smem_utilization, 0.0), 1.0)
        coeffs = self._spec.power
        tensor_term = self.tensor_coefficient(precision) * ut if precision else 0.0
        memory_term = coeffs.memory_w * um
        shared_term = coeffs.shared_w * us
        total = coeffs.idle_w + tensor_term + memory_term + shared_term
        if total > self._spec.tdp_w:
            # Power capping: scale dynamic terms down to the TDP envelope.
            scale = (self._spec.tdp_w - coeffs.idle_w) / max(total - coeffs.idle_w, 1e-12)
            tensor_term *= scale
            memory_term *= scale
            shared_term *= scale
            total = self._spec.tdp_w
        return PowerSample(
            total_w=total,
            idle_w=coeffs.idle_w,
            tensor_w=tensor_term,
            memory_w=memory_term,
            shared_w=shared_term,
        )
