"""Simulated GPU device: execution log, streams, and the functional/dry-run split.

A :class:`Device` is the meeting point of the substrate models:

* it owns a :class:`~repro.gpusim.memory.MemoryPool` (functional mode
  materializes real arrays, dry-run mode tracks metadata only);
* kernels are "launched" by recording a
  :class:`~repro.gpusim.timing.KernelCost` computed by the kernel's
  analytical model — the device advances its simulated clock and keeps a
  power timeline that the PMT sensors sample;
* the clock and power models are exposed so kernel cost models can resolve
  sustained clocks and compute average power consistently.

This mirrors how the real library interacts with hardware: ccglib never
needs to know whether time comes from cudaEventElapsedTime or from a model.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.errors import DeviceError
from repro.gpusim.clock import ClockModel
from repro.gpusim.memory import DeviceBuffer, MemoryPool
from repro.gpusim.power import PowerModel
from repro.gpusim.specs import GPUSpec, get_spec
from repro.gpusim.timing import KernelCost


class ExecutionMode(enum.Enum):
    """Functional mode computes real results; dry-run only predicts cost."""

    FUNCTIONAL = "functional"
    DRY_RUN = "dry_run"


@dataclass(frozen=True)
class TimelineEntry:
    """One executed kernel on the device's simulated timeline."""

    start_s: float
    end_s: float
    cost: KernelCost


@dataclass
class Event:
    """A CUDA-event-like timestamp marker on a stream."""

    time_s: float | None = None

    def elapsed_since(self, other: "Event") -> float:
        if self.time_s is None or other.time_s is None:
            raise DeviceError("event not recorded yet")
        return self.time_s - other.time_s


class Stream:
    """An in-order execution queue; kernels on one stream serialize."""

    def __init__(self, device: "Device"):
        self._device = device

    def record_event(self) -> Event:
        return Event(time_s=self._device.now_s)

    def launch(self, cost: KernelCost) -> TimelineEntry:
        return self._device.record_kernel(cost)


class Device:
    """One simulated GPU instance.

    Parameters
    ----------
    spec:
        A :class:`GPUSpec` or a catalog name like ``"A100"``.
    mode:
        ``ExecutionMode.FUNCTIONAL`` to compute real results (tests,
        examples) or ``ExecutionMode.DRY_RUN`` for paper-scale cost modelling
        (benchmark harness).
    """

    def __init__(self, spec: GPUSpec | str, mode: ExecutionMode = ExecutionMode.FUNCTIONAL):
        self.spec: GPUSpec = get_spec(spec) if isinstance(spec, str) else spec
        self.mode = mode
        self.memory = MemoryPool(self.spec)
        self.clock = ClockModel(self.spec)
        self.power = PowerModel(self.spec)
        self._now_s = 0.0
        self._timeline: list[TimelineEntry] = []
        self.default_stream = Stream(self)

    # -- identity ---------------------------------------------------------

    @property
    def name(self) -> str:
        return self.spec.name

    def __repr__(self) -> str:
        return f"Device({self.spec.name}, mode={self.mode.value})"

    @property
    def is_functional(self) -> bool:
        return self.mode is ExecutionMode.FUNCTIONAL

    # -- memory -----------------------------------------------------------

    def allocate(self, shape, dtype, label: str = "") -> DeviceBuffer:
        return self.memory.allocate(
            tuple(shape), dtype, materialize=self.is_functional, label=label
        )

    def upload(self, host_array: np.ndarray, label: str = "") -> DeviceBuffer:
        return self.memory.upload(host_array, materialize=self.is_functional, label=label)

    def free(self, buf: DeviceBuffer) -> None:
        self.memory.free(buf)

    # -- execution accounting ----------------------------------------------

    @property
    def now_s(self) -> float:
        """Current simulated device time."""
        return self._now_s

    @property
    def timeline(self) -> tuple[TimelineEntry, ...]:
        return tuple(self._timeline)

    def record_kernel(self, cost: KernelCost) -> TimelineEntry:
        """Advance device time by one kernel and log it."""
        entry = TimelineEntry(start_s=self._now_s, end_s=self._now_s + cost.time_s, cost=cost)
        self._now_s = entry.end_s
        self._timeline.append(entry)
        return entry

    def reset_timeline(self) -> None:
        """Clear execution history (keeps allocations)."""
        self._now_s = 0.0
        self._timeline.clear()

    # -- aggregate statistics ----------------------------------------------

    def total_time_s(self) -> float:
        return sum(e.cost.time_s for e in self._timeline)

    def total_energy_j(self) -> float:
        return sum(e.cost.energy_j for e in self._timeline)

    def total_useful_ops(self) -> float:
        return sum(e.cost.useful_ops for e in self._timeline)

    def power_at(self, t_s: float) -> float:
        """Instantaneous power at simulated time ``t_s`` (idle between kernels).

        PMT sensors sample this to integrate energy the way NVML polling does.
        """
        for entry in self._timeline:
            if entry.start_s <= t_s < entry.end_s:
                return entry.cost.power_w
        return self.power.idle_w
