"""Clock behaviour model.

The paper's Table I footnotes describe two deviations from vendor-spec
clocks that the micro-benchmarks expose directly:

* workstation cards (AD4000, W7700) run *above* their specified boost clock
  in these workloads, so measured throughput exceeds the theoretical peak;
* the MI300X and MI300A cannot sustain their maximum clock in a synthetic
  tensor-core benchmark and fall short of the theoretical value.

We model the sustained clock as ``spec_clock * sustained_clock_fraction``
with a load-dependent droop: light workloads (low tensor utilization) run at
up to the boost ceiling, fully tensor-bound workloads settle at the
sustained fraction. This is deliberately simple — a first-order thermal
model — but it is sufficient to reproduce both Table I ratios and the small
perf variations between memory- and compute-bound kernels.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpusim.specs import GPUSpec


@dataclass(frozen=True)
class ClockState:
    """Resolved clock for one kernel execution."""

    clock_hz: float
    fraction_of_spec: float


class ClockModel:
    """Computes the clock a kernel actually runs at."""

    #: workloads below this tensor utilization hold the boost ceiling.
    LIGHT_LOAD_UTILIZATION = 0.10
    #: extra headroom above sustained clock available at light load.
    BOOST_HEADROOM = 0.03

    def __init__(self, spec: GPUSpec):
        self._spec = spec

    @property
    def spec_clock_hz(self) -> float:
        return self._spec.clock_mhz * 1e6

    @property
    def sustained_clock_hz(self) -> float:
        return self._spec.sustained_clock_hz

    def resolve(self, tensor_utilization: float) -> ClockState:
        """Clock for a kernel with the given steady tensor-pipe utilization.

        ``tensor_utilization`` in [0, 1]; 1.0 means MMA-issue bound.
        """
        u = min(max(tensor_utilization, 0.0), 1.0)
        sustained = self._spec.sustained_clock_fraction
        if u <= self.LIGHT_LOAD_UTILIZATION:
            frac = sustained + self.BOOST_HEADROOM
        else:
            # Linear droop from boosted to sustained as load saturates.
            span = 1.0 - self.LIGHT_LOAD_UTILIZATION
            droop = (u - self.LIGHT_LOAD_UTILIZATION) / span
            frac = sustained + self.BOOST_HEADROOM * (1.0 - droop)
        return ClockState(clock_hz=self.spec_clock_hz * frac, fraction_of_spec=frac)
