"""Device catalog: the seven GPUs of the paper's evaluation.

Each :class:`GPUSpec` combines public datasheet numbers (SM/CU count, clocks,
memory bandwidth, theoretical tensor-core peaks — the "Theoretical peak"
column of paper Table I) with behavioural parameters calibrated against the
paper's published measurements:

* ``sustained_clock_fraction`` reproduces the measured/theoretical ratios of
  Table I. The AD4000 and W7700 boost beyond vendor spec (fraction > 1,
  Table I footnote a); the MI300X/A cannot sustain maximum clocks
  (fraction < 1, footnote b).
* ``gemm_efficiency`` is the fraction of sustained tensor-core throughput the
  tuned ccglib matrix-multiply kernel reaches on large matrices; fitted to
  Table III (e.g. A100 float16: 173 TOPs/s of a 308 TOPs/s sustained peak).
* the power-model coefficients are fitted to the TOPs/J column of Table III
  (see :mod:`repro.gpusim.power`).

These calibration constants are data, not physics: they stand in for the
microarchitectural detail a cycle-accurate simulator would model, and they
are the documented substitution for running on real hardware.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import DeviceError
from repro.gpusim.arch import Architecture, ArchCapabilities, capabilities
from repro.util.units import tera, giga


@dataclass(frozen=True)
class PowerCoefficients:
    """Linear power model coefficients in Watts (see gpusim.power)."""

    idle_w: float
    #: dynamic power at full tensor-pipe utilization, per precision.
    tensor_w: dict[str, float]
    #: dynamic power at full DRAM bandwidth utilization.
    memory_w: float
    #: dynamic power at full shared-memory bandwidth utilization.
    shared_w: float


@dataclass(frozen=True)
class GPUSpec:
    """Static description of one simulated GPU."""

    name: str
    arch: Architecture
    n_sm: int
    clock_mhz: float
    #: measured sustained clock as a fraction of ``clock_mhz`` (Table I fit).
    sustained_clock_fraction: float
    #: theoretical tensor-core peak in TOPs/s at spec clock, per precision
    #: (the "Theoretical peak" entries of paper Table I).
    tensor_peak_tops: dict[str, float]
    #: theoretical fp32 peak of the normal (non-tensor) cores, TFLOPs/s.
    fp32_tflops: float
    #: fraction of fp32 peak a well-tuned conventional kernel reaches; used
    #: by the reference (non-tensor-core) beamformer of Fig 7.
    fp32_efficiency: float
    mem_bandwidth_gbs: float
    #: achievable fraction of theoretical DRAM bandwidth (Fig 3: NVIDIA GPUs
    #: run very close to the memory roofline, AMD a bit further away).
    mem_efficiency: float
    mem_bytes: int
    smem_per_sm_bytes: int
    l2_bytes: int
    max_blocks_per_sm: int
    tdp_w: float
    power: PowerCoefficients
    #: tuned-kernel efficiency relative to sustained tensor peak, fitted to
    #: Table III per precision.
    gemm_efficiency: dict[str, float]
    #: pipeline ramp-up/drain depth in K-chunks: how much in-flight K work
    #: the device needs before its tensor pipes saturate. Large many-CU
    #: parts (MI300) need far more, which is why the short-K LOFAR workload
    #: "is still too small to fully saturate this GPU" (paper SV-B).
    ramp_chunks: float = 2.0
    kernel_launch_overhead_s: float = 4e-6
    notes: str = ""

    @property
    def caps(self) -> ArchCapabilities:
        return capabilities(self.arch)

    @property
    def sustained_clock_hz(self) -> float:
        return self.clock_mhz * 1e6 * self.sustained_clock_fraction

    def theoretical_peak_ops(self, precision: str) -> float:
        """Theoretical tensor peak at spec clock, ops/s (Table I right values)."""
        self.caps.require_precision(precision)
        try:
            return self.tensor_peak_tops[precision] * tera
        except KeyError as exc:
            raise DeviceError(f"{self.name} has no {precision} tensor peak") from exc

    def sustained_peak_ops(self, precision: str) -> float:
        """Tensor peak at the actually sustained clock, ops/s."""
        return self.theoretical_peak_ops(precision) * self.sustained_clock_fraction

    def wmma_peak_ops(self, precision: str) -> float:
        """Peak reachable through the WMMA interface (0.65x on Hopper)."""
        return self.sustained_peak_ops(precision) * self.caps.wmma_interface_factor

    def mem_bandwidth_bytes(self) -> float:
        return self.mem_bandwidth_gbs * giga

    def smem_bandwidth_bytes(self) -> float:
        """Aggregate shared-memory bandwidth across all SMs at sustained clock."""
        return self.caps.smem_bytes_per_clock * self.n_sm * self.sustained_clock_hz

    def fp32_peak_ops(self) -> float:
        return self.fp32_tflops * tera


def _spec(**kw) -> GPUSpec:
    return GPUSpec(**kw)


#: NVIDIA RTX 4000 Ada ("AD4000"): workstation Ada card; boosts past spec
#: (Table I: 117 measured vs 107 theoretical float16).
AD4000 = _spec(
    name="AD4000",
    arch=Architecture.ADA,
    n_sm=48,
    clock_mhz=2175.0,
    sustained_clock_fraction=1.093,
    tensor_peak_tops={"float16": 107.0, "int1": 1710.0},
    fp32_tflops=26.7,
    fp32_efficiency=0.55,
    mem_bandwidth_gbs=360.0,
    mem_efficiency=0.92,
    mem_bytes=20 * 2**30,
    smem_per_sm_bytes=100 * 1024,
    l2_bytes=48 * 2**20,
    max_blocks_per_sm=24,
    tdp_w=135.0,
    power=PowerCoefficients(
        idle_w=15.0,
        tensor_w={"float16": 117.2, "int1": 126.9},
        memory_w=38.0,
        shared_w=12.0,
    ),
    gemm_efficiency={"float16": 0.8601, "int1": 0.8347},
    ramp_chunks=2.0,
    notes="workstation card, boosted clocks beyond vendor specification",
)

#: NVIDIA A100 (PCIe 40 GB): Ampere datacenter GPU.
A100 = _spec(
    name="A100",
    arch=Architecture.AMPERE,
    n_sm=108,
    clock_mhz=1410.0,
    sustained_clock_fraction=0.987,
    tensor_peak_tops={"float16": 312.0, "int1": 4992.0},
    fp32_tflops=19.5,
    fp32_efficiency=0.50,
    mem_bandwidth_gbs=1555.0,
    mem_efficiency=0.92,
    mem_bytes=40 * 2**30,
    smem_per_sm_bytes=164 * 1024,
    l2_bytes=40 * 2**20,
    max_blocks_per_sm=32,
    tdp_w=250.0,
    power=PowerCoefficients(
        idle_w=55.0,
        tensor_w={"float16": 247.8, "int1": 276.8},
        memory_w=60.0,
        shared_w=22.0,
    ),
    gemm_efficiency={"float16": 0.6089, "int1": 0.6745},
    ramp_chunks=3.0,
)

#: NVIDIA GH200 (Grace Hopper, H100 die, 96 GB HBM3): reaches only ~65% of
#: tensor peak through WMMA (Table I; WGMMA would be needed for full rate),
#: and emulates the deprecated 1-bit XOR op in software (§III-E).
GH200 = _spec(
    name="GH200",
    arch=Architecture.HOPPER,
    n_sm=132,
    clock_mhz=1980.0,
    sustained_clock_fraction=1.0,
    tensor_peak_tops={"float16": 990.0, "int1": 15800.0},
    fp32_tflops=67.0,
    fp32_efficiency=0.50,
    mem_bandwidth_gbs=4000.0,
    mem_efficiency=0.92,
    mem_bytes=96 * 2**30,
    smem_per_sm_bytes=228 * 1024,
    l2_bytes=50 * 2**20,
    max_blocks_per_sm=32,
    tdp_w=700.0,
    power=PowerCoefficients(
        idle_w=75.0,
        tensor_w={"float16": 585.2, "int1": 716.1},
        memory_w=110.0,
        shared_w=45.0,
    ),
    gemm_efficiency={"float16": 0.582, "int1": 0.8253},
    ramp_chunks=4.0,
    notes="1-bit theoretical peak assumed to scale from float16 as on Ampere/Ada",
)

#: AMD Radeon Pro W7700: workstation RDNA3 card, boosted clocks.
W7700 = _spec(
    name="W7700",
    arch=Architecture.RDNA3,
    n_sm=48,
    clock_mhz=2401.0,
    sustained_clock_fraction=1.035,
    tensor_peak_tops={"float16": 57.0},
    fp32_tflops=28.3,
    fp32_efficiency=0.50,
    mem_bandwidth_gbs=576.0,
    mem_efficiency=0.80,
    mem_bytes=16 * 2**30,
    smem_per_sm_bytes=64 * 1024,
    l2_bytes=64 * 2**20,
    max_blocks_per_sm=16,
    tdp_w=190.0,
    power=PowerCoefficients(
        idle_w=20.0,
        tensor_w={"float16": 160.4},
        memory_w=40.0,
        shared_w=14.0,
    ),
    gemm_efficiency={"float16": 0.8389},
    ramp_chunks=2.0,
    notes="workstation card, boosted clocks beyond vendor specification",
)

#: AMD Instinct MI210: CDNA2 datacenter GPU.
MI210 = _spec(
    name="MI210",
    arch=Architecture.CDNA2,
    n_sm=104,
    clock_mhz=1700.0,
    sustained_clock_fraction=0.961,
    tensor_peak_tops={"float16": 181.0},
    fp32_tflops=22.6,
    fp32_efficiency=0.50,
    mem_bandwidth_gbs=1638.0,
    mem_efficiency=0.80,
    mem_bytes=64 * 2**30,
    smem_per_sm_bytes=64 * 1024,
    l2_bytes=8 * 2**20,
    max_blocks_per_sm=16,
    tdp_w=300.0,
    power=PowerCoefficients(
        idle_w=85.0,
        tensor_w={"float16": 26.6},
        memory_w=30.0,
        shared_w=8.0,
    ),
    gemm_efficiency={"float16": 0.9385},
    ramp_chunks=3.0,
)

#: AMD Instinct MI300X: CDNA3; cannot sustain max clock under tensor load
#: (Table I footnote b).
MI300X = _spec(
    name="MI300X",
    arch=Architecture.CDNA3,
    n_sm=304,
    clock_mhz=2100.0,
    sustained_clock_fraction=0.922,
    tensor_peak_tops={"float16": 1307.0},
    fp32_tflops=163.4,
    fp32_efficiency=0.50,
    mem_bandwidth_gbs=5300.0,
    mem_efficiency=0.80,
    mem_bytes=192 * 2**30,
    smem_per_sm_bytes=64 * 1024,
    l2_bytes=256 * 2**20,
    max_blocks_per_sm=16,
    tdp_w=750.0,
    power=PowerCoefficients(
        idle_w=140.0,
        tensor_w={"float16": 983.4},
        memory_w=160.0,
        shared_w=60.0,
    ),
    gemm_efficiency={"float16": 0.5765},
    ramp_chunks=10.0,
)

#: AMD Instinct MI300A: same architecture as MI300X with fewer accelerator
#: complex dies; the paper notes the optimal tuning parameters are identical.
MI300A = _spec(
    name="MI300A",
    arch=Architecture.CDNA3,
    n_sm=228,
    clock_mhz=2100.0,
    sustained_clock_fraction=0.967,
    tensor_peak_tops={"float16": 981.0},
    fp32_tflops=122.6,
    fp32_efficiency=0.50,
    mem_bandwidth_gbs=5300.0,
    mem_efficiency=0.80,
    mem_bytes=128 * 2**30,
    smem_per_sm_bytes=64 * 1024,
    l2_bytes=256 * 2**20,
    max_blocks_per_sm=16,
    tdp_w=760.0,
    power=PowerCoefficients(
        idle_w=130.0,
        tensor_w={"float16": 879.6},
        memory_w=150.0,
        shared_w=55.0,
    ),
    gemm_efficiency={"float16": 0.6066},
    ramp_chunks=10.0,
)

#: Catalog in the order used throughout the paper's tables.
GPU_CATALOG: dict[str, GPUSpec] = {
    spec.name: spec for spec in (AD4000, A100, GH200, W7700, MI210, MI300X, MI300A)
}

#: GPUs with 1-bit tensor-core support (NVIDIA only).
INT1_GPUS: tuple[str, ...] = tuple(
    name for name, spec in GPU_CATALOG.items() if spec.caps.supports_precision("int1")
)


def get_spec(name: str) -> GPUSpec:
    """Look up a GPU by catalog name (case-insensitive)."""
    for key, spec in GPU_CATALOG.items():
        if key.lower() == name.lower():
            return spec
    raise DeviceError(f"unknown GPU {name!r}; known: {', '.join(GPU_CATALOG)}")
