"""Kernel cost records produced by the analytical timing model.

Every kernel launch on a simulated :class:`~repro.gpusim.device.Device`
yields a :class:`KernelCost` describing how long it ran, why (which resource
bound it), how much data it moved, and how much energy it consumed. The
benchmark harness, PMT sensors, and roofline analysis all consume these
records instead of wall-clock time.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Bound(enum.Enum):
    """The limiting resource of a kernel execution (roofline vocabulary)."""

    COMPUTE = "compute"
    MEMORY = "memory"
    SHARED = "shared"
    LAUNCH = "launch"


@dataclass(frozen=True)
class KernelCost:
    """Cost of one kernel launch on the simulated device.

    Attributes
    ----------
    name:
        Kernel identity, e.g. ``"gemm_float16"`` or ``"pack_bits"``.
    time_s:
        Predicted execution time in seconds.
    useful_ops:
        Application-level operations performed (the paper counts
        ``8 * M * N * K`` for a complex GEMM, §IV-A).
    issued_ops:
        Operations actually issued to the tensor pipes, including padding
        waste and instruction doubling (AND-mode int1 issues 2x, §III-E).
    dram_bytes:
        Bytes moved to/from device global memory.
    smem_bytes:
        Bytes moved through shared memory / LDS.
    bound:
        Which resource limited the execution time.
    power_w:
        Average power draw during the kernel.
    energy_j:
        ``power_w * time_s``.
    detail:
        Free-form numbers for reports (component times, utilizations...).
    """

    name: str
    time_s: float
    useful_ops: float
    issued_ops: float
    dram_bytes: float
    smem_bytes: float
    bound: Bound
    power_w: float
    energy_j: float
    detail: dict[str, float] = field(default_factory=dict)

    @property
    def ops_per_second(self) -> float:
        """Useful-operation throughput (the paper's TOPs/s metric)."""
        return self.useful_ops / self.time_s if self.time_s > 0 else 0.0

    @property
    def ops_per_joule(self) -> float:
        """Energy efficiency (the paper's TOPs/J metric)."""
        return self.useful_ops / self.energy_j if self.energy_j > 0 else 0.0

    @property
    def arithmetic_intensity(self) -> float:
        """Useful ops per DRAM byte — x-axis of the paper's Fig 3."""
        return self.useful_ops / self.dram_bytes if self.dram_bytes > 0 else float("inf")


def combine_costs(name: str, costs: list[KernelCost]) -> KernelCost:
    """Aggregate sequentially executed kernel costs into one record.

    Time and energy add; throughput is recomputed from the totals; the bound
    is taken from the component that contributed the most time.
    """
    if not costs:
        raise ValueError("combine_costs needs at least one cost")
    time_s = sum(c.time_s for c in costs)
    energy = sum(c.energy_j for c in costs)
    dominant = max(costs, key=lambda c: c.time_s)
    return KernelCost(
        name=name,
        time_s=time_s,
        useful_ops=sum(c.useful_ops for c in costs),
        issued_ops=sum(c.issued_ops for c in costs),
        dram_bytes=sum(c.dram_bytes for c in costs),
        smem_bytes=sum(c.smem_bytes for c in costs),
        bound=dominant.bound,
        power_w=energy / time_s if time_s > 0 else 0.0,
        energy_j=energy,
        detail={"n_kernels": float(len(costs))},
    )
