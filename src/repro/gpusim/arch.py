"""GPU architecture capability tables.

Encodes the architecture-level facts the paper relies on:

* which WMMA fragment layouts exist per precision (paper §III-A): float16
  uses 16x16x16 everywhere; 1-bit uses 8x8x128 through WMMA and 16x8x256
  only through an inline-PTX extension;
* 1-bit matrix values exist on NVIDIA only (§II: "The only exception is
  1-bit precision, which is only supported on NVIDIA GPUs");
* the XOR 1-bit multiply op is deprecated as of Hopper and emulated in
  software with AND + boolean logic, which makes it up to ~5x slower
  (§III-A, §III-E);
* asynchronous global->shared copies exist on NVIDIA Ampere and later;
  AMD GPUs do not support them, so the number of pipeline buffers is
  forced to one there (§III-C);
* the WMMA interface reaches only ~65% of peak on Hopper; WGMMA would be
  required for full rate (§III-A, ref [5]).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import UnsupportedFragmentError, UnsupportedPrecisionError


class Vendor(enum.Enum):
    """GPU vendor; decides terminology (tensor cores vs matrix cores)."""

    NVIDIA = "nvidia"
    AMD = "amd"


class Architecture(enum.Enum):
    """GPU micro-architectures used in the paper's evaluation."""

    ADA = "ada"          # NVIDIA RTX 4000 Ada
    AMPERE = "ampere"    # NVIDIA A100
    HOPPER = "hopper"    # NVIDIA GH200 (H100 die)
    RDNA3 = "rdna3"      # AMD Radeon Pro W7700
    CDNA2 = "cdna2"      # AMD Instinct MI210
    CDNA3 = "cdna3"      # AMD Instinct MI300X / MI300A

    @property
    def vendor(self) -> Vendor:
        if self in (Architecture.ADA, Architecture.AMPERE, Architecture.HOPPER):
            return Vendor.NVIDIA
        return Vendor.AMD


class BitOp(enum.Enum):
    """Bitwise multiply op of the 1-bit tensor-core MMA (paper §III-D/E)."""

    XOR = "xor"
    AND = "and"


@dataclass(frozen=True)
class FragmentShape:
    """A WMMA matrix fragment layout m x n x k (paper Table I column 2)."""

    m: int
    n: int
    k: int

    def __str__(self) -> str:  # e.g. "16x16x16"
        return f"{self.m}x{self.n}x{self.k}"

    @property
    def ops(self) -> int:
        """Real-valued operations per MMA instruction (2 per FMA)."""
        return 2 * self.m * self.n * self.k


#: float16 multiply / float32 accumulate fragment (all seven GPUs).
FRAG_FLOAT16_16x16x16 = FragmentShape(16, 16, 16)
#: 1-bit fragment reachable through the portable WMMA interface.
FRAG_INT1_8x8x128 = FragmentShape(8, 8, 128)
#: 1-bit fragment only reachable through inline PTX; ccglib and cudapeak
#: carry a WMMA extension for it (paper §III-A).
FRAG_INT1_16x8x256 = FragmentShape(16, 8, 256)


@dataclass(frozen=True)
class ArchCapabilities:
    """Static capability set for one architecture."""

    arch: Architecture
    warp_size: int
    #: supported fragment layouts per precision name ("float16" / "int1").
    fragments: dict[str, tuple[FragmentShape, ...]]
    #: relative MMA issue-rate of each fragment layout (1.0 = full rate).
    fragment_rate: dict[str, dict[FragmentShape, float]]
    #: throughput factor of the WMMA interface relative to the hardware
    #: maximum (0.65 on Hopper where only WGMMA reaches peak).
    wmma_interface_factor: float
    #: True if cp.async-style global->shared copies are available.
    async_copies: bool
    #: available 1-bit multiply ops; empty when int1 is unsupported.
    bit_ops: tuple[BitOp, ...]
    #: relative rate of XOR vs AND; on Hopper XOR is software-emulated.
    xor_rate_factor: float = 1.0
    #: max registers per thread usable before spilling (tuner restriction).
    max_registers_per_thread: int = 255
    #: 32-bit registers per SM/CU register file.
    registers_per_sm: int = 65536
    #: max resident warps per SM/CU (latency-hiding budget).
    max_warps_per_sm: int = 64
    #: resident warps needed per SM to hide pipeline latency.
    latency_warps: int = 8
    #: max threads per block.
    max_threads_per_block: int = 1024
    #: effective shared-memory (LDS) bytes readable per clock per SM/CU for
    #: fragment loads (below the raw bank width: ldmatrix issue + conflicts).
    smem_bytes_per_clock: int = 64
    notes: str = ""

    def supports_precision(self, precision: str) -> bool:
        return precision in self.fragments and bool(self.fragments[precision])

    def require_precision(self, precision: str) -> None:
        if not self.supports_precision(precision):
            raise UnsupportedPrecisionError(
                f"{self.arch.value} does not support {precision} matrix values"
                + (" (1-bit is NVIDIA-only)" if precision == "int1" else "")
            )

    def require_fragment(self, precision: str, frag: FragmentShape) -> None:
        self.require_precision(precision)
        if frag not in self.fragments[precision]:
            raise UnsupportedFragmentError(
                f"{self.arch.value} has no {frag} fragment for {precision}"
            )

    def rate_factor(self, precision: str, frag: FragmentShape, bit_op: BitOp | None) -> float:
        """Combined issue-rate factor for a fragment layout and bit op.

        Returns the fraction of the architecture's peak MMA rate obtained
        when issuing this fragment layout with this multiply op, reproducing
        the Table I structure (small 1-bit layout is half rate on Ampere,
        ~0.38x on Hopper; XOR costs ~4x on Hopper due to software emulation).
        """
        self.require_fragment(precision, frag)
        factor = self.fragment_rate[precision][frag]
        if precision == "int1":
            if bit_op is None:
                raise UnsupportedPrecisionError("int1 MMA requires a BitOp")
            if bit_op not in self.bit_ops:
                raise UnsupportedPrecisionError(
                    f"{self.arch.value} does not implement the {bit_op.value} bit op"
                )
            if bit_op is BitOp.XOR:
                factor *= self.xor_rate_factor
        return factor

    @property
    def preferred_bit_op(self) -> BitOp | None:
        """The bit op ccglib auto-selects (paper §III-E): AND on Hopper and
        newer (XOR is emulated there), XOR otherwise."""
        if not self.bit_ops:
            return None
        if self.xor_rate_factor < 1.0 and BitOp.AND in self.bit_ops:
            return BitOp.AND
        return BitOp.XOR if BitOp.XOR in self.bit_ops else self.bit_ops[0]


def _nvidia_caps(
    arch: Architecture,
    *,
    wmma_factor: float,
    small_b1_rate: float,
    xor_rate: float,
    smem_bpc: int = 64,
) -> ArchCapabilities:
    return ArchCapabilities(
        arch=arch,
        warp_size=32,
        fragments={
            "float16": (FRAG_FLOAT16_16x16x16,),
            "int1": (FRAG_INT1_8x8x128, FRAG_INT1_16x8x256),
        },
        fragment_rate={
            "float16": {FRAG_FLOAT16_16x16x16: 1.0},
            "int1": {
                FRAG_INT1_8x8x128: small_b1_rate,
                FRAG_INT1_16x8x256: 1.0,
            },
        },
        wmma_interface_factor=wmma_factor,
        async_copies=True,
        bit_ops=(BitOp.XOR, BitOp.AND),
        xor_rate_factor=xor_rate,
        smem_bytes_per_clock=smem_bpc,
    )


def _amd_caps(arch: Architecture, max_warps: int = 32) -> ArchCapabilities:
    return ArchCapabilities(
        arch=arch,
        warp_size=64,
        fragments={"float16": (FRAG_FLOAT16_16x16x16,)},
        fragment_rate={"float16": {FRAG_FLOAT16_16x16x16: 1.0}},
        wmma_interface_factor=1.0,
        async_copies=False,
        bit_ops=(),
        xor_rate_factor=1.0,
        max_registers_per_thread=512,
        registers_per_sm=131072,
        max_warps_per_sm=max_warps,
        latency_warps=6,
        smem_bytes_per_clock=64,
        notes="matrix cores; no 1-bit support; no async global->shared copies",
    )


#: Capability table keyed by architecture. The numeric rate factors are
#: derived from paper Table I: on Ampere the 8x8x128 layout runs at half the
#: 16x8x256 rate (2465 vs 4942 TOPs/s); on Ada both run at full rate (1847 vs
#: 1865); on Hopper the small layout reaches ~0.38x (3894 vs 10276) and XOR is
#: ~4.2x slower than AND because the instruction was removed from hardware.
CAPABILITIES: dict[Architecture, ArchCapabilities] = {
    Architecture.ADA: _nvidia_caps(
        Architecture.ADA, wmma_factor=1.0, small_b1_rate=0.99, xor_rate=1.0
    ),
    Architecture.AMPERE: _nvidia_caps(
        Architecture.AMPERE, wmma_factor=1.0, small_b1_rate=0.50, xor_rate=1.0
    ),
    Architecture.HOPPER: _nvidia_caps(
        Architecture.HOPPER, wmma_factor=0.65, small_b1_rate=0.379, xor_rate=0.2297
    ),
    Architecture.RDNA3: _amd_caps(Architecture.RDNA3),
    Architecture.CDNA2: _amd_caps(Architecture.CDNA2),
    Architecture.CDNA3: _amd_caps(Architecture.CDNA3, max_warps=32),
}


def capabilities(arch: Architecture) -> ArchCapabilities:
    """Look up the capability table of an architecture."""
    return CAPABILITIES[arch]
