"""Reproduction of "The Tensor-Core Beamformer" (IPDPS 2025, arXiv:2505.03269).

Top-level convenience exports; see the subpackages for the full API:

* :mod:`repro.gpusim` — simulated GPU substrate (7-device catalog);
* :mod:`repro.ccglib` — the complex tensor-core GEMM library;
* :mod:`repro.cudapeak` — tensor-core micro-benchmarks (Table I);
* :mod:`repro.kerneltuner` — auto-tuning framework (Fig 2, Table III);
* :mod:`repro.pmt` — power measurement toolkit;
* :mod:`repro.roofline` — roofline analysis (Fig 3);
* :mod:`repro.tcbf` — the unified Tensor-Core Beamformer library (plans,
  streaming execution, multi-device sharding);
* :mod:`repro.apps.ultrasound` — computational ultrasound imaging (Figs 5-6);
* :mod:`repro.apps.radioastronomy` — LOFAR beamforming (Fig 7);
* :mod:`repro.bench` — the experiment harness regenerating every table/figure.
"""

from repro.ccglib import Gemm, GemmResult, Precision, gemm_once
from repro.gpusim import Device, ExecutionMode, GPU_CATALOG, get_spec
from repro.tcbf import (
    BeamformerPlan,
    BeamformResult,
    BlockExecutor,
    ShardedBeamformer,
    ShardResult,
    StreamStats,
)

__version__ = "1.2.0"

__all__ = [
    "Gemm",
    "GemmResult",
    "Precision",
    "gemm_once",
    "Device",
    "ExecutionMode",
    "GPU_CATALOG",
    "get_spec",
    "BeamformerPlan",
    "BeamformResult",
    "BlockExecutor",
    "StreamStats",
    "ShardedBeamformer",
    "ShardResult",
    "__version__",
]
