"""Array geometry and geometric delays for LOFAR-style beamforming.

LOFAR consists of "tens of geographically distributed stations across
Europe" (paper §V-B), each containing many individual antennas. We model
station positions on a plane (east, north) with a dense core plus remote
stations at logarithmically increasing distances — the characteristic LOFAR
layout — and antennas scattered within a station aperture.

Directions are expressed as direction cosines (l, m) relative to the
pointing centre; for one beamformed field of view these are small and the
planar (w-term-free) delay approximation holds::

    tau(station, l, m) = (east * l + north * m) / c
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ShapeError
from repro.util.rng import derive_seed, make_rng

#: speed of light, m/s.
SPEED_OF_LIGHT = 299_792_458.0


@dataclass(frozen=True)
class ArrayLayout:
    """Station positions in metres on the (east, north) plane."""

    positions: np.ndarray  # (n_stations, 2)

    @property
    def n_stations(self) -> int:
        return self.positions.shape[0]

    def baselines(self) -> np.ndarray:
        """(n, n) pairwise distances; longest sets angular resolution."""
        diff = self.positions[:, None, :] - self.positions[None, :, :]
        return np.linalg.norm(diff, axis=-1)


def lofar_like_layout(
    n_stations: int = 48,
    core_fraction: float = 0.5,
    core_radius_m: float = 2_000.0,
    max_radius_m: float = 80_000.0,
    seed: int = 11,
) -> ArrayLayout:
    """A dense-core + logarithmic-arm layout reminiscent of LOFAR.

    The typical Dutch LOFAR beamforming configuration combines 48 stations
    (paper: "the typical LOFAR configuration of 48 stations").
    """
    rng = make_rng(derive_seed(seed, "layout"))
    n_core = max(1, int(n_stations * core_fraction))
    n_remote = n_stations - n_core
    core_r = core_radius_m * np.sqrt(rng.random(n_core))
    core_phi = rng.uniform(0, 2 * np.pi, n_core)
    core = np.column_stack([core_r * np.cos(core_phi), core_r * np.sin(core_phi)])
    if n_remote > 0:
        remote_r = np.geomspace(core_radius_m * 1.5, max_radius_m, n_remote)
        remote_phi = rng.uniform(0, 2 * np.pi, n_remote)
        remote = np.column_stack([remote_r * np.cos(remote_phi), remote_r * np.sin(remote_phi)])
        positions = np.vstack([core, remote])
    else:
        positions = core
    return ArrayLayout(positions=positions)


def station_antenna_layout(
    n_antennas: int = 48, aperture_m: float = 30.0, seed: int = 12
) -> np.ndarray:
    """Random antenna positions within one station's aperture (metres)."""
    rng = make_rng(derive_seed(seed, "antennas"))
    r = aperture_m / 2.0 * np.sqrt(rng.random(n_antennas))
    phi = rng.uniform(0, 2 * np.pi, n_antennas)
    return np.column_stack([r * np.cos(phi), r * np.sin(phi)])


def geometric_delay(positions: np.ndarray, l: float, m: float) -> np.ndarray:
    """Plane-wave arrival delay per element for direction cosines (l, m).

    ``positions`` is (n, 2) in metres; the result is seconds, one per
    element. Positive delay means the wavefront reaches that element later.
    """
    positions = np.asarray(positions)
    if positions.ndim != 2 or positions.shape[1] != 2:
        raise ShapeError(f"positions must be (n, 2), got {positions.shape}")
    return (positions[:, 0] * l + positions[:, 1] * m) / SPEED_OF_LIGHT


def phase_rotation(f_hz: np.ndarray, delay_s: np.ndarray) -> np.ndarray:
    """exp(-2*pi*i*f*tau) for every (frequency, element) pair -> (F, n)."""
    f_hz = np.atleast_1d(np.asarray(f_hz, dtype=np.float64))
    return np.exp(-2j * np.pi * f_hz[:, None] * np.asarray(delay_s)[None, :]).astype(np.complex64)
