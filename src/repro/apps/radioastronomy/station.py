"""Station-level (FPGA) beamformer.

"These signals are initially processed by a station beamformer, implemented
on Field-Programmable Gate Arrays (FPGAs) within each station. The station
beamformer combines the signals from all antennas in the station into a
coherent station beam ... The resulting data, known as beamlet data, is then
transmitted to a central beamformer." (paper §V-B)

This module reproduces that first stage functionally: per-antenna time
series are channelized (polyphase filterbank) and summed with steering
phases toward the station pointing. It runs at test scale — the central
TCBF consumes station-level data generated directly by
:mod:`repro.apps.radioastronomy.sky` for larger runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.apps.radioastronomy.channelizer import PolyphaseFilterbank
from repro.apps.radioastronomy.coordinates import (
    geometric_delay,
    station_antenna_layout,
)
from repro.errors import ShapeError
from repro.util.rng import derive_seed, make_rng


@dataclass(frozen=True)
class StationConfig:
    """One station: antenna layout plus channelizer settings."""

    n_antennas: int = 24
    aperture_m: float = 30.0
    n_channels: int = 16
    n_taps: int = 4
    seed: int = 5

    def antenna_positions(self) -> np.ndarray:
        return station_antenna_layout(self.n_antennas, self.aperture_m, self.seed)


class StationBeamformer:
    """FPGA-stage beamformer: antennas -> channelized station beamlets."""

    def __init__(self, config: StationConfig, f_centre_hz: float, bandwidth_hz: float):
        self.config = config
        self.f_centre_hz = f_centre_hz
        self.bandwidth_hz = bandwidth_hz
        self.pfb = PolyphaseFilterbank(config.n_channels, config.n_taps)
        self._antennas = config.antenna_positions()

    def channel_frequencies(self) -> np.ndarray:
        return self.pfb.channel_frequencies(self.f_centre_hz, self.bandwidth_hz)

    def form_station_beam(
        self, antenna_timeseries: np.ndarray, pointing_l: float, pointing_m: float
    ) -> np.ndarray:
        """Channelize every antenna and phase-sum toward the pointing.

        ``antenna_timeseries``: (n_antennas, T) complex baseband. Returns
        beamlet data (n_channels, T') — one coherent station beam.
        """
        if antenna_timeseries.shape[0] != self.config.n_antennas:
            raise ShapeError(
                f"expected {self.config.n_antennas} antenna streams, got "
                f"{antenna_timeseries.shape[0]}"
            )
        channels = self.pfb.channelize(antenna_timeseries)  # (A, C, T')
        tau = geometric_delay(self._antennas, pointing_l, pointing_m)
        freqs = self.channel_frequencies()
        # Align: conjugate of the arrival phase per (channel, antenna).
        weights = np.exp(2j * np.pi * freqs[:, None] * tau[None, :]).astype(np.complex64)
        beam = np.einsum("ca,act->ct", weights, channels) / self.config.n_antennas
        return beam.astype(np.complex64)

    def simulate_antenna_source(
        self, source_l: float, source_m: float, n_samples: int, flux: float = 1.0, seed: int = 0
    ) -> np.ndarray:
        """Plane-wave noise signal from one direction at every antenna.

        Baseband model: the (narrowband) delay appears as a phase at the
        centre frequency plus a sub-sample delay we approximate by that
        phase — adequate for a 30 m aperture at LOFAR bands.
        """
        rng = make_rng(derive_seed(seed, "station-source"))
        signal = (rng.normal(size=n_samples) + 1j * rng.normal(size=n_samples)) * np.sqrt(
            flux / 2.0
        )
        tau = geometric_delay(self._antennas, source_l, source_m)
        phases = np.exp(-2j * np.pi * self.f_centre_hz * tau)
        return (phases[:, None] * signal[None, :]).astype(np.complex64)

    def beam_gain(self, pointing: tuple[float, float], source: tuple[float, float]) -> float:
        """Analytic station-beam power response for a source direction."""
        tau_p = geometric_delay(self._antennas, *pointing)
        tau_s = geometric_delay(self._antennas, *source)
        af = np.exp(2j * np.pi * self.f_centre_hz * (tau_p - tau_s)).mean()
        return float(np.abs(af) ** 2)
