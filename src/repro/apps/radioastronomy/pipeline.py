"""End-to-end LOFAR observation pipeline.

Wires the substrates together the way the real instrument does (paper
§V-B): sky -> station signals -> central tensor-core beamformer -> tied
beams -> pulsar search. Used by the examples and the integration tests;
the Fig 7 performance sweep lives in :mod:`repro.bench.fig7`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.apps.radioastronomy.beamformer import LOFARBeamformer
from repro.apps.radioastronomy.coordinates import ArrayLayout, lofar_like_layout
from repro.apps.radioastronomy.pulsar import PulsarDetection, search_beams
from repro.apps.radioastronomy.sky import Observation, PointSource, Pulsar, generate_station_data
from repro.apps.radioastronomy.weights import beam_grid, steering_weights
from repro.ccglib.precision import Precision
from repro.gpusim.device import Device
from repro.gpusim.timing import KernelCost


@dataclass
class ObservationResult:
    """Everything one synthetic observation produced."""

    observation: Observation
    beam_directions: np.ndarray
    #: (n_channels, n_beams, n_samples) complex voltage beams.
    beams: np.ndarray
    cost: KernelCost
    detections: list[PulsarDetection] = field(default_factory=list)

    def beam_powers(self) -> np.ndarray:
        """(n_beams, n_channels, n_samples) power cube for post-processing."""
        return np.transpose(np.abs(self.beams) ** 2, (1, 0, 2))

    def brightest_beam(self) -> int:
        return int(self.beam_powers().mean(axis=(1, 2)).argmax())


def run_observation(
    device: Device,
    sources: list[PointSource],
    n_stations: int = 24,
    n_beams: int = 25,
    n_channels: int = 8,
    n_samples: int = 256,
    fov_radius: float = 0.02,
    precision: Precision = Precision.FLOAT16,
    search_pulsars: bool = True,
    seed: int = 99,
) -> ObservationResult:
    """Simulate and beamform one observation on a functional device."""
    layout = lofar_like_layout(n_stations, seed=seed)
    obs = Observation(layout=layout, n_channels=n_channels, n_samples=n_samples, seed=seed)
    data = generate_station_data(obs, sources)  # (C, S, T)
    dirs = beam_grid(n_beams, fov_radius=fov_radius)
    weights = steering_weights(layout, obs.channel_frequencies(), dirs)  # (C, B, S)
    beamformer = LOFARBeamformer(
        device,
        n_beams=n_beams,
        n_stations=n_stations,
        n_samples=n_samples,
        n_channels=n_channels,
        precision=precision,
    )
    out = beamformer.form_beams(weights, data)
    result = ObservationResult(
        observation=obs, beam_directions=dirs, beams=out.beams, cost=out.cost
    )
    pulsars = [s for s in sources if isinstance(s, Pulsar)]
    if search_pulsars and pulsars:
        psr = pulsars[0]
        result.detections = search_beams(
            result.beam_powers(),
            dm_pc_cm3=psr.dm_pc_cm3,
            period_s=psr.period_s,
            channel_frequencies_hz=obs.channel_frequencies(),
            sample_time_s=obs.sample_time_s,
        )
    return result
