"""Pulsar post-processing: dedispersion, folding, detection.

"Beamforming is used to search for pulsars or Fast Radio Bursts in radio
astronomy" (paper §II): the beamformed dynamic spectrum of each tied-array
beam is dedispersed (undoing the frequency-dependent interstellar delay),
summed over frequency, and folded at the pulsar period; a pulsar reveals
itself as a significant peak in the folded profile of the beam pointing at
it — and not in off-source beams. This is the end-to-end science check of
the LOFAR pipeline reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.radioastronomy.sky import DISPERSION_MS
from repro.errors import ShapeError


def dedisperse(
    dynamic_spectrum: np.ndarray,
    dm_pc_cm3: float,
    channel_frequencies_hz: np.ndarray,
    sample_time_s: float,
    f_ref_hz: float | None = None,
) -> np.ndarray:
    """Incoherent dedispersion: shift every channel by its dispersion delay.

    ``dynamic_spectrum`` is (n_channels, n_samples) power. Shifts are
    rounded to whole samples (incoherent dedispersion); samples wrapped
    around the end are valid because our synthetic pulse train is periodic.
    """
    if dynamic_spectrum.ndim != 2:
        raise ShapeError(f"expected (C, T) dynamic spectrum, got {dynamic_spectrum.shape}")
    freqs = np.asarray(channel_frequencies_hz, dtype=np.float64)
    if freqs.shape[0] != dynamic_spectrum.shape[0]:
        raise ShapeError("one frequency per channel required")
    f_ref = f_ref_hz if f_ref_hz is not None else float(freqs.max())
    delays = DISPERSION_MS * 1e-3 * dm_pc_cm3 * ((freqs / 1e9) ** -2 - (f_ref / 1e9) ** -2)
    out = np.empty_like(dynamic_spectrum)
    for ch, delay in enumerate(delays):
        shift = int(np.rint(delay / sample_time_s))
        out[ch] = np.roll(dynamic_spectrum[ch], -shift)
    return out


def fold(series: np.ndarray, period_s: float, sample_time_s: float, n_bins: int = 32) -> np.ndarray:
    """Fold a time series at a period into a pulse profile of ``n_bins``."""
    if series.ndim != 1:
        raise ShapeError(f"expected a 1D series, got {series.shape}")
    t = np.arange(series.shape[0]) * sample_time_s
    phase_bins = ((t / period_s) % 1.0 * n_bins).astype(int)
    profile = np.zeros(n_bins)
    counts = np.zeros(n_bins)
    np.add.at(profile, phase_bins, series)
    np.add.at(counts, phase_bins, 1.0)
    counts[counts == 0] = 1.0
    return profile / counts


def profile_snr(profile: np.ndarray, on_fraction: float = 0.25) -> float:
    """Pulse significance: peak over off-pulse mean, in off-pulse sigmas.

    The off-pulse region is the ``1 - on_fraction`` quietest bins.
    """
    if profile.ndim != 1 or profile.size < 4:
        raise ShapeError("profile must be 1D with at least 4 bins")
    order = np.argsort(profile)
    n_off = max(2, int(profile.size * (1.0 - on_fraction)))
    off = profile[order[:n_off]]
    sigma = float(off.std())
    if sigma == 0.0:
        sigma = 1e-12
    return (float(profile.max()) - float(off.mean())) / sigma


@dataclass(frozen=True)
class PulsarDetection:
    """Outcome of a folded-profile search in one beam."""

    beam_index: int
    snr: float
    profile: np.ndarray

    @property
    def detected(self) -> bool:
        return self.snr >= 5.0  # the conventional radio-transient threshold


def search_beams(
    beam_powers: np.ndarray,
    dm_pc_cm3: float,
    period_s: float,
    channel_frequencies_hz: np.ndarray,
    sample_time_s: float,
    n_bins: int = 32,
) -> list[PulsarDetection]:
    """Dedisperse + fold every beam of a (B, C, T) power cube."""
    if beam_powers.ndim != 3:
        raise ShapeError(f"expected (B, C, T) beam powers, got {beam_powers.shape}")
    detections = []
    for b in range(beam_powers.shape[0]):
        dedispersed = dedisperse(beam_powers[b], dm_pc_cm3, channel_frequencies_hz, sample_time_s)
        series = dedispersed.sum(axis=0)
        profile = fold(series, period_s, sample_time_s, n_bins)
        detections.append(PulsarDetection(beam_index=b, snr=profile_snr(profile), profile=profile))
    return detections
