"""Sky models: point sources and pulsars generating station data.

The substitution for real LOFAR beamlet recordings (DESIGN.md §2): synthetic
channelized station signals with known ground truth, so tests can verify the
central beamformer points where it should. Radio emission is modelled as
band-limited complex Gaussian noise (the physically correct statistics),
with a pulsar being noise modulated by a periodic pulse envelope whose
arrival time is dispersed across frequency by the interstellar medium::

    t_delay(f) = 4.149 ms * DM * [(f_ref/GHz)^-2 - (f/GHz)^-2]

Station signals carry the plane-wave phase of each source's direction, which
is exactly what the central (coherent) beamformer undoes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.apps.radioastronomy.coordinates import ArrayLayout, geometric_delay
from repro.errors import ShapeError
from repro.util.rng import derive_seed, make_rng

#: dispersion constant in ms GHz^2 / (pc cm^-3).
DISPERSION_MS = 4.149


@dataclass(frozen=True)
class PointSource:
    """A steady source of band-limited Gaussian noise."""

    l: float
    m: float
    flux: float = 1.0
    label: str = "source"

    def envelope(self, t_s: np.ndarray, f_hz: float) -> np.ndarray:
        """Emission power envelope over time (steady: all ones)."""
        return np.ones_like(t_s)


@dataclass(frozen=True)
class Pulsar(PointSource):
    """A pulsing source with interstellar dispersion.

    ``period_s`` and ``duty_cycle`` define the pulse train; ``dm_pc_cm3``
    disperses the arrival time across the band relative to ``f_ref_hz``.
    """

    period_s: float = 0.1
    duty_cycle: float = 0.08
    dm_pc_cm3: float = 30.0
    f_ref_hz: float = 150e6
    label: str = "pulsar"

    def dispersion_delay_s(self, f_hz: float) -> float:
        """Arrival delay at ``f_hz`` relative to the reference frequency."""
        f_ghz = f_hz / 1e9
        ref_ghz = self.f_ref_hz / 1e9
        return DISPERSION_MS * 1e-3 * self.dm_pc_cm3 * (f_ghz**-2 - ref_ghz**-2)

    def envelope(self, t_s: np.ndarray, f_hz: float) -> np.ndarray:
        """Pulse-train power envelope including dispersion delay."""
        phase = ((t_s - self.dispersion_delay_s(f_hz)) / self.period_s) % 1.0
        return (phase < self.duty_cycle).astype(np.float64)


@dataclass(frozen=True)
class Observation:
    """One synthetic observation's static parameters."""

    layout: ArrayLayout
    f_centre_hz: float = 150e6
    bandwidth_hz: float = 3.2e6
    n_channels: int = 16
    n_samples: int = 256
    sample_time_s: float = 5e-6  # per channelized sample (1/channel BW)
    noise_level: float = 1.0
    seed: int = 99

    def channel_frequencies(self) -> np.ndarray:
        offsets = np.fft.fftfreq(self.n_channels) * self.bandwidth_hz
        return self.f_centre_hz + offsets


def generate_station_data(obs: Observation, sources: list[PointSource]) -> np.ndarray:
    """Channelized station signals X of shape (n_channels, n_stations, n_samples).

    For each source s, channel ch, station st::

        X += sqrt(flux) * a_s(ch, t) * exp(-2*pi*i * f_ch * tau_st(s))

    where ``a_s`` is unit-variance complex Gaussian noise gated by the
    source's emission envelope, and independent receiver noise of RMS
    ``noise_level`` is added per (station, channel, sample).
    """
    rng = make_rng(derive_seed(obs.seed, "station-data"))
    freqs = obs.channel_frequencies()
    n_ch, n_st, n_t = obs.n_channels, obs.layout.n_stations, obs.n_samples
    t = np.arange(n_t) * obs.sample_time_s
    data = np.zeros((n_ch, n_st, n_t), dtype=np.complex64)
    for source in sources:
        tau = geometric_delay(obs.layout.positions, source.l, source.m)
        for ch, f in enumerate(freqs):
            amp = rng.normal(size=n_t) + 1j * rng.normal(size=n_t)
            amp *= np.sqrt(source.flux / 2.0) * np.sqrt(source.envelope(t, f))
            steering = np.exp(-2j * np.pi * f * tau)
            data[ch] += np.outer(steering, amp).astype(np.complex64)
    noise = rng.normal(scale=obs.noise_level / np.sqrt(2.0), size=(2, n_ch, n_st, n_t))
    data += (noise[0] + 1j * noise[1]).astype(np.complex64)
    return data


def expected_beam_power(
    obs: Observation, source: PointSource, beam_l: float, beam_m: float
) -> float:
    """Coherent-beam response of a steady source in a given beam direction.

    Normalized array factor |sum_st exp(i phi_st)|^2 / n^2 evaluated at the
    centre frequency; tests compare measured beam powers against this.
    """
    tau_src = geometric_delay(obs.layout.positions, source.l, source.m)
    tau_beam = geometric_delay(obs.layout.positions, beam_l, beam_m)
    phase = 2.0 * np.pi * obs.f_centre_hz * (tau_beam - tau_src)
    af = np.exp(1j * phase).mean()
    return float(source.flux * np.abs(af) ** 2)
