"""Polyphase filterbank channelizer.

LOFAR station processing splits the digitized band into narrow channels
before beamforming (the paper's central beamformer batches over
"polarizations and channels"). A critically sampled polyphase filterbank
(PFB) is the standard instrument: a windowed-sinc prototype filter decomposed
over ``n_taps`` polyphase branches followed by an FFT. Compared to a plain
FFT filterbank it suppresses spectral leakage by tens of dB, which tests
verify directly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.signal import firwin

from repro.errors import ShapeError


@dataclass(frozen=True)
class PolyphaseFilterbank:
    """Critically sampled PFB with ``n_channels`` channels.

    The prototype lowpass is a Hamming-windowed sinc of length
    ``n_channels * n_taps`` with cutoff at the channel half-width.
    """

    n_channels: int
    n_taps: int = 8

    def prototype(self) -> np.ndarray:
        """The prototype filter coefficients, normalized to unit DC gain."""
        n = self.n_channels * self.n_taps
        h = firwin(n, cutoff=1.0 / self.n_channels, window="hamming")
        return (h / h.sum()).astype(np.float64)

    def channelize(self, x: np.ndarray) -> np.ndarray:
        """Split a complex time series into channels.

        ``x`` has shape (..., T) with T a multiple of
        ``n_channels * n_taps``; the output is (..., n_channels, T') with
        ``T' = T / n_channels - (n_taps - 1)`` spectra (valid-mode: only
        windows fully covered by input are produced).
        """
        x = np.asarray(x)
        c, p = self.n_channels, self.n_taps
        t = x.shape[-1]
        if t % c != 0 or t // c < p:
            raise ShapeError(
                f"time axis {t} must be a multiple of n_channels={c} and at "
                f"least n_channels*n_taps={c * p}"
            )
        n_blocks = t // c
        n_out = n_blocks - (p - 1)
        h = self.prototype().reshape(p, c)
        blocks = x.reshape(x.shape[:-1] + (n_blocks, c))
        # Weighted sum over taps: y[t'] = sum_p h[p] * block[t' + p]
        out = np.zeros(x.shape[:-1] + (n_out, c), dtype=np.complex128)
        for tap in range(p):
            out += h[tap] * blocks[..., tap : tap + n_out, :]
        spectra = np.fft.fft(out, axis=-1)
        # (..., T', C) -> (..., C, T')
        return np.moveaxis(spectra, -1, -2).astype(np.complex64)

    def channel_frequencies(self, f_centre_hz: float, bandwidth_hz: float) -> np.ndarray:
        """Sky frequency of each channel for a band centred on ``f_centre_hz``."""
        offsets = np.fft.fftfreq(self.n_channels) * bandwidth_hz
        return f_centre_hz + offsets


def fft_filterbank(x: np.ndarray, n_channels: int) -> np.ndarray:
    """Plain FFT filterbank (no prototype filter): the leakage baseline."""
    x = np.asarray(x)
    t = x.shape[-1]
    if t % n_channels != 0:
        raise ShapeError(f"time axis {t} not a multiple of {n_channels}")
    blocks = x.reshape(x.shape[:-1] + (t // n_channels, n_channels))
    return np.moveaxis(np.fft.fft(blocks, axis=-1), -1, -2).astype(np.complex64)


def leakage_db(filterbank_output: np.ndarray, tone_channel: int) -> float:
    """Power ratio (dB) between the strongest off-tone channel and the tone.

    Used to verify PFB leakage suppression versus the plain FFT filterbank.
    ``filterbank_output`` has shape (C, T').
    """
    power = (np.abs(filterbank_output) ** 2).mean(axis=-1)
    tone = power[tone_channel]
    rest = np.delete(power, tone_channel)
    return 10.0 * np.log10(float(rest.max()) / float(tone))
