"""The LOFAR tensor-core beamformer: central coherent/incoherent stage.

"A LOFAR tensor-core beamformer is implemented using the 16-bit mode of
ccglib" (paper §V-B). The mapping onto the GEMM is the paper's exactly:
"M represents the number of beams ... N is the number of samples ... K
corresponds to the number of stations ... the product of the number of
polarizations and channels is the batch size."

The coherent path is a thin domain adapter over
:class:`repro.tcbf.BeamformerPlan`: streaming transpose/packing stages are
disabled because "data are typically already GPU-resident and remain on the
GPU for further computations" (§V-B), so the per-block cost is the GEMM
alone, and the operand scale is restored on the output (absolute beam
powers feed the pulsar search downstream).

Incoherent beamforming ("discards phase information and instead combines
the power from each station") is also provided: it is a memory-bound
reduction with no tensor-core benefit, which is why only the coherent path
goes through ccglib.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.ccglib.precision import Precision
from repro.ccglib.tuning import TuneParams
from repro.errors import ShapeError
from repro.gpusim.device import Device
from repro.gpusim.timing import Bound, KernelCost
from repro.tcbf import BeamformerPlan, BeamformResult

if TYPE_CHECKING:
    from repro.serve.workload import PipelineWorkload

#: Attribute-compatible alias: reads (``.beams``, ``.cost``, ``.tflops``)
#: work as before, but results are constructed by the TCBF plan, not by
#: callers — the old dataclass constructor signature is gone.
BeamformOutput = BeamformResult


class LOFARBeamformer:
    """Coherent tied-array beamformer on (simulated) tensor cores.

    Parameters follow the paper's benchmark configuration defaults:
    1024 beams, 1024 samples, 8..512 stations, batch 256 (channels x pols).
    """

    def __init__(
        self,
        device: Device,
        n_beams: int,
        n_stations: int,
        n_samples: int,
        n_channels: int,
        n_polarizations: int = 1,
        precision: Precision = Precision.FLOAT16,
        params: TuneParams | None = None,
        backend=None,
    ):
        self.device = device
        self.n_beams = n_beams
        self.n_stations = n_stations
        self.n_samples = n_samples
        self.n_channels = n_channels
        self.n_polarizations = n_polarizations
        self.precision = precision
        self.batch = n_channels * n_polarizations
        self._plan = BeamformerPlan(
            device,
            n_beams=n_beams,
            n_receivers=n_stations,
            n_samples=n_samples,
            batch=self.batch,
            precision=precision,
            params=params,
            include_transpose=False,
            include_packing=False,
            restore_output_scale=True,
            backend=backend,
            name="lofar_beamform",
        )

    @property
    def plan(self) -> BeamformerPlan:
        """The underlying TCBF plan (streaming/sharding entry point)."""
        return self._plan

    def predict_cost(self) -> KernelCost:
        """Cost of one beamforming block without executing (Fig 7 data).

        Only the matrix-multiplication component is considered, "as data
        are typically already GPU-resident and remain on the GPU for
        further computations" (paper §V-B).
        """
        return self._plan.predict_gemm_cost()

    def form_beams(
        self, weights: np.ndarray | None = None, data: np.ndarray | None = None
    ) -> BeamformResult:
        """Beamform one block: beams[b] = sum_st w[b, st] * X[st, t].

        ``weights``: (batch, n_beams, n_stations) complex;
        ``data``: (batch, n_stations, n_samples) complex. Required in
        functional mode; ignored in dry-run. Scaling, validation, and cost
        accounting all live in :class:`repro.tcbf.BeamformerPlan`.
        """
        return self._plan.execute(weights, data)


def service_workload(
    *,
    n_beams: int = 256,
    n_stations: int = 64,
    n_samples: int = 256,
    n_channels: int = 1,
    n_polarizations: int = 1,
    precision: Precision = Precision.FLOAT16,
    weights_version: int = 0,
    priority: int = 1,
    tenant: str = "astronomy",
    params: TuneParams | None = None,
    weights: np.ndarray | None = None,
) -> "PipelineWorkload":
    """The radio-astronomy request class for :mod:`repro.serve`.

    **Adapter contract** (shared with
    :func:`repro.apps.ultrasound.imaging.service_workload`): every
    parameter is keyword-only; the leading keywords are the domain's shape
    vocabulary and the tail is the shared serving surface, in this fixed
    order — ``precision``, ``weights_version``, ``priority``, ``tenant``,
    ``params``, ``weights``. The return value is the **single-stage
    pipeline form** (:meth:`Workload.single_stage
    <repro.serve.workload.Workload.single_stage>`): behaviourally
    byte-identical to the bare workload it wraps, accepted everywhere a
    workload is (arrivals generators, SLO maps). Callers that still need
    the bare single-kernel :class:`~repro.serve.workload.Workload` during
    migration should use the returned pipeline's ``.kernel`` — relying on
    the old bare return type directly is the deprecated path.

    One request is a beam block — a channel range of station voltages to
    tied-array beamform, the unit a correlator node hands off. Data are
    GPU-resident (§V-B), so the per-block accounting is GEMM-only, and the
    operand scale is restored (absolute beam powers feed the pulsar search).
    ``weights`` optionally carries the ``(channels x pols, beams, stations)``
    weight set for functional fleets; bump ``weights_version`` on
    calibration updates so stale and fresh requests never share a batch.
    ``params`` pins the tuning parameters of the merged plan (part of the
    batching identity, like everything else here).

    Offline reprocessing is throughput work, so the default ``priority`` is
    1 (the batch class — lower numbers are more urgent); a live transient
    follow-up would pass ``priority=0``. ``tenant`` names the observing
    campaign for weighted-fair queueing when several share a fleet.

    On a heterogeneous fleet the placement layer does the rest: float16
    runs anywhere, the channel batch makes large surveys splittable across
    devices (``batch_per_request = channels x pols``), and nearby
    ``n_samples`` dumps can share a launch through the batcher's shape
    buckets — see :mod:`repro.serve.placement`.
    """
    from repro.serve.workload import Workload

    return Workload(
        name="lofar_beam_block",
        n_beams=n_beams,
        n_receivers=n_stations,
        n_samples=n_samples,
        batch_per_request=n_channels * n_polarizations,
        precision=precision,
        include_transpose=False,
        include_packing=False,
        restore_output_scale=True,
        weights_version=weights_version,
        priority=priority,
        tenant=tenant,
        params=params,
        weights=weights,
    ).single_stage()


def pipeline_workload(
    *,
    n_beams: int = 256,
    n_stations: int = 64,
    n_samples: int = 256,
    n_channels: int = 64,
    n_polarizations: int = 1,
    n_dms: int = 64,
    precision: Precision = Precision.FLOAT16,
    weights_version: int = 0,
    priority: int = 1,
    tenant: str = "astronomy",
    params: TuneParams | None = None,
) -> "PipelineWorkload":
    """The full observatory chain: channelize → beamform → dedisperse.

    The paper's radio-astronomy deployment is a pipeline, not one kernel
    (§V-B: the beamformer sits between the station channelizers and the
    pulsar search). One request is one correlator dump processed end to
    end; the serving tier batches each stage across concurrent dumps,
    releases a stage the instant its dependencies complete, and prices the
    inter-stage buffers as resident (same worker) or transferred.

    * ``channelize`` — the polyphase filterbank as a batched DFT GEMM: one
      ``(n_channels, n_channels)`` filter matrix against each station's
      sample block, batched over stations. Station voltages arrive from
      the network, so transpose/packing are included.
    * ``beamform`` — the tied-array beamformer at the LOFAR shape (exactly
      :func:`service_workload`'s kernel): ``n_beams x n_stations`` weights
      against GPU-resident channelized voltages, batched over
      channels x polarizations, output scale restored.
    * ``dedisperse`` — the dedispersion search as a GEMM over trial
      dispersion measures: an ``(n_dms, n_channels)`` delay matrix against
      each beam's dynamic spectrum (matrix-multiplication dedispersion à
      la dedisp/FDMT), consuming the beamformer's output in place.

    ``priority``/``tenant`` apply to the whole pipeline (one scheduling
    class, one accountable caller); per-stage precision is fixed by the
    physics above — ``precision`` selects the beamforming GEMM's mode, the
    channelizer/dedispersion stages run float16. ``params`` pins the
    beamforming stage's tuning only; the flanking stages auto-tune.
    """
    from repro.serve.workload import PipelineWorkload, Stage, Workload

    channelize = Workload(
        name="channelize",
        n_beams=n_channels,
        n_receivers=n_channels,
        n_samples=n_samples,
        batch_per_request=n_stations * n_polarizations,
        precision=Precision.FLOAT16,
        include_transpose=True,
        include_packing=False,
        weights_version=weights_version,
    )
    beamform = Workload(
        name="beamform",
        n_beams=n_beams,
        n_receivers=n_stations,
        n_samples=n_samples,
        batch_per_request=n_channels * n_polarizations,
        precision=precision,
        include_transpose=False,
        include_packing=False,
        restore_output_scale=True,
        weights_version=weights_version,
        params=params,
    )
    dedisperse = Workload(
        name="dedisperse",
        n_beams=n_dms,
        n_receivers=n_channels,
        n_samples=n_samples,
        batch_per_request=n_beams,
        precision=Precision.FLOAT16,
        include_transpose=False,
        include_packing=False,
        weights_version=weights_version,
    )
    return PipelineWorkload(
        name="lofar_pulsar",
        stages=(
            Stage(name="channelize", workload=channelize),
            Stage(name="beamform", workload=beamform, depends_on=("channelize",)),
            Stage(name="dedisperse", workload=dedisperse, depends_on=("beamform",)),
        ),
        priority=priority,
        tenant=tenant,
    )


def incoherent_beam(
    device: Device,
    data: np.ndarray | None,
    batch: int,
    n_stations: int,
    n_samples: int,
) -> tuple[np.ndarray | None, KernelCost]:
    """Incoherent station-power sum: P[ch, t] = sum_st |X[ch, st, t]|^2.

    "Computationally less demanding and well-suited for all-sky surveys"
    (paper §V-B): a pure reduction, bound by memory bandwidth, modelled as
    one read of the station data.
    """
    spec = device.spec
    n_values = batch * n_stations * n_samples
    dram_bytes = n_values * 8.0 + batch * n_samples * 4.0
    bw = spec.mem_bandwidth_bytes() * spec.mem_efficiency
    time_s = dram_bytes / bw + spec.kernel_launch_overhead_s
    power = device.power.kernel_power(
        precision=None,
        tensor_utilization=0.0,
        dram_utilization=min(1.0, (dram_bytes / time_s) / spec.mem_bandwidth_bytes()),
        smem_utilization=0.0,
    )
    cost = KernelCost(
        name="incoherent_beam",
        time_s=time_s,
        useful_ops=4.0 * n_values,
        issued_ops=4.0 * n_values,
        dram_bytes=dram_bytes,
        smem_bytes=0.0,
        bound=Bound.MEMORY,
        power_w=power.total_w,
        energy_j=power.total_w * time_s,
    )
    device.record_kernel(cost)
    out = None
    if device.is_functional:
        if data is None:
            raise ShapeError("functional incoherent beamforming requires data")
        out = (np.abs(data) ** 2).sum(axis=-2)
    return out, cost
