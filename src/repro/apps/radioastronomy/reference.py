"""Reference LOFAR beamformer on the normal (non-tensor) GPU cores.

The Fig 7 baseline: "This configuration is also run using the reference
LOFAR beamformer on an A100 GPU. It runs in float32 precision on the normal
GPU cores. Note that we have removed the calculation of beamformer weights
from the reference beamformer, to be able to fairly compare" (paper §V-B).
This models the Cobalt-style production kernel [12].

Functionally it computes the identical weighted sum in complex64 (so tests
can compare TCBF output against it); its cost model charges the normal
float32 pipelines at the device's conventional-kernel efficiency
(:attr:`~repro.gpusim.specs.GPUSpec.fp32_efficiency`, ~50% of fp32 peak for
a well-tuned complex GEMM-like kernel) against the same DRAM traffic model.
"""

from __future__ import annotations

import numpy as np

from repro.ccglib.perfmodel import GemmProblem
from repro.ccglib.precision import complex_ops
from repro.errors import ShapeError
from repro.gpusim.device import Device
from repro.gpusim.timing import Bound, KernelCost


class ReferenceBeamformer:
    """float32 beamformer on the conventional cores (the Fig 7 baseline)."""

    def __init__(
        self,
        device: Device,
        n_beams: int,
        n_stations: int,
        n_samples: int,
        n_channels: int,
        n_polarizations: int = 1,
    ):
        self.device = device
        self.n_beams = n_beams
        self.n_stations = n_stations
        self.n_samples = n_samples
        self.batch = n_channels * n_polarizations
        self.problem = GemmProblem(batch=self.batch, m=n_beams, n=n_samples, k=n_stations)

    def predict_cost(self) -> KernelCost:
        """Analytic cost of one block on the float32 cores."""
        spec = self.device.spec
        ops = complex_ops(self.batch, self.n_beams, self.n_samples, self.n_stations)
        t_math = ops / (spec.fp32_peak_ops() * spec.fp32_efficiency)
        # Same minimal traffic as the tensor-core kernel, at float32 width.
        in_bytes = (
            self.batch
            * (self.n_beams + self.n_samples)
            * self.n_stations
            * 2
            * 4.0
        )
        out_bytes = self.batch * self.n_beams * self.n_samples * 2 * 4.0
        dram_bytes = in_bytes + out_bytes
        t_dram = dram_bytes / (spec.mem_bandwidth_bytes() * spec.mem_efficiency)
        t_body = max(t_math, t_dram)
        time_s = t_body + spec.kernel_launch_overhead_s
        util_fp32 = min(1.0, (ops / time_s) / spec.fp32_peak_ops())
        # The fp32 FMA pipelines draw comparable power to the tensor pipes
        # at equal utilization; reuse the float16 coefficient as the
        # core-power proxy.
        power = self.device.power.kernel_power(
            precision="float16",
            tensor_utilization=util_fp32,
            dram_utilization=min(1.0, (dram_bytes / time_s) / spec.mem_bandwidth_bytes()),
            smem_utilization=0.3 * util_fp32,
        )
        cost = KernelCost(
            name="reference_beamformer_fp32",
            time_s=time_s,
            useful_ops=ops,
            issued_ops=ops,
            dram_bytes=dram_bytes,
            smem_bytes=0.0,
            bound=Bound.COMPUTE if t_body == t_math else Bound.MEMORY,
            power_w=power.total_w,
            energy_j=power.total_w * time_s,
            detail={"t_math": t_math, "t_dram": t_dram, "util_fp32": util_fp32},
        )
        return cost

    def form_beams(
        self, weights: np.ndarray | None = None, data: np.ndarray | None = None
    ) -> tuple[np.ndarray | None, KernelCost]:
        """Run the reference beamformer (functional: exact complex64 GEMM)."""
        cost = self.predict_cost()
        self.device.record_kernel(cost)
        if not self.device.is_functional:
            return None, cost
        if weights is None or data is None:
            raise ShapeError("functional reference beamforming requires operands")
        beams = np.einsum(
            "cbs,cst->cbt",
            weights.astype(np.complex64),
            data.astype(np.complex64),
        )
        return beams.astype(np.complex64), cost
