"""Central-beamformer weight generation.

Coherent beamforming "preserves phase information by aligning the signals
from each station" (paper §V-B): beam b's weight for station st at channel
frequency f conjugates the geometric arrival phase of direction (l_b, m_b)::

    w[ch, b, st] = exp(+2*pi*i * f_ch * tau_st(l_b, m_b)) / n_stations

The 1/n normalization keeps the beamformed amplitude independent of array
size. Weights are constant over a time block — the property that maps
beamforming onto a matrix-matrix product ("the weights used to steer the
beams are constant for some period of time", paper §I).
"""

from __future__ import annotations

import numpy as np

from repro.apps.radioastronomy.coordinates import ArrayLayout, geometric_delay
from repro.errors import ShapeError


def steering_weights(
    layout: ArrayLayout,
    channel_frequencies_hz: np.ndarray,
    beam_directions: np.ndarray,
    normalize: bool = True,
) -> np.ndarray:
    """Steering weight tensor of shape (n_channels, n_beams, n_stations).

    ``beam_directions`` is (n_beams, 2) of (l, m) direction cosines.
    """
    beam_directions = np.asarray(beam_directions, dtype=np.float64)
    if beam_directions.ndim != 2 or beam_directions.shape[1] != 2:
        raise ShapeError(f"beam_directions must be (n_beams, 2), got {beam_directions.shape}")
    freqs = np.atleast_1d(np.asarray(channel_frequencies_hz, dtype=np.float64))
    delays = np.stack(
        [geometric_delay(layout.positions, l, m) for l, m in beam_directions]
    )  # (B, S)
    phase = 2.0 * np.pi * freqs[:, None, None] * delays[None, :, :]
    weights = np.exp(1j * phase)
    if normalize:
        weights /= layout.n_stations
    return weights.astype(np.complex64)


def beam_grid(n_beams: int, fov_radius: float = 0.02, seed_angle: float = 0.0) -> np.ndarray:
    """A compact grid of beam directions tiling the field of view.

    Fills a square grid of side ceil(sqrt(n_beams)) inside the radius and
    trims to ``n_beams`` (LOFAR tied-array observations tile the station
    beam with hundreds to thousands of tied beams; the paper benchmarks
    1024 beams).
    """
    side = int(np.ceil(np.sqrt(n_beams)))
    axis = np.linspace(-fov_radius, fov_radius, side)
    gl, gm = np.meshgrid(axis, axis, indexing="ij")
    dirs = np.column_stack([gl.ravel(), gm.ravel()])[:n_beams]
    if seed_angle:
        c, s = np.cos(seed_angle), np.sin(seed_angle)
        dirs = dirs @ np.array([[c, -s], [s, c]])
    return dirs
