"""LOFAR radio-astronomy application (paper §V-B).

Station-to-science reproduction of the radio-astronomical use of the TCBF:
array layout and delays -> sky model (steady sources + dispersed pulsar) ->
station (FPGA) beamformer with polyphase channelizer -> central coherent
tensor-core beamformer (and the float32 reference baseline of Fig 7) ->
incoherent beams, dedispersion, folding and pulsar detection.
"""

from repro.apps.radioastronomy.coordinates import (
    ArrayLayout,
    lofar_like_layout,
    station_antenna_layout,
    geometric_delay,
    phase_rotation,
    SPEED_OF_LIGHT,
)
from repro.apps.radioastronomy.channelizer import (
    PolyphaseFilterbank,
    fft_filterbank,
    leakage_db,
)
from repro.apps.radioastronomy.sky import (
    PointSource,
    Pulsar,
    Observation,
    generate_station_data,
    expected_beam_power,
    DISPERSION_MS,
)
from repro.apps.radioastronomy.station import StationConfig, StationBeamformer
from repro.apps.radioastronomy.weights import steering_weights, beam_grid
from repro.apps.radioastronomy.beamformer import (
    LOFARBeamformer,
    BeamformOutput,
    incoherent_beam,
    pipeline_workload,
    service_workload,
)
from repro.apps.radioastronomy.reference import ReferenceBeamformer
from repro.apps.radioastronomy.pulsar import (
    dedisperse,
    fold,
    profile_snr,
    search_beams,
    PulsarDetection,
)
from repro.apps.radioastronomy.pipeline import run_observation, ObservationResult

__all__ = [
    "ArrayLayout",
    "lofar_like_layout",
    "station_antenna_layout",
    "geometric_delay",
    "phase_rotation",
    "SPEED_OF_LIGHT",
    "PolyphaseFilterbank",
    "fft_filterbank",
    "leakage_db",
    "PointSource",
    "Pulsar",
    "Observation",
    "generate_station_data",
    "expected_beam_power",
    "DISPERSION_MS",
    "StationConfig",
    "StationBeamformer",
    "steering_weights",
    "beam_grid",
    "LOFARBeamformer",
    "BeamformOutput",
    "incoherent_beam",
    "service_workload",
    "pipeline_workload",
    "ReferenceBeamformer",
    "dedisperse",
    "fold",
    "profile_snr",
    "search_beams",
    "PulsarDetection",
    "run_observation",
    "ObservationResult",
]
