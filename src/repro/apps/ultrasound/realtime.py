"""Real-time feasibility analysis of cUSi imaging (paper Fig 5).

"Considering a pulse-echo repetition frequency of 32 kHz and an ensemble
size of 8000, the time required for the image reconstruction ... should be
less than 8 seconds in order to maintain real-time feedback" (§V-A): with
32 transmissions per frame at 32 kHz PRF, one frame of data arrives every
millisecond, so sustained reconstruction must exceed **1000 frames per
second** — the dash-dotted line of Fig 5.

Fig 5 sweeps the number of voxels from three orthogonal 128x128 planes
(49152) to the full 128^3 volume (2097152) and reports sustainable fps per
GPU, *including* the per-batch 1-bit packing and transpose of the
measurement matrix.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.ultrasound.imaging import UltrasoundBeamformer
from repro.ccglib.precision import Precision
from repro.gpusim.device import Device, ExecutionMode
from repro.gpusim.specs import GPUSpec

#: 32 kHz pulse-echo repetition frequency / 32 transmissions per frame.
PRF_HZ = 32000.0
TRANSMISSIONS_PER_FRAME = 32
REQUIRED_FPS = PRF_HZ / TRANSMISSIONS_PER_FRAME  # = 1000 frames/s

#: the paper's real-time K: 128 frequencies x 64 transceivers x 32 tx.
PAPER_REALTIME_K = 128 * 64 * 32

#: full imaging volume and the three-orthogonal-planes alternative.
FULL_VOLUME_VOXELS = 128**3
THREE_PLANES_VOXELS = 3 * 128 * 128


@dataclass(frozen=True)
class RealTimePoint:
    """One Fig 5 sample: sustained fps at a voxel count."""

    gpu: str
    n_voxels: int
    fps: float
    gemm_tops: float

    @property
    def real_time(self) -> bool:
        return self.fps >= REQUIRED_FPS


def frames_per_second(
    spec: GPUSpec,
    n_voxels: int,
    k: int = PAPER_REALTIME_K,
    batch_frames: int = 1024,
    precision: Precision = Precision.INT1,
) -> RealTimePoint:
    """Sustained reconstruction rate for one configuration.

    Uses a dry-run device; the per-batch cost includes measurement
    transpose + packing + GEMM (Fig 5 accounting), and fps is
    ``batch_frames / batch_time``.
    """
    device = Device(spec, ExecutionMode.DRY_RUN)
    beamformer = UltrasoundBeamformer(
        device,
        n_voxels=n_voxels,
        k=k,
        n_frames=batch_frames,
        precision=precision,
    )
    result = beamformer.reconstruct()
    gemm_cost = result.costs[-1]
    return RealTimePoint(
        gpu=spec.name,
        n_voxels=n_voxels,
        fps=result.fps,
        gemm_tops=gemm_cost.ops_per_second / 1e12,
    )


def sweep_voxels(
    spec: GPUSpec,
    voxel_counts: list[int] | None = None,
    k: int = PAPER_REALTIME_K,
    batch_frames: int = 1024,
) -> list[RealTimePoint]:
    """The Fig 5 curve for one GPU."""
    if voxel_counts is None:
        voxel_counts = default_voxel_sweep()
    return [frames_per_second(spec, v, k=k, batch_frames=batch_frames) for v in voxel_counts]


def default_voxel_sweep(n_points: int = 12) -> list[int]:
    """Log-spaced voxel counts from three planes to the full volume."""
    return [int(v) for v in np.geomspace(THREE_PLANES_VOXELS, FULL_VOLUME_VOXELS, n_points).round()]


def max_realtime_voxels(spec: GPUSpec, k: int = PAPER_REALTIME_K, batch_frames: int = 1024) -> int:
    """Largest voxel count sustaining 1000 fps (bisection on the model).

    The paper reads this off Fig 5: e.g. "the GH200 is capable of
    processing ~85% of the voxels in real time" for the full 128^3 volume.
    """
    lo, hi = 1024, FULL_VOLUME_VOXELS
    if frames_per_second(spec, hi, k, batch_frames).real_time:
        return hi
    if not frames_per_second(spec, lo, k, batch_frames).real_time:
        return 0
    while hi - lo > 1024:
        mid = (lo + hi) // 2
        if frames_per_second(spec, mid, k, batch_frames).real_time:
            lo = mid
        else:
            hi = mid
    return lo
