"""Synthetic vascular phantom: the stand-in for the mouse-brain dataset.

The anesthetized-mouse dataset of Brown et al. [10] is not available, so we
generate a volume with the properties the Fig 6 experiment depends on:

* a sparse, connected vascular tree carrying *flowing* blood (the Doppler
  signal of interest), grown as a random branching tree through the volume
  (networkx graph; biologically-flavoured midpoint-displacement branches);
* *stationary* tissue everywhere, tens of dB stronger than blood — this is
  what makes the paper's processing order essential ("the Doppler
  processing is done before extracting the sign. Otherwise, the Doppler
  signal will be lost in the dominant stationary signals").

Each blood voxel carries a flow speed (descending with branch generation);
frames advance the scatterer phases proportionally, producing a clean
Doppler signature the clutter filter can isolate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx
import numpy as np

from repro.apps.ultrasound.array_geometry import VoxelGrid
from repro.util.rng import derive_seed, make_rng


@dataclass
class VascularPhantom:
    """A voxelized vessel tree inside a :class:`VoxelGrid`.

    Attributes
    ----------
    blood_amplitude:
        (V,) reflectivity of flowing blood per voxel (0 outside vessels).
    flow_speed:
        (V,) blood speed in m/s per voxel (0 outside vessels).
    tissue_amplitude:
        (V,) stationary tissue reflectivity (everywhere, ~30 dB above blood).
    graph:
        The vessel tree as a networkx DiGraph whose nodes carry 3D points.
    """

    grid: VoxelGrid
    blood_amplitude: np.ndarray
    flow_speed: np.ndarray
    tissue_amplitude: np.ndarray
    graph: nx.DiGraph

    @property
    def n_blood_voxels(self) -> int:
        return int(np.count_nonzero(self.blood_amplitude))

    def blood_mask_volume(self) -> np.ndarray:
        """(nz, ny, nx) boolean mask of vessel voxels."""
        return self.grid.to_volume(self.blood_amplitude > 0)


def grow_vessel_tree(
    grid: VoxelGrid,
    n_generations: int = 4,
    branches_per_node: int = 2,
    seed: int = 10,
) -> nx.DiGraph:
    """Grow a random branching vessel tree through the volume.

    The root enters the volume at the centre of the deep face; each branch
    extends in a randomized direction with shrinking length and radius.
    Nodes carry positions in *fractional grid units* (0..1 per axis).
    """
    rng = make_rng(derive_seed(seed, "vessel-tree"))
    g = nx.DiGraph()
    root = 0
    g.add_node(root, point=np.array([0.5, 0.5, 0.05]), radius=0.040, generation=0, speed=8e-3)
    frontier = [root]
    next_id = 1
    direction = {root: np.array([0.0, 0.0, 1.0])}
    for gen in range(1, n_generations + 1):
        new_frontier: list[int] = []
        for node in frontier:
            for _ in range(branches_per_node):
                parent_pt = g.nodes[node]["point"]
                parent_dir = direction[node]
                # Random deflection, biased to continue forward.
                deflect = rng.normal(scale=0.55, size=3)
                new_dir = parent_dir + deflect
                new_dir /= np.linalg.norm(new_dir)
                length = 0.32 / gen
                point = np.clip(parent_pt + new_dir * length, 0.03, 0.97)
                radius = g.nodes[node]["radius"] * 0.62
                speed = g.nodes[node]["speed"] * 0.6
                g.add_node(next_id, point=point, radius=radius, generation=gen, speed=speed)
                g.add_edge(node, next_id)
                direction[next_id] = new_dir
                new_frontier.append(next_id)
                next_id += 1
        frontier = new_frontier
    return g


def _rasterize_segment(
    shape: tuple[int, int, int],
    p0: np.ndarray,
    p1: np.ndarray,
    radius_frac: float,
    speed: float,
    blood: np.ndarray,
    flow: np.ndarray,
) -> None:
    """Paint one vessel segment into the (nz, ny, nx) blood/flow volumes."""
    nx_, ny, nz = shape
    dims = np.array([nx_, ny, nz], dtype=float)
    n_steps = max(2, int(np.linalg.norm((p1 - p0) * dims) * 2))
    radius_vox = max(radius_frac * float(dims.max()), 0.6)
    r = int(np.ceil(radius_vox))
    for s in np.linspace(0.0, 1.0, n_steps):
        centre = (p0 + s * (p1 - p0)) * (dims - 1)
        cx, cy, cz = centre
        x0, x1 = max(0, int(cx) - r), min(nx_ - 1, int(cx) + r)
        y0, y1 = max(0, int(cy) - r), min(ny - 1, int(cy) + r)
        z0, z1 = max(0, int(cz) - r), min(nz - 1, int(cz) + r)
        xs = np.arange(x0, x1 + 1)
        ys = np.arange(y0, y1 + 1)
        zs = np.arange(z0, z1 + 1)
        gx, gy, gz = np.meshgrid(xs, ys, zs, indexing="ij")
        inside = (gx - cx) ** 2 + (gy - cy) ** 2 + (gz - cz) ** 2 <= radius_vox**2
        blood[gz[inside], gy[inside], gx[inside]] = 1.0
        flow[gz[inside], gy[inside], gx[inside]] = speed


def make_phantom(
    grid: VoxelGrid,
    tissue_to_blood_db: float = 30.0,
    n_generations: int = 4,
    seed: int = 10,
) -> VascularPhantom:
    """Build the full phantom: vessel tree + stationary tissue background."""
    rng = make_rng(derive_seed(seed, "phantom-tissue"))
    nx_, ny, nz = grid.shape
    blood = np.zeros((nz, ny, nx_), dtype=np.float32)
    flow = np.zeros((nz, ny, nx_), dtype=np.float32)
    tree = grow_vessel_tree(grid, n_generations=n_generations, seed=seed)
    for u, v in tree.edges:
        _rasterize_segment(
            grid.shape,
            tree.nodes[u]["point"],
            tree.nodes[v]["point"],
            radius_frac=tree.nodes[v]["radius"],
            speed=tree.nodes[v]["speed"],
            blood=blood,
            flow=flow,
        )
    tissue_level = 10.0 ** (tissue_to_blood_db / 20.0)
    tissue = tissue_level * (0.7 + 0.3 * rng.random(size=(nz, ny, nx_)).astype(np.float32))
    return VascularPhantom(
        grid=grid,
        blood_amplitude=blood.ravel(),
        flow_speed=flow.ravel(),
        tissue_amplitude=tissue.astype(np.float32).ravel(),
        graph=tree,
    )
