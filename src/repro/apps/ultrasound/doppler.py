"""Doppler clutter filtering of the frame ensemble.

The paper is explicit about ordering: "the Doppler processing is done before
extracting the sign. Otherwise, the Doppler signal will be lost in the
dominant stationary signals" (§V-A). We provide the two standard clutter
filters used in functional ultrasound:

* mean removal — subtract the temporal mean of each channel (kills DC
  clutter exactly, cheapest, good for strictly stationary tissue);
* SVD filter — zero the strongest temporal singular components (the field
  standard for in-vivo data where tissue moves slightly).

Both operate on the measurement matrix Y (K channels x N frames) along the
frame axis, before quantization and beamforming.
"""

from __future__ import annotations

import enum

import numpy as np

from repro.errors import ShapeError


class ClutterFilter(enum.Enum):
    """Available clutter-rejection methods."""

    NONE = "none"
    MEAN = "mean"
    SVD = "svd"


def remove_mean(y: np.ndarray) -> np.ndarray:
    """Subtract each channel's temporal mean (frames on the last axis)."""
    if y.ndim != 2:
        raise ShapeError(f"expected (K, N) measurement matrix, got {y.shape}")
    return y - y.mean(axis=1, keepdims=True)


def svd_filter(y: np.ndarray, n_components: int = 2) -> np.ndarray:
    """Remove the ``n_components`` strongest temporal singular components.

    Tissue clutter concentrates in the first singular vectors (high energy,
    slow dynamics); blood spreads over the rest. Uses the thin SVD of the
    (K, N) matrix, so cost is O(K N min(K, N)).
    """
    if y.ndim != 2:
        raise ShapeError(f"expected (K, N) measurement matrix, got {y.shape}")
    if n_components <= 0:
        return y.copy()
    u, s, vh = np.linalg.svd(y, full_matrices=False)
    n = min(n_components, s.shape[0])
    clutter = (u[:, :n] * s[:n]) @ vh[:n]
    return y - clutter


def apply_clutter_filter(y: np.ndarray, method: ClutterFilter, n_components: int = 2) -> np.ndarray:
    """Dispatch on the configured filter method."""
    if method is ClutterFilter.NONE:
        return y.copy()
    if method is ClutterFilter.MEAN:
        return remove_mean(y)
    if method is ClutterFilter.SVD:
        return svd_filter(y, n_components=n_components)
    raise ShapeError(f"unknown clutter filter {method}")  # pragma: no cover


def power_doppler(beamformed_frames: np.ndarray) -> np.ndarray:
    """Power-Doppler image: mean |signal| over the ensemble.

    The paper's Fig 6 volume "was obtained by averaging the magnitude of the
    complex beamformed signal along the 8041 frames". ``beamformed_frames``
    has shape (V, N); the result is (V,).
    """
    if beamformed_frames.ndim != 2:
        raise ShapeError(f"expected (V, N) beamformed frames, got {beamformed_frames.shape}")
    return np.abs(beamformed_frames).mean(axis=1)
