"""Computational ultrasound imaging (cUSi) application (paper §V-A).

End-to-end reproduction of the medical-ultrasound use of the TCBF:
transducer array + coded aperture -> acoustic model matrix -> synthetic
vascular phantom and frame ensemble -> Doppler clutter filtering -> 1-bit
sign quantization -> ccglib reconstruction -> power-Doppler volume and
maximum-intensity projections (Figs 5 and 6).
"""

from repro.apps.ultrasound.array_geometry import (
    TransducerArray,
    CodedAperture,
    TransmissionScheme,
    VoxelGrid,
    SPEED_OF_SOUND,
)
from repro.apps.ultrasound.acoustics import PulseSpectrum, greens_function, pulse_echo_response
from repro.apps.ultrasound.model_matrix import (
    ImagingConfig,
    ModelMatrix,
    build_model_matrix,
    paper_scale_config,
    recorded_dataset_config,
)
from repro.apps.ultrasound.phantom import VascularPhantom, make_phantom, grow_vessel_tree
from repro.apps.ultrasound.measurement import EnsembleConfig, simulate_frames, doppler_rate
from repro.apps.ultrasound.doppler import (
    ClutterFilter,
    apply_clutter_filter,
    remove_mean,
    svd_filter,
    power_doppler,
)
from repro.apps.ultrasound.imaging import (
    UltrasoundBeamformer,
    ReconstructionResult,
    ultrasound_gemm_params,
    pipeline_workload,
    service_workload,
)
from repro.apps.ultrasound.mip import max_intensity_projections, render_ascii, contrast_db
from repro.apps.ultrasound.realtime import (
    RealTimePoint,
    frames_per_second,
    sweep_voxels,
    max_realtime_voxels,
    default_voxel_sweep,
    REQUIRED_FPS,
    PAPER_REALTIME_K,
    FULL_VOLUME_VOXELS,
    THREE_PLANES_VOXELS,
)

__all__ = [
    "TransducerArray",
    "CodedAperture",
    "TransmissionScheme",
    "VoxelGrid",
    "SPEED_OF_SOUND",
    "PulseSpectrum",
    "greens_function",
    "pulse_echo_response",
    "ImagingConfig",
    "ModelMatrix",
    "build_model_matrix",
    "paper_scale_config",
    "recorded_dataset_config",
    "VascularPhantom",
    "make_phantom",
    "grow_vessel_tree",
    "EnsembleConfig",
    "simulate_frames",
    "doppler_rate",
    "ClutterFilter",
    "apply_clutter_filter",
    "remove_mean",
    "svd_filter",
    "power_doppler",
    "UltrasoundBeamformer",
    "ReconstructionResult",
    "ultrasound_gemm_params",
    "service_workload",
    "pipeline_workload",
    "max_intensity_projections",
    "render_ascii",
    "contrast_db",
    "RealTimePoint",
    "frames_per_second",
    "sweep_voxels",
    "max_realtime_voxels",
    "default_voxel_sweep",
    "REQUIRED_FPS",
    "PAPER_REALTIME_K",
    "FULL_VOLUME_VOXELS",
    "THREE_PLANES_VOXELS",
]
