"""Maximum-intensity projections of beamformed volumes (paper Fig 6).

Fig 6 shows "three orthogonal (sagittal, coronal and axial) maximum
intensity projections through the beamformed volume". Volumes here are
(nz, ny, nx) arrays; the projections collapse one axis each. An ASCII
renderer is provided for terminal output, and the raw projections are
returned for numeric comparison in tests (e.g. vessel-vs-background
contrast assertions).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError

#: projection name -> axis collapsed (volume is (z, y, x)).
PROJECTION_AXES: dict[str, int] = {
    "axial": 0,      # view along depth (z): (y, x) image
    "coronal": 1,    # view along y: (z, x) image
    "sagittal": 2,   # view along x: (z, y) image
}

_ASCII_LEVELS = " .:-=+*#%@"


def max_intensity_projections(volume: np.ndarray) -> dict[str, np.ndarray]:
    """The three orthogonal MIPs of a (nz, ny, nx) intensity volume."""
    if volume.ndim != 3:
        raise ShapeError(f"expected a 3D volume, got shape {volume.shape}")
    intensity = np.abs(volume)
    return {name: intensity.max(axis=axis) for name, axis in PROJECTION_AXES.items()}


def render_ascii(image: np.ndarray, width: int = 64, db_range: float = 30.0) -> str:
    """Render a 2D intensity image as ASCII art with log compression.

    The image is normalized to its peak and displayed over ``db_range``
    decibels, the standard ultrasound display convention.
    """
    if image.ndim != 2:
        raise ShapeError(f"expected a 2D image, got shape {image.shape}")
    peak = float(image.max())
    if peak <= 0:
        return "(empty image)\n"
    db = 20.0 * np.log10(np.maximum(image / peak, 10 ** (-db_range / 20.0)))
    norm = (db + db_range) / db_range  # 0..1
    # Downsample to terminal width, keeping aspect (terminal cells ~2:1).
    h, w = norm.shape
    out_w = min(width, w) or 1
    out_h = max(1, int(h * out_w / w / 2))
    ys = np.linspace(0, h - 1, out_h).astype(int)
    xs = np.linspace(0, w - 1, out_w).astype(int)
    lines = []
    for y in ys:
        row = norm[y, xs]
        idx = np.clip((row * (len(_ASCII_LEVELS) - 1)).astype(int), 0, len(_ASCII_LEVELS) - 1)
        lines.append("".join(_ASCII_LEVELS[i] for i in idx))
    return "\n".join(lines) + "\n"


def contrast_db(image: np.ndarray, signal_mask: np.ndarray) -> float:
    """Signal-to-background contrast of a projection in dB.

    ``signal_mask`` selects the pixels that should contain vessels; the
    remaining pixels form the background. Used by tests to verify the Fig 6
    pipeline actually produces vascular images ("combining this much data
    still results in usable image feedback").
    """
    if image.shape != signal_mask.shape:
        raise ShapeError(f"mask shape {signal_mask.shape} != image shape {image.shape}")
    signal = image[signal_mask]
    background = image[~signal_mask]
    if signal.size == 0 or background.size == 0:
        raise ShapeError("mask selects no signal or no background pixels")
    return 20.0 * np.log10(float(signal.mean()) / max(float(background.mean()), 1e-12))
