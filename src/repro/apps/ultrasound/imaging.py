"""The ultrasound tensor-core beamformer: a thin wrapper around the TCBF.

"In this work we show the use of an ultrasound tensor-core beamformer
implemented as a wrapper around ccglib" (paper §V-A). Reconstruction is the
matched-filter product ``X = conj(H).T @ Y``:

* A-operand: the (V, K) matched filter from the model matrix — in the 1-bit
  pipeline it is sign-quantized and packed **once before the experiment**
  ("this typically happens once ... and does not need to be repeated"), so
  its packing cost is excluded from the per-frame budget;
* B-operand: the (K, N) measurement matrix — its transpose and 1-bit
  packing run for every frame batch and **are** included (Fig 5: "The
  processing includes the 1-bit packing and transpose of the measurement
  matrix").

Both behaviours are native :class:`repro.tcbf.BeamformerPlan` stage flags,
so this module only maps the imaging vocabulary (model matrix, matched
filter, frames) onto the shared library.

The GEMM uses parameters auto-tuned for the ultrasound shape (huge M = many
voxels, large K, moderate N = frames); the shipped generic defaults would
re-stream the enormous model matrix once per N-block, so wide ``block_n``
tiles matter here. This is the paper's "GPU-specific optimization is best"
point made concrete.
"""

from __future__ import annotations

from dataclasses import replace
from typing import TYPE_CHECKING

import numpy as np

from repro.apps.ultrasound.model_matrix import ModelMatrix
from repro.ccglib.perfmodel import GemmProblem
from repro.ccglib.precision import Precision
from repro.ccglib.tuning import TuneParams
from repro.errors import ShapeError
from repro.gpusim.device import Device
from repro.gpusim.timing import KernelCost
from repro.kerneltuner.strategies import GreedyILS
from repro.kerneltuner.tuner import tune_gemm
from repro.tcbf import BeamformerPlan, BeamformResult

if TYPE_CHECKING:
    from repro.serve.workload import PipelineWorkload

#: cache of tuned parameters keyed by (gpu, precision, shape bucket).
_APP_PARAMS_CACHE: dict[tuple[str, str, int, int, int], TuneParams] = {}

#: Attribute-compatible alias: reads (``.frames``, ``.costs``, ``.total``,
#: ``.time_s``) work as before, but results are constructed by the TCBF
#: plan, not by callers — the old dataclass constructor signature is gone.
ReconstructionResult = BeamformResult


def ultrasound_gemm_params(
    device: Device, precision: Precision, m: int, n: int, k: int
) -> TuneParams:
    """Auto-tune the GEMM for the reconstruction shape (cached).

    A reduced-budget local search is plenty: the landscape is smooth and
    the tuning runs against the analytic model.
    """
    key = (device.spec.name, precision.value, m, n, k)
    if key not in _APP_PARAMS_CACHE:
        result = tune_gemm(
            device.spec,
            precision,
            problem=GemmProblem(batch=1, m=m, n=n, k=k),
            strategy=GreedyILS(budget=120, seed=1),
        )
        _APP_PARAMS_CACHE[key] = result.best_params
    return _APP_PARAMS_CACHE[key]


class UltrasoundBeamformer:
    """cUSi reconstruction on a (simulated) GPU via the TCBF.

    Parameters
    ----------
    device:
        Target device (functional or dry-run).
    n_voxels, k:
        GEMM M and K. For functional use, pass ``model`` instead and the
        shapes are taken from it.
    precision:
        ``Precision.INT1`` (the paper's real-time mode: sign of model and
        measurement) or ``Precision.FLOAT16``.
    """

    def __init__(
        self,
        device: Device,
        model: ModelMatrix | None = None,
        *,
        n_voxels: int | None = None,
        k: int | None = None,
        n_frames: int = 1024,
        precision: Precision = Precision.INT1,
        params: TuneParams | None = None,
        fused_transpose: bool = False,
        backend=None,
    ):
        """``fused_transpose`` prototypes the paper's §VI future-work item:
        a GEMM that consumes interleaved data directly, removing the
        separate transpose kernel from the per-batch path ("in the future,
        we would like to provide a matrix-matrix multiplication kernel that
        does not require this transpose"; the tensor-core correlator [4]
        already uses this technique)."""
        self.device = device
        self.model = model
        if model is not None:
            n_voxels, k = model.n_voxels, model.k
        if n_voxels is None or k is None:
            raise ShapeError("need a model matrix or explicit (n_voxels, k)")
        self.n_voxels = n_voxels
        self.k = k
        self.n_frames = n_frames
        self.precision = precision
        self.fused_transpose = fused_transpose
        self.params = params or ultrasound_gemm_params(device, precision, n_voxels, n_frames, k)
        self._plan = BeamformerPlan(
            device,
            n_beams=n_voxels,
            n_receivers=k,
            n_samples=n_frames,
            batch=1,
            precision=precision,
            params=self.params,
            include_transpose=not fused_transpose,
            include_packing=precision is Precision.INT1,
            restore_output_scale=False,
            backend=backend,
            name="ultrasound_reconstruction",
        )
        self._matched_filter: np.ndarray | None = None

    @property
    def plan(self) -> BeamformerPlan:
        """The underlying TCBF plan (streaming/sharding entry point)."""
        return self._plan

    @property
    def model_prep_cost(self) -> KernelCost | None:
        """Cost of the one-time model preparation (excluded from Fig 5)."""
        return self._plan.weight_prep_cost

    def prepare_model(self) -> None:
        """One-time model-matrix preparation (tiling transpose + 1-bit pack).

        Runs outside the per-frame budget: "It excludes these steps for the
        model matrix, as this typically happens once before the experiment"
        (paper §V-A). In functional mode this also materializes the matched
        filter used by :meth:`reconstruct`.
        """
        values = None
        if self.model is not None:
            self._matched_filter = self.model.matched_filter()
            if self.device.is_functional and self.precision is Precision.INT1:
                values = _planar(self._matched_filter)
        self._plan.prepare_weights(values, name="model_prep")

    def reconstruct(self, measurement: np.ndarray | None = None) -> BeamformResult:
        """Beamform one frame batch.

        ``measurement`` is the (K, N) complex measurement matrix (already
        clutter-filtered); required in functional mode. The recorded costs
        follow the paper's Fig 5 accounting: transpose + (1-bit) packing of
        the measurement, then the GEMM. The image is scale-invariant, so
        the unit-RMS operand normalization is not undone on the output.
        """
        if not self.device.is_functional:
            return self._plan.execute()
        if measurement is None:
            raise ShapeError("functional reconstruction requires the measurement matrix")
        if measurement.shape != (self.k, self.n_frames):
            raise ShapeError(
                f"measurement must be (K={self.k}, N={self.n_frames}), "
                f"got {measurement.shape}"
            )
        if self._matched_filter is None:
            if self.model is None:
                raise ShapeError("functional mode requires a model matrix")
            self._matched_filter = self.model.matched_filter()
        result = self._plan.execute(self._matched_filter, measurement)
        # The imaging API is unbatched: strip the TCBF plan's batch axis.
        return replace(result, output=result.output[0])


def service_workload(
    *,
    n_voxels: int = 16384,
    k: int = 4096,
    n_frames: int = 256,
    precision: Precision = Precision.INT1,
    weights_version: int = 0,
    priority: int = 0,
    tenant: str = "clinic",
    params: TuneParams | None = None,
    weights: np.ndarray | None = None,
) -> "PipelineWorkload":
    """The ultrasound request class for :mod:`repro.serve`.

    **Adapter contract** (shared with
    :func:`repro.apps.radioastronomy.beamformer.service_workload`): every
    parameter is keyword-only; the leading keywords are the domain's shape
    vocabulary and the tail is the shared serving surface, in this fixed
    order — ``precision``, ``weights_version``, ``priority``, ``tenant``,
    ``params``, ``weights``. The return value is the **single-stage
    pipeline form** (:meth:`Workload.single_stage
    <repro.serve.workload.Workload.single_stage>`): behaviourally
    byte-identical to the bare workload it wraps, accepted everywhere a
    workload is (arrivals generators, SLO maps). Callers that still need
    the bare single-kernel :class:`~repro.serve.workload.Workload` during
    migration should use the returned pipeline's ``.kernel`` — relying on
    the old bare return type directly is the deprecated path.

    One request is a frame batch — ``n_frames`` acquisitions of one probe
    to reconstruct against a shared model matrix (the matched filter).
    Measurement transpose and (for int1) packing run per request (the
    Fig 5 accounting); the image is scale-invariant, so the operand scale
    is not restored. ``weights`` optionally carries the ``(voxels, K)``
    matched filter for functional fleets; bump ``weights_version`` when
    the probe's model matrix is recomputed.

    A sonographer is watching the screen, so the default ``priority`` is 0
    — the most urgent class, preempting queued batch work (lower numbers
    are more urgent). ``tenant`` names the imaging site for weighted-fair
    queueing when several share a fleet.

    Capability note for mixed fleets: the default int1 precision exists on
    NVIDIA tensor cores only (paper §II), so the placement layer
    (:mod:`repro.serve.placement`) will never route these requests to an
    AMD device — and will shed them at the front door if the fleet has no
    NVIDIA device at all. Pass ``precision=Precision.FLOAT16`` to make the
    workload placeable fleet-wide at the float16 cost model.
    """
    from repro.serve.workload import Workload

    return Workload(
        name="ultrasound_frames",
        n_beams=n_voxels,
        n_receivers=k,
        n_samples=n_frames,
        batch_per_request=1,
        precision=precision,
        include_transpose=True,
        include_packing=precision is Precision.INT1,
        restore_output_scale=False,
        weights_version=weights_version,
        priority=priority,
        tenant=tenant,
        params=params,
        weights=weights,
    ).single_stage()


def pipeline_workload(
    *,
    n_voxels: int = 16384,
    k: int = 4096,
    n_frames: int = 256,
    n_ensemble: int = 64,
    precision: Precision = Precision.INT1,
    weights_version: int = 0,
    priority: int = 0,
    tenant: str = "clinic",
    params: TuneParams | None = None,
) -> "PipelineWorkload":
    """The functional-imaging chain: beamform → Doppler ensemble.

    Clinical functional imaging does not stop at the reconstructed frame:
    the frame ensemble feeds a Doppler/power-Doppler estimator (wall
    filter + lag-one autocorrelation over the ensemble — the same
    ensemble-processing stage that follows beamforming in every
    ultrafast-Doppler pipeline). One request is one acquisition ensemble
    processed end to end; the serving tier batches each stage across
    concurrent probes and prices the reconstructed-frame buffer between
    the stages as resident or transferred.

    * ``beamform`` — exactly :func:`service_workload`'s kernel: the
      matched-filter GEMM at ``precision`` (int1 by default — the paper's
      real-time mode, NVIDIA-only), measurement transpose/packing charged
      per request.
    * ``doppler`` — the ensemble correlator as a float16 GEMM: per voxel
      block, an ``(n_ensemble, n_frames)`` wall-filter/lag matrix against
      the reconstructed ``(n_frames, n_voxels)`` ensemble. Float16 keeps
      the Doppler stage placeable fleet-wide even when beamforming is
      pinned to NVIDIA int1 — the mixed-precision pipeline is the normal
      case, not a corner.

    ``priority``/``tenant`` apply to the whole pipeline; ``params`` pins
    the beamforming stage's tuning only.
    """
    from repro.serve.workload import PipelineWorkload, Stage, Workload

    beamform = Workload(
        name="beamform",
        n_beams=n_voxels,
        n_receivers=k,
        n_samples=n_frames,
        batch_per_request=1,
        precision=precision,
        include_transpose=True,
        include_packing=precision is Precision.INT1,
        restore_output_scale=False,
        weights_version=weights_version,
        params=params,
    )
    doppler = Workload(
        name="doppler",
        n_beams=n_ensemble,
        n_receivers=n_frames,
        n_samples=n_voxels,
        batch_per_request=1,
        precision=Precision.FLOAT16,
        include_transpose=False,
        include_packing=False,
        weights_version=weights_version,
    )
    return PipelineWorkload(
        name="doppler_imaging",
        stages=(
            Stage(name="beamform", workload=beamform),
            Stage(name="doppler", workload=doppler, depends_on=("beamform",)),
        ),
        priority=priority,
        tenant=tenant,
    )


def _planar(complex_matrix: np.ndarray) -> np.ndarray:
    """(R, C) complex -> (2, R, C) planar float32."""
    return np.stack([complex_matrix.real, complex_matrix.imag]).astype(np.float32)
