"""The ultrasound tensor-core beamformer: a thin wrapper around ccglib.

"In this work we show the use of an ultrasound tensor-core beamformer
implemented as a wrapper around ccglib" (paper §V-A). Reconstruction is the
matched-filter product ``X = conj(H).T @ Y``:

* A-operand: the (V, K) matched filter from the model matrix — in the 1-bit
  pipeline it is sign-quantized and packed **once before the experiment**
  ("this typically happens once ... and does not need to be repeated"), so
  its packing cost is excluded from the per-frame budget;
* B-operand: the (K, N) measurement matrix — its transpose and 1-bit
  packing run for every frame batch and **are** included (Fig 5: "The
  processing includes the 1-bit packing and transpose of the measurement
  matrix").

The GEMM uses parameters auto-tuned for the ultrasound shape (huge M = many
voxels, large K, moderate N = frames); the shipped generic defaults would
re-stream the enormous model matrix once per N-block, so wide ``block_n``
tiles matter here. This is the paper's "GPU-specific optimization is best"
point made concrete.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.apps.ultrasound.model_matrix import ModelMatrix
from repro.ccglib.gemm import Gemm
from repro.ccglib.packing import run_pack_kernel
from repro.ccglib.precision import Precision, traits
from repro.ccglib.transpose import run_transpose_kernel
from repro.ccglib.tuning import TuneParams
from repro.errors import ShapeError
from repro.gpusim.device import Device
from repro.gpusim.timing import KernelCost, combine_costs
from repro.kerneltuner.strategies import GreedyILS
from repro.kerneltuner.tuner import tune_gemm
from repro.ccglib.perfmodel import GemmProblem

#: cache of tuned parameters keyed by (gpu, precision, shape bucket).
_APP_PARAMS_CACHE: dict[tuple[str, str, int, int, int], TuneParams] = {}


def ultrasound_gemm_params(
    device: Device, precision: Precision, m: int, n: int, k: int
) -> TuneParams:
    """Auto-tune the GEMM for the reconstruction shape (cached).

    A reduced-budget local search is plenty: the landscape is smooth and
    the tuning runs against the analytic model.
    """
    key = (device.spec.name, precision.value, m, n, k)
    if key not in _APP_PARAMS_CACHE:
        result = tune_gemm(
            device.spec,
            precision,
            problem=GemmProblem(batch=1, m=m, n=n, k=k),
            strategy=GreedyILS(budget=120, seed=1),
        )
        _APP_PARAMS_CACHE[key] = result.best_params
    return _APP_PARAMS_CACHE[key]


@dataclass
class ReconstructionResult:
    """Output of one frame-batch reconstruction."""

    #: (V, N) beamformed complex frames; None in dry-run mode.
    frames: np.ndarray | None
    #: per-kernel costs in execution order (transpose, [pack], gemm).
    costs: list[KernelCost]
    #: total per-batch cost (what the Fig 5 frame budget counts).
    total: KernelCost

    @property
    def time_s(self) -> float:
        return self.total.time_s


class UltrasoundBeamformer:
    """cUSi reconstruction on a (simulated) GPU via ccglib.

    Parameters
    ----------
    device:
        Target device (functional or dry-run).
    n_voxels, k:
        GEMM M and K. For functional use, pass ``model`` instead and the
        shapes are taken from it.
    precision:
        ``Precision.INT1`` (the paper's real-time mode: sign of model and
        measurement) or ``Precision.FLOAT16``.
    """

    def __init__(
        self,
        device: Device,
        model: ModelMatrix | None = None,
        *,
        n_voxels: int | None = None,
        k: int | None = None,
        n_frames: int = 1024,
        precision: Precision = Precision.INT1,
        params: TuneParams | None = None,
        fused_transpose: bool = False,
    ):
        """``fused_transpose`` prototypes the paper's §VI future-work item:
        a GEMM that consumes interleaved data directly, removing the
        separate transpose kernel from the per-batch path ("in the future,
        we would like to provide a matrix-matrix multiplication kernel that
        does not require this transpose"; the tensor-core correlator [4]
        already uses this technique)."""
        self.device = device
        self.model = model
        if model is not None:
            n_voxels, k = model.n_voxels, model.k
        if n_voxels is None or k is None:
            raise ShapeError("need a model matrix or explicit (n_voxels, k)")
        self.n_voxels = n_voxels
        self.k = k
        self.n_frames = n_frames
        self.precision = precision
        self.fused_transpose = fused_transpose
        self.params = params or ultrasound_gemm_params(
            device, precision, n_voxels, n_frames, k
        )
        self._plan = Gemm(
            device,
            precision,
            batch=1,
            m=n_voxels,
            n=n_frames,
            k=k,
            params=self.params,
        )
        self._matched_filter: np.ndarray | None = None
        #: cost of the one-time model preparation (excluded from Fig 5).
        self.model_prep_cost: KernelCost | None = None

    def prepare_model(self) -> None:
        """One-time model-matrix preparation (tiling transpose + 1-bit pack).

        Runs outside the per-frame budget: "It excludes these steps for the
        model matrix, as this typically happens once before the experiment"
        (paper §V-A). In functional mode this also materializes the matched
        filter used by :meth:`reconstruct`.
        """
        n_values = 2 * self.n_voxels * self.k
        tr = traits(self.precision)
        costs: list[KernelCost] = []
        _, t_cost = run_transpose_kernel(self.device, None, n_values, tr.input_bytes)
        costs.append(t_cost)
        if self.precision is Precision.INT1:
            values = None
            if self.device.is_functional and self.model is not None:
                values = _planar(self.model.matched_filter())
            _, p_cost = run_pack_kernel(
                self.device,
                values,
                n_values,
                input_bytes_per_value=4.0,
                k_pad_to=self._plan.padded_k,
            )
            costs.append(p_cost)
        if self.model is not None:
            self._matched_filter = self.model.matched_filter()
        self.model_prep_cost = combine_costs("model_prep", costs)

    def reconstruct(self, measurement: np.ndarray | None = None) -> ReconstructionResult:
        """Beamform one frame batch.

        ``measurement`` is the (K, N) complex measurement matrix (already
        clutter-filtered); required in functional mode. The recorded costs
        follow the paper's Fig 5 accounting: transpose + (1-bit) packing of
        the measurement, then the GEMM.
        """
        if self.device.is_functional:
            if measurement is None:
                raise ShapeError("functional reconstruction requires the measurement matrix")
            if measurement.shape != (self.k, self.n_frames):
                raise ShapeError(
                    f"measurement must be (K={self.k}, N={self.n_frames}), "
                    f"got {measurement.shape}"
                )
        costs: list[KernelCost] = []
        tr = traits(self.precision)
        n_meas_values = 2 * self.k * self.n_frames
        # Transpose of the measurement matrix into K-major tiled layout —
        # skipped when the experimental interleaved-input kernel is used.
        if not self.fused_transpose:
            _, t_cost = run_transpose_kernel(self.device, None, n_meas_values, tr.input_bytes)
            costs.append(t_cost)
        # 1-bit packing of the measurement (sign quantization).
        if self.precision is Precision.INT1:
            _, p_cost = run_pack_kernel(
                self.device, None, n_meas_values, input_bytes_per_value=4.0
            )
            costs.append(p_cost)
        # The reconstruction GEMM itself.
        frames = None
        if self.device.is_functional:
            if self._matched_filter is None:
                if self.model is None:
                    raise ShapeError("functional mode requires a model matrix")
                self._matched_filter = self.model.matched_filter()
            # Scale the measurement to unit RMS: the image is scale
            # invariant, and float16 inputs must stay inside half range.
            scale = float(np.abs(measurement).std()) or 1.0
            result = self._plan.run(
                self._matched_filter[None, ...].astype(np.complex64),
                (measurement / scale)[None, ...].astype(np.complex64),
            )
            frames = result.output[0]
            costs.append(result.cost)
        else:
            costs.append(self._plan.run().cost)
        total = combine_costs("ultrasound_reconstruction", costs)
        return ReconstructionResult(frames=frames, costs=costs, total=total)


def _planar(complex_matrix: np.ndarray) -> np.ndarray:
    """(R, C) complex -> (2, R, C) planar float32."""
    return np.stack([complex_matrix.real, complex_matrix.imag]).astype(np.float32)
