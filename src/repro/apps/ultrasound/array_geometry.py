"""Transducer array and coded-aperture geometry for cUSi.

Computational ultrasound imaging (paper §V-A, refs [9, 10]) images a 3D
volume with "a spatially under-sampled transceiver array in conjunction with
a spatial encoding mask". We model:

* a small planar transceiver array (64 elements in the paper's mouse-brain
  experiment) on a regular grid;
* the encoding mask as an aberrating delay layer: every element gets a
  random extra propagation delay that varies with the direction of the
  voxel, sampled on a coarse grid of direction bins. This is the property
  the technique needs — each voxel acquires a quasi-unique temporal
  signature across elements — without simulating the physical plastic
  layer's acoustics;
* per-transmission random phase codes (the paper uses 32 transmissions per
  frame; each transmission insonifies the volume with a different code so
  the rows of the model matrix are diverse).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ShapeError
from repro.util.rng import derive_seed, make_rng

#: speed of sound in soft tissue, m/s.
SPEED_OF_SOUND = 1540.0


@dataclass(frozen=True)
class TransducerArray:
    """A planar grid of ultrasound transceivers at z = 0.

    ``n_x`` x ``n_y`` elements at ``pitch_m`` spacing, centred on the origin.
    """

    n_x: int = 8
    n_y: int = 8
    pitch_m: float = 0.5e-3

    @property
    def n_elements(self) -> int:
        return self.n_x * self.n_y

    def positions(self) -> np.ndarray:
        """(n_elements, 3) element centre coordinates in metres."""
        xs = (np.arange(self.n_x) - (self.n_x - 1) / 2.0) * self.pitch_m
        ys = (np.arange(self.n_y) - (self.n_y - 1) / 2.0) * self.pitch_m
        gx, gy = np.meshgrid(xs, ys, indexing="ij")
        return np.column_stack([gx.ravel(), gy.ravel(), np.zeros(self.n_elements)])


@dataclass(frozen=True)
class CodedAperture:
    """The spatial encoding mask as a direction-binned random delay screen.

    ``delay_rms_s`` sets the aberration strength (of order one period of the
    centre frequency, as a physical mask would). ``n_direction_bins`` is the
    angular granularity of the screen in each transverse direction.
    """

    n_elements: int
    delay_rms_s: float = 3.0e-7
    n_direction_bins: int = 16
    seed: int = 2017  # Kruizinga et al. year, for flavour

    def delays(self, element_positions: np.ndarray, voxel_positions: np.ndarray) -> np.ndarray:
        """Mask delay for every (element, voxel) pair, seconds.

        The voxel's direction from the array centre is quantized into bins;
        each (element, bin) pair carries an independent Gaussian delay. The
        result has shape (n_elements, n_voxels).
        """
        if element_positions.shape[0] != self.n_elements:
            raise ShapeError(
                f"mask built for {self.n_elements} elements, got "
                f"{element_positions.shape[0]}"
            )
        rng = make_rng(derive_seed(self.seed, "mask-screen"))
        screen = rng.normal(
            scale=self.delay_rms_s,
            size=(self.n_elements, self.n_direction_bins, self.n_direction_bins),
        )
        direction = voxel_positions / np.linalg.norm(voxel_positions, axis=1, keepdims=True)
        # Map direction cosines (dx, dy) in [-1, 1] onto bin indices.
        bx = np.clip(
            ((direction[:, 0] + 1.0) / 2.0 * self.n_direction_bins).astype(int),
            0,
            self.n_direction_bins - 1,
        )
        by = np.clip(
            ((direction[:, 1] + 1.0) / 2.0 * self.n_direction_bins).astype(int),
            0,
            self.n_direction_bins - 1,
        )
        return screen[:, bx, by]


@dataclass(frozen=True)
class TransmissionScheme:
    """Per-transmission random phase codes over the array elements."""

    n_transmissions: int
    n_elements: int
    seed: int = 32

    def codes(self) -> np.ndarray:
        """(n_transmissions, n_elements) unit-magnitude complex codes."""
        rng = make_rng(derive_seed(self.seed, "tx-codes"))
        phases = rng.uniform(0.0, 2.0 * np.pi, size=(self.n_transmissions, self.n_elements))
        return np.exp(1j * phases)


@dataclass(frozen=True)
class VoxelGrid:
    """A rectangular imaging volume in front of the array."""

    shape: tuple[int, int, int] = (16, 16, 16)
    spacing_m: float = 0.2e-3
    origin_m: tuple[float, float, float] = (0.0, 0.0, 4.0e-3)

    @property
    def n_voxels(self) -> int:
        nx, ny, nz = self.shape
        return nx * ny * nz

    def positions(self) -> np.ndarray:
        """(n_voxels, 3) voxel centres in metres, x-fastest ordering."""
        nx, ny, nz = self.shape
        xs = (np.arange(nx) - (nx - 1) / 2.0) * self.spacing_m + self.origin_m[0]
        ys = (np.arange(ny) - (ny - 1) / 2.0) * self.spacing_m + self.origin_m[1]
        zs = np.arange(nz) * self.spacing_m + self.origin_m[2]
        gz, gy, gx = np.meshgrid(zs, ys, xs, indexing="ij")
        return np.column_stack([gx.ravel(), gy.ravel(), gz.ravel()])

    def to_volume(self, flat: np.ndarray) -> np.ndarray:
        """Reshape a flat voxel vector back to (nz, ny, nx)."""
        nx, ny, nz = self.shape
        if flat.shape[-1] != self.n_voxels:
            raise ShapeError(f"expected {self.n_voxels} voxels, got {flat.shape[-1]}")
        return flat.reshape(flat.shape[:-1] + (nz, ny, nx))
