"""Pulse-echo acoustic model in the temporal-frequency domain.

The cUSi reconstruction operates on temporal frequencies (the paper's model
matrix has "128 (temporal frequencies) x 64 (transceivers) x 32
transmissions" rows). We model monochromatic propagation with the free-space
Green's function::

    G(f, a -> b) = exp(-2*pi*i*f*(|b - a|/c + tau_mask)) / |b - a|

and a Gaussian transmit pulse spectrum around the centre frequency. The
expected pulse-echo signal of a unit scatterer in voxel v for transmission t,
receive element e, frequency f is::

    h[f, e, t](v) = S(f) * [ sum_e' c_t[e'] G(f, e' -> v) ] * G(f, v -> e)

i.e. encoded transmit field times return path — exactly the quantity the
paper's model matrix tabulates per voxel.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.ultrasound.array_geometry import SPEED_OF_SOUND


@dataclass(frozen=True)
class PulseSpectrum:
    """Gaussian amplitude spectrum of the transmit pulse."""

    centre_hz: float = 5.0e6
    fractional_bandwidth: float = 0.6

    def frequencies(self, n_frequencies: int) -> np.ndarray:
        """The temporal-frequency grid: ``n_frequencies`` bins across the
        pulse's -6 dB band."""
        half_band = self.centre_hz * self.fractional_bandwidth / 2.0
        return np.linspace(self.centre_hz - half_band, self.centre_hz + half_band, n_frequencies)

    def amplitude(self, f_hz: np.ndarray) -> np.ndarray:
        sigma = self.centre_hz * self.fractional_bandwidth / 2.355  # FWHM -> sigma
        return np.exp(-0.5 * ((np.asarray(f_hz) - self.centre_hz) / sigma) ** 2)


def greens_function(
    f_hz: np.ndarray,
    from_positions: np.ndarray,
    to_positions: np.ndarray,
    extra_delay_s: np.ndarray | None = None,
    speed: float = SPEED_OF_SOUND,
) -> np.ndarray:
    """Monochromatic free-space propagation between two point sets.

    Shapes: ``f_hz`` (F,), ``from_positions`` (A, 3), ``to_positions``
    (B, 3), optional ``extra_delay_s`` (A, B). Returns (F, A, B) complex64.
    """
    f_hz = np.atleast_1d(np.asarray(f_hz, dtype=np.float64))
    diff = from_positions[:, None, :] - to_positions[None, :, :]
    dist = np.linalg.norm(diff, axis=-1)
    delay = dist / speed
    if extra_delay_s is not None:
        delay = delay + extra_delay_s
    phase = -2.0 * np.pi * f_hz[:, None, None] * delay[None, :, :]
    amp = 1.0 / np.maximum(dist, 1e-6)
    return (amp[None, :, :] * np.exp(1j * phase)).astype(np.complex64)


def pulse_echo_response(
    f_hz: np.ndarray,
    element_positions: np.ndarray,
    voxel_positions: np.ndarray,
    tx_codes: np.ndarray,
    mask_delays: np.ndarray | None = None,
    spectrum: PulseSpectrum | None = None,
) -> np.ndarray:
    """Expected pulse-echo signals for every (frequency, element, transmission, voxel).

    Returns a complex64 array of shape (F, E, T, V): the building block of
    the cUSi model matrix. ``mask_delays`` (E, V) applies the coded aperture
    on both the transmit and receive paths (the wave crosses the mask twice).
    """
    spectrum = spectrum or PulseSpectrum()
    s = spectrum.amplitude(f_hz).astype(np.float32)
    # (F, E, V) one-way propagation element -> voxel, mask applied.
    g_out = greens_function(f_hz, element_positions, voxel_positions, mask_delays)
    # Encoded transmit field per (F, T, V): sum over transmit elements.
    tx_field = np.einsum("te,fev->ftv", tx_codes.astype(np.complex64), g_out)
    # Return path voxel -> element is reciprocal: same Green's function.
    # h[f, e, t, v] = S(f) * tx_field[f, t, v] * g_out[f, e, v]
    h = s[:, None, None, None] * g_out[:, :, None, :] * tx_field[:, None, :, :]
    return h.astype(np.complex64)
