"""cUSi model matrix construction.

"The imaging reconstruction relies on the multiplication of a measurement
matrix with an acoustic model matrix which contains for every voxel in the
image volume (number of columns) all the expected pulse-echo signals for
each transceiver and for each measurement (number of rows)." (paper §V-A)

Rows are ordered (frequency, element, transmission) — F x E x T rows — and
columns are voxels. The matrix is built once per imaging configuration and
reused for every frame; in the 1-bit pipeline it is sign-quantized and
packed once "before the experiment", which is why Fig 5 excludes its packing
time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.apps.ultrasound.acoustics import PulseSpectrum, pulse_echo_response
from repro.apps.ultrasound.array_geometry import (
    CodedAperture,
    TransducerArray,
    TransmissionScheme,
    VoxelGrid,
)
from repro.errors import ShapeError


@dataclass(frozen=True)
class ImagingConfig:
    """Static description of one cUSi imaging setup."""

    array: TransducerArray = field(default_factory=TransducerArray)
    grid: VoxelGrid = field(default_factory=VoxelGrid)
    n_frequencies: int = 16
    n_transmissions: int = 8
    spectrum: PulseSpectrum = field(default_factory=PulseSpectrum)
    mask_delay_rms_s: float = 3.0e-7

    @property
    def n_rows(self) -> int:
        """K of the reconstruction GEMM: F x E x T."""
        return self.n_frequencies * self.array.n_elements * self.n_transmissions

    @property
    def n_voxels(self) -> int:
        return self.grid.n_voxels


@dataclass(frozen=True)
class ModelMatrix:
    """The acoustic model matrix H with metadata.

    ``data`` has shape (K, V) complex64 with K = F*E*T rows. The
    reconstruction GEMM uses A = conj(H).T (matched filter), so helpers for
    that orientation are provided.
    """

    data: np.ndarray
    config: ImagingConfig

    @property
    def k(self) -> int:
        return self.data.shape[0]

    @property
    def n_voxels(self) -> int:
        return self.data.shape[1]

    def matched_filter(self, normalize: bool = True) -> np.ndarray:
        """A-operand of the reconstruction GEMM: (V, K) = conj(H).T.

        With ``normalize`` (default) every row is scaled to unit L2 norm:
        the per-voxel signature becomes depth-unbiased (the raw Green's
        functions carry 1/R amplitudes that would otherwise favour shallow
        voxels), the noise variance of every output voxel is equal, and the
        entries are O(1/sqrt(K)) — comfortably inside float16 range.
        """
        filt = self.data.conj().T
        if normalize:
            norms = np.linalg.norm(self.data, axis=0)
            filt = filt / np.maximum(norms[:, None], 1e-30)
        return np.ascontiguousarray(filt.astype(np.complex64))


def build_model_matrix(config: ImagingConfig) -> ModelMatrix:
    """Build H for a configuration (functional scale).

    Memory scales as F*E*T*V complex64; intended for test/example-sized
    volumes — paper-scale runs use the dry-run cost path which never
    materializes the matrix.
    """
    elements = config.array.positions()
    voxels = config.grid.positions()
    mask = CodedAperture(n_elements=config.array.n_elements, delay_rms_s=config.mask_delay_rms_s)
    delays = mask.delays(elements, voxels)
    codes = TransmissionScheme(
        n_transmissions=config.n_transmissions, n_elements=config.array.n_elements
    ).codes()
    freqs = config.spectrum.frequencies(config.n_frequencies)
    h = pulse_echo_response(freqs, elements, voxels, codes, mask_delays=delays,
                            spectrum=config.spectrum)
    f, e, t, v = h.shape
    if (f, e, t) != (config.n_frequencies, config.array.n_elements, config.n_transmissions):
        raise ShapeError(f"unexpected response shape {h.shape}")
    return ModelMatrix(data=h.reshape(f * e * t, v), config=config)


def paper_scale_config() -> ImagingConfig:
    """The paper's full-scale real-time setup: 128 frequencies, 64
    transceivers, 32 transmissions, 128^3 voxels -> K = 262144.

    Only usable with dry-run devices (the model matrix would be 137 GB at
    1-bit packing for the full volume).
    """
    return ImagingConfig(
        array=TransducerArray(n_x=8, n_y=8),
        grid=VoxelGrid(shape=(128, 128, 128)),
        n_frequencies=128,
        n_transmissions=32,
    )


def recorded_dataset_config() -> ImagingConfig:
    """The pre-recorded mouse-brain dataset of Fig 6 / ref [10]:
    128 frequencies, 64 transceivers, 64 transmissions -> K = 524288 and
    8041 frames. The paper quotes the sub-volume as "36 x 30 x 30 voxels"
    but M = 38880 = 36*30*36; we keep the quoted M via a 36x30x36 grid."""
    return ImagingConfig(
        array=TransducerArray(n_x=8, n_y=8),
        grid=VoxelGrid(shape=(36, 30, 36)),
        n_frequencies=128,
        n_transmissions=64,
    )
