"""Measurement (frame ensemble) simulation for cUSi.

Each frame j yields a measurement vector ``y_j = H @ x_j + noise`` where
``x_j`` is the instantaneous scatterer amplitude per voxel:

* tissue contributes a constant (stationary clutter, dominant);
* blood contributes a rotating phasor ``a_v * exp(i * omega_v * j)`` whose
  Doppler rate ``omega_v`` follows the voxel's flow speed — the standard
  narrowband model of a scatterer population drifting through the voxel.

The measurement matrix of the reconstruction GEMM is the stack of frames:
``Y`` with shape (K, N_frames) — "the measurement matrix has the same number
of rows as the model matrix and the number of columns equals the number of
repeated measurements" (paper §V-A). The ensemble size ranges 100-10000
frames; the paper's example uses ~8000.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.ultrasound.array_geometry import SPEED_OF_SOUND
from repro.apps.ultrasound.model_matrix import ModelMatrix
from repro.apps.ultrasound.phantom import VascularPhantom
from repro.errors import ShapeError
from repro.util.rng import derive_seed, make_rng


@dataclass(frozen=True)
class EnsembleConfig:
    """Frame-ensemble acquisition parameters.

    ``noise_rms`` is the receiver-noise level *relative to the blood
    (Doppler) signal component* of the measurement — receiver noise in a
    functional-ultrasound acquisition sits far below the tissue echo but
    must not drown the blood signal the clutter filter is meant to reveal.
    """

    n_frames: int = 64
    frame_rate_hz: float = 1000.0  # paper: 32 kHz PRF / 32 transmissions
    noise_rms: float = 0.10
    seed: int = 7


def doppler_rate(flow_speed: np.ndarray, centre_hz: float, frame_rate_hz: float) -> np.ndarray:
    """Per-voxel Doppler phase advance per frame (radians).

    omega = 2 * (v/c) * 2*pi*f0 / frame_rate — the classic two-way Doppler
    shift sampled at the frame rate.
    """
    return 2.0 * flow_speed / SPEED_OF_SOUND * 2.0 * np.pi * centre_hz / frame_rate_hz


def simulate_frames(
    model: ModelMatrix,
    phantom: VascularPhantom,
    ensemble: EnsembleConfig,
) -> np.ndarray:
    """Simulate the measurement matrix Y of shape (K, n_frames), complex64.

    The per-frame voxel state is ``tissue + blood * exp(i*omega*j)`` plus
    white receiver noise on every channel.
    """
    if phantom.grid.n_voxels != model.n_voxels:
        raise ShapeError(f"phantom has {phantom.grid.n_voxels} voxels, model {model.n_voxels}")
    rng = make_rng(derive_seed(ensemble.seed, "frames"))
    centre = model.config.spectrum.centre_hz
    omega = doppler_rate(phantom.flow_speed, centre, ensemble.frame_rate_hz)
    blood = phantom.blood_amplitude.astype(np.complex64)
    tissue = phantom.tissue_amplitude.astype(np.complex64)
    # Random but fixed scatterer phases per voxel.
    blood_phase = np.exp(1j * rng.uniform(0, 2 * np.pi, size=blood.shape)).astype(np.complex64)
    tissue_phase = np.exp(1j * rng.uniform(0, 2 * np.pi, size=tissue.shape)).astype(np.complex64)
    frames = np.arange(ensemble.n_frames)
    # x has shape (V, N): voxel state per frame.
    rotation = np.exp(1j * np.outer(omega, frames)).astype(np.complex64)
    x = tissue[:, None] * tissue_phase[:, None] + blood[:, None] * blood_phase[:, None] * rotation
    y = model.data @ x
    # Receiver noise scaled to the blood-signal component (see class doc).
    y_blood_rms = float(np.abs(model.data @ (blood * blood_phase)).std())
    if y_blood_rms == 0.0:
        y_blood_rms = float(np.abs(y).std())
    noise = rng.normal(scale=1.0, size=(2,) + y.shape).astype(np.float32)
    y = y + (noise[0] + 1j * noise[1]) * (ensemble.noise_rms * y_blood_rms / np.sqrt(2.0))
    return y.astype(np.complex64)
