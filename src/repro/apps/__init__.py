"""Domain applications of the Tensor-Core Beamformer (paper §V)."""
