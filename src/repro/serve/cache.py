"""Plan cache: skip planning and one-time weight preparation on repeat.

Building a :class:`~repro.tcbf.plan.BeamformerPlan` is not free in a real
deployment: tuning-parameter resolution, kernel selection, and — costliest
— the one-time A-operand preparation (tiling transpose plus 1-bit packing,
the step the paper explicitly keeps out of the per-block budget because "it
typically happens once before the experiment"). A service that rebuilt the
plan per batch would pay that on every launch.

:class:`PlanCache` memoizes plans per ``(device, workload compatibility,
merged batch extent)`` — the serving-level view of
:attr:`BeamformerPlan.cache_key <repro.tcbf.plan.BeamformerPlan.cache_key>`
— alongside the predicted per-block stage costs, so steady-state dispatch
is a dictionary hit. Capacity is bounded with LRU eviction: a workload
churn (e.g. a calibration bump changing ``weights_version``) ages the stale
generation out instead of growing without bound.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.errors import ShapeError
from repro.gpusim.device import Device
from repro.serve.workload import Workload
from repro.tcbf import BeamformerPlan

#: modelled one-time planning overhead per cache miss (tuning-parameter
#: resolution + kernel selection), on top of the weight-preparation kernels.
DEFAULT_BUILD_OVERHEAD_S = 250e-6


@dataclass
class CachedPlan:
    """One resident plan plus its memoized per-block cost prediction."""

    plan: BeamformerPlan
    #: per-block streaming stage time (transpose + packing), seconds.
    stage_in_s: float
    #: per-block GEMM time, seconds.
    gemm_s: float
    #: one-time build latency charged when the entry faulted in.
    build_s: float
    hits: int = 0


class PlanCache:
    """Bounded LRU cache of built beamformer plans, segmented per device.

    :meth:`get` returns ``(entry, build_latency_s)``: the latency is the
    one-time planning + weight-preparation charge and is non-zero only on a
    miss — the dispatcher adds it to that batch's critical path, which is
    exactly the cold-start penalty a real serving tier shows.

    Capacity is accounted **per device**: each device in the fleet gets its
    own LRU segment of ``capacity`` entries. Plans hold device-resident
    state, so an entry is only ever useful to the device that built it —
    one shared LRU would let a high-churn device (say, a bucket-less MI300X
    taking every odd shape) evict a quiet GH200's hot plans, coupling the
    devices' cold-start behavior for no benefit. With per-device segments,
    one device's churn can never evict another device's entries.
    """

    def __init__(
        self,
        capacity: int = 64,
        build_overhead_s: float = DEFAULT_BUILD_OVERHEAD_S,
    ):
        if capacity < 1:
            raise ShapeError(f"cache capacity must be >= 1, got {capacity}")
        if build_overhead_s < 0:
            raise ShapeError(f"build overhead must be >= 0, got {build_overhead_s}")
        self.capacity = capacity
        self.build_overhead_s = build_overhead_s
        #: per-device LRU segments: device id -> (entry key -> entry).
        self._segments: dict[int, OrderedDict[tuple, CachedPlan]] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        #: entries dropped by whole-segment release (scale-down), not LRU.
        self.released = 0
        #: lifetime per-segment lookup stats: device id -> [hits, misses].
        #: Survives :meth:`release` — a retired worker's cold-start bill is
        #: part of the run's story even after its plans are dropped.
        self._segment_stats: dict[int, list[int]] = {}

    def __len__(self) -> int:
        return sum(len(seg) for seg in self._segments.values())

    @property
    def hit_rate(self) -> float:
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def key(self, device: Device, workload: Workload, n_requests: int) -> tuple:
        """Cache key: device *instance*, workload compatibility, merged extent.

        Keyed on the device's identity, not its catalog name: a plan holds
        device-resident state (prepared weights, recorded kernels land on
        that device's timeline), so two same-model GPUs in one fleet must
        each fault in — and pay for — their own build, exactly as a real
        deployment JIT-compiles and stages weights per device. The device
        component also selects the LRU segment the entry lives (and is
        evicted) in.
        """
        return (id(device), workload.compat_key(), n_requests)

    def contains(self, device: Device, workload: Workload, n_requests: int) -> bool:
        """Whether a dispatch would hit, without touching LRU order."""
        segment = self._segments.get(id(device))
        return segment is not None and self.key(device, workload, n_requests) in segment

    def entries_for(self, device: Device) -> int:
        """Resident entry count of one device's segment."""
        return len(self._segments.get(id(device), ()))

    def segment_stats(self, device: Device) -> tuple[int, int]:
        """Lifetime ``(hits, misses)`` of one device's segment.

        Per-device cold-start accounting for reports: the fleet-wide
        :attr:`hits`/:attr:`misses` hide which worker paid the builds (a
        scaled-up worker faults in everything; a seed worker mostly hits).
        Stats persist across :meth:`release`.
        """
        stats = self._segment_stats.get(id(device))
        return (stats[0], stats[1]) if stats is not None else (0, 0)

    def release(self, device: Device) -> int:
        """Drop one device's whole segment; returns the entry count freed.

        The scale-down path: a retired worker's plans hold device-resident
        state (prepared weights, recorded kernels) that leaves with the
        device, so the segment is released rather than left to age out.
        Released entries are counted separately from LRU evictions — a
        shrinking fleet is not cache churn.
        """
        segment = self._segments.pop(id(device), None)
        freed = len(segment) if segment is not None else 0
        self.released += freed
        return freed

    def get(self, device: Device, workload: Workload, n_requests: int) -> tuple[CachedPlan, float]:
        """Look up (or build) the merged-batch plan for a dispatch.

        On a miss the plan is constructed, its one-time weight preparation
        runs (cost-only — functional execution re-reads the raw weights per
        block, so calibration updates between blocks stay honored), and the
        per-block stage costs are predicted once and memoized. Eviction, if
        needed, comes from this device's own segment.
        """
        segment = self._segments.get(id(device))
        if segment is None:
            segment = self._segments[id(device)] = OrderedDict()
        stats = self._segment_stats.get(id(device))
        if stats is None:
            stats = self._segment_stats[id(device)] = [0, 0]
        key = self.key(device, workload, n_requests)
        entry = segment.get(key)
        if entry is not None:
            segment.move_to_end(key)
            entry.hits += 1
            self.hits += 1
            stats[0] += 1
            return entry, 0.0
        self.misses += 1
        stats[1] += 1
        plan = workload.make_plan(device, n_requests)
        prep = plan.prepare_weights(name=f"serve_weight_prep_{workload.name}")
        stage_in = plan.stage_in_cost()
        entry = CachedPlan(
            plan=plan,
            stage_in_s=stage_in.time_s if stage_in is not None else 0.0,
            gemm_s=plan.predict_gemm_cost().time_s,
            build_s=self.build_overhead_s + prep.time_s,
        )
        segment[key] = entry
        if len(segment) > self.capacity:
            segment.popitem(last=False)
            self.evictions += 1
        return entry, entry.build_s
