"""Cost-model-driven placement: one decision point for route / merge / split.

The paper's core argument is that beamforming throughput is won by matching
the workload to the hardware: tensor-core peaks are precision-dependent
(1-bit exists on NVIDIA only), transpose/pack overheads differ per device,
and sustained clocks vary part to part (paper Tables I/III). A serving tier
that routes purely by backlog ignores all of that. The :class:`Placer`
instead consults the per-device cost model (every candidate device's
:class:`~repro.tcbf.plan.BeamformerPlan` predictions) and produces an
explicit :class:`PlacementDecision` for each request:

* **route** — the request fits one device; dispatch will pick the eligible
  worker whose predicted finish (backlog + stage-in + GEMM at *that*
  device's costs) is earliest. On a homogeneous fleet every device predicts
  the same costs and this collapses to the old least-loaded rule — which is
  therefore the trivial special case of cost-aware placement, not a
  separate code path.
* **merge** — the request's sample count falls inside a shape bucket
  (:attr:`BatchingPolicy.sample_buckets`); it is padded to the bucket edge
  so *nearby* shapes share one merged launch. The padded columns are priced
  by the cost model (the plan is built at the padded shape), trading padded
  FLOPs for fewer, fuller launches.
* **split** — the request exceeds every single device's memory; it is
  sharded across the capable workers along the batch axis (the same
  shard-plan construction as :class:`~repro.tcbf.sharding.ShardedBeamformer`,
  via :func:`~repro.tcbf.sharding.split_extent`), executed concurrently,
  and completed at the slowest shard.
* **shed** — no capable device exists (e.g. int1 on an AMD-only fleet) or
  the request cannot be made to fit even sharded; admission turns this into
  an explicit front-door rejection instead of a doomed queue entry.

Design decisions worth knowing:

* *Cold builds are not a routing penalty.* The predicted finish excludes
  the one-time plan-build charge: builds amortize, and penalizing them
  would permanently pin traffic to whichever device happened to warm first
  — exactly wrong for fleet growth. The build is still charged to the
  batch that faults it in (the plan cache's job), just not double-counted
  as a routing deterrent.
* *Estimates are memoized, never recorded.* Pricing a candidate device
  builds a plan and asks its pure ``predict_*``/``stage_in_cost`` methods;
  nothing lands on any device timeline, so what-if costing cannot perturb
  the simulation (see :meth:`BeamformerPlan.predict_weight_prep_cost
  <repro.tcbf.plan.BeamformerPlan.predict_weight_prep_cost>`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.errors import DeviceError, ShapeError
from repro.serve.workload import Workload
from repro.tcbf import split_extent_weighted

if TYPE_CHECKING:
    from repro.serve.batching import Batch, BatchingPolicy
    from repro.serve.cache import PlanCache
    from repro.serve.dispatch import DeviceWorker

#: fraction of a device's memory the placer lets one merged problem claim
#: (operands + output; leaves headroom for staging buffers and the runtime).
DEFAULT_MEMORY_FRACTION = 0.9

#: effective device-to-device bandwidth for moving an inter-stage buffer
#: between workers, bytes/s. PCIe-class: the fleet model assumes no NVLink
#: fabric between *workers* (a worker is one device), so a successor stage
#: placed off the producer's device pays an explicit host-mediated transfer.
INTERCONNECT_BANDWIDTH = 25e9


class PlacementKind(enum.Enum):
    """What the placer decided to do with a request."""

    ROUTE = "route"
    MERGE = "merge"
    SPLIT = "split"
    SHED = "shed"


@dataclass(frozen=True)
class PlacementCost:
    """Memoized per-device cost-model prediction for one merged workload."""

    #: per-block streaming stage time (transpose + packing), seconds.
    stage_in_s: float
    #: per-block GEMM time, seconds.
    gemm_s: float
    #: one-time plan build + weight preparation, charged only when cold.
    build_s: float

    @property
    def service_s(self) -> float:
        """Steady-state service time of one launch (build excluded)."""
        return self.stage_in_s + self.gemm_s


@dataclass(frozen=True)
class PlacementDecision:
    """The explicit outcome of placing one request.

    ``workload`` is what will actually execute: the request's own workload
    for route/split/shed, the bucket-padded one for merge. For a split,
    ``shard_extents[i]`` is the batch extent placed on the worker with
    index ``shard_worker_indices[i]``.
    """

    kind: PlacementKind
    workload: Workload
    #: why a shed decision was made ("capability" or "capacity").
    reason: str = ""
    shard_extents: tuple[int, ...] = ()
    shard_worker_indices: tuple[int, ...] = ()

    @property
    def is_shed(self) -> bool:
        return self.kind is PlacementKind.SHED

    @property
    def n_shards(self) -> int:
        return len(self.shard_extents)


class Placer:
    """The fleet's single placement decision point.

    Bound to a fleet's workers and plan cache by
    :meth:`~repro.serve.dispatch.FleetDispatcher` at construction
    (:meth:`attach`); stateless apart from the memoized cost table and the
    lifetime decision counters, so one placer serves a whole trace
    deterministically.
    """

    def __init__(
        self,
        memory_fraction: float = DEFAULT_MEMORY_FRACTION,
        stage_locality: bool = True,
    ):
        if not 0.0 < memory_fraction <= 1.0:
            raise ShapeError(f"memory_fraction must be in (0, 1], got {memory_fraction}")
        self.memory_fraction = memory_fraction
        #: score pipeline-stage routing by buffer residency: a successor
        #: stage on the producing worker elides stage-in for the resident
        #: fraction; off-worker placement is scored with the interconnect
        #: transfer it will pay. ``False`` is the stage-blind baseline (the
        #: serve-pipeline bench's comparison arm) — the transfer is still
        #: *charged* at dispatch either way (physics is not a policy knob);
        #: single-kernel batches are unaffected entirely.
        self.stage_locality = stage_locality
        self._workers: list[DeviceWorker] = []
        self._cache: PlanCache | None = None
        self._costs: dict[tuple, PlacementCost] = {}
        #: lifetime decision counters by kind value (the report's view).
        self.decisions: dict[str, int] = {}
        #: optional metrics registry ("placement.*" counters).
        self.metrics = None

    def attach(self, workers: list[DeviceWorker], cache: PlanCache) -> None:
        """Bind to a fleet (called once by the dispatcher).

        The worker list is held by reference, not copied: elastic fleets
        mutate it (scale-up appends, retirement removes) and every placement
        decision must see the fleet as it is *now* — a worker that joined a
        microsecond ago is already a routing candidate, and one that
        retired is not.
        """
        self._workers = workers
        self._cache = cache

    # -- eligibility ---------------------------------------------------------

    def capable_workers(
        self, workload: Workload, include_draining: bool = False
    ) -> list[DeviceWorker]:
        """Workers whose architecture supports the workload's precision.

        Draining workers are excluded by default: a worker being scaled
        down takes no *new* placements (it only finishes committed work).
        ``include_draining=True`` is the dispatcher's fallback for batches
        admitted before the drain began whose only capable workers are all
        draining.
        """
        return [
            w
            for w in self._workers
            if workload.supported_by(w.device.spec)
            and (include_draining or w.accepting)
        ]

    def fits(self, worker: DeviceWorker, workload: Workload, n_requests: int = 1) -> bool:
        """Whether the merged problem's operands fit one device's memory."""
        limit = self.memory_fraction * worker.device.spec.mem_bytes
        return workload.footprint_bytes(n_requests) <= limit

    def eligible_workers(self, workload: Workload, n_requests: int = 1) -> list[DeviceWorker]:
        """Capable workers that can also hold the merged problem."""
        return [w for w in self.capable_workers(workload) if self.fits(w, workload, n_requests)]

    # -- the cost model ------------------------------------------------------

    def estimate(
        self, worker: DeviceWorker, workload: Workload, n_requests: int
    ) -> PlacementCost:
        """Per-device cost prediction for the merged workload (memoized).

        Builds the candidate plan once per (device, workload compatibility,
        merged extent) and caches its pure predictions; the device timeline
        is never touched.
        """
        key = (id(worker.device), workload.compat_key(), n_requests)
        cost = self._costs.get(key)
        if cost is None:
            plan = workload.make_plan(worker.device, n_requests)
            stage_in = plan.stage_in_cost()
            overhead = self._cache.build_overhead_s if self._cache is not None else 0.0
            cost = self._costs[key] = PlacementCost(
                stage_in_s=stage_in.time_s if stage_in is not None else 0.0,
                gemm_s=plan.predict_gemm_cost().time_s,
                build_s=overhead + plan.predict_weight_prep_cost().time_s,
            )
        return cost

    def stage_in_s(
        self, worker: "DeviceWorker", batch: "Batch", cost: PlacementCost
    ) -> float | None:
        """Locality-adjusted stage-in time for a pipeline-stage batch.

        Returns ``None`` for single-kernel batches (no inter-stage input) —
        the caller falls back to the plain ``stage_in_s``, preserving legacy
        timing byte-exactly. For a stage batch, the fraction of the input
        already resident on ``worker`` (its dependency stages executed
        there) skips stage-in; the remainder is charged an interconnect
        transfer on top of the device's own streaming cost:

        ``stage_in = cost.stage_in_s * (1 - resident) + moved_bytes / BW``

        This is *physics*, not policy: dispatch charges it at execution
        regardless of :attr:`stage_locality` (which only controls whether
        :meth:`select_worker` scores with it). The memoized estimate itself
        is never mutated: the adjustment is a pure function of the batch's
        residency, so what-if costing of other candidates stays
        unperturbed.
        """
        total = batch.stage_input_bytes
        if total <= 0:
            return None
        resident = batch.resident_bytes_on(worker.index)
        resident_frac = resident / total
        moved = total - resident
        return cost.stage_in_s * (1.0 - resident_frac) + moved / INTERCONNECT_BANDWIDTH

    def predicted_service_s(self, workload: Workload, n_requests: int) -> float:
        """Best-device steady-state service time of one merged launch.

        The admission controller's per-device replacement for the old
        global service-time EMA: the minimum predicted stage-in + GEMM over
        the workers this workload may actually land on.
        """
        candidates = self.eligible_workers(workload, n_requests) or (self.capable_workers(workload))
        if not candidates:
            return float("inf")
        return min(self.estimate(w, workload, n_requests).service_s for w in candidates)

    def _worker_at(self, index: int) -> "DeviceWorker":
        """The attached worker with a declared index (list-order robust)."""
        worker = self._workers[index] if index < len(self._workers) else None
        if worker is not None and worker.index == index:
            return worker
        return next(w for w in self._workers if w.index == index)

    def predicted_split_service_s(self, decision: PlacementDecision) -> float:
        """Service time of a split placement: the slowest shard's launch."""
        return max(
            self.estimate(
                self._worker_at(idx), decision.workload.shard(extent), 1
            ).service_s
            for idx, extent in zip(
                decision.shard_worker_indices, decision.shard_extents
            )
        )

    # -- ingress decisions ---------------------------------------------------

    def place(self, workload: Workload, policy: "BatchingPolicy") -> PlacementDecision:
        """Decide one arriving request: route, merge, split, or shed."""
        decision = self._place(workload, policy)
        kind = decision.kind.value
        self.decisions[kind] = self.decisions.get(kind, 0) + 1
        if self.metrics is not None:
            self.metrics.inc(f"placement.{kind}")
        return decision

    def _place(self, workload: Workload, policy: "BatchingPolicy") -> PlacementDecision:
        capable = self.capable_workers(workload)
        if not capable:
            return PlacementDecision(
                kind=PlacementKind.SHED, workload=workload, reason="capability"
            )
        if any(self.fits(w, workload) for w in capable):
            padded = workload.padded_to(policy.bucket_samples(workload.n_samples))
            if padded is not workload and any(self.fits(w, padded) for w in capable):
                return PlacementDecision(kind=PlacementKind.MERGE, workload=padded)
            return PlacementDecision(kind=PlacementKind.ROUTE, workload=workload)
        split = self._plan_split(workload, capable)
        if split is None:
            return PlacementDecision(kind=PlacementKind.SHED, workload=workload, reason="capacity")
        extents, indices = split
        return PlacementDecision(
            kind=PlacementKind.SPLIT,
            workload=workload,
            shard_extents=extents,
            shard_worker_indices=indices,
        )

    def _plan_split(
        self, workload: Workload, capable: list["DeviceWorker"]
    ) -> tuple[tuple[int, ...], tuple[int, ...]] | None:
        """Shard extents + target workers for an oversized request.

        Prefers the widest split (all capable workers) with extents
        proportional to each device's memory
        (:func:`~repro.tcbf.sharding.split_extent_weighted` — an equal
        split would overflow the smaller device of a GH200 + MI300X pair
        long before the pair's combined memory is exhausted); falls back to
        narrower splits when the batch axis offers fewer units than
        workers. Returns ``None`` when no arrangement fits — the
        capacity-shed case.
        """
        if not workload.splittable or len(capable) < 2:
            return None
        # Larger-memory devices take the larger shard extents; ties break on
        # worker index so the assignment is replay-stable.
        ranked = sorted(
            capable, key=lambda w: (-w.device.spec.mem_bytes, w.index)
        )
        for parts in range(len(ranked), 1, -1):
            if workload.batch_per_request < parts:
                continue
            workers = ranked[:parts]
            extents = split_extent_weighted(
                workload.batch_per_request,
                [w.device.spec.mem_bytes for w in workers],
            )
            if all(self.fits(w, workload.shard(e)) for w, e in zip(workers, extents)):
                return tuple(extents), tuple(w.index for w in workers)
        return None

    # -- dispatch-time worker selection --------------------------------------

    def select_worker(
        self, batch: "Batch", candidates: Sequence["DeviceWorker"], now: float
    ) -> "DeviceWorker":
        """The candidate with the earliest predicted finish for this batch.

        Predicted finish is the worker's compute backlog plus *its own
        device's* predicted stage-in + GEMM for the merged workload — the
        cost-model-aware generalization of least-loaded. Ties break on
        worker index (replay determinism); cold builds are deliberately
        excluded (see the module docstring).

        For pipeline-stage batches with :attr:`stage_locality` on, the
        stage-in term is replaced by :meth:`stage_in_s`: the worker holding
        the producing stage's output buffer skips (its share of) stage-in,
        while every other candidate is charged the interconnect transfer —
        so locality wins routing exactly when the transfer cost exceeds the
        backlog difference, never unconditionally.
        """
        if not candidates:
            raise DeviceError("select_worker needs at least one candidate")

        def finish_key(worker: "DeviceWorker") -> tuple[float, int]:
            cost = self.estimate(worker, batch.workload, batch.n_requests)
            stage_in = self.stage_in_s(worker, batch, cost) if self.stage_locality else None
            if stage_in is None:
                # Legacy expression kept verbatim: float addition is not
                # associative, and replay byte-identity pins this ordering.
                return (worker.backlog_s(now) + cost.service_s, worker.index)
            return (worker.backlog_s(now) + (stage_in + cost.gemm_s), worker.index)

        return min(candidates, key=finish_key)
