"""Priority-class scheduling with weighted-fair queueing across tenants.

The fleet serves multiple disciplines at once — a live ultrasound view and
an offline pulsar-reprocessing campaign share the same GPUs — so the order
in which ready batches reach the workers is policy, not FIFO. The
:class:`PriorityScheduler` holds every flushed-but-undispatched batch and
answers one question: *which batch runs next?*

Two levels of decision:

* **Strict priority across classes** — a ready batch of a more urgent class
  (lower ``priority`` number) always dispatches before any batch of a less
  urgent one. This is *non-destructive preemption*: a queued low-priority
  batch yields its worker slot to a later-arriving high-priority batch, but
  an execution already placed on a worker runs to completion — the
  preemptor only waits out the in-flight work, which the service charges to
  the preemptor's critical path as queueing delay.
* **Deficit round robin (DRR) across tenants inside a class** — each tenant
  with queued work sits in a round-robin ring and accrues credit
  (``quantum x weight`` requests per visit); a tenant dispatches its
  head-of-line batch when its credit covers the batch's request count.
  Over a contended interval, tenants therefore receive dispatch service in
  proportion to their weights regardless of how unevenly they submit, and
  a tenant that goes idle forfeits its credit (no banking).

Determinism: ties break on enqueue order, the ring order is first-backlog
order, and all state advances only through :meth:`enqueue`/:meth:`next` —
the same trace always produces the same dispatch sequence.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass

from repro.errors import ShapeError
from repro.serve.batching import Batch
from repro.serve.obs.events import BatchPreempted, BatchQueued
from repro.serve.obs.trace import NULL_RECORDER

#: DRR credit (in requests) granted per ring visit, before weighting.
DEFAULT_QUANTUM = 4.0


@dataclass(frozen=True)
class QueuePressure:
    """Queued-work pressure of one priority class — the autoscaling signal.

    ``service_s`` is the sum of placer-predicted service times of the
    class's queued batches: what a policy compares against its latency
    budget to decide whether the fleet is falling behind.
    """

    n_batches: int = 0
    n_requests: int = 0
    service_s: float = 0.0

    def plus(self, batch: Batch) -> "QueuePressure":
        """This pressure with one more queued batch folded in.

        The one shared accumulation both the scheduler-side and the
        dispatcher-side (held batches) pressure views use — one place to
        extend when the pressure definition grows.
        """
        return QueuePressure(
            n_batches=self.n_batches + 1,
            n_requests=self.n_requests + batch.n_requests,
            service_s=self.service_s + batch.predicted_service_s,
        )


class _ClassQueue:
    """One priority class: per-tenant FIFO queues plus the DRR ring.

    Dispatch order is purely structural — deque FIFO within a tenant, ring
    order across tenants — so no extra sequence numbers are needed for
    determinism.
    """

    def __init__(self, quantum: float, weights: dict[str, float]):
        self._quantum = quantum
        self._weights = weights
        self._queues: OrderedDict[str, deque[Batch]] = OrderedDict()
        #: tenants with queued work, in round-robin order.
        self._ring: deque[str] = deque()
        self._deficit: dict[str, float] = {}
        #: whether the ring-front tenant received this round's credit yet —
        #: exactly one credit per visit, however many batches it then serves
        #: (crediting per *serve* would overpay whoever is at the front).
        self._credited = False

    def __len__(self) -> int:
        return sum(len(q) for q in self._queues.values())

    @property
    def n_requests(self) -> int:
        return sum(b.n_requests for q in self._queues.values() for b in q)

    @property
    def service_s(self) -> float:
        """Total placer-predicted service time queued in this class."""
        return sum(b.predicted_service_s for q in self._queues.values() for b in q)

    def batches(self):
        """Iterate queued batches (tenant ring order within the class)."""
        for queue in self._queues.values():
            yield from queue

    def enqueue(self, batch: Batch) -> None:
        tenant = batch.tenant
        queue = self._queues.get(tenant)
        if queue is None:
            queue = self._queues[tenant] = deque()
        if not queue:
            # (Re)joining the backlog: start with zero credit — an idle
            # tenant does not bank service it never asked for.
            self._ring.append(tenant)
            self._deficit[tenant] = 0.0
        queue.append(batch)

    def remove(self, batch: Batch) -> bool:
        """Remove one queued batch by identity (crash recovery path).

        Keeps the DRR structures consistent: a tenant whose queue empties
        leaves the ring and forfeits its credit, exactly as it would after
        serving its last batch. Returns whether the batch was found.
        """
        queue = self._queues.get(batch.tenant)
        if queue is None:
            return False
        try:
            queue.remove(batch)
        except ValueError:
            return False
        if not queue:
            if self._ring and self._ring[0] == batch.tenant:
                self._credited = False
            del self._queues[batch.tenant]
            del self._deficit[batch.tenant]
            self._ring.remove(batch.tenant)
        return True

    def next(self) -> Batch:
        """Pop the next batch by deficit round robin over the tenant ring."""
        while True:
            tenant = self._ring[0]
            queue = self._queues[tenant]
            head = queue[0]
            if not self._credited:
                self._deficit[tenant] += self._quantum * self._weights.get(tenant, 1.0)
                self._credited = True
            if self._deficit[tenant] >= head.n_requests:
                self._deficit[tenant] -= head.n_requests
                queue.popleft()
                if not queue:
                    del self._queues[tenant]
                    del self._deficit[tenant]
                    self._ring.popleft()
                    self._credited = False
                return head
            # Credit spent for this visit: move on to the next tenant.
            self._ring.rotate(-1)
            self._credited = False


class PriorityScheduler:
    """Ready queue of flushed batches: strict priority, DRR-fair tenants.

    Parameters
    ----------
    tenant_weights:
        DRR weight per tenant (default 1.0). A tenant with weight 3 receives
        three times the dispatch service (measured in requests) of a
        weight-1 tenant while both are backlogged at the same priority.
    quantum:
        DRR credit per ring visit in requests, before weighting. Smaller
        quanta interleave tenants more finely; the default of
        :data:`DEFAULT_QUANTUM` keeps one typical merged batch per turn.
    preemptive:
        ``True`` (default): strict priority with DRR inside each class.
        ``False``: global FIFO in enqueue order — priorities and weights are
        recorded but ignored, the pre-priority behavior of the service.
    """

    def __init__(
        self,
        tenant_weights: dict[str, float] | None = None,
        quantum: float = DEFAULT_QUANTUM,
        preemptive: bool = True,
    ):
        if quantum <= 0:
            raise ShapeError(f"DRR quantum must be positive, got {quantum}")
        self.tenant_weights = dict(tenant_weights) if tenant_weights else {}
        for tenant, weight in self.tenant_weights.items():
            if weight <= 0:
                raise ShapeError(f"tenant weight must be positive, got {weight} for {tenant!r}")
        self.quantum = quantum
        self.preemptive = preemptive
        self._classes: dict[int, _ClassQueue] = {}
        self._fifo: deque[Batch] = deque()
        #: lifetime dispatch counters per (priority, tenant), in requests.
        self.served_requests: dict[tuple[int, str], int] = {}
        #: lifetime overtakes: earlier-formed batches a pop jumped past.
        self.preemptions = 0
        #: trace recorder (the dispatcher binds the service's; default off).
        self.recorder = NULL_RECORDER
        #: optional metrics registry ("scheduler.*" counters).
        self.metrics = None

    def __len__(self) -> int:
        if not self.preemptive:
            return len(self._fifo)
        return sum(len(c) for c in self._classes.values())

    def empty(self) -> bool:
        return len(self) == 0

    def depth_requests(self) -> int:
        """Requests queued across every class (admission's backlog view)."""
        if not self.preemptive:
            return sum(b.n_requests for b in self._fifo)
        return sum(c.n_requests for c in self._classes.values())

    def queued_ahead(self, priority: int) -> int:
        """Batches an arriving request of ``priority`` must let run first.

        Everything queued at the same or a more urgent class (lower or equal
        number). Less urgent queued batches do not count — the newcomer
        preempts their slots — which is what makes the admission estimate
        class-aware and sheds the lowest class first.
        """
        if not self.preemptive:
            return len(self._fifo)
        return sum(len(c) for p, c in self._classes.items() if p <= priority)

    def head_priority(self) -> int | None:
        """Priority of the batch :meth:`next` would pop (None when empty).

        FIFO mode answers with the literal head batch's class — ordering
        there is arrival order, so the head's class is the only honest
        answer.
        """
        if self.empty():
            return None
        if not self.preemptive:
            return self._fifo[0].priority
        return min(p for p, c in self._classes.items() if len(c) > 0)

    def queued_service_s(self, priority: int) -> float:
        """Predicted drain time of work queued at ``priority`` and above.

        The sum of placer-predicted service times of every batch an
        arriving request of this class must let run first (same or more
        urgent classes). This replaces the old global service-time EMA in
        admission control: each queued batch is priced at its own best
        device's predicted cost, so a mixed fleet's estimate no longer
        assumes all batches cost the same.
        """
        if not self.preemptive:
            return sum(b.predicted_service_s for b in self._fifo)
        return sum(c.service_s for p, c in self._classes.items() if p <= priority)

    def pressure_by_class(self) -> dict[int, QueuePressure]:
        """Per-priority-class queue pressure (most urgent first).

        The scheduler-side half of the autoscaling policies' input: batch
        and request counts plus the predicted drain seconds queued in each
        class. Held batches live dispatcher-side — see
        :meth:`FleetDispatcher.queued_pressure_by_class
        <repro.serve.dispatch.FleetDispatcher.queued_pressure_by_class>`
        for the merged view policies should consume.
        """
        pressure: dict[int, QueuePressure] = {}
        for batch in self.queued_batches():
            pressure[batch.priority] = pressure.get(batch.priority, QueuePressure()).plus(batch)
        return dict(sorted(pressure.items()))

    def queued_batches(self):
        """Iterate every queued batch (class order, then tenant rings)."""
        if not self.preemptive:
            yield from self._fifo
            return
        for priority in sorted(self._classes):
            yield from self._classes[priority].batches()

    def queued_by_class(self) -> dict[int, int]:
        """Queued batch count per priority class (most urgent first)."""
        if not self.preemptive:
            counts: dict[int, int] = {}
            for b in self._fifo:
                counts[b.priority] = counts.get(b.priority, 0) + 1
            return dict(sorted(counts.items()))
        return {p: len(c) for p in sorted(self._classes) if len(c := self._classes[p])}

    def remove(self, batch: Batch) -> bool:
        """Remove one queued batch by identity; returns whether it was found.

        The crash-recovery hook: a queued split batch whose committed shard
        set references a crashed worker can never dispatch and must leave
        the queue (its requests are retried or failed by the service).
        Ordinary batches stay — a fleet change only re-stamps their
        candidates.
        """
        if not self.preemptive:
            try:
                self._fifo.remove(batch)
            except ValueError:
                return False
            return True
        class_queue = self._classes.get(batch.priority)
        if class_queue is None:
            return False
        removed = class_queue.remove(batch)
        if removed and len(class_queue) == 0:
            del self._classes[batch.priority]
        return removed

    def enqueue(self, batch: Batch) -> None:
        if self.metrics is not None:
            self.metrics.inc("scheduler.enqueued.batches")
        if self.recorder.enabled:
            self.recorder.emit(
                BatchQueued(
                    t_s=batch.formed_s,
                    bid=batch.bid,
                    priority=batch.priority,
                    tenant=batch.tenant,
                    n_requests=batch.n_requests,
                )
            )
        if not self.preemptive:
            self._fifo.append(batch)
            return
        class_queue = self._classes.get(batch.priority)
        if class_queue is None:
            class_queue = self._classes[batch.priority] = _ClassQueue(
                self.quantum, self.tenant_weights
            )
        class_queue.enqueue(batch)

    def next(self, now: float | None = None) -> Batch:
        """Pop the next batch to dispatch; raises when empty.

        ``now`` is the dispatch instant, used only to timestamp preemption
        trace events (the pop itself is time-free); omitted, the popped
        batch's formation time stands in.
        """
        if self.empty():
            raise ShapeError("PriorityScheduler.next() on an empty queue")
        if not self.preemptive:
            batch = self._fifo.popleft()
        else:
            priority = min(p for p, c in self._classes.items() if len(c) > 0)
            class_queue = self._classes[priority]
            batch = class_queue.next()
            if len(class_queue) == 0:
                del self._classes[priority]
            self._record_overtakes(batch, now)
        key = (batch.priority, batch.tenant)
        self.served_requests[key] = self.served_requests.get(key, 0) + batch.n_requests
        return batch

    def _record_overtakes(self, batch: Batch, now: float | None) -> None:
        """Account the earlier-formed, less urgent batches this pop jumped.

        The observable edge of non-destructive preemption: every batch
        still queued at a lower urgency that was formed before the popped
        one just lost its turn to it.
        """
        overtaken = [
            waiting
            for p, class_queue in self._classes.items()
            if p > batch.priority
            for waiting in class_queue.batches()
            if waiting.formed_s < batch.formed_s
        ]
        if not overtaken:
            return
        self.preemptions += len(overtaken)
        if self.metrics is not None:
            self.metrics.inc("scheduler.preemptions", len(overtaken))
        if self.recorder.enabled:
            t_s = batch.formed_s if now is None else now
            for waiting in overtaken:
                self.recorder.emit(
                    BatchPreempted(
                        t_s=t_s,
                        bid=waiting.bid,
                        by_bid=batch.bid,
                        priority=waiting.priority,
                        by_priority=batch.priority,
                    )
                )
