"""Seeded arrival-process load generators.

Three traffic shapes cover the service scenarios the roadmap asks for:

* :func:`poisson_arrivals` — memoryless steady load (the classic open-loop
  benchmark assumption);
* :func:`bursty_arrivals` — a two-state Markov-modulated Poisson process
  (on/off), the shape of transient-triggered radio-astronomy follow-up;
* :func:`diurnal_arrivals` — an inhomogeneous Poisson process with a
  sinusoidal rate profile, the shape of clinic-hours ultrasound traffic;
  its profile is exposed as :class:`RateForecast`, the rate forecast a
  predictive autoscaling policy sizes the fleet against.

Every generator is bit-deterministic for a fixed seed: child streams derive
through :func:`repro.util.rng.derive_seed`, so adding one generator never
perturbs another's arrivals.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ShapeError
from repro.serve.workload import Request, Workload
from repro.util.rng import derive_seed, make_rng


@dataclass(frozen=True)
class RateForecast:
    """The known rate profile of a diurnal arrival process.

    A predictive autoscaling policy does not guess traffic — clinic-hours
    load is *scheduled*, and the profile that drives
    :func:`diurnal_arrivals` is exactly the forecast an operator would
    configure. This is that profile as a first-class object: the same
    ``base * (1 + amplitude * sin(2 pi t / period))`` formula the
    generator thins against, so forecast and traffic cannot drift apart.
    """

    base_rate_hz: float
    amplitude: float
    period_s: float
    #: time offset into the cycle: ``0.75 * period_s`` starts at the
    #: trough (the day begins at night), the 0.0 default at the mean.
    phase_s: float = 0.0

    def __post_init__(self) -> None:
        if self.base_rate_hz <= 0:
            raise ShapeError(f"base rate must be positive, got {self.base_rate_hz}")
        if not 0.0 <= self.amplitude <= 1.0:
            raise ShapeError(f"amplitude must be in [0, 1], got {self.amplitude}")
        if self.period_s <= 0:
            raise ShapeError(f"period_s must be positive, got {self.period_s}")

    def rate_hz(self, t_s: float) -> float:
        """Instantaneous arrival rate at ``t_s``."""
        return self.base_rate_hz * (
            1.0
            + self.amplitude
            * math.sin(2.0 * math.pi * (t_s + self.phase_s) / self.period_s)
        )

    def max_rate_hz(self, t0_s: float, t1_s: float) -> float:
        """Exact maximum of the rate profile over ``[t0_s, t1_s]``.

        What a predictive autoscaler sizes against: the worst rate inside
        its provisioning window. The sinusoid's maximum on an interval is
        either an interior crest (phase ``period/4 + k*period``) or an
        endpoint — no sampling, so the answer is exact and deterministic.
        """
        if t1_s < t0_s:
            raise ShapeError(f"empty window: [{t0_s}, {t1_s}]")
        k = math.ceil((t0_s + self.phase_s) / self.period_s - 0.25)
        t_crest = (0.25 + k) * self.period_s - self.phase_s
        if t0_s <= t_crest <= t1_s:
            return self.peak_rate_hz
        return max(self.rate_hz(t0_s), self.rate_hz(t1_s))

    @property
    def peak_rate_hz(self) -> float:
        return self.base_rate_hz * (1.0 + self.amplitude)


def poisson_arrivals(
    workload: Workload,
    rate_hz: float,
    horizon_s: float,
    seed: int = 0,
    start_id: int = 0,
) -> list[Request]:
    """Homogeneous Poisson arrivals over ``[0, horizon_s)``.

    Inter-arrival gaps are exponential with mean ``1 / rate_hz``; the
    number of requests is itself random (as in an open system), so two
    rates are comparable over the same wall-clock horizon.
    """
    _check_rate(rate_hz, horizon_s)
    rng = make_rng(derive_seed(seed, "poisson", workload.name, rate_hz))
    requests: list[Request] = []
    t = rng.exponential(1.0 / rate_hz)
    while t < horizon_s:
        requests.append(Request(rid=start_id + len(requests), workload=workload, arrival_s=t))
        t += rng.exponential(1.0 / rate_hz)
    return requests


def bursty_arrivals(
    workload: Workload,
    rate_on_hz: float,
    rate_off_hz: float,
    mean_on_s: float,
    mean_off_s: float,
    horizon_s: float,
    seed: int = 0,
    start_id: int = 0,
) -> list[Request]:
    """Two-state Markov-modulated Poisson arrivals (on/off bursts).

    The process alternates exponentially-distributed ``on`` and ``off``
    dwell periods; arrivals within each period are Poisson at that period's
    rate (``rate_off_hz`` may be 0 for fully silent gaps). Starts in the
    ``on`` state.
    """
    _check_rate(rate_on_hz, horizon_s)
    if rate_off_hz < 0:
        raise ShapeError(f"rate_off_hz must be >= 0, got {rate_off_hz}")
    if mean_on_s <= 0 or mean_off_s <= 0:
        raise ShapeError("mean dwell times must be positive")
    rng = make_rng(derive_seed(seed, "bursty", workload.name, rate_on_hz, rate_off_hz))
    requests: list[Request] = []
    t, on = 0.0, True
    while t < horizon_s:
        dwell = rng.exponential(mean_on_s if on else mean_off_s)
        period_end = min(t + dwell, horizon_s)
        rate = rate_on_hz if on else rate_off_hz
        if rate > 0:
            at = t + rng.exponential(1.0 / rate)
            while at < period_end:
                requests.append(
                    Request(rid=start_id + len(requests), workload=workload, arrival_s=at)
                )
                at += rng.exponential(1.0 / rate)
        t = period_end
        on = not on
    return requests


def diurnal_arrivals(
    workload: Workload,
    base_rate_hz: float,
    amplitude: float,
    period_s: float,
    horizon_s: float,
    seed: int = 0,
    start_id: int = 0,
    phase_s: float = 0.0,
) -> list[Request]:
    """Inhomogeneous Poisson arrivals with a sinusoidal daily profile.

    The instantaneous rate is ``base * (1 + amplitude * sin(2 pi (t +
    phase) / period))``, sampled by Lewis-Shedler thinning against the
    peak rate — exact for any ``0 <= amplitude <= 1`` and still fully
    deterministic (``phase_s`` shifts where in the cycle the trace
    starts; the 0.0 default keeps historical streams byte-identical).
    The profile itself is available as :class:`RateForecast` — the input
    a predictive autoscaling policy sizes the fleet against.
    """
    _check_rate(base_rate_hz, horizon_s)
    forecast = RateForecast(base_rate_hz, amplitude, period_s, phase_s)
    rng = make_rng(derive_seed(seed, "diurnal", workload.name, base_rate_hz, amplitude))
    peak = forecast.peak_rate_hz
    requests: list[Request] = []
    t = rng.exponential(1.0 / peak)
    while t < horizon_s:
        rate_t = forecast.rate_hz(t)
        if rng.uniform() < rate_t / peak:
            requests.append(Request(rid=start_id + len(requests), workload=workload, arrival_s=t))
        t += rng.exponential(1.0 / peak)
    return requests


def merge_arrivals(*streams: list[Request]) -> list[Request]:
    """Interleave several arrival streams into one sorted, re-numbered trace.

    Multi-tenant scenarios generate each workload's stream independently
    (keeping per-stream determinism) and merge here; request ids are
    reassigned in arrival order so they are unique across the trace.
    """
    merged = sorted((req for stream in streams for req in stream), key=lambda r: r.arrival_s)
    return [
        Request(rid=i, workload=r.workload, arrival_s=r.arrival_s, data=r.data)
        for i, r in enumerate(merged)
    ]


def _check_rate(rate_hz: float, horizon_s: float) -> None:
    if rate_hz <= 0:
        raise ShapeError(f"arrival rate must be positive, got {rate_hz}")
    if horizon_s <= 0:
        raise ShapeError(f"horizon must be positive, got {horizon_s}")
