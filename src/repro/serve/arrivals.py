"""Seeded arrival-process load generators.

Three traffic shapes cover the service scenarios the roadmap asks for:

* :func:`poisson_arrivals` — memoryless steady load (the classic open-loop
  benchmark assumption);
* :func:`bursty_arrivals` — a two-state Markov-modulated Poisson process
  (on/off), the shape of transient-triggered radio-astronomy follow-up;
* :func:`diurnal_arrivals` — an inhomogeneous Poisson process with a
  sinusoidal rate profile, the shape of clinic-hours ultrasound traffic;
  its profile is exposed as :class:`RateForecast`, the rate forecast a
  predictive autoscaling policy sizes the fleet against.

Every generator is bit-deterministic for a fixed seed: child streams derive
through :func:`repro.util.rng.derive_seed`, so adding one generator never
perturbs another's arrivals.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ShapeError
from repro.serve.workload import PipelineWorkload, Request, Workload
from repro.util.rng import derive_seed, make_rng


def _entry(workload: Workload | PipelineWorkload) -> tuple[Workload, PipelineWorkload | None, str | None]:
    """The (kernel workload, pipeline, stage name) an arrival enters at.

    Generators accept either descriptor form. A pipeline arrival carries
    the *source stage's* workload (seed derivation keys on that workload's
    name, so a single-stage pipeline built via
    :meth:`~repro.serve.workload.Workload.single_stage` reproduces the
    legacy stream byte-identically) plus the pipeline reference the
    service needs to release successor stages.
    """
    if isinstance(workload, PipelineWorkload):
        source = workload.source
        return source.workload, workload, source.name
    return workload, None, None


@dataclass(frozen=True)
class RateForecast:
    """The known rate profile of a diurnal arrival process.

    A predictive autoscaling policy does not guess traffic — clinic-hours
    load is *scheduled*, and the profile that drives
    :func:`diurnal_arrivals` is exactly the forecast an operator would
    configure. This is that profile as a first-class object: the same
    ``base * (1 + amplitude * sin(2 pi t / period))`` formula the
    generator thins against, so forecast and traffic cannot drift apart.
    """

    base_rate_hz: float
    amplitude: float
    period_s: float
    #: time offset into the cycle: ``0.75 * period_s`` starts at the
    #: trough (the day begins at night), the 0.0 default at the mean.
    phase_s: float = 0.0

    def __post_init__(self) -> None:
        if self.base_rate_hz < 0:
            raise ShapeError(f"base rate must be >= 0, got {self.base_rate_hz}")
        if not 0.0 <= self.amplitude <= 1.0:
            raise ShapeError(f"amplitude must be in [0, 1], got {self.amplitude}")
        if self.period_s <= 0:
            raise ShapeError(f"period_s must be positive, got {self.period_s}")

    def rate_hz(self, t_s: float) -> float:
        """Instantaneous arrival rate at ``t_s``."""
        return self.base_rate_hz * (
            1.0
            + self.amplitude
            * math.sin(2.0 * math.pi * (t_s + self.phase_s) / self.period_s)
        )

    def max_rate_hz(self, t0_s: float, t1_s: float) -> float:
        """Exact maximum of the rate profile over ``[t0_s, t1_s]``.

        What a predictive autoscaler sizes against: the worst rate inside
        its provisioning window. The sinusoid's maximum on an interval is
        either an interior crest (phase ``period/4 + k*period``) or an
        endpoint — no sampling, so the answer is exact and deterministic.
        """
        if t1_s < t0_s:
            raise ShapeError(f"empty window: [{t0_s}, {t1_s}]")
        k = math.ceil((t0_s + self.phase_s) / self.period_s - 0.25)
        t_crest = (0.25 + k) * self.period_s - self.phase_s
        if t0_s <= t_crest <= t1_s:
            return self.peak_rate_hz
        return max(self.rate_hz(t0_s), self.rate_hz(t1_s))

    @property
    def peak_rate_hz(self) -> float:
        return self.base_rate_hz * (1.0 + self.amplitude)


def poisson_arrivals(
    workload: Workload | PipelineWorkload,
    rate_hz: float,
    horizon_s: float,
    seed: int = 0,
    start_id: int = 0,
) -> list[Request]:
    """Homogeneous Poisson arrivals over ``[0, horizon_s)``.

    Inter-arrival gaps are exponential with mean ``1 / rate_hz``; the
    number of requests is itself random (as in an open system), so two
    rates are comparable over the same wall-clock horizon. ``workload``
    may be a :class:`~repro.serve.workload.PipelineWorkload`: arrivals
    then enter at the pipeline's source stage.
    """
    _check_rate(rate_hz, horizon_s)
    kernel, pipeline, stage = _entry(workload)
    rng = make_rng(derive_seed(seed, "poisson", kernel.name, rate_hz))
    requests: list[Request] = []
    t = rng.exponential(1.0 / rate_hz)
    while t < horizon_s:
        requests.append(
            Request(
                rid=start_id + len(requests), workload=kernel, arrival_s=t,
                pipeline=pipeline, stage=stage,
            )
        )
        t += rng.exponential(1.0 / rate_hz)
    return requests


def bursty_arrivals(
    workload: Workload | PipelineWorkload,
    rate_on_hz: float,
    rate_off_hz: float,
    mean_on_s: float,
    mean_off_s: float,
    horizon_s: float,
    seed: int = 0,
    start_id: int = 0,
) -> list[Request]:
    """Two-state Markov-modulated Poisson arrivals (on/off bursts).

    The process alternates exponentially-distributed ``on`` and ``off``
    dwell periods; arrivals within each period are Poisson at that period's
    rate (``rate_off_hz`` may be 0 for fully silent gaps). Starts in the
    ``on`` state.
    """
    _check_rate(rate_on_hz, horizon_s)
    if rate_off_hz < 0:
        raise ShapeError(f"rate_off_hz must be >= 0, got {rate_off_hz}")
    if mean_on_s <= 0 or mean_off_s <= 0:
        raise ShapeError("mean dwell times must be positive")
    kernel, pipeline, stage = _entry(workload)
    rng = make_rng(derive_seed(seed, "bursty", kernel.name, rate_on_hz, rate_off_hz))
    requests: list[Request] = []
    t, on = 0.0, True
    while t < horizon_s:
        dwell = rng.exponential(mean_on_s if on else mean_off_s)
        period_end = min(t + dwell, horizon_s)
        rate = rate_on_hz if on else rate_off_hz
        if rate > 0:
            at = t + rng.exponential(1.0 / rate)
            while at < period_end:
                requests.append(
                    Request(
                        rid=start_id + len(requests), workload=kernel, arrival_s=at,
                        pipeline=pipeline, stage=stage,
                    )
                )
                at += rng.exponential(1.0 / rate)
        t = period_end
        on = not on
    return requests


def diurnal_arrivals(
    workload: Workload | PipelineWorkload,
    base_rate_hz: float,
    amplitude: float,
    period_s: float,
    horizon_s: float,
    seed: int = 0,
    start_id: int = 0,
    phase_s: float = 0.0,
) -> list[Request]:
    """Inhomogeneous Poisson arrivals with a sinusoidal daily profile.

    The instantaneous rate is ``base * (1 + amplitude * sin(2 pi (t +
    phase) / period))``, sampled by Lewis-Shedler thinning against the
    peak rate — exact for any ``0 <= amplitude <= 1`` and still fully
    deterministic (``phase_s`` shifts where in the cycle the trace
    starts; the 0.0 default keeps historical streams byte-identical).
    The profile itself is available as :class:`RateForecast` — the input
    a predictive autoscaling policy sizes the fleet against.
    """
    _check_rate(base_rate_hz, horizon_s)
    forecast = RateForecast(base_rate_hz, amplitude, period_s, phase_s)
    kernel, pipeline, stage = _entry(workload)
    rng = make_rng(derive_seed(seed, "diurnal", kernel.name, base_rate_hz, amplitude))
    peak = forecast.peak_rate_hz
    requests: list[Request] = []
    t = rng.exponential(1.0 / peak)
    while t < horizon_s:
        rate_t = forecast.rate_hz(t)
        if rng.uniform() < rate_t / peak:
            requests.append(
                Request(
                    rid=start_id + len(requests), workload=kernel, arrival_s=t,
                    pipeline=pipeline, stage=stage,
                )
            )
        t += rng.exponential(1.0 / peak)
    return requests


def fit_rate_forecast(
    arrivals_s: list[float],
    period_s: float,
    horizon_s: float | None = None,
) -> RateForecast:
    """Fit a :class:`RateForecast` from *observed* arrival instants.

    Closes the loop a live deployment needs: the operator knows the day
    length (``period_s`` — clinic hours, sidereal schedule) but not the
    profile, which must be estimated from traffic actually seen. The fit
    is the closed-form first Fourier coefficient of the empirical
    arrival measure over whole periods:

    * ``base`` is the mean observed rate over the fitting window;
    * ``z = (2/N) * sum_k exp(-2 pi i t_k / T)`` estimates
      ``amplitude * exp(i * (phase_angle - pi/2))`` for an inhomogeneous
      Poisson process with rate ``base * (1 + A sin(2 pi (t+phase)/T))``,
      so ``amplitude = |z|`` (clamped into ``[0, 1]``) and
      ``phase_s = (arg(z) + pi/2) * T / (2 pi) mod T``.

    Only whole periods enter the window (a partial day would bias the
    phase toward wherever the window stopped); ``horizon_s`` defaults to
    the last arrival. Deterministic — pure arithmetic over the inputs —
    and unbiased in expectation, so fitted parameters converge on the
    generator's true profile as traffic grows (see the regression test
    pinning the fit against the oracle forecast).

    Degenerate observations clamp to a *flat* forecast (amplitude 0)
    instead of raising — a just-started deployment has not seen a day of
    traffic yet, and the caller's fallback is exactly "assume the mean":

    * no arrivals at all -> flat zero-rate forecast;
    * a window shorter than one whole period -> flat at the mean observed
      rate over ``horizon_s``;
    * fewer than two arrivals inside the fitting window -> flat at the
      window's mean rate (one point carries no phase information; the
      single-term Fourier sum would always claim amplitude 1).
    """
    if period_s <= 0:
        raise ShapeError(f"period_s must be positive, got {period_s}")
    if not arrivals_s:
        return RateForecast(base_rate_hz=0.0, amplitude=0.0, period_s=period_s)
    if horizon_s is None:
        horizon_s = max(arrivals_s)
    n_periods = math.floor(horizon_s / period_s + 1e-9)
    if n_periods < 1:
        base = len(arrivals_s) / horizon_s if horizon_s > 0 else 0.0
        return RateForecast(base_rate_hz=base, amplitude=0.0, period_s=period_s)
    window_s = n_periods * period_s
    used = [t for t in arrivals_s if 0.0 <= t < window_s]
    if len(used) < 2:
        return RateForecast(
            base_rate_hz=len(used) / window_s, amplitude=0.0, period_s=period_s
        )
    omega = 2.0 * math.pi / period_s
    re = sum(math.cos(omega * t) for t in used)
    im = -sum(math.sin(omega * t) for t in used)
    amplitude = min(1.0, 2.0 * math.hypot(re, im) / len(used))
    phase_s = ((math.atan2(im, re) + 0.5 * math.pi) / omega) % period_s
    return RateForecast(
        base_rate_hz=len(used) / window_s,
        amplitude=amplitude,
        period_s=period_s,
        phase_s=phase_s if amplitude > 0.0 else 0.0,
    )


def merge_arrivals(*streams: list[Request]) -> list[Request]:
    """Interleave several arrival streams into one sorted, re-numbered trace.

    Multi-tenant scenarios generate each workload's stream independently
    (keeping per-stream determinism) and merge here; request ids are
    reassigned in arrival order so they are unique across the trace.
    """
    merged = sorted((req for stream in streams for req in stream), key=lambda r: r.arrival_s)
    return [
        Request(
            rid=i, workload=r.workload, arrival_s=r.arrival_s, data=r.data,
            pipeline=r.pipeline, stage=r.stage,
        )
        for i, r in enumerate(merged)
    ]


def _check_rate(rate_hz: float, horizon_s: float) -> None:
    if rate_hz <= 0:
        raise ShapeError(f"arrival rate must be positive, got {rate_hz}")
    if horizon_s <= 0:
        raise ShapeError(f"horizon must be positive, got {horizon_s}")
